(* rfss — command-line front end: run any analysis (DC, transient,
   shooting, harmonic balance, MPDE, envelope following) on the
   built-in circuits. Outputs are CSV on stdout so they pipe into
   plotting tools.

     rfss list
     rfss dcop --circuit rectifier
     rfss transient --circuit detector --t-stop 2e-4 --steps 4000
     rfss shooting --circuit rectifier --steps 512
     rfss hb --circuit rectifier --harmonics 12
     rfss solve --circuit rectifier --engine periodic-fd
     rfss mpde --circuit balanced-mixer --n1 40 --n2 30 --output envelope
     rfss envelope --circuit detector --steps 48
     rfss sweep --circuit rc --param fd=1e3:1e6:log:8 --engine mpde,shooting

   The steady-state subcommands are thin wrappers over the unified
   [Engine] API (lib/engine, DESIGN.md §11); [sweep] fans jobs out
   over OCaml 5 domains via [Engine.Sweep]. *)

(* The built-in circuits live in Serve.Catalog, shared with the solve
   service's request validation; the record is re-exported here so the
   subcommands keep their unqualified field access. *)
type fixture = Serve.Catalog.t = {
  name : string;
  description : string;
  build : f_fast:float -> fd:float -> Circuits.built;
  default_fast : float;
  default_fd : float;
  output_node : string;
  output_node_b : string option;  (** for differential outputs *)
}

let fixtures = Serve.Catalog.all

let find_fixture = Serve.Catalog.find

let output_value = Serve.Catalog.output_value

let problem_of_fixture ?period ?label fixture ~f_fast ~fd =
  Serve.Catalog.problem_of ?period ?label fixture ~f_fast ~fd

(* Optional work bound shared by the solve commands: --budget-seconds
   caps wall time, --max-newton caps total Newton iterations across
   every escalation stage. *)
let make_budget budget_seconds max_newton =
  match (budget_seconds, max_newton) with
  | None, None -> None
  | wall_seconds, max_newton ->
      Some (Resilience.Budget.make ?wall_seconds ?max_newton ())

(* Telemetry surface shared by the solve commands: --trace FILE dumps
   the recorded event stream (JSON lines or Chrome trace_event JSON),
   --timings prints the span summary tree to stderr after the run,
   --metrics FILE exports the recorded counters/gauges/histograms as
   Prometheus text (or CSV when the file ends in .csv). Recording only
   switches on when one of the three was requested. *)
type trace_format = Jsonl | Chrome

type telemetry_opts = {
  trace : string option;
  trace_format : trace_format;
  timings : bool;
  metrics : string option;
}

(* Registry the running command can add computed metrics to (e.g. the
   health assessment); merged with the telemetry-derived samples when
   --metrics is written. One command runs per process, so a single
   shared registry is safe. *)
let metrics_registry = Diagnostics.Registry.create ()

let write_metrics file registry =
  let text =
    if Filename.check_suffix file ".csv" then Diagnostics.Registry.to_csv registry
    else Diagnostics.Registry.to_prometheus registry
  in
  let oc = open_out file in
  output_string oc text;
  close_out oc

let with_telemetry opts f =
  if opts.trace = None && (not opts.timings) && opts.metrics = None then f ()
  else begin
    Telemetry.enable ();
    Fun.protect
      ~finally:(fun () ->
        (match Telemetry.snapshot () with
        | None -> ()
        | Some snap ->
            (match opts.trace with
            | Some file ->
                let oc = open_out file in
                (match opts.trace_format with
                | Jsonl -> Telemetry.Sink.write_jsonl oc snap
                | Chrome -> Telemetry.Sink.write_chrome oc snap);
                close_out oc
            | None -> ());
            if opts.timings then
              Format.eprintf "%a@." Telemetry.Summary.pp
                (Telemetry.Summary.of_snapshot snap);
            (match opts.metrics with
            | Some file ->
                write_metrics file
                  (Diagnostics.Registry.of_telemetry ~registry:metrics_registry
                     snap)
            | None -> ()));
        Telemetry.disable ())
      f
  end

(* Introspection plane: --listen ADDR arms Observe.Publish and serves
   /metrics, /healthz and /events from a dedicated domain for the
   duration of the command. Without the flag nothing is armed and the
   engine hooks cost one atomic load each. *)
let with_listen listen f =
  match listen with
  | None -> f ()
  | Some spec -> (
      match Observe.Addr.parse spec with
      | Error e ->
          prerr_endline e;
          1
      | Ok addr -> (
          match Observe.Server.start addr with
          | Error e ->
              prerr_endline e;
              1
          | Ok srv ->
              Fun.protect ~finally:(fun () -> Observe.Server.stop srv) f))

(* ---------- commands ---------- *)

let list_cmd () =
  Printf.printf "%-18s %s\n" "name" "description";
  List.iter (fun f -> Printf.printf "%-18s %s\n" f.name f.description) fixtures;
  0

let dcop_cmd tele circuit f_fast fd budget_seconds max_newton =
  with_telemetry tele @@ fun () ->
  match find_fixture circuit with
  | Error e ->
      prerr_endline e;
      1
  | Ok fixture ->
      let f_fast = Option.value f_fast ~default:fixture.default_fast in
      let fd = Option.value fd ~default:fixture.default_fd in
      let { Circuits.mna; _ } = fixture.build ~f_fast ~fd in
      let budget = make_budget budget_seconds max_newton in
      let report = Circuit.Dcop.solve ?budget mna in
      Printf.printf "# converged=%b strategy=%s newton=%d\n" report.Circuit.Dcop.converged
        (match report.Circuit.Dcop.strategy with
        | `Newton -> "newton"
        | `Gmin_stepping -> "gmin-stepping"
        | `Source_stepping -> "source-stepping")
        report.Circuit.Dcop.newton_iterations;
      Printf.printf "# report=%s\n"
        (Resilience.Report.to_json_string report.Circuit.Dcop.resilience);
      let names = Circuit.Mna.unknown_names mna in
      Array.iteri
        (fun i name -> Printf.printf "%-16s %+.6e\n" name report.Circuit.Dcop.x.(i))
        names;
      if report.Circuit.Dcop.converged then 0 else 1

let transient_cmd tele circuit f_fast fd t_stop steps =
  with_telemetry tele @@ fun () ->
  match find_fixture circuit with
  | Error e ->
      prerr_endline e;
      1
  | Ok fixture ->
      let f_fast = Option.value f_fast ~default:fixture.default_fast in
      let fd = Option.value fd ~default:fixture.default_fd in
      let { Circuits.mna; _ } = fixture.build ~f_fast ~fd in
      let t_stop = Option.value t_stop ~default:(10.0 /. f_fast) in
      let result = Circuit.Transient.run ~mna ~t_stop ~steps () in
      Printf.printf "t,v(%s)\n" fixture.output_node;
      Array.iteri
        (fun k t ->
          Printf.printf "%.9e,%.6e\n" t
            (output_value fixture mna result.Circuit.Transient.trace.Numeric.Integrator.states.(k)))
        result.Circuit.Transient.trace.Numeric.Integrator.times;
      0

(* Shared CLI rendering for the single-time engines: the legacy header
   line plus the one-period CSV, now read off the unified result. *)
let print_single_time fixture (r : Engine.Result.t) =
  Printf.printf "# converged=%b newton=%d residual=%.2e outcome=%s\n"
    r.Engine.Result.converged r.Engine.Result.newton_iterations
    r.Engine.Result.residual_norm
    (Resilience.Report.outcome_to_string
       r.Engine.Result.report.Resilience.Report.outcome);
  Printf.printf "t,v(%s)\n" fixture.output_node;
  let w = r.Engine.Result.waveform in
  Array.iteri
    (fun k t -> Printf.printf "%.9e,%.6e\n" t w.Engine.Result.values.(k))
    w.Engine.Result.times;
  if r.Engine.Result.converged then 0 else 1

let shooting_cmd tele circuit f_fast fd steps budget_seconds max_newton =
  with_telemetry tele @@ fun () ->
  match find_fixture circuit with
  | Error e ->
      prerr_endline e;
      1
  | Ok fixture ->
      let f_fast = Option.value f_fast ~default:fixture.default_fast in
      let fd = Option.value fd ~default:fixture.default_fd in
      let problem = problem_of_fixture fixture ~f_fast ~fd in
      let options =
        {
          Engine.Options.default with
          steps_per_period = steps;
          budget = make_budget budget_seconds max_newton;
        }
      in
      let r = Engine.run problem (Engine.make ~options Engine.Shooting) in
      print_single_time fixture r

let hb_cmd tele circuit f_fast fd harmonics budget_seconds max_newton =
  with_telemetry tele @@ fun () ->
  match find_fixture circuit with
  | Error e ->
      prerr_endline e;
      1
  | Ok fixture ->
      let f_fast = Option.value f_fast ~default:fixture.default_fast in
      let fd = Option.value fd ~default:fixture.default_fd in
      let problem = problem_of_fixture fixture ~f_fast ~fd in
      let options =
        {
          Engine.Options.default with
          harmonics;
          budget = make_budget budget_seconds max_newton;
        }
      in
      let r = Engine.run problem (Engine.make ~options Engine.Hb) in
      print_single_time fixture r

(* Generic single solve through the unified API: any engine, unified
   options, unified result rendering (metrics + health + report). *)
let solve_cmd tele listen circuit engine_name f_fast fd period steps segments
    harmonics points n1 n2 tol budget_seconds max_newton =
  with_listen listen @@ fun () ->
  with_telemetry tele @@ fun () ->
  match find_fixture circuit with
  | Error e ->
      prerr_endline e;
      1
  | Ok fixture -> (
      match Engine.kind_of_name engine_name with
      | Error e ->
          prerr_endline e;
          1
      | Ok kind ->
          let f_fast = Option.value f_fast ~default:fixture.default_fast in
          let fd = Option.value fd ~default:fixture.default_fd in
          let problem = problem_of_fixture ~period fixture ~f_fast ~fd in
          let options =
            {
              Engine.Options.default with
              tol;
              steps_per_period = steps;
              segments;
              harmonics;
              points;
              n1;
              n2;
              budget = make_budget budget_seconds max_newton;
            }
          in
          Observe.Publish.run_started ~phase:"solve" ~total:1 ();
          Observe.Publish.job_started ~job:problem.Engine.Problem.label
            ~worker:0;
          let r = Engine.run problem (Engine.make ~options kind) in
          if Observe.Publish.armed () then
            Observe.Publish.job_finished ~job:problem.Engine.Problem.label
              ~worker:0
              ~status:(if r.Engine.Result.converged then "ok" else "failed")
              ~health:
                (Some
                   (Engine.Sweep.health_class
                      r.Engine.Result.health.Diagnostics.Health.convergence))
              ~wall_seconds:r.Engine.Result.wall_seconds ~attempts:1;
          Observe.Publish.run_finished ();
          Printf.printf "# engine=%s converged=%b newton=%d residual=%.2e wall=%.3fs\n"
            (Engine.kind_name r.Engine.Result.kind) r.Engine.Result.converged
            r.Engine.Result.newton_iterations r.Engine.Result.residual_norm
            r.Engine.Result.wall_seconds;
          List.iter
            (fun (k, v) -> Printf.printf "# metric %s=%.6e\n" k v)
            r.Engine.Result.metrics;
          (* summary_line already starts with "health: " *)
          Printf.printf "# %s\n"
            (Diagnostics.Health.summary_line r.Engine.Result.health);
          Printf.printf "# report=%s\n"
            (Resilience.Report.to_json_string r.Engine.Result.report);
          Printf.printf "t,v(%s)\n" fixture.output_node;
          let w = r.Engine.Result.waveform in
          Array.iteri
            (fun k t -> Printf.printf "%.9e,%.6e\n" t w.Engine.Result.values.(k))
            w.Engine.Result.times;
          if r.Engine.Result.converged then 0 else 1)

type mpde_output = Envelope | Surface | Diagonal | Gain

let mpde_cmd tele circuit f_fast fd n1 n2 output budget_seconds max_newton =
  with_telemetry tele @@ fun () ->
  match find_fixture circuit with
  | Error e ->
      prerr_endline e;
      1
  | Ok fixture ->
      let f_fast = Option.value f_fast ~default:fixture.default_fast in
      let fd = Option.value fd ~default:fixture.default_fd in
      let problem = problem_of_fixture fixture ~f_fast ~fd in
      let options =
        {
          Engine.Options.default with
          n1;
          n2;
          budget = make_budget budget_seconds max_newton;
        }
      in
      let r = Engine.run problem (Engine.make ~options Engine.Mpde) in
      let sol =
        match r.Engine.Result.mpde_solution with
        | Some sol -> sol
        | None -> assert false (* the MPDE backend always attaches it *)
      in
      (* Fresh identically-built MNA for node-index lookups only; the
         solve itself ran on the problem's own instance. *)
      let { Circuits.mna; _ } = fixture.build ~f_fast ~fd in
      let stats = sol.Mpde.Solver.stats in
      Printf.printf
        "# converged=%b strategy=%s newton=%d gmres=%d continuation=%d residual=%.2e wall=%.2fs\n"
        stats.Mpde.Solver.converged stats.Mpde.Solver.strategy
        stats.Mpde.Solver.newton_iterations stats.Mpde.Solver.linear_iterations
        stats.Mpde.Solver.continuation_steps stats.Mpde.Solver.residual_norm
        stats.Mpde.Solver.wall_seconds;
      Printf.printf "# report=%s\n"
        (Resilience.Report.to_json_string sol.Mpde.Solver.report);
      let values =
        match fixture.output_node_b with
        | None -> Mpde.Extract.surface_of_node sol mna fixture.output_node
        | Some b -> Mpde.Extract.differential_surface sol mna fixture.output_node b
      in
      (match output with
      | Envelope ->
          let env = Mpde.Extract.envelope sol ~values in
          let times = Mpde.Extract.envelope_times sol in
          Printf.printf "t2,v\n";
          Array.iteri (fun j v -> Printf.printf "%.9e,%.6e\n" times.(j) v) env
      | Surface ->
          Printf.printf "t1,t2,v\n";
          Array.iteri
            (fun i row ->
              Array.iteri
                (fun j v ->
                  Printf.printf "%.9e,%.9e,%.6e\n"
                    (Mpde.Grid.t1_of sol.Mpde.Solver.grid i)
                    (Mpde.Grid.t2_of sol.Mpde.Solver.grid j)
                    v)
                row)
            values
      | Diagonal ->
          let times, series =
            Mpde.Extract.diagonal sol ~values ~t_start:0.0 ~t_stop:(5.0 /. f_fast)
              ~samples:200
          in
          Printf.printf "t,v\n";
          Array.iteri (fun k v -> Printf.printf "%.9e,%.6e\n" times.(k) v) series
      | Gain ->
          Printf.printf "baseband_amplitude,conversion_gain_db,thd\n";
          Printf.printf "%.6e,%.3f,%.5f\n"
            (Mpde.Extract.t2_harmonic_amplitude ~values ~harmonic:1)
            (Mpde.Extract.conversion_gain_db ~values ~rf_amplitude:1.0 ~harmonic:1)
            (Mpde.Extract.thd ~values ()));
      if stats.Mpde.Solver.converged then 0 else 1

(* ---------- parameter sweeps (Engine.Sweep) ---------- *)

(* --param NAME=START:STOP:lin|log:N or NAME=v1,v2,...; NAME is the
   frequency being swept: fd (difference tone) or fast (LO). *)
let parse_param s =
  try
    let i = String.index s '=' in
    let name = String.sub s 0 i in
    let spec = String.sub s (i + 1) (String.length s - i - 1) in
    if name <> "fd" && name <> "fast" then
      failwith "parameter must be fd or fast";
    let values =
      match String.split_on_char ':' spec with
      | [ list ] ->
          Array.of_list
            (List.map float_of_string (String.split_on_char ',' list))
      | [ a; b; scale; n ] ->
          let a = float_of_string a and b = float_of_string b in
          let n = int_of_string n in
          if n < 2 then failwith "need at least 2 points";
          let at =
            match scale with
            | "lin" ->
                fun i ->
                  a +. ((b -. a) *. float_of_int i /. float_of_int (n - 1))
            | "log" ->
                if a <= 0.0 || b <= 0.0 then
                  failwith "log scale needs positive endpoints";
                fun i -> a *. ((b /. a) ** (float_of_int i /. float_of_int (n - 1)))
            | _ -> failwith "scale must be lin or log"
          in
          Array.init n at
      | _ -> failwith "expected NAME=v1,v2,... or NAME=START:STOP:lin|log:N"
    in
    if Array.length values = 0 then failwith "empty value list";
    Ok (name, values)
  with
  | Not_found -> Error (Printf.sprintf "bad --param %S: expected NAME=SPEC" s)
  | Failure msg -> Error (Printf.sprintf "bad --param %S: %s" s msg)

let parse_engines s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
        match Engine.kind_of_name name with
        | Ok k -> go (k :: acc) rest
        | Error e -> Error e)
  in
  go [] (String.split_on_char ',' (String.trim s))

let sweep_default_domains () =
  match Option.bind (Sys.getenv_opt "DOMAINS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> Engine.Sweep.default_domains ()

let csv_sanitize msg =
  String.map (fun c -> if c = ',' || c = '\n' || c = '\r' then ';' else c) msg

type sweep_format = Sweep_csv | Sweep_json

(* Both renderers print from checkpoint records — the same shape a
   resumed run loads from disk — so an interrupted-then-resumed sweep
   is byte-for-byte identical to an uninterrupted one by construction
   (floats round-trip through the checkpoint's %.17g exactly). *)

let emit_sweep_csv ~no_wall (records : Engine.Checkpoint.record array) =
  Printf.printf
    "label,engine,fast,fd,status,converged,newton,residual,h1,thd,waveform_hash,attempts%s,message\n"
    (if no_wall then "" else ",wall_seconds");
  Array.iter
    (fun (r : Engine.Checkpoint.record) ->
      let wall =
        if no_wall then "" else Printf.sprintf ",%.6f" r.Engine.Checkpoint.wall_seconds
      in
      let message =
        if r.Engine.Checkpoint.status <> "error" then ""
        else
          csv_sanitize
            (r.Engine.Checkpoint.message
            ^
            match r.Engine.Checkpoint.stage with
            | Some st -> Printf.sprintf " [stage %s]" st
            | None -> "")
      in
      Printf.printf "%s,%s,%.9e,%.9e,%s,%b,%d,%.6e,%.6e,%.6e,%s,%d%s,%s\n"
        r.Engine.Checkpoint.label r.Engine.Checkpoint.engine
        r.Engine.Checkpoint.f_fast r.Engine.Checkpoint.fd
        r.Engine.Checkpoint.status r.Engine.Checkpoint.converged
        r.Engine.Checkpoint.newton r.Engine.Checkpoint.residual
        r.Engine.Checkpoint.h1 r.Engine.Checkpoint.thd
        r.Engine.Checkpoint.waveform_hash r.Engine.Checkpoint.attempts wall
        message)
    records

(* %.6e of a NaN metric is not valid JSON; quote non-finite values the
   same way Resilience.Report does. *)
let sweep_json_float v =
  if Float.is_nan v then "\"nan\""
  else if v = Float.infinity then "\"inf\""
  else if v = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.6e" v

let emit_sweep_json ~no_wall (records : Engine.Checkpoint.record array) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  Array.iteri
    (fun i (r : Engine.Checkpoint.record) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n  {\"label\":%S,\"engine\":%S,\"fast\":%.9e,\"fd\":%.9e,\"status\":%S,\"attempts\":%d"
           r.Engine.Checkpoint.label r.Engine.Checkpoint.engine
           r.Engine.Checkpoint.f_fast r.Engine.Checkpoint.fd
           r.Engine.Checkpoint.status r.Engine.Checkpoint.attempts);
      (if r.Engine.Checkpoint.status = "error" then begin
         Buffer.add_string buf
           (Printf.sprintf ",\"message\":%S" r.Engine.Checkpoint.message);
         (match r.Engine.Checkpoint.stage with
         | Some st -> Buffer.add_string buf (Printf.sprintf ",\"stage\":%S" st)
         | None -> ());
         match r.Engine.Checkpoint.backtrace with
         | Some bt -> Buffer.add_string buf (Printf.sprintf ",\"backtrace\":%S" bt)
         | None -> ()
       end
       else
         Buffer.add_string buf
           (Printf.sprintf
              ",\"converged\":%b,\"newton\":%d,\"residual\":%s,\"h1\":%s,\"thd\":%s,\"waveform_hash\":%S"
              r.Engine.Checkpoint.converged r.Engine.Checkpoint.newton
              (sweep_json_float r.Engine.Checkpoint.residual)
              (sweep_json_float r.Engine.Checkpoint.h1)
              (sweep_json_float r.Engine.Checkpoint.thd)
              r.Engine.Checkpoint.waveform_hash));
      if not no_wall then
        Buffer.add_string buf
          (Printf.sprintf ",\"wall_seconds\":%.6f"
             r.Engine.Checkpoint.wall_seconds);
      Buffer.add_string buf "}")
    records;
  Buffer.add_string buf "\n]\n";
  print_string (Buffer.contents buf)

(* Live progress meter for --progress. [on_outcome] fires on whichever
   domain finished the job, so the meter serializes internally. ETA is
   naive (mean rate so far), which is the honest choice for jobs of
   wildly different cost; before the first job completes both rate and
   ETA render as "--" rather than 0/inf/nan.

   On an interactive stderr the line is \r-rewritten in place. When
   stderr is not a TTY — or NO_COLOR / CI asks for dumb output — each
   update is its own newline-terminated line, so redirected logs and CI
   consoles show real lines instead of one giant \r-glued blob. *)
let progress_plain () =
  (not (Unix.isatty Unix.stderr))
  || Sys.getenv_opt "NO_COLOR" <> None
  || Sys.getenv_opt "CI" <> None

let progress_reporter ~total =
  let m = Mutex.create () in
  let plain = progress_plain () in
  let finished = ref 0 in
  let t0 = Telemetry.Clock.wall () in
  let render d =
    let elapsed = Telemetry.Clock.wall () -. t0 in
    let rate =
      if d > 0 && elapsed > 0.0 then Some (float_of_int d /. elapsed)
      else None
    in
    let rate_s =
      match rate with Some r -> Printf.sprintf "%.2f" r | None -> "--"
    in
    let eta_s =
      match rate with
      | Some r when d < total ->
          Printf.sprintf "%.1fs" (float_of_int (total - d) /. r)
      | Some _ -> "0.0s"
      | None -> "--"
    in
    let line =
      Printf.sprintf "[%d/%d] %3.0f%%  %.1fs elapsed  eta %s  %s jobs/s" d
        total
        (100.0 *. float_of_int d /. float_of_int total)
        elapsed eta_s rate_s
    in
    if plain then Printf.eprintf "%s\n" line
    else begin
      Printf.eprintf "\r%s " line;
      if d >= total then prerr_newline ()
    end;
    flush stderr
  in
  (* The 0/total line shows the meter is live (and that rate/ETA are
     honestly unknown) before any job lands. *)
  render 0;
  fun (_ : Engine.Sweep.outcome) ->
    Mutex.lock m;
    incr finished;
    render !finished;
    Mutex.unlock m

let p99_or_zero (h : Telemetry.histogram) =
  if h.Telemetry.count > 0 then Telemetry.quantile h 0.99 else 0.0

(* One merged Chrome trace for the whole sweep: each worker domain gets
   its own tid lane (real OS pid), plus an "rfss" top-level section —
   ignored by trace viewers, read back by [rfss report] — carrying the
   wall attribution the trace alone cannot express (measured sweep
   wall, per-domain busy/utilization, retry counts, GC pause stats). *)
let write_merged_trace ~file ~domains ~wall ~gc
    (outcomes : Engine.Sweep.outcome array) =
  let module J = Diagnostics.Json_min in
  let pid = Unix.getpid () in
  let parts =
    Array.to_list outcomes
    |> List.filter_map (fun (o : Engine.Sweep.outcome) ->
           Option.map
             (fun (base, snapshot) ->
               {
                 Telemetry.Merge.pid;
                 tid = o.Engine.Sweep.worker + 1;
                 thread_name = Printf.sprintf "domain-%d" o.Engine.Sweep.worker;
                 label = Some o.Engine.Sweep.job.Engine.Sweep.label;
                 base;
                 snapshot;
               })
             o.Engine.Sweep.trace)
  in
  let busy = Array.make (max 1 domains) 0.0 in
  let retries = ref 0 and degraded = ref 0 in
  Array.iter
    (fun (o : Engine.Sweep.outcome) ->
      let w = o.Engine.Sweep.worker in
      if w >= 0 && w < Array.length busy then
        busy.(w) <- busy.(w) +. o.Engine.Sweep.wall_seconds;
      retries := !retries + Engine.Sweep.retries o;
      if o.Engine.Sweep.degraded then incr degraded)
    outcomes;
  let total_busy = Array.fold_left ( +. ) 0.0 busy in
  let util b = if wall > 0.0 then b /. wall else 0.0 in
  let per_domain =
    Array.to_list
      (Array.mapi
         (fun k b ->
           J.Obj
             [
               ("worker", J.Num (float_of_int k));
               ("busy_seconds", J.Num b);
               ("utilization", J.Num (util b));
             ])
         busy)
  in
  let gc_json =
    match gc with
    | None -> J.Null
    | Some (s : Telemetry.Runtime.stats) ->
        J.Obj
          [
            ("minor_collections", J.Num (float_of_int s.minor_collections));
            ("major_slices", J.Num (float_of_int s.major_slices));
            ("domains_seen", J.Num (float_of_int s.domains_seen));
            ("lost_events", J.Num (float_of_int s.lost_events));
            ("minor_pause_p99", J.Num (p99_or_zero s.minor_pause));
            ("major_pause_p99", J.Num (p99_or_zero s.major_pause));
          ]
  in
  let rfss_json =
    J.Obj
      [
        ("schema", J.Str "rfss.sweep_trace/1");
        ("wall_seconds", J.Num wall);
        ("domains", J.Num (float_of_int domains));
        ("jobs", J.Num (float_of_int (Array.length outcomes)));
        ("retries", J.Num (float_of_int !retries));
        ("degraded_jobs", J.Num (float_of_int !degraded));
        ( "utilization",
          J.Num
            (if wall > 0.0 && domains > 0 then
               total_busy /. (float_of_int domains *. wall)
             else 0.0) );
        ("per_domain", J.Arr per_domain);
        ("gc", gc_json);
      ]
  in
  let oc = open_out file in
  Telemetry.Merge.write_chrome ~extra:[ ("rfss", J.to_string rfss_json) ] oc
    parts;
  close_out oc

let sweep_cmd tele listen circuit engines param f_fast fd period domains
    no_wall format n1 n2 steps tol budget_seconds max_newton per_job_telemetry
    progress fault_plan checkpoint resume keep_going retries no_degrade =
  (* A Chrome-format --trace on a sweep means the cross-domain merged
     trace, written from per-job snapshots captured on the executing
     domains — not the caller-domain-only snapshot [with_telemetry]
     would dump. Blank the option so the generic writer stays out of
     the way; jsonl traces keep the historical single-recorder shape. *)
  let merged_trace =
    match (tele.trace, tele.trace_format) with
    | Some file, Chrome -> Some file
    | _ -> None
  in
  let tele =
    match merged_trace with Some _ -> { tele with trace = None } | None -> tele
  in
  with_listen listen @@ fun () ->
  with_telemetry tele @@ fun () ->
  match
    ( find_fixture circuit,
      parse_param param,
      parse_engines engines,
      match fault_plan with
      | None -> Ok None
      | Some spec ->
          Result.map Option.some (Resilience.Faultinject.parse spec) )
  with
  | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
    ->
      prerr_endline e;
      1
  | Ok fixture, Ok (pname, values), Ok kinds, Ok plan ->
      let f_fast0 = Option.value f_fast ~default:fixture.default_fast in
      let fd0 = Option.value fd ~default:fixture.default_fd in
      let options =
        { Engine.Options.default with n1; n2; steps_per_period = steps; tol }
      in
      let jobs =
        Array.of_list
          (List.concat_map
             (fun kind ->
               Array.to_list values
               |> List.map (fun v ->
                      let f_fast = if pname = "fast" then v else f_fast0 in
                      let fd = if pname = "fd" then v else fd0 in
                      let label =
                        Printf.sprintf "%s:%s:%s=%g" fixture.name
                          (Engine.kind_name kind) pname v
                      in
                      let problem =
                        problem_of_fixture ~period ~label fixture ~f_fast ~fd
                      in
                      Engine.Sweep.job ~label ~options ~kind problem))
             kinds)
      in
      let domains =
        match domains with Some d -> d | None -> sweep_default_domains ()
      in
      let retry =
        {
          Resilience.Retry.default with
          Resilience.Retry.max_attempts = 1 + max 0 retries;
          degrade = not no_degrade;
        }
      in
      (* Install the fault plan before any worker domain spawns, so the
         wrapped (skewable) clock source is the one workers read. *)
      (match plan with
      | Some p -> Resilience.Faultinject.install p
      | None -> ());
      Fun.protect ~finally:Resilience.Faultinject.uninstall @@ fun () ->
      let job_key (j : Engine.Sweep.job) =
        let p = j.Engine.Sweep.problem in
        Engine.Checkpoint.job_key ~label:j.Engine.Sweep.label
          ~engine:(Engine.kind_name j.Engine.Sweep.engine.Engine.kind)
          ~f_fast:p.Engine.Problem.f_fast ~fd:p.Engine.Problem.fd
          ~options:j.Engine.Sweep.engine.Engine.options
      in
      let log =
        match checkpoint with
        | None -> None
        | Some path ->
            (* Without --resume a stale log must not mask re-runs. *)
            if not resume then (try Sys.remove path with Sys_error _ -> ());
            Some (Engine.Checkpoint.create path)
      in
      let cached = Array.map (fun _ -> None) jobs in
      (match log with
      | Some log when resume ->
          Array.iteri
            (fun i j ->
              cached.(i) <- Engine.Checkpoint.find log ~key:(job_key j))
            jobs
      | _ -> ());
      let to_run =
        Array.of_list
          (List.filteri
             (fun i _ -> cached.(i) = None)
             (Array.to_list jobs))
      in
      let on_outcome =
        let checkpointer =
          Option.map
            (fun log (o : Engine.Sweep.outcome) ->
              Engine.Checkpoint.append log (Engine.Checkpoint.of_outcome o);
              Observe.Publish.checkpoint_written
                ~job:o.Engine.Sweep.job.Engine.Sweep.label)
            log
        in
        let reporter =
          if progress && Array.length to_run > 0 then
            Some (progress_reporter ~total:(Array.length to_run))
          else None
        in
        match (checkpointer, reporter) with
        | None, None -> None
        | (Some _ as f), None -> f
        | None, (Some _ as g) -> g
        | Some f, Some g ->
            Some
              (fun o ->
                f o;
                g o)
      in
      (* GC attribution for the merged trace: arm the runtime-events
         monitor before any worker domain spawns so every ring is
         covered from birth. *)
      let monitor =
        if merged_trace <> None then Telemetry.Runtime.start () else None
      in
      let sweep_t0 = Telemetry.Clock.wall () in
      let outcomes =
        Engine.Sweep.run ~domains ?wall_seconds:budget_seconds
          ?max_newton_per_job:max_newton ~per_job_telemetry
          ~per_job_trace:(merged_trace <> None) ~retry ?on_outcome to_run
      in
      let sweep_wall = Telemetry.Clock.wall () -. sweep_t0 in
      let gc =
        Option.map
          (fun m ->
            Telemetry.Runtime.poll m;
            let s = Telemetry.Runtime.stats m in
            Telemetry.Runtime.observe_into_telemetry m;
            Telemetry.Runtime.stop m;
            s)
          monitor
      in
      (match merged_trace with
      | Some file ->
          write_merged_trace ~file ~domains ~wall:sweep_wall ~gc outcomes
      | None -> ());
      (* Stitch cached and fresh records back into input job order. *)
      let records = Array.make (Array.length jobs) None in
      Array.iteri (fun i c -> records.(i) <- c) cached;
      let fresh = Array.map Engine.Checkpoint.of_outcome outcomes in
      let k = ref 0 in
      Array.iteri
        (fun i c ->
          if c = None then begin
            records.(i) <- Some fresh.(!k);
            incr k
          end)
        cached;
      let records = Array.map Option.get records in
      (match format with
      | Sweep_csv -> emit_sweep_csv ~no_wall records
      | Sweep_json -> emit_sweep_json ~no_wall records);
      let bad =
        Array.exists
          (fun (r : Engine.Checkpoint.record) ->
            r.Engine.Checkpoint.status <> "ok")
          records
      in
      if bad && not keep_going then 1 else 0

(* ---------- rfss report: wall attribution from a merged trace ---------- *)

let format_seconds s =
  if Float.is_nan s then "?"
  else if Float.abs s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if Float.abs s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let report_cmd file top =
  let module J = Diagnostics.Json_min in
  match
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    J.parse s
  with
  | exception Sys_error e ->
      prerr_endline e;
      1
  | exception J.Parse_error e ->
      Printf.eprintf "%s: not a valid trace: %s\n" file e;
      1
  | json ->
      let events =
        match J.member "traceEvents" json with Some (J.Arr l) -> l | _ -> []
      in
      let fnum name ev = Option.bind (J.member name ev) J.num in
      let fstr name ev = Option.bind (J.member name ev) J.str in
      let fint name ev = Option.map int_of_float (fnum name ev) in
      (* Lanes in document order; B/E events stay in emission order
         within a lane, which is their nesting order — no re-sort. *)
      let lanes : (int * int, J.t list ref) Hashtbl.t = Hashtbl.create 8 in
      let lane_order = ref [] in
      let thread_names = Hashtbl.create 8 in
      let ts_min = ref infinity and ts_max = ref neg_infinity in
      List.iter
        (fun ev ->
          let key =
            ( Option.value ~default:0 (fint "pid" ev),
              Option.value ~default:0 (fint "tid" ev) )
          in
          match fstr "ph" ev with
          | Some "M" -> (
              match (fstr "name" ev, J.member "args" ev) with
              | Some "thread_name", Some args -> (
                  match Option.bind (J.member "name" args) J.str with
                  | Some n -> Hashtbl.replace thread_names key n
                  | None -> ())
              | _ -> ())
          | Some (("B" | "E") as ph) ->
              (match fnum "ts" ev with
              | Some ts ->
                  ts_min := Float.min !ts_min ts;
                  ts_max := Float.max !ts_max ts
              | None -> ());
              let q =
                match Hashtbl.find_opt lanes key with
                | Some q -> q
                | None ->
                    let q = ref [] in
                    Hashtbl.add lanes key q;
                    lane_order := key :: !lane_order;
                    q
              in
              ignore ph;
              q := ev :: !q
          | _ -> ())
        events;
      let lane_order = List.rev !lane_order in
      (* Replay each lane's span stack: total = E.ts - B.ts, self =
         total minus time inside children. Top-level totals sum to the
         lane's busy time. *)
      let spans = Hashtbl.create 32 in
      let add_span name total self =
        let c, t, s =
          Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt spans name)
        in
        Hashtbl.replace spans name (c + 1, t +. total, s +. self)
      in
      let lane_busy =
        List.map
          (fun key ->
            let evs = List.rev !(Hashtbl.find lanes key) in
            let busy = ref 0.0 in
            let stack = ref [] in
            List.iter
              (fun ev ->
                let ts =
                  Option.value ~default:0.0 (fnum "ts" ev) *. 1e-6
                in
                let name = Option.value ~default:"?" (fstr "name" ev) in
                match fstr "ph" ev with
                | Some "B" -> stack := (name, ts, ref 0.0) :: !stack
                | Some "E" -> (
                    match !stack with
                    | (n, ts0, child) :: rest ->
                        let total = ts -. ts0 in
                        let self = Float.max 0.0 (total -. !child) in
                        add_span n total self;
                        (match rest with
                        | (_, _, pchild) :: _ -> pchild := !pchild +. total
                        | [] -> busy := !busy +. total);
                        stack := rest
                    | [] -> ())
                | _ -> ())
              evs;
            (key, !busy))
          lane_order
      in
      let rfss = J.member "rfss" json in
      let rfss_num name =
        Option.bind rfss (fun r -> Option.bind (J.member name r) J.num)
      in
      let inferred_wall =
        if !ts_max > !ts_min then (!ts_max -. !ts_min) *. 1e-6 else 0.0
      in
      let wall, wall_src =
        match rfss_num "wall_seconds" with
        | Some w -> (w, "measured")
        | None -> (inferred_wall, "inferred from trace extent")
      in
      let domains =
        match rfss_num "domains" with
        | Some d -> int_of_float d
        | None -> max 1 (List.length lane_busy)
      in
      Printf.printf "trace: %s\n" file;
      Printf.printf "wall:  %s (%s)" (format_seconds wall) wall_src;
      (match (rfss_num "jobs", rfss_num "retries", rfss_num "degraded_jobs")
       with
      | Some j, Some r, Some d ->
          Printf.printf "  jobs=%.0f retries=%.0f degraded=%.0f" j r d
      | _ -> ());
      print_newline ();
      Printf.printf "lanes: %d\n" (List.length lane_busy);
      List.iter
        (fun ((pid, tid), busy) ->
          let name =
            Option.value ~default:"?" (Hashtbl.find_opt thread_names (pid, tid))
          in
          Printf.printf "  %-12s (pid %d, tid %d)  busy %-10s  utilization %3.0f%%\n"
            name pid tid (format_seconds busy)
            (if wall > 0.0 then 100.0 *. busy /. wall else 0.0))
        lane_busy;
      let all =
        Hashtbl.fold
          (fun name (c, t, s) acc -> (name, c, t, s) :: acc)
          spans []
        |> List.sort (fun (n1, _, _, s1) (n2, _, _, s2) ->
               match compare s2 s1 with 0 -> compare n1 n2 | c -> c)
      in
      let total_busy = List.fold_left (fun a (_, b) -> a +. b) 0.0 lane_busy in
      let total_self =
        List.fold_left (fun a (_, _, _, s) -> a +. s) 0.0 all
      in
      Printf.printf "top %d spans by self time:\n"
        (min top (List.length all));
      Printf.printf "  %-28s %8s %12s %12s %7s\n" "span" "calls" "total"
        "self" "share";
      List.iteri
        (fun i (name, calls, t, s) ->
          if i < top then
            Printf.printf "  %-28s %8d %12s %12s %6.1f%%\n" name calls
              (format_seconds t) (format_seconds s)
              (if total_busy > 0.0 then 100.0 *. s /. total_busy else 0.0))
        all;
      (match Option.bind rfss (J.member "gc") with
      | Some (J.Obj _ as g) ->
          let gnum name = Option.bind (J.member name g) J.num in
          Printf.printf
            "gc:    minor collections %.0f (p99 %s), major slices %.0f (p99 %s), lost events %.0f\n"
            (Option.value ~default:0.0 (gnum "minor_collections"))
            (format_seconds
               (Option.value ~default:0.0 (gnum "minor_pause_p99")))
            (Option.value ~default:0.0 (gnum "major_slices"))
            (format_seconds
               (Option.value ~default:0.0 (gnum "major_pause_p99")))
            (Option.value ~default:0.0 (gnum "lost_events"))
      | _ -> ());
      Printf.printf
        "accounting: span self %s = %.1f%% of lane busy %s; lane busy = %.1f%% of %d domains x wall\n"
        (format_seconds total_self)
        (if total_busy > 0.0 then 100.0 *. total_self /. total_busy else 0.0)
        (format_seconds total_busy)
        (if wall > 0.0 && domains > 0 then
           100.0 *. total_busy /. (float_of_int domains *. wall)
         else 0.0)
        domains;
      0

let envelope_cmd tele circuit f_fast fd n1 steps periods =
  with_telemetry tele @@ fun () ->
  match find_fixture circuit with
  | Error e ->
      prerr_endline e;
      1
  | Ok fixture ->
      let f_fast = Option.value f_fast ~default:fixture.default_fast in
      let fd = Option.value fd ~default:fixture.default_fd in
      let { Circuits.mna; _ } = fixture.build ~f_fast ~fd in
      let shear = Mpde.Shear.make ~fast_freq:f_fast ~slow_freq:fd in
      let sys = Mpde.Assemble.of_mna ~shear mna in
      let seed = Circuit.Dcop.solve_exn mna in
      let result =
        Mpde.Envelope_follow.run ~seed ~system:sys ~shear ~n1
          ~t2_stop:(periods /. fd) ~steps ()
      in
      Printf.printf "# converged=%b newton=%d\n" result.Mpde.Envelope_follow.converged
        result.Mpde.Envelope_follow.newton_iterations;
      let unknown =
        match fixture.output_node_b with
        | None -> Circuit.Mna.node_index mna fixture.output_node
        | Some _ -> Circuit.Mna.node_index mna fixture.output_node
      in
      let env =
        Mpde.Envelope_follow.envelope_of result ~unknown ~mode:Mpde.Extract.Mean_t1
      in
      Printf.printf "t2,v\n";
      Array.iteri
        (fun s v -> Printf.printf "%.9e,%.6e\n" result.Mpde.Envelope_follow.t2_values.(s) v)
        env;
      if result.Mpde.Envelope_follow.converged then 0 else 1

let health_cmd tele circuit f_fast fd n1 n2 budget_seconds max_newton =
  with_telemetry tele @@ fun () ->
  match find_fixture circuit with
  | Error e ->
      prerr_endline e;
      1
  | Ok fixture ->
      let f_fast = Option.value f_fast ~default:fixture.default_fast in
      let fd = Option.value fd ~default:fixture.default_fd in
      let { Circuits.mna; _ } = fixture.build ~f_fast ~fd in
      let shear = Mpde.Shear.make ~fast_freq:f_fast ~slow_freq:fd in
      let options =
        { Mpde.Solver.default_options with budget = make_budget budget_seconds max_newton }
      in
      let sol = Mpde.Solver.solve_mna ~options ~shear ~n1 ~n2 mna in
      let unknown = Circuit.Mna.node_index mna fixture.output_node in
      let health = Diagnostics.Health.of_solution ~diagonal_unknown:unknown sol in
      print_endline (Diagnostics.Health.summary_line health);
      Printf.printf "convergence:        %s\n"
        (Diagnostics.Convergence.to_string health.Diagnostics.Health.convergence);
      Printf.printf "strategy:           %s\n" health.Diagnostics.Health.strategy;
      Printf.printf "newton iterations:  %d (linear %d)\n"
        health.Diagnostics.Health.newton_iterations
        health.Diagnostics.Health.linear_iterations;
      List.iter
        (fun (stage, iters) -> Printf.printf "  %-18s newton=%d\n" stage iters)
        health.Diagnostics.Health.stage_iterations;
      Printf.printf "residual norm:      %.3e\n"
        health.Diagnostics.Health.residual_norm;
      (match health.Diagnostics.Health.condition_estimate with
      | Some k -> Printf.printf "condition estimate: %.3e\n" k
      | None -> Printf.printf "condition estimate: unavailable\n");
      (match health.Diagnostics.Health.diagonal_residual with
      | Some d when Float.is_finite d ->
          Printf.printf "diagonal residual:  %.3e (node %s)\n" d fixture.output_node
      | Some _ -> Printf.printf "diagonal residual:  reference transient failed\n"
      | None -> ());
      Printf.printf "# report=%s\n"
        (Resilience.Report.to_json_string
           (Diagnostics.Health.attach health sol.Mpde.Solver.report));
      ignore
        (Diagnostics.Health.to_registry ~registry:metrics_registry health);
      if health.Diagnostics.Health.converged then 0 else 1

type deck_analysis = Deck_dcop | Deck_transient | Deck_ac

let deck_cmd tele file analysis node t_stop steps f_start f_stop =
  with_telemetry tele @@ fun () ->
  let text =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Circuit.Spice_parser.parse_string text with
  | exception Circuit.Spice_parser.Parse_error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" file line message;
      1
  | deck ->
      List.iter
        (fun w -> Printf.eprintf "warning: %s\n" w)
        deck.Circuit.Spice_parser.warnings;
      let mna = Circuit.Mna.build deck.Circuit.Spice_parser.netlist in
      Printf.printf "# %s (%d devices, %d unknowns)\n"
        deck.Circuit.Spice_parser.title
        (List.length (Circuit.Netlist.devices deck.Circuit.Spice_parser.netlist))
        (Circuit.Mna.size mna);
      (match analysis with
      | Deck_dcop ->
          let report = Circuit.Dcop.solve mna in
          Printf.printf "# dcop converged=%b\n" report.Circuit.Dcop.converged;
          Array.iteri
            (fun i name -> Printf.printf "%-16s %+.6e\n" name report.Circuit.Dcop.x.(i))
            (Circuit.Mna.unknown_names mna)
      | Deck_transient ->
          let result = Circuit.Transient.run ~mna ~t_stop ~steps () in
          Printf.printf "t,v(%s)\n" node;
          Array.iteri
            (fun k t ->
              Printf.printf "%.9e,%.6e\n" t
                (Circuit.Mna.voltage mna
                   result.Circuit.Transient.trace.Numeric.Integrator.states.(k)
                   node))
            result.Circuit.Transient.trace.Numeric.Integrator.times
      | Deck_ac ->
          let sweep =
            Circuit.Ac.Decade { f_start; f_stop; points_per_decade = 20 }
          in
          let r = Circuit.Ac.analyze mna sweep in
          let resp = Circuit.Ac.node_response mna r node in
          let mags = Circuit.Ac.magnitude_db resp in
          let phases = Circuit.Ac.phase_deg resp in
          Printf.printf "f,mag_db,phase_deg\n";
          Array.iteri
            (fun k f -> Printf.printf "%.6e,%.4f,%.3f\n" f mags.(k) phases.(k))
            r.Circuit.Ac.freqs);
      0

(* ---------- rfss serve: the persistent solve service ---------- *)

let serve_cmd listen workers cache_capacity warm_capacity =
  match Observe.Addr.parse listen with
  | Error e ->
      prerr_endline e;
      1
  | Ok addr -> (
      match
        Serve.Service.start ~workers ~cache_capacity ~warm_capacity addr
      with
      | Error e ->
          prerr_endline e;
          1
      | Ok svc ->
          let stop = Atomic.make false in
          let on_signal _ = Atomic.set stop true in
          Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
          Printf.printf "rfssd (%s) listening on %s workers=%d cache=%d\n%!"
            Serve.Protocol.version
            (Observe.Addr.to_string (Serve.Service.addr svc))
            workers cache_capacity;
          while not (Atomic.get stop) do
            Unix.sleepf 0.2
          done;
          prerr_endline "rfssd: shutting down";
          Serve.Service.stop svc;
          0)

(* ---------- rfss submit: one job against a running rfssd ---------- *)

let submit_cmd addr_spec circuit engine f_fast fd n1 n2 tol max_newton
    budget_seconds no_warm =
  match Observe.Addr.parse addr_spec with
  | Error e ->
      prerr_endline e;
      1
  | Ok addr -> (
      let b = Buffer.create 256 in
      let esc = Diagnostics.Json_min.escape_string in
      Buffer.add_string b
        (Printf.sprintf "{\"v\":%s,\"circuit\":%s,\"engine\":%s"
           (esc Serve.Protocol.version) (esc circuit) (esc engine));
      let opt_num name = function
        | None -> ()
        | Some v ->
            Buffer.add_string b (Printf.sprintf ",\"%s\":%.17g" name v)
      in
      opt_num "f_fast" f_fast;
      opt_num "fd" fd;
      Buffer.add_string b
        (Printf.sprintf
           ",\"options\":{\"n1\":%d,\"n2\":%d,\"tol\":%.17g,\"max_newton\":%d}"
           n1 n2 tol max_newton);
      (match budget_seconds with
      | Some s ->
          Buffer.add_string b
            (Printf.sprintf ",\"budget\":{\"wall_seconds\":%.17g}" s)
      | None -> ());
      if no_warm then Buffer.add_string b ",\"warm\":false";
      Buffer.add_char b '}';
      match Observe.Client.post ~timeout:600.0 addr "/jobs" (Buffer.contents b) with
      | Error e ->
          prerr_endline e;
          1
      | Ok (200, _, body) ->
          print_string body;
          (* Exit status mirrors the stream: error event or a
             non-converged result fails the submission. *)
          let module J = Diagnostics.Json_min in
          let lines =
            String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
          in
          let verdict line =
            match J.parse line with
            | exception J.Parse_error _ -> Some 1
            | j -> (
                match Option.bind (J.member "event" j) J.str with
                | Some "error" -> Some 1
                | Some "result" -> (
                    match Option.bind (J.member "converged" j) J.bool with
                    | Some true -> Some 0
                    | _ -> Some 1)
                | _ -> None)
          in
          Option.value (List.find_map verdict lines) ~default:1
      | Ok (status, _, body) ->
          Printf.eprintf "HTTP %d from %s/jobs\n%s" status addr_spec body;
          1)

(* ---------- rfss scrape: one-shot fetch from a live server ---------- *)

let scrape_cmd addr_spec path validate =
  match Observe.Addr.parse addr_spec with
  | Error e ->
      prerr_endline e;
      1
  | Ok addr -> (
      match Observe.Client.get ~timeout:30.0 addr path with
      | Error e ->
          prerr_endline e;
          1
      | Ok (200, _, body) ->
          if validate then begin
            match Diagnostics.Registry.parse_prometheus body with
            | exception Failure e ->
                Printf.eprintf "invalid Prometheus exposition: %s\n" e;
                1
            | samples ->
                print_string body;
                Printf.eprintf "# scrape validated: %d samples\n"
                  (List.length samples);
                0
          end
          else begin
            print_string body;
            0
          end
      | Ok (status, _, body) ->
          Printf.eprintf "HTTP %d from %s%s\n%s" status addr_spec path body;
          1)

(* ---------- rfss top: live sweep dashboard ---------- *)

let top_cmd addr_spec interval once =
  let module J = Diagnostics.Json_min in
  match Observe.Addr.parse addr_spec with
  | Error e ->
      prerr_endline e;
      1
  | Ok addr ->
      let tty = Unix.isatty Unix.stdout in
      let fetched_once = ref false in
      let recent = Queue.create () in
      let stream = ref None in
      let ensure_stream () =
        match !stream with
        | Some s when not (Observe.Client.closed s) -> Some s
        | _ -> (
            match Observe.Client.open_stream ~timeout:2.0 addr with
            | Ok s ->
                stream := Some s;
                Some s
            | Error _ -> None)
      in
      let drain_events () =
        match ensure_stream () with
        | None -> ()
        | Some s ->
            List.iter
              (fun line ->
                match J.parse line with
                | exception J.Parse_error _ -> ()
                | j ->
                    if J.member "event" j <> None then begin
                      Queue.add line recent;
                      while Queue.length recent > 8 do
                        ignore (Queue.pop recent)
                      done
                    end)
              (Observe.Client.poll_lines s)
      in
      let fnum path j = Option.bind (J.path path j) J.num in
      let fint path j =
        match fnum path j with
        | Some v -> Printf.sprintf "%.0f" v
        | None -> "--"
      in
      let fsec path j =
        match fnum path j with
        | Some v -> Printf.sprintf "%.1fs" v
        | None -> "--"
      in
      let render body =
        match J.parse body with
        | exception J.Parse_error _ -> print_endline (String.trim body)
        | j ->
            if tty then print_string "\027[2J\027[H";
            Printf.printf "rfss top — %s\n" addr_spec;
            Printf.printf
              "phase %-8s elapsed %-9s worst %-12s budget-left %s\n"
              (Option.value ~default:"?"
                 (Option.bind (J.member "phase" j) J.str))
              (fsec [ "elapsed_seconds" ] j)
              (Option.value ~default:"--"
                 (Option.bind (J.member "worst_health" j) J.str))
              (fsec [ "budget_remaining_seconds" ] j);
            Printf.printf
              "jobs  %s/%s done  %s in flight  %s failed  %s degraded  %s \
               retries  %s checkpoints\n"
              (fint [ "jobs"; "finished" ] j)
              (fint [ "jobs"; "total" ] j)
              (fint [ "jobs"; "in_flight" ] j)
              (fint [ "jobs"; "failed" ] j)
              (fint [ "jobs"; "degraded" ] j)
              (fint [ "jobs"; "retries" ] j)
              (fint [ "jobs"; "checkpoints" ] j);
            let rate =
              match fnum [ "jobs_per_second" ] j with
              | Some r -> Printf.sprintf "%.2f" r
              | None -> "--"
            in
            Printf.printf "rate  %s jobs/s   eta %s\n" rate
              (fsec [ "eta_seconds" ] j);
            (match J.member "workers" j with
            | Some (J.Arr ws) when ws <> [] ->
                Printf.printf "%-7s %-5s %-9s %-8s %-8s %s\n" "worker" "busy"
                  "done" "busy-s" "retries" "job";
                List.iter
                  (fun w ->
                    Printf.printf "%-7s %-5s %-9s %-8s %-8s %s\n"
                      (fint [ "worker" ] w)
                      (match Option.bind (J.member "busy" w) J.bool with
                      | Some true -> "yes"
                      | Some false -> "no"
                      | None -> "--")
                      (fint [ "jobs_done" ] w)
                      (match fnum [ "busy_seconds" ] w with
                      | Some v -> Printf.sprintf "%.2f" v
                      | None -> "--")
                      (fint [ "retries" ] w)
                      (Option.value ~default:"-"
                         (Option.bind (J.member "job" w) J.str)))
                  ws
            | _ -> ());
            if not (Queue.is_empty recent) then begin
              print_endline "recent events:";
              Queue.iter (fun l -> Printf.printf "  %s\n" l) recent
            end;
            flush stdout
      in
      let rec loop () =
        match Observe.Client.get ~timeout:2.0 addr "/healthz" with
        | Error e ->
            (* A server that answered at least once and then went away
               is a run that finished — normal exit, not an error. *)
            if !fetched_once then 0
            else begin
              prerr_endline e;
              1
            end
        | Ok (200, _, body) ->
            fetched_once := true;
            drain_events ();
            render body;
            if once then 0
            else begin
              Telemetry.Clock.sleep interval;
              loop ()
            end
        | Ok (status, _, _) ->
            Printf.eprintf "HTTP %d from %s/healthz\n" status addr_spec;
            1
      in
      let code = loop () in
      (match !stream with Some s -> Observe.Client.close_stream s | None -> ());
      code

(* ---------- cmdliner wiring ---------- *)

open Cmdliner

let circuit_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "circuit" ] ~docv:"NAME" ~doc:"Built-in circuit name (see $(b,rfss list)).")

let f_fast_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "fast" ] ~docv:"HZ" ~doc:"Fast (LO) fundamental frequency.")

let fd_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "fd" ] ~docv:"HZ" ~doc:"Difference (slow) frequency.")

let budget_seconds_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-seconds" ] ~docv:"S"
        ~doc:
          "Wall-clock budget for the whole solve (all escalation stages); on \
           exhaustion the best iterate so far is reported with an \
           $(i,exhausted) outcome instead of hanging.")

let max_newton_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-newton" ] ~docv:"N"
        ~doc:"Total Newton-iteration budget across all escalation stages.")

let telemetry_arg =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record solver telemetry and write the event trace to $(docv).")
  in
  let trace_format =
    let fmt_conv = Arg.enum [ ("jsonl", Jsonl); ("chrome", Chrome) ] in
    Arg.(
      value
      & opt fmt_conv Jsonl
      & info [ "trace-format" ] ~docv:"FMT"
          ~doc:
            "Trace file format: $(b,jsonl) (one JSON event per line) or \
             $(b,chrome) (Chrome trace_event JSON for chrome://tracing or \
             Perfetto).")
  in
  let timings =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:"Print the hierarchical span timing summary to stderr after the run.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export solver metrics (counters, gauges, histogram summaries, \
             span timings) to $(docv) after the run — Prometheus text \
             exposition format, or CSV when $(docv) ends in $(b,.csv).")
  in
  Term.(
    const (fun trace trace_format timings metrics ->
        { trace; trace_format; timings; metrics })
    $ trace $ trace_format $ timings $ metrics)

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Serve live introspection endpoints ($(b,/metrics), \
           $(b,/healthz), $(b,/events)) for the duration of the run. \
           $(docv) is a Unix socket path (contains $(b,/), or prefixed \
           $(b,unix:)) or $(b,HOST:PORT) ($(b,PORT) $(b,0) picks an \
           ephemeral port). Without this flag nothing is armed and the \
           hooks cost one atomic load per job.")

let list_term = Term.(const list_cmd $ const ())

let dcop_term =
  Term.(const dcop_cmd $ telemetry_arg $ circuit_arg $ f_fast_arg $ fd_arg $ budget_seconds_arg $ max_newton_arg)

let transient_term =
  let t_stop =
    Arg.(value & opt (some float) None & info [ "t-stop" ] ~docv:"S" ~doc:"Stop time.")
  in
  let steps =
    Arg.(value & opt int 1000 & info [ "steps" ] ~docv:"N" ~doc:"Fixed step count.")
  in
  Term.(const transient_cmd $ telemetry_arg $ circuit_arg $ f_fast_arg $ fd_arg $ t_stop $ steps)

let shooting_term =
  let steps =
    Arg.(value & opt int 256 & info [ "steps" ] ~docv:"N" ~doc:"Steps per period.")
  in
  Term.(
    const shooting_cmd $ telemetry_arg $ circuit_arg $ f_fast_arg $ fd_arg $ steps $ budget_seconds_arg
    $ max_newton_arg)

let hb_term =
  let harmonics =
    Arg.(value & opt int 8 & info [ "harmonics" ] ~docv:"K" ~doc:"Harmonic count.")
  in
  Term.(
    const hb_cmd $ telemetry_arg $ circuit_arg $ f_fast_arg $ fd_arg $ harmonics $ budget_seconds_arg
    $ max_newton_arg)

let engine_period_arg =
  let period_conv =
    Arg.enum
      [
        ("fast", Engine.Problem.Fast_tone);
        ("difference", Engine.Problem.Difference_tone);
      ]
  in
  Arg.(
    value
    & opt period_conv Engine.Problem.Fast_tone
    & info [ "period" ] ~docv:"WHICH"
        ~doc:
          "Which fundamental the single-time engines lock onto: $(b,fast) \
           (one LO period) or $(b,difference) (the whole difference period — \
           the paper's §3 cost comparison; scale --steps with the disparity \
           to keep the fast tone resolved). Ignored by the MPDE engine.")

let solve_term =
  let engine =
    Arg.(
      value
      & opt string "shooting"
      & info [ "engine" ] ~docv:"NAME"
          ~doc:
            "Steady-state engine: $(b,shooting), $(b,multiple-shooting), \
             $(b,hb), $(b,periodic-fd) or $(b,mpde).")
  in
  let steps =
    Arg.(value & opt int 256 & info [ "steps" ] ~docv:"N" ~doc:"Shooting steps per period.")
  in
  let segments =
    Arg.(value & opt int 8 & info [ "segments" ] ~docv:"N" ~doc:"Multiple-shooting windows.")
  in
  let harmonics =
    Arg.(value & opt int 8 & info [ "harmonics" ] ~docv:"K" ~doc:"HB harmonic count.")
  in
  let points =
    Arg.(value & opt int 64 & info [ "points" ] ~docv:"N" ~doc:"Periodic-FD collocation points.")
  in
  let n1 = Arg.(value & opt int 32 & info [ "n1" ] ~docv:"N" ~doc:"MPDE fast-scale points.") in
  let n2 = Arg.(value & opt int 24 & info [ "n2" ] ~docv:"N" ~doc:"MPDE slow-scale points.") in
  let tol =
    Arg.(value & opt float 1e-8 & info [ "tol" ] ~docv:"T" ~doc:"Residual infinity-norm target.")
  in
  Term.(
    const solve_cmd $ telemetry_arg $ listen_arg $ circuit_arg $ engine
    $ f_fast_arg $ fd_arg $ engine_period_arg $ steps $ segments $ harmonics
    $ points $ n1 $ n2 $ tol $ budget_seconds_arg $ max_newton_arg)

let sweep_term =
  let engines =
    Arg.(
      value
      & opt string "mpde"
      & info [ "engine" ] ~docv:"LIST"
          ~doc:
            "Comma-separated engines to sweep, e.g. $(b,mpde,shooting); each \
             runs every parameter value as its own job.")
  in
  let param =
    Arg.(
      required
      & opt (some string) None
      & info [ "param" ] ~docv:"SPEC"
          ~doc:
            "Swept parameter: $(b,fd=START:STOP:lin|log:N) or \
             $(b,fast=v1,v2,...). $(b,fd) sweeps the difference tone, \
             $(b,fast) the LO fundamental.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel executor; defaults to the \
             $(b,DOMAINS) environment variable, then the machine's \
             recommended domain count. $(b,1) forces fully serial execution.")
  in
  let no_wall =
    Arg.(
      value & flag
      & info [ "no-wall" ]
          ~doc:
            "Omit wall-clock columns so two runs (e.g. serial vs parallel in \
             CI) can be compared byte-for-byte.")
  in
  let format =
    Arg.(
      value
      & opt (Arg.enum [ ("csv", Sweep_csv); ("json", Sweep_json) ]) Sweep_csv
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: $(b,csv) or $(b,json).")
  in
  let n1 = Arg.(value & opt int 32 & info [ "n1" ] ~docv:"N" ~doc:"MPDE fast-scale points.") in
  let n2 = Arg.(value & opt int 24 & info [ "n2" ] ~docv:"N" ~doc:"MPDE slow-scale points.") in
  let steps =
    Arg.(value & opt int 256 & info [ "steps" ] ~docv:"N" ~doc:"Shooting steps per period.")
  in
  let tol =
    Arg.(value & opt float 1e-8 & info [ "tol" ] ~docv:"T" ~doc:"Residual infinity-norm target.")
  in
  let per_job_telemetry =
    Arg.(
      value & flag
      & info [ "per-job-telemetry" ]
          ~doc:
            "Enable a telemetry recorder around every job on its executing \
             domain (recorders are domain-local; without this, worker domains \
             record nothing).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Print a live progress line to stderr as jobs finish: \
             completed/total, percentage, elapsed, ETA and jobs/s.")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"SPEC"
          ~doc:
            "Install a deterministic fault-injection plan for the run, e.g. \
             $(b,seed=7,nan\\@residual/newton:1,crash\\@job/#1:1). Items are \
             $(b,KIND\\@SITE[/FILTER]:TRIGGER[=MAG]) with kinds \
             nan/inf/singular/illcond/stall/crash/slow/kill, sites \
             residual/jacobian/gmres/newton/job, and triggers N, NxM or ~P.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL record per completed job to $(docv) (atomic \
             temp+rename), so a killed sweep can be resumed.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "With $(b,--checkpoint), skip jobs whose records are already in \
             the file (validated by hash) and re-render them byte-for-byte; \
             without it the file is truncated at start.")
  in
  let keep_going =
    Arg.(
      value & flag
      & info [ "keep-going" ]
          ~doc:
            "Exit 0 even when jobs finished in error or degraded (the \
             pre-fault-tolerance behavior was to always exit 0).")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a transiently failing job (crash, exhausted budget slice) \
             up to $(docv) extra times with decorrelated-jitter backoff. \
             $(b,0) disables retry.")
  in
  let no_degrade =
    Arg.(
      value & flag
      & info [ "no-degrade" ]
          ~doc:
            "Disable the watchdog: do not grant a repeatedly failing job a \
             final attempt at coarser grid / looser tolerance.")
  in
  Term.(
    const sweep_cmd $ telemetry_arg $ listen_arg $ circuit_arg $ engines
    $ param $ f_fast_arg $ fd_arg $ engine_period_arg $ domains $ no_wall
    $ format $ n1 $ n2 $ steps $ tol $ budget_seconds_arg $ max_newton_arg
    $ per_job_telemetry $ progress $ fault_plan $ checkpoint $ resume
    $ keep_going $ retries $ no_degrade)

let report_term =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Chrome trace JSON written by $(b,--trace FILE --trace-format \
             chrome) (a merged sweep trace or a single-solve trace).")
  in
  let top =
    Arg.(
      value & opt int 12
      & info [ "top" ] ~docv:"K" ~doc:"Spans to list in the self-time table.")
  in
  Term.(const report_cmd $ file $ top)

let mpde_term =
  let n1 = Arg.(value & opt int 40 & info [ "n1" ] ~docv:"N" ~doc:"Fast-scale points.") in
  let n2 = Arg.(value & opt int 30 & info [ "n2" ] ~docv:"N" ~doc:"Slow-scale points.") in
  let output =
    let kind_conv =
      Arg.enum
        [ ("envelope", Envelope); ("surface", Surface); ("diagonal", Diagonal); ("gain", Gain) ]
    in
    Arg.(value & opt kind_conv Envelope & info [ "output" ] ~docv:"KIND" ~doc:"What to print.")
  in
  Term.(
    const mpde_cmd $ telemetry_arg $ circuit_arg $ f_fast_arg $ fd_arg $ n1 $ n2 $ output
    $ budget_seconds_arg $ max_newton_arg)

let envelope_term =
  let n1 = Arg.(value & opt int 32 & info [ "n1" ] ~docv:"N" ~doc:"Fast-scale points.") in
  let steps = Arg.(value & opt int 48 & info [ "steps" ] ~docv:"N" ~doc:"Slow steps.") in
  let periods =
    Arg.(value & opt float 2.0 & info [ "periods" ] ~docv:"X" ~doc:"Difference periods to march.")
  in
  Term.(const envelope_cmd $ telemetry_arg $ circuit_arg $ f_fast_arg $ fd_arg $ n1 $ steps $ periods)

let deck_term =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SPICE deck.")
  in
  let analysis =
    let conv_analysis =
      Arg.enum [ ("dcop", Deck_dcop); ("transient", Deck_transient); ("ac", Deck_ac) ]
    in
    Arg.(value & opt conv_analysis Deck_dcop & info [ "analysis" ] ~docv:"KIND" ~doc:"Analysis to run.")
  in
  let node =
    Arg.(value & opt string "out" & info [ "node" ] ~docv:"NAME" ~doc:"Node to report.")
  in
  let t_stop = Arg.(value & opt float 1e-3 & info [ "t-stop" ] ~docv:"S" ~doc:"Transient stop time.") in
  let steps = Arg.(value & opt int 1000 & info [ "steps" ] ~docv:"N" ~doc:"Transient steps.") in
  let f_start = Arg.(value & opt float 1.0 & info [ "f-start" ] ~docv:"HZ" ~doc:"AC sweep start.") in
  let f_stop = Arg.(value & opt float 1e9 & info [ "f-stop" ] ~docv:"HZ" ~doc:"AC sweep stop.") in
  Term.(const deck_cmd $ telemetry_arg $ file $ analysis $ node $ t_stop $ steps $ f_start $ f_stop)

let top_addr_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ADDR"
        ~doc:
          "Address a running $(b,rfss sweep --listen)/$(b,rfss solve \
           --listen) is serving on: a Unix socket path or $(b,HOST:PORT).")

let top_term =
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"S" ~doc:"Seconds between refreshes.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Render one snapshot and exit (for scripts).")
  in
  Term.(const top_cmd $ top_addr_arg $ interval $ once)

let serve_term =
  let listen =
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Address to serve rfss.jobs/1 on: a Unix socket path or \
             $(b,HOST:PORT) (port $(b,0) picks a free one).")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Solver worker domains.")
  in
  let cache =
    Arg.(
      value & opt int 64
      & info [ "cache" ] ~docv:"N"
          ~doc:"Result-cache capacity (LRU entries).")
  in
  let warm =
    Arg.(
      value & opt int 16
      & info [ "warm" ] ~docv:"N"
          ~doc:"Warm-start store capacity (converged MPDE surfaces).")
  in
  Term.(const serve_cmd $ listen $ workers $ cache $ warm)

let submit_term =
  let engine =
    Arg.(
      value & opt string "mpde"
      & info [ "engine" ] ~docv:"NAME"
          ~doc:"Engine: shooting, multiple-shooting, hb, periodic-fd or mpde.")
  in
  let n1 = Arg.(value & opt int 32 & info [ "n1" ] ~docv:"N" ~doc:"Fast-scale points.") in
  let n2 = Arg.(value & opt int 24 & info [ "n2" ] ~docv:"N" ~doc:"Slow-scale points.") in
  let tol =
    Arg.(value & opt float 1e-8 & info [ "tol" ] ~docv:"T" ~doc:"Residual target.")
  in
  let max_newton =
    Arg.(
      value & opt int 50
      & info [ "max-newton" ] ~docv:"N" ~doc:"Outer Newton cap per solve.")
  in
  let no_warm =
    Arg.(
      value & flag
      & info [ "no-warm" ]
          ~doc:
            "Do not seed this solve from (or contribute it to) the server's \
             warm-start surface store.")
  in
  Term.(
    const submit_cmd $ top_addr_arg $ circuit_arg $ engine $ f_fast_arg
    $ fd_arg $ n1 $ n2 $ tol $ max_newton $ budget_seconds_arg $ no_warm)

let scrape_term =
  let path =
    Arg.(
      value
      & opt string "/metrics"
      & info [ "path" ] ~docv:"PATH"
          ~doc:
            "Endpoint to fetch: $(b,/metrics), $(b,/healthz) or \
             $(b,/events) (the event stream is read until the server \
             closes it).")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Re-parse the body with the strict Prometheus text parser \
             and fail on any malformed line (only meaningful for \
             $(b,/metrics)).")
  in
  Term.(const scrape_cmd $ top_addr_arg $ path $ validate)

let health_term =
  let n1 = Arg.(value & opt int 40 & info [ "n1" ] ~docv:"N" ~doc:"Fast-scale points.") in
  let n2 = Arg.(value & opt int 30 & info [ "n2" ] ~docv:"N" ~doc:"Slow-scale points.") in
  Term.(
    const health_cmd $ telemetry_arg $ circuit_arg $ f_fast_arg $ fd_arg $ n1 $ n2
    $ budget_seconds_arg $ max_newton_arg)

let cmds =
  [
    Cmd.v (Cmd.info "list" ~doc:"List built-in circuits.") list_term;
    Cmd.v
      (Cmd.info "deck" ~doc:"Parse a SPICE deck and run DC / transient / AC analysis.")
      deck_term;
    Cmd.v (Cmd.info "dcop" ~doc:"DC operating point.") dcop_term;
    Cmd.v (Cmd.info "transient" ~doc:"Time-stepping transient analysis (CSV).") transient_term;
    Cmd.v (Cmd.info "shooting" ~doc:"Single-tone periodic steady state by shooting (CSV).") shooting_term;
    Cmd.v (Cmd.info "hb" ~doc:"Single-tone harmonic balance (CSV).") hb_term;
    Cmd.v
      (Cmd.info "solve"
         ~doc:
           "Run any steady-state engine through the unified Engine API: one \
            result shape (waveform CSV, RF metrics, health, report) \
            regardless of backend.")
      solve_term;
    Cmd.v
      (Cmd.info "sweep"
         ~doc:
           "Parameter sweep executed in parallel on OCaml 5 domains: every \
            (engine, parameter value) pair is one job; results are emitted \
            in deterministic job order (CSV or JSON).")
      sweep_term;
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Wall-time attribution from a recorded Chrome trace: per-lane \
            (per-domain) busy time and utilization, top spans by self time, \
            GC pause percentiles, and an accounting line tying span \
            self-times back to the measured wall.")
      report_term;
    Cmd.v
      (Cmd.info "mpde"
         ~doc:"Bi-periodic MPDE on sheared difference-frequency time scales (CSV).")
      mpde_term;
    Cmd.v (Cmd.info "envelope" ~doc:"Envelope-following MPDE along the slow scale (CSV).") envelope_term;
    Cmd.v
      (Cmd.info "health"
         ~doc:
           "Solve the MPDE and report numerical health: convergence class, \
            per-stage Newton iterations, Jacobian condition estimate, and \
            diagonal-consistency residual.")
      health_term;
    Cmd.v
      (Cmd.info "top"
         ~doc:
           "Live dashboard for a run served with $(b,--listen): per-domain \
            utilization, job counts, retry/degrade totals, rate and ETA, \
            refreshed from $(b,/healthz) and $(b,/events).")
      top_term;
    Cmd.v
      (Cmd.info "scrape"
         ~doc:
           "Fetch one introspection endpoint from a live run and print the \
            body to stdout; $(b,--validate) re-parses $(b,/metrics) with \
            the strict Prometheus parser.")
      scrape_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run rfssd, the persistent solve service: accepts rfss.jobs/1 \
            requests on $(b,POST /jobs), executes them on worker domains, \
            replays repeated jobs from a canonical-key result cache, and \
            warm-starts cache-near MPDE solves from converged surfaces.")
      serve_term;
    Cmd.v
      (Cmd.info "submit"
         ~doc:
           "Submit one solve to a running $(b,rfss serve) instance and \
            stream the JSONL response (accepted / result / done) to stdout. \
            Exit status reflects convergence.")
      submit_term;
  ]

let () =
  let info =
    Cmd.info "rfss" ~version:"1.0.0"
      ~doc:"Time-domain RF steady state for closely spaced tones (MPDE)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
