(* Tests for the unified engine API and the parallel sweep executor:
   every backend solving the same problem through Engine.run, the
   options-to-backend mapping, sweep determinism (parallel outcome
   arrays identical to serial, waveforms bitwise), crash isolation
   (a raising build thunk errors its own job only), budget propagation
   from the sweep deadline into per-job budgets, per-domain telemetry
   isolation, and run determinism for identical inputs. *)

module W = Circuit.Waveform

let rc_problem ?(label = "rc") ?(f_fast = 1e6) ?(fd = 1e4) () =
  Engine.Problem.make ~label ~output:"out" ~f_fast ~fd (fun () ->
      Circuits.rc_lowpass
        ~drive:
          (W.sum
             (W.sine ~amplitude:1.0 ~freq:f_fast ())
             (W.sine ~amplitude:1.0 ~freq:(f_fast +. fd) ()))
        ())

(* Small grids/discretizations keep the full five-engine matrix fast. *)
let small_options =
  {
    Engine.Options.default with
    steps_per_period = 64;
    segments = 4;
    steps_per_segment = 16;
    harmonics = 6;
    points = 33;
    n1 = 16;
    n2 = 12;
  }

(* ---------- Engine.run over every backend ---------- *)

let test_all_kinds_converge () =
  let problem = rc_problem () in
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let r = Engine.run problem (Engine.make ~options:small_options kind) in
      Alcotest.(check bool) (name ^ " converged") true r.Engine.Result.converged;
      Alcotest.(check bool)
        (name ^ " report success") true
        (Resilience.Report.success r.Engine.Result.report);
      Alcotest.(check string) (name ^ " label") "rc" r.Engine.Result.label;
      Alcotest.(check bool)
        (name ^ " has waveform") true
        (Array.length r.Engine.Result.waveform.Engine.Result.values > 0);
      Alcotest.(check bool)
        (name ^ " waveform finite") true
        (Array.for_all Float.is_finite
           r.Engine.Result.waveform.Engine.Result.values);
      Alcotest.(check bool)
        (name ^ " times/values aligned") true
        (Array.length r.Engine.Result.waveform.Engine.Result.times
        = Array.length r.Engine.Result.waveform.Engine.Result.values);
      Alcotest.(check bool)
        (name ^ " has metrics") true
        (r.Engine.Result.metrics <> []);
      (* The linear RC driven at ~1 V must show a visible fundamental. *)
      let h1 =
        List.fold_left
          (fun acc (k, v) ->
            if k = "h1_amplitude" || k = "baseband_h1" then Some v else acc)
          None r.Engine.Result.metrics
      in
      (* Single-time engines see the ~1 V fundamental; MPDE reports the
         baseband difference tone, which is essentially zero on a
         linear RC (no mixing) — so only bound it above. *)
      (match h1 with
      | Some v ->
          Alcotest.(check bool)
            (name ^ " h1 sane") true
            (Float.is_finite v && v >= 0.0 && v < 10.0);
          if kind <> Engine.Mpde then
            Alcotest.(check bool) (name ^ " h1 visible") true (v > 0.1)
      | None -> Alcotest.failf "%s: no fundamental metric" name);
      match kind with
      | Engine.Mpde ->
          Alcotest.(check bool)
            "mpde attaches solution" true
            (r.Engine.Result.mpde_solution <> None)
      | _ ->
          Alcotest.(check bool)
            (name ^ " no mpde solution") true
            (r.Engine.Result.mpde_solution = None))
    Engine.all_kinds

let test_kind_names_round_trip () =
  List.iter
    (fun kind ->
      match Engine.kind_of_name (Engine.kind_name kind) with
      | Ok k -> Alcotest.(check bool) "round trip" true (k = kind)
      | Error e -> Alcotest.fail e)
    Engine.all_kinds;
  (match Engine.kind_of_name "msh" with
  | Ok Engine.Multiple_shooting -> ()
  | _ -> Alcotest.fail "msh alias");
  (match Engine.kind_of_name "PFD" with
  | Ok Engine.Periodic_fd -> ()
  | _ -> Alcotest.fail "pfd alias case-insensitive");
  match Engine.kind_of_name "spectral" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown name must error"

let test_period_choice () =
  let fast = rc_problem () in
  let diff =
    { fast with Engine.Problem.period = Engine.Problem.Difference_tone }
  in
  Alcotest.(check (float 1e-12)) "fast period" 1e-6
    (Engine.Problem.engine_period fast);
  Alcotest.(check (float 1e-10)) "difference period" 1e-4
    (Engine.Problem.engine_period diff);
  Alcotest.(check (float 1e-9)) "disparity" 100.0
    (Engine.Problem.disparity fast)

let test_run_respects_budget () =
  (* A pre-exhausted wall budget must surface as a clean Exhausted
     outcome, not a hang or an exception. *)
  let budget = Resilience.Budget.make ~wall_seconds:0.0 () in
  let options =
    { small_options with Engine.Options.budget = Some budget }
  in
  let r = Engine.run (rc_problem ()) (Engine.make ~options Engine.Mpde) in
  Alcotest.(check bool) "not converged" false r.Engine.Result.converged;
  match r.Engine.Result.report.Resilience.Report.outcome with
  | Resilience.Report.Exhausted _ -> ()
  | o ->
      Alcotest.failf "expected exhausted, got %s"
        (Resilience.Report.outcome_to_string o)

(* ---------- Sweep ---------- *)

let fd_values = [| 1e3; 2e3; 5e3; 1e4; 2e4; 5e4; 1e5; 2e5 |]

let sweep_jobs ?(kind = Engine.Mpde) () =
  Array.map
    (fun fd ->
      Engine.Sweep.job ~options:small_options ~kind
        (rc_problem ~label:(Printf.sprintf "fd=%g" fd) ~fd ()))
    fd_values

let result_exn (o : Engine.Sweep.outcome) =
  match o.Engine.Sweep.result with
  | Ok r -> r
  | Error e ->
      Alcotest.failf "job %d errored: %s" o.Engine.Sweep.index
        (Engine.Sweep.failure_to_string e)

let test_sweep_parallel_matches_serial () =
  let serial = Engine.Sweep.run ~domains:1 (sweep_jobs ()) in
  let parallel = Engine.Sweep.run ~domains:2 (sweep_jobs ()) in
  Alcotest.(check int) "same length" (Array.length serial)
    (Array.length parallel);
  Array.iteri
    (fun i s ->
      let p = parallel.(i) in
      Alcotest.(check int) "index order" i p.Engine.Sweep.index;
      let rs = result_exn s and rp = result_exn p in
      Alcotest.(check string) "label" rs.Engine.Result.label
        rp.Engine.Result.label;
      Alcotest.(check bool) "converged" rs.Engine.Result.converged
        rp.Engine.Result.converged;
      (* Bitwise, not approximate: identical code on identical inputs,
         scheduling must not leak into the numerics. *)
      Alcotest.(check bool)
        "waveform bitwise equal" true
        (rs.Engine.Result.waveform = rp.Engine.Result.waveform);
      Alcotest.(check bool)
        "residual bitwise equal" true
        (Int64.bits_of_float rs.Engine.Result.residual_norm
        = Int64.bits_of_float rp.Engine.Result.residual_norm))
    serial

let test_sweep_isolates_crashing_job () =
  let jobs = sweep_jobs () in
  let poisoned =
    Engine.Sweep.job ~label:"poison" ~options:small_options ~kind:Engine.Mpde
      (Engine.Problem.make ~label:"poison" ~f_fast:1e6 ~fd:1e4 (fun () ->
           failwith "deliberately broken build thunk"))
  in
  let all = Array.concat [ Array.sub jobs 0 2; [| poisoned |]; Array.sub jobs 2 2 ] in
  let outcomes = Engine.Sweep.run ~domains:2 all in
  Alcotest.(check int) "all jobs reported" 5 (Array.length outcomes);
  (match outcomes.(2).Engine.Sweep.result with
  | Error f ->
      let contains ~sub s =
        let n = String.length sub and m = String.length s in
        let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        "error message propagated" true
        (contains ~sub:"deliberately broken" f.Engine.Sweep.message)
  | Ok _ -> Alcotest.fail "poisoned job must error");
  Array.iteri
    (fun i o ->
      if i <> 2 then
        Alcotest.(check bool)
          (Printf.sprintf "sibling %d unharmed" i)
          true
          (result_exn o).Engine.Result.converged)
    outcomes

let test_sweep_deadline_propagates () =
  (* Zero sweep budget: every job derives an already-exhausted wall
     budget and must come back Exhausted, never converged, and never
     raise out of the pool. *)
  let outcomes =
    Engine.Sweep.run ~domains:2 ~wall_seconds:0.0 (sweep_jobs ())
  in
  Array.iter
    (fun (o : Engine.Sweep.outcome) ->
      let r = result_exn o in
      Alcotest.(check bool) "not converged" false r.Engine.Result.converged;
      match r.Engine.Result.report.Resilience.Report.outcome with
      | Resilience.Report.Exhausted _ -> ()
      | out ->
          Alcotest.failf "job %d: expected exhausted, got %s"
            o.Engine.Sweep.index
            (Resilience.Report.outcome_to_string out))
    outcomes

let test_sweep_max_newton_per_job () =
  (* One Newton iteration is not enough for the diode rectifier; the
     cap must bite per job and be reported as exhaustion. *)
  let problem =
    Engine.Problem.make ~label:"rectifier" ~output:"out" ~f_fast:1e6 ~fd:1e4
      (fun () ->
        Circuits.diode_rectifier
          ~drive:(W.sine ~amplitude:2.0 ~freq:1e6 ())
          ())
  in
  let jobs =
    [| Engine.Sweep.job ~options:small_options ~kind:Engine.Shooting problem |]
  in
  let outcomes = Engine.Sweep.run ~domains:1 ~max_newton_per_job:1 jobs in
  let r = result_exn outcomes.(0) in
  Alcotest.(check bool) "capped job not converged" false
    r.Engine.Result.converged

let test_pool_order_and_clamp () =
  let items = Array.init 37 (fun i -> i) in
  let doubled = Engine.Pool.map ~domains:8 (fun i -> 2 * i) items in
  Alcotest.(check (array int)) "order preserved"
    (Array.map (fun i -> 2 * i) items)
    doubled;
  let empty = Engine.Pool.map ~domains:4 (fun i -> i) [||] in
  Alcotest.(check int) "empty input" 0 (Array.length empty)

(* ---------- telemetry isolation across domains ---------- *)

let test_telemetry_domain_isolation () =
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  Telemetry.span "main-domain-span" (fun () -> ());
  let worker_saw_recorder =
    Domain.join
      (Domain.spawn (fun () ->
           (* The recorder is domain-local: a fresh domain starts with
              none, and enabling here must not touch the main one. *)
           let before = Telemetry.enabled () in
           Telemetry.enable ();
           Telemetry.span "worker-span" (fun () -> ());
           Telemetry.disable ();
           before))
  in
  Alcotest.(check bool) "worker starts without recorder" false
    worker_saw_recorder;
  Alcotest.(check bool) "main recorder survives worker" true
    (Telemetry.enabled ());
  match Telemetry.snapshot () with
  | None -> Alcotest.fail "main snapshot missing"
  | Some snap ->
      let names =
        Array.to_list snap.Telemetry.events
        |> List.filter_map (function
             | Telemetry.Span_begin { name; _ } -> Some name
             | _ -> None)
      in
      Alcotest.(check bool) "main span recorded" true
        (List.mem "main-domain-span" names);
      Alcotest.(check bool) "worker span not leaked into main" false
        (List.mem "worker-span" names)

let test_sweep_per_job_telemetry () =
  let outcomes =
    Engine.Sweep.run ~domains:2 ~per_job_telemetry:true
      (Array.sub (sweep_jobs ()) 0 4)
  in
  Array.iter
    (fun (o : Engine.Sweep.outcome) ->
      let r = result_exn o in
      match r.Engine.Result.telemetry with
      | Some summary ->
          Alcotest.(check bool)
            "per-job summary has spans" true
            (summary.Telemetry.Summary.roots <> [])
      | None -> Alcotest.failf "job %d: no telemetry" o.Engine.Sweep.index)
    outcomes

(* ---------- run determinism ---------- *)

(* Replaced the deprecated run_<method> wrapper test when the wrappers
   were removed: the property worth keeping is that Engine.run is
   deterministic for identical inputs — the invariant the serve-layer
   result cache relies on. *)
let test_run_deterministic () =
  let problem = rc_problem () in
  let r =
    Engine.run problem (Engine.make ~options:small_options Engine.Shooting)
  in
  Alcotest.(check bool) "converged" true r.Engine.Result.converged;
  Alcotest.(check bool) "kind" true (r.Engine.Result.kind = Engine.Shooting);
  let again =
    Engine.run problem (Engine.make ~options:small_options Engine.Shooting)
  in
  Alcotest.(check bool) "same waveform" true
    (r.Engine.Result.waveform = again.Engine.Result.waveform)

let () =
  Alcotest.run "engine"
    [
      ( "run",
        [
          Alcotest.test_case "all kinds converge on rc" `Slow
            test_all_kinds_converge;
          Alcotest.test_case "kind names round trip" `Quick
            test_kind_names_round_trip;
          Alcotest.test_case "period choice" `Quick test_period_choice;
          Alcotest.test_case "pre-exhausted budget" `Quick
            test_run_respects_budget;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "parallel matches serial bitwise" `Slow
            test_sweep_parallel_matches_serial;
          Alcotest.test_case "crashing job isolated" `Quick
            test_sweep_isolates_crashing_job;
          Alcotest.test_case "deadline propagates to jobs" `Quick
            test_sweep_deadline_propagates;
          Alcotest.test_case "per-job newton cap" `Quick
            test_sweep_max_newton_per_job;
          Alcotest.test_case "pool order and clamping" `Quick
            test_pool_order_and_clamp;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "domain-local recorders" `Quick
            test_telemetry_domain_isolation;
          Alcotest.test_case "per-job telemetry in sweeps" `Quick
            test_sweep_per_job_telemetry;
        ] );
      ( "compat",
        [
          Alcotest.test_case "run is deterministic" `Quick
            test_run_deterministic;
        ] );
    ]
