(* Tests for FFT, Newton, continuation, integrators, interpolation. *)

module Vec = Linalg.Vec
module Fft = Numeric.Fft
module Newton = Numeric.Newton
module Integrator = Numeric.Integrator
module Interp = Numeric.Interp

let check_float = Alcotest.(check (float 1e-9))
let pi = 4.0 *. atan 1.0

(* ---------- Fft ---------- *)

let test_fft_pow2_matches_dft () =
  let x = Linalg.Cvec.init 16 (fun k ->
      { Complex.re = sin (0.7 *. float_of_int k); im = cos (1.3 *. float_of_int k) }) in
  Alcotest.(check bool) "radix-2 = naive DFT" true
    (Linalg.Cvec.approx_equal ~tol:1e-9 (Fft.fft x) (Fft.dft_naive x))

let test_fft_bluestein_matches_dft () =
  (* Non-power-of-two length exercises the chirp-z path. *)
  let x = Linalg.Cvec.init 12 (fun k ->
      { Complex.re = float_of_int (k mod 5); im = -.float_of_int (k mod 3) }) in
  Alcotest.(check bool) "bluestein = naive DFT" true
    (Linalg.Cvec.approx_equal ~tol:1e-8 (Fft.fft x) (Fft.dft_naive x))

let test_fft_prime_length () =
  let x = Linalg.Cvec.init 13 (fun k -> { Complex.re = exp (-0.1 *. float_of_int k); im = 0.0 }) in
  Alcotest.(check bool) "prime length" true
    (Linalg.Cvec.approx_equal ~tol:1e-8 (Fft.fft x) (Fft.dft_naive x))

let test_fft_roundtrip () =
  let x = Linalg.Cvec.init 21 (fun k ->
      { Complex.re = float_of_int k; im = float_of_int (k * k mod 7) }) in
  Alcotest.(check bool) "ifft (fft x) = x" true
    (Linalg.Cvec.approx_equal ~tol:1e-8 (Fft.ifft (Fft.fft x)) x)

let test_fft_impulse () =
  let x = Linalg.Cvec.create 8 in
  x.(0) <- Complex.one;
  let y = Fft.fft x in
  Array.iter (fun (z : Complex.t) -> check_float "flat spectrum" 1.0 z.Complex.re) y

let test_fft_is_power_of_two () =
  Alcotest.(check bool) "1" true (Fft.is_power_of_two 1);
  Alcotest.(check bool) "64" true (Fft.is_power_of_two 64);
  Alcotest.(check bool) "12" false (Fft.is_power_of_two 12);
  Alcotest.(check bool) "0" false (Fft.is_power_of_two 0)

let test_real_harmonics_sine () =
  let n = 64 in
  let x = Array.init n (fun k ->
      1.5 +. (2.0 *. sin (2.0 *. pi *. 3.0 *. float_of_int k /. float_of_int n))) in
  let h = Fft.real_harmonics x in
  check_float "dc" 1.5 (fst h.(0));
  Alcotest.(check (float 1e-8)) "harmonic 3 amplitude" 2.0 (fst h.(3));
  Alcotest.(check bool) "other harmonics tiny" true (fst h.(2) < 1e-9);
  Alcotest.(check (float 1e-8)) "amplitude_at" 2.0 (Fft.amplitude_at x 3)

let test_fft_parseval () =
  let n = 32 in
  let x = Linalg.Cvec.init n (fun k -> { Complex.re = cos (0.3 *. float_of_int k); im = 0.0 }) in
  let y = Fft.fft x in
  let energy v = Array.fold_left (fun a z -> a +. (Complex.norm z ** 2.0)) 0.0 v in
  Alcotest.(check (float 1e-6)) "parseval" (energy x) (energy y /. float_of_int n)

(* ---------- Newton ---------- *)

let scalar_problem f df =
  {
    Newton.residual = (fun x -> [| f x.(0) |]);
    solve_linearized = (fun x r -> [| r.(0) /. df x.(0) |]);
  }

let test_newton_sqrt () =
  let problem = scalar_problem (fun x -> (x *. x) -. 2.0) (fun x -> 2.0 *. x) in
  let x, stats = Newton.solve problem [| 1.0 |] in
  Alcotest.(check bool) "converged" true (Newton.converged stats);
  Alcotest.(check (float 1e-8)) "sqrt 2" (sqrt 2.0) x.(0)

let test_newton_quadratic_convergence () =
  let problem = scalar_problem (fun x -> (x *. x) -. 2.0) (fun x -> 2.0 *. x) in
  let _, stats = Newton.solve problem [| 1.5 |] in
  Alcotest.(check bool) "few iterations" true (stats.Newton.iterations <= 6)

let test_newton_damping_rescues () =
  (* atan has a tiny derivative far out: undamped Newton diverges from
     x0 = 10, damped Newton must converge. *)
  let problem = scalar_problem atan (fun x -> 1.0 /. (1.0 +. (x *. x))) in
  let x, stats = Newton.solve problem [| 10.0 |] in
  Alcotest.(check bool) "converged" true (Newton.converged stats);
  Alcotest.(check (float 1e-8)) "root" 0.0 x.(0);
  Alcotest.(check bool) "used backtracking" true (stats.Newton.backtracks > 0)

let test_newton_2d () =
  (* x² + y² = 4, x = y → x = y = √2 *)
  let problem =
    {
      Newton.residual =
        (fun v -> [| (v.(0) *. v.(0)) +. (v.(1) *. v.(1)) -. 4.0; v.(0) -. v.(1) |]);
      solve_linearized =
        (fun v r ->
          let j =
            Linalg.Mat.of_arrays [| [| 2.0 *. v.(0); 2.0 *. v.(1) |]; [| 1.0; -1.0 |] |]
          in
          Linalg.Lu.solve_dense j r);
    }
  in
  let x, stats = Newton.solve problem [| 1.0; 2.0 |] in
  Alcotest.(check bool) "converged" true (Newton.converged stats);
  Alcotest.(check (float 1e-7)) "x" (sqrt 2.0) x.(0)

let test_newton_max_iterations () =
  let problem = scalar_problem (fun x -> exp x) (fun x -> exp x) in
  (* No root: must stop with a non-converged outcome. *)
  let _, stats =
    Newton.solve ~options:{ Newton.default_options with max_iterations = 5 } problem [| 0.0 |]
  in
  Alcotest.(check bool) "not converged" true (not (Newton.converged stats))

let test_newton_solver_failure_capture () =
  let problem =
    {
      Newton.residual = (fun x -> [| x.(0) -. 1.0 |]);
      solve_linearized = (fun _ _ -> failwith "boom");
    }
  in
  let _, stats = Newton.solve problem [| 0.0 |] in
  (match stats.Newton.outcome with
  | Newton.Solver_failure _ -> ()
  | Newton.Converged | Newton.Stalled | Newton.Max_iterations | Newton.Diverged
  | Newton.Exhausted _ ->
      Alcotest.fail "expected Solver_failure");
  Alcotest.(check bool) "not converged" true (not (Newton.converged stats))

let test_newton_already_converged () =
  let problem = scalar_problem (fun x -> x) (fun _ -> 1.0) in
  let _, stats = Newton.solve problem [| 0.0 |] in
  Alcotest.(check int) "zero iterations" 0 stats.Newton.iterations

let test_newton_on_iteration_callback () =
  let calls = ref 0 in
  let problem = scalar_problem (fun x -> (x *. x) -. 4.0) (fun x -> 2.0 *. x) in
  let _ = Newton.solve ~on_iteration:(fun _ _ _ -> incr calls) problem [| 1.0 |] in
  Alcotest.(check bool) "callback fired" true (!calls > 0)

(* ---------- Continuation ---------- *)

let test_continuation_reaches_target () =
  (* x³ + x = λ·10: track from the trivial solution to the λ = 1 root 2. *)
  let problem_at lambda =
    scalar_problem
      (fun x -> (x ** 3.0) +. x -. (10.0 *. lambda))
      (fun x -> (3.0 *. x *. x) +. 1.0)
  in
  let x, stats = Numeric.Continuation.trace ~problem_at ~x0:[| 0.0 |] () in
  Alcotest.(check bool) "converged" true stats.Numeric.Continuation.converged;
  Alcotest.(check (float 1e-6)) "root" 2.0 x.(0);
  Alcotest.(check bool) "stepped" true (stats.Numeric.Continuation.steps_taken >= 2)

let test_continuation_adaptive_step () =
  let problem_at lambda = scalar_problem (fun x -> x -. lambda) (fun _ -> 1.0) in
  let _, stats =
    Numeric.Continuation.trace ~initial_step:0.05 ~problem_at ~x0:[| 0.0 |] ()
  in
  (* Easy path: steps double, so far fewer than 20 steps are needed. *)
  Alcotest.(check bool) "step growth" true (stats.Numeric.Continuation.steps_taken < 12)

(* ---------- Dae / Integrator ---------- *)

(* Scalar test DAE: C dx/dt + x/R = b(t). *)
let rc_dae ~r ~c ~b =
  Numeric.Dae.linear
    ~g:(Sparse.Csr.of_coo (Sparse.Coo.of_triplets 1 1 [ (0, 0, 1.0 /. r) ]))
    ~c:(Sparse.Csr.of_coo (Sparse.Coo.of_triplets 1 1 [ (0, 0, c) ]))
    ~source:(fun t -> [| b t |])

let test_dae_residual () =
  let dae = rc_dae ~r:2.0 ~c:1.0 ~b:(fun _ -> 1.0) in
  let r = Numeric.Dae.residual dae ~x:[| 2.0 |] ~qdot:[| 0.0 |] ~t_now:0.0 in
  check_float "residual" 0.0 r.(0)

let test_be_step_decay () =
  (* dx/dt = -x (R=C=1, b=0): BE gives x1 = x0/(1+h). *)
  let dae = rc_dae ~r:1.0 ~c:1.0 ~b:(fun _ -> 0.0) in
  let r =
    Integrator.implicit_step ~method_:Integrator.Backward_euler ~dae ~t_next:0.1 ~h:0.1
      ~x_prev:[| 1.0 |] ()
  in
  Alcotest.(check bool) "converged" true r.Integrator.converged;
  Alcotest.(check (float 1e-10)) "BE decay" (1.0 /. 1.1) r.Integrator.x.(0)

let test_trap_second_order () =
  let dae = rc_dae ~r:1.0 ~c:1.0 ~b:(fun _ -> 0.0) in
  let run method_ steps =
    let tr = Integrator.transient ~method_ ~dae ~x0:[| 1.0 |] ~t0:0.0 ~t1:1.0 ~steps () in
    Float.abs (tr.Integrator.states.(steps).(0) -. exp (-1.0))
  in
  let be_err = run Integrator.Backward_euler 100 in
  let tr_err = run Integrator.Trapezoidal 100 in
  Alcotest.(check bool) "trapezoidal beats BE" true (tr_err < be_err /. 10.0)

let test_bdf2_order () =
  let dae = rc_dae ~r:1.0 ~c:1.0 ~b:(fun _ -> 0.0) in
  let err steps =
    let tr =
      Integrator.transient ~method_:Integrator.Bdf2 ~dae ~x0:[| 1.0 |] ~t0:0.0 ~t1:1.0
        ~steps ()
    in
    Float.abs (tr.Integrator.states.(steps).(0) -. exp (-1.0))
  in
  let e1 = err 50 and e2 = err 100 in
  (* Second order: halving h divides the error by ~4. *)
  Alcotest.(check bool) "bdf2 convergence order" true (e1 /. e2 > 3.0)

let test_transient_sine_response () =
  (* RC driven at the pole frequency: amplitude = 1/√2, phase −45°. *)
  let rc = 1.0 /. (2.0 *. pi *. 1000.0) in
  let dae = rc_dae ~r:1.0 ~c:rc ~b:(fun t -> sin (2.0 *. pi *. 1000.0 *. t)) in
  let tr =
    Integrator.transient ~method_:Integrator.Trapezoidal ~dae ~x0:[| 0.0 |] ~t0:0.0
      ~t1:10e-3 ~steps:4000 ()
  in
  let k = 3900 in
  let t = tr.Integrator.times.(k) in
  let expected = (1.0 /. sqrt 2.0) *. sin ((2.0 *. pi *. 1000.0 *. t) -. (pi /. 4.0)) in
  Alcotest.(check (float 2e-3)) "steady sine" expected tr.Integrator.states.(k).(0)

let test_transient_adaptive_matches_fixed () =
  let dae = rc_dae ~r:1.0 ~c:1e-3 ~b:(fun _ -> 1.0) in
  let tr =
    Integrator.transient_adaptive ~rel_tol:1e-6 ~dae ~x0:[| 0.0 |] ~t0:0.0 ~t1:5e-3 ()
  in
  let final = tr.Integrator.states.(Array.length tr.Integrator.states - 1).(0) in
  Alcotest.(check (float 1e-4)) "adaptive final value" (1.0 -. exp (-5.0)) final

let test_transient_sample () =
  let dae = rc_dae ~r:1.0 ~c:1.0 ~b:(fun _ -> 0.0) in
  let tr = Integrator.transient ~dae ~x0:[| 1.0 |] ~t0:0.0 ~t1:0.5 ~steps:5 () in
  let s = Integrator.sample tr 0 in
  Alcotest.(check int) "length" 6 (Array.length s);
  check_float "initial" 1.0 s.(0)

(* ---------- Interp ---------- *)

let test_linear_uniform () =
  let s = [| 0.0; 1.0; 4.0 |] in
  check_float "midpoint" 0.5 (Interp.linear_uniform s 0.25);
  check_float "clamp low" 0.0 (Interp.linear_uniform s (-1.0));
  check_float "clamp high" 4.0 (Interp.linear_uniform s 2.0)

let test_linear_periodic_wraps () =
  let s = [| 0.0; 1.0 |] in
  check_float "wrap" 0.5 (Interp.linear_periodic s 0.75);
  check_float "negative phase" 0.5 (Interp.linear_periodic s (-0.25))

let test_linear_periodic_reproduces_samples () =
  let s = [| 3.0; -1.0; 2.0; 7.0 |] in
  Array.iteri
    (fun k v -> check_float "sample" v (Interp.linear_periodic s (float_of_int k /. 4.0)))
    s

let test_catmull_rom_nodes () =
  let s = Array.init 8 (fun k -> sin (2.0 *. pi *. float_of_int k /. 8.0)) in
  Array.iteri
    (fun k v ->
      check_float "node" v (Interp.catmull_rom_periodic s (float_of_int k /. 8.0)))
    s

let test_bilinear_periodic () =
  let grid = [| [| 0.0; 1.0 |]; [| 2.0; 3.0 |] |] in
  check_float "node" 0.0 (Interp.bilinear_periodic grid 0.0 0.0);
  check_float "centre" 1.5 (Interp.bilinear_periodic grid 0.25 0.25);
  check_float "wrap" 1.5 (Interp.bilinear_periodic grid 0.75 0.75)

let test_nonuniform_linear () =
  let xs = [| 0.0; 1.0; 10.0 |] and ys = [| 0.0; 2.0; 20.0 |] in
  check_float "inside" 1.0 (Interp.nonuniform_linear ~xs ~ys 0.5);
  check_float "second segment" 4.0 (Interp.nonuniform_linear ~xs ~ys 2.0);
  check_float "clamp" 20.0 (Interp.nonuniform_linear ~xs ~ys 50.0)

let test_resample_periodic () =
  let s = [| 1.0; 3.0 |] in
  let r = Interp.resample_periodic s 4 in
  check_float "kept" 1.0 r.(0);
  check_float "interpolated" 2.0 r.(1)

(* ---------- properties ---------- *)

let prop_fft_linearity =
  QCheck.Test.make ~count:50 ~name:"fft: linearity"
    QCheck.(
      make
        Gen.(
          pair
            (array_size (return 16) (float_range (-5.0) 5.0))
            (array_size (return 16) (float_range (-5.0) 5.0))))
    (fun (a, b) ->
      let ca = Linalg.Cvec.of_real a and cb = Linalg.Cvec.of_real b in
      let lhs = Fft.fft (Linalg.Cvec.add ca cb) in
      let rhs = Linalg.Cvec.add (Fft.fft ca) (Fft.fft cb) in
      Linalg.Cvec.approx_equal ~tol:1e-7 lhs rhs)

let prop_fft_roundtrip =
  QCheck.Test.make ~count:50 ~name:"fft: ifft ∘ fft = id (arbitrary length)"
    QCheck.(
      make Gen.(int_range 2 40 >>= fun n -> array_size (return n) (float_range (-10.0) 10.0)))
    (fun a ->
      let c = Linalg.Cvec.of_real a in
      Linalg.Cvec.approx_equal ~tol:1e-7 (Fft.ifft (Fft.fft c)) c)

let prop_interp_periodic_shift =
  QCheck.Test.make ~count:100 ~name:"interp: periodic in its argument"
    QCheck.(
      make
        Gen.(pair (array_size (return 7) (float_range (-3.0) 3.0)) (float_range 0.0 1.0)))
    (fun (s, u) ->
      Float.abs (Interp.linear_periodic s u -. Interp.linear_periodic s (u +. 1.0)) < 1e-9)

let prop_newton_linear_one_step =
  QCheck.Test.make ~count:100 ~name:"newton: linear systems solve in one iteration"
    QCheck.(make Gen.(pair (float_range 0.5 10.0) (float_range (-20.0) 20.0)))
    (fun (slope, target) ->
      let problem = scalar_problem (fun x -> (slope *. x) -. target) (fun _ -> slope) in
      let x, stats = Newton.solve problem [| 5.0 |] in
      Newton.converged stats
      && stats.Newton.iterations <= 1
      && Float.abs (x.(0) -. (target /. slope)) < 1e-6)

let prop_bilinear_reproduces_nodes =
  QCheck.Test.make ~count:80 ~name:"interp: bilinear reproduces grid nodes"
    QCheck.(
      make
        Gen.(
          pair (int_range 2 6) (int_range 2 6) >>= fun (n1, n2) ->
          array_size (return (n1 * n2)) (float_range (-5.0) 5.0) >>= fun data ->
          return (n1, n2, data)))
    (fun (n1, n2, data) ->
      let grid = Array.init n1 (fun i -> Array.init n2 (fun j -> data.((i * n2) + j))) in
      let ok = ref true in
      for i = 0 to n1 - 1 do
        for j = 0 to n2 - 1 do
          let v =
            Interp.bilinear_periodic grid
              (float_of_int i /. float_of_int n1)
              (float_of_int j /. float_of_int n2)
          in
          if Float.abs (v -. grid.(i).(j)) > 1e-9 then ok := false
        done
      done;
      !ok)

let prop_be_stable_any_step =
  QCheck.Test.make ~count:60 ~name:"integrator: BE unconditionally stable on decay"
    QCheck.(make Gen.(float_range 0.01 100.0))
    (fun h ->
      let dae = rc_dae ~r:1.0 ~c:1.0 ~b:(fun _ -> 0.0) in
      let r =
        Integrator.implicit_step ~method_:Integrator.Backward_euler ~dae ~t_next:h ~h
          ~x_prev:[| 1.0 |] ()
      in
      r.Integrator.converged && Float.abs r.Integrator.x.(0) <= 1.0)

let () =
  Alcotest.run "numeric"
    [
      ( "fft",
        [
          Alcotest.test_case "pow2 vs DFT" `Quick test_fft_pow2_matches_dft;
          Alcotest.test_case "bluestein vs DFT" `Quick test_fft_bluestein_matches_dft;
          Alcotest.test_case "prime length" `Quick test_fft_prime_length;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "is_power_of_two" `Quick test_fft_is_power_of_two;
          Alcotest.test_case "real harmonics" `Quick test_real_harmonics_sine;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
        ] );
      ( "newton",
        [
          Alcotest.test_case "sqrt(2)" `Quick test_newton_sqrt;
          Alcotest.test_case "quadratic convergence" `Quick test_newton_quadratic_convergence;
          Alcotest.test_case "damping rescues atan" `Quick test_newton_damping_rescues;
          Alcotest.test_case "2-d system" `Quick test_newton_2d;
          Alcotest.test_case "max iterations" `Quick test_newton_max_iterations;
          Alcotest.test_case "solver failure capture" `Quick test_newton_solver_failure_capture;
          Alcotest.test_case "already converged" `Quick test_newton_already_converged;
          Alcotest.test_case "iteration callback" `Quick test_newton_on_iteration_callback;
        ] );
      ( "continuation",
        [
          Alcotest.test_case "reaches target" `Quick test_continuation_reaches_target;
          Alcotest.test_case "adaptive step growth" `Quick test_continuation_adaptive_step;
        ] );
      ( "integrator",
        [
          Alcotest.test_case "dae residual" `Quick test_dae_residual;
          Alcotest.test_case "BE single step" `Quick test_be_step_decay;
          Alcotest.test_case "trapezoidal order" `Quick test_trap_second_order;
          Alcotest.test_case "bdf2 order" `Quick test_bdf2_order;
          Alcotest.test_case "sine response" `Quick test_transient_sine_response;
          Alcotest.test_case "adaptive stepping" `Quick test_transient_adaptive_matches_fixed;
          Alcotest.test_case "sample" `Quick test_transient_sample;
        ] );
      ( "interp",
        [
          Alcotest.test_case "linear uniform" `Quick test_linear_uniform;
          Alcotest.test_case "periodic wrap" `Quick test_linear_periodic_wraps;
          Alcotest.test_case "reproduces samples" `Quick test_linear_periodic_reproduces_samples;
          Alcotest.test_case "catmull-rom nodes" `Quick test_catmull_rom_nodes;
          Alcotest.test_case "bilinear periodic" `Quick test_bilinear_periodic;
          Alcotest.test_case "nonuniform" `Quick test_nonuniform_linear;
          Alcotest.test_case "resample" `Quick test_resample_periodic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fft_linearity;
            prop_fft_roundtrip;
            prop_interp_periodic_shift;
            prop_newton_linear_one_step;
            prop_bilinear_reproduces_nodes;
            prop_be_stable_any_step;
          ] );
    ]
