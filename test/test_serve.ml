(* Tests for the persistent solve service (lib/serve) and the public
   Engine.Key it is built on: canonical key stability (a pinned
   literal catches encoding drift) and sensitivity, LRU result-cache
   semantics, rfss.jobs/1 request parsing, byte identity between a
   served waveform CSV and a direct Engine.run, cache-hit replay of an
   identical resubmission, and warm-start sharing (a cache-near point
   must converge in fewer Newton iterations than a cold solve). *)

module J = Diagnostics.Json_min

let default = Engine.Options.default

let fixture_exn name =
  match Serve.Catalog.find name with Ok f -> f | Error e -> failwith e

(* ---------- Engine.Key ---------- *)

(* Pinned literal: if this changes, the encoding changed and the key
   version must be bumped (see lib/engine/key.mli). *)
let test_key_stability () =
  Alcotest.(check string) "key version" "rfss.key/1" Engine.Key.version;
  Alcotest.(check string)
    "pinned key literal" "b414458d45afe627"
    (Engine.Key.hash ~label:"balanced-mixer" ~engine:"mpde" ~f_fast:450e6
       ~fd:15e3 ~options:default)

let test_key_sensitivity () =
  let base = Engine.Key.hash ~label:"rc" ~engine:"mpde" ~f_fast:1e6 ~fd:1e3 in
  let k0 = base ~options:default in
  let differs what k =
    Alcotest.(check bool) (what ^ " changes the key") false (k = k0)
  in
  differs "label"
    (Engine.Key.hash ~label:"rc2" ~engine:"mpde" ~f_fast:1e6 ~fd:1e3
       ~options:default);
  differs "engine"
    (Engine.Key.hash ~label:"rc" ~engine:"hb" ~f_fast:1e6 ~fd:1e3
       ~options:default);
  differs "f_fast"
    (Engine.Key.hash ~label:"rc" ~engine:"mpde" ~f_fast:(1e6 +. 1.0) ~fd:1e3
       ~options:default);
  differs "fd"
    (Engine.Key.hash ~label:"rc" ~engine:"mpde" ~f_fast:1e6 ~fd:1001.0
       ~options:default);
  differs "tol" (base ~options:{ default with Engine.Options.tol = 1e-6 });
  differs "max_newton"
    (base ~options:{ default with Engine.Options.max_newton = 49 });
  differs "warm_start"
    (base ~options:{ default with Engine.Options.warm_start = false });
  differs "n1" (base ~options:{ default with Engine.Options.n1 = 33 });
  differs "n2" (base ~options:{ default with Engine.Options.n2 = 25 });
  differs "points" (base ~options:{ default with Engine.Options.points = 65 });
  differs "harmonics"
    (base ~options:{ default with Engine.Options.harmonics = 9 });
  differs "scheme"
    (base
       ~options:{ default with Engine.Options.scheme = Mpde.Assemble.Central_t1 });
  differs "allow_continuation"
    (base ~options:{ default with Engine.Options.allow_continuation = false });
  (* Budget and warm-start seed change how fast a solve converges, not
     what it converges to: same key, so a warm resubmission hits the
     entry its cold twin populated. *)
  let same what k =
    Alcotest.(check string) (what ^ " does not change the key") k0 k
  in
  same "budget"
    (base
       ~options:
         {
           default with
           Engine.Options.budget =
             Some (Resilience.Budget.make ~wall_seconds:1.0 ());
         });
  same "initial_surface"
    (base
       ~options:
         {
           default with
           Engine.Options.initial_surface = Some (Array.make 8 0.1);
         })

(* ---------- Cache: LRU semantics ---------- *)

let test_cache_lru () =
  let c = Serve.Cache.create ~capacity:2 in
  Serve.Cache.add c "k1" "v1";
  Serve.Cache.add c "k2" "v2";
  (* A hit promotes k1 to most-recently-used... *)
  Alcotest.(check bool) "k1 hit" true (Serve.Cache.find c "k1" = Some "v1");
  (* ...so inserting k3 over capacity evicts k2, not k1. *)
  Serve.Cache.add c "k3" "v3";
  Alcotest.(check (list string)) "MRU order" [ "k3"; "k1" ] (Serve.Cache.keys c);
  Alcotest.(check bool) "k2 evicted" true (Serve.Cache.find c "k2" = None);
  Alcotest.(check bool) "k1 kept" true (Serve.Cache.find c "k1" = Some "v1");
  (* mem probes without touching recency or the counters. *)
  Alcotest.(check bool) "mem" true (Serve.Cache.mem c "k3");
  let s = Serve.Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Serve.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Serve.Cache.misses;
  Alcotest.(check int) "evictions" 1 s.Serve.Cache.evictions;
  Alcotest.(check int) "entries" 2 s.Serve.Cache.entries;
  (* Refreshing an existing key replaces in place. *)
  Serve.Cache.add c "k1" "v1'";
  Alcotest.(check int) "refresh keeps size" 2
    (Serve.Cache.stats c).Serve.Cache.entries;
  Alcotest.(check bool) "refreshed value" true
    (Serve.Cache.find c "k1" = Some "v1'")

(* ---------- Protocol: request parsing ---------- *)

let test_parse_job () =
  (match
     Serve.Protocol.parse_job
       "{\"v\":\"rfss.jobs/1\",\"circuit\":\"rc\",\"engine\":\"mpde\",\"fd\":2e3,\"options\":{\"n1\":16,\"n2\":12,\"tol\":1e-7},\"budget\":{\"wall_seconds\":5},\"warm\":false}"
   with
  | Error e -> Alcotest.fail e
  | Ok job ->
      Alcotest.(check string) "circuit" "rc"
        job.Serve.Protocol.fixture.Serve.Catalog.name;
      Alcotest.(check bool) "engine" true (job.Serve.Protocol.engine = Engine.Mpde);
      Alcotest.(check (float 0.0)) "default f_fast" 1e6 job.Serve.Protocol.f_fast;
      Alcotest.(check (float 0.0)) "fd" 2e3 job.Serve.Protocol.fd;
      Alcotest.(check int) "n1" 16 job.Serve.Protocol.options.Engine.Options.n1;
      Alcotest.(check (float 0.0)) "tol" 1e-7
        job.Serve.Protocol.options.Engine.Options.tol;
      Alcotest.(check bool) "budget wall" true
        (job.Serve.Protocol.wall_seconds = Some 5.0);
      Alcotest.(check bool) "warm off" false job.Serve.Protocol.warm);
  let rejected what body =
    match Serve.Protocol.parse_job body with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should be rejected" what
  in
  rejected "missing version" "{\"circuit\":\"rc\"}";
  rejected "wrong version" "{\"v\":\"rfss.jobs/2\",\"circuit\":\"rc\"}";
  rejected "unknown circuit" "{\"v\":\"rfss.jobs/1\",\"circuit\":\"nope\"}";
  rejected "unknown option"
    "{\"v\":\"rfss.jobs/1\",\"circuit\":\"rc\",\"options\":{\"n3\":4}}";
  rejected "non-positive tol"
    "{\"v\":\"rfss.jobs/1\",\"circuit\":\"rc\",\"options\":{\"tol\":0}}";
  rejected "bad budget"
    "{\"v\":\"rfss.jobs/1\",\"circuit\":\"rc\",\"budget\":{\"wall_seconds\":-1}}";
  rejected "invalid JSON" "{\"v\":"

(* ---------- service helpers ---------- *)

(* Drain a handle's JSONL stream (with a deadline so a wedged worker
   fails the test instead of hanging it). *)
let drain h =
  let poll = Serve.Jobs.poll h in
  let deadline = Unix.gettimeofday () +. 120.0 in
  let rec go acc =
    match poll () with
    | `Data line -> go (String.trim line :: acc)
    | `Wait ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "job stream stalled";
        Unix.sleepf 0.005;
        go acc
    | `Eof -> List.rev acc
  in
  go []

let line_with_event lines event =
  match
    List.find_opt
      (fun l ->
        match J.parse l with
        | j -> Option.bind (J.member "event" j) J.str = Some event
        | exception J.Parse_error _ -> false)
      lines
  with
  | Some l -> l
  | None -> Alcotest.failf "no %S line in stream: %s" event (String.concat " | " lines)

let member_str line name =
  match Option.bind (J.member name (J.parse line)) J.str with
  | Some s -> s
  | None -> Alcotest.failf "no string member %S in %s" name line

let member_bool line name =
  match Option.bind (J.member name (J.parse line)) J.bool with
  | Some b -> b
  | None -> Alcotest.failf "no bool member %S in %s" name line

let member_int line name =
  match Option.bind (J.member name (J.parse line)) J.num with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "no numeric member %S in %s" name line

let rc_job ?(warm = false) ?(fd = 1e3) () =
  let fixture = fixture_exn "rc" in
  {
    Serve.Protocol.fixture;
    engine = Engine.Mpde;
    f_fast = fixture.Serve.Catalog.default_fast;
    fd;
    options = { default with Engine.Options.n1 = 16; n2 = 12 };
    wall_seconds = None;
    max_newton_budget = None;
    warm;
  }

(* ---------- served vs direct: byte-identical waveform CSV ---------- *)

let test_served_vs_direct () =
  let jobs = Serve.Jobs.create ~workers:1 () in
  Fun.protect ~finally:(fun () -> Serve.Jobs.stop jobs) @@ fun () ->
  let job = rc_job () in
  let lines = drain (Serve.Jobs.submit jobs job) in
  let result = line_with_event lines "result" in
  Alcotest.(check bool) "served converged" true (member_bool result "converged");
  let served_csv = member_str result "waveform_csv" in
  let fixture = job.Serve.Protocol.fixture in
  let direct =
    Engine.run
      (Serve.Catalog.problem_of fixture
         ~f_fast:job.Serve.Protocol.f_fast ~fd:job.Serve.Protocol.fd)
      (Engine.make ~options:job.Serve.Protocol.options Engine.Mpde)
  in
  let direct_csv =
    Serve.Protocol.waveform_csv
      ~output_node:fixture.Serve.Catalog.output_node
      direct.Engine.Result.waveform
  in
  Alcotest.(check string) "served CSV = direct CSV" direct_csv served_csv

(* ---------- identical resubmission: cache hit, byte-identical ---------- *)

let test_resubmission_cache_hit () =
  let jobs = Serve.Jobs.create ~workers:1 () in
  Fun.protect ~finally:(fun () -> Serve.Jobs.stop jobs) @@ fun () ->
  let job = rc_job () in
  let lines1 = drain (Serve.Jobs.submit jobs job) in
  let lines2 = drain (Serve.Jobs.submit jobs job) in
  let a1 = line_with_event lines1 "accepted" in
  let a2 = line_with_event lines2 "accepted" in
  Alcotest.(check string) "first is a miss" "miss" (member_str a1 "cache");
  Alcotest.(check string) "second is a hit" "hit" (member_str a2 "cache");
  Alcotest.(check string) "same key" (member_str a1 "key") (member_str a2 "key");
  Alcotest.(check bool) "distinct job ids" false
    (member_int a1 "id" = member_int a2 "id");
  (* The hit replays the stored result line byte for byte. *)
  Alcotest.(check string) "byte-identical result line"
    (line_with_event lines1 "result")
    (line_with_event lines2 "result");
  let s = Serve.Cache.stats (Serve.Jobs.cache jobs) in
  Alcotest.(check int) "one miss" 1 s.Serve.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Serve.Cache.hits;
  (* A perturbed option is a different key: miss, not hit. *)
  let perturbed =
    {
      job with
      Serve.Protocol.options =
        { job.Serve.Protocol.options with Engine.Options.tol = 1e-7 };
    }
  in
  let lines3 = drain (Serve.Jobs.submit jobs perturbed) in
  Alcotest.(check string) "perturbed option misses" "miss"
    (member_str (line_with_event lines3 "accepted") "cache")

(* ---------- warm start: fewer Newton iterations than cold ---------- *)

let test_warm_start_fewer_newton () =
  let jobs = Serve.Jobs.create ~workers:1 () in
  Fun.protect ~finally:(fun () -> Serve.Jobs.stop jobs) @@ fun () ->
  let fixture = fixture_exn "detector" in
  let options = { default with Engine.Options.n1 = 16; n2 = 12 } in
  let job fd =
    {
      Serve.Protocol.fixture;
      engine = Engine.Mpde;
      f_fast = fixture.Serve.Catalog.default_fast;
      fd;
      options;
      wall_seconds = None;
      max_newton_budget = None;
      warm = true;
    }
  in
  let fd0 = fixture.Serve.Catalog.default_fd in
  let fd1 = fd0 *. 1.02 in
  (* First solve is cold (empty warm store) and seeds the store. *)
  let r0 = line_with_event (drain (Serve.Jobs.submit jobs (job fd0))) "result" in
  Alcotest.(check bool) "seed solve converged" true (member_bool r0 "converged");
  Alcotest.(check bool) "seed solve was cold" false (member_bool r0 "warm_started");
  (* Cold reference for the nearby point: a direct run, no seed. *)
  let cold =
    Engine.run
      (Serve.Catalog.problem_of fixture
         ~f_fast:fixture.Serve.Catalog.default_fast ~fd:fd1)
      (Engine.make ~options Engine.Mpde)
  in
  Alcotest.(check bool) "cold reference converged" true
    cold.Engine.Result.converged;
  (* The served nearby point starts from the stored surface. *)
  let r1 = line_with_event (drain (Serve.Jobs.submit jobs (job fd1))) "result" in
  Alcotest.(check bool) "warm solve converged" true (member_bool r1 "converged");
  Alcotest.(check bool) "warm-started" true (member_bool r1 "warm_started");
  Alcotest.(check int) "one warm start counted" 1 (Serve.Jobs.warm_starts jobs);
  let warm_newton = member_int r1 "newton" in
  let cold_newton = cold.Engine.Result.newton_iterations in
  if warm_newton >= cold_newton then
    Alcotest.failf "warm start did not help: warm=%d cold=%d" warm_newton
      cold_newton

(* ---------- routes: protocol over the HTTP layer, no socket ---------- *)

let test_routes () =
  let jobs = Serve.Jobs.create ~workers:1 () in
  Fun.protect ~finally:(fun () -> Serve.Jobs.stop jobs) @@ fun () ->
  let routes = Serve.Service.routes jobs in
  let req meth =
    match
      Observe.Http.parse_request
        (Printf.sprintf "%s /jobs HTTP/1.0\r\n\r\n" meth)
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  (* Invalid body: immediate 400 carrying a protocol error line. *)
  (match routes (req "POST") "not json" with
  | Some (Observe.Server.Response raw) -> (
      match Observe.Http.parse_response raw with
      | Ok (status, _, body) ->
          Alcotest.(check int) "bad job is 400" 400 status;
          Alcotest.(check string) "error event" "error"
            (member_str (String.trim body) "event")
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "POST /jobs with a bad body should answer directly");
  (* Valid body: a close-delimited JSONL stream. *)
  (match
     routes (req "POST")
       "{\"v\":\"rfss.jobs/1\",\"circuit\":\"rc\",\"options\":{\"n1\":16,\"n2\":12},\"warm\":false}"
   with
  | Some (Observe.Server.Stream { header; poll }) ->
      Alcotest.(check bool) "stream header is HTTP" true
        (String.length header > 0 && String.sub header 0 4 = "HTTP");
      let deadline = Unix.gettimeofday () +. 120.0 in
      let buf = Buffer.create 256 in
      let rec go () =
        match poll () with
        | `Data s ->
            Buffer.add_string buf s;
            go ()
        | `Wait ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "route stream stalled";
            Unix.sleepf 0.005;
            go ()
        | `Eof -> ()
      in
      go ();
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> String.trim l <> "")
      in
      ignore (line_with_event lines "accepted");
      ignore (line_with_event lines "result");
      ignore (line_with_event lines "done")
  | _ -> Alcotest.fail "POST /jobs should stream");
  (* GET /jobs is the status document. *)
  (match routes (req "GET") "" with
  | Some (Observe.Server.Response raw) -> (
      match Observe.Http.parse_response raw with
      | Ok (status, _, body) ->
          Alcotest.(check int) "status is 200" 200 status;
          Alcotest.(check string) "status version" "rfss.jobs/1"
            (member_str (String.trim body) "v")
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "GET /jobs should answer");
  (* Unsupported method on the endpoint: 405 with Allow. *)
  match routes (req "DELETE") "" with
  | Some (Observe.Server.Response raw) -> (
      match Observe.Http.parse_response raw with
      | Ok (status, headers, _) ->
          Alcotest.(check int) "405" 405 status;
          Alcotest.(check bool) "Allow lists GET and POST" true
            (List.assoc_opt "allow" headers = Some "GET, POST")
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "DELETE /jobs should be 405"

(* ---------- run ---------- *)

let () =
  Alcotest.run "serve"
    [
      ( "key",
        [
          Alcotest.test_case "pinned literal stability" `Quick test_key_stability;
          Alcotest.test_case "sensitivity and exclusions" `Quick
            test_key_sensitivity;
        ] );
      ( "cache",
        [ Alcotest.test_case "LRU hit/miss/eviction" `Quick test_cache_lru ] );
      ( "protocol",
        [ Alcotest.test_case "request parsing" `Quick test_parse_job ] );
      ( "service",
        [
          Alcotest.test_case "served CSV = direct CSV" `Quick
            test_served_vs_direct;
          Alcotest.test_case "resubmission is a byte-identical hit" `Quick
            test_resubmission_cache_hit;
          Alcotest.test_case "warm start beats cold Newton count" `Quick
            test_warm_start_fewer_newton;
          Alcotest.test_case "routes speak the protocol" `Quick test_routes;
        ] );
    ]
