(* Tests for the sweep-scale observability layer: the log-bucketed
   histogram quantiles, cross-recorder histogram merging, Prometheus
   exposition of real histogram families (HELP/TYPE on every family,
   cumulative buckets), the cross-domain Chrome trace merge (JSON
   escaping, lane metadata, byte-identical reruns on the fake clock),
   the Sweep per-job trace capture on 1 and 4 domains, and a smoke test
   of the Runtime_events GC consumer. *)

module D = Diagnostics
module J = Diagnostics.Json_min

(* ---------- helpers ---------- *)

let with_fake_telemetry f =
  let source, advance = Telemetry.Clock.manual () in
  Telemetry.Clock.install source;
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.Clock.uninstall ())
    (fun () -> f advance)

let capture () =
  match Telemetry.snapshot () with
  | Some s -> s
  | None -> Alcotest.fail "telemetry unexpectedly disabled"

(* Build a histogram by observing [values] on a throwaway recorder. *)
let hist_of values =
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  List.iter (fun v -> Telemetry.observe "h" v) values;
  match (capture ()).Telemetry.histograms with
  | [ ("h", h) ] -> h
  | _ -> Alcotest.fail "expected exactly one histogram"

let with_temp_file f =
  let path = Filename.temp_file "observability_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------- bucket layout and quantiles ---------- *)

let test_bucket_layout () =
  let n = Telemetry.bucket_count in
  Alcotest.(check bool) "at least a few buckets" true (n > 10);
  (* Upper bounds strictly increase and end at +Inf. *)
  for i = 1 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "le monotone at %d" i)
      true
      (Telemetry.bucket_le i > Telemetry.bucket_le (i - 1))
  done;
  Alcotest.(check bool) "last bound is +Inf" true
    (Telemetry.bucket_le (n - 1) = infinity);
  (* Every value lands in the bucket whose bounds contain it. *)
  let probe =
    [ 0.0; -1.0; nan; 1e-12; 3.7e-9; 1e-6; 0.00042; 0.3; 1.0; 42.0; 999.0; 1e9 ]
  in
  List.iter
    (fun v ->
      let i = Telemetry.bucket_index v in
      Alcotest.(check bool)
        (Printf.sprintf "index of %g in range" v)
        true
        (i >= 0 && i < n);
      if Float.is_finite v && v > 0.0 then begin
        Alcotest.(check bool)
          (Printf.sprintf "%g <= le(%d)" v i)
          true
          (v <= Telemetry.bucket_le i);
        if i > 0 then
          Alcotest.(check bool)
            (Printf.sprintf "%g > le(%d - 1)" v i)
            true
            (v > Telemetry.bucket_le (i - 1) || i = Telemetry.bucket_index v)
      end)
    probe

let test_quantiles () =
  (* All-identical observations: quantiles clamp to the exact value. *)
  let h = hist_of (List.init 100 (fun _ -> 1.0)) in
  Alcotest.(check (float 0.0)) "p50 of constant" 1.0 (Telemetry.quantile h 0.5);
  Alcotest.(check (float 0.0)) "p99 of constant" 1.0 (Telemetry.quantile h 0.99);
  (* 1..100 ms: the p99 estimate must sit near the top decile and the
     quantiles must be ordered. *)
  let h = hist_of (List.init 100 (fun k -> float_of_int (k + 1) *. 1e-3)) in
  let p50 = Telemetry.quantile h 0.50
  and p90 = Telemetry.quantile h 0.90
  and p99 = Telemetry.quantile h 0.99 in
  Alcotest.(check bool) "ordered" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.4f within a bucket of exact 0.050" p50)
    true
    (p50 > 0.020 && p50 < 0.110);
  Alcotest.(check bool)
    (Printf.sprintf "p99 %.4f within a bucket of exact 0.099" p99)
    true
    (p99 > 0.045 && p99 <= 0.1);
  Alcotest.(check bool) "clamped to max" true (p99 <= h.Telemetry.max);
  (* Empty histogram: NaN, the caller's guard. *)
  let empty = { h with Telemetry.count = 0 } in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Telemetry.quantile empty 0.5))

let test_merge_histogram () =
  let a = [ 1.0; 2.0; 3.0 ] and b = [ 0.5; 4.0; 8.0; 16.0 ] in
  let ha = hist_of a and hab = hist_of (a @ b) in
  (* Observing b on top of a merged-in a must equal observing a @ b. *)
  Telemetry.enable ();
  let merged =
    Fun.protect ~finally:Telemetry.disable @@ fun () ->
    Telemetry.merge_histogram "h" ha;
    List.iter (fun v -> Telemetry.observe "h" v) b;
    match (capture ()).Telemetry.histograms with
    | [ ("h", h) ] -> h
    | _ -> Alcotest.fail "expected one merged histogram"
  in
  Alcotest.(check int) "count" hab.Telemetry.count merged.Telemetry.count;
  Alcotest.(check (float 0.0)) "sum" hab.Telemetry.sum merged.Telemetry.sum;
  Alcotest.(check (float 0.0)) "min" hab.Telemetry.min merged.Telemetry.min;
  Alcotest.(check (float 0.0)) "max" hab.Telemetry.max merged.Telemetry.max;
  Alcotest.(check (array int)) "buckets" hab.Telemetry.buckets
    merged.Telemetry.buckets

(* ---------- Prometheus histogram exposition ---------- *)

let test_prometheus_histograms () =
  let reg = D.Registry.create () in
  D.Registry.gauge reg "plain.gauge" 2.0;
  D.Registry.counter reg "plain.counter" 5.0;
  D.Registry.histogram reg ~help:"solve residuals"
    "newton.residual" (hist_of [ 1e-9; 1e-6; 1e-6; 0.5 ]);
  let page = D.Registry.to_prometheus reg in
  (* Every family carries # HELP and # TYPE — including the generated
     fallback for families registered without help text. *)
  let lines = String.split_on_char '\n' page in
  let has prefix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  in
  List.iter
    (fun family ->
      Alcotest.(check bool) ("HELP for " ^ family) true
        (has ("# HELP " ^ family));
      Alcotest.(check bool) ("TYPE for " ^ family) true
        (has ("# TYPE " ^ family)))
    [ "rfss_plain_gauge"; "rfss_plain_counter_total"; "rfss_newton_residual" ];
  Alcotest.(check bool) "histogram TYPE" true
    (has "# TYPE rfss_newton_residual histogram");
  (* The parser round-trips the page; cumulative buckets end at +Inf
     with the total count. *)
  let parsed = D.Registry.parse_prometheus page in
  let buckets =
    List.filter (fun (n, _, _) -> n = "rfss_newton_residual_bucket") parsed
  in
  Alcotest.(check int) "one series per bucket" Telemetry.bucket_count
    (List.length buckets);
  let values = List.map (fun (_, _, v) -> v) buckets in
  List.iteri
    (fun i v ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "cumulative at %d" i)
          true
          (v >= List.nth values (i - 1)))
    values;
  let inf_bucket =
    List.find_opt
      (fun (_, labels, _) -> List.assoc_opt "le" labels = Some "+Inf")
      buckets
  in
  (match inf_bucket with
  | Some (_, _, v) -> Alcotest.(check (float 0.0)) "+Inf bucket = count" 4.0 v
  | None -> Alcotest.fail "no le=\"+Inf\" bucket");
  let find name =
    match List.find_opt (fun (n, _, _) -> n = name) parsed with
    | Some (_, _, v) -> v
    | None -> Alcotest.failf "missing %s in:\n%s" name page
  in
  Alcotest.(check (float 0.0)) "_count" 4.0 (find "rfss_newton_residual_count");
  Alcotest.(check (float 1e-12)) "_sum" (2e-6 +. 1e-9 +. 0.5)
    (find "rfss_newton_residual_sum")

let test_of_telemetry_histogram_exposition () =
  (* End to end: observe -> snapshot -> registry -> Prometheus page with
     real bucket series plus min/max sibling gauges. *)
  Telemetry.enable ();
  let snap =
    Fun.protect ~finally:Telemetry.disable @@ fun () ->
    Telemetry.observe "gc.pause" 1e-4;
    Telemetry.observe "gc.pause" 2e-3;
    capture ()
  in
  let page = D.Registry.to_prometheus (D.Registry.of_telemetry snap) in
  let parsed = D.Registry.parse_prometheus page in
  let names = List.map (fun (n, _, _) -> n) parsed in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("page has " ^ n) true (List.mem n names))
    [
      "rfss_gc_pause_bucket";
      "rfss_gc_pause_sum";
      "rfss_gc_pause_count";
      "rfss_gc_pause_min";
      "rfss_gc_pause_max";
    ]

(* ---------- cross-domain Chrome trace merge ---------- *)

(* Two recorders' worth of events with hostile names, merged into one
   document: the JSON must parse strictly, every lane must be named,
   and the escaped names must survive. *)
let test_merge_escaping_and_metadata () =
  let nasty = "quote \" slash \\ newline \n tab \t" in
  let snap_a, snap_b =
    with_fake_telemetry @@ fun advance ->
    Telemetry.span nasty (fun () -> advance 1.0);
    Telemetry.count "iters";
    let a = capture () in
    let mark = Telemetry.mark () in
    Telemetry.span "plain" (fun () -> advance 0.5);
    Telemetry.gauge "fill" 1.5;
    let b =
      match Telemetry.snapshot ~since:mark () with
      | Some s -> s
      | None -> Alcotest.fail "windowed snapshot missing"
    in
    (a, b)
  in
  let parts =
    [
      {
        Telemetry.Merge.pid = 7;
        tid = 1;
        thread_name = "domain-0";
        label = Some "job \"zero\"";
        base = 0.0;
        snapshot = snap_a;
      };
      {
        Telemetry.Merge.pid = 7;
        tid = 2;
        thread_name = "domain-1";
        label = None;
        base = 1.0;
        snapshot = snap_b;
      };
    ]
  in
  with_temp_file @@ fun path ->
  let oc = open_out path in
  Telemetry.Merge.write_chrome ~extra:[ ("rfss", "{\"schema\":\"test/1\"}") ]
    oc parts;
  close_out oc;
  let doc = J.parse (read_file path) in
  let events =
    match J.path [ "traceEvents" ] doc with
    | Some (J.Arr l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let str_field k j =
    match J.path [ k ] j with Some (J.Str s) -> Some s | _ -> None
  in
  let num_field k j =
    match J.path [ k ] j with Some (J.Num n) -> Some n | _ -> None
  in
  let phases = List.filter_map (str_field "ph") events in
  (* One process_name + two thread_name metadata records. *)
  Alcotest.(check int) "metadata events" 3
    (List.length (List.filter (( = ) "M") phases));
  let thread_names =
    List.filter_map
      (fun j ->
        if str_field "ph" j = Some "M" && str_field "name" j = Some "thread_name"
        then J.path [ "args"; "name" ] j
        else None)
      events
  in
  Alcotest.(check bool) "both lanes named" true
    (List.mem (J.Str "domain-0") thread_names
    && List.mem (J.Str "domain-1") thread_names);
  (* The hostile span name survives escaping; the label became a
     thread-scoped instant. *)
  Alcotest.(check bool) "nasty name survives" true
    (List.exists (fun j -> str_field "name" j = Some nasty) events);
  Alcotest.(check bool) "job instant present" true
    (List.exists
       (fun j ->
         str_field "ph" j = Some "i" && str_field "name" j = Some "job \"zero\"")
       events);
  (* Non-metadata events all carry non-negative ts; part B is re-based
     1 s after part A. *)
  List.iter
    (fun j ->
      if str_field "ph" j <> Some "M" then
        match num_field "ts" j with
        | Some ts ->
            Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
        | None -> Alcotest.fail "non-metadata event without ts")
    events;
  let plain_begin =
    List.find_opt
      (fun j -> str_field "ph" j = Some "B" && str_field "name" j = Some "plain")
      events
  in
  (match plain_begin with
  | Some j ->
      (* snap_b's window opened 1.0s into recorder time, plus base 1.0
         after part A: 2.0s = 2e6 us on the merged axis. *)
      Alcotest.(check (option (float 1.0))) "re-based onto one axis"
        (Some 2e6) (num_field "ts" j)
  | None -> Alcotest.fail "no begin event for 'plain'");
  (* The extra key rides along at the top level. *)
  match J.path [ "rfss"; "schema" ] doc with
  | Some (J.Str "test/1") -> ()
  | _ -> Alcotest.fail "extra rfss key missing"

(* ---------- sweep per-job traces across domains ---------- *)

let sweep_jobs () =
  let mk fd =
    let label = Printf.sprintf "rc-fd%.0f" fd in
    let problem =
      Engine.Problem.make ~label ~output:"out" ~f_fast:1e6 ~fd (fun () ->
          Circuits.rc_lowpass
            ~drive:
              (Circuit.Waveform.sum
                 (Circuit.Waveform.sine ~amplitude:1.0 ~freq:1e6 ())
                 (Circuit.Waveform.sine ~amplitude:1.0 ~freq:(1e6 +. fd) ()))
            ())
    in
    Engine.Sweep.job
      ~options:{ Engine.Options.default with n1 = 12; n2 = 8 }
      ~kind:Engine.Mpde problem
  in
  Array.init 8 (fun k -> mk (1e3 *. float_of_int (k + 1)))

(* Run a traced sweep on the fake clock and render the merged trace to
   a string, exactly the way [rfss sweep --trace] does. *)
let merged_trace_string ~domains =
  let source, _advance = Telemetry.Clock.manual () in
  Telemetry.Clock.install source;
  Fun.protect ~finally:Telemetry.Clock.uninstall @@ fun () ->
  let outcomes =
    Engine.Sweep.run ~domains ~per_job_trace:true (sweep_jobs ())
  in
  let parts =
    Array.to_list outcomes
    |> List.filter_map (fun (o : Engine.Sweep.outcome) ->
           Option.map
             (fun (base, snapshot) ->
               {
                 Telemetry.Merge.pid = 4242;
                 tid = o.Engine.Sweep.worker + 1;
                 thread_name =
                   Printf.sprintf "domain-%d" o.Engine.Sweep.worker;
                 label = Some o.Engine.Sweep.job.Engine.Sweep.label;
                 base;
                 snapshot;
               })
             o.Engine.Sweep.trace)
  in
  let text =
    with_temp_file @@ fun path ->
    let oc = open_out path in
    Telemetry.Merge.write_chrome oc parts;
    close_out oc;
    read_file path
  in
  (text, outcomes)

let span_begins (o : Engine.Sweep.outcome) =
  match o.Engine.Sweep.trace with
  | None -> 0
  | Some (_, s) ->
      Array.fold_left
        (fun acc ev ->
          match ev with Telemetry.Span_begin _ -> acc + 1 | _ -> acc)
        0 s.Telemetry.events

let test_sweep_traced_deterministic () =
  let first, outcomes = merged_trace_string ~domains:4 in
  let second, _ = merged_trace_string ~domains:4 in
  Alcotest.(check string) "byte-identical across runs" first second;
  Alcotest.(check bool) "parses strictly" true
    (match J.parse first with J.Obj _ -> true | _ -> false);
  Array.iter
    (fun (o : Engine.Sweep.outcome) ->
      Alcotest.(check bool)
        (o.Engine.Sweep.job.Engine.Sweep.label ^ " converged")
        true
        (match o.Engine.Sweep.result with Ok _ -> true | Error _ -> false);
      Alcotest.(check bool) "has a trace" true (o.Engine.Sweep.trace <> None))
    outcomes;
  (* Static assignment: worker k owns jobs k, k+4, and all four lanes
     show up in the merged document. *)
  Array.iteri
    (fun i (o : Engine.Sweep.outcome) ->
      Alcotest.(check int)
        (Printf.sprintf "job %d on its static worker" i)
        (i mod 4) o.Engine.Sweep.worker)
    outcomes;
  let doc = J.parse first in
  let events =
    match J.path [ "traceEvents" ] doc with
    | Some (J.Arr l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let tids =
    List.filter_map
      (fun j ->
        match (J.path [ "ph" ] j, J.path [ "tid" ] j) with
        | Some (J.Str "M"), _ -> None
        | _, Some (J.Num t) -> Some (int_of_float t)
        | _ -> None)
      events
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "one tid per domain" [ 1; 2; 3; 4 ] tids

let test_sweep_trace_span_conservation () =
  (* The same jobs traced serially and on 4 domains record the same
     total number of spans — parallelism relocates work, it must not
     lose or invent any. *)
  let _, serial = merged_trace_string ~domains:1 in
  let _, parallel = merged_trace_string ~domains:4 in
  let total a = Array.fold_left (fun acc o -> acc + span_begins o) 0 a in
  Alcotest.(check bool) "spans recorded at all" true (total serial > 0);
  Alcotest.(check int) "per-domain spans sum to the serial count"
    (total serial) (total parallel);
  (* Serial execution keeps everything on worker 0. *)
  Array.iter
    (fun (o : Engine.Sweep.outcome) ->
      Alcotest.(check int) "serial worker" 0 o.Engine.Sweep.worker)
    serial

(* ---------- Runtime_events consumer ---------- *)

let test_runtime_events_smoke () =
  match Telemetry.Runtime.start () with
  | None ->
      (* The runtime refused a ring — degrade exactly like production. *)
      ()
  | Some t ->
      Fun.protect ~finally:(fun () -> Telemetry.Runtime.stop t) @@ fun () ->
      (* Force minor collections so EV_MINOR spans definitely land. *)
      for _ = 1 to 3 do
        ignore (Sys.opaque_identity (Array.init 100_000 (fun i -> (i, i))));
        Gc.minor ()
      done;
      Gc.full_major ();
      Telemetry.Runtime.poll t;
      let s = Telemetry.Runtime.stats t in
      Alcotest.(check bool) "saw minor collections" true
        (s.Telemetry.Runtime.minor_collections > 0);
      Alcotest.(check bool) "pause samples match the counter" true
        (s.Telemetry.Runtime.minor_pause.Telemetry.count
        = s.Telemetry.Runtime.minor_collections);
      Alcotest.(check bool) "at least one ring" true
        (s.Telemetry.Runtime.domains_seen >= 1);
      Alcotest.(check bool) "pauses are positive and finite" true
        (s.Telemetry.Runtime.minor_pause.Telemetry.count = 0
        || Float.is_finite s.Telemetry.Runtime.minor_pause.Telemetry.sum
           && s.Telemetry.Runtime.minor_pause.Telemetry.sum >= 0.0);
      (* Folding into the recorder surfaces the histograms + gauges. *)
      Telemetry.enable ();
      let snap =
        Fun.protect ~finally:Telemetry.disable @@ fun () ->
        Telemetry.Runtime.observe_into_telemetry t;
        capture ()
      in
      Alcotest.(check bool) "gc.minor_pause_seconds histogram" true
        (List.mem_assoc "gc.minor_pause_seconds" snap.Telemetry.histograms);
      Alcotest.(check bool) "gc.minor_collections gauge" true
        (List.mem_assoc "gc.minor_collections" snap.Telemetry.gauges);
      Alcotest.(check bool) "gc.minor_pause_p99 gauge when samples exist" true
        (List.mem_assoc "gc.minor_pause_p99" snap.Telemetry.gauges)

(* ---------- run ---------- *)

let () =
  Alcotest.run "observability"
    [
      ( "histograms",
        [
          Alcotest.test_case "bucket layout" `Quick test_bucket_layout;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "merge equivalence" `Quick test_merge_histogram;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "histogram exposition round-trip" `Quick
            test_prometheus_histograms;
          Alcotest.test_case "of_telemetry exposition" `Quick
            test_of_telemetry_histogram_exposition;
        ] );
      ( "merge",
        [
          Alcotest.test_case "escaping + lane metadata" `Quick
            test_merge_escaping_and_metadata;
        ] );
      ( "sweep-traces",
        [
          Alcotest.test_case "4-domain merged trace deterministic" `Quick
            test_sweep_traced_deterministic;
          Alcotest.test_case "span conservation serial vs parallel" `Quick
            test_sweep_trace_span_conservation;
        ] );
      ( "runtime-events",
        [
          Alcotest.test_case "gc consumer smoke" `Quick
            test_runtime_events_smoke;
        ] );
    ]
