(* Fault-tolerance layer: deterministic fault injection driving every
   escalation-ladder stage, retry with decorrelated-jitter backoff on
   the injectable clock, watchdog degradation, and the checkpoint log's
   round-trip/digest/corruption behavior. Every test installs its plan
   with Fun.protect so a failure cannot leak injection into siblings. *)

module FI = Resilience.Faultinject
module W = Circuit.Waveform

let with_plan spec f =
  FI.install (FI.parse_exn spec);
  Fun.protect ~finally:FI.uninstall f

(* ---------- plan parsing ---------- *)

let test_parse_roundtrip () =
  let spec = "seed=7,nan@residual/newton:1,crash@job/#1:2x3,slow@newton:~0.25=0.5" in
  match FI.parse spec with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "seed" 7 p.FI.seed;
      Alcotest.(check int) "faults" 3 (Array.length p.FI.faults);
      Alcotest.(check string) "roundtrip" spec (FI.to_string p);
      (match p.FI.faults.(1).FI.trigger with
      | FI.Nth { first; count } ->
          Alcotest.(check int) "first" 2 first;
          Alcotest.(check int) "count" 3 count
      | _ -> Alcotest.fail "expected Nth trigger");
      Alcotest.(check (option string))
        "filter" (Some "#1") p.FI.faults.(1).FI.filter

let test_parse_errors () =
  List.iter
    (fun bad ->
      match FI.parse bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "nan@residual"; "bogus@job:1"; "nan@elsewhere:1"; "nan@residual:zero"; "crash@job:~1.5" ]

let test_prob_deterministic () =
  let a = FI.uniform ~seed:3 ~salt:"job#1" 5 in
  let b = FI.uniform ~seed:3 ~salt:"job#1" 5 in
  let c = FI.uniform ~seed:4 ~salt:"job#1" 5 in
  Alcotest.(check (float 0.0)) "same key same draw" a b;
  Alcotest.(check bool) "different seed different draw" true (a <> c);
  Alcotest.(check bool) "in range" true (a >= 0.0 && a < 1.0)

(* ---------- hooks in isolation ---------- *)

let test_corrupt_vector_counts () =
  with_plan "nan@residual:2" @@ fun () ->
  FI.with_scope ~key:"t" @@ fun () ->
  let v = [| 1.0; 2.0 |] in
  FI.corrupt_vector FI.Residual v;
  Alcotest.(check bool) "first occurrence clean" true (Float.is_finite v.(0));
  FI.corrupt_vector FI.Residual v;
  Alcotest.(check bool) "second occurrence poisoned" true (Float.is_nan v.(0))

let test_scope_resets_counters () =
  with_plan "crash@job:1" @@ fun () ->
  let crashed f =
    match f () with
    | exception FI.Injected_crash _ -> true
    | () -> false
  in
  Alcotest.(check bool) "attempt 1 crashes" true
    (crashed (fun () -> FI.with_scope ~key:"j#1" (fun () -> FI.fire_point FI.Job)));
  Alcotest.(check bool) "attempt 2 crashes again (fresh scope)" true
    (crashed (fun () -> FI.with_scope ~key:"j#2" (fun () -> FI.fire_point FI.Job)))

let test_filter_targets_scope () =
  with_plan "crash@job/#2:1" @@ fun () ->
  FI.with_scope ~key:"j#1" (fun () -> FI.fire_point FI.Job);
  Alcotest.(check bool) "filtered attempt raises" true
    (match FI.with_scope ~key:"j#2" (fun () -> FI.fire_point FI.Job) with
    | exception FI.Injected_crash _ -> true
    | () -> false)

let test_slow_ages_clock () =
  with_plan "slow@newton:1=3.5" @@ fun () ->
  FI.with_scope ~key:"t" @@ fun () ->
  let t0 = Telemetry.Clock.wall () in
  FI.fire_point FI.Newton_iter;
  let dt = Telemetry.Clock.wall () -. t0 in
  Alcotest.(check bool) "clock skewed by ~3.5s" true (dt >= 3.5 && dt < 4.5)

let test_uninstall_restores_clock () =
  with_plan "slow@newton:1=1000.0" (fun () ->
      FI.with_scope ~key:"t" (fun () -> FI.fire_point FI.Newton_iter));
  (* After uninstall the monotonic source is back: two consecutive
     readings cannot be 1000 s apart. *)
  let a = Telemetry.Clock.wall () in
  let b = Telemetry.Clock.wall () in
  Alcotest.(check bool) "no residual skew" true (b -. a < 100.0)

let test_manual_clock_sleep () =
  let src, _advance = Telemetry.Clock.manual () in
  Telemetry.Clock.install src;
  Fun.protect ~finally:Telemetry.Clock.uninstall @@ fun () ->
  let t0 = Telemetry.Clock.wall () in
  Telemetry.Clock.sleep 2.5;
  Alcotest.(check (float 1e-9)) "sleep advances manual time" 2.5
    (Telemetry.Clock.wall () -. t0)

(* ---------- retry backoff ---------- *)

let test_backoff_bounds_and_determinism () =
  let p = { Resilience.Retry.default with Resilience.Retry.cap_seconds = 0.5 } in
  let d1 = Resilience.Retry.backoff p ~salt:"job-a" ~attempt:1 ~prev:0.0 in
  let d1' = Resilience.Retry.backoff p ~salt:"job-a" ~attempt:1 ~prev:0.0 in
  let d2 = Resilience.Retry.backoff p ~salt:"job-a" ~attempt:2 ~prev:d1 in
  Alcotest.(check (float 0.0)) "deterministic" d1 d1';
  List.iter
    (fun d ->
      Alcotest.(check bool) "within [base, cap]" true
        (d >= p.Resilience.Retry.base_seconds && d <= p.Resilience.Retry.cap_seconds))
    [ d1; d2 ];
  let other = Resilience.Retry.backoff p ~salt:"job-b" ~attempt:1 ~prev:0.0 in
  Alcotest.(check bool) "decorrelated across jobs" true (d1 <> other)

(* ---------- ladder reachability on the engine ---------- *)

let small_options =
  { Engine.Options.default with n1 = 16; n2 = 12; steps_per_period = 64 }

(* Voltage-driven RC: the MNA carries a source branch row whose ILU0
   pivot is structurally zero, so the gmres-ilu0 rung fails over to
   direct-lu — which makes it the right fixture for the deeper rungs. *)
let rc_problem ?(label = "rc") ?(f_fast = 1e6) ?(fd = 1e4) () =
  Engine.Problem.make ~label ~output:"out" ~f_fast ~fd (fun () ->
      Circuits.rc_lowpass
        ~drive:
          (W.sum
             (W.sine ~amplitude:1.0 ~freq:f_fast ())
             (W.sine ~amplitude:1.0 ~freq:(f_fast +. fd) ()))
        ())

(* Current-driven RC: node-only unknowns, every ILU0 pivot nonzero, so
   the gmres-ilu0 rung can actually rescue an injected sweep stall. *)
let current_rc_problem ?(f_fast = 1e6) ?(fd = 1e4) () =
  Engine.Problem.make ~label:"irc" ~output:"out" ~f_fast ~fd (fun () ->
      let nl = Circuit.Netlist.create () in
      Circuit.Netlist.isource nl "i1" "0" "out"
        (W.sum
           (W.sine ~amplitude:1e-3 ~freq:f_fast ())
           (W.sine ~amplitude:1e-3 ~freq:(f_fast +. fd) ()));
      Circuit.Netlist.resistor nl "r1" "out" "0" 1e3;
      Circuit.Netlist.capacitor nl "c1" "out" "0" 1e-9;
      { Circuits.netlist = nl; mna = Circuit.Mna.build nl })

let run_mpde ?spec problem =
  let go () =
    FI.with_scope ~key:problem.Engine.Problem.label @@ fun () ->
    Engine.run problem (Engine.make ~options:small_options Engine.Mpde)
  in
  match spec with None -> go () | Some spec -> with_plan spec go

let strategy (r : Engine.Result.t) =
  Option.value ~default:"?" r.Engine.Result.report.Resilience.Report.strategy

let check_rescued ~expect spec problem =
  let r = run_mpde ~spec problem in
  Alcotest.(check bool)
    (Printf.sprintf "%s converged" expect)
    true r.Engine.Result.converged;
  Alcotest.(check string)
    (Printf.sprintf "rescued by %s" expect)
    expect (strategy r)

let test_stage_newton () =
  let r = run_mpde (rc_problem ()) in
  Alcotest.(check string) "clean solve stays on newton" "newton" (strategy r)

let test_stage_gmres_ilu0 () =
  (* Stall the first-stage GMRES only while the ladder is on its
     "newton" rung; the ILU0 rung then runs uninjected and rescues. *)
  check_rescued ~expect:"gmres-ilu0" "stall@gmres/newton:1x9999"
    (current_rc_problem ())

let test_stage_direct_lu () =
  (* Same plan on the voltage-driven RC: ILU0 hits its structural zero
     pivot, the ladder climbs one more rung. *)
  check_rescued ~expect:"direct-lu" "stall@gmres/newton:1x9999" (rc_problem ())

let test_stage_source_ramp () =
  (* A non-finite residual is a Nonlinear/Non_finite failure: the
     linear rungs do not apply, the ladder jumps to the ramps. *)
  check_rescued ~expect:"source-ramp" "nan@residual/newton:1" (rc_problem ())

let test_stage_ptc_ramp () =
  check_rescued ~expect:"ptc-ramp"
    "nan@residual/newton:1,nan@residual/source-ramp:1x9999" (rc_problem ())

(* ---------- sweep retry / degradation / failure context ---------- *)

let sweep_jobs ?(labels = [| "fd=1000"; "fd=2000" |]) () =
  Array.map
    (fun label ->
      let fd = float_of_string (String.sub label 3 (String.length label - 3)) in
      Engine.Sweep.job ~label ~options:small_options ~kind:Engine.Mpde
        (rc_problem ~label ~fd ()))
    labels

let fast_retry =
  (* Manual-clock-free speed: real sleeps, microscopic backoff. *)
  {
    Resilience.Retry.default with
    Resilience.Retry.base_seconds = 1e-4;
    cap_seconds = 1e-3;
  }

let test_retry_rescues_crash () =
  let clean = Engine.Sweep.run ~domains:1 (sweep_jobs ()) in
  with_plan "crash@job/#1:1" @@ fun () ->
  let outcomes =
    Engine.Sweep.run ~domains:1 ~retry:fast_retry (sweep_jobs ())
  in
  Array.iteri
    (fun i (o : Engine.Sweep.outcome) ->
      match (o.Engine.Sweep.result, clean.(i).Engine.Sweep.result) with
      | Ok r, Ok rc ->
          Alcotest.(check bool) "retried job converged" true
            r.Engine.Result.converged;
          Alcotest.(check int) "second attempt succeeded" 2
            o.Engine.Sweep.attempts;
          Alcotest.(check int) "one retry" 1 (Engine.Sweep.retries o);
          Alcotest.(check bool) "not degraded" false o.Engine.Sweep.degraded;
          (* The retried attempt reruns the identical computation. *)
          Alcotest.(check bool) "waveform bitwise equals clean run" true
            (r.Engine.Result.waveform = rc.Engine.Result.waveform)
      | _ -> Alcotest.failf "job %d did not come back Ok" i)
    outcomes

let test_no_retry_preserves_failure_context () =
  with_plan "crash@job/#1:1" @@ fun () ->
  let outcomes =
    Engine.Sweep.run ~domains:1 ~retry:Resilience.Retry.none
      (sweep_jobs ~labels:[| "fd=1000" |] ())
  in
  match outcomes.(0).Engine.Sweep.result with
  | Ok _ -> Alcotest.fail "expected the injected crash to surface"
  | Error f ->
      Alcotest.(check bool) "names the injected crash" true
        (String.length f.Engine.Sweep.message > 0
        &&
        let sub = "Injected_crash" in
        let n = String.length sub and m = String.length f.Engine.Sweep.message in
        let rec at i =
          i + n <= m
          && (String.sub f.Engine.Sweep.message i n = sub || at (i + 1))
        in
        at 0)

let test_crash_mid_ladder_records_stage () =
  (* Crash on the 2nd Newton iteration of the source-ramp rung: the
     failure context must name the stage the ladder was on. *)
  with_plan "nan@residual/newton:1,crash@newton/source-ramp:2" @@ fun () ->
  let outcomes =
    Engine.Sweep.run ~domains:1 ~retry:Resilience.Retry.none
      (sweep_jobs ~labels:[| "fd=1000" |] ())
  in
  match outcomes.(0).Engine.Sweep.result with
  | Ok _ -> Alcotest.fail "expected the injected crash to surface"
  | Error f ->
      Alcotest.(check (option string))
        "ladder stage recorded" (Some "source-ramp") f.Engine.Sweep.stage

let test_watchdog_degrades () =
  (* Poison every regular attempt; the watchdog's degraded attempt
     (scope "#d") runs clean and must rescue the job. *)
  with_plan "crash@job/#1:1,crash@job/#2:1,crash@job/#3:1" @@ fun () ->
  let retry = { fast_retry with Resilience.Retry.max_attempts = 3 } in
  let outcomes =
    Engine.Sweep.run ~domains:1 ~retry (sweep_jobs ~labels:[| "fd=1000" |] ())
  in
  let o = outcomes.(0) in
  match o.Engine.Sweep.result with
  | Error f -> Alcotest.failf "not rescued: %s" (Engine.Sweep.failure_to_string f)
  | Ok r ->
      Alcotest.(check bool) "degraded result converged" true
        r.Engine.Result.converged;
      Alcotest.(check bool) "flagged degraded" true o.Engine.Sweep.degraded;
      Alcotest.(check int) "all regular attempts used" 3 o.Engine.Sweep.attempts

let test_clean_path_zero_retries () =
  let outcomes =
    Engine.Sweep.run ~domains:2 ~retry:fast_retry (sweep_jobs ())
  in
  Array.iter
    (fun (o : Engine.Sweep.outcome) ->
      Alcotest.(check int) "single attempt" 1 o.Engine.Sweep.attempts;
      Alcotest.(check bool) "not degraded" false o.Engine.Sweep.degraded)
    outcomes

(* ---------- checkpoint ---------- *)

let tmpfile () = Filename.temp_file "rfss_ckpt" ".jsonl"

let test_checkpoint_roundtrip () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let outcomes =
    Engine.Sweep.run ~domains:1 (sweep_jobs ~labels:[| "fd=1000" |] ())
  in
  let r = Engine.Checkpoint.of_outcome outcomes.(0) in
  let log = Engine.Checkpoint.create path in
  Engine.Checkpoint.append log r;
  (* Idempotent on key: re-appending replaces, not duplicates. *)
  Engine.Checkpoint.append log r;
  let loaded = Engine.Checkpoint.load path in
  Alcotest.(check int) "one record" 1 (List.length loaded);
  let r' = List.hd loaded in
  Alcotest.(check bool) "bitwise round trip" true (r = r');
  Alcotest.(check string) "digest stable" (Engine.Checkpoint.digest r)
    (Engine.Checkpoint.digest r')

let test_checkpoint_skips_corrupt_lines () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let outcomes = Engine.Sweep.run ~domains:1 (sweep_jobs ()) in
  let log = Engine.Checkpoint.create path in
  Array.iter
    (fun o -> Engine.Checkpoint.append log (Engine.Checkpoint.of_outcome o))
    outcomes;
  (* Corrupt the log: torn trailing line plus a flipped digest. *)
  let lines =
    String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)
    |> List.filter (fun l -> l <> "")
  in
  let tampered =
    match lines with
    | a :: b :: _ ->
        let b' =
          String.map (fun c -> if c = '0' then '1' else c) b
        in
        [ a; b'; "{\"torn\":" ]
    | _ -> Alcotest.fail "expected two records"
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) tampered);
  let loaded = Engine.Checkpoint.load path in
  Alcotest.(check int) "only the intact record survives" 1 (List.length loaded)

let test_checkpoint_resume_skips_done () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let jobs = sweep_jobs () in
  let log = Engine.Checkpoint.create path in
  let ran = ref 0 in
  let outcomes =
    Engine.Sweep.run ~domains:1
      ~on_outcome:(fun o ->
        incr ran;
        Engine.Checkpoint.append log (Engine.Checkpoint.of_outcome o))
      jobs
  in
  Alcotest.(check int) "all jobs ran once" (Array.length jobs) !ran;
  (* A second run against the same log finds every key. *)
  let log2 = Engine.Checkpoint.create path in
  Array.iter
    (fun (o : Engine.Sweep.outcome) ->
      let r = Engine.Checkpoint.of_outcome o in
      match Engine.Checkpoint.find log2 ~key:r.Engine.Checkpoint.key with
      | None -> Alcotest.failf "missing key %s" r.Engine.Checkpoint.key
      | Some cached ->
          Alcotest.(check string) "cached waveform hash matches"
            r.Engine.Checkpoint.waveform_hash
            cached.Engine.Checkpoint.waveform_hash)
    outcomes

let () =
  Alcotest.run "faultinject"
    [
      ( "plan",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "prob trigger deterministic" `Quick
            test_prob_deterministic;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "nth occurrence corrupts" `Quick
            test_corrupt_vector_counts;
          Alcotest.test_case "scope resets counters" `Quick
            test_scope_resets_counters;
          Alcotest.test_case "filter targets scope" `Quick
            test_filter_targets_scope;
          Alcotest.test_case "slow ages clock" `Quick test_slow_ages_clock;
          Alcotest.test_case "uninstall restores clock" `Quick
            test_uninstall_restores_clock;
          Alcotest.test_case "manual clock sleep" `Quick test_manual_clock_sleep;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff bounds and determinism" `Quick
            test_backoff_bounds_and_determinism;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "newton (clean)" `Quick test_stage_newton;
          Alcotest.test_case "gmres-ilu0 rescue" `Quick test_stage_gmres_ilu0;
          Alcotest.test_case "direct-lu rescue" `Quick test_stage_direct_lu;
          Alcotest.test_case "source-ramp rescue" `Quick test_stage_source_ramp;
          Alcotest.test_case "ptc-ramp rescue" `Quick test_stage_ptc_ramp;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "retry rescues crash" `Quick
            test_retry_rescues_crash;
          Alcotest.test_case "failure context preserved" `Quick
            test_no_retry_preserves_failure_context;
          Alcotest.test_case "mid-ladder crash records stage" `Quick
            test_crash_mid_ladder_records_stage;
          Alcotest.test_case "watchdog degrades" `Quick test_watchdog_degrades;
          Alcotest.test_case "clean path zero retries" `Quick
            test_clean_path_zero_retries;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip and digest" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "skips corrupt lines" `Quick
            test_checkpoint_skips_corrupt_lines;
          Alcotest.test_case "resume finds keys" `Quick
            test_checkpoint_resume_skips_done;
        ] );
    ]
