(* Unit and property tests for the dense linear-algebra substrate. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Lu = Linalg.Lu

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Vec ---------- *)

let test_vec_create () =
  let v = Vec.create 4 in
  Alcotest.(check int) "dim" 4 (Vec.dim v);
  check_float "zero" 0.0 v.(2)

let test_vec_init_map () =
  let v = Vec.init 5 float_of_int in
  let w = Vec.map (fun x -> 2.0 *. x) v in
  check_float "map" 6.0 w.(3)

let test_vec_add_sub () =
  let a = Vec.of_list [ 1.0; 2.0 ] and b = Vec.of_list [ 3.0; 5.0 ] in
  check_float "add" 7.0 (Vec.add a b).(1);
  check_float "sub" (-2.0) (Vec.sub a b).(0)

let test_vec_dot_norms () =
  let v = Vec.of_list [ 3.0; 4.0 ] in
  check_float "dot" 25.0 (Vec.dot v v);
  check_float "norm2" 5.0 (Vec.norm2 v);
  check_float "norm1" 7.0 (Vec.norm1 v);
  check_float "norm_inf" 4.0 (Vec.norm_inf v)

let test_vec_axpy () =
  let x = Vec.of_list [ 1.0; 1.0 ] and y = Vec.of_list [ 2.0; 0.0 ] in
  Vec.axpy 3.0 x y;
  check_float "axpy" 5.0 y.(0);
  check_float "axpy" 3.0 y.(1)

let test_vec_axpby () =
  let x = Vec.of_list [ 1.0; 2.0 ] and y = Vec.of_list [ 10.0; 20.0 ] in
  let z = Vec.axpby 2.0 x 0.5 y in
  check_float "axpby" 7.0 z.(0)

let test_vec_dist2 () =
  let a = Vec.of_list [ 0.0; 0.0 ] and b = Vec.of_list [ 3.0; 4.0 ] in
  check_float "dist2" 5.0 (Vec.dist2 a b)

let test_vec_mismatch () =
  let a = Vec.create 2 and b = Vec.create 3 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Vec: dimension mismatch") (fun () ->
      ignore (Vec.dot a b))

let test_vec_max_abs_index () =
  Alcotest.(check int) "max abs" 1 (Vec.max_abs_index (Vec.of_list [ 2.0; -5.0; 4.0 ]))

let test_vec_mean () =
  check_float "mean" 2.0 (Vec.mean (Vec.of_list [ 1.0; 2.0; 3.0 ]));
  check_float "mean empty" 0.0 (Vec.mean [||])

let test_vec_inplace () =
  let x = Vec.of_list [ 1.0; 2.0 ] in
  Vec.scale_ip 2.0 x;
  check_float "scale_ip" 4.0 x.(1);
  Vec.add_ip x (Vec.of_list [ 1.0; 1.0 ]);
  check_float "add_ip" 3.0 x.(0);
  Vec.sub_ip x (Vec.of_list [ 3.0; 5.0 ]);
  check_float "sub_ip" 0.0 x.(0)

(* ---------- Mat ---------- *)

let test_mat_identity () =
  let m = Mat.identity 3 in
  check_float "diag" 1.0 (Mat.get m 1 1);
  check_float "off" 0.0 (Mat.get m 0 2)

let test_mat_of_arrays () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "entry" 3.0 (Mat.get m 1 0);
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged rows")
    (fun () -> ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let c = Mat.mul a b in
  check_float "c00" 2.0 (Mat.get c 0 0);
  check_float "c01" 1.0 (Mat.get c 0 1);
  check_float "c10" 4.0 (Mat.get c 1 0)

let test_mat_mul_vec () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Mat.mul_vec a (Vec.of_list [ 1.0; 1.0 ]) in
  check_float "y0" 3.0 y.(0);
  check_float "y1" 7.0 y.(1)

let test_mat_tmul_vec () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Mat.tmul_vec a (Vec.of_list [ 1.0; 1.0 ]) in
  check_float "y0" 4.0 y.(0);
  check_float "y1" 6.0 y.(1)

let test_mat_transpose () =
  let a = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Mat.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Mat.dims t);
  check_float "entry" 2.0 (Mat.get t 1 0)

let test_mat_rows_cols () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "row" 4.0 (Mat.row a 1).(1);
  check_float "col" 2.0 (Mat.col a 1).(0);
  Mat.swap_rows a 0 1;
  check_float "swapped" 3.0 (Mat.get a 0 0)

let test_mat_norms () =
  let a = Mat.of_arrays [| [| 3.0; 4.0 |]; [| 0.0; 0.0 |] |] in
  check_float "frobenius" 5.0 (Mat.frobenius_norm a);
  check_float "inf" 7.0 (Mat.norm_inf a);
  check_float "trace" 3.0 (Mat.trace a)

let test_mat_outer () =
  let m = Mat.outer (Vec.of_list [ 1.0; 2.0 ]) (Vec.of_list [ 3.0; 4.0 ]) in
  check_float "outer" 8.0 (Mat.get m 1 1)

(* ---------- Lu ---------- *)

let test_lu_solve_2x2 () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Lu.solve_dense a (Vec.of_list [ 3.0; 5.0 |> fun v -> v ]) in
  check_float "x0" 0.8 x.(0);
  check_float "x1" 1.4 x.(1)

let test_lu_needs_pivoting () =
  (* Zero on the first diagonal forces a row exchange. *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve_dense a (Vec.of_list [ 2.0; 3.0 ]) in
  check_float "x0" 3.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_lu_det () =
  let a = Mat.of_arrays [| [| 2.0; 0.0 |]; [| 0.0; 3.0 |] |] in
  check_float "det" 6.0 (Lu.det (Lu.factor a));
  let swapped = Mat.of_arrays [| [| 0.0; 3.0 |]; [| 2.0; 0.0 |] |] in
  check_float "det sign" (-6.0) (Lu.det (Lu.factor swapped))

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Lu.factor a with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_lu_inverse () =
  let a = Mat.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Lu.inverse (Lu.factor a) in
  let product = Mat.mul a inv in
  Alcotest.(check bool) "a·a⁻¹ = I" true (Mat.approx_equal ~tol:1e-12 product (Mat.identity 2))

let test_lu_transposed () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 0.0; 3.0 |] |] in
  let b = Vec.of_list [ 4.0; 5.0 ] in
  let x = Lu.solve_transposed (Lu.factor a) b in
  let r = Mat.mul_vec (Mat.transpose a) x in
  Alcotest.(check bool) "aᵀx=b" true (Vec.approx_equal ~tol:1e-12 r b)

let test_lu_rcond () =
  let well = Lu.factor (Mat.identity 4) in
  check_float "rcond identity" 1.0 (Lu.rcond_estimate well)

let test_lu_solve_mat () =
  let a = Mat.of_arrays [| [| 2.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  let x = Lu.solve_mat (Lu.factor a) (Mat.identity 2) in
  check_float "inv00" 0.5 (Mat.get x 0 0);
  check_float "inv11" 0.25 (Mat.get x 1 1)

(* ---------- blocked multi-RHS solves ---------- *)

let bits_equal name a b =
  Alcotest.(check bool) name true
    (Array.length a = Array.length b
    && Array.for_all2
         (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
         a b)

(* Deterministic pseudo-random stream so the panel fixtures are
   reproducible without seeding the global RNG. *)
let lcg seed =
  let s = ref seed in
  fun () ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !s /. float_of_int 0x3FFFFFFF) -. 0.5

let test_lu_solve_many_bitwise () =
  (* A panel solve must reproduce column-by-column [solve_into] down to
     the last bit (same substitution order per column), and must leave
     columns outside [off, off+cols) untouched in both buffers. The
     panel is wider than [panel_block] = 16 to exercise the cache
     blocking. *)
  let n = 9 and total = 24 and off = 3 and cols = 19 in
  let rand = lcg 42 in
  let a =
    Mat.init n n (fun i j ->
        (10.0 *. rand ()) +. if i = j then 25.0 else 0.0)
  in
  let f = Lu.factor a in
  let b = Array.init (total * n) (fun _ -> rand ()) in
  let x = Array.make (total * n) nan in
  Lu.solve_many_into f ~off ~cols b x;
  let x_ref = Array.make (total * n) nan in
  let bc = Vec.create n and xc = Vec.create n in
  for c = off to off + cols - 1 do
    Array.blit b (c * n) bc 0 n;
    Lu.solve_into f bc xc;
    Array.blit xc 0 x_ref (c * n) n
  done;
  bits_equal "panel columns bitwise"
    (Array.sub x (off * n) (cols * n))
    (Array.sub x_ref (off * n) (cols * n));
  for c = 0 to total - 1 do
    if c < off || c >= off + cols then
      for r = 0 to n - 1 do
        if not (Float.is_nan x.((c * n) + r)) then
          Alcotest.failf "column %d outside the panel was written" c
      done
  done

let test_lu_solve_many_validates () =
  let f = Lu.factor (Mat.identity 3) in
  let b = Vec.create 6 in
  Alcotest.check_raises "aliased"
    (Invalid_argument "Lu.solve_many_into: aliased panels") (fun () ->
      Lu.solve_many_into f ~cols:2 b b);
  Alcotest.check_raises "short panel"
    (Invalid_argument "Lu.solve_many_into: panel dimension mismatch")
    (fun () -> Lu.solve_many_into f ~cols:3 b (Vec.create 9))

(* ---------- Bigarray kernels ---------- *)

module Kernel = Linalg.Kernel

let test_kernel_roundtrip () =
  let a = [| 1.5; -2.25; 0.0; 3.125 |] in
  let v = Kernel.of_array a in
  Alcotest.(check int) "dim" 4 (Kernel.dim v);
  bits_equal "roundtrip" a (Kernel.to_array v);
  let w = Kernel.create 4 in
  Kernel.blit v w;
  check_float "blit" (-2.25) (Kernel.get w 1);
  Kernel.set w 1 7.0;
  check_float "set" 7.0 (Kernel.get w 1);
  Kernel.fill w 0.5;
  check_float "fill" 0.5 (Kernel.get w 3)

let test_kernel_bitwise_vs_vec () =
  (* The Bigarray kernels promise the same accumulation order as the
     float-array reference, so equality is bitwise, not approximate. *)
  let rand = lcg 7 in
  let n = 129 in
  let xa = Array.init n (fun _ -> 100.0 *. rand ()) in
  let ya = Array.init n (fun _ -> 100.0 *. rand ()) in
  let x = Kernel.of_array xa and y = Kernel.of_array ya in
  bits_equal "dot" [| Vec.dot xa ya |] [| Kernel.dot x y |];
  bits_equal "nrm2" [| Vec.norm2 xa |] [| Kernel.nrm2 x |];
  let ya' = Array.copy ya in
  Vec.axpy 1.75 xa ya';
  Kernel.axpy 1.75 x y;
  bits_equal "axpy" ya' (Kernel.to_array y);
  Kernel.scale_ip 0.3 y;
  Vec.scale_ip 0.3 ya';
  bits_equal "scale_ip" ya' (Kernel.to_array y);
  let za = Vec.sub xa ya' in
  let z = Kernel.create n in
  Kernel.sub_into x y z;
  bits_equal "sub_into" za (Kernel.to_array z);
  Alcotest.(check bool) "is_finite" true (Kernel.is_finite z);
  Kernel.set z 5 Float.nan;
  Alcotest.(check bool) "is_finite nan" false (Kernel.is_finite z)

(* ---------- complex ---------- *)

let test_cvec_roundtrip () =
  let v = Linalg.Cvec.of_real (Vec.of_list [ 1.0; -2.0 ]) in
  check_float "real part" (-2.0) (Linalg.Cvec.real v).(1);
  check_float "imag part" 0.0 (Linalg.Cvec.imag v).(0)

let test_cvec_dot_norm () =
  let i = { Complex.re = 0.0; im = 1.0 } in
  let v = [| i; Complex.one |] in
  let d = Linalg.Cvec.dot v v in
  check_float "‖v‖² real" 2.0 d.Complex.re;
  check_float "‖v‖² imag" 0.0 d.Complex.im;
  check_float "norm" (sqrt 2.0) (Linalg.Cvec.norm2 v)

let test_cmat_lu_solve () =
  let i = { Complex.re = 0.0; im = 1.0 } in
  let a = Linalg.Cmat.init 2 2 (fun r c ->
      if r = c then Complex.add Complex.one i else Complex.zero) in
  let b = [| Complex.one; i |] in
  let x = Linalg.Cmat.lu_solve a b in
  let r = Linalg.Cmat.mul_vec a x in
  Alcotest.(check bool) "ax=b" true (Linalg.Cvec.approx_equal ~tol:1e-12 r b)

let test_cmat_singular () =
  let a = Linalg.Cmat.create 2 2 in
  match Linalg.Cmat.lu_solve a [| Complex.one; Complex.one |] with
  | exception Linalg.Cmat.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

(* ---------- properties ---------- *)

let random_matrix_gen n =
  QCheck.Gen.(
    array_size (return (n * n)) (float_range (-10.0) 10.0)
    |> map (fun data ->
           (* diagonally boosted to stay comfortably nonsingular *)
           Mat.init n n (fun i j ->
               data.((i * n) + j) +. if i = j then 50.0 else 0.0)))

let prop_lu_solves =
  QCheck.Test.make ~count:100 ~name:"lu: a·(a\\b) = b"
    QCheck.(
      make
        Gen.(
          pair (random_matrix_gen 5) (array_size (return 5) (float_range (-5.0) 5.0))))
    (fun (a, b) ->
      let x = Lu.solve_dense a b in
      Vec.dist2 (Mat.mul_vec a x) b < 1e-8)

let prop_lu_det_transpose =
  QCheck.Test.make ~count:60 ~name:"lu: det a = det aᵀ"
    (QCheck.make (random_matrix_gen 4))
    (fun a ->
      let d1 = Lu.det (Lu.factor a) and d2 = Lu.det (Lu.factor (Mat.transpose a)) in
      Float.abs (d1 -. d2) < 1e-6 *. Float.max 1.0 (Float.abs d1))

let prop_vec_triangle =
  QCheck.Test.make ~count:200 ~name:"vec: triangle inequality"
    QCheck.(
      make
        Gen.(
          pair
            (array_size (return 8) (float_range (-100.0) 100.0))
            (array_size (return 8) (float_range (-100.0) 100.0))))
    (fun (a, b) -> Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-9)

let prop_vec_cauchy_schwarz =
  QCheck.Test.make ~count:200 ~name:"vec: |⟨a,b⟩| ≤ ‖a‖‖b‖"
    QCheck.(
      make
        Gen.(
          pair
            (array_size (return 6) (float_range (-50.0) 50.0))
            (array_size (return 6) (float_range (-50.0) 50.0))))
    (fun (a, b) -> Float.abs (Vec.dot a b) <= (Vec.norm2 a *. Vec.norm2 b) +. 1e-9)

let prop_solve_many_bitwise =
  QCheck.Test.make ~count:60 ~name:"lu: solve_many_into ≡ per-column solve_into"
    QCheck.(
      make
        Gen.(
          pair (random_matrix_gen 5)
            (array_size (return (4 * 5)) (float_range (-5.0) 5.0))))
    (fun (a, b) ->
      let n = 5 and cols = 4 in
      let f = Lu.factor a in
      let x1 = Array.make (cols * n) 0.0 in
      Lu.solve_many_into f ~cols b x1;
      let x2 = Array.make (cols * n) 0.0 in
      let bc = Array.make n 0.0 and xc = Array.make n 0.0 in
      for c = 0 to cols - 1 do
        Array.blit b (c * n) bc 0 n;
        Lu.solve_into f bc xc;
        Array.blit xc 0 x2 (c * n) n
      done;
      Array.for_all2
        (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v)
        x1 x2)

let prop_kernel_dot_bitwise =
  QCheck.Test.make ~count:100 ~name:"kernel: dot/nrm2 bitwise vs Vec"
    QCheck.(
      make
        Gen.(
          pair
            (array_size (return 17) (float_range (-50.0) 50.0))
            (array_size (return 17) (float_range (-50.0) 50.0))))
    (fun (a, b) ->
      let x = Kernel.of_array a and y = Kernel.of_array b in
      Int64.bits_of_float (Kernel.dot x y) = Int64.bits_of_float (Vec.dot a b)
      && Int64.bits_of_float (Kernel.nrm2 x)
         = Int64.bits_of_float (Vec.norm2 a))

let prop_mat_mul_assoc =
  QCheck.Test.make ~count:40 ~name:"mat: (ab)c = a(bc)"
    QCheck.(
      make Gen.(triple (random_matrix_gen 3) (random_matrix_gen 3) (random_matrix_gen 3)))
    (fun (a, b, c) ->
      Mat.approx_equal ~tol:1e-6 (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c)))

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "create" `Quick test_vec_create;
          Alcotest.test_case "init/map" `Quick test_vec_init_map;
          Alcotest.test_case "add/sub" `Quick test_vec_add_sub;
          Alcotest.test_case "dot/norms" `Quick test_vec_dot_norms;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "axpby" `Quick test_vec_axpby;
          Alcotest.test_case "dist2" `Quick test_vec_dist2;
          Alcotest.test_case "mismatch raises" `Quick test_vec_mismatch;
          Alcotest.test_case "max_abs_index" `Quick test_vec_max_abs_index;
          Alcotest.test_case "mean" `Quick test_vec_mean;
          Alcotest.test_case "in-place ops" `Quick test_vec_inplace;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity" `Quick test_mat_identity;
          Alcotest.test_case "of_arrays" `Quick test_mat_of_arrays;
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "mul_vec" `Quick test_mat_mul_vec;
          Alcotest.test_case "tmul_vec" `Quick test_mat_tmul_vec;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "rows/cols/swap" `Quick test_mat_rows_cols;
          Alcotest.test_case "norms/trace" `Quick test_mat_norms;
          Alcotest.test_case "outer" `Quick test_mat_outer;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve 2x2" `Quick test_lu_solve_2x2;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "singular detection" `Quick test_lu_singular;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "transposed solve" `Quick test_lu_transposed;
          Alcotest.test_case "rcond" `Quick test_lu_rcond;
          Alcotest.test_case "solve_mat" `Quick test_lu_solve_mat;
          Alcotest.test_case "solve_many_into bitwise" `Quick
            test_lu_solve_many_bitwise;
          Alcotest.test_case "solve_many_into validates" `Quick
            test_lu_solve_many_validates;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "roundtrip" `Quick test_kernel_roundtrip;
          Alcotest.test_case "bitwise vs Vec" `Quick test_kernel_bitwise_vs_vec;
        ] );
      ( "complex",
        [
          Alcotest.test_case "cvec roundtrip" `Quick test_cvec_roundtrip;
          Alcotest.test_case "cvec dot/norm" `Quick test_cvec_dot_norm;
          Alcotest.test_case "cmat lu solve" `Quick test_cmat_lu_solve;
          Alcotest.test_case "cmat singular" `Quick test_cmat_singular;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lu_solves;
            prop_lu_det_transpose;
            prop_solve_many_bitwise;
            prop_kernel_dot_bitwise;
            prop_vec_triangle;
            prop_vec_cauchy_schwarz;
            prop_mat_mul_assoc;
          ] );
    ]
