(* Tests for the live introspection plane (lib/observe): listen-address
   parsing, the HTTP/1.0 subset, event-ring gap detection, snapshot
   atomicity under concurrent publishers, zero perturbation of sweep
   results when a listener is armed, and an end-to-end scrape of a real
   two-domain sweep over a Unix socket plus a TCP ephemeral-port
   server. *)

module O = Observe
module P = Observe.Publish
module J = Diagnostics.Json_min
module W = Circuit.Waveform

(* Every test that arms the global publish hub runs inside this wrapper
   so a failure cannot leak an armed state (or a shrunken ring) into
   the other suites linked in this binary. *)
let with_publish f =
  P.reset ();
  P.arm ();
  Fun.protect
    ~finally:(fun () ->
      P.disarm ();
      P.set_ring_capacity 4096;
      P.reset ())
    f

let temp_socket tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "rfss_%s_%d.sock" tag (Unix.getpid ()))

(* ---------- Addr ---------- *)

let test_addr_parse () =
  let ok spec expect =
    match O.Addr.parse spec with
    | Ok a -> Alcotest.(check bool) (spec ^ " parses as expected") true (a = expect)
    | Error e -> Alcotest.failf "%s should parse: %s" spec e
  in
  ok "unix:/tmp/x.sock" (O.Addr.Unix_socket "/tmp/x.sock");
  ok "/tmp/x.sock" (O.Addr.Unix_socket "/tmp/x.sock");
  ok "127.0.0.1:9100" (O.Addr.Tcp ("127.0.0.1", 9100));
  ok "localhost:0" (O.Addr.Tcp ("localhost", 0));
  ok ":8080" (O.Addr.Tcp ("127.0.0.1", 8080));
  let bad spec =
    match O.Addr.parse spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should be rejected" spec
  in
  bad "";
  bad "9100";
  bad "host:notaport";
  bad "host:70000";
  (* to_string round-trips through parse. *)
  List.iter
    (fun a ->
      match O.Addr.parse (O.Addr.to_string a) with
      | Ok b -> Alcotest.(check bool) "round trip" true (a = b)
      | Error e -> Alcotest.fail e)
    [ O.Addr.Unix_socket "/tmp/y.sock"; O.Addr.Tcp ("127.0.0.1", 9100) ]

(* ---------- Http ---------- *)

let test_http_request () =
  Alcotest.(check bool)
    "incomplete header has no end" true
    (O.Http.header_end "GET / HTTP/1.0\r\nHost: x\r\n" = None);
  let raw = "GET /events?since=42&x=1 HTTP/1.0\r\nHost: Foo\r\nX-Thing: Bar\r\n\r\n" in
  (match O.Http.header_end raw with
  | Some n -> Alcotest.(check int) "header end offset" (String.length raw) n
  | None -> Alcotest.fail "complete header not detected");
  match O.Http.parse_request raw with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check string) "method" "GET" r.O.Http.meth;
      Alcotest.(check string) "path" "/events" r.O.Http.path;
      Alcotest.(check bool)
        "query int" true
        (O.Http.query_int r "since" = Some 42);
      Alcotest.(check bool)
        "missing query param" true
        (O.Http.query_int r "nope" = None);
      Alcotest.(check bool)
        "headers lowercased" true
        (List.assoc_opt "x-thing" r.O.Http.headers = Some "Bar")

let test_http_response_round_trip () =
  let raw = O.Http.response ~status:404 ~content_type:"application/json" "{}" in
  (match O.Http.parse_response raw with
  | Error e -> Alcotest.fail e
  | Ok (status, headers, body) ->
      Alcotest.(check int) "status" 404 status;
      Alcotest.(check string) "body" "{}" body;
      Alcotest.(check bool)
        "content-length" true
        (List.assoc_opt "content-length" headers = Some "2");
      Alcotest.(check bool)
        "close-delimited" true
        (List.assoc_opt "connection" headers = Some "close"));
  (* A stream header has no Content-Length: the body is everything
     until the server closes the connection. *)
  let raw = O.Http.stream_header () ^ "line1\nline2\n" in
  match O.Http.parse_response raw with
  | Error e -> Alcotest.fail e
  | Ok (status, headers, body) ->
      Alcotest.(check int) "stream status" 200 status;
      Alcotest.(check string) "stream body" "line1\nline2\n" body;
      Alcotest.(check bool)
        "no content-length on stream" true
        (List.assoc_opt "content-length" headers = None)

(* POST framing: Content-Length-bounded bodies with a hard cap, and
   405 (with an Allow header) for unsupported methods on known paths. *)
let test_http_framed_and_405 () =
  let post body =
    Printf.sprintf "POST /jobs HTTP/1.0\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  (match O.Http.parse_framed (post "{\"v\":1}") with
  | O.Http.Complete (r, body) ->
      Alcotest.(check string) "framed method" "POST" r.O.Http.meth;
      Alcotest.(check string) "framed body" "{\"v\":1}" body
  | _ -> Alcotest.fail "complete POST not framed");
  (* Body shorter than Content-Length: keep reading. *)
  (match
     O.Http.parse_framed "POST /jobs HTTP/1.0\r\nContent-Length: 10\r\n\r\nabc"
   with
  | O.Http.Incomplete -> ()
  | _ -> Alcotest.fail "short body should be Incomplete");
  (* Declared length beyond the cap is rejected before buffering. *)
  (match
     O.Http.parse_framed ~max_body:8
       "POST /jobs HTTP/1.0\r\nContent-Length: 9\r\n\r\n"
   with
  | O.Http.Too_large -> ()
  | _ -> Alcotest.fail "over-cap body should be Too_large");
  (match
     O.Http.parse_framed "POST /jobs HTTP/1.0\r\nContent-Length: -1\r\n\r\n"
   with
  | O.Http.Malformed _ -> ()
  | _ -> Alcotest.fail "negative Content-Length should be Malformed");
  (* GET keeps framing with an implicit zero-length body. *)
  (match O.Http.parse_framed "GET /metrics HTTP/1.0\r\n\r\n" with
  | O.Http.Complete (r, "") ->
      Alcotest.(check string) "GET path" "/metrics" r.O.Http.path
  | _ -> Alcotest.fail "bodyless GET not framed");
  let raw = O.Http.method_not_allowed ~allow:[ "GET"; "POST" ] in
  match O.Http.parse_response raw with
  | Error e -> Alcotest.fail e
  | Ok (status, headers, _) ->
      Alcotest.(check int) "405 status" 405 status;
      Alcotest.(check bool)
        "Allow header" true
        (List.assoc_opt "allow" headers = Some "GET, POST")

(* ---------- Event ring: retention and gap detection ---------- *)

let test_event_ring_gap () =
  with_publish @@ fun () ->
  P.set_ring_capacity 16;
  for i = 1 to 20 do
    P.job_started ~job:(Printf.sprintf "j%d" i) ~worker:0
  done;
  let s = P.events_since 0 in
  Alcotest.(check int) "next seq" 21 s.P.next_seq;
  Alcotest.(check int) "oldest retained" 5 s.P.oldest_seq;
  Alcotest.(check int) "retained count" 16 (List.length s.P.events);
  List.iteri
    (fun i e -> Alcotest.(check int) "contiguous ascending" (5 + i) e.P.seq)
    s.P.events;
  (* A subscriber asking from 0 missed seqs 1..4: the header must say
     so; one asking from 10 gets a gapless tail. *)
  let header since =
    let j = J.parse (P.events_header ~since) in
    ( Option.bind (J.member "schema" j) J.str,
      Option.bind (J.member "gap" j) J.bool )
  in
  Alcotest.(check bool)
    "late subscriber sees gap" true
    (header 0 = (Some "rfss.sweep_events/1", Some true));
  Alcotest.(check bool)
    "caught-up subscriber sees no gap" true
    (header 10 = (Some "rfss.sweep_events/1", Some false));
  let tail = P.events_since 10 in
  Alcotest.(check int) "tail count" 10 (List.length tail.P.events);
  Alcotest.(check int) "tail first" 11 (List.hd tail.P.events).P.seq;
  Alcotest.(check int)
    "beyond the end is empty" 0
    (List.length (P.events_since 30).P.events);
  (* Event JSONL lines carry the seq and kind. *)
  let e = List.hd s.P.events in
  let j = J.parse (P.event_to_json e) in
  Alcotest.(check bool)
    "event json seq" true
    (Option.bind (J.member "seq" j) J.num = Some (float_of_int e.P.seq));
  Alcotest.(check bool)
    "event json kind" true
    (Option.bind (J.member "event" j) J.str = Some "job_started")

(* ---------- Snapshot atomicity ---------- *)

let test_snapshot_atomicity () =
  with_publish @@ fun () ->
  let writers = 2 and per_writer = 300 in
  P.run_started ~domains:writers ~phase:"test" ~total:(writers * per_writer) ();
  let stop = Atomic.make false in
  let violations = ref 0 in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let s = P.read_stats () in
          let worker_done =
            Array.fold_left (fun a w -> a + w.P.w_jobs_done) 0 s.P.workers
          in
          if
            s.P.counts.P.finished > s.P.counts.P.started
            || s.P.job_wall.Telemetry.count <> s.P.counts.P.finished
            || worker_done <> s.P.counts.P.finished
          then incr violations;
          Domain.cpu_relax ()
        done)
  in
  let spawned =
    Array.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to per_writer do
              let job = Printf.sprintf "w%d-%d" w i in
              P.job_started ~job ~worker:w;
              P.job_finished ~job ~worker:w ~status:"ok"
                ~health:(Some "quadratic") ~wall_seconds:0.001 ~attempts:1
            done))
  in
  Array.iter Domain.join spawned;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "no torn snapshots" 0 !violations;
  Alcotest.(check int) "final finished count" (writers * per_writer)
    (P.read_stats ()).P.counts.P.finished

(* ---------- Sweep fixtures (mirrors test_engine.ml) ---------- *)

let rc_problem ?(label = "rc") ?(f_fast = 1e6) ?(fd = 1e4) () =
  Engine.Problem.make ~label ~output:"out" ~f_fast ~fd (fun () ->
      Circuits.rc_lowpass
        ~drive:
          (W.sum
             (W.sine ~amplitude:1.0 ~freq:f_fast ())
             (W.sine ~amplitude:1.0 ~freq:(f_fast +. fd) ()))
        ())

let small_options =
  {
    Engine.Options.default with
    steps_per_period = 64;
    segments = 4;
    steps_per_segment = 16;
    harmonics = 6;
    points = 33;
    n1 = 16;
    n2 = 12;
  }

let sweep_jobs fds =
  Array.map
    (fun fd ->
      Engine.Sweep.job ~options:small_options ~kind:Engine.Mpde
        (rc_problem ~label:(Printf.sprintf "fd=%g" fd) ~fd ()))
    fds

(* Render a result's waveform the way the CSV writer would — fixed
   %.17g per sample — so "byte-identical" means exactly that. *)
let waveform_csv (r : Engine.Result.t) =
  let buf = Buffer.create 4096 in
  let w = r.Engine.Result.waveform in
  Array.iteri
    (fun i t ->
      Buffer.add_string buf
        (Printf.sprintf "%.17g,%.17g\n" t w.Engine.Result.values.(i)))
    w.Engine.Result.times;
  Buffer.contents buf

(* ---------- Listener perturbs nothing ---------- *)

let test_listener_identical_results () =
  let src, _advance = Telemetry.Clock.manual () in
  Telemetry.Clock.install src;
  Fun.protect ~finally:(fun () -> Telemetry.Clock.uninstall ())
  @@ fun () ->
  let run_once () =
    Array.map
      (fun (o : Engine.Sweep.outcome) ->
        match o.Engine.Sweep.result with
        | Ok r -> (r.Engine.Result.label, r.Engine.Result.converged,
                   waveform_csv r)
        | Error e ->
            Alcotest.failf "job %d errored: %s" o.Engine.Sweep.index
              (Engine.Sweep.failure_to_string e))
      (Engine.Sweep.run ~domains:2 ~per_job_trace:true
         (sweep_jobs [| 1e4; 5e4 |]))
  in
  P.reset ();
  P.disarm ();
  let plain = run_once () in
  let sock = temp_socket "identical" in
  let live =
    match O.Server.start (O.Addr.Unix_socket sock) with
    | Error e -> Alcotest.fail e
    | Ok srv ->
        Fun.protect ~finally:(fun () -> O.Server.stop srv) run_once
  in
  Alcotest.(check int) "same job count" (Array.length plain)
    (Array.length live);
  Array.iteri
    (fun i (label, converged, csv) ->
      let label', converged', csv' = live.(i) in
      Alcotest.(check string) "label" label label';
      Alcotest.(check bool) "converged" converged converged';
      Alcotest.(check string)
        (Printf.sprintf "%s waveform CSV byte-identical" label)
        csv csv')
    plain

(* ---------- End-to-end: scrape a live two-domain sweep ---------- *)

let test_e2e_unix_socket_sweep () =
  P.reset ();
  let sock = temp_socket "e2e" in
  let addr = O.Addr.Unix_socket sock in
  match O.Server.start addr with
  | Error e -> Alcotest.fail e
  | Ok srv ->
      let stopped = ref false in
      Fun.protect ~finally:(fun () -> if not !stopped then O.Server.stop srv)
      @@ fun () ->
      let jobs = sweep_jobs [| 1e3; 1e4; 1e5; 2e5 |] in
      (* Scrape both fixed endpoints mid-run, from the first completion
         callback (which fires on a worker domain while the sweep is
         still running). *)
      let scrape_mutex = Mutex.create () in
      let mid_metrics = ref None and mid_healthz = ref None in
      let on_outcome (_ : Engine.Sweep.outcome) =
        Mutex.protect scrape_mutex (fun () ->
            if !mid_metrics = None then
              mid_metrics := Some (O.Client.get ~timeout:10.0 addr "/metrics");
            if !mid_healthz = None then
              mid_healthz := Some (O.Client.get ~timeout:10.0 addr "/healthz"))
      in
      let outcomes = Engine.Sweep.run ~domains:2 ~on_outcome jobs in
      Alcotest.(check int) "all jobs ran" (Array.length jobs)
        (Array.length outcomes);
      (* Mid-run /metrics parses with the strict Prometheus parser and
         reports the sweep size. *)
      (match !mid_metrics with
      | Some (Ok (status, _, body)) ->
          Alcotest.(check int) "metrics status" 200 status;
          let samples =
            try Diagnostics.Registry.parse_prometheus body
            with Failure m -> Alcotest.failf "metrics did not re-parse: %s" m
          in
          (match
             List.find_opt
               (fun (n, _, _) -> n = "rfss_sweep_jobs_total")
               samples
           with
          | Some (_, _, v) ->
              Alcotest.(check (float 0.0)) "jobs_total" 4.0 v
          | None -> Alcotest.fail "missing rfss_sweep_jobs_total")
      | Some (Error e) -> Alcotest.failf "mid-run /metrics failed: %s" e
      | None -> Alcotest.fail "on_outcome never fired");
      (* Mid-run /healthz is valid JSON in the running phase. *)
      (match !mid_healthz with
      | Some (Ok (status, _, body)) ->
          Alcotest.(check int) "healthz status" 200 status;
          let j = J.parse body in
          Alcotest.(check bool)
            "healthz schema" true
            (Option.bind (J.member "schema" j) J.str
            = Some "rfss.healthz/1");
          Alcotest.(check bool)
            "healthz running" true
            (Option.bind (J.member "phase" j) J.str = Some "running")
      | Some (Error e) -> Alcotest.failf "mid-run /healthz failed: %s" e
      | None -> Alcotest.fail "on_outcome never fired");
      (* After the run: phase done, all jobs finished. *)
      (match O.Client.get ~timeout:10.0 addr "/healthz" with
      | Ok (200, _, body) ->
          let j = J.parse body in
          Alcotest.(check bool)
            "final phase done" true
            (Option.bind (J.member "phase" j) J.str = Some "done");
          Alcotest.(check bool)
            "final finished count" true
            (Option.bind (J.path [ "jobs"; "finished" ] j) J.num = Some 4.0)
      | Ok (st, _, _) -> Alcotest.failf "final /healthz status %d" st
      | Error e -> Alcotest.failf "final /healthz failed: %s" e);
      (* Subscribe to /events from 0: header first, then every retained
         event with contiguous seqs and one job_finished per job. *)
      (match O.Client.open_stream ~timeout:10.0 ~since:0 addr with
      | Error e -> Alcotest.failf "open_stream failed: %s" e
      | Ok stream ->
          let lines = ref [] in
          let deadline = Unix.gettimeofday () +. 10.0 in
          let enough () =
            List.exists
              (fun l ->
                match J.parse l with
                | j -> Option.bind (J.member "event" j) J.str
                       = Some "run_finished"
                | exception J.Parse_error _ -> false)
              !lines
          in
          while
            (not (enough ()))
            && (not (O.Client.closed stream))
            && Unix.gettimeofday () < deadline
          do
            match O.Client.poll_lines stream with
            | [] -> ignore (Unix.select [] [] [] 0.02)
            | ls -> lines := !lines @ ls
          done;
          lines := !lines @ O.Client.poll_lines stream;
          O.Client.close_stream stream;
          (match !lines with
          | header :: events ->
              let j = J.parse header in
              Alcotest.(check bool)
                "events header schema" true
                (Option.bind (J.member "schema" j) J.str
                = Some "rfss.sweep_events/1");
              Alcotest.(check bool)
                "no gap from seq 0" true
                (Option.bind (J.member "gap" j) J.bool = Some false);
              let seqs =
                List.filter_map
                  (fun l -> Option.bind (J.member "seq" (J.parse l)) J.num)
                  events
              in
              Alcotest.(check bool) "got events" true (seqs <> []);
              List.iteri
                (fun i s ->
                  Alcotest.(check (float 0.0)) "seq contiguous"
                    (float_of_int (i + 1)) s)
                seqs;
              let finished =
                List.length
                  (List.filter
                     (fun l ->
                       Option.bind (J.member "event" (J.parse l)) J.str
                       = Some "job_finished")
                     events)
              in
              Alcotest.(check int) "one job_finished per job"
                (Array.length jobs) finished
          | [] -> Alcotest.fail "no lines from /events"));
      O.Server.stop srv;
      stopped := true;
      Alcotest.(check bool)
        "unix socket unlinked on stop" false (Sys.file_exists sock)

(* ---------- TCP with a kernel-assigned port ---------- *)

let test_tcp_ephemeral_port () =
  P.reset ();
  match O.Server.start (O.Addr.Tcp ("127.0.0.1", 0)) with
  | Error e -> Alcotest.fail e
  | Ok srv ->
      Fun.protect ~finally:(fun () -> O.Server.stop srv)
      @@ fun () ->
      let addr = O.Server.addr srv in
      (match addr with
      | O.Addr.Tcp (_, port) ->
          Alcotest.(check bool) "kernel assigned a port" true (port > 0)
      | O.Addr.Unix_socket _ -> Alcotest.fail "expected a TCP address");
      (match O.Client.get ~timeout:10.0 addr "/healthz" with
      | Ok (200, _, body) ->
          Alcotest.(check bool)
            "healthz over TCP" true
            (Option.bind (J.member "schema" (J.parse body)) J.str
            = Some "rfss.healthz/1")
      | Ok (st, _, _) -> Alcotest.failf "/healthz status %d" st
      | Error e -> Alcotest.fail e);
      (match O.Client.get ~timeout:10.0 addr "/nope" with
      | Ok (404, _, _) -> ()
      | Ok (st, _, _) -> Alcotest.failf "expected 404, got %d" st
      | Error e -> Alcotest.fail e);
      (* stop is idempotent. *)
      O.Server.stop srv;
      O.Server.stop srv

(* ---------- run ---------- *)

let () =
  Alcotest.run "observe"
    [
      ( "addr",
        [ Alcotest.test_case "parse and round trip" `Quick test_addr_parse ] );
      ( "http",
        [
          Alcotest.test_case "request parsing" `Quick test_http_request;
          Alcotest.test_case "response round trip" `Quick
            test_http_response_round_trip;
          Alcotest.test_case "POST framing and 405" `Quick
            test_http_framed_and_405;
        ] );
      ( "events",
        [ Alcotest.test_case "ring retention and gaps" `Quick test_event_ring_gap ] );
      ( "publish",
        [ Alcotest.test_case "snapshot atomicity" `Quick test_snapshot_atomicity ] );
      ( "sweep",
        [
          Alcotest.test_case "listener perturbs nothing" `Quick
            test_listener_identical_results;
          Alcotest.test_case "end-to-end unix socket scrape" `Quick
            test_e2e_unix_socket_sweep;
          Alcotest.test_case "tcp ephemeral port" `Quick
            test_tcp_ephemeral_port;
        ] );
    ]
