(* Tests for the telemetry subsystem: span nesting and ordering,
   counter/gauge/histogram accumulation, disabled-mode no-ops, the
   JSONL and Chrome trace exporters (parsed back with the minimal JSON
   reader below), fake-clock determinism, and the integration points —
   budgets on the shared clock and Resilience.Report's embedded
   telemetry summary. *)

(* ---------- minimal JSON reader (validation only) ---------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some ('r' | 'b' | 'f') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char buf '?';
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let member_exn key j =
  match member key j with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing JSON member %S" key)

let str_exn = function Str s -> s | _ -> Alcotest.fail "expected string"

(* ---------- helpers ---------- *)

(* Every test runs against its own fake clock and recorder; [finally]
   restores the process-global state so test order never matters. *)
let with_fake_telemetry f =
  let source, advance = Telemetry.Clock.manual () in
  Telemetry.Clock.install source;
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.Clock.uninstall ())
    (fun () -> f advance)

let capture () =
  match Telemetry.snapshot () with
  | Some s -> s
  | None -> Alcotest.fail "telemetry unexpectedly disabled"

(* ---------- core recorder ---------- *)

let test_span_nesting () =
  with_fake_telemetry @@ fun advance ->
  Telemetry.span "outer" (fun () ->
      advance 1.0;
      Telemetry.span "inner" (fun () -> advance 2.0);
      Telemetry.span "inner" (fun () -> advance 0.5));
  let s = capture () in
  let names =
    Array.to_list s.Telemetry.events
    |> List.map (function
         | Telemetry.Span_begin { name; _ } -> "B:" ^ name
         | Telemetry.Span_end { name; _ } -> "E:" ^ name)
  in
  Alcotest.(check (list string))
    "event order"
    [ "B:outer"; "B:inner"; "E:inner"; "B:inner"; "E:inner"; "E:outer" ]
    names;
  (match s.Telemetry.events.(1) with
  | Telemetry.Span_begin { parent; _ } ->
      Alcotest.(check int) "inner's parent is outer" 0 parent
  | _ -> Alcotest.fail "expected begin");
  let summary = Telemetry.Summary.of_snapshot s in
  (match Telemetry.Summary.find summary "outer" with
  | Some node ->
      Alcotest.(check int) "outer calls" 1 node.Telemetry.Summary.calls;
      Alcotest.(check (float 1e-9)) "outer wall" 3.5 node.Telemetry.Summary.wall;
      Alcotest.(check (float 1e-9)) "outer self" 1.0 node.Telemetry.Summary.self
  | None -> Alcotest.fail "no outer node");
  match Telemetry.Summary.find summary "inner" with
  | Some node ->
      (* Same-name siblings aggregate into one node. *)
      Alcotest.(check int) "inner calls" 2 node.Telemetry.Summary.calls;
      Alcotest.(check (float 1e-9)) "inner wall" 2.5 node.Telemetry.Summary.wall
  | None -> Alcotest.fail "no inner node"

let test_counters_gauges_histograms () =
  with_fake_telemetry @@ fun _advance ->
  Telemetry.count "ticks";
  Telemetry.count ~by:41 "ticks";
  Telemetry.count "other";
  Telemetry.gauge "nnz" 10.0;
  Telemetry.gauge "nnz" 12.0;
  Telemetry.observe "res" 3.0;
  Telemetry.observe "res" 1.0;
  Telemetry.observe "res" 2.0;
  let s = capture () in
  Alcotest.(check (list (pair string int)))
    "counters sorted and accumulated"
    [ ("other", 1); ("ticks", 42) ]
    s.Telemetry.counters;
  Alcotest.(check (list (pair string (float 0.0))))
    "gauge keeps last value"
    [ ("nnz", 12.0) ]
    s.Telemetry.gauges;
  match s.Telemetry.histograms with
  | [ ("res", h) ] ->
      Alcotest.(check int) "count" 3 h.Telemetry.count;
      Alcotest.(check (float 0.0)) "sum" 6.0 h.Telemetry.sum;
      Alcotest.(check (float 0.0)) "min" 1.0 h.Telemetry.min;
      Alcotest.(check (float 0.0)) "max" 3.0 h.Telemetry.max
  | _ -> Alcotest.fail "expected one histogram"

let test_disabled_noop () =
  Telemetry.disable ();
  Alcotest.(check bool) "disabled" false (Telemetry.enabled ());
  Alcotest.(check int) "span passes value through" 7 (Telemetry.span "x" (fun () -> 7));
  Telemetry.count "ignored";
  Telemetry.gauge "ignored" 1.0;
  Telemetry.observe "ignored" 1.0;
  Alcotest.(check int) "mark is 0" 0 (Telemetry.mark ());
  Alcotest.(check int) "span_begin is -1" (-1) (Telemetry.span_begin "x");
  Telemetry.span_end (-1);
  Alcotest.(check bool) "snapshot is None" true (Telemetry.snapshot () = None)

let test_exception_safety () =
  with_fake_telemetry @@ fun advance ->
  (try
     Telemetry.span "boom" (fun () ->
         advance 1.0;
         failwith "inner failure")
   with Failure _ -> ());
  Telemetry.span "after" (fun () -> advance 1.0);
  let summary = Telemetry.Summary.of_snapshot (capture ()) in
  (match Telemetry.Summary.find summary "boom" with
  | Some node -> Alcotest.(check (float 1e-9)) "boom closed at raise" 1.0 node.Telemetry.Summary.wall
  | None -> Alcotest.fail "raising span was not recorded");
  (* "after" must be a root alongside "boom": the raising span did not
     leak open and swallow its successor. *)
  let root_names =
    List.map (fun n -> n.Telemetry.Summary.name) summary.Telemetry.Summary.roots
    |> List.sort compare
  in
  Alcotest.(check (list string)) "both spans are roots" [ "after"; "boom" ] root_names

let test_fake_clock_determinism () =
  let run () =
    with_fake_telemetry @@ fun advance ->
    Telemetry.span "a" (fun () ->
        advance 0.25;
        Telemetry.span "b" (fun () -> advance 0.75));
    advance 1.0;
    Telemetry.Summary.to_json_string (Telemetry.Summary.of_snapshot (capture ()))
  in
  let first = run () and second = run () in
  Alcotest.(check string) "byte-identical reruns" first second;
  let summary = parse_json first in
  Alcotest.(check (float 0.0)) "duration exact" 2.0
    (match member_exn "duration" summary with Num f -> f | _ -> nan)

let test_mark_and_windowed_snapshot () =
  with_fake_telemetry @@ fun advance ->
  Telemetry.span "solve" (fun () -> advance 1.0);
  let mark = Telemetry.mark () in
  Telemetry.span "solve" (fun () -> advance 3.0);
  let windowed =
    match Telemetry.snapshot ~since:mark () with
    | Some s -> s
    | None -> Alcotest.fail "enabled but no snapshot"
  in
  Alcotest.(check int) "only second solve captured" 2 (Array.length windowed.Telemetry.events);
  let summary = Telemetry.Summary.of_snapshot windowed in
  match Telemetry.Summary.find summary "solve" with
  | Some node ->
      Alcotest.(check int) "calls" 1 node.Telemetry.Summary.calls;
      Alcotest.(check (float 1e-9)) "wall of second solve only" 3.0 node.Telemetry.Summary.wall
  | None -> Alcotest.fail "no solve node"

let test_open_spans_closed_in_snapshot () =
  with_fake_telemetry @@ fun advance ->
  let id = Telemetry.span_begin "still-open" in
  advance 2.0;
  let s = capture () in
  Alcotest.(check int) "begin + synthesized end" 2 (Array.length s.Telemetry.events);
  (match s.Telemetry.events.(1) with
  | Telemetry.Span_end { wall; _ } ->
      Alcotest.(check (float 1e-9)) "closed at capture time" 2.0 wall
  | _ -> Alcotest.fail "expected synthesized end");
  Telemetry.span_end id

(* ---------- exporters ---------- *)

let with_temp_file f =
  let path = Filename.temp_file "telemetry_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let record_sample advance =
  Telemetry.span "newton" (fun () ->
      advance 1.0;
      Telemetry.span "line \"search\"\n" (fun () -> advance 0.5));
  Telemetry.count "iters";
  Telemetry.gauge "fill" 1.5;
  Telemetry.observe "residual" 1e-9;
  capture ()

let test_jsonl_roundtrip () =
  with_fake_telemetry @@ fun advance ->
  let s = record_sample advance in
  with_temp_file @@ fun path ->
  let oc = open_out path in
  Telemetry.Sink.write_jsonl oc s;
  close_out oc;
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parsed = List.map parse_json lines in
  let kind j = str_exn (member_exn "ev" j) in
  Alcotest.(check (list string))
    "line kinds in order"
    [ "begin"; "begin"; "end"; "end"; "counter"; "gauge"; "histogram"; "summary" ]
    (List.map kind parsed);
  let begins = List.filter (fun j -> kind j = "begin") parsed in
  Alcotest.(check (list string))
    "escaped name survives the round trip"
    [ "newton"; "line \"search\"\n" ]
    (List.map (fun j -> str_exn (member_exn "name" j)) begins)

let test_chrome_roundtrip () =
  with_fake_telemetry @@ fun advance ->
  let s = record_sample advance in
  with_temp_file @@ fun path ->
  let oc = open_out path in
  Telemetry.Sink.write_chrome oc s;
  close_out oc;
  let doc = parse_json (read_file path) in
  let events =
    match member_exn "traceEvents" doc with
    | Arr l -> l
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  let phase j = str_exn (member_exn "ph" j) in
  let count ph = List.length (List.filter (fun j -> phase j = ph) events) in
  (* process_name + thread_name, both emitted by the Merge-backed writer. *)
  Alcotest.(check int) "two metadata events" 2 (count "M");
  Alcotest.(check int) "begin/end balanced" (count "B") (count "E");
  Alcotest.(check int) "two spans" 2 (count "B");
  Alcotest.(check int) "counter + gauge samples" 2 (count "C");
  List.iter
    (fun j ->
      match member "ts" j with
      | Some (Num ts) ->
          Alcotest.(check bool) "timestamps are non-negative" true (ts >= 0.0)
      | Some _ -> Alcotest.fail "ts is not a number"
      | None -> Alcotest.(check string) "only metadata lacks ts" "M" (phase j))
    events

(* ---------- integration: shared clock and report embedding ---------- *)

let test_budget_fake_clock () =
  let source, advance = Telemetry.Clock.manual () in
  Telemetry.Clock.install source;
  Fun.protect ~finally:Telemetry.Clock.uninstall @@ fun () ->
  let budget = Resilience.Budget.make ~wall_seconds:5.0 () in
  Alcotest.(check bool) "fresh budget not exhausted" true
    (Resilience.Budget.exhausted budget = None);
  advance 6.0;
  match Resilience.Budget.exhausted budget with
  | Some (Resilience.Budget.Wall_clock { limit; elapsed }) ->
      Alcotest.(check (float 0.0)) "limit" 5.0 limit;
      Alcotest.(check (float 1e-9)) "elapsed from fake clock" 6.0 elapsed
  | _ -> Alcotest.fail "expected deterministic wall-clock exhaustion"

let test_report_embeds_telemetry () =
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass
      ~drive:(Circuit.Waveform.sine ~amplitude:1.0 ~freq:1e6 ())
      ()
  in
  let report = Circuit.Dcop.solve mna in
  Alcotest.(check bool) "dcop converged" true report.Circuit.Dcop.converged;
  let doc =
    parse_json (Resilience.Report.to_json_string report.Circuit.Dcop.resilience)
  in
  let telemetry = member_exn "telemetry" doc in
  let span_names =
    match member_exn "spans" telemetry with
    | Arr spans -> List.map (fun s -> str_exn (member_exn "name" s)) spans
    | _ -> Alcotest.fail "spans is not an array"
  in
  Alcotest.(check (list string)) "root span is the dcop solve" [ "dcop.solve" ] span_names;
  match member_exn "counters" telemetry with
  | Obj counters ->
      Alcotest.(check bool) "newton iterations counted" true
        (List.mem_assoc "newton.iterations" counters)
  | _ -> Alcotest.fail "counters is not an object"

let () =
  Alcotest.run "telemetry"
    [
      ( "core",
        [
          Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "counters, gauges, histograms" `Quick
            test_counters_gauges_histograms;
          Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "fake-clock determinism" `Quick test_fake_clock_determinism;
          Alcotest.test_case "mark + windowed snapshot" `Quick
            test_mark_and_windowed_snapshot;
          Alcotest.test_case "open spans closed at capture" `Quick
            test_open_spans_closed_in_snapshot;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl parses back" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "chrome trace parses back" `Quick test_chrome_roundtrip;
        ] );
      ( "integration",
        [
          Alcotest.test_case "budget on the fake clock" `Quick test_budget_fake_clock;
          Alcotest.test_case "report embeds telemetry" `Quick test_report_embeds_telemetry;
        ] );
    ]
