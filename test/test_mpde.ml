(* Tests for the core contribution: sheared difference-frequency time
   scales, the bi-periodic MPDE grid solver, extraction, and the
   envelope-following mode. *)

module W = Circuit.Waveform
module Shear = Mpde.Shear
module Grid = Mpde.Grid

let pi = 4.0 *. atan 1.0

(* ---------- Shear ---------- *)

let shear_1g = Shear.make ~fast_freq:1e9 ~slow_freq:10e3

let test_shear_accessors () =
  Alcotest.(check (float 1e-3)) "fast" 1e9 (Shear.fast_freq shear_1g);
  Alcotest.(check (float 1e-9)) "t1 period" 1e-9 (Shear.t1_period shear_1g);
  Alcotest.(check (float 1e-9)) "t2 period" 1e-4 (Shear.t2_period shear_1g);
  Alcotest.(check (float 1e-3)) "disparity" 1e5 (Shear.disparity shear_1g)

let test_shear_make_validation () =
  Alcotest.check_raises "slow >= fast"
    (Invalid_argument "Shear.make: need 0 < slow_freq < fast_freq") (fun () ->
      ignore (Shear.make ~fast_freq:1.0 ~slow_freq:2.0))

let test_shear_lattice_basic () =
  Alcotest.(check (pair int int)) "f1" (1, 0) (Shear.lattice shear_1g 1e9);
  Alcotest.(check (pair int int)) "f1 - fd" (1, -1) (Shear.lattice shear_1g (1e9 -. 10e3));
  Alcotest.(check (pair int int)) "2f1 + fd" (2, 1) (Shear.lattice shear_1g (2e9 +. 10e3));
  Alcotest.(check (pair int int)) "pure fd" (0, 1) (Shear.lattice shear_1g 10e3);
  Alcotest.(check (pair int int)) "dc" (0, 0) (Shear.lattice shear_1g 0.0)

let test_shear_off_lattice () =
  match Shear.lattice shear_1g (1e9 +. 3333.0) with
  | exception Shear.Off_lattice _ -> ()
  | _ -> Alcotest.fail "expected Off_lattice"

let test_shear_phase_diagonal_identity () =
  (* The defining property: phase(t, t) of frequency f equals f·t. *)
  List.iter
    (fun f ->
      List.iter
        (fun t ->
          let p = Shear.phase shear_1g ~t1:t ~t2:t f in
          Alcotest.(check bool)
            (Printf.sprintf "diagonal at f=%g t=%g" f t)
            true
            (Float.abs (p -. (f *. t)) <= 1e-6 *. Float.max 1.0 (Float.abs (f *. t))))
        [ 0.0; 1.234e-9; 5.0e-5 ])
    [ 1e9; 1e9 +. 10e3; 2e9 -. 20e3; 10e3; 30e3 ]

let test_shear_phase_periodicity () =
  (* Sheared phase advances by an integer when t1 advances by T1 or t2
     by Td — the bi-periodicity that makes the grid representation
     consistent. *)
  let f = 2e9 +. 10e3 in
  let t1 = 0.3e-9 and t2 = 2.7e-5 in
  let p0 = Shear.phase shear_1g ~t1 ~t2 f in
  let p1 = Shear.phase shear_1g ~t1:(t1 +. 1e-9) ~t2 f in
  let p2 = Shear.phase shear_1g ~t1 ~t2:(t2 +. 1e-4) f in
  let is_integer x = Float.abs (x -. Float.round x) < 1e-6 in
  Alcotest.(check bool) "T1 shift" true (is_integer (p1 -. p0));
  Alcotest.(check bool) "Td shift" true (is_integer (p2 -. p0))

let test_shear_unsheared_assignment () =
  (* Unsheared: fast-multiple frequencies ride on t1, others on t2. *)
  let p_fast = Shear.phase_unsheared shear_1g ~t1:1.0e-9 ~t2:0.0 1e9 in
  Alcotest.(check (float 1e-9)) "fast on t1" 1.0 p_fast;
  let f2 = 1e9 -. 10e3 in
  let p_slow = Shear.phase_unsheared shear_1g ~t1:0.0 ~t2:1.0e-9 f2 in
  Alcotest.(check (float 1e-6)) "slow on t2" (f2 *. 1.0e-9) p_slow

let test_shear_validate_sources () =
  let nl = Circuit.Netlist.create () in
  Circuit.Netlist.vsource nl "v1" "a" "0" (W.sine ~amplitude:1.0 ~freq:1e9 ());
  Circuit.Netlist.resistor nl "r1" "a" "0" 1.0;
  let m = Circuit.Mna.build nl in
  (match Shear.validate_sources shear_1g m with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "on-lattice source rejected");
  let nl2 = Circuit.Netlist.create () in
  (* 1 GHz + 5432.1 Hz is not representable as m·1 GHz + k·10 kHz. *)
  Circuit.Netlist.vsource nl2 "v1" "a" "0" (W.sine ~amplitude:1.0 ~freq:(1e9 +. 5432.1) ());
  Circuit.Netlist.resistor nl2 "r1" "a" "0" 1.0;
  let m2 = Circuit.Mna.build nl2 in
  match Shear.validate_sources shear_1g m2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "off-lattice source accepted"

(* ---------- Grid ---------- *)

let test_grid_geometry () =
  let g = Grid.make ~shear:shear_1g ~n1:10 ~n2:5 in
  Alcotest.(check int) "points" 50 (Grid.points g);
  Alcotest.(check (float 1e-20)) "h1" 1e-10 g.Grid.h1;
  Alcotest.(check (float 1e-15)) "h2" 2e-5 g.Grid.h2;
  Alcotest.(check (float 1e-20)) "t1 coordinate" 3e-10 (Grid.t1_of g 3);
  Alcotest.(check (float 1e-15)) "t2 coordinate" 4e-5 (Grid.t2_of g 2)

let test_grid_wrapping () =
  let g = Grid.make ~shear:shear_1g ~n1:10 ~n2:5 in
  Alcotest.(check int) "wrap1 negative" 9 (Grid.wrap1 g (-1));
  Alcotest.(check int) "wrap2 over" 0 (Grid.wrap2 g 5);
  Alcotest.(check int) "index" 13 (Grid.point_index g 3 1);
  Alcotest.(check int) "index wrapped" (Grid.point_index g 3 1) (Grid.point_index g 13 6)

let test_grid_validation () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Grid.make: dimensions must be at least 2") (fun () ->
      ignore (Grid.make ~shear:shear_1g ~n1:1 ~n2:5))

(* ---------- Assemble ---------- *)

(* A linear scalar DAE solved on the grid must reproduce the analytic
   quasi-periodic response. Build a one-node RC with two-tone drive. *)
let two_tone_rc ~f1 ~fd =
  let f2 = f1 +. fd in
  Circuits.rc_lowpass ~r:1e3 ~c:(100e-12)
    ~drive:
      (W.sum (W.sine ~amplitude:1.0 ~freq:f1 ()) (W.sine ~amplitude:1.0 ~freq:f2 ()))
    ()

let test_assemble_sources_diagonal_consistency () =
  (* b̂ on the grid must equal the one-time b along the diagonal at grid
     coincidence points: when t1 = t2 = t, both evaluate b(t). *)
  let f1 = 1e6 and fd = 1e3 in
  let { Circuits.mna; _ } = two_tone_rc ~f1 ~fd in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let dae = Circuit.Mna.dae mna in
  List.iter
    (fun t ->
      let b_hat = sys.Mpde.Assemble.source_at ~t1:t ~t2:t in
      let b = dae.Numeric.Dae.source t in
      Alcotest.(check bool)
        (Printf.sprintf "diagonal at t=%g" t)
        true
        (Linalg.Vec.approx_equal ~tol:1e-9 b_hat b))
    [ 0.0; 1.7e-7; 4.2e-6; 9.9e-4 ]

let test_assemble_residual_zero_for_exact_solution () =
  (* For C ẋ + x/R = b with b̂ constant, x̂ = R·b̂ is an exact grid
     solution (all differences vanish). *)
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~r:2e3 ~c:1e-12 ~drive:(W.dc 1.0) ()
  in
  let shear = Shear.make ~fast_freq:1e6 ~slow_freq:1e3 in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let g = Grid.make ~shear ~n1:4 ~n2:4 in
  let dc = Circuit.Dcop.solve_exn mna in
  let n = Circuit.Mna.size mna in
  let big = Array.make (Grid.points g * n) 0.0 in
  for p = 0 to Grid.points g - 1 do
    Array.blit dc 0 big (p * n) n
  done;
  let sources = Mpde.Assemble.sources_on_grid sys g in
  let r = Mpde.Assemble.residual Mpde.Assemble.Backward sys g ~sources big in
  Alcotest.(check bool) "dc solution is exact" true (Linalg.Vec.norm_inf r < 1e-9)

let test_assemble_jacobian_matches_fd () =
  (* Full finite-difference validation of the global MPDE Jacobian on a
     small nonlinear grid problem. *)
  let f1 = 1e6 and fd = 1e4 in
  let { Circuits.mna; _ } =
    Circuits.envelope_detector ~f1 ~f2:(f1 +. fd) ~amplitude:0.5 ()
  in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let g = Grid.make ~shear ~n1:3 ~n2:2 in
  let n = sys.Mpde.Assemble.size in
  let big_n = Grid.points g * n in
  let big = Array.init big_n (fun i -> 0.05 *. sin (float_of_int i)) in
  let sources = Mpde.Assemble.sources_on_grid sys g in
  let jacs = Mpde.Assemble.point_jacobians sys g big in
  let jac = Mpde.Assemble.jacobian_csr Mpde.Assemble.Backward g ~size:n ~jacs in
  let r0 = Mpde.Assemble.residual Mpde.Assemble.Backward sys g ~sources big in
  let h = 1e-7 in
  for j = 0 to big_n - 1 do
    let xj = Array.copy big in
    xj.(j) <- xj.(j) +. h;
    let rj = Mpde.Assemble.residual Mpde.Assemble.Backward sys g ~sources xj in
    for i = 0 to big_n - 1 do
      let numeric = (rj.(i) -. r0.(i)) /. h in
      let stamped = Sparse.Csr.get jac i j in
      let scale = Float.max 1.0 (Float.abs stamped) in
      if Float.abs (numeric -. stamped) > 1e-3 *. scale then
        Alcotest.failf "jacobian mismatch at (%d,%d): fd=%.6g stamped=%.6g" i j numeric
          stamped
    done
  done

(* ---------- Solver ---------- *)

let solve_linear_two_tone ?options () =
  let f1 = 1e6 and fd = 1e3 in
  let { Circuits.mna; _ } = two_tone_rc ~f1 ~fd in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  (Mpde.Solver.solve_mna ?options ~shear ~n1:32 ~n2:16 mna, mna)

let linear_rc_response f t =
  let r = 1e3 and c = 100e-12 in
  let w = 2.0 *. pi *. f in
  let gain = 1.0 /. sqrt (1.0 +. ((w *. r *. c) ** 2.0)) in
  gain *. sin ((w *. t) -. atan (w *. r *. c))

let test_solver_linear_two_tone () =
  let sol, mna = solve_linear_two_tone () in
  Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
  (* linear problem: one Newton step *)
  Alcotest.(check bool) "few newton iterations" true
    (sol.Mpde.Solver.stats.newton_iterations <= 2);
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  let f1 = 1e6 and fd = 1e3 in
  let _, series =
    Mpde.Extract.diagonal sol ~values:vout ~t_start:0.0 ~t_stop:(2.0 /. f1) ~samples:50
  in
  let times = Array.init 50 (fun k -> 2.0 /. f1 *. float_of_int k /. 49.0) in
  let worst = ref 0.0 in
  Array.iteri
    (fun k t ->
      let expected = linear_rc_response f1 t +. linear_rc_response (f1 +. fd) t in
      worst := Float.max !worst (Float.abs (series.(k) -. expected)))
    times;
  (* first-order BE on a 32-point fast grid: ~10% phase error expected *)
  Alcotest.(check bool) "matches superposition" true (!worst < 0.15)

let test_solver_direct_equals_gmres () =
  let opts solver = { Mpde.Solver.default_options with linear_solver = solver } in
  let sol_d, _ = solve_linear_two_tone ~options:(opts Mpde.Solver.Direct) () in
  let sol_g, _ = solve_linear_two_tone ~options:(opts Mpde.Solver.default_gmres) () in
  Alcotest.(check bool) "both converged" true
    (sol_d.Mpde.Solver.stats.converged && sol_g.Mpde.Solver.stats.converged);
  Alcotest.(check bool) "same solution" true
    (Linalg.Vec.dist2 sol_d.Mpde.Solver.big_x sol_g.Mpde.Solver.big_x < 1e-5)

let test_solver_residual_check () =
  let sol, _ = solve_linear_two_tone () in
  Alcotest.(check bool) "stored solution satisfies the equations" true
    (Mpde.Solver.residual_norm_check sol < 1e-7)

let test_solver_ideal_mixer_gain () =
  (* The paper's §2 ideal mixing: product of unit cosines has a
     difference tone of amplitude exactly 1/2. *)
  let f1 = 1e9 and fd = 10e3 in
  let lo = W.cosine ~amplitude:1.0 ~freq:f1 () in
  let rf = W.cosine ~amplitude:1.0 ~freq:(f1 -. fd) () in
  let { Circuits.mna; _ } = Circuits.ideal_mixer ~lo ~rf () in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:24 mna in
  Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  Alcotest.(check (float 2e-3)) "difference tone = 1/2" 0.5
    (Mpde.Extract.t2_harmonic_amplitude ~values:vout ~harmonic:1);
  Alcotest.(check (float 0.05)) "conversion gain −6 dB" (-6.02)
    (Mpde.Extract.conversion_gain_db ~values:vout ~rf_amplitude:1.0 ~harmonic:1)

let test_solver_off_lattice_raises () =
  let nl = Circuit.Netlist.create () in
  (* 1 MHz + 432.1 Hz is off the (1 MHz, 1 kHz) lattice. *)
  Circuit.Netlist.vsource nl "v1" "a" "0" (W.sine ~amplitude:1.0 ~freq:(1e6 +. 432.1) ());
  Circuit.Netlist.resistor nl "r1" "a" "0" 1e3;
  let mna = Circuit.Mna.build nl in
  let shear = Shear.make ~fast_freq:1e6 ~slow_freq:1e3 in
  match Mpde.Solver.solve_mna ~shear ~n1:4 ~n2:4 mna with
  | exception Shear.Off_lattice _ -> ()
  | _ -> Alcotest.fail "expected Off_lattice"

let test_solver_seed_validation () =
  let f1 = 1e6 and fd = 1e3 in
  let { Circuits.mna; _ } = two_tone_rc ~f1 ~fd in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let g = Grid.make ~shear ~n1:4 ~n2:4 in
  Alcotest.check_raises "bad seed" (Invalid_argument "Mpde.Solver.solve: bad seed size")
    (fun () -> ignore (Mpde.Solver.solve ~seed:[| 1.0 |] sys g))

let test_solver_nonlinear_detector () =
  (* Envelope detector: the output's difference-frequency envelope must
     pulse at fd (a strong nonlinear down-conversion). *)
  let f1 = 1e6 and fd = 2e4 in
  let { Circuits.mna; _ } = Circuits.envelope_detector ~f1 ~f2:(f1 +. fd) ~amplitude:1.0 () in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:24 mna in
  Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  let beat = Mpde.Extract.t2_harmonic_amplitude ~values:vout ~harmonic:1 in
  Alcotest.(check bool) "beat envelope present" true (beat > 0.1)

let test_solver_grid_refinement_converges () =
  (* Halving both grid steps should reduce the error vs the analytic
     linear solution (first-order convergence). *)
  let f1 = 1e6 and fd = 1e3 in
  let { Circuits.mna; _ } = two_tone_rc ~f1 ~fd in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let err n1 =
    let sol = Mpde.Solver.solve_mna ~shear ~n1 ~n2:8 mna in
    let vout = Mpde.Extract.surface_of_node sol mna "out" in
    let _, series =
      Mpde.Extract.diagonal sol ~values:vout ~t_start:0.0 ~t_stop:(1.0 /. f1) ~samples:40
    in
    let worst = ref 0.0 in
    Array.iteri
      (fun k s ->
        let t = 1.0 /. f1 *. float_of_int k /. 39.0 in
        let expected = linear_rc_response f1 t +. linear_rc_response (f1 +. fd) t in
        worst := Float.max !worst (Float.abs (s -. expected)))
      series;
    !worst
  in
  let e16 = err 16 and e64 = err 64 in
  Alcotest.(check bool) "refinement helps" true (e64 < e16 /. 2.0)

let test_solver_central_scheme_more_accurate () =
  let f1 = 1e6 and fd = 1e3 in
  let { Circuits.mna; _ } = two_tone_rc ~f1 ~fd in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let err scheme =
    let options =
      { Mpde.Solver.default_options with scheme; linear_solver = Mpde.Solver.Direct }
    in
    let sol = Mpde.Solver.solve_mna ~options ~shear ~n1:24 ~n2:8 mna in
    Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
    let vout = Mpde.Extract.surface_of_node sol mna "out" in
    let _, series =
      Mpde.Extract.diagonal sol ~values:vout ~t_start:0.0 ~t_stop:(1.0 /. f1) ~samples:40
    in
    let worst = ref 0.0 in
    Array.iteri
      (fun k s ->
        let t = 1.0 /. f1 *. float_of_int k /. 39.0 in
        let expected = linear_rc_response f1 t +. linear_rc_response (f1 +. fd) t in
        worst := Float.max !worst (Float.abs (s -. expected)))
      series;
    !worst
  in
  Alcotest.(check bool) "central-in-t1 beats backward" true
    (err Mpde.Assemble.Central_t1 < err Mpde.Assemble.Backward)

(* ---------- Extract ---------- *)

let test_extract_surface_dims () =
  let sol, mna = solve_linear_two_tone () in
  let s = Mpde.Extract.surface_of_node sol mna "out" in
  Alcotest.(check int) "n1 rows" 32 (Array.length s);
  Alcotest.(check int) "n2 cols" 16 (Array.length s.(0))

let test_extract_envelope_modes () =
  let sol, mna = solve_linear_two_tone () in
  let s = Mpde.Extract.surface_of_node sol mna "out" in
  let mean = Mpde.Extract.envelope ~mode:Mpde.Extract.Mean_t1 sol ~values:s in
  let peak = Mpde.Extract.envelope ~mode:Mpde.Extract.Peak_t1 sol ~values:s in
  let fixed = Mpde.Extract.envelope ~mode:(Mpde.Extract.At_t1 0.25) sol ~values:s in
  Alcotest.(check int) "lengths" 16 (Array.length mean);
  Array.iteri
    (fun j p -> Alcotest.(check bool) "peak ≥ mean" true (p >= mean.(j) -. 1e-12))
    peak;
  Alcotest.(check int) "fixed length" 16 (Array.length fixed)

let test_extract_envelope_times () =
  let sol, _ = solve_linear_two_tone () in
  let times = Mpde.Extract.envelope_times sol in
  Alcotest.(check (float 1e-12)) "first" 0.0 times.(0);
  Alcotest.(check bool) "monotone" true (times.(1) > times.(0))

let test_extract_differential_surface () =
  let sol, mna = solve_linear_two_tone () in
  let d = Mpde.Extract.differential_surface sol mna "in" "out" in
  let si = Mpde.Extract.surface_of_node sol mna "in" in
  let so = Mpde.Extract.surface_of_node sol mna "out" in
  Alcotest.(check (float 1e-12)) "difference" (si.(3).(2) -. so.(3).(2)) d.(3).(2)

let test_extract_mixing_spectrum_ideal_mixer () =
  (* Product of two unit cosines through the IF filter: the dominant
     mixing products must be the difference tone at (k1, k2) = (0, 1)
     with amplitude ~1/2 and the (heavily filtered) sum tone at (2, 1). *)
  let f1 = 1e9 and fd = 10e3 in
  let lo = W.cosine ~amplitude:1.0 ~freq:f1 () in
  let rf = W.cosine ~amplitude:1.0 ~freq:(f1 -. fd) () in
  let { Circuits.mna; _ } = Circuits.ideal_mixer ~lo ~rf () in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:24 mna in
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  let products = Mpde.Extract.mixing_spectrum sol ~values:vout () in
  (match products with
  | top :: _ ->
      Alcotest.(check int) "dominant k1" 0 top.Mpde.Extract.k1;
      Alcotest.(check int) "dominant k2" (-1) (-(abs top.Mpde.Extract.k2));
      Alcotest.(check bool) "amplitude 1/2" true
        (Float.abs (top.Mpde.Extract.amplitude -. 0.5) < 5e-3);
      Alcotest.(check bool) "frequency is fd" true
        (Float.abs (Float.abs top.Mpde.Extract.frequency -. fd) < 1.0)
  | [] -> Alcotest.fail "empty spectrum");
  (* The sum tone (2, ±1) exists but is filtered well below the
     difference tone. *)
  let sum_tone =
    List.find_opt (fun p -> p.Mpde.Extract.k1 = 2) products
  in
  (match sum_tone with
  | Some p ->
      Alcotest.(check bool) "sum tone filtered" true (p.Mpde.Extract.amplitude < 0.05)
  | None -> ());
  Alcotest.(check int) "top limit respected" 12 (List.length products)

let test_extract_mixing_spectrum_parseval_ish () =
  (* The sum of squared product amplitudes accounts for (almost) all of
     the surface's AC power. *)
  let sol, mna = solve_linear_two_tone () in
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  let products = Mpde.Extract.mixing_spectrum sol ~values:vout ~top:1000 () in
  let power_spec =
    List.fold_left
      (fun acc p ->
        if p.Mpde.Extract.k1 = 0 && p.Mpde.Extract.k2 = 0 then acc
        else acc +. (0.5 *. p.Mpde.Extract.amplitude *. p.Mpde.Extract.amplitude))
      0.0 products
  in
  let mean = ref 0.0 and count = ref 0 in
  Array.iter (Array.iter (fun v -> mean := !mean +. v; incr count)) vout;
  let mean = !mean /. float_of_int !count in
  let power_grid = ref 0.0 in
  Array.iter
    (Array.iter (fun v -> power_grid := !power_grid +. ((v -. mean) ** 2.0)))
    vout;
  let power_grid = !power_grid /. float_of_int !count in
  Alcotest.(check bool)
    (Printf.sprintf "spectral power ≈ grid power (%.5f vs %.5f)" power_spec power_grid)
    true
    (Float.abs (power_spec -. power_grid) < 0.02 *. power_grid)

let test_extract_thd_pure_tone () =
  (* The ideal mixer's baseband is a pure difference tone → tiny THD. *)
  let f1 = 1e9 and fd = 10e3 in
  let lo = W.cosine ~amplitude:1.0 ~freq:f1 () in
  let rf = W.cosine ~amplitude:1.0 ~freq:(f1 -. fd) () in
  let { Circuits.mna; _ } = Circuits.ideal_mixer ~lo ~rf () in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:24 mna in
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  Alcotest.(check bool) "thd small" true (Mpde.Extract.thd ~values:vout () < 0.02)

(* ---------- Envelope following ---------- *)

let test_envelope_follow_constant_drive () =
  (* With no slow variation the marched columns must stay put. *)
  let f1 = 1e6 in
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~drive:(W.sine ~amplitude:1.0 ~freq:f1 ()) ()
  in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:1e3 in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let result =
    Mpde.Envelope_follow.run ~system:sys ~shear ~n1:16 ~t2_stop:5e-4 ~steps:5 ()
  in
  Alcotest.(check bool) "converged" true result.Mpde.Envelope_follow.converged;
  let c0 = result.Mpde.Envelope_follow.columns.(0) in
  let c5 = result.Mpde.Envelope_follow.columns.(5) in
  let worst = ref 0.0 in
  Array.iteri (fun i x -> worst := Float.max !worst (Linalg.Vec.dist2 x c5.(i))) c0;
  Alcotest.(check bool) "stationary" true (!worst < 1e-6)

let test_envelope_follow_matches_biperiodic () =
  let f1 = 1e6 and fd = 2e4 in
  let { Circuits.mna; _ } = Circuits.envelope_detector ~f1 ~f2:(f1 +. fd) ~amplitude:1.0 () in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let seed = Circuit.Dcop.solve_exn mna in
  let out = Circuit.Mna.node_index mna "out" in
  let t2p = Shear.t2_period shear in
  let steps_per_period = 24 in
  let result =
    Mpde.Envelope_follow.run ~seed ~system:sys ~shear ~n1:32
      ~t2_stop:(3.0 *. t2p)
      ~steps:(3 * steps_per_period) ()
  in
  Alcotest.(check bool) "converged" true result.Mpde.Envelope_follow.converged;
  let env =
    Mpde.Envelope_follow.envelope_of result ~unknown:out ~mode:Mpde.Extract.Mean_t1
  in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:steps_per_period mna in
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  let steady = Mpde.Extract.envelope sol ~values:vout in
  (* Compare the third marched period (transients decayed) pointwise. *)
  let worst = ref 0.0 in
  for j = 0 to steps_per_period - 1 do
    worst :=
      Float.max !worst (Float.abs (env.((2 * steps_per_period) + j) -. steady.(j)))
  done;
  let swing =
    Array.fold_left Float.max neg_infinity steady
    -. Array.fold_left Float.min infinity steady
  in
  Alcotest.(check bool) "matches bi-periodic steady state" true (!worst < 0.15 *. swing)

let test_envelope_follow_validation () =
  let f1 = 1e6 in
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~drive:(W.sine ~amplitude:1.0 ~freq:f1 ()) ()
  in
  let shear = Shear.make ~fast_freq:f1 ~slow_freq:1e3 in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  Alcotest.check_raises "steps" (Invalid_argument "Envelope_follow.run: steps must be positive")
    (fun () ->
      ignore (Mpde.Envelope_follow.run ~system:sys ~shear ~n1:8 ~t2_stop:1e-4 ~steps:0 ()))

(* ---------- workspace refresh / preconditioner lagging ---------- *)

let mixer_fixture () =
  let f_lo = 450e6 and fd = 15e3 in
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:((2.0 *. f_lo) +. fd) () in
  let { Circuits.mna; _ } = Circuits.balanced_mixer ~f_lo ~rf_signal () in
  (mna, Shear.make ~fast_freq:f_lo ~slow_freq:fd)

let float_array_bits_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i v ->
      if Int64.bits_of_float v <> Int64.bits_of_float b.(i) then ok := false)
    a;
  !ok

let test_assemble_ws_bitwise_refresh () =
  (* The symbolic-once / numeric-refresh workspace must reproduce the
     from-scratch assembly bitwise — pattern and values — at every
     iterate of a real Newton descent on the mixer, not just at the
     seed where the workspace froze its patterns. *)
  let mna, shear = mixer_fixture () in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let g = Grid.make ~shear ~n1:10 ~n2:6 in
  let n = sys.Mpde.Assemble.size in
  let np = Grid.points g in
  let sources = Mpde.Assemble.sources_on_grid sys g in
  let ws = Mpde.Assemble.workspace Mpde.Assemble.Backward sys g in
  let x = Array.make (np * n) 0.0 in
  for iter = 1 to 3 do
    ignore (Mpde.Assemble.point_jacobians_ws ws x);
    let j_ws = Mpde.Assemble.jacobian_ws ws in
    let jacs = Mpde.Assemble.point_jacobians sys g x in
    let j_fresh =
      Mpde.Assemble.jacobian_csr Mpde.Assemble.Backward g ~size:n ~jacs
    in
    Alcotest.(check bool)
      (Printf.sprintf "pattern identical (iter %d)" iter)
      true
      (j_ws.Sparse.Csr.row_ptr = j_fresh.Sparse.Csr.row_ptr
      && j_ws.Sparse.Csr.col_idx = j_fresh.Sparse.Csr.col_idx);
    Alcotest.(check bool)
      (Printf.sprintf "values bitwise identical (iter %d)" iter)
      true
      (float_array_bits_equal j_ws.Sparse.Csr.values j_fresh.Sparse.Csr.values);
    (* Advance with a true Newton step (off the from-scratch path) so
       the next refresh sees genuinely moved Jacobian values. *)
    let r = Mpde.Assemble.residual Mpde.Assemble.Backward sys g ~sources x in
    let dx = Sparse.Splu.solve (Sparse.Splu.factor j_fresh) r in
    Array.iteri (fun i d -> x.(i) <- x.(i) -. d) dx
  done

let test_solver_precond_lag_matches_eager () =
  (* Lagged dense sweep factors only steer GMRES; the converged answer
     must satisfy the same equations to the same residual as the
     eagerly refactored preconditioner. *)
  let mna, shear = mixer_fixture () in
  let solve lag =
    Mpde.Solver.solve_mna
      ~options:{ Mpde.Solver.default_options with precond_lag = lag }
      ~shear ~n1:16 ~n2:10 mna
  in
  let eager = solve false and lagged = solve true in
  Alcotest.(check bool) "both converged" true
    (eager.Mpde.Solver.stats.converged && lagged.Mpde.Solver.stats.converged);
  Alcotest.(check bool) "same residual norm" true
    (Mpde.Solver.residual_norm_check lagged < 1e-7
    && Mpde.Solver.residual_norm_check eager < 1e-7);
  Alcotest.(check bool) "same solution" true
    (Linalg.Vec.dist2 eager.Mpde.Solver.big_x lagged.Mpde.Solver.big_x < 1e-5)

let test_solver_krylov_recycle_matches_cold () =
  (* Krylov recycling and factor clustering only steer the linear
     iterations across the mixer's Newton sequence; the converged
     surface must satisfy the same equations to the same residual as
     the cold-start, unclustered configuration. *)
  let mna, shear = mixer_fixture () in
  let solve recycle =
    Mpde.Solver.solve_mna
      ~options:
        {
          Mpde.Solver.default_options with
          krylov_recycle = recycle;
          precond_cluster = recycle;
        }
      ~shear ~n1:16 ~n2:10 mna
  in
  let recycled = solve true and cold = solve false in
  Alcotest.(check bool) "both converged" true
    (recycled.Mpde.Solver.stats.converged && cold.Mpde.Solver.stats.converged);
  Alcotest.(check bool) "same residual tolerance" true
    (Mpde.Solver.residual_norm_check recycled < 1e-7
    && Mpde.Solver.residual_norm_check cold < 1e-7);
  Alcotest.(check bool) "same solution" true
    (Linalg.Vec.dist2 recycled.Mpde.Solver.big_x cold.Mpde.Solver.big_x < 1e-5)

let test_solver_workspace_slot_reuse () =
  (* A retained workspace slot (the per-domain sweep cache) must be
     invisible in the results: the second solve through the slot rebinds
     the retained buffers and must reproduce the fresh-workspace
     surface bitwise. *)
  let mna, shear = mixer_fixture () in
  let solve ?workspace_slot () =
    Mpde.Solver.solve_mna ?workspace_slot ~shear ~n1:16 ~n2:10 mna
  in
  let slot = ref None in
  let first = solve ~workspace_slot:slot () in
  Alcotest.(check bool) "slot populated" true (Option.is_some !slot);
  let second = solve ~workspace_slot:slot () in
  let fresh = solve () in
  Alcotest.(check bool) "all converged" true
    (first.Mpde.Solver.stats.converged && second.Mpde.Solver.stats.converged
   && fresh.Mpde.Solver.stats.converged);
  Alcotest.(check bool) "reused slot bitwise matches fresh" true
    (float_array_bits_equal second.Mpde.Solver.big_x fresh.Mpde.Solver.big_x)

(* ---------- properties ---------- *)

let prop_shear_diagonal =
  QCheck.Test.make ~count:200 ~name:"shear: phase(t,t) = f·t on the lattice"
    QCheck.(
      make
        Gen.(
          triple (int_range (-3) 3) (int_range (-20) 20) (float_range 0.0 1e-4)))
    (fun (m, k, t) ->
      let f = (float_of_int m *. 1e9) +. (float_of_int k *. 10e3) in
      if f <= 0.0 then true
      else begin
        let p = Shear.phase shear_1g ~t1:t ~t2:t f in
        Float.abs (p -. (f *. t)) <= 1e-5 *. Float.max 1.0 (Float.abs (f *. t))
      end)

let prop_shear_lattice_roundtrip =
  QCheck.Test.make ~count:200 ~name:"shear: lattice(m·f1 + k·fd) = (m, k)"
    QCheck.(make Gen.(pair (int_range 0 4) (int_range (-40) 40)))
    (fun (m, k) ->
      let f = (float_of_int m *. 1e9) +. (float_of_int k *. 10e3) in
      f <= 0.0 || Shear.lattice shear_1g f = (m, k))

let prop_grid_index_bijective =
  QCheck.Test.make ~count:200 ~name:"grid: point_index is a bijection on [0,n1)x[0,n2)"
    QCheck.(make Gen.(pair (int_range 0 9) (int_range 0 4)))
    (fun (i, j) ->
      let g = Grid.make ~shear:shear_1g ~n1:10 ~n2:5 in
      let p = Grid.point_index g i j in
      p = (j * 10) + i)

let prop_waveform_mt_diagonal =
  (* For any waveform with lattice frequencies, the sheared multi-time
     evaluation along the diagonal equals the one-time evaluation —
     the essence of paper eq. (2)/(11). *)
  QCheck.Test.make ~count:100 ~name:"assemble: b̂(t,t) = b(t) for random lattice tones"
    QCheck.(
      make
        Gen.(
          triple (int_range 1 3) (int_range (-10) 10) (float_range 0.0 1e-4)))
    (fun (m, k, t) ->
      let f = (float_of_int m *. 1e9) +. (float_of_int k *. 10e3) in
      let w = W.sine ~amplitude:1.0 ~freq:f () in
      let one_time = W.eval w t in
      let multi_time = W.eval_with ~phase_of:(Shear.phase shear_1g ~t1:t ~t2:t) w in
      Float.abs (one_time -. multi_time) < 1e-3)

let () =
  Alcotest.run "mpde"
    [
      ( "shear",
        [
          Alcotest.test_case "accessors" `Quick test_shear_accessors;
          Alcotest.test_case "validation" `Quick test_shear_make_validation;
          Alcotest.test_case "lattice decomposition" `Quick test_shear_lattice_basic;
          Alcotest.test_case "off-lattice detection" `Quick test_shear_off_lattice;
          Alcotest.test_case "diagonal identity" `Quick test_shear_phase_diagonal_identity;
          Alcotest.test_case "bi-periodicity" `Quick test_shear_phase_periodicity;
          Alcotest.test_case "unsheared assignment" `Quick test_shear_unsheared_assignment;
          Alcotest.test_case "source validation" `Quick test_shear_validate_sources;
        ] );
      ( "grid",
        [
          Alcotest.test_case "geometry" `Quick test_grid_geometry;
          Alcotest.test_case "wrapping" `Quick test_grid_wrapping;
          Alcotest.test_case "validation" `Quick test_grid_validation;
        ] );
      ( "assemble",
        [
          Alcotest.test_case "source diagonal consistency" `Quick
            test_assemble_sources_diagonal_consistency;
          Alcotest.test_case "exact solution residual" `Quick
            test_assemble_residual_zero_for_exact_solution;
          Alcotest.test_case "jacobian matches finite differences" `Slow
            test_assemble_jacobian_matches_fd;
          Alcotest.test_case "workspace refresh bitwise" `Quick
            test_assemble_ws_bitwise_refresh;
        ] );
      ( "solver",
        [
          Alcotest.test_case "linear two-tone vs analytic" `Quick test_solver_linear_two_tone;
          Alcotest.test_case "direct = gmres-sweep" `Quick test_solver_direct_equals_gmres;
          Alcotest.test_case "residual check" `Quick test_solver_residual_check;
          Alcotest.test_case "ideal mixer -6dB" `Quick test_solver_ideal_mixer_gain;
          Alcotest.test_case "off-lattice raises" `Quick test_solver_off_lattice_raises;
          Alcotest.test_case "seed validation" `Quick test_solver_seed_validation;
          Alcotest.test_case "nonlinear detector" `Quick test_solver_nonlinear_detector;
          Alcotest.test_case "lagged preconditioner = eager" `Quick
            test_solver_precond_lag_matches_eager;
          Alcotest.test_case "krylov recycle matches cold" `Quick
            test_solver_krylov_recycle_matches_cold;
          Alcotest.test_case "workspace slot reuse" `Quick
            test_solver_workspace_slot_reuse;
          Alcotest.test_case "grid refinement" `Slow test_solver_grid_refinement_converges;
          Alcotest.test_case "central-t1 accuracy" `Slow test_solver_central_scheme_more_accurate;
        ] );
      ( "extract",
        [
          Alcotest.test_case "surface dims" `Quick test_extract_surface_dims;
          Alcotest.test_case "envelope modes" `Quick test_extract_envelope_modes;
          Alcotest.test_case "envelope times" `Quick test_extract_envelope_times;
          Alcotest.test_case "differential surface" `Quick test_extract_differential_surface;
          Alcotest.test_case "mixing spectrum" `Quick test_extract_mixing_spectrum_ideal_mixer;
          Alcotest.test_case "mixing spectrum power" `Quick test_extract_mixing_spectrum_parseval_ish;
          Alcotest.test_case "thd pure tone" `Quick test_extract_thd_pure_tone;
        ] );
      ( "envelope_follow",
        [
          Alcotest.test_case "stationary drive" `Quick test_envelope_follow_constant_drive;
          Alcotest.test_case "matches bi-periodic" `Slow test_envelope_follow_matches_biperiodic;
          Alcotest.test_case "validation" `Quick test_envelope_follow_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_shear_diagonal;
            prop_shear_lattice_roundtrip;
            prop_grid_index_bijective;
            prop_waveform_mt_diagonal;
          ] );
    ]
