(* Unit and property tests for the sparse-matrix substrate. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Coo = Sparse.Coo
module Csr = Sparse.Csr

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Coo ---------- *)

let test_coo_basic () =
  let m = Coo.create 3 3 in
  Coo.add m 0 0 1.0;
  Coo.add m 2 1 4.0;
  Coo.add m 0 0 2.0;
  Alcotest.(check int) "nnz triplets" 3 (Coo.nnz m);
  Coo.add m 1 1 0.0;
  Alcotest.(check int) "zeros skipped" 3 (Coo.nnz m)

let test_coo_bounds () =
  let m = Coo.create 2 2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Coo.add: index out of range")
    (fun () -> Coo.add m 2 0 1.0)

let test_coo_clear () =
  let m = Coo.of_triplets 2 2 [ (0, 0, 1.0); (1, 1, 2.0) ] in
  Coo.clear m;
  Alcotest.(check int) "cleared" 0 (Coo.nnz m)

let test_coo_grows () =
  let m = Coo.create ~capacity:2 4 4 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      Coo.add m i j (float_of_int ((i * 4) + j + 1))
    done
  done;
  Alcotest.(check int) "grown" 16 (Coo.nnz m)

(* ---------- Csr ---------- *)

let test_csr_of_coo_sums_duplicates () =
  let m = Coo.of_triplets 2 2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 0, 5.0) ] in
  let c = Csr.of_coo m in
  check_float "summed" 3.0 (Csr.get c 0 0);
  check_float "single" 5.0 (Csr.get c 1 0);
  check_float "absent" 0.0 (Csr.get c 0 1);
  Alcotest.(check int) "nnz merged" 2 (Csr.nnz c)

let test_csr_sorted_columns () =
  let m = Coo.of_triplets 1 5 [ (0, 4, 4.0); (0, 1, 1.0); (0, 3, 3.0) ] in
  let c = Csr.of_coo m in
  Alcotest.(check (array int)) "sorted" [| 1; 3; 4 |] c.Csr.col_idx

let test_csr_mul_vec () =
  let c = Csr.of_coo (Coo.of_triplets 2 3 [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0) ]) in
  let y = Csr.mul_vec c (Vec.of_list [ 1.0; 2.0; 3.0 ]) in
  check_float "y0" 7.0 y.(0);
  check_float "y1" 6.0 y.(1)

let test_csr_tmul_vec () =
  let c = Csr.of_coo (Coo.of_triplets 2 2 [ (0, 1, 2.0); (1, 0, 3.0) ]) in
  let y = Csr.tmul_vec c (Vec.of_list [ 1.0; 1.0 ]) in
  check_float "y0" 3.0 y.(0);
  check_float "y1" 2.0 y.(1)

let test_csr_transpose_dense_roundtrip () =
  let d = Mat.of_arrays [| [| 1.0; 0.0; 2.0 |]; [| 0.0; 3.0; 0.0 |] |] in
  let c = Csr.of_dense d in
  Alcotest.(check bool) "roundtrip" true (Mat.approx_equal d (Csr.to_dense c));
  let t = Csr.transpose c in
  Alcotest.(check bool) "transpose" true
    (Mat.approx_equal (Mat.transpose d) (Csr.to_dense t))

let test_csr_diag_identity () =
  let i5 = Csr.identity 5 in
  Alcotest.(check int) "nnz" 5 (Csr.nnz i5);
  check_float "diag" 1.0 (Csr.diag i5).(3)

let test_csr_add_scale () =
  let a = Csr.of_coo (Coo.of_triplets 2 2 [ (0, 0, 1.0) ]) in
  let b = Csr.of_coo (Coo.of_triplets 2 2 [ (0, 0, 2.0); (1, 1, 4.0) ]) in
  let s = Csr.add a (Csr.scale 0.5 b) in
  check_float "sum" 2.0 (Csr.get s 0 0);
  check_float "other" 2.0 (Csr.get s 1 1)

let test_csr_empty_rows () =
  let c = Csr.of_coo (Coo.of_triplets 4 4 [ (3, 3, 1.0) ]) in
  let y = Csr.mul_vec c (Vec.of_list [ 1.0; 1.0; 1.0; 1.0 ]) in
  check_float "empty row" 0.0 y.(1);
  check_float "last" 1.0 y.(3)

(* ---------- Splu ---------- *)

let laplacian_1d n =
  let coo = Coo.create n n in
  for i = 0 to n - 1 do
    Coo.add coo i i 2.0;
    if i > 0 then Coo.add coo i (i - 1) (-1.0);
    if i < n - 1 then Coo.add coo i (i + 1) (-1.0)
  done;
  Csr.of_coo coo

let test_splu_tridiagonal () =
  let a = laplacian_1d 10 in
  let b = Array.make 10 1.0 in
  let x = Sparse.Splu.solve (Sparse.Splu.factor a) b in
  check_float "residual" 0.0 (Csr.residual_norm a x b)

let test_splu_vs_dense () =
  let coo = Coo.create 6 6 in
  let entries =
    [ (0,0,4.);(0,2,1.);(1,1,5.);(1,3,-2.);(2,0,1.);(2,2,6.);(3,1,-2.);(3,3,7.);
      (4,4,3.);(4,5,1.);(5,4,1.);(5,5,2.);(0,5,0.5);(5,0,0.5) ]
  in
  List.iter (fun (i, j, v) -> Coo.add coo i j v) entries;
  let a = Csr.of_coo coo in
  let b = Vec.init 6 (fun i -> float_of_int (i + 1)) in
  let x_sparse = Sparse.Splu.solve (Sparse.Splu.factor a) b in
  let x_dense = Linalg.Lu.solve_dense (Csr.to_dense a) b in
  Alcotest.(check bool) "agree" true (Vec.approx_equal ~tol:1e-10 x_sparse x_dense)

let test_splu_permutation_needed () =
  (* Structurally requires row exchanges: zero diagonal. *)
  let a = Csr.of_coo (Coo.of_triplets 3 3
    [ (0, 1, 1.0); (1, 2, 2.0); (2, 0, 3.0) ]) in
  let b = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  let x = Sparse.Splu.solve (Sparse.Splu.factor a) b in
  check_float "residual" 0.0 (Csr.residual_norm a x b)

let test_splu_singular () =
  let a = Csr.of_coo (Coo.of_triplets 2 2 [ (0, 0, 1.0); (1, 0, 1.0) ]) in
  match Sparse.Splu.factor a with
  | exception Sparse.Splu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_splu_pivot_threshold () =
  (* A small diagonal with threshold 1.0 must be abandoned for the
     larger off-diagonal candidate; the solve must stay accurate. *)
  let a = Csr.of_coo (Coo.of_triplets 2 2
    [ (0, 0, 1e-14); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 1.0) ]) in
  let b = Vec.of_list [ 1.0; 2.0 ] in
  let x = Sparse.Splu.solve (Sparse.Splu.factor ~pivot_threshold:1.0 a) b in
  Alcotest.(check bool) "accurate" true (Csr.residual_norm a x b < 1e-9)

let test_splu_nnz_reported () =
  let f = Sparse.Splu.factor (laplacian_1d 8) in
  let lnz, unz = Sparse.Splu.lu_nnz f in
  Alcotest.(check bool) "L fill" true (lnz >= 8);
  Alcotest.(check bool) "U fill" true (unz >= 8);
  Alcotest.(check int) "size" 8 (Sparse.Splu.size f)

(* ---------- Ilu0 ---------- *)

let test_ilu0_exact_on_tridiagonal () =
  (* ILU(0) is exact when no fill occurs (tridiagonal without pivoting). *)
  let a = laplacian_1d 12 in
  let p = Sparse.Ilu0.factor a in
  let b = Vec.init 12 (fun i -> sin (float_of_int i)) in
  let x = Sparse.Ilu0.apply p b in
  Alcotest.(check bool) "exact" true (Csr.residual_norm a x b < 1e-10)

let test_ilu0_missing_diag () =
  let a = Csr.of_coo (Coo.of_triplets 2 2 [ (0, 1, 1.0); (1, 0, 1.0) ]) in
  match Sparse.Ilu0.factor a with
  | exception Sparse.Ilu0.Zero_pivot _ -> ()
  | _ -> Alcotest.fail "expected Zero_pivot"

(* ---------- Krylov ---------- *)

let test_gmres_identity () =
  let b = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  let r = Sparse.Krylov.gmres (fun v -> Array.copy v) b in
  Alcotest.(check bool) "converged" true r.Sparse.Krylov.converged;
  Alcotest.(check bool) "exact" true (Vec.approx_equal ~tol:1e-8 b r.Sparse.Krylov.x)

let test_gmres_spd () =
  let a = laplacian_1d 30 in
  let b = Vec.init 30 (fun i -> cos (float_of_int i)) in
  let r = Sparse.Krylov.gmres ~tol:1e-12 (Sparse.Krylov.csr_operator a) b in
  Alcotest.(check bool) "converged" true r.Sparse.Krylov.converged;
  Alcotest.(check bool) "residual" true (Csr.residual_norm a r.Sparse.Krylov.x b < 1e-8)

let test_gmres_with_ilu0 () =
  let a = laplacian_1d 50 in
  let b = Array.make 50 1.0 in
  let plain = Sparse.Krylov.gmres ~tol:1e-10 (Sparse.Krylov.csr_operator a) b in
  let pre =
    Sparse.Krylov.gmres ~tol:1e-10
      ~precond:(Sparse.Ilu0.apply (Sparse.Ilu0.factor a))
      (Sparse.Krylov.csr_operator a) b
  in
  Alcotest.(check bool) "both converge" true
    (plain.Sparse.Krylov.converged && pre.Sparse.Krylov.converged);
  Alcotest.(check bool) "ilu0 accelerates" true
    (pre.Sparse.Krylov.iterations <= plain.Sparse.Krylov.iterations)

let test_gmres_restart_path () =
  let a = laplacian_1d 40 in
  let b = Array.make 40 1.0 in
  (* Force multiple restarts with a tiny Krylov space. *)
  let r = Sparse.Krylov.gmres ~restart:5 ~max_iter:2000 ~tol:1e-10
      (Sparse.Krylov.csr_operator a) b in
  Alcotest.(check bool) "converged across restarts" true r.Sparse.Krylov.converged;
  Alcotest.(check bool) "residual small" true (Csr.residual_norm a r.Sparse.Krylov.x b < 1e-6)

let test_gmres_x0 () =
  let a = laplacian_1d 10 in
  let b = Array.make 10 1.0 in
  let exact = Sparse.Splu.solve (Sparse.Splu.factor a) b in
  let r = Sparse.Krylov.gmres ~x0:exact (Sparse.Krylov.csr_operator a) b in
  Alcotest.(check bool) "starts converged" true
    (r.Sparse.Krylov.converged && r.Sparse.Krylov.iterations = 0)

let test_gmres_zero_rhs () =
  let a = laplacian_1d 5 in
  let r = Sparse.Krylov.gmres (Sparse.Krylov.csr_operator a) (Array.make 5 0.0) in
  Alcotest.(check bool) "zero solution" true (Vec.norm2 r.Sparse.Krylov.x < 1e-12)

(* ---------- Bigarray spmv + GMRES core ---------- *)

module Kernel = Linalg.Kernel

let float_array_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let test_csr_mul_vec_ba_bitwise () =
  (* The Bigarray spmv kernel promises the same per-row accumulation
     order as [mul_vec], so results match bitwise. *)
  let a = laplacian_1d 25 in
  let xa = Vec.init 25 (fun i -> sin (float_of_int (i * i))) in
  let x = Kernel.of_array xa and y = Kernel.create 25 in
  Csr.mul_vec_ba_into a x y;
  Alcotest.(check bool) "bitwise" true
    (float_array_bits_equal (Csr.mul_vec a xa) (Kernel.to_array y))

let test_csr_mul_vec_ba_validates () =
  let a = laplacian_1d 4 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Csr.mul_vec_ba_into: dimension mismatch") (fun () ->
      Csr.mul_vec_ba_into a (Kernel.create 5) (Kernel.create 4))

let ba_csr_operator a =
  let y = Kernel.create a.Csr.rows in
  fun x ->
    Csr.mul_vec_ba_into a x y;
    y

let test_gmres_ba_matches_gmres () =
  (* The array-facing [gmres] stages through the Bigarray core, so
     driving the core directly with a Kernel operator must give the
     same iterate bitwise. *)
  let a = laplacian_1d 30 in
  let b = Vec.init 30 (fun i -> cos (float_of_int i)) in
  let via_arrays =
    Sparse.Krylov.gmres ~tol:1e-12 (Sparse.Krylov.csr_operator a) b
  in
  let via_ba = Sparse.Krylov.gmres_ba ~tol:1e-12 (ba_csr_operator a) b in
  Alcotest.(check bool) "both converged" true
    (via_arrays.Sparse.Krylov.converged && via_ba.Sparse.Krylov.converged);
  Alcotest.(check int) "same iterations" via_arrays.Sparse.Krylov.iterations
    via_ba.Sparse.Krylov.iterations;
  Alcotest.(check bool) "bitwise identical x" true
    (float_array_bits_equal via_arrays.Sparse.Krylov.x via_ba.Sparse.Krylov.x)

let test_gmres_recycle_repeat_solve () =
  (* Re-solving the same system through a retained workspace with
     [recycle] on: the projection seed reproduces the previous converged
     iterate, so the second solve should start essentially converged. *)
  let n = 40 in
  let a = laplacian_1d n in
  let b = Vec.init n (fun i -> sin (float_of_int i)) in
  let ws = Sparse.Krylov.workspace ~restart:50 ~n in
  let op = ba_csr_operator a in
  let first = Sparse.Krylov.gmres_ba ~tol:1e-10 ~workspace:ws ~recycle:true op b in
  let second = Sparse.Krylov.gmres_ba ~tol:1e-10 ~workspace:ws ~recycle:true op b in
  Alcotest.(check bool) "both converged" true
    (first.Sparse.Krylov.converged && second.Sparse.Krylov.converged);
  Alcotest.(check bool) "seed short-circuits the repeat" true
    (second.Sparse.Krylov.iterations < first.Sparse.Krylov.iterations);
  Alcotest.(check bool) "residual still honoured" true
    (Csr.residual_norm a second.Sparse.Krylov.x b
    <= 1e-8 *. Float.max 1.0 (Vec.norm2 b))

let test_gmres_recycle_drifting_operators () =
  (* A sequence of slowly drifting operators (the Newton lagged-Jacobian
     shape): every recycled solve must still meet the cold-start
     residual contract. *)
  let n = 30 in
  let ws = Sparse.Krylov.workspace ~restart:50 ~n in
  let b = Vec.init n (fun i -> cos (float_of_int (i + 1)) *. 2.0) in
  for step = 0 to 4 do
    let shift = 0.05 *. float_of_int step in
    let coo = Coo.create n n in
    for i = 0 to n - 1 do
      Coo.add coo i i (4.0 +. shift);
      if i > 0 then Coo.add coo i (i - 1) (-1.0);
      if i < n - 1 then Coo.add coo i (i + 1) (-1.0 -. (0.01 *. shift))
    done;
    let a = Csr.of_coo coo in
    let r =
      Sparse.Krylov.gmres_ba ~tol:1e-10 ~workspace:ws ~recycle:true
        (ba_csr_operator a) b
    in
    Alcotest.(check bool)
      (Printf.sprintf "converged (step %d)" step)
      true r.Sparse.Krylov.converged;
    Alcotest.(check bool)
      (Printf.sprintf "residual (step %d)" step)
      true
      (Csr.residual_norm a r.Sparse.Krylov.x b
      <= 1e-8 *. Float.max 1.0 (Vec.norm2 b))
  done

let test_gmres_recycle_cold_fallback () =
  (* When the operator changes wholesale the projection seed fails its
     residual validation and the solve restarts cold — the iterate must
     be bitwise what a fresh workspace produces. *)
  let n = 25 in
  let a = laplacian_1d n in
  let b = Vec.init n (fun i -> float_of_int ((i mod 5) - 2)) in
  let ws = Sparse.Krylov.workspace ~restart:50 ~n in
  ignore (Sparse.Krylov.gmres_ba ~tol:1e-10 ~workspace:ws ~recycle:true
      (ba_csr_operator a) b);
  (* Wildly different operator: -3·A plus a strong diagonal ramp. *)
  let coo = Coo.create n n in
  for i = 0 to n - 1 do
    Coo.add coo i i (20.0 +. (3.0 *. float_of_int i));
    if i > 0 then Coo.add coo i (i - 1) 2.5;
    if i < n - 1 then Coo.add coo i (i + 1) (-2.5)
  done;
  let a2 = Csr.of_coo coo in
  let recycled =
    Sparse.Krylov.gmres_ba ~tol:1e-10 ~workspace:ws ~recycle:true
      (ba_csr_operator a2) b
  in
  let cold = Sparse.Krylov.gmres_ba ~tol:1e-10 (ba_csr_operator a2) b in
  Alcotest.(check bool) "both converged" true
    (recycled.Sparse.Krylov.converged && cold.Sparse.Krylov.converged);
  Alcotest.(check bool) "fallback bitwise matches cold" true
    (float_array_bits_equal recycled.Sparse.Krylov.x cold.Sparse.Krylov.x)

let test_gmres_recycle_off_bitwise () =
  (* recycle = false through a dirty workspace must be bitwise the
     fresh-workspace iteration. *)
  let n = 20 in
  let a = laplacian_1d n in
  let b = Vec.init n (fun i -> sin (0.7 *. float_of_int i)) in
  let ws = Sparse.Krylov.workspace ~restart:50 ~n in
  ignore (Sparse.Krylov.gmres_ba ~tol:1e-10 ~workspace:ws ~recycle:true
      (ba_csr_operator a) b);
  let reused =
    Sparse.Krylov.gmres_ba ~tol:1e-10 ~workspace:ws ~recycle:false
      (ba_csr_operator a) b
  in
  let fresh = Sparse.Krylov.gmres_ba ~tol:1e-10 (ba_csr_operator a) b in
  Alcotest.(check bool) "bitwise identical" true
    (float_array_bits_equal reused.Sparse.Krylov.x fresh.Sparse.Krylov.x);
  Alcotest.(check int) "same iterations" fresh.Sparse.Krylov.iterations
    reused.Sparse.Krylov.iterations

let test_bicgstab_spd () =
  let a = laplacian_1d 30 in
  let b = Vec.init 30 (fun i -> float_of_int (i mod 3)) in
  let r = Sparse.Krylov.bicgstab ~tol:1e-12 ~max_iter:200 (Sparse.Krylov.csr_operator a) b in
  Alcotest.(check bool) "converged" true r.Sparse.Krylov.converged;
  Alcotest.(check bool) "residual" true (Csr.residual_norm a r.Sparse.Krylov.x b < 1e-7)

let test_bicgstab_with_precond () =
  let a = laplacian_1d 40 in
  let b = Array.make 40 1.0 in
  let r =
    Sparse.Krylov.bicgstab ~tol:1e-10
      ~precond:(Sparse.Ilu0.apply (Sparse.Ilu0.factor a))
      (Sparse.Krylov.csr_operator a) b
  in
  Alcotest.(check bool) "converged fast" true
    (r.Sparse.Krylov.converged && r.Sparse.Krylov.iterations <= 3)

(* ---------- properties ---------- *)

let sparse_system_gen =
  QCheck.Gen.(
    let n = 12 in
    let triplet = triple (int_bound (n - 1)) (int_bound (n - 1)) (float_range (-2.0) 2.0) in
    pair (list_size (return 30) triplet) (array_size (return n) (float_range (-3.0) 3.0))
    |> map (fun (triplets, b) ->
           let coo = Coo.create n n in
           for i = 0 to n - 1 do
             Coo.add coo i i (8.0 +. float_of_int i)
           done;
           List.iter (fun (i, j, v) -> Coo.add coo i j v) triplets;
           (Csr.of_coo coo, b)))

let prop_splu_matches_dense =
  QCheck.Test.make ~count:80 ~name:"splu: matches dense LU" (QCheck.make sparse_system_gen)
    (fun (a, b) ->
      let xs = Sparse.Splu.solve (Sparse.Splu.factor a) b in
      let xd = Linalg.Lu.solve_dense (Csr.to_dense a) b in
      Vec.dist2 xs xd < 1e-8)

let prop_csr_spmv_matches_dense =
  QCheck.Test.make ~count:80 ~name:"csr: spmv matches dense" (QCheck.make sparse_system_gen)
    (fun (a, x) ->
      let sparse = Csr.mul_vec a x in
      let dense = Mat.mul_vec (Csr.to_dense a) x in
      Vec.dist2 sparse dense < 1e-9)

let prop_csr_transpose_involution =
  QCheck.Test.make ~count:60 ~name:"csr: transpose is an involution"
    (QCheck.make sparse_system_gen)
    (fun (a, _) ->
      Mat.approx_equal (Csr.to_dense a) (Csr.to_dense (Csr.transpose (Csr.transpose a))))

let prop_ilu0_exact_tridiagonal =
  QCheck.Test.make ~count:60 ~name:"ilu0: exact when no fill occurs (tridiagonal)"
    QCheck.(
      make
        Gen.(
          pair
            (array_size (return 10) (float_range 4.0 9.0))
            (array_size (return 9) (float_range (-1.5) 1.5))))
    (fun (diag, off) ->
      let coo = Coo.create 10 10 in
      Array.iteri (fun i v -> Coo.add coo i i v) diag;
      Array.iteri
        (fun i v ->
          Coo.add coo i (i + 1) v;
          Coo.add coo (i + 1) i v)
        off;
      let a = Csr.of_coo coo in
      let b = Array.init 10 (fun i -> cos (float_of_int i)) in
      let x = Sparse.Ilu0.apply (Sparse.Ilu0.factor a) b in
      Csr.residual_norm a x b < 1e-8)

let prop_rcm_permutation_valid =
  QCheck.Test.make ~count:60 ~name:"rcm: always a valid permutation"
    (QCheck.make sparse_system_gen)
    (fun (a, _) ->
      let perm = Sparse.Rcm.ordering a in
      let sorted = Array.copy perm in
      Array.sort compare sorted;
      sorted = Array.init (Array.length perm) (fun i -> i))

let prop_gmres_solves =
  QCheck.Test.make ~count:40 ~name:"gmres: residual contract honoured"
    (QCheck.make sparse_system_gen)
    (fun (a, b) ->
      let r = Sparse.Krylov.gmres ~tol:1e-10 (Sparse.Krylov.csr_operator a) b in
      (not r.Sparse.Krylov.converged)
      || Csr.residual_norm a r.Sparse.Krylov.x b <= 1e-8 *. Float.max 1.0 (Vec.norm2 b))

let () =
  Alcotest.run "sparse"
    [
      ( "coo",
        [
          Alcotest.test_case "add/count" `Quick test_coo_basic;
          Alcotest.test_case "bounds" `Quick test_coo_bounds;
          Alcotest.test_case "clear" `Quick test_coo_clear;
          Alcotest.test_case "growth" `Quick test_coo_grows;
        ] );
      ( "csr",
        [
          Alcotest.test_case "duplicate summing" `Quick test_csr_of_coo_sums_duplicates;
          Alcotest.test_case "sorted columns" `Quick test_csr_sorted_columns;
          Alcotest.test_case "mul_vec" `Quick test_csr_mul_vec;
          Alcotest.test_case "tmul_vec" `Quick test_csr_tmul_vec;
          Alcotest.test_case "transpose/dense roundtrip" `Quick test_csr_transpose_dense_roundtrip;
          Alcotest.test_case "diag/identity" `Quick test_csr_diag_identity;
          Alcotest.test_case "add/scale" `Quick test_csr_add_scale;
          Alcotest.test_case "empty rows" `Quick test_csr_empty_rows;
        ] );
      ( "splu",
        [
          Alcotest.test_case "tridiagonal" `Quick test_splu_tridiagonal;
          Alcotest.test_case "vs dense" `Quick test_splu_vs_dense;
          Alcotest.test_case "needs permutation" `Quick test_splu_permutation_needed;
          Alcotest.test_case "singular detection" `Quick test_splu_singular;
          Alcotest.test_case "pivot threshold" `Quick test_splu_pivot_threshold;
          Alcotest.test_case "fill reporting" `Quick test_splu_nnz_reported;
        ] );
      ( "ilu0",
        [
          Alcotest.test_case "exact on tridiagonal" `Quick test_ilu0_exact_on_tridiagonal;
          Alcotest.test_case "missing diagonal" `Quick test_ilu0_missing_diag;
        ] );
      ( "krylov",
        [
          Alcotest.test_case "gmres identity" `Quick test_gmres_identity;
          Alcotest.test_case "gmres spd" `Quick test_gmres_spd;
          Alcotest.test_case "gmres + ilu0" `Quick test_gmres_with_ilu0;
          Alcotest.test_case "gmres restarts" `Quick test_gmres_restart_path;
          Alcotest.test_case "gmres warm start" `Quick test_gmres_x0;
          Alcotest.test_case "gmres zero rhs" `Quick test_gmres_zero_rhs;
          Alcotest.test_case "csr ba spmv bitwise" `Quick
            test_csr_mul_vec_ba_bitwise;
          Alcotest.test_case "csr ba spmv validates" `Quick
            test_csr_mul_vec_ba_validates;
          Alcotest.test_case "gmres_ba ≡ gmres" `Quick
            test_gmres_ba_matches_gmres;
          Alcotest.test_case "recycle: repeat solve" `Quick
            test_gmres_recycle_repeat_solve;
          Alcotest.test_case "recycle: drifting operators" `Quick
            test_gmres_recycle_drifting_operators;
          Alcotest.test_case "recycle: cold fallback" `Quick
            test_gmres_recycle_cold_fallback;
          Alcotest.test_case "recycle off bitwise" `Quick
            test_gmres_recycle_off_bitwise;
          Alcotest.test_case "bicgstab spd" `Quick test_bicgstab_spd;
          Alcotest.test_case "bicgstab + ilu0" `Quick test_bicgstab_with_precond;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_splu_matches_dense;
            prop_csr_spmv_matches_dense;
            prop_csr_transpose_involution;
            prop_ilu0_exact_tridiagonal;
            prop_rcm_permutation_valid;
            prop_gmres_solves;
          ] );
    ]
