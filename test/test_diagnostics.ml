(* Tests for the diagnostics subsystem: the bounded residual ring, the
   convergence classifier on synthetic trajectories, condition estimates
   against matrices with known κ, the metric registry's Prometheus/CSV
   round-trips, the minimal JSON parser, the perf-regression gate, and
   the end-to-end pieces — Newton residual histories on a real solve and
   the diagonal-consistency residual on the quickstart circuit. *)

module W = Circuit.Waveform
module D = Diagnostics

(* ---------- Ring ---------- *)

let test_ring_basic () =
  let r = D.Ring.create 4 in
  Alcotest.(check int) "capacity" 4 (D.Ring.capacity r);
  Alcotest.(check int) "empty length" 0 (D.Ring.length r);
  Alcotest.(check bool) "empty last" true (D.Ring.last r = None);
  List.iter (D.Ring.push r) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "length" 3 (D.Ring.length r);
  Alcotest.(check (array (float 0.0))) "chronological" [| 1.0; 2.0; 3.0 |]
    (D.Ring.to_array r);
  Alcotest.(check bool) "last" true (D.Ring.last r = Some 3.0)

let test_ring_wraps () =
  let r = D.Ring.create 3 in
  List.iter (D.Ring.push r) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "length capped" 3 (D.Ring.length r);
  Alcotest.(check int) "total keeps counting" 5 (D.Ring.total r);
  Alcotest.(check (array (float 0.0))) "oldest evicted" [| 3.0; 4.0; 5.0 |]
    (D.Ring.to_array r)

let test_ring_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Diagnostics.Ring.create: capacity must be positive") (fun () ->
      ignore (D.Ring.create 0))

(* ---------- Convergence classifier ---------- *)

let geometric r0 ratio n = Array.init n (fun k -> r0 *. (ratio ** float_of_int k))

let test_classify_quadratic () =
  (* r_{k+1} = r_k^2: the textbook Newton tail. *)
  let h = [| 1e-1; 1e-2; 1e-4; 1e-8; 1e-16 |] in
  (match D.Convergence.classify h with
  | D.Convergence.Quadratic -> ()
  | c -> Alcotest.failf "expected quadratic, got %s" (D.Convergence.to_string c));
  match D.Convergence.observed_order h with
  | Some q -> Alcotest.(check bool) "order near 2" true (q > 1.8 && q < 2.2)
  | None -> Alcotest.fail "no observed order"

let test_classify_linear () =
  let h = geometric 1.0 0.3 8 in
  match D.Convergence.classify h with
  | D.Convergence.Linear rate ->
      Alcotest.(check bool)
        (Printf.sprintf "rate %.3f near 0.3" rate)
        true
        (Float.abs (rate -. 0.3) < 0.02)
  | c -> Alcotest.failf "expected linear, got %s" (D.Convergence.to_string c)

let test_classify_stagnating () =
  match D.Convergence.classify (geometric 1.0 0.99 10) with
  | D.Convergence.Stagnating -> ()
  | c -> Alcotest.failf "expected stagnating, got %s" (D.Convergence.to_string c)

let test_classify_diverging () =
  (match D.Convergence.classify (geometric 1.0 2.0 6) with
  | D.Convergence.Diverging -> ()
  | c -> Alcotest.failf "expected diverging, got %s" (D.Convergence.to_string c));
  (* Oscillating but ending far above the start also counts. *)
  match D.Convergence.classify [| 1.0; 0.5; 3.0; 0.8; 20.0 |] with
  | D.Convergence.Diverging -> ()
  | c ->
      Alcotest.failf "expected diverging (final >10x), got %s"
        (D.Convergence.to_string c)

let test_classify_rescued () =
  match D.Convergence.classify ~strategy:"source-ramp" (geometric 1.0 0.5 6) with
  | D.Convergence.Rescued "source-ramp" -> ()
  | c -> Alcotest.failf "expected rescued, got %s" (D.Convergence.to_string c)

let test_classify_insufficient_and_cleaning () =
  (match D.Convergence.classify [| 1.0; 0.1 |] with
  | D.Convergence.Insufficient_data -> ()
  | c -> Alcotest.failf "expected insufficient, got %s" (D.Convergence.to_string c));
  (* Non-finite and non-positive samples are dropped before analysis. *)
  match D.Convergence.classify [| nan; 1.0; -3.0; 0.3; infinity; 0.09; 0.0 |] with
  | D.Convergence.Linear _ | D.Convergence.Quadratic -> ()
  | c -> Alcotest.failf "expected contraction after cleaning, got %s"
           (D.Convergence.to_string c)

(* ---------- Condition estimates ---------- *)

(* diag(1..10) has exactly kappa = 10 in the 2-norm, and the power
   iterations align with the coordinate eigenvectors, so both the dense
   and the sparse estimator should land within a few percent. *)

let test_condest_dense_known_kappa () =
  let n = 10 in
  let a = Linalg.Mat.init n n (fun i j -> if i = j then float_of_int (i + 1) else 0.0) in
  let k = D.Condest.condest_dense a (Linalg.Lu.factor a) in
  Alcotest.(check bool)
    (Printf.sprintf "kappa %.3f near 10" k)
    true
    (Float.abs (k -. 10.0) < 0.5)

let test_condest_csr_known_kappa () =
  let n = 10 in
  let coo = Sparse.Coo.create n n in
  for i = 0 to n - 1 do
    Sparse.Coo.add coo i i (float_of_int (i + 1))
  done;
  let a = Sparse.Csr.of_coo coo in
  let k = D.Condest.condest_csr a (Sparse.Splu.factor a) in
  Alcotest.(check bool)
    (Printf.sprintf "kappa %.3f near 10" k)
    true
    (k <= 10.5 && k > 9.0)

let test_condest_identity () =
  let a = Linalg.Mat.identity 6 in
  let k = D.Condest.condest_dense a (Linalg.Lu.factor a) in
  Alcotest.(check bool) (Printf.sprintf "kappa %.3f near 1" k) true
    (Float.abs (k -. 1.0) < 1e-6)

(* ---------- Registry round-trips ---------- *)

let fill_registry () =
  let reg = D.Registry.create () in
  D.Registry.gauge reg ~help:"final residual" "newton.residual_norm" 3.25e-11;
  D.Registry.counter reg "gmres.budget_stops" 2.0;
  D.Registry.gauge reg
    ~labels:[ ("stage", "gmres-ilu0"); ("grid", "40x30") ]
    "health.stage_iterations" 7.0;
  D.Registry.gauge reg ~labels:[ ("quote", "say \"hi\"\nok") ] "odd.label" 1.0;
  reg

let test_prometheus_round_trip () =
  let reg = fill_registry () in
  let page = D.Registry.to_prometheus reg in
  let parsed = D.Registry.parse_prometheus page in
  Alcotest.(check int) "sample count" 4 (List.length parsed);
  let find name =
    match List.find_opt (fun (n, _, _) -> n = name) parsed with
    | Some (_, labels, v) -> (labels, v)
    | None -> Alcotest.failf "missing sample %s in:\n%s" name page
  in
  let _, v = find "rfss_newton_residual_norm" in
  Alcotest.(check (float 1e-22)) "gauge value survives" 3.25e-11 v;
  let _, v = find "rfss_gmres_budget_stops_total" in
  Alcotest.(check (float 0.0)) "counter gets _total" 2.0 v;
  let labels, v = find "rfss_health_stage_iterations" in
  Alcotest.(check (float 0.0)) "labelled value" 7.0 v;
  Alcotest.(check bool) "labels survive" true
    (List.assoc_opt "stage" labels = Some "gmres-ilu0"
    && List.assoc_opt "grid" labels = Some "40x30");
  let labels, _ = find "rfss_odd_label" in
  Alcotest.(check bool) "escaped label round-trips" true
    (List.assoc_opt "quote" labels = Some "say \"hi\"\nok")

let test_csv_round_trip () =
  let reg = fill_registry () in
  let parsed = D.Registry.parse_csv (D.Registry.to_csv reg) in
  Alcotest.(check int) "sample count" 4 (List.length parsed);
  let find name =
    match List.find_opt (fun s -> s.D.Registry.name = name) parsed with
    | Some s -> s
    | None -> Alcotest.failf "missing csv row %s" name
  in
  let s = find "rfss_gmres_budget_stops" in
  Alcotest.(check bool) "kind survives" true (s.D.Registry.kind = D.Registry.Counter);
  Alcotest.(check (float 0.0)) "value survives" 2.0 s.D.Registry.value;
  let s = find "rfss_health_stage_iterations" in
  Alcotest.(check bool) "labels survive" true
    (List.assoc_opt "stage" s.D.Registry.labels = Some "gmres-ilu0")

let test_sanitize_name () =
  Alcotest.(check string) "dots to underscores" "rfss_mpde_solve_wall"
    (D.Registry.sanitize_name "mpde.solve.wall");
  Alcotest.(check string) "counter suffix" "rfss_retries_total"
    (D.Registry.sanitize_name ~kind:D.Registry.Counter "retries");
  Alcotest.(check string) "idempotent" "rfss_retries_total"
    (D.Registry.sanitize_name ~kind:D.Registry.Counter "rfss_retries_total")

let test_registry_of_telemetry () =
  Telemetry.enable ();
  Telemetry.span "outer" (fun () ->
      Telemetry.count ~by:3 "widgets";
      Telemetry.gauge "level" 0.5;
      Telemetry.observe "res" 1.0;
      Telemetry.observe "res" 3.0);
  let snap = match Telemetry.snapshot () with Some s -> s | None -> assert false in
  Telemetry.disable ();
  let reg = D.Registry.of_telemetry snap in
  let samples = D.Registry.samples reg in
  let value ?(labels = []) name =
    match
      List.find_opt
        (fun s -> s.D.Registry.name = name && s.D.Registry.labels = labels)
        samples
    with
    | Some s -> s.D.Registry.value
    | None -> Alcotest.failf "missing metric %s" name
  in
  Alcotest.(check (float 0.0)) "counter" 3.0 (value "widgets");
  Alcotest.(check (float 0.0)) "gauge" 0.5 (value "level");
  (* Histograms register as real bucketed families, with min/max riding
     along as sibling gauges (no place for them in the histogram shape). *)
  (match D.Registry.histograms reg with
  | [ ("res", [], h) ] ->
      Alcotest.(check int) "histogram count" 2 h.Telemetry.count;
      Alcotest.(check (float 0.0)) "histogram sum" 4.0 h.Telemetry.sum
  | _ -> Alcotest.fail "expected one histogram family 'res'");
  Alcotest.(check (float 0.0)) "histogram min gauge" 1.0 (value "res.min");
  Alcotest.(check (float 0.0)) "histogram max gauge" 3.0 (value "res.max");
  Alcotest.(check (float 0.0)) "span calls" 1.0
    (value ~labels:[ ("span", "outer") ] "span.calls")

(* ---------- Json_min ---------- *)

let test_json_round_trip () =
  let open D.Json_min in
  let doc =
    Obj
      [
        ("s", Str "a \"quoted\"\nline");
        ("n", Num 3.141592653589793);
        ("i", Num 42.0);
        ("b", Bool true);
        ("z", Null);
        ("a", Arr [ Num 1.0; Str "x"; Obj [ ("k", Bool false) ] ]);
      ]
  in
  let doc' = parse (to_string doc) in
  Alcotest.(check bool) "round-trips" true (doc = doc');
  Alcotest.(check bool) "path" true
    (path [ "a" ] doc' <> None
    && (match path [ "s" ] doc' with Some (Str s) -> s = "a \"quoted\"\nline" | _ -> false))

let test_json_parse_errors () =
  let open D.Json_min in
  let fails s = match parse s with exception Parse_error _ -> true | _ -> false in
  Alcotest.(check bool) "trailing garbage" true (fails "{} x");
  Alcotest.(check bool) "unterminated" true (fails "{\"a\": ");
  Alcotest.(check bool) "bare word" true (fails "bogus")

(* ---------- Gate ---------- *)

let bench_doc ?(converged = true) ?(wall = 1.0) ?(newton = 10.0) ?(gmres = 50.0)
    ?(dense_factors = 1200.0) ?(dense_solves = 6000.0) ?(ratio = 4.0)
    ?(spmv_mflops = 800.0) ?(block_cols = 2.0e6) ?(sweep_wall = 2.0)
    ?(sweep_speedup = 1.6) ?(sweep_speedup_4 = 1.4) ?(cores = 4.0)
    ?(retries = 0.0) ?(degraded = 0.0) ?(util_2 = 0.9) ?(util_4 = 0.8)
    ?(gc_major_p99 = 0.001) () =
  let open D.Json_min in
  Obj
    [
      ( "mixer",
        Obj
          [
            ("converged", Bool converged);
            ("wall_seconds", Num wall);
            ("newton_iterations", Num newton);
            ("gmres_iterations", Num gmres);
            ( "telemetry",
              Obj
                [
                  ( "counters",
                    Obj
                      [
                        ("lu.dense_factors", Num dense_factors);
                        ("lu.dense_solves", Num dense_solves);
                      ] );
                ] );
          ] );
      ("speedup", Obj [ ("ratio", Num ratio) ]);
      ( "kernel",
        Obj
          [
            ("spmv_mflops", Num spmv_mflops);
            ("block_solve_cols_per_s", Num block_cols);
          ] );
      ( "sweep",
        Obj
          [
            ("wall_1", Num sweep_wall);
            ("speedup_2", Num sweep_speedup);
            ("speedup_4", Num sweep_speedup_4);
            ("cores", Num cores);
            ("retries", Num retries);
            ("degraded_jobs", Num degraded);
            ("domain_utilization_2", Num util_2);
            ("domain_utilization_4", Num util_4);
          ] );
      ("gc", Obj [ ("major_pause_p99", Num gc_major_p99) ]);
    ]

let test_gate_passes_identical () =
  let doc = bench_doc () in
  let r = D.Gate.evaluate ~baseline:doc ~current:doc () in
  Alcotest.(check bool) "passes" true r.D.Gate.passed;
  Alcotest.(check int) "no errors" 0 (List.length r.D.Gate.errors);
  Alcotest.(check int) "fourteen verdicts" 14 (List.length r.D.Gate.verdicts)

let test_gate_improvement_passes () =
  (* Faster wall clock and a better speedup ratio must never fail. *)
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ())
      ~current:(bench_doc ~wall:0.5 ~ratio:8.0 ())
      ()
  in
  Alcotest.(check bool) "improvement passes" true r.D.Gate.passed

let test_gate_fails_on_regression () =
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ()) ~current:(bench_doc ~wall:1.3 ()) ()
  in
  Alcotest.(check bool) "30% wall regression fails" false r.D.Gate.passed;
  let bad = List.find (fun v -> not v.D.Gate.ok) r.D.Gate.verdicts in
  Alcotest.(check string) "the wall check tripped" "mixer.wall_seconds"
    bad.D.Gate.check.D.Gate.metric;
  (* A speedup-ratio drop is a regression even though the number fell. *)
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ()) ~current:(bench_doc ~ratio:2.0 ()) ()
  in
  Alcotest.(check bool) "ratio drop fails" false r.D.Gate.passed

let test_gate_within_tolerance_passes () =
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ()) ~current:(bench_doc ~wall:1.1 ()) ()
  in
  Alcotest.(check bool) "10% < 15% passes" true r.D.Gate.passed

let test_gate_hard_errors () =
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ())
      ~current:(bench_doc ~converged:false ())
      ()
  in
  Alcotest.(check bool) "non-convergence fails" false r.D.Gate.passed;
  Alcotest.(check bool) "with an error" true (r.D.Gate.errors <> []);
  let open D.Json_min in
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ())
      ~current:(Obj [ ("mixer", Obj [ ("converged", Bool true) ]) ])
      ()
  in
  Alcotest.(check bool) "missing metrics fail" false r.D.Gate.passed;
  Alcotest.(check bool) "missing metrics reported" true
    (List.length r.D.Gate.errors >= 4)

let test_gate_speedup_floor () =
  (* A multi-core runner whose parallel sweep loses to serial fails
     outright, even when the baseline blessed the same bad number. *)
  let slow = bench_doc ~sweep_speedup:0.4 ~cores:2.0 () in
  let r = D.Gate.evaluate ~baseline:slow ~current:slow () in
  Alcotest.(check bool) "sub-serial speedup on 2 cores fails" false
    r.D.Gate.passed;
  Alcotest.(check bool) "reported as an error" true
    (List.exists
       (fun e ->
         (* the floor is a hard error, not a relative verdict *)
         String.length e > 0 && String.sub e 0 8 = "parallel")
       r.D.Gate.errors);
  (* The 4-domain configuration has its own floor: a healthy 2-domain
     speedup does not excuse a 4-domain slowdown (that is contention,
     not a missing core). *)
  let slow4 = bench_doc ~sweep_speedup_4:0.7 ~cores:4.0 () in
  let r = D.Gate.evaluate ~baseline:slow4 ~current:slow4 () in
  Alcotest.(check bool) "sub-serial speedup_4 on 4 cores fails" false
    r.D.Gate.passed;
  Alcotest.(check bool) "speedup_4 floor names the metric" true
    (List.exists
       (fun e ->
         String.length e > 0
         && String.sub e 0 8 = "parallel"
         &&
         let rec contains i =
           i + 9 <= String.length e
           && (String.sub e i 9 = "speedup_4" || contains (i + 1))
         in
         contains 0)
       r.D.Gate.errors);
  (* Same numbers on a single-core runner: the floor is skipped (no
     parallelism to win) and the relative check carries the verdict. *)
  let serial = bench_doc ~sweep_speedup:0.4 ~sweep_speedup_4:0.4 ~cores:1.0 () in
  let r = D.Gate.evaluate ~baseline:serial ~current:serial () in
  Alcotest.(check bool) "single-core escape hatch passes" true r.D.Gate.passed;
  (* The growth in dense factorizations is watched too. *)
  let r =
    D.Gate.evaluate
      ~baseline:(bench_doc ())
      ~current:(bench_doc ~dense_factors:6000.0 ())
      ()
  in
  Alcotest.(check bool) "dense-factor regression fails" false r.D.Gate.passed

let test_gate_retry_floor () =
  (* Any retry or degraded job on the bench's clean sweep is a hard
     error — the baseline blessing the same count does not excuse it. *)
  let noisy = bench_doc ~retries:2.0 () in
  let r = D.Gate.evaluate ~baseline:noisy ~current:noisy () in
  Alcotest.(check bool) "nonzero retries fail" false r.D.Gate.passed;
  let demoted = bench_doc ~degraded:1.0 () in
  let r = D.Gate.evaluate ~baseline:demoted ~current:demoted () in
  Alcotest.(check bool) "degraded job fails" false r.D.Gate.passed;
  let missing =
    D.Gate.evaluate ~baseline:(bench_doc ())
      ~current:(bench_doc ~sweep_speedup:1.6 ())
      ()
  in
  Alcotest.(check bool) "zero counters pass" true missing.D.Gate.passed

let test_gate_absolute_slack () =
  (* gc.major_pause_p99 has 50ms of absolute slack: a pause going from
     1ms to 40ms is a +3900% relative "regression" but stays inside the
     band, so it passes; 200ms exceeds the band and the huge relative
     drift makes it fail. *)
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ())
      ~current:(bench_doc ~gc_major_p99:0.04 ())
      ()
  in
  Alcotest.(check bool) "inside the absolute band passes" true r.D.Gate.passed;
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ())
      ~current:(bench_doc ~gc_major_p99:0.2 ())
      ()
  in
  Alcotest.(check bool) "outside the band fails" false r.D.Gate.passed;
  let bad = List.find (fun v -> not v.D.Gate.ok) r.D.Gate.verdicts in
  Alcotest.(check string) "the gc check tripped" "gc.major_pause_p99"
    bad.D.Gate.check.D.Gate.metric;
  (* Utilization dropping 0.9 -> 0.75 is within the 0.2 band. *)
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ())
      ~current:(bench_doc ~util_2:0.75 ())
      ()
  in
  Alcotest.(check bool) "utilization wobble passes" true r.D.Gate.passed;
  (* A collapse to 0.3 is both outside the band and past the relative
     tolerance. *)
  let r =
    D.Gate.evaluate ~baseline:(bench_doc ())
      ~current:(bench_doc ~util_2:0.3 ())
      ()
  in
  Alcotest.(check bool) "utilization collapse fails" false r.D.Gate.passed

let test_gate_overrides () =
  let checks = D.Gate.default_checks ~overrides:[ ("mixer.wall_seconds", 0.5) ] 0.15 in
  let r =
    D.Gate.evaluate ~checks ~baseline:(bench_doc ()) ~current:(bench_doc ~wall:1.3 ())
      ()
  in
  Alcotest.(check bool) "loosened wall tolerance passes" true r.D.Gate.passed

(* ---------- Newton residual history (end to end) ---------- *)

let test_newton_history_recorded () =
  (* Scalar x^2 = 4 from x0 = 10: pure Newton, quadratic tail. *)
  let residual x = [| (x.(0) *. x.(0)) -. 4.0 |] in
  let solve_linearized x r = [| r.(0) /. (2.0 *. x.(0)) |] in
  let _, stats =
    Numeric.Newton.solve { Numeric.Newton.residual; solve_linearized } [| 10.0 |]
  in
  let h = stats.Numeric.Newton.residual_history in
  Alcotest.(check bool) "history nonempty" true (Array.length h >= 3);
  Alcotest.(check (float 0.0)) "starts at the initial residual" 96.0 h.(0);
  Array.iteri
    (fun k r ->
      if k > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "monotone at %d" k)
          true (r < h.(k - 1)))
    h;
  match D.Convergence.classify h with
  | D.Convergence.Quadratic -> ()
  | c -> Alcotest.failf "expected quadratic tail, got %s" (D.Convergence.to_string c)

(* ---------- Diagonal residual + health on the quickstart circuit ---------- *)

let quickstart_solution () =
  let f1 = 1e6 and fd = 1e3 in
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~r:1e3 ~c:100e-12
      ~drive:
        (W.sum (W.sine ~amplitude:1.0 ~freq:f1 ()) (W.sine ~amplitude:1.0 ~freq:(f1 +. fd) ()))
      ()
  in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  (Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:16 mna, mna)

let test_diagonal_residual_small_on_quickstart () =
  let sol, mna = quickstart_solution () in
  Alcotest.(check bool) "solve converged" true sol.Mpde.Solver.stats.converged;
  let unknown = Circuit.Mna.node_index mna "out" in
  let r = Mpde.Extract.diagonal_residual sol ~unknown in
  Alcotest.(check bool)
    (Printf.sprintf "diagonal residual %.4f at discretization level" r)
    true
    (Float.is_finite r && r >= 0.0 && r < 0.1)

let test_health_of_solution () =
  let sol, mna = quickstart_solution () in
  let unknown = Circuit.Mna.node_index mna "out" in
  let h = D.Health.of_solution ~diagonal_unknown:unknown sol in
  Alcotest.(check bool) "converged" true h.D.Health.converged;
  (match h.D.Health.condition_estimate with
  | Some k -> Alcotest.(check bool) "kappa finite and >= 1" true (Float.is_finite k && k >= 1.0)
  | None -> Alcotest.fail "no condition estimate");
  (match h.D.Health.diagonal_residual with
  | Some d -> Alcotest.(check bool) "diagonal residual small" true (d < 0.1)
  | None -> Alcotest.fail "no diagonal residual");
  let line = D.Health.summary_line h in
  Alcotest.(check bool) "summary line present" true
    (String.length line > 0 && String.sub line 0 7 = "health:");
  (* The JSON section must be parseable and must carry the headline
     numbers; the registry export must carry the marker gauge. *)
  (match D.Json_min.parse (D.Health.to_json h) with
  | D.Json_min.Obj fields ->
      Alcotest.(check bool) "json has convergence" true
        (List.mem_assoc "convergence" fields && List.mem_assoc "newton_iterations" fields)
  | _ -> Alcotest.fail "health json is not an object");
  let reg = D.Health.to_registry h in
  let samples = D.Registry.samples reg in
  Alcotest.(check bool) "registry has the class marker" true
    (List.exists
       (fun s ->
         s.D.Registry.name = "health.convergence"
         && List.mem_assoc "class" s.D.Registry.labels)
       samples)

(* ---------- Registry snapshot publishing (Observe.Publish) ---------- *)

module P = Observe.Publish

(* Hammer the publish hub from several writer domains while a reader
   domain snapshots continuously: because one CAS swaps one immutable
   record, every snapshot must be internally consistent — finished
   never ahead of started, the job-wall histogram count equal to the
   finished count, and the per-worker tallies summing to it. A torn
   multi-cell implementation fails this immediately. *)
let test_publish_snapshot_consistency () =
  P.reset ();
  P.arm ();
  Fun.protect ~finally:(fun () ->
      P.disarm ();
      P.reset ())
  @@ fun () ->
  let writers = 4 and per_writer = 200 in
  P.run_started ~domains:writers ~phase:"test"
    ~total:(writers * per_writer) ();
  let stop = Atomic.make false in
  let violations = ref 0 and reads = ref 0 in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let s = P.read_stats () in
          let worker_done =
            Array.fold_left (fun a w -> a + w.P.w_jobs_done) 0 s.P.workers
          in
          incr reads;
          if
            s.P.counts.P.finished > s.P.counts.P.started
            || s.P.job_wall.Telemetry.count <> s.P.counts.P.finished
            || worker_done <> s.P.counts.P.finished
          then incr violations;
          Domain.cpu_relax ()
        done)
  in
  let spawned =
    Array.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to per_writer do
              let job = Printf.sprintf "w%d-%d" w i in
              P.job_started ~job ~worker:w;
              P.job_finished ~job ~worker:w ~status:"ok"
                ~health:(Some "quadratic") ~wall_seconds:0.001 ~attempts:1
            done))
  in
  Array.iter Domain.join spawned;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check bool) "reader actually read" true (!reads > 0);
  Alcotest.(check int) "no torn snapshots" 0 !violations;
  let s = P.read_stats () in
  Alcotest.(check int) "all jobs finished" (writers * per_writer)
    s.P.counts.P.finished;
  Alcotest.(check int) "histogram saw every job" (writers * per_writer)
    s.P.job_wall.Telemetry.count;
  Alcotest.(check int) "worker array grew to every writer" writers
    (Array.length s.P.workers)

(* Under a frozen fake clock the /metrics rendering is a pure function
   of the published stats: two scrapes are byte-identical, and the text
   re-parses with the strict Prometheus parser to the published
   numbers. *)
let test_publish_prometheus_roundtrip () =
  let src, _advance = Telemetry.Clock.manual () in
  Telemetry.Clock.install src;
  P.reset ();
  P.arm ();
  Fun.protect ~finally:(fun () ->
      P.disarm ();
      P.reset ();
      Telemetry.Clock.uninstall ())
  @@ fun () ->
  P.run_started ~domains:2 ~phase:"test" ~total:3 ();
  for i = 0 to 2 do
    let job = Printf.sprintf "j%d" i in
    P.job_started ~job ~worker:(i mod 2);
    P.job_finished ~job ~worker:(i mod 2) ~status:"ok"
      ~health:(Some "linear") ~wall_seconds:0.25 ~attempts:1
  done;
  P.run_finished ();
  let text1 = D.Registry.to_prometheus (P.registry_snapshot ()) in
  let text2 = D.Registry.to_prometheus (P.registry_snapshot ()) in
  Alcotest.(check string) "scrape is deterministic under a frozen clock"
    text1 text2;
  let samples = D.Registry.parse_prometheus text1 in
  let value name =
    match List.find_opt (fun (n, _, _) -> n = name) samples with
    | Some (_, _, v) -> v
    | None -> Alcotest.fail ("missing sample " ^ name)
  in
  Alcotest.(check (float 0.0)) "finished counter" 3.0
    (value "rfss_sweep_jobs_finished_total");
  Alcotest.(check (float 0.0)) "total gauge" 3.0
    (value "rfss_sweep_jobs_total");
  Alcotest.(check (float 0.0)) "histogram count" 3.0
    (value "rfss_sweep_job_wall_seconds_count");
  Alcotest.(check (float 1e-9)) "histogram sum" 0.75
    (value "rfss_sweep_job_wall_seconds_sum");
  let labelled name key v =
    match
      List.find_opt
        (fun (n, ls, _) -> n = name && List.assoc_opt key ls = Some v)
        samples
    with
    | Some (_, _, x) -> x
    | None ->
        Alcotest.fail (Printf.sprintf "missing %s{%s=\"%s\"}" name key v)
  in
  Alcotest.(check (float 0.0)) "per-worker jobs" 2.0
    (labelled "rfss_sweep_worker_jobs_total" "worker" "0");
  Alcotest.(check (float 0.0)) "phase marker" 1.0
    (labelled "rfss_sweep_phase" "phase" "done")

(* ---------- run ---------- *)

let () =
  Alcotest.run "diagnostics"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraps" `Quick test_ring_wraps;
          Alcotest.test_case "bad capacity" `Quick test_ring_bad_capacity;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "quadratic" `Quick test_classify_quadratic;
          Alcotest.test_case "linear" `Quick test_classify_linear;
          Alcotest.test_case "stagnating" `Quick test_classify_stagnating;
          Alcotest.test_case "diverging" `Quick test_classify_diverging;
          Alcotest.test_case "rescued" `Quick test_classify_rescued;
          Alcotest.test_case "insufficient + cleaning" `Quick
            test_classify_insufficient_and_cleaning;
        ] );
      ( "condest",
        [
          Alcotest.test_case "dense kappa 10" `Quick test_condest_dense_known_kappa;
          Alcotest.test_case "csr kappa 10" `Quick test_condest_csr_known_kappa;
          Alcotest.test_case "identity" `Quick test_condest_identity;
        ] );
      ( "registry",
        [
          Alcotest.test_case "prometheus round-trip" `Quick test_prometheus_round_trip;
          Alcotest.test_case "csv round-trip" `Quick test_csv_round_trip;
          Alcotest.test_case "sanitize names" `Quick test_sanitize_name;
          Alcotest.test_case "of_telemetry" `Quick test_registry_of_telemetry;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "gate",
        [
          Alcotest.test_case "identical passes" `Quick test_gate_passes_identical;
          Alcotest.test_case "improvement passes" `Quick test_gate_improvement_passes;
          Alcotest.test_case "regression fails" `Quick test_gate_fails_on_regression;
          Alcotest.test_case "within tolerance" `Quick test_gate_within_tolerance_passes;
          Alcotest.test_case "hard errors" `Quick test_gate_hard_errors;
          Alcotest.test_case "overrides" `Quick test_gate_overrides;
          Alcotest.test_case "absolute slack" `Quick test_gate_absolute_slack;
          Alcotest.test_case "retry floor" `Quick test_gate_retry_floor;
          Alcotest.test_case "speedup floor and factor watch" `Quick
            test_gate_speedup_floor;
        ] );
      ( "publish",
        [
          Alcotest.test_case "concurrent snapshot consistency" `Quick
            test_publish_snapshot_consistency;
          Alcotest.test_case "prometheus scrape round-trip" `Quick
            test_publish_prometheus_roundtrip;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "newton history" `Quick test_newton_history_recorded;
          Alcotest.test_case "diagonal residual" `Quick
            test_diagonal_residual_small_on_quickstart;
          Alcotest.test_case "health assessment" `Quick test_health_of_solution;
        ] );
    ]
