(* Tests for the solver resilience layer: guarded evaluation, budget
   enforcement, the escalation ladder, and their integration into
   Newton, GMRES, continuation, and the MPDE solver. *)

module Budget = Resilience.Budget
module Guard = Resilience.Guard
module Ladder = Resilience.Ladder
module Report = Resilience.Report

let pi = 4.0 *. atan 1.0

let csr_1x1 v =
  let coo = Sparse.Coo.create ~capacity:1 1 1 in
  Sparse.Coo.add coo 0 0 v;
  Sparse.Csr.of_coo coo

(* ---------- Guard ---------- *)

let test_guard_scan () =
  Alcotest.(check bool) "clean" true (Guard.scan [| 1.0; -2.0; 0.0 |] = None);
  (match Guard.scan ~context:"res" ~block_size:2 [| 1.0; 2.0; nan; 4.0 |] with
  | Some v ->
      Alcotest.(check int) "index" 2 v.Guard.index;
      Alcotest.(check (option int)) "block" (Some 1) v.Guard.block;
      Alcotest.(check (option int)) "offset" (Some 0) v.Guard.offset
  | None -> Alcotest.fail "expected a violation");
  Alcotest.(check bool) "finite" false (Guard.finite [| infinity |])

let test_guard_clamp () =
  let v = [| nan; 1e30; -1e30; 0.5 |] in
  let n = Guard.clamp ~limit:1e6 v in
  Alcotest.(check int) "modified" 3 n;
  Alcotest.(check (float 0.0)) "nan zeroed" 0.0 v.(0);
  Alcotest.(check (float 0.0)) "clamped up" 1e6 v.(1);
  Alcotest.(check (float 0.0)) "clamped down" (-1e6) v.(2);
  Alcotest.(check (float 0.0)) "untouched" 0.5 v.(3)

(* ---------- Budget ---------- *)

let test_budget_iteration_caps () =
  let b = Budget.make ~max_newton:3 () in
  Budget.tick_newton b;
  Budget.tick_newton b;
  Budget.tick_newton b;
  (match (try Budget.tick_newton b; None with Budget.Exhausted e -> Some e) with
  | Some (Budget.Newton_iterations { limit; used }) ->
      Alcotest.(check int) "limit" 3 limit;
      Alcotest.(check bool) "used past limit" true (used > limit)
  | _ -> Alcotest.fail "expected Newton_iterations exhaustion");
  Alcotest.(check bool) "exhausted is sticky" true (Budget.exhausted b <> None)

let test_budget_wall_clock_tolerance () =
  (* A 50 ms deadline must fire within a generous tolerance of the
     requested instant — not hang, not fire seconds late. *)
  let b = Budget.make ~wall_seconds:0.05 () in
  let t0 = Unix.gettimeofday () in
  while Budget.exhausted b = None && Unix.gettimeofday () -. t0 < 5.0 do
    Unix.sleepf 0.005
  done;
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "fired" true (Budget.exhausted b <> None);
  Alcotest.(check bool) "fired near the deadline" true (waited >= 0.04 && waited < 1.0)

let test_budget_parent_chain () =
  let parent = Budget.make ~max_newton:5 () in
  let child = Budget.make ~parent () in
  (* Child has no limits of its own, but ticks propagate up and checks
     consult the ancestors. *)
  for _ = 1 to 5 do
    Budget.tick_newton child
  done;
  Alcotest.(check int) "propagated" 5 (Budget.newton_used parent);
  Alcotest.(check bool) "child sees parent limit" true
    (try Budget.tick_newton child; false with Budget.Exhausted _ -> true)

(* ---------- Newton regressions ---------- *)

(* Residual goes NaN in a region of the iterate space. *)
let test_newton_diverged_on_nan () =
  let problem =
    {
      Numeric.Newton.residual = (fun _ -> [| nan |]);
      solve_linearized = (fun _ _ -> [| 0.0 |]);
    }
  in
  let _, stats = Numeric.Newton.solve problem [| 0.0 |] in
  Alcotest.(check bool) "diverged" true (stats.Numeric.Newton.outcome = Numeric.Newton.Diverged);
  (* Must bail out immediately, not burn max_iterations of backtracks. *)
  Alcotest.(check int) "no iterations wasted" 0 stats.Numeric.Newton.iterations

let test_newton_rejects_nonfinite_step () =
  let problem =
    {
      Numeric.Newton.residual = (fun x -> [| x.(0) -. 1.0 |]);
      solve_linearized = (fun _ _ -> [| nan |]);
    }
  in
  let _, stats = Numeric.Newton.solve problem [| 0.0 |] in
  match stats.Numeric.Newton.outcome with
  | Numeric.Newton.Solver_failure _ -> ()
  | o -> Alcotest.failf "expected Solver_failure, got %a" Numeric.Newton.pp_outcome o

let test_newton_budget_exhaustion () =
  (* A slowly converging scalar problem with a 2-iteration budget. *)
  let problem =
    {
      Numeric.Newton.residual = (fun x -> [| x.(0) |]);
      (* Deliberately weak step so convergence needs many iterations. *)
      solve_linearized = (fun _ r -> [| 0.1 *. r.(0) |]);
    }
  in
  let options =
    { Numeric.Newton.default_options with budget = Some (Budget.make ~max_newton:2 ()) }
  in
  let _, stats = Numeric.Newton.solve ~options problem [| 1.0 |] in
  match stats.Numeric.Newton.outcome with
  | Numeric.Newton.Exhausted (Budget.Newton_iterations _) ->
      Alcotest.(check bool) "stopped early" true (stats.Numeric.Newton.iterations <= 3)
  | o -> Alcotest.failf "expected Exhausted, got %a" Numeric.Newton.pp_outcome o

(* ---------- GMRES regressions ---------- *)

let test_gmres_happy_breakdown () =
  (* With a diagonal operator and b in a 1-dimensional invariant
     subspace the Krylov space is exhausted after one iteration: the
     Hessenberg subdiagonal is exactly zero. The solver must detect the
     breakdown, return the exact solution, and not divide by zero. *)
  let op v = Array.map (fun x -> 2.0 *. x) v in
  let b = [| 4.0; 0.0; 0.0 |] in
  let r = Sparse.Krylov.gmres ~restart:10 ~max_iter:50 ~tol:1e-12 op b in
  Alcotest.(check bool) "converged" true r.Sparse.Krylov.converged;
  Alcotest.(check bool) "exact" true (Float.abs (r.Sparse.Krylov.x.(0) -. 2.0) < 1e-10);
  Alcotest.(check bool) "finite" true (Guard.finite r.Sparse.Krylov.x);
  Alcotest.(check bool) "breakdown detected fast" true (r.Sparse.Krylov.iterations <= 2)

let test_gmres_nan_operator_terminates () =
  (* An operator that poisons every product must not NaN-pollute the
     Givens QR or loop forever on restarts; the result is a clean
     non-converged report with the finite initial iterate. *)
  let op v = Array.map (fun _ -> nan) v in
  let b = [| 1.0; 2.0 |] in
  let r = Sparse.Krylov.gmres ~restart:5 ~max_iter:100 op b in
  Alcotest.(check bool) "not converged" false r.Sparse.Krylov.converged;
  Alcotest.(check bool) "iterate stays finite" true (Guard.finite r.Sparse.Krylov.x)

let test_gmres_budget () =
  (* 100-dim Laplacian-ish operator, tiny linear budget: must stop at
     the cap with converged=false rather than raising. *)
  let n = 100 in
  let op v =
    Array.init n (fun i ->
        let left = if i > 0 then v.(i - 1) else 0.0 in
        let right = if i < n - 1 then v.(i + 1) else 0.0 in
        (2.0 *. v.(i)) -. left -. right)
  in
  let b = Array.make n 1.0 in
  let budget = Budget.make ~max_linear:7 () in
  let r = Sparse.Krylov.gmres ~restart:20 ~max_iter:500 ~tol:1e-14 ~budget op b in
  Alcotest.(check bool) "not converged" false r.Sparse.Krylov.converged;
  Alcotest.(check bool) "stopped at cap" true (r.Sparse.Krylov.iterations <= 8);
  Alcotest.(check bool) "finite" true (Guard.finite r.Sparse.Krylov.x)

(* ---------- Continuation ---------- *)

let test_continuation_total_step_cap () =
  (* A family that never converges: every Newton solve fails, so the
     step halves forever. max_total_steps must bound the number of
     Newton solves attempted. *)
  let solves = ref 0 in
  let problem_at _lambda =
    {
      Numeric.Newton.residual =
        (fun x ->
          incr solves;
          [| (x.(0) *. x.(0)) +. 1.0 |]);
      solve_linearized = (fun _ r -> r);
    }
  in
  let newton_options = { Numeric.Newton.default_options with max_iterations = 3 } in
  let _, stats =
    Numeric.Continuation.trace ~max_total_steps:10 ~newton_options ~problem_at
      ~x0:[| 0.0 |] ()
  in
  Alcotest.(check bool) "not converged" false stats.Numeric.Continuation.converged;
  let total = stats.Numeric.Continuation.steps_taken + stats.Numeric.Continuation.steps_rejected in
  Alcotest.(check bool) "bounded" true (total <= 10)

let test_continuation_budget () =
  let problem_at lambda =
    {
      Numeric.Newton.residual = (fun x -> [| x.(0) -. lambda |]);
      solve_linearized = (fun _ r -> r);
    }
  in
  let budget = Budget.make ~max_newton:2 () in
  let _, stats = Numeric.Continuation.trace ~budget ~problem_at ~x0:[| 0.0 |] () in
  Alcotest.(check bool) "not converged" false stats.Numeric.Continuation.converged;
  Alcotest.(check bool) "exhaustion recorded" true
    (stats.Numeric.Continuation.exhausted <> None)

(* ---------- Ladder ---------- *)

let test_ladder_order_and_skip () =
  let log = ref [] in
  let stage name applies result =
    {
      Ladder.name;
      applies;
      attempt =
        (fun () ->
          log := name :: !log;
          result);
    }
  in
  let stages =
    [
      stage "first" Ladder.always (Error (Ladder.Nonlinear, "no"));
      (* Linear-stall rung must be skipped after a nonlinear failure. *)
      stage "linear-only" Ladder.on_linear_stall (Ok "wrong");
      stage "recover" Ladder.on_nonlinear (Ok "recovered");
      stage "after-success" Ladder.always (Ok "never runs");
    ]
  in
  let run = Ladder.run stages in
  Alcotest.(check (option string)) "strategy" (Some "recover") run.Ladder.strategy;
  Alcotest.(check (option string)) "value" (Some "recovered") run.Ladder.value;
  Alcotest.(check (list string)) "execution order" [ "first"; "recover" ] (List.rev !log);
  let statuses =
    List.map (fun r -> (r.Ladder.stage, r.Ladder.status)) run.Ladder.records
  in
  Alcotest.(check bool) "deterministic records" true
    (statuses
    = [
        ("first", `Failed "no");
        ("linear-only", `Skipped);
        ("recover", `Success);
        ("after-success", `Skipped);
      ])

let test_ladder_budget_stops_climb () =
  let b = Budget.make ~max_newton:1 () in
  let stages =
    [
      {
        Ladder.name = "burn";
        applies = Ladder.always;
        attempt =
          (fun () ->
            Budget.tick_newton b;
            Budget.tick_newton b;
            Ok "unreachable");
      };
      { Ladder.name = "next"; applies = Ladder.always; attempt = (fun () -> Ok "x") };
    ]
  in
  let run = Ladder.run ~budget:b stages in
  Alcotest.(check bool) "no value" true (run.Ladder.value = None);
  (match run.Ladder.last_failure with
  | Some (Ladder.Exhausted _) -> ()
  | _ -> Alcotest.fail "expected Exhausted last failure");
  (* The remaining rung must be skipped, not attempted. *)
  match List.map (fun r -> r.Ladder.status) run.Ladder.records with
  | [ `Failed _; `Skipped ] -> ()
  | _ -> Alcotest.fail "expected [failed; skipped] records"

(* ---------- Report ---------- *)

let test_report_json () =
  let stages =
    [
      { Ladder.name = "a"; applies = Ladder.always; attempt = (fun () -> Error (Ladder.Nonlinear, "x \"quoted\"")) };
      { Ladder.name = "b"; applies = Ladder.on_nonlinear; attempt = (fun () -> Ok 1) };
    ]
  in
  let run = Ladder.run stages in
  let report =
    Report.of_ladder
      ~iterations_of:(fun _ -> 2)
      ~residual_trajectory:[| 1.0; 0.1 |] ~residual_norm:1e-10 ~newton_iterations:4
      ~linear_iterations:7 ~wall_seconds:0.25 run
  in
  Alcotest.(check bool) "success" true (Report.success report);
  let json = Report.to_json_string report in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "single line" false (String.contains json '\n');
  Alcotest.(check bool) "has strategy" true (contains "\"strategy\":\"b\"");
  Alcotest.(check bool) "escapes quotes" true (contains "\\\"quoted\\\"")

(* ---------- MPDE integration ---------- *)

(* A 1-unknown DAE with ferociously stiff exponential nonlinearity
   (think: back-to-back diodes with emission coefficient ~1/30 V).
   Driven hard, plain Newton from the zero state overshoots into the
   exponential wall and creeps at the minimum damping; source-ramp
   continuation walks in reliably. *)
let stiff_dae ~amplitude ~freq =
  let f x = exp (30.0 *. (x -. 1.0)) -. exp (-30.0 *. (x +. 1.0)) +. (0.1 *. x) in
  let g x = (30.0 *. exp (30.0 *. (x -. 1.0))) +. (30.0 *. exp (-30.0 *. (x +. 1.0))) +. 0.1 in
  {
    Numeric.Dae.size = 1;
    eval_f = (fun x -> [| f x.(0) |]);
    eval_q = (fun x -> [| 1e-6 *. x.(0) |]);
    jacobians = (fun x -> (csr_1x1 (g x.(0)), csr_1x1 1e-6));
    source = (fun t -> [| amplitude *. cos (2.0 *. pi *. freq *. t) |]);
    fast = None;
  }

let mpde_fixture ?(n1 = 8) ?(n2 = 6) dae =
  let shear = Mpde.Shear.make ~fast_freq:1e3 ~slow_freq:1e2 in
  let grid = Mpde.Grid.make ~shear ~n1 ~n2 in
  let system = Mpde.Assemble.of_dae dae in
  (system, grid)

let test_mpde_ladder_recovers () =
  let dae = stiff_dae ~amplitude:1e4 ~freq:1e3 in
  let system, grid = mpde_fixture dae in
  (* Plain Newton alone must fail on this problem… *)
  let bare =
    Mpde.Solver.solve
      ~options:{ Mpde.Solver.default_options with allow_continuation = false }
      system grid
  in
  Alcotest.(check bool) "plain newton fails" false bare.Mpde.Solver.stats.Mpde.Solver.converged;
  (* …and the full ladder must recover via a continuation rung. *)
  let sol = Mpde.Solver.solve system grid in
  let stats = sol.Mpde.Solver.stats in
  Alcotest.(check bool) "ladder recovers" true stats.Mpde.Solver.converged;
  Alcotest.(check bool) "via continuation" true
    (stats.Mpde.Solver.strategy = "source-ramp" || stats.Mpde.Solver.strategy = "ptc-ramp");
  Alcotest.(check bool) "report successful" true (Report.success sol.Mpde.Solver.report);
  (* The winning stage is recorded as the strategy in the report too. *)
  Alcotest.(check (option string)) "report strategy" (Some stats.Mpde.Solver.strategy)
    sol.Mpde.Solver.report.Report.strategy

let test_mpde_nan_poisoned_terminates () =
  (* Every f evaluation away from a tiny neighbourhood of 0 yields NaN:
     nothing can converge, but the solve must terminate with a
     structured failure report, not crash or hang. *)
  let f x = if Float.abs x < 1e-12 then 0.0 else nan in
  let dae =
    {
      Numeric.Dae.size = 1;
      eval_f = (fun x -> [| f x.(0) |]);
      eval_q = (fun x -> [| 1e-6 *. x.(0) |]);
      jacobians = (fun x -> (csr_1x1 (if Float.abs x.(0) < 1e-12 then 1.0 else nan), csr_1x1 1e-6));
      source = (fun t -> [| cos (2.0 *. pi *. 1e3 *. t) |]);
      fast = None;
    }
  in
  let system, grid = mpde_fixture dae in
  let sol = Mpde.Solver.solve system grid in
  Alcotest.(check bool) "not converged" false sol.Mpde.Solver.stats.Mpde.Solver.converged;
  (match sol.Mpde.Solver.report.Report.outcome with
  | Report.Failed _ | Report.Exhausted _ -> ()
  | Report.Converged -> Alcotest.fail "poisoned solve cannot report Converged");
  Alcotest.(check bool) "every stage recorded" true
    (List.length sol.Mpde.Solver.report.Report.stages >= 3)

let test_mpde_budget_exhaustion () =
  (* 40x30 grid (the paper's size) with a budget too small to finish:
     the solve must return quickly with a structured Exhausted report. *)
  let dae = stiff_dae ~amplitude:5.0 ~freq:1e3 in
  let shear = Mpde.Shear.make ~fast_freq:1e3 ~slow_freq:1e2 in
  let grid = Mpde.Grid.make ~shear ~n1:40 ~n2:30 in
  let system = Mpde.Assemble.of_dae dae in
  let t0 = Unix.gettimeofday () in
  let sol =
    Mpde.Solver.solve
      ~options:
        { Mpde.Solver.default_options with budget = Some (Budget.make ~max_newton:2 ()) }
      system grid
  in
  let wall = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "not converged" false sol.Mpde.Solver.stats.Mpde.Solver.converged;
  (match sol.Mpde.Solver.report.Report.outcome with
  | Report.Exhausted _ -> ()
  | o -> Alcotest.failf "expected Exhausted, got %s" (Report.outcome_to_string o));
  Alcotest.(check bool) "terminated promptly" true (wall < 30.0)

let test_mpde_wall_deadline () =
  let dae = stiff_dae ~amplitude:5.0 ~freq:1e3 in
  let system, grid = mpde_fixture dae in
  let sol =
    Mpde.Solver.solve
      ~options:
        {
          Mpde.Solver.default_options with
          budget = Some (Budget.make ~wall_seconds:1e-9 ());
        }
      system grid
  in
  match sol.Mpde.Solver.report.Report.outcome with
  | Report.Exhausted (Budget.Wall_clock _) -> ()
  | o -> Alcotest.failf "expected wall-clock exhaustion, got %s" (Report.outcome_to_string o)

(* ---------- Dcop on the ladder ---------- *)

let test_dcop_reports () =
  let { Circuits.mna; _ } =
    Circuits.diode_rectifier
      ~drive:(Circuit.Waveform.sine ~amplitude:2.0 ~freq:1e6 ())
      ()
  in
  let r = Circuit.Dcop.solve mna in
  Alcotest.(check bool) "converged" true r.Circuit.Dcop.converged;
  Alcotest.(check bool) "report success" true (Report.success r.Circuit.Dcop.resilience);
  Alcotest.(check bool) "stages listed" true
    (List.length r.Circuit.Dcop.resilience.Report.stages = 3)

let test_dcop_budget () =
  (* Cosine drive: the DC source is at full amplitude, so the operating
     point is nontrivial and Newton must actually iterate (a sine drive
     evaluates to zero at phase 0 and converges before any tick). *)
  let { Circuits.mna; _ } =
    Circuits.diode_rectifier
      ~drive:(Circuit.Waveform.cosine ~amplitude:2.0 ~freq:1e6 ())
      ()
  in
  let budget = Budget.make ~wall_seconds:1e-9 () in
  let r = Circuit.Dcop.solve ~budget mna in
  Alcotest.(check bool) "not converged" false r.Circuit.Dcop.converged;
  match r.Circuit.Dcop.resilience.Report.outcome with
  | Report.Exhausted _ -> ()
  | o -> Alcotest.failf "expected Exhausted, got %s" (Report.outcome_to_string o)

let () =
  Alcotest.run "resilience"
    [
      ( "guard",
        [
          Alcotest.test_case "scan attribution" `Quick test_guard_scan;
          Alcotest.test_case "clamp" `Quick test_guard_clamp;
        ] );
      ( "budget",
        [
          Alcotest.test_case "iteration caps" `Quick test_budget_iteration_caps;
          Alcotest.test_case "wall deadline tolerance" `Quick test_budget_wall_clock_tolerance;
          Alcotest.test_case "parent chain" `Quick test_budget_parent_chain;
        ] );
      ( "newton",
        [
          Alcotest.test_case "nan residual diverges fast" `Quick test_newton_diverged_on_nan;
          Alcotest.test_case "non-finite step rejected" `Quick test_newton_rejects_nonfinite_step;
          Alcotest.test_case "budget exhaustion" `Quick test_newton_budget_exhaustion;
        ] );
      ( "gmres",
        [
          Alcotest.test_case "happy breakdown" `Quick test_gmres_happy_breakdown;
          Alcotest.test_case "nan operator terminates" `Quick test_gmres_nan_operator_terminates;
          Alcotest.test_case "linear budget" `Quick test_gmres_budget;
        ] );
      ( "continuation",
        [
          Alcotest.test_case "total step cap" `Quick test_continuation_total_step_cap;
          Alcotest.test_case "budget" `Quick test_continuation_budget;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "order and skip" `Quick test_ladder_order_and_skip;
          Alcotest.test_case "budget stops climb" `Quick test_ladder_budget_stops_climb;
        ] );
      ( "report", [ Alcotest.test_case "json" `Quick test_report_json ] );
      ( "mpde",
        [
          Alcotest.test_case "ladder recovers stiff drive" `Quick test_mpde_ladder_recovers;
          Alcotest.test_case "nan poisoned terminates" `Quick test_mpde_nan_poisoned_terminates;
          Alcotest.test_case "budget on 40x30 grid" `Quick test_mpde_budget_exhaustion;
          Alcotest.test_case "wall deadline" `Quick test_mpde_wall_deadline;
        ] );
      ( "dcop",
        [
          Alcotest.test_case "structured report" `Quick test_dcop_reports;
          Alcotest.test_case "budget" `Quick test_dcop_budget;
        ] );
    ]
