module Vec = Linalg.Vec
module Mat = Linalg.Mat

type result = {
  segment_starts : Vec.t array;
  trace : Numeric.Integrator.trace;
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
}

(* Unknowns: the S window-start states stacked. Matching conditions:
   Φ_s(x_s) − x_{s+1 mod S} = 0, giving a block-cyclic Jacobian with
   window monodromies M_s on the diagonal band and −I on the
   super-diagonal (wrapping). Solved directly with the sparse LU —
   S·n stays small. *)
let solve ?(max_newton = 25) ?(tol = 1e-8) ?(steps_per_segment = 50) ?x0
    ~(dae : Numeric.Dae.t) ~period ~segments () =
  if segments < 1 then invalid_arg "Multiple_shooting.solve: segments must be positive";
  let n = dae.Numeric.Dae.size in
  let seed = match x0 with Some x -> x | None -> Array.make n 0.0 in
  let starts = Array.init segments (fun _ -> Array.copy seed) in
  let window = period /. float_of_int segments in
  let iterations = ref 0 in
  let converged = ref false in
  let residual = ref infinity in
  let last_traces = ref [||] in
  while (not !converged) && !iterations < max_newton do
    (* Integrate every window from its current start. *)
    let results =
      Array.mapi
        (fun s x0 ->
          Shooting.integrate_with_sensitivity ~dae ~x0
            ~t0:(float_of_int s *. window)
            ~duration:window ~steps:steps_per_segment)
        starts
    in
    last_traces := results;
    (* Matching defects. *)
    let defects =
      Array.init segments (fun s ->
          let trace, _ = results.(s) in
          let endpoint = trace.Numeric.Integrator.states.(steps_per_segment) in
          Vec.sub endpoint starts.((s + 1) mod segments))
    in
    residual :=
      Array.fold_left (fun acc d -> Float.max acc (Vec.norm_inf d)) 0.0 defects;
    if !residual <= tol then converged := true
    else begin
      let big = segments * n in
      let coo = Sparse.Coo.create ~capacity:(segments * n * (n + 1)) big big in
      let rhs = Array.make big 0.0 in
      Array.iteri
        (fun s (_, monodromy) ->
          let next = (s + 1) mod segments in
          for i = 0 to n - 1 do
            rhs.((s * n) + i) <- -.defects.(s).(i);
            Sparse.Coo.add coo ((s * n) + i) ((next * n) + i) (-1.0);
            for j = 0 to n - 1 do
              Sparse.Coo.add coo ((s * n) + i) ((s * n) + j) (Mat.get monodromy i j)
            done
          done)
        results;
      let delta = Sparse.Splu.solve (Sparse.Splu.factor (Sparse.Csr.of_coo coo)) rhs in
      Array.iteri
        (fun s x ->
          for i = 0 to n - 1 do
            x.(i) <- x.(i) +. delta.((s * n) + i)
          done)
        starts;
      incr iterations
    end
  done;
  (* Stitch the final windows into one period trace (recompute if the
     starts moved after the last integration). *)
  let results =
    if !converged then !last_traces
    else
      Array.mapi
        (fun s x0 ->
          Shooting.integrate_with_sensitivity ~dae ~x0
            ~t0:(float_of_int s *. window)
            ~duration:window ~steps:steps_per_segment)
        starts
  in
  let total = (segments * steps_per_segment) + 1 in
  let times = Array.make total 0.0 and states = Array.make total starts.(0) in
  Array.iteri
    (fun s (trace, _) ->
      for k = 0 to steps_per_segment do
        let idx = (s * steps_per_segment) + k in
        if idx < total then begin
          times.(idx) <- trace.Numeric.Integrator.times.(k);
          states.(idx) <- trace.Numeric.Integrator.states.(k)
        end
      done)
    results;
  {
    segment_starts = starts;
    trace = { Numeric.Integrator.times; states };
    newton_iterations = !iterations;
    converged = !converged;
    residual_norm = !residual;
  }
