lib/steady/shooting.mli: Linalg Numeric
