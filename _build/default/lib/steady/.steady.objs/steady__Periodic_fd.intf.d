lib/steady/periodic_fd.mli: Linalg Numeric
