lib/steady/periodic_fd.ml: Array Linalg Numeric Sparse
