lib/steady/multiple_shooting.mli: Linalg Numeric
