lib/steady/hb.mli: Linalg Numeric
