lib/steady/hb.ml: Array Linalg Numeric Sparse
