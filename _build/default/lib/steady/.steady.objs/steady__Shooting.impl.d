lib/steady/shooting.ml: Array Linalg Numeric Sparse
