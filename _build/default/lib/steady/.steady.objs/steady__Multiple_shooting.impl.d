lib/steady/multiple_shooting.ml: Array Float Linalg Numeric Shooting Sparse
