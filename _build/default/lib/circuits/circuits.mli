(** Ready-made example circuits shared by tests, examples and benches.
    Every builder returns the netlist and its assembled MNA system. *)

type built = { netlist : Circuit.Netlist.t; mna : Circuit.Mna.t }

val rc_lowpass : ?r:float -> ?c:float -> drive:Circuit.Waveform.t -> unit -> built
(** Series R into shunt C; input node ["in"], output node ["out"]. *)

val rlc_series : ?r:float -> ?l:float -> ?c:float -> drive:Circuit.Waveform.t -> unit -> built
(** Series RLC; voltage across the capacitor at ["out"]. *)

val diode_rectifier : ?load_r:float -> ?load_c:float -> drive:Circuit.Waveform.t -> unit -> built
(** Half-wave rectifier: diode into parallel RC; output ["out"]. *)

val bridge_rectifier :
  ?load_r:float -> ?load_c:float -> drive:Circuit.Waveform.t -> unit -> built
(** Full-wave diode bridge with a floating RC load between nodes
    ["p"] and ["n"]: [v(p) − v(n) ≈ |v_in| − 2·v_diode]. With a
    two-tone drive the load ripple beats at the difference frequency —
    the paper's “power conversion circuits” application. *)

val envelope_detector :
  ?load_r:float -> ?load_c:float -> f1:float -> f2:float -> amplitude:float -> unit -> built
(** Diode detector driven by the sum of two closely spaced tones —
    the canonical strongly nonlinear circuit whose output rides at the
    difference frequency. Output ["out"]. *)

val ideal_mixer :
  ?gain:float ->
  ?load_r:float ->
  ?load_c:float ->
  lo:Circuit.Waveform.t ->
  rf:Circuit.Waveform.t ->
  unit ->
  built
(** Behavioral multiplying mixer (paper §2's ideal mixing example,
    eq. (5)) with an RC IF load sized to keep the sum-frequency ripple
    small; output ["out"]. *)

type mixer_nodes = {
  out_plus : string;  (** drain of the RF+ device *)
  out_minus : string;
  source_node : string;  (** common source of the upper pair — Fig. 5's node *)
  lo_plus : string;
  lo_minus : string;
}

val balanced_mixer_nodes : mixer_nodes

val balanced_mixer :
  ?vdd:float ->
  ?load_r:float ->
  ?load_c:float ->
  ?lo_bias:float ->
  ?lo_amplitude:float ->
  ?rf_bias:float ->
  ?rf_amplitude:float ->
  f_lo:float ->
  rf_signal:Circuit.Waveform.t ->
  unit ->
  built
(** The paper's balanced LO-doubling down-conversion mixer (§3, after
    Zhang et al. [11]): a lower MOSFET pair driven by antiphase LO
    halves acts as a frequency doubler whose tail current feeds an
    upper differential pair carrying the RF signal; mixing against
    [2·f_lo] down-converts the RF to baseband at the differential
    drains. [rf_signal] is the *unit-amplitude* RF drive shape (a pure
    tone or a modulated bit stream); it is scaled by [rf_amplitude] and
    applied antisymmetrically around [rf_bias] to the two gates. *)

val unbalanced_mixer :
  ?vdd:float ->
  ?load_r:float ->
  ?load_c:float ->
  ?lo_bias:float ->
  ?lo_amplitude:float ->
  f_lo:float ->
  rf_signal:Circuit.Waveform.t ->
  rf_amplitude:float ->
  unit ->
  built
(** Single-MOSFET switching mixer: LO and RF summed at the gate, drain
    loaded with RC; output ["out"]. The simplest of the paper's
    “unbalanced switching mixer circuits”. *)

val gilbert_mixer_nodes : mixer_nodes

val gilbert_mixer :
  ?vcc:float ->
  ?load_r:float ->
  ?load_c:float ->
  ?lo_bias:float ->
  ?lo_amplitude:float ->
  ?rf_bias:float ->
  ?tail_r:float ->
  f_lo:float ->
  rf_signal:Circuit.Waveform.t ->
  rf_amplitude:float ->
  unit ->
  built
(** Classic six-BJT double-balanced Gilbert-cell mixer: a lower
    differential pair carries the RF, the upper cross-coupled quad is
    commutated by the LO, resistive loads develop the differential IF.
    Exercises the Ebers–Moll substrate in the MPDE path; the RF drive
    here sits at [f_lo + fd] (no internal doubling). *)

val paper_rf_bitstream :
  ?bits:bool array -> f_lo:float -> fd:float -> unit -> Circuit.Waveform.t * bool array
(** The paper's information-carrying tone (eq. (14)): a unit-amplitude
    carrier at [2·f_lo + fd] on-off modulated by a bit pattern whose
    symbol rate is [nbits · fd], so the pattern repeats exactly once
    per difference period. Returns the waveform and the bit pattern
    used (default: 6 bits of PRBS-7). *)
