type node = int

type t =
  | Resistor of { name : string; n_plus : node; n_minus : node; resistance : float }
  | Capacitor of { name : string; n_plus : node; n_minus : node; capacitance : float }
  | Inductor of { name : string; n_plus : node; n_minus : node; inductance : float }
  | Voltage_source of { name : string; n_plus : node; n_minus : node; waveform : Waveform.t }
  | Current_source of { name : string; n_plus : node; n_minus : node; waveform : Waveform.t }
  | Diode of { name : string; anode : node; cathode : node; params : Diode.params }
  | Mosfet of { name : string; drain : node; gate : node; source : node; params : Mosfet.params }
  | Bjt of { name : string; collector : node; base : node; emitter : node; params : Bjt.params }
  | Vccs of {
      name : string;
      out_plus : node;
      out_minus : node;
      in_plus : node;
      in_minus : node;
      gm : float;
    }
  | Multiplier of {
      name : string;
      out_plus : node;
      out_minus : node;
      a_plus : node;
      a_minus : node;
      b_plus : node;
      b_minus : node;
      gain : float;
    }

let name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Voltage_source { name; _ }
  | Current_source { name; _ }
  | Diode { name; _ }
  | Mosfet { name; _ }
  | Bjt { name; _ }
  | Vccs { name; _ }
  | Multiplier { name; _ } ->
      name

let needs_branch_current = function
  | Voltage_source _ | Inductor _ -> true
  | Resistor _ | Capacitor _ | Current_source _ | Diode _ | Mosfet _ | Bjt _ | Vccs _
  | Multiplier _ ->
      false

let nodes = function
  | Resistor { n_plus; n_minus; _ }
  | Capacitor { n_plus; n_minus; _ }
  | Inductor { n_plus; n_minus; _ }
  | Voltage_source { n_plus; n_minus; _ }
  | Current_source { n_plus; n_minus; _ } ->
      [ n_plus; n_minus ]
  | Diode { anode; cathode; _ } -> [ anode; cathode ]
  | Mosfet { drain; gate; source; _ } -> [ drain; gate; source ]
  | Bjt { collector; base; emitter; _ } -> [ collector; base; emitter ]
  | Vccs { out_plus; out_minus; in_plus; in_minus; _ } ->
      [ out_plus; out_minus; in_plus; in_minus ]
  | Multiplier { out_plus; out_minus; a_plus; a_minus; b_plus; b_minus; _ } ->
      [ out_plus; out_minus; a_plus; a_minus; b_plus; b_minus ]
