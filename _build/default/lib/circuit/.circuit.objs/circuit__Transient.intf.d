lib/circuit/transient.mli: Linalg Mna Numeric
