lib/circuit/ac.ml: Array Complex Dcop Device Float Linalg List Mna Netlist Numeric Printf Sparse
