lib/circuit/ac.mli: Complex Linalg Mna
