lib/circuit/bjt.ml: Diode
