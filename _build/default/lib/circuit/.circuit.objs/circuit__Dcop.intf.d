lib/circuit/dcop.mli: Linalg Mna Numeric
