lib/circuit/dcop.ml: Array Linalg Mna Numeric Sparse
