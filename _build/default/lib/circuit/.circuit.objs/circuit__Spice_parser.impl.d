lib/circuit/spice_parser.ml: Bjt Buffer Char Diode Hashtbl List Mosfet Netlist Option Printf String Waveform
