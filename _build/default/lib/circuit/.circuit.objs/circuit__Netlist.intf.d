lib/circuit/netlist.mli: Bjt Device Diode Mosfet Waveform
