lib/circuit/mna.mli: Linalg Netlist Numeric
