lib/circuit/waveform.mli:
