lib/circuit/mosfet.mli:
