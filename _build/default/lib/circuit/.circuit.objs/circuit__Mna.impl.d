lib/circuit/mna.ml: Array Bjt Device Diode List Mosfet Netlist Numeric Printf Sparse Waveform
