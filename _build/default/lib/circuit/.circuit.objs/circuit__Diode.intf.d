lib/circuit/diode.mli:
