lib/circuit/diode.ml:
