lib/circuit/netlist.ml: Array Device Hashtbl List Printf String
