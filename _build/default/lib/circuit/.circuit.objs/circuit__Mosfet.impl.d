lib/circuit/mosfet.ml:
