lib/circuit/device.mli: Bjt Diode Mosfet Waveform
