lib/circuit/device.ml: Bjt Diode Mosfet Waveform
