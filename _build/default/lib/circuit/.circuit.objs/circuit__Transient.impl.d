lib/circuit/transient.ml: Array Dcop Mna Numeric
