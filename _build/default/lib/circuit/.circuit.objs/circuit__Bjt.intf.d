lib/circuit/bjt.mli:
