type polarity = Nmos | Pmos

type params = {
  polarity : polarity;
  vt0 : float;
  kp : float;
  lambda : float;
  cgs : float;
  cgd : float;
  gds_min : float;
}

let default_nmos =
  { polarity = Nmos; vt0 = 0.5; kp = 2e-3; lambda = 0.02; cgs = 20e-15; cgd = 5e-15; gds_min = 1e-9 }

let default_pmos = { default_nmos with polarity = Pmos; vt0 = 0.5; kp = 1e-3 }

type operating_point = {
  ids : float;
  gm : float;
  gds : float;
  region : [ `Cutoff | `Triode | `Saturation ];
}

(* Square-law NMOS core for vds >= 0. *)
let nmos_forward p ~vgs ~vds =
  let vov = vgs -. p.vt0 in
  if vov <= 0.0 then { ids = 0.0; gm = 0.0; gds = 0.0; region = `Cutoff }
  else if vds < vov then begin
    let clm = 1.0 +. (p.lambda *. vds) in
    let raw = p.kp *. ((vov *. vds) -. (0.5 *. vds *. vds)) in
    {
      ids = raw *. clm;
      gm = p.kp *. vds *. clm;
      gds = (p.kp *. (vov -. vds) *. clm) +. (raw *. p.lambda);
      region = `Triode;
    }
  end
  else begin
    let clm = 1.0 +. (p.lambda *. vds) in
    let raw = 0.5 *. p.kp *. vov *. vov in
    {
      ids = raw *. clm;
      gm = p.kp *. vov *. clm;
      gds = raw *. p.lambda;
      region = `Saturation;
    }
  end

(* vds < 0: exchange drain and source. With vgs' = vgs - vds and
   vds' = -vds, the physical drain current is -f(vgs', vds') and the
   chain rule gives gm = -gm', gds = gm' + gds'. *)
let nmos_any p ~vgs ~vds =
  if vds >= 0.0 then nmos_forward p ~vgs ~vds
  else begin
    let op = nmos_forward p ~vgs:(vgs -. vds) ~vds:(-.vds) in
    { ids = -.op.ids; gm = -.op.gm; gds = op.gm +. op.gds; region = op.region }
  end

let evaluate p ~vgs ~vds =
  let op =
    match p.polarity with
    | Nmos -> nmos_any p ~vgs ~vds
    | Pmos ->
        (* ids_p(vgs, vds) = -ids_n(-vgs, -vds); derivatives keep sign. *)
        let op = nmos_any p ~vgs:(-.vgs) ~vds:(-.vds) in
        { op with ids = -.op.ids }
  in
  { op with ids = op.ids +. (p.gds_min *. vds); gds = op.gds +. p.gds_min }
