(** Netlist builder: interns symbolic node names and accumulates
    devices. The ground node is ["0"] (or ["gnd"], an alias). *)

type t

val create : unit -> t

val node : t -> string -> Device.node
(** Look up or create the node named [s]; ["0"] and ["gnd"] intern to
    the ground node [0]. *)

val add : t -> Device.t -> unit
(** @raise Invalid_argument on duplicate device names. *)

val devices : t -> Device.t list
(** In insertion order. *)

val num_nodes : t -> int
(** Number of non-ground nodes created so far. *)

val node_name : t -> Device.node -> string

val find_node : t -> string -> Device.node option

(** {1 Convenience builders} — each interns its node names and adds the
    device, returning [()] so netlists read like SPICE decks. *)

val resistor : t -> string -> string -> string -> float -> unit

val capacitor : t -> string -> string -> string -> float -> unit

val inductor : t -> string -> string -> string -> float -> unit

val vsource : t -> string -> string -> string -> Waveform.t -> unit

val isource : t -> string -> string -> string -> Waveform.t -> unit

val diode : t -> string -> string -> string -> Diode.params -> unit

val mosfet : t -> string -> drain:string -> gate:string -> source:string -> Mosfet.params -> unit

val bjt : t -> string -> collector:string -> base:string -> emitter:string -> Bjt.params -> unit

val vccs : t -> string -> out_plus:string -> out_minus:string -> in_plus:string -> in_minus:string -> float -> unit

val multiplier :
  t ->
  string ->
  out_plus:string ->
  out_minus:string ->
  a_plus:string ->
  a_minus:string ->
  b_plus:string ->
  b_minus:string ->
  float ->
  unit
