(** Level-1 (Shichman–Hodges) MOSFET with channel-length modulation and
    fixed gate capacitances; bulk is tied to the source internally.
    Handles both operation quadrants by drain/source symmetry, the
    behaviour the paper's switching mixers rely on. *)

type polarity = Nmos | Pmos

type params = {
  polarity : polarity;
  vt0 : float;  (** threshold voltage (positive for NMOS) *)
  kp : float;  (** transconductance [k' · W/L], A/V² *)
  lambda : float;  (** channel-length modulation, 1/V *)
  cgs : float;  (** fixed gate-source capacitance, F *)
  cgd : float;  (** fixed gate-drain capacitance, F *)
  gds_min : float;  (** minimum drain-source conductance *)
}

val default_nmos : params
val default_pmos : params

type operating_point = {
  ids : float;  (** drain current (into the drain) *)
  gm : float;  (** ∂ids/∂vgs *)
  gds : float;  (** ∂ids/∂vds *)
  region : [ `Cutoff | `Triode | `Saturation ];
}

val evaluate : params -> vgs:float -> vds:float -> operating_point
(** Large-signal evaluation with consistent derivatives; for [vds < 0]
    (NMOS) the device is evaluated with drain and source exchanged and
    the appropriate chain rule applied. *)
