(** Shockley diode model with exponential overflow protection and a
    parallel minimum conductance for Newton robustness. *)

type params = {
  saturation_current : float;  (** Is, amperes *)
  ideality : float;  (** emission coefficient n *)
  junction_cap : float;  (** fixed small-signal capacitance, farads *)
  gmin : float;  (** parallel leakage conductance *)
}

val default : params
(** Is = 1e-14 A, n = 1, cj = 0, gmin = 1e-12. *)

val thermal_voltage : float
(** kT/q at 300 K. *)

val current : params -> float -> float
(** [current p v] is the anode-to-cathode current at junction voltage
    [v]. Above the critical voltage the exponential is continued
    linearly (first-order Taylor) so Newton never overflows. *)

val conductance : params -> float -> float
(** d(current)/dv — consistent with {!current}'s linear continuation. *)

val charge : params -> float -> float
