(** DC operating point: solves [f(x) = b(0)] (charge terms quiescent)
    with Newton, falling back to gmin stepping and then source stepping
    — the standard SPICE convergence ladder, and the circuit-level
    incarnation of the paper's homotopy/continuation remark. *)

type report = {
  x : Linalg.Vec.t;
  converged : bool;
  strategy : [ `Newton | `Gmin_stepping | `Source_stepping ];
  newton_iterations : int;
}

val solve : ?newton_options:Numeric.Newton.options -> ?x0:Linalg.Vec.t -> Mna.t -> report

val solve_exn : ?newton_options:Numeric.Newton.options -> ?x0:Linalg.Vec.t -> Mna.t -> Linalg.Vec.t
(** @raise Failure when no strategy converges. *)
