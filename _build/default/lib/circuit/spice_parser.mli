(** Parser for a practical subset of SPICE netlists, so decks can be
    fed to the simulator without writing OCaml.

    Supported elements (one per line, [*] comments, [+] continuations,
    [;] trailing comments, case-insensitive):

    - [Rxxx n+ n- value]
    - [Cxxx n+ n- value]
    - [Lxxx n+ n- value]
    - [Vxxx n+ n- [DC v] [SIN(voff vamp freq)] [PULSE(v1 v2 td tr tf pw per)]]
    - [Ixxx n+ n- …] (same source syntax)
    - [Dxxx a c [model]]
    - [Mxxx d g s [b] model] (bulk, when present, is ignored — the
      level-1 model ties it to the source)
    - [Qxxx c b e model]
    - [Gxxx out+ out- in+ in- gm] (VCCS)
    - [.model name D(is=… n=… cjo=…)]
    - [.model name NMOS(vto=… kp=… lambda=… cgs=… cgd=…)] (also PMOS)
    - [.model name NPN(is=… bf=… br=… cbe=… cbc=…)] (also PNP)
    - [.end]

    Engineering suffixes are understood: f p n u m k meg g t.
    Unknown dot-directives are skipped and reported as warnings. *)

exception Parse_error of { line : int; message : string }

type deck = {
  title : string;
  netlist : Netlist.t;
  warnings : string list;  (** skipped directives etc. *)
}

val parse_string : string -> deck
(** @raise Parse_error on malformed input. Per SPICE convention the
    first line is always the title; start the deck with a blank or
    comment line if no title is wanted. *)

val parse_value : string -> float option
(** Parse one SPICE number with optional engineering suffix
    ([1k] → [1000.], [2.2u] → [2.2e-6], [100meg] → [1e8]). *)
