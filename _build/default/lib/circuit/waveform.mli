(** Source waveforms with both one-time and multi-time evaluation.

    A waveform is a DC offset plus a sum of terms; each term is a gain
    times a *product* of periodic factors, each factor being a
    normalized period-1 shape driven at its own frequency. This
    product-of-periodic-factors form is exactly what the MPDE needs: the
    multi-time (sheared) evaluation of paper eqs. (11)–(14) is obtained
    by substituting each factor's phase [f·t] with the sheared phase
    supplied by the caller (see {!eval_with}).

    Example: the paper's information-carrying tone (eq. (14)) — a
    bit-stream-modulated carrier — is one term with two factors: a
    cosine at the carrier frequency and an NRZ bit shape at the pattern
    repetition frequency. *)

type periodic =
  | Sin of { phase : float }  (** [sin (2π (θ + phase))] *)
  | Cos of { phase : float }
  | Trapezoid of {
      low : float;
      high : float;
      delay_frac : float;
      rise_frac : float;
      high_frac : float;
      fall_frac : float;
    }  (** SPICE-PULSE-like shape over one normalized period *)
  | Bits of { bits : bool array; low : float; high : float; transition_frac : float }
      (** NRZ symbol stream; one period spans the whole pattern;
          transitions are smoothed with a raised-cosine ramp over
          [transition_frac] of a symbol *)
  | Sampled of float array  (** arbitrary periodic shape, linear interpolation *)

type factor = { shape : periodic; freq : float }

type term = { gain : float; factors : factor list }

type t = { dc : float; terms : term list }

val eval_periodic : periodic -> float -> float
(** Evaluate a normalized shape at phase [θ] (any real; period 1). *)

val eval : t -> float -> float
(** One-time evaluation [w(t)]. *)

val eval_with : phase_of:(float -> float) -> t -> float
(** [eval_with ~phase_of w] evaluates each factor's shape at
    [phase_of freq] instead of [freq *. t]. This is the hook through
    which the MPDE shear substitutes difference-frequency time scales. *)

val frequencies : t -> float list
(** All distinct factor frequencies (unsorted, duplicates removed). *)

(** {1 Constructors} *)

val dc : float -> t

val sine : ?offset:float -> ?phase:float -> amplitude:float -> freq:float -> unit -> t

val cosine : ?offset:float -> ?phase:float -> amplitude:float -> freq:float -> unit -> t

val pulse :
  ?delay_frac:float ->
  ?rise_frac:float ->
  ?fall_frac:float ->
  low:float ->
  high:float ->
  duty:float ->
  freq:float ->
  unit ->
  t

val bit_stream :
  ?transition_frac:float ->
  ?low:float ->
  bits:bool array ->
  symbol_freq:float ->
  high:float ->
  unit ->
  t
(** Baseband NRZ stream; the pattern repeats at [symbol_freq / nbits]. *)

val modulated_carrier :
  ?carrier_phase:float ->
  ?transition_frac:float ->
  ?low:float ->
  amplitude:float ->
  carrier_freq:float ->
  bits:bool array ->
  symbol_freq:float ->
  unit ->
  t
(** On-off-keyed carrier: [amplitude · cos(2π f_c t) · bits(t)] — the
    paper's eq. (14) drive ([low] defaults to 0, i.e. OOK; set
    [low = -1.] for BPSK-like antipodal modulation). *)

val sum : t -> t -> t

val scale : float -> t -> t
