(** Bipolar junction transistor, Ebers–Moll transport model with
    overflow-protected junction exponentials and fixed junction
    capacitances. Extends the substrate beyond MOS switching circuits
    (e.g. classic diode-ring/BJT Gilbert mixers). *)

type polarity = Npn | Pnp

type params = {
  polarity : polarity;
  saturation_current : float;  (** transport saturation current Is *)
  beta_forward : float;
  beta_reverse : float;
  cbe : float;  (** fixed base-emitter capacitance *)
  cbc : float;
  gmin : float;  (** parallel conductance on each junction *)
}

val default_npn : params
val default_pnp : params

type operating_point = {
  ic : float;  (** current into the collector *)
  ib : float;  (** current into the base *)
  ie : float;  (** current into the emitter ([−(ic+ib)]) *)
  (* conductances: d i_X / d v_Y with emitter as reference *)
  d_ic_d_vbe : float;
  d_ic_d_vbc : float;
  d_ib_d_vbe : float;
  d_ib_d_vbc : float;
}

val evaluate : params -> vbe:float -> vbc:float -> operating_point
