type periodic =
  | Sin of { phase : float }
  | Cos of { phase : float }
  | Trapezoid of {
      low : float;
      high : float;
      delay_frac : float;
      rise_frac : float;
      high_frac : float;
      fall_frac : float;
    }
  | Bits of { bits : bool array; low : float; high : float; transition_frac : float }
  | Sampled of float array

type factor = { shape : periodic; freq : float }
type term = { gain : float; factors : factor list }
type t = { dc : float; terms : term list }

let two_pi = 8.0 *. atan 1.0

let frac theta =
  let f = Float.rem theta 1.0 in
  if f < 0.0 then f +. 1.0 else f

(* Smooth raised-cosine ramp from 0 to 1 over w ∈ [0, 1]. *)
let smooth w = 0.5 *. (1.0 -. cos (w *. (two_pi /. 2.0)))

let eval_periodic shape theta =
  match shape with
  | Sin { phase } -> sin (two_pi *. (theta +. phase))
  | Cos { phase } -> cos (two_pi *. (theta +. phase))
  | Trapezoid { low; high; delay_frac; rise_frac; high_frac; fall_frac } ->
      let u = frac theta in
      let t1 = delay_frac in
      let t2 = t1 +. rise_frac in
      let t3 = t2 +. high_frac in
      let t4 = t3 +. fall_frac in
      if u < t1 then low
      else if u < t2 then low +. ((high -. low) *. ((u -. t1) /. Float.max rise_frac 1e-12))
      else if u < t3 then high
      else if u < t4 then high -. ((high -. low) *. ((u -. t3) /. Float.max fall_frac 1e-12))
      else low
  | Bits { bits; low; high; transition_frac } ->
      let n = Array.length bits in
      if n = 0 then low
      else begin
        let u = frac theta *. float_of_int n in
        let k = min (n - 1) (int_of_float u) in
        let w = u -. float_of_int k in
        let level b = if b then high else low in
        let current = level bits.(k) in
        if transition_frac <= 0.0 then current
        else if w < transition_frac then begin
          (* Blend from the previous symbol across the boundary. *)
          let prev = level bits.((k + n - 1) mod n) in
          prev +. ((current -. prev) *. smooth (w /. transition_frac))
        end
        else current
      end
  | Sampled samples -> Numeric.Interp.linear_periodic samples theta

let eval_with ~phase_of w =
  let term_value { gain; factors } =
    List.fold_left
      (fun acc { shape; freq } -> acc *. eval_periodic shape (phase_of freq))
      gain factors
  in
  List.fold_left (fun acc term -> acc +. term_value term) w.dc w.terms

let eval w t = eval_with ~phase_of:(fun freq -> freq *. t) w

let frequencies w =
  let add acc f = if List.mem f acc then acc else f :: acc in
  List.fold_left
    (fun acc { factors; _ } ->
      List.fold_left (fun acc { freq; _ } -> add acc freq) acc factors)
    [] w.terms

let dc v = { dc = v; terms = [] }

let sine ?(offset = 0.0) ?(phase = 0.0) ~amplitude ~freq () =
  { dc = offset; terms = [ { gain = amplitude; factors = [ { shape = Sin { phase }; freq } ] } ] }

let cosine ?(offset = 0.0) ?(phase = 0.0) ~amplitude ~freq () =
  { dc = offset; terms = [ { gain = amplitude; factors = [ { shape = Cos { phase }; freq } ] } ] }

let pulse ?(delay_frac = 0.0) ?(rise_frac = 0.01) ?(fall_frac = 0.01) ~low ~high ~duty
    ~freq () =
  let high_frac = Float.max 0.0 (duty -. rise_frac) in
  {
    dc = 0.0;
    terms =
      [
        {
          gain = 1.0;
          factors =
            [ { shape = Trapezoid { low; high; delay_frac; rise_frac; high_frac; fall_frac }; freq } ];
        };
      ];
  }

let bit_stream ?(transition_frac = 0.05) ?(low = 0.0) ~bits ~symbol_freq ~high () =
  let n = max 1 (Array.length bits) in
  let pattern_freq = symbol_freq /. float_of_int n in
  {
    dc = 0.0;
    terms =
      [
        {
          gain = 1.0;
          factors = [ { shape = Bits { bits; low; high; transition_frac }; freq = pattern_freq } ];
        };
      ];
  }

let modulated_carrier ?(carrier_phase = 0.0) ?(transition_frac = 0.05) ?(low = 0.0)
    ~amplitude ~carrier_freq ~bits ~symbol_freq () =
  let n = max 1 (Array.length bits) in
  let pattern_freq = symbol_freq /. float_of_int n in
  {
    dc = 0.0;
    terms =
      [
        {
          gain = amplitude;
          factors =
            [
              { shape = Cos { phase = carrier_phase }; freq = carrier_freq };
              { shape = Bits { bits; low; high = 1.0; transition_frac }; freq = pattern_freq };
            ];
        };
      ];
  }

let sum a b = { dc = a.dc +. b.dc; terms = a.terms @ b.terms }

let scale s w =
  { dc = s *. w.dc; terms = List.map (fun t -> { t with gain = s *. t.gain }) w.terms }
