type params = {
  saturation_current : float;
  ideality : float;
  junction_cap : float;
  gmin : float;
}

let thermal_voltage = 0.025852

let default =
  { saturation_current = 1e-14; ideality = 1.0; junction_cap = 0.0; gmin = 1e-12 }

(* Linear continuation above v_crit keeps the exponential bounded while
   preserving C¹ continuity, the standard SPICE junction treatment. *)
let v_crit p = p.ideality *. thermal_voltage *. 40.0

let current p v =
  let vt = p.ideality *. thermal_voltage in
  let vc = v_crit p in
  let core =
    if v <= vc then p.saturation_current *. (exp (v /. vt) -. 1.0)
    else begin
      let e = exp (vc /. vt) in
      p.saturation_current *. ((e -. 1.0) +. (e /. vt *. (v -. vc)))
    end
  in
  core +. (p.gmin *. v)

let conductance p v =
  let vt = p.ideality *. thermal_voltage in
  let vc = v_crit p in
  let core =
    if v <= vc then p.saturation_current /. vt *. exp (v /. vt)
    else p.saturation_current /. vt *. exp (vc /. vt)
  in
  core +. p.gmin

let charge p v = p.junction_cap *. v
