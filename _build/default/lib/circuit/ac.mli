(** Small-signal AC analysis: linearize the circuit at its DC operating
    point and solve [(G + jωC) X(ω) = B] over a frequency sweep, where
    [B] collects unit-amplitude phasors from the designated AC sources.
    Useful for verifying filter substrates (pole positions, resonances)
    against the large-signal steady-state methods. *)

type sweep = Linear of { f_start : float; f_stop : float; points : int }
           | Decade of { f_start : float; f_stop : float; points_per_decade : int }

type result = {
  freqs : float array;
  response : Linalg.Cvec.t array;  (** per frequency, full unknown vector *)
}

val frequencies : sweep -> float array

val analyze :
  ?x_op:Linalg.Vec.t ->
  ?ac_sources:string list ->
  Mna.t ->
  sweep ->
  result
(** [analyze mna sweep] computes the AC response. [x_op] defaults to a
    freshly computed DC operating point. [ac_sources] names the
    voltage/current sources that carry a unit AC amplitude (default:
    all independent sources). @raise Failure if the DC point cannot be
    found. *)

val node_response : Mna.t -> result -> string -> Complex.t array

val magnitude_db : Complex.t array -> float array

val phase_deg : Complex.t array -> float array
