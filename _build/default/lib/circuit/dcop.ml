module Newton = Numeric.Newton

type report = {
  x : Linalg.Vec.t;
  converged : bool;
  strategy : [ `Newton | `Gmin_stepping | `Source_stepping ];
  newton_iterations : int;
}

(* DC problem at source scaling [source_scale] with extra gmin loading
   [extra_gmin] on the node rows. *)
let dc_problem mna ~source_scale ~extra_gmin =
  let nodes = Mna.num_nodes mna in
  let b0 = Mna.source_with mna ~phase_of:(fun _ -> 0.0) in
  let residual x =
    let f = (Mna.dae mna).Numeric.Dae.eval_f x in
    Array.init (Mna.size mna) (fun i ->
        let load = if i < nodes then extra_gmin *. x.(i) else 0.0 in
        f.(i) +. load -. (source_scale *. b0.(i)))
  in
  let solve_linearized x r =
    let g, _ = (Mna.dae mna).Numeric.Dae.jacobians x in
    let n = Mna.size mna in
    let coo = Sparse.Coo.create ~capacity:(Sparse.Csr.nnz g + n) n n in
    for i = 0 to n - 1 do
      Sparse.Csr.iter_row g i (fun j v -> Sparse.Coo.add coo i j v);
      if i < nodes then Sparse.Coo.add coo i i extra_gmin
    done;
    Sparse.Splu.solve (Sparse.Splu.factor (Sparse.Csr.of_coo coo)) r
  in
  { Newton.residual; solve_linearized }

let solve ?(newton_options = Newton.default_options) ?x0 mna =
  let x0 = match x0 with Some x -> x | None -> Array.make (Mna.size mna) 0.0 in
  let total_iters = ref 0 in
  let attempt ~source_scale ~extra_gmin guess =
    let x, stats =
      Newton.solve ~options:newton_options (dc_problem mna ~source_scale ~extra_gmin) guess
    in
    total_iters := !total_iters + stats.Newton.iterations;
    if Newton.converged stats then Some x else None
  in
  match attempt ~source_scale:1.0 ~extra_gmin:0.0 x0 with
  | Some x ->
      { x; converged = true; strategy = `Newton; newton_iterations = !total_iters }
  | None -> begin
      (* Gmin stepping: decade ladder from strong loading down to none. *)
      let rec gmin_ladder gmin guess =
        if gmin < 1e-13 then attempt ~source_scale:1.0 ~extra_gmin:0.0 guess
        else
          match attempt ~source_scale:1.0 ~extra_gmin:gmin guess with
          | Some x -> gmin_ladder (gmin /. 10.0) x
          | None -> None
      in
      match gmin_ladder 1e-2 x0 with
      | Some x ->
          { x; converged = true; strategy = `Gmin_stepping; newton_iterations = !total_iters }
      | None -> begin
          let problem_at lambda = dc_problem mna ~source_scale:lambda ~extra_gmin:0.0 in
          let x, stats =
            Numeric.Continuation.trace ~newton_options ~problem_at ~x0 ()
          in
          total_iters := !total_iters + stats.Numeric.Continuation.newton_iterations;
          {
            x;
            converged = stats.Numeric.Continuation.converged;
            strategy = `Source_stepping;
            newton_iterations = !total_iters;
          }
        end
    end

let solve_exn ?newton_options ?x0 mna =
  let r = solve ?newton_options ?x0 mna in
  if r.converged then r.x else failwith "Dcop.solve_exn: no DC operating point found"
