(** Circuit elements. Nodes are integers with [0] denoting ground;
    {!Netlist} interns symbolic names to indices. *)

type node = int

type t =
  | Resistor of { name : string; n_plus : node; n_minus : node; resistance : float }
  | Capacitor of { name : string; n_plus : node; n_minus : node; capacitance : float }
  | Inductor of { name : string; n_plus : node; n_minus : node; inductance : float }
  | Voltage_source of { name : string; n_plus : node; n_minus : node; waveform : Waveform.t }
  | Current_source of { name : string; n_plus : node; n_minus : node; waveform : Waveform.t }
      (** current flows from [n_plus] through the source to [n_minus] *)
  | Diode of { name : string; anode : node; cathode : node; params : Diode.params }
  | Mosfet of { name : string; drain : node; gate : node; source : node; params : Mosfet.params }
  | Bjt of { name : string; collector : node; base : node; emitter : node; params : Bjt.params }
  | Vccs of {
      name : string;
      out_plus : node;
      out_minus : node;
      in_plus : node;
      in_minus : node;
      gm : float;
    }  (** [i(out+ → out−) = gm · (v_in+ − v_in−)] *)
  | Multiplier of {
      name : string;
      out_plus : node;
      out_minus : node;
      a_plus : node;
      a_minus : node;
      b_plus : node;
      b_minus : node;
      gain : float;
    }  (** behavioral mixer core: [i(out+ → out−) = gain · v_a · v_b] *)

val name : t -> string

val needs_branch_current : t -> bool
(** True for devices that add an MNA branch-current unknown
    (voltage sources and inductors). *)

val nodes : t -> node list
