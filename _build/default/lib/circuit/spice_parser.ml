exception Parse_error of { line : int; message : string }

type deck = { title : string; netlist : Netlist.t; warnings : string list }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ---------- lexical helpers ---------- *)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Join continuation lines ('+' in column one) onto their parent,
   keeping original line numbers for error reporting. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let _, acc =
    List.fold_left
      (fun (lineno, acc) raw_line ->
        let line = strip_comment raw_line in
        let trimmed = String.trim line in
        let lineno = lineno + 1 in
        if trimmed = "" || trimmed.[0] = '*' then (lineno, acc)
        else if trimmed.[0] = '+' then begin
          match acc with
          | [] -> fail lineno "continuation line with nothing to continue"
          | (n, prev) :: rest ->
              (lineno, (n, prev ^ " " ^ String.sub trimmed 1 (String.length trimmed - 1)) :: rest)
        end
        else (lineno, (lineno, trimmed) :: acc))
      (0, []) raw
  in
  List.rev acc

(* Tokenize, keeping parenthesized groups attached to the preceding
   keyword: "SIN(0 1 1k)" -> ["SIN"; "("; "0"; "1"; "1k"; ")"]. *)
let tokenize s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | ',' | '\r' -> flush ()
      | '(' | ')' | '=' ->
          flush ();
          out := String.make 1 ch :: !out
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

let parse_value token =
  let token = String.lowercase_ascii token in
  let n = String.length token in
  if n = 0 then None
  else begin
    (* split numeric prefix from alphabetic suffix *)
    let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' in
    (* 'e' is ambiguous (exponent vs suffix); scan a proper float prefix *)
    let i = ref 0 in
    let saw_digit = ref false in
    let continue_scan = ref true in
    while !continue_scan && !i < n do
      let c = token.[!i] in
      if c >= '0' && c <= '9' then begin
        saw_digit := true;
        incr i
      end
      else if (c = '.' || c = '-' || c = '+') && is_num c then incr i
      else if c = 'e' && !saw_digit
              && !i + 1 < n
              && (let d = token.[!i + 1] in
                  (d >= '0' && d <= '9') || d = '-' || d = '+')
      then incr i
      else continue_scan := false
    done;
    let prefix = String.sub token 0 !i in
    let suffix = String.sub token !i (n - !i) in
    match float_of_string_opt prefix with
    | None -> None
    | Some base ->
        let scale =
          match suffix with
          | "" -> Some 1.0
          | "f" -> Some 1e-15
          | "p" -> Some 1e-12
          | "n" -> Some 1e-9
          | "u" -> Some 1e-6
          | "m" -> Some 1e-3
          | "k" -> Some 1e3
          | "meg" -> Some 1e6
          | "g" -> Some 1e9
          | "t" -> Some 1e12
          | s when String.length s > 0 && s.[0] = 'v' -> Some 1.0 (* unit tags: 5v *)
          | s when String.length s > 0 && s.[0] = 'a' -> Some 1.0
          | _ -> None
        in
        Option.map (fun sc -> base *. sc) scale
  end

let value_exn line token =
  match parse_value token with
  | Some v -> v
  | None -> fail line "cannot parse value %S" token

(* ---------- model table ---------- *)

type model =
  | Diode_model of Diode.params
  | Nmos_model of Mosfet.params
  | Npn_model of Bjt.params

let model_params line tokens =
  (* tokens: after '(' up to ')': name = value ... *)
  let rec go acc = function
    | [] | ")" :: _ -> acc
    | name :: "=" :: v :: rest -> go ((String.lowercase_ascii name, value_exn line v) :: acc) rest
    | t :: _ -> fail line "malformed .model parameter near %S" t
  in
  go [] tokens

let build_model line kind params =
  let find name default = match List.assoc_opt name params with Some v -> v | None -> default in
  match String.lowercase_ascii kind with
  | "d" ->
      Diode_model
        {
          Diode.saturation_current = find "is" Diode.default.Diode.saturation_current;
          ideality = find "n" Diode.default.Diode.ideality;
          junction_cap = find "cjo" Diode.default.Diode.junction_cap;
          gmin = find "gmin" Diode.default.Diode.gmin;
        }
  | "nmos" | "pmos" ->
      let base =
        if String.lowercase_ascii kind = "nmos" then Mosfet.default_nmos
        else Mosfet.default_pmos
      in
      Nmos_model
        {
          base with
          Mosfet.vt0 = find "vto" base.Mosfet.vt0;
          kp = find "kp" base.Mosfet.kp;
          lambda = find "lambda" base.Mosfet.lambda;
          cgs = find "cgs" base.Mosfet.cgs;
          cgd = find "cgd" base.Mosfet.cgd;
        }
  | "npn" | "pnp" ->
      let base = if String.lowercase_ascii kind = "npn" then Bjt.default_npn else Bjt.default_pnp in
      Npn_model
        {
          base with
          Bjt.saturation_current = find "is" base.Bjt.saturation_current;
          beta_forward = find "bf" base.Bjt.beta_forward;
          beta_reverse = find "br" base.Bjt.beta_reverse;
          cbe = find "cbe" base.Bjt.cbe;
          cbc = find "cbc" base.Bjt.cbc;
        }
  | other -> fail line "unknown model kind %S" other

(* ---------- source expressions ---------- *)

(* DC v | SIN(voff vamp freq) | PULSE(v1 v2 td tr tf pw per); several
   clauses may be combined (DC + SIN). *)
let parse_source line tokens =
  let rec go wave = function
    | [] -> wave
    | "dc" :: v :: rest -> go (Waveform.sum wave (Waveform.dc (value_exn line v))) rest
    | "sin" :: "(" :: voff :: vamp :: freq :: rest ->
        let rest = match rest with ")" :: r -> r | r -> r in
        let w =
          Waveform.sine ~offset:(value_exn line voff) ~amplitude:(value_exn line vamp)
            ~freq:(value_exn line freq) ()
        in
        go (Waveform.sum wave w) rest
    | "pulse" :: "(" :: v1 :: v2 :: td :: tr :: tf :: pw :: per :: rest ->
        let rest = match rest with ")" :: r -> r | r -> r in
        let period = value_exn line per in
        if period <= 0.0 then fail line "PULSE needs a positive period";
        let frac x = value_exn line x /. period in
        let w =
          {
            Waveform.dc = 0.0;
            terms =
              [
                {
                  Waveform.gain = 1.0;
                  factors =
                    [
                      {
                        Waveform.shape =
                          Waveform.Trapezoid
                            {
                              low = value_exn line v1;
                              high = value_exn line v2;
                              delay_frac = frac td;
                              rise_frac = frac tr;
                              high_frac = frac pw;
                              fall_frac = frac tf;
                            };
                        freq = 1.0 /. period;
                      };
                    ];
                };
              ];
          }
        in
        go (Waveform.sum wave w) rest
    | [ v ] when parse_value v <> None ->
        (* bare value = DC *)
        Waveform.sum wave (Waveform.dc (value_exn line v))
    | t :: _ -> fail line "unsupported source expression near %S" t
  in
  go (Waveform.dc 0.0) (List.map String.lowercase_ascii tokens)

(* ---------- element lines ---------- *)

let parse_deck_lines lines =
  let netlist = Netlist.create () in
  let warnings = ref [] in
  let models : (string, model) Hashtbl.t = Hashtbl.create 8 in
  (* First pass: models (so elements can reference them regardless of
     order). *)
  List.iter
    (fun (line, text) ->
      match tokenize text with
      | directive :: name :: rest when String.lowercase_ascii directive = ".model" -> begin
          match rest with
          | kind :: "(" :: params ->
              Hashtbl.replace models (String.lowercase_ascii name)
                (build_model line kind (model_params line params))
          | [ kind ] ->
              Hashtbl.replace models (String.lowercase_ascii name)
                (build_model line kind [])
          | _ -> fail line "malformed .model"
        end
      | _ -> ())
    lines;
  let diode_model line = function
    | None -> Diode.default
    | Some name -> (
        match Hashtbl.find_opt models (String.lowercase_ascii name) with
        | Some (Diode_model p) -> p
        | Some _ -> fail line "model %S is not a diode model" name
        | None -> fail line "unknown model %S" name)
  in
  let mos_model line name =
    match Hashtbl.find_opt models (String.lowercase_ascii name) with
    | Some (Nmos_model p) -> p
    | Some _ -> fail line "model %S is not a MOS model" name
    | None -> fail line "unknown model %S" name
  in
  let bjt_model line name =
    match Hashtbl.find_opt models (String.lowercase_ascii name) with
    | Some (Npn_model p) -> p
    | Some _ -> fail line "model %S is not a BJT model" name
    | None -> fail line "unknown model %S" name
  in
  List.iter
    (fun (line, text) ->
      match tokenize text with
      | [] -> ()
      | name :: rest -> (
          let kind = Char.lowercase_ascii name.[0] in
          match (kind, rest) with
          | '.', _ -> begin
              match String.lowercase_ascii name with
              | ".model" | ".end" -> ()
              | other -> warnings := Printf.sprintf "line %d: directive %s skipped" line other :: !warnings
            end
          | 'r', [ np; nm; v ] -> Netlist.resistor netlist name np nm (value_exn line v)
          | 'c', [ np; nm; v ] -> Netlist.capacitor netlist name np nm (value_exn line v)
          | 'l', [ np; nm; v ] -> Netlist.inductor netlist name np nm (value_exn line v)
          | 'v', np :: nm :: source -> Netlist.vsource netlist name np nm (parse_source line source)
          | 'i', np :: nm :: source -> Netlist.isource netlist name np nm (parse_source line source)
          | 'd', [ a; c ] -> Netlist.diode netlist name a c (diode_model line None)
          | 'd', [ a; c; model ] -> Netlist.diode netlist name a c (diode_model line (Some model))
          | 'm', [ d; g; s; model ] ->
              Netlist.mosfet netlist name ~drain:d ~gate:g ~source:s (mos_model line model)
          | 'm', [ d; g; s; _bulk; model ] ->
              Netlist.mosfet netlist name ~drain:d ~gate:g ~source:s (mos_model line model)
          | 'q', [ c; b; e; model ] ->
              Netlist.bjt netlist name ~collector:c ~base:b ~emitter:e (bjt_model line model)
          | 'g', [ op; om; ip; im; gm ] ->
              Netlist.vccs netlist name ~out_plus:op ~out_minus:om ~in_plus:ip ~in_minus:im
                (value_exn line gm)
          | ('r' | 'c' | 'l' | 'd' | 'm' | 'q' | 'g'), _ ->
              fail line "malformed %c-element %S" kind name
          | _, _ -> fail line "unsupported element %S" name))
    lines;
  (netlist, List.rev !warnings)

(* Per SPICE convention the first raw line is always the title, even
   when it happens to look like an element. Decks that want no title
   should start with a blank or comment line. *)
let parse_string text =
  let title, body_text =
    match String.index_opt text '\n' with
    | None -> (String.trim text, "")
    | Some i ->
        (String.trim (String.sub text 0 i), String.sub text i (String.length text - i))
  in
  let body = logical_lines body_text in
  let netlist, warnings = parse_deck_lines body in
  { title; netlist; warnings }
