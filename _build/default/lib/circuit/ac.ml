type sweep =
  | Linear of { f_start : float; f_stop : float; points : int }
  | Decade of { f_start : float; f_stop : float; points_per_decade : int }

type result = { freqs : float array; response : Linalg.Cvec.t array }

let frequencies = function
  | Linear { f_start; f_stop; points } ->
      if points < 2 then invalid_arg "Ac.frequencies: need at least 2 points";
      Array.init points (fun k ->
          f_start +. ((f_stop -. f_start) *. float_of_int k /. float_of_int (points - 1)))
  | Decade { f_start; f_stop; points_per_decade } ->
      if f_start <= 0.0 || f_stop <= f_start then
        invalid_arg "Ac.frequencies: need 0 < f_start < f_stop";
      let decades = log10 (f_stop /. f_start) in
      let total = max 2 (int_of_float (Float.round (decades *. float_of_int points_per_decade)) + 1) in
      Array.init total (fun k ->
          f_start *. (10.0 ** (decades *. float_of_int k /. float_of_int (total - 1))))

(* Unit-amplitude AC stimulus vector: 1 at each selected V-source branch
   row, and the usual +/- node pattern for current sources. *)
let ac_stimulus mna ~ac_sources =
  let n = Mna.size mna in
  let b = Array.make n Complex.zero in
  let selected name =
    match ac_sources with None -> true | Some names -> List.mem name names
  in
  List.iter
    (fun d ->
      match d with
      | Device.Voltage_source { name; _ } when selected name ->
          b.(Mna.branch_index mna name) <- Complex.one
      | Device.Current_source { name; n_plus; n_minus; _ } when selected name ->
          if n_plus > 0 then
            b.(n_plus - 1) <- Complex.sub b.(n_plus - 1) Complex.one;
          if n_minus > 0 then b.(n_minus - 1) <- Complex.add b.(n_minus - 1) Complex.one
      | Device.Voltage_source _ | Device.Current_source _ | Device.Resistor _
      | Device.Capacitor _ | Device.Inductor _ | Device.Diode _ | Device.Mosfet _
      | Device.Bjt _ | Device.Vccs _ | Device.Multiplier _ ->
          ())
    (Netlist.devices (Mna.netlist mna));
  b

let analyze ?x_op ?ac_sources mna sweep =
  let x_op =
    match x_op with
    | Some x -> x
    | None -> Dcop.solve_exn mna
  in
  let dae = Mna.dae mna in
  let g, c = dae.Numeric.Dae.jacobians x_op in
  let n = Mna.size mna in
  let freqs = frequencies sweep in
  let b = ac_stimulus mna ~ac_sources in
  let two_pi = 8.0 *. atan 1.0 in
  let response =
    Array.map
      (fun f ->
        let w = two_pi *. f in
        let a = Linalg.Cmat.create n n in
        for i = 0 to n - 1 do
          Sparse.Csr.iter_row g i (fun j v ->
              Linalg.Cmat.add_entry a i j { Complex.re = v; im = 0.0 });
          Sparse.Csr.iter_row c i (fun j v ->
              Linalg.Cmat.add_entry a i j { Complex.re = 0.0; im = w *. v })
        done;
        Linalg.Cmat.lu_solve a b)
      freqs
  in
  { freqs; response }

let node_response mna result node =
  match Mna.node_index mna node with
  | idx -> Array.map (fun x -> x.(idx)) result.response
  | exception Not_found ->
      invalid_arg (Printf.sprintf "Ac.node_response: unknown node %S" node)

let magnitude_db phasors =
  Array.map
    (fun z ->
      let m = Complex.norm z in
      if m <= 0.0 then -300.0 else 20.0 *. log10 m)
    phasors

let phase_deg phasors =
  Array.map (fun z -> Complex.arg z *. 180.0 /. (4.0 *. atan 1.0)) phasors
