(** Modified nodal analysis: assembles a {!Numeric.Dae.t} in the
    charge/conduction form [d/dt q(x) + f(x) = b(t)] (paper eq. (1))
    from a {!Netlist.t}.

    Unknowns are the non-ground node voltages (indices
    [0 .. num_nodes−1], node [k]'s voltage at index [k−1]) followed by
    one branch current per voltage source and inductor. *)

type t

val build : ?gmin:float -> Netlist.t -> t
(** [gmin] (default [1e-12]) adds a conductance from every non-ground
    node to ground, in both the residual and the Jacobian (a consistent
    model modification, as in SPICE). *)

val size : t -> int

val netlist : t -> Netlist.t
(** The netlist this system was assembled from. *)

val num_nodes : t -> int

val dae : t -> Numeric.Dae.t

val source_with : t -> phase_of:(float -> float) -> Linalg.Vec.t
(** Excitation vector with each waveform factor of frequency [f]
    evaluated at phase [phase_of f] — the multi-time hook
    (see {!Waveform.eval_with}). *)

val source_frequencies : t -> float list
(** Distinct frequencies appearing in any source waveform. *)

val unknown_names : t -> string array
(** Human-readable unknown labels: node names then ["i(<device>)"]. *)

val node_index : t -> string -> int
(** Index into the unknown vector of the named node's voltage.
    @raise Not_found for ground or unknown names. *)

val branch_index : t -> string -> int
(** Index of the named device's branch current. @raise Not_found. *)

val voltage : t -> Linalg.Vec.t -> string -> float
(** [voltage m x "n"] reads node [n]'s voltage from a solution vector
    (ground reads as [0.]). *)

val differential_voltage : t -> Linalg.Vec.t -> string -> string -> float
