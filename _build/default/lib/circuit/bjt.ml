type polarity = Npn | Pnp

type params = {
  polarity : polarity;
  saturation_current : float;
  beta_forward : float;
  beta_reverse : float;
  cbe : float;
  cbc : float;
  gmin : float;
}

let default_npn =
  {
    polarity = Npn;
    saturation_current = 1e-15;
    beta_forward = 100.0;
    beta_reverse = 2.0;
    cbe = 20e-15;
    cbc = 5e-15;
    gmin = 1e-12;
  }

let default_pnp = { default_npn with polarity = Pnp }

type operating_point = {
  ic : float;
  ib : float;
  ie : float;
  d_ic_d_vbe : float;
  d_ic_d_vbc : float;
  d_ib_d_vbe : float;
  d_ib_d_vbc : float;
}

let vt = Diode.thermal_voltage

(* Limited exponential, linearly continued above 40·Vt, with its
   consistent derivative. *)
let limited_exp v =
  let vc = 40.0 *. vt in
  if v <= vc then begin
    let e = exp (v /. vt) in
    (e -. 1.0, e /. vt)
  end
  else begin
    let e = exp (vc /. vt) in
    ((e -. 1.0) +. (e /. vt *. (v -. vc)), e /. vt)
  end

let evaluate_npn p ~vbe ~vbc =
  let ef, gf_raw = limited_exp vbe in
  let er, gr_raw = limited_exp vbc in
  let i_f = p.saturation_current *. ef and i_r = p.saturation_current *. er in
  let gf = p.saturation_current *. gf_raw and gr = p.saturation_current *. gr_raw in
  let kr = 1.0 +. (1.0 /. p.beta_reverse) in
  let ic = i_f -. (i_r *. kr) +. (p.gmin *. (-.vbc)) in
  let ib = (i_f /. p.beta_forward) +. (i_r /. p.beta_reverse) +. (p.gmin *. (vbe +. vbc)) in
  {
    ic;
    ib;
    ie = -.(ic +. ib);
    d_ic_d_vbe = gf;
    d_ic_d_vbc = (-.gr *. kr) -. p.gmin;
    d_ib_d_vbe = (gf /. p.beta_forward) +. p.gmin;
    d_ib_d_vbc = (gr /. p.beta_reverse) +. p.gmin;
  }

let evaluate p ~vbe ~vbc =
  match p.polarity with
  | Npn -> evaluate_npn p ~vbe ~vbc
  | Pnp ->
      (* Mirror: currents and voltages negate; derivatives keep sign. *)
      let op = evaluate_npn p ~vbe:(-.vbe) ~vbc:(-.vbc) in
      {
        ic = -.op.ic;
        ib = -.op.ib;
        ie = -.op.ie;
        d_ic_d_vbe = op.d_ic_d_vbe;
        d_ic_d_vbc = op.d_ic_d_vbc;
        d_ib_d_vbe = op.d_ib_d_vbe;
        d_ib_d_vbc = op.d_ib_d_vbc;
      }
