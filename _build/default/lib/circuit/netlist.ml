type t = {
  node_table : (string, int) Hashtbl.t;
  mutable next_node : int;
  mutable device_list : Device.t list;  (* reverse insertion order *)
  device_names : (string, unit) Hashtbl.t;
  mutable names_by_index : string list;  (* reverse order, index 1.. *)
}

let create () =
  {
    node_table = Hashtbl.create 16;
    next_node = 1;
    device_list = [];
    device_names = Hashtbl.create 16;
    names_by_index = [];
  }

let is_ground s = s = "0" || String.lowercase_ascii s = "gnd"

let node t s =
  if is_ground s then 0
  else
    match Hashtbl.find_opt t.node_table s with
    | Some i -> i
    | None ->
        let i = t.next_node in
        Hashtbl.add t.node_table s i;
        t.next_node <- i + 1;
        t.names_by_index <- s :: t.names_by_index;
        i

let add t d =
  let n = Device.name d in
  if Hashtbl.mem t.device_names n then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate device name %S" n);
  Hashtbl.add t.device_names n ();
  t.device_list <- d :: t.device_list

let devices t = List.rev t.device_list
let num_nodes t = t.next_node - 1

let node_name t i =
  if i = 0 then "0"
  else begin
    let names = Array.of_list (List.rev t.names_by_index) in
    if i >= 1 && i <= Array.length names then names.(i - 1)
    else invalid_arg "Netlist.node_name: unknown node"
  end

let find_node t s =
  if is_ground s then Some 0 else Hashtbl.find_opt t.node_table s

let resistor t name p m resistance =
  add t (Device.Resistor { name; n_plus = node t p; n_minus = node t m; resistance })

let capacitor t name p m capacitance =
  add t (Device.Capacitor { name; n_plus = node t p; n_minus = node t m; capacitance })

let inductor t name p m inductance =
  add t (Device.Inductor { name; n_plus = node t p; n_minus = node t m; inductance })

let vsource t name p m waveform =
  add t (Device.Voltage_source { name; n_plus = node t p; n_minus = node t m; waveform })

let isource t name p m waveform =
  add t (Device.Current_source { name; n_plus = node t p; n_minus = node t m; waveform })

let diode t name a c params =
  add t (Device.Diode { name; anode = node t a; cathode = node t c; params })

let mosfet t name ~drain ~gate ~source params =
  add t
    (Device.Mosfet
       { name; drain = node t drain; gate = node t gate; source = node t source; params })

let bjt t name ~collector ~base ~emitter params =
  add t
    (Device.Bjt
       {
         name;
         collector = node t collector;
         base = node t base;
         emitter = node t emitter;
         params;
       })

let vccs t name ~out_plus ~out_minus ~in_plus ~in_minus gm =
  add t
    (Device.Vccs
       {
         name;
         out_plus = node t out_plus;
         out_minus = node t out_minus;
         in_plus = node t in_plus;
         in_minus = node t in_minus;
         gm;
       })

let multiplier t name ~out_plus ~out_minus ~a_plus ~a_minus ~b_plus ~b_minus gain =
  add t
    (Device.Multiplier
       {
         name;
         out_plus = node t out_plus;
         out_minus = node t out_minus;
         a_plus = node t a_plus;
         a_minus = node t a_minus;
         b_plus = node t b_plus;
         b_minus = node t b_minus;
         gain;
       })
