lib/sparse/coo.mli: Linalg
