lib/sparse/krylov.ml: Array Csr Float Linalg
