lib/sparse/splu.ml: Array Csr Float
