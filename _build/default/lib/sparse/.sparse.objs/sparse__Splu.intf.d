lib/sparse/splu.mli: Csr Linalg
