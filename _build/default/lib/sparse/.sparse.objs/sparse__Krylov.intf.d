lib/sparse/krylov.mli: Csr Linalg
