lib/sparse/ilu0.mli: Csr Linalg
