lib/sparse/ilu0.ml: Array Csr
