(** Reverse Cuthill–McKee ordering for bandwidth reduction.

    Operates on the symmetrized pattern of a square CSR matrix.
    Reducing bandwidth before the general sparse LU cuts fill-in on
    mesh-like systems such as the MPDE grid Jacobian (the ABL-LIN bench
    quantifies it). *)

val ordering : Csr.t -> int array
(** [ordering a] returns [perm] with [perm.(new_index) = old_index],
    covering every index (disconnected components are ordered
    back-to-back). @raise Invalid_argument on non-square input. *)

val inverse : int array -> int array
(** [inverse perm] with [inverse.(old_index) = new_index]. *)

val permute_symmetric : Csr.t -> int array -> Csr.t
(** [permute_symmetric a perm] is [P·a·Pᵀ] where row/col [new] of the
    result is row/col [perm.(new)] of [a]. *)

val bandwidth : Csr.t -> int
(** Maximum [|i − j|] over stored entries (0 for diagonal/empty). *)
