type t = {
  rows : int;
  cols : int;
  mutable n : int;
  mutable row_index : int array;
  mutable col_index : int array;
  mutable values : float array;
}

let create ?(capacity = 16) rows cols =
  let capacity = max capacity 1 in
  {
    rows;
    cols;
    n = 0;
    row_index = Array.make capacity 0;
    col_index = Array.make capacity 0;
    values = Array.make capacity 0.0;
  }

let rows m = m.rows
let cols m = m.cols
let nnz m = m.n

let grow m =
  let capacity = 2 * Array.length m.values in
  let extend a fill_value =
    let b = Array.make capacity fill_value in
    Array.blit a 0 b 0 m.n;
    b
  in
  m.row_index <- extend m.row_index 0;
  m.col_index <- extend m.col_index 0;
  m.values <- extend m.values 0.0

let add m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Coo.add: index out of range";
  if v <> 0.0 then begin
    if m.n = Array.length m.values then grow m;
    m.row_index.(m.n) <- i;
    m.col_index.(m.n) <- j;
    m.values.(m.n) <- v;
    m.n <- m.n + 1
  end

let clear m = m.n <- 0

let iter f m =
  for k = 0 to m.n - 1 do
    f m.row_index.(k) m.col_index.(k) m.values.(k)
  done

let of_triplets rows cols triplets =
  let m = create ~capacity:(max 16 (List.length triplets)) rows cols in
  List.iter (fun (i, j, v) -> add m i j v) triplets;
  m

let to_dense m =
  let d = Linalg.Mat.create m.rows m.cols in
  iter (fun i j v -> Linalg.Mat.add_entry d i j v) m;
  d
