(** Mutable coordinate-format (triplet) sparse-matrix builder.

    Duplicate entries are summed when the matrix is converted to CSR.
    This is the stamping target for circuit MNA assembly. *)

type t

val create : ?capacity:int -> int -> int -> t
(** [create rows cols] is an empty builder. *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int
(** Number of stored triplets (duplicates counted separately). *)

val add : t -> int -> int -> float -> unit
(** [add m i j v] appends triplet [(i, j, v)]. Zero values are skipped.
    @raise Invalid_argument when the index is out of range. *)

val clear : t -> unit
(** Remove all triplets, keeping capacity. *)

val iter : (int -> int -> float -> unit) -> t -> unit

val of_triplets : int -> int -> (int * int * float) list -> t

val to_dense : t -> Linalg.Mat.t
