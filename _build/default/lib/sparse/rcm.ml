(* Classic RCM: BFS from a minimum-degree start node, visiting
   neighbours in increasing-degree order, then reverse the order. *)

let adjacency (a : Csr.t) =
  let n = a.Csr.rows in
  if a.Csr.cols <> n then invalid_arg "Rcm: matrix not square";
  let sym = Csr.add a (Csr.transpose a) in
  let neighbours = Array.make n [] in
  for i = 0 to n - 1 do
    let acc = ref [] in
    Csr.iter_row sym i (fun j _ -> if j <> i then acc := j :: !acc);
    neighbours.(i) <- List.rev !acc
  done;
  neighbours

let ordering a =
  let n = a.Csr.rows in
  let neighbours = adjacency a in
  let degree = Array.map List.length neighbours in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let count = ref 0 in
  let queue = Queue.create () in
  let push i =
    if not visited.(i) then begin
      visited.(i) <- true;
      Queue.add i queue
    end
  in
  let rec component () =
    if !count < n then begin
      (* start from the unvisited node of minimum degree *)
      let start = ref (-1) in
      for i = n - 1 downto 0 do
        if (not visited.(i)) && (!start < 0 || degree.(i) < degree.(!start)) then
          start := i
      done;
      push !start;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        order.(!count) <- v;
        incr count;
        let unvisited =
          List.filter (fun w -> not visited.(w)) neighbours.(v)
          |> List.sort (fun x y -> compare degree.(x) degree.(y))
        in
        List.iter push unvisited
      done;
      component ()
    end
  in
  component ();
  (* reverse for RCM *)
  Array.init n (fun k -> order.(n - 1 - k))

let inverse perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun new_index old_index -> inv.(old_index) <- new_index) perm;
  inv

let permute_symmetric a perm =
  let n = a.Csr.rows in
  if Array.length perm <> n then invalid_arg "Rcm.permute_symmetric: bad permutation";
  let inv = inverse perm in
  let coo = Coo.create ~capacity:(Csr.nnz a) n n in
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j v -> Coo.add coo inv.(i) inv.(j) v)
  done;
  Csr.of_coo coo

let bandwidth a =
  let best = ref 0 in
  for i = 0 to a.Csr.rows - 1 do
    Csr.iter_row a i (fun j _ -> best := max !best (abs (i - j)))
  done;
  !best
