(** Zero-fill incomplete LU preconditioner on the CSR pattern.

    Produces factors with exactly the sparsity pattern of the input
    matrix; used as a general-purpose preconditioner for {!Gmres} and
    {!Bicgstab}. *)

type t

exception Zero_pivot of int

val factor : Csr.t -> t
(** @raise Zero_pivot when a diagonal entry is absent or vanishes. *)

val apply : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [apply p r] approximates [a⁻¹ r] by [U⁻¹ (L⁻¹ r)]. *)
