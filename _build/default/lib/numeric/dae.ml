type t = {
  size : int;
  eval_f : Linalg.Vec.t -> Linalg.Vec.t;
  eval_q : Linalg.Vec.t -> Linalg.Vec.t;
  jacobians : Linalg.Vec.t -> Sparse.Csr.t * Sparse.Csr.t;
  source : float -> Linalg.Vec.t;
}

let linear ~g ~c ~source =
  {
    size = g.Sparse.Csr.rows;
    eval_f = (fun x -> Sparse.Csr.mul_vec g x);
    eval_q = (fun x -> Sparse.Csr.mul_vec c x);
    jacobians = (fun _ -> (g, c));
    source;
  }

let residual dae ~x ~qdot ~t_now =
  let f = dae.eval_f x and b = dae.source t_now in
  Array.init dae.size (fun i -> qdot.(i) +. f.(i) -. b.(i))
