(** Differential-algebraic systems in charge/flux form,

    [d/dt q(x) + f(x) = b(t)],

    the canonical circuit-equation shape (paper eq. (1)). Produced by the
    MNA assembler in [lib/circuit] and consumed by the transient
    integrators, the single-time steady-state methods, and the MPDE
    solver. *)

type t = {
  size : int;
  eval_f : Linalg.Vec.t -> Linalg.Vec.t;  (** conductive terms [f(x)] *)
  eval_q : Linalg.Vec.t -> Linalg.Vec.t;  (** charge/flux terms [q(x)] *)
  jacobians : Linalg.Vec.t -> Sparse.Csr.t * Sparse.Csr.t;
      (** [(G, C) = (∂f/∂x, ∂q/∂x)], both [size] x [size] *)
  source : float -> Linalg.Vec.t;  (** excitation [b(t)] *)
}

val linear : g:Sparse.Csr.t -> c:Sparse.Csr.t -> source:(float -> Linalg.Vec.t) -> t
(** Convenience constructor for linear time-invariant systems. *)

val residual : t -> x:Linalg.Vec.t -> qdot:Linalg.Vec.t -> t_now:float -> Linalg.Vec.t
(** [residual dae ~x ~qdot ~t_now] is [qdot + f(x) − b(t_now)], useful
    for verifying solutions computed by any method. *)
