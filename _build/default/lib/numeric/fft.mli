(** Fast Fourier transforms.

    Radix-2 iterative Cooley–Tukey for power-of-two lengths and
    Bluestein's chirp-z algorithm for arbitrary lengths. Forward
    transform uses the engineering sign convention
    [X_k = Σ_n x_n exp(−2πi kn/N)]; the inverse divides by [N]. *)

val is_power_of_two : int -> bool

val fft : Linalg.Cvec.t -> Linalg.Cvec.t
(** Forward transform of any length (Bluestein fallback). *)

val ifft : Linalg.Cvec.t -> Linalg.Cvec.t

val dft_naive : Linalg.Cvec.t -> Linalg.Cvec.t
(** O(n²) reference implementation, for testing. *)

val rfft : Linalg.Vec.t -> Linalg.Cvec.t
(** Forward transform of a real signal (full spectrum returned). *)

val real_harmonics : Linalg.Vec.t -> (float * float) array
(** [real_harmonics x] returns [(dc_or_amplitude, phase)] per harmonic
    [k = 0 .. n/2]: index 0 is the mean; index [k>0] holds the amplitude
    [2|X_k|/n] and phase of the cosine component at harmonic [k]. *)

val amplitude_at : Linalg.Vec.t -> int -> float
(** [amplitude_at x k] is the amplitude of harmonic [k] of the periodic
    sample vector [x] ([k = 0] gives the mean's absolute value). *)
