(** Homotopy/continuation driver (paper §3: “In cases where
    Newton-Raphson did not converge, using continuation reliably obtained
    solutions”).

    The user supplies a family of Newton problems parameterized by
    [lambda ∈ [0, 1]]; the driver tracks the solution path from an easy
    problem ([lambda = 0], e.g. sources off or heavily gmin-loaded) to
    the target ([lambda = 1]) with adaptive step control. *)

type stats = {
  steps_taken : int;  (** accepted continuation steps *)
  steps_rejected : int;
  newton_iterations : int;  (** cumulative across all steps *)
  converged : bool;
}

val trace :
  ?initial_step:float ->
  ?min_step:float ->
  ?max_step:float ->
  ?newton_options:Newton.options ->
  problem_at:(float -> Newton.problem) ->
  x0:Linalg.Vec.t ->
  unit ->
  Linalg.Vec.t * stats
(** [trace ~problem_at ~x0 ()] starts by solving at [lambda = 0] from
    [x0]. Steps grow by 2x after easy successes and shrink by 4x on
    failure. Defaults: [initial_step = 0.1], [min_step = 1e-6],
    [max_step = 0.5]. Returns the last iterate even on failure
    ([converged = false]). *)
