(** Trigonometric (Fourier) pseudo-spectral differentiation on uniform
    periodic grids, shared by the harmonic-balance solver and the
    MPDE's mixed frequency-time scheme. *)

val diff_matrix : int -> float -> Linalg.Mat.t
(** [diff_matrix n period] is the [n] x [n] matrix that maps samples of
    a trigonometric interpolant on [n] (odd) uniform points over
    [[0, period)] to samples of its exact derivative.
    @raise Invalid_argument if [n] is even or [< 3]. *)
