let pi = 4.0 *. atan 1.0

(* D_kj = (2π/period) · (−1)^{k−j} / (2 sin(π (k−j)/n)) for k ≠ j,
   zero on the diagonal; exact for trigonometric polynomials of degree
   (n−1)/2 when n is odd. *)
let diff_matrix n period =
  if n < 3 || n mod 2 = 0 then
    invalid_arg "Spectral.diff_matrix: n must be odd and at least 3";
  Linalg.Mat.init n n (fun k j ->
      if k = j then 0.0
      else begin
        let d = k - j in
        let sign = if (d land 1) = 0 then 1.0 else -1.0 in
        2.0 *. pi /. period
        *. (sign /. (2.0 *. sin (pi *. float_of_int d /. float_of_int n)))
      end)
