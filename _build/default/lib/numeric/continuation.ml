type stats = {
  steps_taken : int;
  steps_rejected : int;
  newton_iterations : int;
  converged : bool;
}

let trace ?(initial_step = 0.1) ?(min_step = 1e-6) ?(max_step = 0.5)
    ?(newton_options = Newton.default_options) ~problem_at ~x0 () =
  let newton_iterations = ref 0 in
  let steps_taken = ref 0 and steps_rejected = ref 0 in
  let run lambda guess =
    let x, stats = Newton.solve ~options:newton_options (problem_at lambda) guess in
    newton_iterations := !newton_iterations + stats.Newton.iterations;
    if Newton.converged stats then Some x else None
  in
  match run 0.0 x0 with
  | None ->
      ( x0,
        {
          steps_taken = 0;
          steps_rejected = 0;
          newton_iterations = !newton_iterations;
          converged = false;
        } )
  | Some x_start ->
      let rec go lambda x step easy_streak =
        if lambda >= 1.0 then (x, true)
        else if step < min_step then (x, false)
        else begin
          let lambda' = Float.min 1.0 (lambda +. step) in
          match run lambda' x with
          | Some x' ->
              incr steps_taken;
              let step' =
                if easy_streak >= 1 then Float.min max_step (2.0 *. step) else step
              in
              go lambda' x' step' (easy_streak + 1)
          | None ->
              incr steps_rejected;
              go lambda x (step /. 4.0) 0
        end
      in
      let x_final, converged = go 0.0 x_start initial_step 0 in
      ( x_final,
        {
          steps_taken = !steps_taken;
          steps_rejected = !steps_rejected;
          newton_iterations = !newton_iterations;
          converged;
        } )
