lib/numeric/continuation.mli: Linalg Newton
