lib/numeric/newton.mli: Format Linalg
