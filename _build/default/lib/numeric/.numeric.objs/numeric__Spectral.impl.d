lib/numeric/spectral.ml: Linalg
