lib/numeric/continuation.ml: Float Newton
