lib/numeric/newton.ml: Array Float Format Linalg Printexc
