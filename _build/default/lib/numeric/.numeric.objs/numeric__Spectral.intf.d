lib/numeric/spectral.mli: Linalg
