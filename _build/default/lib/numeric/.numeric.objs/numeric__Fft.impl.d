lib/numeric/fft.ml: Array Complex Float Linalg
