lib/numeric/integrator.ml: Array Dae Float Linalg List Newton Option Sparse
