lib/numeric/fft.mli: Linalg
