lib/numeric/dae.ml: Array Linalg Sparse
