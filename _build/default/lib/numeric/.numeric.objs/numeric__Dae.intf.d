lib/numeric/dae.mli: Linalg Sparse
