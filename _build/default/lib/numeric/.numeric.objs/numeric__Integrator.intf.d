lib/numeric/integrator.mli: Dae Linalg Newton
