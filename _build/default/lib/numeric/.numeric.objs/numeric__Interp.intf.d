lib/numeric/interp.mli:
