(** Interpolation utilities: linear / Catmull–Rom on uniform grids,
    periodic variants, and periodic bilinear interpolation on the
    multi-time grid. *)

val linear_uniform : float array -> float -> float
(** [linear_uniform samples u] interpolates at normalized position
    [u ∈ [0, 1]] over samples placed at [k/(n−1)]. Clamps outside. *)

val linear_periodic : float array -> float -> float
(** Samples at [k/n] over one period; [u] is taken modulo 1. *)

val catmull_rom_periodic : float array -> float -> float
(** C¹ cubic interpolation over periodic samples at [k/n]. *)

val bilinear_periodic : float array array -> float -> float -> float
(** [bilinear_periodic grid u v] interpolates [grid.(i).(j)] with [i]
    placed at [i/n1] (coordinate [u]) and [j] at [j/n2] (coordinate [v]),
    both periodic. *)

val nonuniform_linear : xs:float array -> ys:float array -> float -> float
(** Piecewise-linear on sorted abscissae [xs]; clamps outside. *)

val resample_periodic : float array -> int -> float array
(** [resample_periodic samples m] returns [m] linear-interpolated samples
    over the same period. *)
