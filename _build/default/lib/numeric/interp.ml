let frac u =
  let f = Float.rem u 1.0 in
  if f < 0.0 then f +. 1.0 else f

let linear_uniform samples u =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Interp.linear_uniform: empty samples";
  if n = 1 then samples.(0)
  else begin
    let u = Float.max 0.0 (Float.min 1.0 u) in
    let pos = u *. float_of_int (n - 1) in
    let i = min (n - 2) (int_of_float pos) in
    let w = pos -. float_of_int i in
    ((1.0 -. w) *. samples.(i)) +. (w *. samples.(i + 1))
  end

let linear_periodic samples u =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Interp.linear_periodic: empty samples";
  let pos = frac u *. float_of_int n in
  let i = int_of_float pos mod n in
  let w = pos -. Float.of_int (int_of_float pos) in
  ((1.0 -. w) *. samples.(i)) +. (w *. samples.((i + 1) mod n))

let catmull_rom_periodic samples u =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Interp.catmull_rom_periodic: empty samples";
  if n < 4 then linear_periodic samples u
  else begin
    let pos = frac u *. float_of_int n in
    let i = int_of_float pos mod n in
    let w = pos -. Float.of_int (int_of_float pos) in
    let p0 = samples.((i + n - 1) mod n)
    and p1 = samples.(i)
    and p2 = samples.((i + 1) mod n)
    and p3 = samples.((i + 2) mod n) in
    let w2 = w *. w in
    let w3 = w2 *. w in
    0.5
    *. ((2.0 *. p1)
       +. ((p2 -. p0) *. w)
       +. (((2.0 *. p0) -. (5.0 *. p1) +. (4.0 *. p2) -. p3) *. w2)
       +. (((3.0 *. (p1 -. p2)) +. p3 -. p0) *. w3))
  end

let bilinear_periodic grid u v =
  let n1 = Array.length grid in
  if n1 = 0 then invalid_arg "Interp.bilinear_periodic: empty grid";
  let n2 = Array.length grid.(0) in
  if n2 = 0 then invalid_arg "Interp.bilinear_periodic: empty grid row";
  let pu = frac u *. float_of_int n1 and pv = frac v *. float_of_int n2 in
  let i = int_of_float pu mod n1 and j = int_of_float pv mod n2 in
  let wu = pu -. Float.of_int (int_of_float pu)
  and wv = pv -. Float.of_int (int_of_float pv) in
  let i1 = (i + 1) mod n1 and j1 = (j + 1) mod n2 in
  ((1.0 -. wu) *. (1.0 -. wv) *. grid.(i).(j))
  +. (wu *. (1.0 -. wv) *. grid.(i1).(j))
  +. ((1.0 -. wu) *. wv *. grid.(i).(j1))
  +. (wu *. wv *. grid.(i1).(j1))

let nonuniform_linear ~xs ~ys x =
  let n = Array.length xs in
  if n = 0 || Array.length ys <> n then
    invalid_arg "Interp.nonuniform_linear: bad arrays";
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    (* binary search for the bracketing interval *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    let w = (x -. xs.(!lo)) /. (xs.(!hi) -. xs.(!lo)) in
    ((1.0 -. w) *. ys.(!lo)) +. (w *. ys.(!hi))
  end

let resample_periodic samples m =
  Array.init m (fun k -> linear_periodic samples (float_of_int k /. float_of_int m))
