(* A fast-scale column problem: unknowns are the n1 circuit states over
   one fast period. [h2_term] is [None] for the quasi-static problem
   (no slow derivative) or [Some (h2, prev_column)] for an
   envelope-following backward-Euler step. *)
let column_problem (sys : Assemble.system) ~n1 ~h1 ~sources ~h2_term =
  let n = sys.Assemble.size in
  let state_of big i = Array.sub big (i * n) n in
  let residual big =
    let qs = Array.init n1 (fun i -> sys.Assemble.eval_q (state_of big i)) in
    let r = Array.make (n1 * n) 0.0 in
    for i = 0 to n1 - 1 do
      let f = sys.Assemble.eval_f (state_of big i) in
      let q = qs.(i) and q_im1 = qs.((i + n1 - 1) mod n1) in
      let b = sources.(i) in
      for v = 0 to n - 1 do
        let slow =
          match h2_term with
          | None -> 0.0
          | Some (h2, prev) -> (q.(v) -. (sys.Assemble.eval_q prev.(i)).(v)) /. h2
        in
        r.((i * n) + v) <- ((q.(v) -. q_im1.(v)) /. h1) +. slow +. f.(v) -. b.(v)
      done
    done;
    r
  in
  let solve_linearized big r =
    let big_n = n1 * n in
    let coo = Sparse.Coo.create ~capacity:(10 * big_n) big_n big_n in
    let jacs = Array.init n1 (fun i -> sys.Assemble.jacobians (state_of big i)) in
    let c_scale =
      match h2_term with
      | None -> 1.0 /. h1
      | Some (h2, _) -> (1.0 /. h1) +. (1.0 /. h2)
    in
    for i = 0 to n1 - 1 do
      let g, c = jacs.(i) in
      let im1 = (i + n1 - 1) mod n1 in
      let _, c_im1 = jacs.(im1) in
      for row = 0 to n - 1 do
        Sparse.Csr.iter_row c row (fun col v ->
            Sparse.Coo.add coo ((i * n) + row) ((i * n) + col) (c_scale *. v));
        Sparse.Csr.iter_row g row (fun col v ->
            Sparse.Coo.add coo ((i * n) + row) ((i * n) + col) v);
        Sparse.Csr.iter_row c_im1 row (fun col v ->
            Sparse.Coo.add coo ((i * n) + row) ((im1 * n) + col) (-.v /. h1))
      done
    done;
    Sparse.Splu.solve (Sparse.Splu.factor (Sparse.Csr.of_coo coo)) r
  in
  { Numeric.Newton.residual; solve_linearized }

let flatten_column n column =
  let n1 = Array.length column in
  let big = Array.make (n1 * n) 0.0 in
  Array.iteri (fun i x -> Array.blit x 0 big (i * n) n) column;
  big

let split_column n n1 big = Array.init n1 (fun i -> Array.sub big (i * n) n)

let sources_for sys ~n1 ~h1 ~t2 =
  Array.init n1 (fun i -> sys.Assemble.source_at ~t1:(float_of_int i *. h1) ~t2)

let frozen_column ?(max_newton = 80) ?(tol = 1e-8) ?seed (sys : Assemble.system) ~n1
    ~shear ~t2 =
  let n = sys.Assemble.size in
  let h1 = Shear.t1_period shear /. float_of_int n1 in
  let sources = sources_for sys ~n1 ~h1 ~t2 in
  let problem = column_problem sys ~n1 ~h1 ~sources ~h2_term:None in
  let big0 =
    let seed = match seed with Some s -> s | None -> Array.make n 0.0 in
    flatten_column n (Array.make n1 seed)
  in
  let options =
    { Numeric.Newton.default_options with max_iterations = max_newton; abs_tol = tol }
  in
  let big, stats = Numeric.Newton.solve ~options problem big0 in
  if not (Numeric.Newton.converged stats) then
    failwith "Fast_column.frozen_column: fast-scale Newton failed";
  split_column n n1 big

let march_step ?(max_newton = 80) ?(tol = 1e-8) (sys : Assemble.system) ~n1 ~shear ~t2
    ~h2 ~prev =
  let n = sys.Assemble.size in
  let h1 = Shear.t1_period shear /. float_of_int n1 in
  let sources = sources_for sys ~n1 ~h1 ~t2 in
  let problem = column_problem sys ~n1 ~h1 ~sources ~h2_term:(Some (h2, prev)) in
  let options =
    { Numeric.Newton.default_options with max_iterations = max_newton; abs_tol = tol }
  in
  let big, stats = Numeric.Newton.solve ~options problem (flatten_column n prev) in
  (split_column n n1 big, stats.Numeric.Newton.iterations, Numeric.Newton.converged stats)
