(** The bi-periodic multi-time grid: [n1] points along the fast scale
    [t1 ∈ [0, T1)] and [n2] points along the difference-frequency scale
    [t2 ∈ [0, Td)] (paper used 40 x 30). Grid point [(i, j)] carries the
    full circuit unknown vector; the flattened ordering is [j] outer,
    [i] inner, which makes the backward-difference Jacobian block
    lower-triangular apart from the two periodic wrap couplings. *)

type t = {
  n1 : int;
  n2 : int;
  shear : Shear.t;
  h1 : float;  (** [T1 / n1] *)
  h2 : float;  (** [Td / n2] *)
}

val make : shear:Shear.t -> n1:int -> n2:int -> t
(** @raise Invalid_argument unless both dimensions are at least 2. *)

val points : t -> int
(** [n1 * n2]. *)

val t1_of : t -> int -> float
(** Fast-scale coordinate of column [i]. *)

val t2_of : t -> int -> float

val point_index : t -> int -> int -> int
(** [point_index g i j = j*n1 + i] with periodic wrapping of both
    indices. *)

val wrap1 : t -> int -> int

val wrap2 : t -> int -> int
