lib/mpde/envelope_follow.ml: Array Assemble Extract Fast_column Float Linalg Numeric
