lib/mpde/assemble.mli: Circuit Grid Linalg Numeric Shear Sparse
