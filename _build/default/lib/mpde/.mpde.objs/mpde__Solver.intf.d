lib/mpde/solver.mli: Assemble Circuit Grid Linalg Shear
