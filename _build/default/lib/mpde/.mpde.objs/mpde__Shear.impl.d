lib/mpde/shear.ml: Circuit Float
