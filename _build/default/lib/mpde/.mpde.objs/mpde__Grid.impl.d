lib/mpde/grid.ml: Shear
