lib/mpde/envelope_follow.mli: Assemble Extract Linalg Shear
