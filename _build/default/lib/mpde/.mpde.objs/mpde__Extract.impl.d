lib/mpde/extract.ml: Array Circuit Complex Grid Linalg List Numeric Shear Solver
