lib/mpde/shear.mli: Circuit Stdlib
