lib/mpde/assemble.ml: Array Circuit Grid Linalg Numeric Option Shear Sparse
