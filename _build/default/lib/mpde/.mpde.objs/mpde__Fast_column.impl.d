lib/mpde/fast_column.ml: Array Assemble Numeric Shear Sparse
