lib/mpde/solver.ml: Array Assemble Circuit Fast_column Grid Linalg Numeric Printf Shear Sparse Sys
