lib/mpde/fast_column.mli: Assemble Linalg Shear
