lib/mpde/refine.ml: Array Assemble Float Grid Solver
