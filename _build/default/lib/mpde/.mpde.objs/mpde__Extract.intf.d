lib/mpde/extract.mli: Circuit Solver
