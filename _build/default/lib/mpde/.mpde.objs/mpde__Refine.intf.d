lib/mpde/refine.mli: Assemble Linalg Shear Solver
