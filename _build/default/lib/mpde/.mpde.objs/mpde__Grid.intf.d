lib/mpde/grid.mli: Shear
