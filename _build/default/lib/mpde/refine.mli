(** Grid-convergence estimation and automatic refinement for the MPDE
    solver. The paper picks 40 x 30 by judgement; this module makes the
    choice quantitative: solve, double each grid direction in turn,
    compare the solutions at shared grid points, and keep refining the
    direction with the larger estimated error until a tolerance or a
    budget is hit. *)

type report = {
  solution : Solver.solution;  (** solution on the final grid *)
  n1 : int;
  n2 : int;
  est_error_t1 : float;
      (** max abs difference vs the t1-doubled grid at shared points *)
  est_error_t2 : float;
  refinements : int;  (** doubling steps taken *)
}

val estimate_errors :
  ?options:Solver.options ->
  ?seed:Linalg.Vec.t ->
  Assemble.system ->
  shear:Shear.t ->
  n1:int ->
  n2:int ->
  Solver.solution * float * float
(** [(solution, err_t1, err_t2)] — the base solve plus the two
    direction-wise Richardson-style error estimates. *)

val auto :
  ?options:Solver.options ->
  ?seed:Linalg.Vec.t ->
  ?tol:float ->
  ?max_points:int ->
  Assemble.system ->
  shear:Shear.t ->
  n1:int ->
  n2:int ->
  report
(** Refine until both direction estimates fall below [tol]
    (default [1e-3], in solution units) or the grid would exceed
    [max_points] (default [20000] points). *)
