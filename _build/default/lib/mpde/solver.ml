module Vec = Linalg.Vec

type linear_solver =
  | Direct
  | Gmres_sweep of { restart : int; max_iter : int; tol : float }

let default_gmres = Gmres_sweep { restart = 60; max_iter = 600; tol = 1e-9 }

type options = {
  max_newton : int;
  tol : float;
  scheme : Assemble.scheme;
  linear_solver : linear_solver;
  allow_continuation : bool;
}

let default_options =
  {
    max_newton = 50;
    tol = 1e-8;
    scheme = Assemble.Backward;
    linear_solver = default_gmres;
    allow_continuation = true;
  }

type stats = {
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  linear_iterations : int;
  continuation_steps : int;
  wall_seconds : float;
}

type solution = {
  grid : Grid.t;
  system : Assemble.system;
  big_x : Vec.t;
  stats : stats;
}

(* Block forward-substitution sweep: apply M⁻¹ where M keeps the
   diagonal blocks D_p = (1/h1 + 1/h2)·C_p + G_p and the two
   backward-difference neighbour blocks, *dropping the periodic wraps*
   (i = 0 and j = 0 rows lose their wrapped neighbour). Lexicographic
   order then makes M block lower-triangular, solvable in one pass with
   dense per-point LU factors. *)
let make_sweep_preconditioner scheme (g : Grid.t) ~size ~jacs =
  let n = size in
  let np = Grid.points g in
  (* The sweep is exact (up to periodic wraps) for the backward scheme;
     for central/spectral t1 schemes it degrades to a block Gauss-Seidel
     over the t2 columns (the t1 coupling is left to GMRES). *)
  let t1_in_diag =
    match scheme with
    | Assemble.Backward -> true
    | Assemble.Central_t1 | Assemble.Spectral_t1 | Assemble.Spectral_both -> false
  in
  let diag_factors =
    Array.init np (fun p ->
        let gp, cp = jacs.(p) in
        let d = Linalg.Mat.create n n in
        let scale_c =
          (if t1_in_diag then 1.0 /. g.Grid.h1 else 0.0) +. (1.0 /. g.Grid.h2)
        in
        for i = 0 to n - 1 do
          Sparse.Csr.iter_row cp i (fun j v -> Linalg.Mat.add_entry d i j (scale_c *. v));
          Sparse.Csr.iter_row gp i (fun j v -> Linalg.Mat.add_entry d i j v)
        done;
        Linalg.Lu.factor d)
  in
  fun (r : Vec.t) ->
    let x = Array.make (np * n) 0.0 in
    let rhs = Array.make n 0.0 in
    let xp = Array.make n 0.0 in
    for p = 0 to np - 1 do
      let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
      Array.blit r (p * n) rhs 0 n;
      (* Move the lower-neighbour couplings (−C/h) to the right side. *)
      if t1_in_diag && i > 0 then begin
        let p_im1 = p - 1 in
        let _, c = jacs.(p_im1) in
        for row = 0 to n - 1 do
          Sparse.Csr.iter_row c row (fun col v ->
              rhs.(row) <- rhs.(row) +. (v /. g.Grid.h1 *. x.((p_im1 * n) + col)))
        done
      end;
      if j > 0 then begin
        let p_jm1 = p - g.Grid.n1 in
        let _, c = jacs.(p_jm1) in
        for row = 0 to n - 1 do
          Sparse.Csr.iter_row c row (fun col v ->
              rhs.(row) <- rhs.(row) +. (v /. g.Grid.h2 *. x.((p_jm1 * n) + col)))
        done
      end;
      Linalg.Lu.solve_into diag_factors.(p) rhs xp;
      Array.blit xp 0 x (p * n) n
    done;
    x

let solve_linear options (g : Grid.t) ~size ~jacs ~rhs ~linear_iters =
  match options.linear_solver with
  | Direct ->
      let jac = Assemble.jacobian_csr options.scheme g ~size ~jacs in
      Sparse.Splu.solve (Sparse.Splu.factor jac) rhs
  | Gmres_sweep { restart; max_iter; tol } ->
      let jac = Assemble.jacobian_csr options.scheme g ~size ~jacs in
      let precond = make_sweep_preconditioner options.scheme g ~size ~jacs in
      let result =
        Sparse.Krylov.gmres ~restart ~max_iter ~tol ~precond
          (Sparse.Krylov.csr_operator jac) rhs
      in
      linear_iters := !linear_iters + result.Sparse.Krylov.iterations;
      if not result.Sparse.Krylov.converged then
        failwith
          (Printf.sprintf "MPDE GMRES stalled (residual %.3e after %d iterations)"
             result.Sparse.Krylov.residual_norm result.Sparse.Krylov.iterations);
      result.Sparse.Krylov.x

let newton_problem options sys (g : Grid.t) ~sources ~linear_iters ~source_scale =
  let scaled_sources =
    if source_scale = 1.0 then sources
    else Array.map (Vec.scale source_scale) sources
  in
  {
    Numeric.Newton.residual =
      (fun big_x -> Assemble.residual options.scheme sys g ~sources:scaled_sources big_x);
    solve_linearized =
      (fun big_x r ->
        let jacs = Assemble.point_jacobians sys g big_x in
        solve_linear options g ~size:sys.Assemble.size ~jacs ~rhs:r ~linear_iters);
  }

let solve ?(options = default_options) ?seed (sys : Assemble.system) (g : Grid.t) =
  let t_start = Sys.time () in
  let n = sys.Assemble.size in
  let np = Grid.points g in
  let big = np * n in
  let big_x0 =
    let x = Array.make big 0.0 in
    (match seed with
    | Some s when Array.length s = n ->
        for p = 0 to np - 1 do
          Array.blit s 0 x (p * n) n
        done
    | Some s when Array.length s = big -> Array.blit s 0 x 0 big
    | Some _ -> invalid_arg "Mpde.Solver.solve: bad seed size"
    | None -> ());
    x
  in
  let sources = Assemble.sources_on_grid sys g in
  let linear_iters = ref 0 in
  let newton_options =
    { Numeric.Newton.default_options with max_iterations = options.max_newton; abs_tol = options.tol }
  in
  let big_x, stats =
    Numeric.Newton.solve ~options:newton_options
      (newton_problem options sys g ~sources ~linear_iters ~source_scale:1.0)
      big_x0
  in
  let newton_iterations = ref stats.Numeric.Newton.iterations in
  let continuation_steps = ref 0 in
  let big_x, converged, residual_norm =
    if Numeric.Newton.converged stats then
      (big_x, true, stats.Numeric.Newton.residual_norm)
    else if options.allow_continuation then begin
      let problem_at lambda =
        newton_problem options sys g ~sources ~linear_iters ~source_scale:lambda
      in
      let x, cstats =
        Numeric.Continuation.trace ~newton_options ~problem_at ~x0:big_x0 ()
      in
      newton_iterations :=
        !newton_iterations + cstats.Numeric.Continuation.newton_iterations;
      continuation_steps := cstats.Numeric.Continuation.steps_taken;
      let r = Assemble.residual options.scheme sys g ~sources x in
      (x, cstats.Numeric.Continuation.converged, Vec.norm_inf r)
    end
    else (big_x, false, stats.Numeric.Newton.residual_norm)
  in
  {
    grid = g;
    system = sys;
    big_x;
    stats =
      {
        newton_iterations = !newton_iterations;
        converged;
        residual_norm;
        linear_iterations = !linear_iters;
        continuation_steps = !continuation_steps;
        wall_seconds = Sys.time () -. t_start;
      };
  }

let solve_mna ?options ~shear ~n1 ~n2 mna =
  (match Shear.validate_sources shear mna with
  | Ok () -> ()
  | Error f -> raise (Shear.Off_lattice f));
  let grid = Grid.make ~shear ~n1 ~n2 in
  let sys = Assemble.of_mna ~shear mna in
  let seed =
    let r = Circuit.Dcop.solve mna in
    if r.Circuit.Dcop.converged then Some r.Circuit.Dcop.x else None
  in
  solve ?options ?seed sys grid

let state_at sol ~i ~j =
  let p = Grid.point_index sol.grid i j in
  Assemble.state_of ~size:sol.system.Assemble.size sol.big_x p

let quasi_static_start ?seed (sys : Assemble.system) (g : Grid.t) =
  let n = sys.Assemble.size in
  let n1 = g.Grid.n1 in
  let big = Array.make (Grid.points g * n) 0.0 in
  for j = 0 to g.Grid.n2 - 1 do
    let column =
      Fast_column.frozen_column ?seed sys ~n1 ~shear:g.Grid.shear ~t2:(Grid.t2_of g j)
    in
    Array.iteri
      (fun i x -> Array.blit x 0 big (Grid.point_index g i j * n) n)
      column
  done;
  big

let residual_norm_check ?(scheme = Assemble.Backward) sol =
  let sources = Assemble.sources_on_grid sol.system sol.grid in
  Vec.norm_inf (Assemble.residual scheme sol.system sol.grid ~sources sol.big_x)
