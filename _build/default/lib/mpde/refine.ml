type report = {
  solution : Solver.solution;
  n1 : int;
  n2 : int;
  est_error_t1 : float;
  est_error_t2 : float;
  refinements : int;
}

(* Max abs difference between a coarse solution and a fine solution at
   the coarse grid points, over all unknowns. [stride1]/[stride2] map
   coarse indices into the fine grid (2 along a doubled direction). *)
let compare_at_shared coarse fine ~stride1 ~stride2 =
  let g = coarse.Solver.grid in
  let n = coarse.Solver.system.Assemble.size in
  let worst = ref 0.0 in
  for i = 0 to g.Grid.n1 - 1 do
    for j = 0 to g.Grid.n2 - 1 do
      let xc = Solver.state_at coarse ~i ~j in
      let xf = Solver.state_at fine ~i:(i * stride1) ~j:(j * stride2) in
      for v = 0 to n - 1 do
        let d = Float.abs (xc.(v) -. xf.(v)) in
        if d > !worst then worst := d
      done
    done
  done;
  !worst

let solve_grid ?options ?seed sys ~shear ~n1 ~n2 =
  Solver.solve ?options ?seed sys (Grid.make ~shear ~n1 ~n2)

let estimate_errors ?options ?seed sys ~shear ~n1 ~n2 =
  let base = solve_grid ?options ?seed sys ~shear ~n1 ~n2 in
  let fine1 = solve_grid ?options ?seed sys ~shear ~n1:(2 * n1) ~n2 in
  let fine2 = solve_grid ?options ?seed sys ~shear ~n1 ~n2:(2 * n2) in
  ( base,
    compare_at_shared base fine1 ~stride1:2 ~stride2:1,
    compare_at_shared base fine2 ~stride1:1 ~stride2:2 )

let auto ?options ?seed ?(tol = 1e-3) ?(max_points = 20000) sys ~shear ~n1 ~n2 =
  let rec go n1 n2 refinements =
    let base, e1, e2 = estimate_errors ?options ?seed sys ~shear ~n1 ~n2 in
    let done_ = e1 <= tol && e2 <= tol in
    let next_n1, next_n2 =
      if e1 >= e2 then (2 * n1, n2) else (n1, 2 * n2)
    in
    if done_ || next_n1 * next_n2 > max_points then
      { solution = base; n1; n2; est_error_t1 = e1; est_error_t2 = e2; refinements }
    else go next_n1 next_n2 (refinements + 1)
  in
  go n1 n2 0
