(** Discretization of the MPDE (paper eq. (4))

    [∂q(x̂)/∂t1 + ∂q(x̂)/∂t2 + f(x̂) = b̂(t1, t2)]

    on the bi-periodic grid. The default scheme is fully implicit
    backward differences in both artificial times (robust for the stiff
    switching circuits the method targets); a central-difference option
    along [t1] is provided for the accuracy-order ablation. *)

type system = {
  size : int;  (** circuit unknowns per grid point *)
  eval_f : Linalg.Vec.t -> Linalg.Vec.t;
  eval_q : Linalg.Vec.t -> Linalg.Vec.t;
  jacobians : Linalg.Vec.t -> Sparse.Csr.t * Sparse.Csr.t;
  source_at : t1:float -> t2:float -> Linalg.Vec.t;  (** [b̂(t1, t2)] *)
}

val of_mna : shear:Shear.t -> Circuit.Mna.t -> system
(** Wire a circuit's MNA equations to the sheared excitation. *)

val of_dae : shear:Shear.t -> Numeric.Dae.t -> system
(** For systems built directly as DAEs: [b̂] is evaluated by warping
    only through the diagonal convention [b̂(t1,t2) = b(t1)] is NOT
    assumed — instead the DAE's source is sampled at the sheared
    equivalent time, which is only valid for single-tone sources on the
    fast scale. Prefer {!of_mna} for multi-tone excitations. *)

type scheme =
  | Backward  (** fully implicit backward differences in t1 and t2 (default) *)
  | Central_t1  (** 2nd-order central differences along t1, backward along t2 *)
  | Spectral_t1
      (** exact trigonometric (pseudo-spectral) differentiation along t1 —
          the mixed frequency-time variant: harmonic-balance accuracy on
          the fast scale, time-domain backward differences on the slow
          difference scale. Requires odd [n1]; best with the [Direct]
          linear solver (the Jacobian couples all fast-scale points). *)
  | Spectral_both
      (** pseudo-spectral differentiation along *both* artificial times —
          algebraically this is two-tone harmonic balance with box
          truncation over the (f1, fd) lattice, recovered inside the
          MPDE machinery. Exact for smooth (band-limited) solutions;
          inherits HB's weakness on sharp switching waveforms, which is
          precisely the comparison the paper draws. Requires odd [n1]
          and odd [n2]; use the [Direct] linear solver. *)

val spectral_ok : Grid.t -> bool
(** Whether the grid's [n1] is acceptable for [Spectral_t1] (odd). *)

val spectral_both_ok : Grid.t -> bool
(** Whether both grid dimensions are acceptable for [Spectral_both]. *)

val sources_on_grid : system -> Grid.t -> Linalg.Vec.t array
(** Per-point [b̂] samples in flattened point order (precompute once —
    the excitation does not depend on the iterate). *)

val residual :
  scheme -> system -> Grid.t -> sources:Linalg.Vec.t array -> Linalg.Vec.t -> Linalg.Vec.t
(** Residual of the discretized MPDE at the flattened iterate. *)

val point_jacobians :
  system -> Grid.t -> Linalg.Vec.t -> (Sparse.Csr.t * Sparse.Csr.t) array
(** [(G, C)] per grid point, flattened point order. *)

val jacobian_csr :
  scheme ->
  Grid.t ->
  size:int ->
  jacs:(Sparse.Csr.t * Sparse.Csr.t) array ->
  Sparse.Csr.t
(** Global sparse Jacobian from per-point blocks. *)

val state_of : size:int -> Linalg.Vec.t -> int -> Linalg.Vec.t
(** Extract grid point [p]'s circuit state from the flattened vector. *)
