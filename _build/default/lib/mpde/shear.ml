type t = { fast : float; slow : float }

exception Off_lattice of float

let make ~fast_freq ~slow_freq =
  if not (slow_freq > 0.0 && slow_freq < fast_freq) then
    invalid_arg "Shear.make: need 0 < slow_freq < fast_freq";
  { fast = fast_freq; slow = slow_freq }

let fast_freq s = s.fast
let slow_freq s = s.slow
let t1_period s = 1.0 /. s.fast
let t2_period s = 1.0 /. s.slow
let disparity s = s.fast /. s.slow

let lattice ?(tol = 1e-6) s freq =
  if freq = 0.0 then (0, 0)
  else begin
    let m = Float.round (freq /. s.fast) in
    let rest = freq -. (m *. s.fast) in
    let k = Float.round (rest /. s.slow) in
    let err = Float.abs (freq -. (m *. s.fast) -. (k *. s.slow)) in
    if err <= tol *. Float.max (Float.abs freq) s.slow then
      (int_of_float m, int_of_float k)
    else raise (Off_lattice freq)
  end

let phase s ~t1 ~t2 freq =
  let m, k = lattice s freq in
  (float_of_int m *. s.fast *. t1) +. (float_of_int k *. s.slow *. t2)

let phase_unsheared s ~t1 ~t2 freq =
  (* Multiples of the fast fundamental ride on t1; everything else,
     including the nearby second tone, rides on t2 (paper eq. (9)). *)
  let m = Float.round (freq /. s.fast) in
  if Float.abs (freq -. (m *. s.fast)) <= 1e-9 *. Float.max (Float.abs freq) 1.0 then
    freq *. t1
  else freq *. t2

let validate_sources s mna =
  let rec check = function
    | [] -> Ok ()
    | f :: rest -> (
        match lattice s f with
        | (_ : int * int) -> check rest
        | exception Off_lattice f -> Error f)
  in
  check (Circuit.Mna.source_frequencies mna)
