(** Newton solution of the discretized MPDE.

    Two linear solvers are provided:

    - [Direct]: general sparse LU on the global Jacobian — robust,
      reasonable for grids up to a few thousand points;
    - [Gmres_sweep]: GMRES right-preconditioned by a block
      forward-substitution sweep. With lexicographic ordering the
      backward-difference Jacobian is block lower-triangular except for
      the two periodic wrap couplings, so one sweep (factoring only the
      [n] x [n] diagonal blocks) is a very strong preconditioner — the
      multi-time analogue of the matrix-free Krylov shooting of the
      paper's ref. [10].

    When plain Newton fails, {!solve} falls back to source-stepping
    continuation (paper §3: “using continuation reliably obtained
    solutions in 10-20m”). *)

type linear_solver =
  | Direct
  | Gmres_sweep of { restart : int; max_iter : int; tol : float }

val default_gmres : linear_solver

type options = {
  max_newton : int;  (** default 50 *)
  tol : float;  (** residual infinity norm, default 1e-8 *)
  scheme : Assemble.scheme;
  linear_solver : linear_solver;
  allow_continuation : bool;  (** fall back to source stepping, default true *)
}

val default_options : options

type stats = {
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  linear_iterations : int;  (** cumulated GMRES inner iterations (0 for Direct) *)
  continuation_steps : int;  (** 0 when plain Newton succeeded *)
  wall_seconds : float;
}

type solution = {
  grid : Grid.t;
  system : Assemble.system;
  big_x : Linalg.Vec.t;
  stats : stats;
}

val solve :
  ?options:options ->
  ?seed:Linalg.Vec.t ->
  Assemble.system ->
  Grid.t ->
  solution
(** [seed] is either a single circuit state, replicated to every grid
    point (typically the DC operating point), or a full flattened grid
    state (e.g. from {!quasi_static_start}); default is the zero
    state. *)

val solve_mna :
  ?options:options ->
  shear:Shear.t ->
  n1:int ->
  n2:int ->
  Circuit.Mna.t ->
  solution
(** Convenience: validates source frequencies against the shear
    lattice, computes the DC operating point as seed, and solves.
    @raise Shear.Off_lattice on inconsistent source frequencies. *)

val state_at : solution -> i:int -> j:int -> Linalg.Vec.t
(** Circuit state at grid point [(i, j)] (indices wrapped). *)

val quasi_static_start :
  ?seed:Linalg.Vec.t -> Assemble.system -> Grid.t -> Linalg.Vec.t
(** Flattened initial guess built by solving, independently for every
    slow grid line [t2_j], the fast-scale periodic problem with the
    slow scale frozen (no [∂/∂t2] term). Much closer to the MPDE
    solution than a replicated DC point when the slow variation is
    strong; pass the result as [solve]'s full-length [seed].
    @raise Failure if any column's Newton fails. *)

val residual_norm_check : ?scheme:Assemble.scheme -> solution -> float
(** Recompute ‖residual‖∞ of the stored solution under the given
    discretization (default [Backward]) — a defensive check for tests;
    pass the scheme the solution was computed with. *)
