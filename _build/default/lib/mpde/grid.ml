type t = {
  n1 : int;
  n2 : int;
  shear : Shear.t;
  h1 : float;
  h2 : float;
}

let make ~shear ~n1 ~n2 =
  if n1 < 2 || n2 < 2 then invalid_arg "Grid.make: dimensions must be at least 2";
  {
    n1;
    n2;
    shear;
    h1 = Shear.t1_period shear /. float_of_int n1;
    h2 = Shear.t2_period shear /. float_of_int n2;
  }

let points g = g.n1 * g.n2
let t1_of g i = float_of_int i *. g.h1
let t2_of g j = float_of_int j *. g.h2

let wrap1 g i = ((i mod g.n1) + g.n1) mod g.n1
let wrap2 g j = ((j mod g.n2) + g.n2) mod g.n2
let point_index g i j = (wrap2 g j * g.n1) + wrap1 g i
