(** Fast-scale column problems: the [n1] circuit states over one fast
    period treated as a single nonlinear system, either quasi-static
    (slow derivative dropped) or as one backward-Euler step of the
    envelope march. Shared by {!Envelope_follow} and the MPDE solver's
    quasi-static initializer. *)

val frozen_column :
  ?max_newton:int ->
  ?tol:float ->
  ?seed:Linalg.Vec.t ->
  Assemble.system ->
  n1:int ->
  shear:Shear.t ->
  t2:float ->
  Linalg.Vec.t array
(** Fast-scale periodic steady state with the slow scale frozen at
    [t2]. @raise Failure if Newton fails. *)

val march_step :
  ?max_newton:int ->
  ?tol:float ->
  Assemble.system ->
  n1:int ->
  shear:Shear.t ->
  t2:float ->
  h2:float ->
  prev:Linalg.Vec.t array ->
  Linalg.Vec.t array * int * bool
(** One backward-Euler envelope step from the previous column to slow
    time [t2]; returns [(column, newton_iterations, converged)]. *)
