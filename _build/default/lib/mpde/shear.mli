(** Difference-frequency time scales (paper §2).

    A shear is defined by the fast fundamental [f1] (the [t1] scale,
    period [T1 = 1/f1]) and the slow fundamental [fs] (the [t2]
    difference-frequency scale, period [Td = 1/fs]). Every frequency
    appearing in the circuit's excitation must lie on the lattice

      [f = m·f1 + k·fs],  [m, k] integers,

    and its sheared multi-time phase is [m·f1·t1 + k·fs·t2]
    (generalizing paper eqs. (11) and (13): eq. (11) is [m = 1, k = 1]
    with [fs = fd = f1 − f2]; eq. (13) is [m = 2, k = 1] with
    [fd = 2f1 − f2]). On the diagonal [t1 = t2 = t] the phase reduces
    to [f·t], so the defining property [b(t) = b̂(t, t)] holds by
    construction. *)

type t

exception Off_lattice of float
(** A source frequency that cannot be written as [m·f1 + k·fs]. *)

val make : fast_freq:float -> slow_freq:float -> t
(** @raise Invalid_argument unless [0 < slow_freq < fast_freq]. *)

val fast_freq : t -> float

val slow_freq : t -> float

val t1_period : t -> float

val t2_period : t -> float

val disparity : t -> float
(** [fast_freq / slow_freq] — the frequency-separation factor the
    paper's speedup analysis is parameterized by. *)

val lattice : ?tol:float -> t -> float -> int * int
(** [(m, k)] with [f = m·f1 + k·fs] to relative tolerance [tol]
    (default [1e-6]); [m] is the nearest integer to [f/f1], so slow
    offsets must stay below [f1/2]. @raise Off_lattice otherwise. *)

val phase : t -> t1:float -> t2:float -> float -> float
(** Sheared multi-time phase of frequency [f] at [(t1, t2)] — pass as
    [phase_of] to {!Circuit.Waveform.eval_with} / {!Circuit.Mna.source_with}.
    @raise Off_lattice for frequencies off the lattice. *)

val phase_unsheared : t -> t1:float -> t2:float -> float -> float
(** The *unsheared* two-tone assignment of paper eq. (9)/Figure 1:
    frequencies at (multiples of) the fast fundamental evolve along
    [t1] and everything else along [t2]. Provided for the Fig. 1 / 2
    comparison; not useful for difference-frequency extraction. *)

val validate_sources : t -> Circuit.Mna.t -> (unit, float) Stdlib.result
(** Check every source frequency of the circuit against the lattice;
    [Error f] carries the first offending frequency. *)
