(** Envelope-following (initial-value) mode of the MPDE: instead of
    bi-periodic boundary conditions, integrate along the slow scale
    [t2] with backward Euler, solving at each slow step a fast-scale
    periodic problem. This handles aperiodic slow-scale content (one-
    shot symbol sequences, start-up transients of the envelope) — the
    “envelope simulation” capability of the multi-time family the
    paper's introduction refers to. *)

type result = {
  t2_values : float array;  (** slow-time instants, [steps + 1] of them *)
  columns : Linalg.Vec.t array array;
      (** [columns.(s).(i)] is the circuit state at fast index [i] and
          slow time [t2_values.(s)] *)
  newton_iterations : int;
  converged : bool;
}

val frozen_column :
  ?max_newton:int ->
  ?tol:float ->
  ?seed:Linalg.Vec.t ->
  Assemble.system ->
  n1:int ->
  shear:Shear.t ->
  t2:float ->
  Linalg.Vec.t array
(** Quasi-static fast-scale periodic steady state with the slow scale
    frozen at the given [t2] (drops the [∂/∂t2] term). Used to start
    the envelope march and to build the MPDE solver's quasi-static
    initial guess. @raise Failure if the fast-scale Newton fails. *)

val initial_column :
  ?max_newton:int ->
  ?tol:float ->
  ?seed:Linalg.Vec.t ->
  Assemble.system ->
  n1:int ->
  shear:Shear.t ->
  Linalg.Vec.t array
(** [frozen_column ~t2:0.0]. *)

val run :
  ?max_newton:int ->
  ?tol:float ->
  ?x_init:Linalg.Vec.t array ->
  ?seed:Linalg.Vec.t ->
  system:Assemble.system ->
  shear:Shear.t ->
  n1:int ->
  t2_stop:float ->
  steps:int ->
  unit ->
  result
(** March the envelope from [t2 = 0] to [t2_stop]. [x_init] gives the
    starting fast-scale column (default {!initial_column}). *)

val envelope_of : result -> unknown:int -> mode:Extract.envelope_mode -> float array
