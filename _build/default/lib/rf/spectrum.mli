(** Windowed periodogram and band-power utilities for inspecting the
    spectra of simulated waveforms. *)

type t = {
  freqs : float array;  (** bin centres, [0 .. fs/2] *)
  power : float array;  (** one-sided power spectral estimate (V²) *)
}

val periodogram : ?window:[ `Rect | `Hann ] -> sample_rate:float -> float array -> t
(** One-sided windowed periodogram (default Hann), coherent-gain
    corrected so a full-scale sine reads its squared RMS amplitude. *)

val power_db : float -> float
(** [10·log10] with a −300 dB floor for zero power. *)

val band_power : t -> f_lo:float -> f_hi:float -> float
(** Sum of bin powers within [[f_lo, f_hi]]. *)

val peak_bin : t -> f_near:float -> int
(** Index of the strongest bin within ±2 bins of [f_near]. *)
