let db ratio = if ratio <= 0.0 then -300.0 else 20.0 *. log10 ratio

let thd samples ?max_harmonic () =
  let spectrum = Numeric.Fft.real_harmonics samples in
  let kmax =
    match max_harmonic with
    | Some k -> min k (Array.length spectrum - 1)
    | None -> Array.length spectrum - 1
  in
  if Array.length spectrum < 2 then 0.0
  else begin
    let fundamental = fst spectrum.(1) in
    let s = ref 0.0 in
    for k = 2 to kmax do
      let a = fst spectrum.(k) in
      s := !s +. (a *. a)
    done;
    if fundamental = 0.0 then infinity else sqrt !s /. fundamental
  end

let conversion_gain_db ~baseband_amplitude ~rf_amplitude =
  db (baseband_amplitude /. rf_amplitude)

type eye = {
  opening : float;
  level_one : float;
  level_zero : float;
  isi_rms : float;
}

let eye_metrics ~samples_per_symbol ~bits ?(sample_phase = 0.5) waveform =
  let nbits = Array.length bits in
  if nbits = 0 then invalid_arg "Metrics.eye_metrics: empty bit pattern";
  if Array.length waveform < samples_per_symbol * nbits then
    invalid_arg "Metrics.eye_metrics: waveform shorter than the bit pattern";
  let sample_of k =
    let pos =
      (float_of_int k +. sample_phase) *. float_of_int samples_per_symbol
    in
    let i = min (Array.length waveform - 1) (int_of_float pos) in
    waveform.(i)
  in
  let ones = ref [] and zeros = ref [] in
  Array.iteri
    (fun k b -> if b then ones := sample_of k :: !ones else zeros := sample_of k :: !zeros)
    bits;
  let mean xs =
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let level_one = mean !ones and level_zero = mean !zeros in
  let worst_one = List.fold_left Float.min infinity !ones in
  let worst_zero = List.fold_left Float.max neg_infinity !zeros in
  let opening =
    match (!ones, !zeros) with
    | [], _ | _, [] -> 0.0
    | _ -> worst_one -. worst_zero
  in
  let rms_dev samples level =
    match samples with
    | [] -> 0.0
    | _ ->
        sqrt
          (List.fold_left (fun acc v -> acc +. ((v -. level) ** 2.0)) 0.0 samples
          /. float_of_int (List.length samples))
  in
  let isi_one = rms_dev !ones level_one and isi_zero = rms_dev !zeros level_zero in
  {
    opening;
    level_one;
    level_zero;
    isi_rms = sqrt ((isi_one *. isi_one) +. (isi_zero *. isi_zero));
  }

let adjacent_channel_power_ratio spectrum ~f_centre ~bandwidth ~spacing =
  let half = bandwidth /. 2.0 in
  let main = Spectrum.band_power spectrum ~f_lo:(f_centre -. half) ~f_hi:(f_centre +. half) in
  let adj =
    Spectrum.band_power spectrum
      ~f_lo:(f_centre +. spacing -. half)
      ~f_hi:(f_centre +. spacing +. half)
  in
  if main <= 0.0 then infinity else 10.0 *. log10 (adj /. main)
