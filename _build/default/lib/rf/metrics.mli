(** Communication-link metrics on baseband waveforms: conversion gain,
    distortion, and the eye-diagram / inter-symbol-interference figures
    the paper names as the method's target applications (“well-suited
    for estimating effects such as ISI and ACI”). *)

val db : float -> float
(** [20·log10] voltage ratio, with a −300 dB floor. *)

val thd : float array -> ?max_harmonic:int -> unit -> float
(** Total harmonic distortion of one period of samples:
    [sqrt(Σ_{k≥2} A_k²) / A_1]. *)

val conversion_gain_db : baseband_amplitude:float -> rf_amplitude:float -> float

type eye = {
  opening : float;  (** worst-case vertical separation at the sample instant *)
  level_one : float;  (** mean sampled value over ‘1’ symbols *)
  level_zero : float;  (** mean sampled value over ‘0’ symbols *)
  isi_rms : float;  (** RMS deviation of sampled values from their symbol mean *)
}

val eye_metrics :
  samples_per_symbol:int -> bits:bool array -> ?sample_phase:float -> float array -> eye
(** Slice a baseband waveform into symbols (the waveform must cover
    [Array.length bits] symbols), sample each at [sample_phase]
    (fraction of a symbol, default 0.5) and report eye statistics.
    @raise Invalid_argument if the waveform is shorter than
    [samples_per_symbol * nbits]. *)

val adjacent_channel_power_ratio :
  Spectrum.t -> f_centre:float -> bandwidth:float -> spacing:float -> float
(** ACPR in dB: power in the adjacent channel (centred [spacing] away)
    over power in the main channel, both of width [bandwidth]. *)
