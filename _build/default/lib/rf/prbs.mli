(** Pseudo-random binary sequences from linear-feedback shift
    registers, used to build the paper's bit-stream-modulated RF
    drives. *)

val prbs7 : ?seed:int -> int -> bool array
(** [prbs7 n] is the first [n] bits of the PRBS-7 sequence
    ([x⁷ + x⁶ + 1], period 127). [seed] must be nonzero in its low
    7 bits (default 0x5A). *)

val prbs15 : ?seed:int -> int -> bool array
(** PRBS-15 ([x¹⁵ + x¹⁴ + 1], period 32767). *)

val alternating : int -> bool array
(** [1 0 1 0 …] — worst-case transition density. *)

val balance : bool array -> float
(** Fraction of ones. *)

val run_lengths : bool array -> int list
(** Lengths of consecutive equal-bit runs, in order. *)
