lib/rf/spectrum.mli:
