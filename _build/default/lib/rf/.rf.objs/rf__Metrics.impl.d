lib/rf/metrics.ml: Array Float List Numeric Spectrum
