lib/rf/spectrum.ml: Array Complex Float Numeric
