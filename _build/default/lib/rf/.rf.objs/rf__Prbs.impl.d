lib/rf/prbs.ml: Array List
