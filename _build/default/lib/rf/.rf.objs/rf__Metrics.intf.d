lib/rf/metrics.mli: Spectrum
