lib/rf/prbs.mli:
