let lfsr ~bits ~tap_a ~tap_b ~seed n =
  let mask = (1 lsl bits) - 1 in
  let state = ref (seed land mask) in
  if !state = 0 then invalid_arg "Prbs: seed must be nonzero";
  Array.init n (fun _ ->
      let bit = ((!state lsr tap_a) lxor (!state lsr tap_b)) land 1 in
      state := ((!state lsl 1) lor bit) land mask;
      bit = 1)

let prbs7 ?(seed = 0x5A) n = lfsr ~bits:7 ~tap_a:6 ~tap_b:5 ~seed n
let prbs15 ?(seed = 0x3FFF) n = lfsr ~bits:15 ~tap_a:14 ~tap_b:13 ~seed n
let alternating n = Array.init n (fun i -> i mod 2 = 0)

let balance bits =
  if Array.length bits = 0 then 0.0
  else begin
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
    float_of_int ones /. float_of_int (Array.length bits)
  end

let run_lengths bits =
  let n = Array.length bits in
  if n = 0 then []
  else begin
    let rec go i current acc =
      if i = n then List.rev (current :: acc)
      else if bits.(i) = bits.(i - 1) then go (i + 1) (current + 1) acc
      else go (i + 1) 1 (current :: acc)
    in
    go 1 1 []
  end
