(** Dense complex vectors ([Complex.t array]) used by the harmonic-balance
    solver and FFT post-processing. *)

type t = Complex.t array

val create : int -> t
(** Zero vector. *)

val init : int -> (int -> Complex.t) -> t

val copy : t -> t

val dim : t -> int

val of_real : Vec.t -> t

val real : t -> Vec.t

val imag : t -> Vec.t

val add : t -> t -> t

val sub : t -> t -> t

val scale : Complex.t -> t -> t

val axpy : Complex.t -> t -> t -> unit
(** [axpy a x y] performs [y := a*x + y]. *)

val dot : t -> t -> Complex.t
(** Conjugate-linear in the first argument: [Σ conj(x_i) * y_i]. *)

val norm2 : t -> float

val norm_inf : t -> float

val approx_equal : ?tol:float -> t -> t -> bool
