(** Dense real matrices in row-major storage.

    A matrix is a record of row count, column count, and a flat
    [float array] of length [rows * cols]. *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** [create r c] is the [r] x [c] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Rows given as arrays; raises [Invalid_argument] on ragged input. *)

val to_arrays : t -> float array array

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_entry : t -> int -> int -> float -> unit
(** [add_entry m i j v] performs [m.(i,j) <- m.(i,j) + v] (stamping). *)

val dims : t -> int * int

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix-matrix product. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into a x y] stores [a*x] in [y]. *)

val tmul_vec : t -> Vec.t -> Vec.t
(** Transposed matrix-vector product [aᵀ x]. *)

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val set_row : t -> int -> Vec.t -> unit

val swap_rows : t -> int -> int -> unit

val frobenius_norm : t -> float

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val approx_equal : ?tol:float -> t -> t -> bool

val outer : Vec.t -> Vec.t -> t

val trace : t -> float

val pp : Format.formatter -> t -> unit
