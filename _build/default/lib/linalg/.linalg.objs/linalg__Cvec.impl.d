lib/linalg/cvec.ml: Array Complex Float
