lib/linalg/cvec.mli: Complex Vec
