type t = { rows : int; cols : int; data : Complex.t array }

exception Singular of int

let create rows cols = { rows; cols; data = Array.make (rows * cols) Complex.zero }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then Complex.one else Complex.zero)
let copy m = { m with data = Array.copy m.data }
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let add_entry m i j v =
  let k = (i * m.cols) + j in
  m.data.(k) <- Complex.add m.data.(k) v

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Cmat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref Complex.zero in
      for j = 0 to a.cols - 1 do
        s := Complex.add !s (Complex.mul (get a i j) x.(j))
      done;
      !s)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Cmat.mul: dimension mismatch";
  init a.rows b.cols (fun i j ->
      let s = ref Complex.zero in
      for k = 0 to a.cols - 1 do
        s := Complex.add !s (Complex.mul (get a i k) (get b k j))
      done;
      !s)

let swap_rows m i j =
  if i <> j then
    for k = 0 to m.cols - 1 do
      let tmp = get m i k in
      set m i k (get m j k);
      set m j k tmp
    done

let lu_solve a b =
  let n = a.rows in
  if a.cols <> n then invalid_arg "Cmat.lu_solve: matrix not square";
  if Array.length b <> n then invalid_arg "Cmat.lu_solve: rhs dimension mismatch";
  let m = copy a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm (get m i k) > Complex.norm (get m !piv k) then piv := i
    done;
    if !piv <> k then begin
      swap_rows m k !piv;
      let tmp = x.(k) in
      x.(k) <- x.(!piv);
      x.(!piv) <- tmp
    end;
    let pivot = get m k k in
    if Complex.norm pivot < 1e-300 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let factor = Complex.div (get m i k) pivot in
      if factor <> Complex.zero then begin
        for j = k + 1 to n - 1 do
          set m i j (Complex.sub (get m i j) (Complex.mul factor (get m k j)))
        done;
        x.(i) <- Complex.sub x.(i) (Complex.mul factor x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := Complex.sub !s (Complex.mul (get m i j) x.(j))
    done;
    x.(i) <- Complex.div !s (get m i i)
  done;
  x
