type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
      rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> m.data.((i * m.cols) + j)))

let copy m = { m with data = Array.copy m.data }
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let add_entry m i j v =
  let k = (i * m.cols) + j in
  m.data.(k) <- m.data.(k) +. v

let dims m = (m.rows, m.cols)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same_dims a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat: dimension mismatch"

let add a b =
  check_same_dims a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same_dims a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s a = { a with data = Array.map (fun v -> s *. v) a.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_vec_into a x y =
  if a.cols <> Array.length x || a.rows <> Array.length y then
    invalid_arg "Mat.mul_vec_into: dimension mismatch";
  for i = 0 to a.rows - 1 do
    let s = ref 0.0 in
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      s := !s +. (a.data.(base + j) *. x.(j))
    done;
    y.(i) <- !s
  done

let mul_vec a x =
  let y = Array.make a.rows 0.0 in
  mul_vec_into a x y;
  y

let tmul_vec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.tmul_vec: dimension mismatch";
  let y = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (a.data.((i * a.cols) + j) *. xi)
      done
  done;
  y

let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i v =
  if Array.length v <> m.cols then invalid_arg "Mat.set_row: dimension mismatch";
  Array.blit v 0 m.data (i * m.cols) m.cols

let swap_rows m i j =
  if i <> j then
    for k = 0 to m.cols - 1 do
      let tmp = get m i k in
      set m i k (get m j k);
      set m j k tmp
    done

let frobenius_norm m =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 m.data)

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs (get m i j)
    done;
    if !s > !best then best := !s
  done;
  !best

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  Array.iteri (fun k v -> if Float.abs (v -. b.data.(k)) > tol then ok := false) a.data;
  !ok

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let trace m =
  let n = min m.rows m.cols in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. get m i i
  done;
  !s

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[|";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf " %10.4g" (get m i j)
    done;
    Format.fprintf ppf " |@]@\n"
  done
