(** Dense real vectors backed by [float array].

    All operations are total on matching lengths; mismatched lengths raise
    [Invalid_argument]. Functions suffixed [_ip] mutate their first
    argument in place. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit

val of_list : float list -> t

val to_list : t -> float list

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y := a*x + y] in place. *)

val axpby : float -> t -> float -> t -> t
(** [axpby a x b y] is the fresh vector [a*x + b*y]. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val norm1 : t -> float

val dist2 : t -> t -> float
(** [dist2 x y] is [norm2 (sub x y)] without allocating. *)

val scale_ip : float -> t -> unit

val add_ip : t -> t -> unit
(** [add_ip x y] performs [x := x + y]. *)

val sub_ip : t -> t -> unit
(** [sub_ip x y] performs [x := x - y]. *)

val neg : t -> t

val max_abs_index : t -> int
(** Index of the entry of largest magnitude; raises [Invalid_argument] on
    the empty vector. *)

val mean : t -> float

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [tol]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
