(** Dense complex matrices (row-major) with an LU solver, used for
    harmonic-balance spectral Jacobians. *)

type t = { rows : int; cols : int; data : Complex.t array }

val create : int -> int -> t

val init : int -> int -> (int -> int -> Complex.t) -> t

val identity : int -> t

val copy : t -> t

val get : t -> int -> int -> Complex.t

val set : t -> int -> int -> Complex.t -> unit

val add_entry : t -> int -> int -> Complex.t -> unit

val mul_vec : t -> Cvec.t -> Cvec.t

val mul : t -> t -> t

val swap_rows : t -> int -> int -> unit

exception Singular of int

val lu_solve : t -> Cvec.t -> Cvec.t
(** In-place-copy LU with partial pivoting; solves [a x = b].
    @raise Singular on a numerically singular pivot. *)
