type t = float array

let create n = Array.make n 0.0
let init = Array.init
let copy = Array.copy
let dim = Array.length
let fill x v = Array.fill x 0 (Array.length x) v
let of_list = Array.of_list
let to_list = Array.to_list
let map = Array.map

let check_same_dim x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vec: dimension mismatch"

let map2 f x y =
  check_same_dim x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let add x y = map2 ( +. ) x y
let sub x y = map2 ( -. ) x y
let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_same_dim x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let axpby a x b y =
  check_same_dim x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. (b *. y.(i)))

let dot x y =
  check_same_dim x y;
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let norm1 x = Array.fold_left (fun acc v -> acc +. Float.abs v) 0.0 x

let dist2 x y =
  check_same_dim x y;
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    s := !s +. (d *. d)
  done;
  sqrt !s

let scale_ip a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let add_ip x y =
  check_same_dim x y;
  for i = 0 to Array.length x - 1 do
    x.(i) <- x.(i) +. y.(i)
  done

let sub_ip x y =
  check_same_dim x y;
  for i = 0 to Array.length x - 1 do
    x.(i) <- x.(i) -. y.(i)
  done

let neg x = Array.map (fun v -> -.v) x

let max_abs_index x =
  if Array.length x = 0 then invalid_arg "Vec.max_abs_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if Float.abs x.(i) > Float.abs x.(!best) then best := i
  done;
  !best

let mean x =
  if Array.length x = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 x /. float_of_int (Array.length x)

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let pp ppf x =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf v -> Format.fprintf ppf "%.6g" v))
    (Array.to_list x)
