type t = Complex.t array

let create n = Array.make n Complex.zero
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_same_dim x y =
  if Array.length x <> Array.length y then invalid_arg "Cvec: dimension mismatch"

let of_real x = Array.map (fun re -> { Complex.re; im = 0.0 }) x
let real x = Array.map (fun (z : Complex.t) -> z.re) x
let imag x = Array.map (fun (z : Complex.t) -> z.im) x

let add x y =
  check_same_dim x y;
  Array.init (Array.length x) (fun i -> Complex.add x.(i) y.(i))

let sub x y =
  check_same_dim x y;
  Array.init (Array.length x) (fun i -> Complex.sub x.(i) y.(i))

let scale a x = Array.map (Complex.mul a) x

let axpy a x y =
  check_same_dim x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- Complex.add y.(i) (Complex.mul a x.(i))
  done

let dot x y =
  check_same_dim x y;
  let s = ref Complex.zero in
  for i = 0 to Array.length x - 1 do
    s := Complex.add !s (Complex.mul (Complex.conj x.(i)) y.(i))
  done;
  !s

let norm2 x = sqrt (dot x x).Complex.re

let norm_inf x =
  Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0.0 x

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Complex.norm (Complex.sub x.(i) y.(i)) > tol then ok := false
  done;
  !ok
