test/test_steady.ml: Alcotest Array Circuit Circuits Float Linalg Numeric Printf Steady
