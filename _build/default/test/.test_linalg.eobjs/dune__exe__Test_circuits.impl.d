test/test_circuits.ml: Alcotest Array Circuit Circuits Float List Mpde
