test/test_circuit.ml: Alcotest Array Circuit Float Gen List Numeric Printf QCheck QCheck_alcotest Sparse
