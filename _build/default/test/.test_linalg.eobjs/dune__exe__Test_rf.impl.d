test/test_rf.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Rf
