test/test_extensions.ml: Alcotest Array Circuit Circuits Complex Float Linalg List Mpde Numeric Option Printf
