test/test_integration.ml: Alcotest Array Circuit Circuits Float List Mpde Numeric Printf Steady
