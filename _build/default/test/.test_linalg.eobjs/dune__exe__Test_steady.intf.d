test/test_steady.mli:
