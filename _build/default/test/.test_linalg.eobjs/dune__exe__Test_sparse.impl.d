test/test_sparse.ml: Alcotest Array Float Gen Linalg List QCheck QCheck_alcotest Sparse
