test/test_mpde.ml: Alcotest Array Circuit Circuits Float Gen Linalg List Mpde Numeric Printf QCheck QCheck_alcotest Sparse
