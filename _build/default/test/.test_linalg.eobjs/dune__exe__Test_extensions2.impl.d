test/test_extensions2.ml: Alcotest Array Circuit Circuits Float Linalg Mpde Numeric Printf Sparse Steady
