test/test_numeric.ml: Alcotest Array Complex Float Gen Linalg List Numeric QCheck QCheck_alcotest Sparse
