test/test_mpde.mli:
