(* Tests for the second batch of extensions: multiple shooting, RCM
   reordering, MPDE grid refinement, and the Gilbert-cell BJT mixer. *)

module W = Circuit.Waveform

(* ---------- Multiple shooting ---------- *)

let rc_fixture () =
  Circuits.rc_lowpass ~r:1e3 ~c:0.2e-6 ~drive:(W.sine ~amplitude:1.0 ~freq:1e3 ()) ()

let test_mshoot_matches_single () =
  let { Circuits.mna; _ } = rc_fixture () in
  let dae = Circuit.Mna.dae mna in
  let period = 1e-3 in
  let idx = Circuit.Mna.node_index mna "out" in
  let single = Steady.Shooting.solve ~steps_per_period:256 ~dae ~period () in
  let multi =
    Steady.Multiple_shooting.solve ~steps_per_segment:64 ~dae ~period ~segments:4 ()
  in
  Alcotest.(check bool) "both converge" true
    (single.Steady.Shooting.converged && multi.Steady.Multiple_shooting.converged);
  (* Same BE grid (4 x 64 = 256 steps): waveforms must agree closely. *)
  let worst = ref 0.0 in
  for k = 0 to 256 do
    let a = single.Steady.Shooting.trace.Numeric.Integrator.states.(k).(idx) in
    let b = multi.Steady.Multiple_shooting.trace.Numeric.Integrator.states.(k).(idx) in
    worst := Float.max !worst (Float.abs (a -. b))
  done;
  Alcotest.(check bool) "waveforms agree" true (!worst < 1e-6)

let test_mshoot_matching_defects_closed () =
  let { Circuits.mna; _ } =
    Circuits.diode_rectifier ~drive:(W.sine ~amplitude:2.0 ~freq:1e3 ()) ()
  in
  let dae = Circuit.Mna.dae mna in
  let dc = Circuit.Dcop.solve_exn mna in
  let r =
    Steady.Multiple_shooting.solve ~x0:dc ~steps_per_segment:64 ~dae ~period:1e-3
      ~segments:5 ()
  in
  Alcotest.(check bool) "converged" true r.Steady.Multiple_shooting.converged;
  Alcotest.(check bool) "defects below tolerance" true
    (r.Steady.Multiple_shooting.residual_norm < 1e-8);
  Alcotest.(check int) "five segment starts" 5
    (Array.length r.Steady.Multiple_shooting.segment_starts)

let test_mshoot_single_segment_is_shooting () =
  let { Circuits.mna; _ } = rc_fixture () in
  let dae = Circuit.Mna.dae mna in
  let r =
    Steady.Multiple_shooting.solve ~steps_per_segment:128 ~dae ~period:1e-3 ~segments:1 ()
  in
  Alcotest.(check bool) "converges with one segment" true
    r.Steady.Multiple_shooting.converged

let test_mshoot_validation () =
  let { Circuits.mna; _ } = rc_fixture () in
  Alcotest.check_raises "segments"
    (Invalid_argument "Multiple_shooting.solve: segments must be positive") (fun () ->
      ignore
        (Steady.Multiple_shooting.solve ~dae:(Circuit.Mna.dae mna) ~period:1e-3
           ~segments:0 ()))

(* ---------- Rcm ---------- *)

let grid_laplacian nx ny =
  (* 2-D 5-point Laplacian in row-major natural ordering — the classic
     bandwidth-reduction showcase. *)
  let n = nx * ny in
  let coo = Sparse.Coo.create n n in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = (y * nx) + x in
      Sparse.Coo.add coo i i 4.0;
      if x > 0 then Sparse.Coo.add coo i (i - 1) (-1.0);
      if x < nx - 1 then Sparse.Coo.add coo i (i + 1) (-1.0);
      if y > 0 then Sparse.Coo.add coo i (i - nx) (-1.0);
      if y < ny - 1 then Sparse.Coo.add coo i (i + nx) (-1.0)
    done
  done;
  Sparse.Csr.of_coo coo

let test_rcm_is_permutation () =
  let a = grid_laplacian 7 5 in
  let perm = Sparse.Rcm.ordering a in
  let seen = Array.make 35 false in
  Array.iter
    (fun old_index ->
      Alcotest.(check bool) "no duplicates" false seen.(old_index);
      seen.(old_index) <- true)
    perm;
  Alcotest.(check bool) "covers all" true (Array.for_all (fun b -> b) seen)

let test_rcm_inverse () =
  let perm = [| 2; 0; 1 |] in
  Alcotest.(check (array int)) "inverse" [| 1; 2; 0 |] (Sparse.Rcm.inverse perm)

let test_rcm_reduces_bandwidth () =
  (* Scramble a grid Laplacian with a random-ish permutation, then
     check RCM restores a small bandwidth. *)
  let a = grid_laplacian 12 12 in
  let n = 144 in
  let scramble = Array.init n (fun i -> (i * 89) mod n) in
  let scrambled = Sparse.Rcm.permute_symmetric a scramble in
  let before = Sparse.Rcm.bandwidth scrambled in
  let perm = Sparse.Rcm.ordering scrambled in
  let after = Sparse.Rcm.bandwidth (Sparse.Rcm.permute_symmetric scrambled perm) in
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth shrinks (%d -> %d)" before after)
    true
    (after < before / 3)

let test_rcm_permute_preserves_solution () =
  let a = grid_laplacian 6 6 in
  let b = Array.init 36 (fun i -> sin (float_of_int i)) in
  let x = Sparse.Splu.solve (Sparse.Splu.factor a) b in
  let perm = Sparse.Rcm.ordering a in
  let inv = Sparse.Rcm.inverse perm in
  let pa = Sparse.Rcm.permute_symmetric a perm in
  let pb = Array.init 36 (fun k -> b.(perm.(k))) in
  let px = Sparse.Splu.solve (Sparse.Splu.factor pa) pb in
  (* px.(new) corresponds to x.(perm.(new)). *)
  let worst = ref 0.0 in
  Array.iteri
    (fun old_index v -> worst := Float.max !worst (Float.abs (px.(inv.(old_index)) -. v)))
    x;
  Alcotest.(check bool) "same solution after reordering" true (!worst < 1e-10)

let test_rcm_disconnected () =
  (* Block-diagonal with two components must still order everything. *)
  let coo = Sparse.Coo.create 4 4 in
  Sparse.Coo.add coo 0 0 1.0;
  Sparse.Coo.add coo 1 1 1.0;
  Sparse.Coo.add coo 0 1 0.5;
  Sparse.Coo.add coo 1 0 0.5;
  Sparse.Coo.add coo 2 2 1.0;
  Sparse.Coo.add coo 3 3 1.0;
  let perm = Sparse.Rcm.ordering (Sparse.Csr.of_coo coo) in
  Alcotest.(check int) "length" 4 (Array.length perm)

(* ---------- Mpde.Refine ---------- *)

let two_tone_system () =
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~r:1e3 ~c:100e-12
      ~drive:
        (W.sum (W.sine ~amplitude:1.0 ~freq:1e6 ()) (W.sine ~amplitude:1.0 ~freq:1.001e6 ()))
      ()
  in
  let shear = Mpde.Shear.make ~fast_freq:1e6 ~slow_freq:1e3 in
  (Mpde.Assemble.of_mna ~shear mna, shear, Circuit.Dcop.solve_exn mna)

let test_refine_estimates_decrease () =
  let sys, shear, seed = two_tone_system () in
  let _, e1_coarse, _ = Mpde.Refine.estimate_errors ~seed sys ~shear ~n1:8 ~n2:8 in
  let _, e1_fine, _ = Mpde.Refine.estimate_errors ~seed sys ~shear ~n1:32 ~n2:8 in
  Alcotest.(check bool)
    (Printf.sprintf "finer grid -> smaller t1 estimate (%.4f vs %.4f)" e1_fine e1_coarse)
    true (e1_fine < e1_coarse)

let test_refine_auto_reaches_tolerance_or_budget () =
  let sys, shear, seed = two_tone_system () in
  let report = Mpde.Refine.auto ~seed ~tol:0.02 ~max_points:4096 sys ~shear ~n1:8 ~n2:8 in
  Alcotest.(check bool) "solution converged" true
    report.Mpde.Refine.solution.Mpde.Solver.stats.converged;
  Alcotest.(check bool) "made progress or already good" true
    (report.Mpde.Refine.refinements >= 0);
  Alcotest.(check bool) "within budget" true (report.Mpde.Refine.n1 * report.Mpde.Refine.n2 <= 4096);
  (* Either tolerance was reached or the budget stopped us. *)
  let hit_tol =
    report.Mpde.Refine.est_error_t1 <= 0.02 && report.Mpde.Refine.est_error_t2 <= 0.02
  in
  let hit_budget = 2 * report.Mpde.Refine.n1 * report.Mpde.Refine.n2 > 4096 in
  Alcotest.(check bool) "tol or budget" true (hit_tol || hit_budget)

let test_refine_refines_needier_direction () =
  (* The fast axis carries the MHz waveform, the slow axis a smooth
     1 kHz envelope: with a deliberately coarse t1 and fine t2, the
     first refinement must double n1. *)
  let sys, shear, seed = two_tone_system () in
  let report = Mpde.Refine.auto ~seed ~tol:1e-9 ~max_points:(8 * 32 * 2) sys ~shear ~n1:8 ~n2:32 in
  Alcotest.(check bool) "doubled t1 first" true
    (report.Mpde.Refine.n1 >= 16 || report.Mpde.Refine.refinements = 0)

(* ---------- Gilbert mixer ---------- *)

let test_gilbert_dc () =
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:100.01e6 () in
  let { Circuits.mna; _ } =
    Circuits.gilbert_mixer ~f_lo:100e6 ~rf_signal ~rf_amplitude:0.0 ()
  in
  let report = Circuit.Dcop.solve mna in
  Alcotest.(check bool) "dc converges" true report.Circuit.Dcop.converged;
  let x = report.Circuit.Dcop.x in
  let nodes = Circuits.gilbert_mixer_nodes in
  Alcotest.(check (float 1e-5)) "balanced"
    (Circuit.Mna.voltage mna x nodes.Circuits.out_plus)
    (Circuit.Mna.voltage mna x nodes.Circuits.out_minus);
  let ve = Circuit.Mna.voltage mna x nodes.Circuits.source_node in
  Alcotest.(check bool) "tail biased" true (ve > 0.3 && ve < 1.4)

let test_gilbert_mpde_conversion () =
  let f_lo = 100e6 and fd = 10e3 in
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:(f_lo +. fd) () in
  let { Circuits.mna; _ } =
    Circuits.gilbert_mixer ~f_lo ~rf_signal ~rf_amplitude:0.02 ()
  in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:16 mna in
  Alcotest.(check bool) "mpde converges on BJT circuit" true
    sol.Mpde.Solver.stats.converged;
  let nodes = Circuits.gilbert_mixer_nodes in
  let diff =
    Mpde.Extract.differential_surface sol mna nodes.Circuits.out_plus nodes.Circuits.out_minus
  in
  let baseband = Mpde.Extract.t2_harmonic_amplitude ~values:diff ~harmonic:1 in
  Alcotest.(check bool)
    (Printf.sprintf "down-conversion (baseband %.4f V)" baseband)
    true (baseband > 0.05)

let test_gilbert_balance_rejects_lo_leakage () =
  (* With zero RF the double-balanced output should carry essentially
     no LO tone (matched quad). *)
  let f_lo = 100e6 and fd = 10e3 in
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:(f_lo +. fd) () in
  let { Circuits.mna; _ } =
    Circuits.gilbert_mixer ~f_lo ~rf_signal ~rf_amplitude:0.0 ()
  in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:8 mna in
  let nodes = Circuits.gilbert_mixer_nodes in
  let diff =
    Mpde.Extract.differential_surface sol mna nodes.Circuits.out_plus nodes.Circuits.out_minus
  in
  (* fast-scale column: LO leakage = fundamental amplitude *)
  let col = Array.init 32 (fun i -> diff.(i).(0)) in
  Alcotest.(check bool) "LO leakage suppressed" true
    (Numeric.Fft.amplitude_at col 1 < 1e-3)

(* ---------- bi-spectral scheme (two-tone harmonic balance) ---------- *)

let bispectral_fixture () =
  let f1 = 1e6 and fd = 1e3 in
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~r:1e3 ~c:100e-12
      ~drive:
        (W.sum (W.sine ~amplitude:1.0 ~freq:f1 ()) (W.sine ~amplitude:1.0 ~freq:(f1 +. fd) ()))
      ()
  in
  (mna, Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd, f1, fd)

let test_bispectral_exact_on_linear () =
  (* The solution of a linear circuit under two tones is band-limited,
     so the bi-spectral MPDE (= two-tone HB) must reproduce it to
     machine-ish precision even on a tiny 9x5 grid. *)
  let mna, shear, f1, fd = bispectral_fixture () in
  let options =
    {
      Mpde.Solver.default_options with
      scheme = Mpde.Assemble.Spectral_both;
      linear_solver = Mpde.Solver.Direct;
    }
  in
  let sol = Mpde.Solver.solve_mna ~options ~shear ~n1:9 ~n2:5 mna in
  Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
  let out = Circuit.Mna.node_index mna "out" in
  let r = 1e3 and c = 100e-12 in
  let worst = ref 0.0 in
  for i = 0 to 8 do
    for j = 0 to 4 do
      let t1 = Mpde.Grid.t1_of sol.Mpde.Solver.grid i in
      let t2 = Mpde.Grid.t2_of sol.Mpde.Solver.grid j in
      let resp f phase =
        let w = 2.0 *. Float.pi *. f in
        let wrc = w *. r *. c in
        1.0 /. sqrt (1.0 +. (wrc *. wrc)) *. sin ((2.0 *. Float.pi *. phase) -. atan wrc)
      in
      let exact =
        resp f1 (f1 *. t1) +. resp (f1 +. fd) ((f1 *. t1) +. (fd *. t2))
      in
      let v = (Mpde.Solver.state_at sol ~i ~j).(out) in
      worst := Float.max !worst (Float.abs (v -. exact))
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "HB-exact on the grid (err %.2e)" !worst)
    true (!worst < 1e-7)

let test_bispectral_requires_odd_dims () =
  let mna, shear, _, _ = bispectral_fixture () in
  let options =
    {
      Mpde.Solver.default_options with
      scheme = Mpde.Assemble.Spectral_both;
      linear_solver = Mpde.Solver.Direct;
      allow_continuation = false;
    }
  in
  match Mpde.Solver.solve_mna ~options ~shear ~n1:8 ~n2:5 mna with
  | exception Invalid_argument _ -> ()
  | sol ->
      Alcotest.(check bool) "must not converge silently" true
        (not sol.Mpde.Solver.stats.converged)

let test_bispectral_ok_predicate () =
  let _, shear, _, _ = bispectral_fixture () in
  Alcotest.(check bool) "odd/odd" true
    (Mpde.Assemble.spectral_both_ok (Mpde.Grid.make ~shear ~n1:9 ~n2:5));
  Alcotest.(check bool) "even n2 rejected" false
    (Mpde.Assemble.spectral_both_ok (Mpde.Grid.make ~shear ~n1:9 ~n2:6))

(* ---------- bridge rectifier ---------- *)

let test_bridge_full_wave () =
  (* Single-tone drive: the load sees |v| minus two diode drops. *)
  let drive = W.sine ~amplitude:10.0 ~freq:1e3 () in
  let { Circuits.mna; _ } = Circuits.bridge_rectifier ~load_c:1e-9 ~drive () in
  let r = Circuit.Transient.run ~mna ~t_stop:3e-3 ~steps:3000 () in
  let w = Circuit.Transient.differential_waveform mna r "p" "n" in
  (* After start-up, at both the positive and the negative drive peak
     the load must sit near 10 − 2·0.8 V: full-wave behaviour. *)
  let at t =
    let k = int_of_float (t /. 3e-3 *. 3000.0) in
    w.(k)
  in
  Alcotest.(check bool) "positive peak rectified" true (at 2.25e-3 > 7.5);
  Alcotest.(check bool) "negative peak rectified" true (at 2.75e-3 > 7.5);
  Alcotest.(check bool) "never negative" true (Array.for_all (fun v -> v > -0.1) w)

let test_bridge_beat_via_mpde () =
  let f1 = 50e3 and fd = 1e3 in
  let drive =
    W.sum (W.sine ~amplitude:5.0 ~freq:f1 ()) (W.sine ~amplitude:2.0 ~freq:(f1 +. fd) ())
  in
  let { Circuits.mna; _ } = Circuits.bridge_rectifier ~load_c:1e-7 ~drive () in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:16 mna in
  Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
  let load = Mpde.Extract.differential_surface sol mna "p" "n" in
  let beat = Mpde.Extract.t2_harmonic_amplitude ~values:load ~harmonic:1 in
  Alcotest.(check bool) "beat ripple on the dc link" true (beat > 0.3)

(* ---------- quasi-static start ---------- *)

let test_quasi_static_start_close_to_solution () =
  let f1 = 1e6 and fd = 2e4 in
  let { Circuits.mna; _ } = Circuits.envelope_detector ~f1 ~f2:(f1 +. fd) ~amplitude:1.0 () in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let grid = Mpde.Grid.make ~shear ~n1:32 ~n2:16 in
  let dc = Circuit.Dcop.solve_exn mna in
  let qs = Mpde.Solver.quasi_static_start ~seed:dc sys grid in
  Alcotest.(check int) "full-length seed" (32 * 16 * Circuit.Mna.size mna)
    (Array.length qs);
  (* Solving from the quasi-static start must converge and not take
     more iterations than the replicated-DC start. *)
  let from_qs = Mpde.Solver.solve ~seed:qs sys grid in
  let from_dc = Mpde.Solver.solve ~seed:dc sys grid in
  Alcotest.(check bool) "qs converged" true from_qs.Mpde.Solver.stats.converged;
  Alcotest.(check bool) "qs start not worse" true
    (from_qs.Mpde.Solver.stats.newton_iterations
    <= from_dc.Mpde.Solver.stats.newton_iterations);
  (* Both starts must land on the same solution. *)
  Alcotest.(check bool) "same fixed point" true
    (Linalg.Vec.dist2 from_qs.Mpde.Solver.big_x from_dc.Mpde.Solver.big_x < 1e-5)

let test_frozen_column_is_periodic_steady_state () =
  (* A frozen column at t2 must solve the fast-scale periodic problem:
     check against Periodic_fd on the same circuit with the slow source
     pinned. *)
  let f1 = 1e6 in
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~drive:(W.sine ~amplitude:1.0 ~freq:f1 ()) ()
  in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:1e3 in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let column = Mpde.Envelope_follow.frozen_column sys ~n1:64 ~shear ~t2:0.0 in
  let reference =
    Steady.Periodic_fd.solve ~dae:(Circuit.Mna.dae mna) ~period:(1.0 /. f1) ~points:64 ()
  in
  Alcotest.(check bool) "reference converged" true reference.Steady.Periodic_fd.converged;
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      worst :=
        Float.max !worst (Linalg.Vec.dist2 x reference.Steady.Periodic_fd.states.(i)))
    column;
  Alcotest.(check bool) "matches 1-D periodic collocation" true (!worst < 1e-8)

let () =
  Alcotest.run "extensions2"
    [
      ( "multiple shooting",
        [
          Alcotest.test_case "matches single shooting" `Quick test_mshoot_matches_single;
          Alcotest.test_case "matching defects closed" `Quick test_mshoot_matching_defects_closed;
          Alcotest.test_case "single segment" `Quick test_mshoot_single_segment_is_shooting;
          Alcotest.test_case "validation" `Quick test_mshoot_validation;
        ] );
      ( "rcm",
        [
          Alcotest.test_case "is a permutation" `Quick test_rcm_is_permutation;
          Alcotest.test_case "inverse" `Quick test_rcm_inverse;
          Alcotest.test_case "reduces bandwidth" `Quick test_rcm_reduces_bandwidth;
          Alcotest.test_case "solution preserved" `Quick test_rcm_permute_preserves_solution;
          Alcotest.test_case "disconnected graphs" `Quick test_rcm_disconnected;
        ] );
      ( "refine",
        [
          Alcotest.test_case "estimates decrease" `Quick test_refine_estimates_decrease;
          Alcotest.test_case "auto reaches tol/budget" `Quick test_refine_auto_reaches_tolerance_or_budget;
          Alcotest.test_case "refines needier direction" `Quick test_refine_refines_needier_direction;
        ] );
      ( "gilbert mixer",
        [
          Alcotest.test_case "dc operating point" `Quick test_gilbert_dc;
          Alcotest.test_case "mpde conversion" `Slow test_gilbert_mpde_conversion;
          Alcotest.test_case "lo leakage suppressed" `Slow test_gilbert_balance_rejects_lo_leakage;
        ] );
      ( "bi-spectral (two-tone HB)",
        [
          Alcotest.test_case "exact on linear" `Quick test_bispectral_exact_on_linear;
          Alcotest.test_case "odd dims required" `Quick test_bispectral_requires_odd_dims;
          Alcotest.test_case "predicate" `Quick test_bispectral_ok_predicate;
        ] );
      ( "bridge rectifier",
        [
          Alcotest.test_case "full wave" `Quick test_bridge_full_wave;
          Alcotest.test_case "beat via mpde" `Quick test_bridge_beat_via_mpde;
        ] );
      ( "quasi-static start",
        [
          Alcotest.test_case "close to solution" `Quick test_quasi_static_start_close_to_solution;
          Alcotest.test_case "frozen column = periodic pss" `Quick
            test_frozen_column_is_periodic_steady_state;
        ] );
    ]
