(* Tests for the SPICE-like circuit substrate: waveforms, device
   models, netlist, MNA assembly, DC operating point, transient. *)

module W = Circuit.Waveform
module N = Circuit.Netlist

let check_float = Alcotest.(check (float 1e-9))
let pi = 4.0 *. atan 1.0

(* ---------- Waveform ---------- *)

let test_waveform_dc () = check_float "dc" 2.5 (W.eval (W.dc 2.5) 123.0)

let test_waveform_sine () =
  let w = W.sine ~offset:1.0 ~amplitude:2.0 ~freq:10.0 () in
  check_float "t=0" 1.0 (W.eval w 0.0);
  Alcotest.(check (float 1e-9)) "quarter period" 3.0 (W.eval w 0.025)

let test_waveform_cosine_phase () =
  let w = W.cosine ~phase:0.25 ~amplitude:1.0 ~freq:1.0 () in
  (* cos(2π(t + 1/4)) at t=0 is 0. *)
  Alcotest.(check (float 1e-12)) "phase shift" 0.0 (W.eval w 0.0)

let test_waveform_pulse_levels () =
  let w = W.pulse ~rise_frac:0.0 ~fall_frac:0.0 ~low:0.0 ~high:5.0 ~duty:0.5 ~freq:1.0 () in
  check_float "high" 5.0 (W.eval w 0.25);
  check_float "low" 0.0 (W.eval w 0.75)

let test_waveform_pulse_ramps () =
  let w = W.pulse ~rise_frac:0.2 ~fall_frac:0.2 ~low:0.0 ~high:1.0 ~duty:0.5 ~freq:1.0 () in
  check_float "mid rise" 0.5 (W.eval w 0.1);
  check_float "top" 1.0 (W.eval w 0.3)

let test_waveform_bits () =
  let bits = [| true; false; true; true |] in
  let w = W.bit_stream ~transition_frac:0.0 ~bits ~symbol_freq:4.0 ~high:1.0 () in
  (* symbol_freq 4 Hz and 4 bits → pattern period 1 s, symbol 0.25 s. *)
  check_float "bit0" 1.0 (W.eval w 0.1);
  check_float "bit1" 0.0 (W.eval w 0.35);
  check_float "bit2" 1.0 (W.eval w 0.6);
  check_float "wraps" 1.0 (W.eval w 1.1)

let test_waveform_bits_smoothing () =
  let bits = [| true; false |] in
  let w = W.bit_stream ~transition_frac:0.5 ~bits ~symbol_freq:2.0 ~high:1.0 () in
  (* Halfway through the transition window the level is halfway. *)
  let mid = W.eval w 0.625 in
  Alcotest.(check (float 1e-9)) "raised-cosine midpoint" 0.5 mid

let test_waveform_modulated_carrier_diag () =
  let bits = [| true; true; false; true |] in
  let w =
    W.modulated_carrier ~transition_frac:0.0 ~amplitude:2.0 ~carrier_freq:100.0 ~bits
      ~symbol_freq:4.0 ()
  in
  (* At t=0.1 (bit 0 high): 2·cos(2π·100·0.1) = 2·cos(20π) = 2. *)
  Alcotest.(check (float 1e-9)) "on bit" 2.0 (W.eval w 0.1);
  (* During bit 2 (off) the carrier is suppressed. *)
  Alcotest.(check (float 1e-9)) "off bit" 0.0 (W.eval w 0.6)

let test_waveform_sum_scale () =
  let w = W.sum (W.dc 1.0) (W.scale 2.0 (W.dc 3.0)) in
  check_float "sum/scale" 7.0 (W.eval w 0.0)

let test_waveform_frequencies () =
  let w = W.sum (W.sine ~amplitude:1.0 ~freq:10.0 ()) (W.cosine ~amplitude:1.0 ~freq:20.0 ()) in
  let fs = List.sort compare (W.frequencies w) in
  Alcotest.(check (list (float 1e-12))) "distinct freqs" [ 10.0; 20.0 ] fs

let test_waveform_eval_with_custom_phase () =
  let w = W.sine ~amplitude:1.0 ~freq:50.0 () in
  (* Freeze the phase at a quarter period regardless of frequency. *)
  let v = W.eval_with ~phase_of:(fun _ -> 0.25) w in
  check_float "custom phase" 1.0 v

let test_waveform_sampled () =
  let w =
    { W.dc = 0.0; terms = [ { W.gain = 1.0; factors = [ { W.shape = W.Sampled [| 1.0; 3.0 |]; freq = 1.0 } ] } ] }
  in
  check_float "sample 0" 1.0 (W.eval w 0.0);
  check_float "interp" 2.0 (W.eval w 0.25)

(* ---------- Diode model ---------- *)

let test_diode_reverse () =
  let p = Circuit.Diode.default in
  Alcotest.(check bool) "reverse ≈ -Is" true
    (Float.abs (Circuit.Diode.current p (-1.0) +. p.Circuit.Diode.saturation_current +. 1e-12)
     < 1e-11)

let test_diode_forward_monotone () =
  let p = Circuit.Diode.default in
  let i1 = Circuit.Diode.current p 0.6 and i2 = Circuit.Diode.current p 0.7 in
  Alcotest.(check bool) "monotone" true (i2 > i1 && i1 > 0.0)

let test_diode_no_overflow () =
  let p = Circuit.Diode.default in
  let i = Circuit.Diode.current p 100.0 in
  Alcotest.(check bool) "finite at 100 V" true (Float.is_finite i);
  Alcotest.(check bool) "conductance finite" true
    (Float.is_finite (Circuit.Diode.conductance p 100.0))

let test_diode_conductance_consistent () =
  (* g must be the derivative of i, including across the continuation
     point. *)
  let p = Circuit.Diode.default in
  List.iter
    (fun v ->
      let h = 1e-7 in
      let numeric =
        (Circuit.Diode.current p (v +. h) -. Circuit.Diode.current p (v -. h)) /. (2.0 *. h)
      in
      let analytic = Circuit.Diode.conductance p v in
      Alcotest.(check bool)
        (Printf.sprintf "derivative at %.2f" v)
        true
        (Float.abs (numeric -. analytic) /. Float.max 1e-12 analytic < 1e-4))
    [ -0.5; 0.3; 0.6; 0.9; 1.5; 2.0 ]

let test_diode_charge () =
  let p = { Circuit.Diode.default with junction_cap = 1e-12 } in
  check_float "charge" 1e-12 (Circuit.Diode.charge p 1.0)

(* ---------- MOSFET model ---------- *)

let test_mosfet_cutoff () =
  let p = Circuit.Mosfet.default_nmos in
  let op = Circuit.Mosfet.evaluate p ~vgs:0.2 ~vds:1.0 in
  Alcotest.(check bool) "cutoff ids ≈ 0" true (Float.abs op.Circuit.Mosfet.ids < 1e-6);
  Alcotest.(check bool) "region" true (op.Circuit.Mosfet.region = `Cutoff)

let test_mosfet_saturation_current () =
  let p = { Circuit.Mosfet.default_nmos with lambda = 0.0 } in
  let op = Circuit.Mosfet.evaluate p ~vgs:1.5 ~vds:2.0 in
  (* ids = kp/2 (vgs-vt)² = 1e-3 *)
  Alcotest.(check (float 1e-8)) "square law" 1e-3 op.Circuit.Mosfet.ids;
  Alcotest.(check bool) "region" true (op.Circuit.Mosfet.region = `Saturation)

let test_mosfet_triode () =
  let p = { Circuit.Mosfet.default_nmos with lambda = 0.0; gds_min = 0.0 } in
  let op = Circuit.Mosfet.evaluate p ~vgs:1.5 ~vds:0.5 in
  (* kp((vov)vds − vds²/2) = 2e-3(0.5 − 0.125) = 7.5e-4 *)
  Alcotest.(check (float 1e-9)) "triode current" 7.5e-4 op.Circuit.Mosfet.ids;
  Alcotest.(check bool) "region" true (op.Circuit.Mosfet.region = `Triode)

let test_mosfet_symmetry () =
  (* Swapping drain and source negates the current. *)
  let p = { Circuit.Mosfet.default_nmos with gds_min = 0.0 } in
  let fwd = Circuit.Mosfet.evaluate p ~vgs:1.2 ~vds:0.3 in
  let rev = Circuit.Mosfet.evaluate p ~vgs:(1.2 -. 0.3) ~vds:(-0.3) in
  Alcotest.(check (float 1e-12)) "antisymmetric" (-.fwd.Circuit.Mosfet.ids)
    rev.Circuit.Mosfet.ids

let test_mosfet_derivative_consistency () =
  let p = Circuit.Mosfet.default_nmos in
  let cases = [ (1.5, 2.0); (1.5, 0.4); (0.3, 1.0); (1.2, -0.5); (0.8, 0.2) ] in
  List.iter
    (fun (vgs, vds) ->
      let h = 1e-7 in
      let ids v_gs v_ds = (Circuit.Mosfet.evaluate p ~vgs:v_gs ~vds:v_ds).Circuit.Mosfet.ids in
      let op = Circuit.Mosfet.evaluate p ~vgs ~vds in
      let gm_num = (ids (vgs +. h) vds -. ids (vgs -. h) vds) /. (2.0 *. h) in
      let gds_num = (ids vgs (vds +. h) -. ids vgs (vds -. h)) /. (2.0 *. h) in
      Alcotest.(check bool)
        (Printf.sprintf "gm at (%.2f, %.2f)" vgs vds)
        true
        (Float.abs (gm_num -. op.Circuit.Mosfet.gm) < 1e-6);
      Alcotest.(check bool)
        (Printf.sprintf "gds at (%.2f, %.2f)" vgs vds)
        true
        (Float.abs (gds_num -. op.Circuit.Mosfet.gds) < 1e-6))
    cases

let test_pmos_mirror () =
  let n = { Circuit.Mosfet.default_nmos with gds_min = 0.0 } in
  let p = { n with polarity = Circuit.Mosfet.Pmos } in
  let opn = Circuit.Mosfet.evaluate n ~vgs:1.2 ~vds:1.5 in
  let opp = Circuit.Mosfet.evaluate p ~vgs:(-1.2) ~vds:(-1.5) in
  Alcotest.(check (float 1e-12)) "pmos mirrors nmos" (-.opn.Circuit.Mosfet.ids)
    opp.Circuit.Mosfet.ids

(* ---------- Netlist ---------- *)

let test_netlist_ground_aliases () =
  let nl = N.create () in
  Alcotest.(check int) "0" 0 (N.node nl "0");
  Alcotest.(check int) "gnd" 0 (N.node nl "gnd");
  Alcotest.(check int) "GND" 0 (N.node nl "GND")

let test_netlist_interning () =
  let nl = N.create () in
  let a = N.node nl "a" in
  Alcotest.(check int) "same index" a (N.node nl "a");
  Alcotest.(check int) "count" 1 (N.num_nodes nl);
  Alcotest.(check string) "name" "a" (N.node_name nl a)

let test_netlist_duplicate_device () =
  let nl = N.create () in
  N.resistor nl "r1" "a" "0" 1.0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Netlist.add: duplicate device name \"r1\"") (fun () ->
      N.resistor nl "r1" "b" "0" 2.0)

let test_netlist_find () =
  let nl = N.create () in
  N.resistor nl "r1" "x" "0" 1.0;
  Alcotest.(check bool) "found" true (N.find_node nl "x" <> None);
  Alcotest.(check bool) "missing" true (N.find_node nl "y" = None)

(* ---------- Mna ---------- *)

let divider () =
  let nl = N.create () in
  N.vsource nl "v1" "in" "0" (W.dc 10.0);
  N.resistor nl "r1" "in" "mid" 1e3;
  N.resistor nl "r2" "mid" "0" 1e3;
  Circuit.Mna.build nl

let test_mna_size () =
  let m = divider () in
  (* two nodes + one branch current *)
  Alcotest.(check int) "size" 3 (Circuit.Mna.size m);
  Alcotest.(check int) "nodes" 2 (Circuit.Mna.num_nodes m)

let test_mna_unknown_names () =
  let m = divider () in
  let names = Circuit.Mna.unknown_names m in
  Alcotest.(check string) "branch label" "i(v1)" names.(2)

let test_mna_divider_dc () =
  let m = divider () in
  let x = Circuit.Dcop.solve_exn m in
  Alcotest.(check (float 1e-6)) "vin" 10.0 (Circuit.Mna.voltage m x "in");
  Alcotest.(check (float 1e-6)) "vmid" 5.0 (Circuit.Mna.voltage m x "mid");
  (* Branch current: 10 V across 2 kΩ = 5 mA flowing out of the source. *)
  Alcotest.(check (float 1e-9)) "branch current" (-5e-3)
    x.(Circuit.Mna.branch_index m "v1")

let test_mna_current_source () =
  let nl = N.create () in
  (* 1 mA pushed into node "a" (current flows + → − through the source,
     entering the circuit at n_minus). *)
  N.isource nl "i1" "0" "a" (W.dc 1e-3);
  N.resistor nl "r1" "a" "0" 2e3;
  let m = Circuit.Mna.build nl in
  let x = Circuit.Dcop.solve_exn m in
  Alcotest.(check (float 1e-6)) "ohm's law" 2.0 (Circuit.Mna.voltage m x "a")

let test_mna_vccs () =
  let nl = N.create () in
  N.vsource nl "vc" "c" "0" (W.dc 2.0);
  N.vccs nl "g1" ~out_plus:"0" ~out_minus:"o" ~in_plus:"c" ~in_minus:"0" 1e-3;
  N.resistor nl "ro" "o" "0" 1e3;
  let m = Circuit.Mna.build nl in
  let x = Circuit.Dcop.solve_exn m in
  (* i = gm·v_c = 2 mA delivered into node o through 1 kΩ → 2 V. *)
  Alcotest.(check (float 1e-6)) "vccs gain" 2.0 (Circuit.Mna.voltage m x "o")

let test_mna_multiplier_dc () =
  let nl = N.create () in
  N.vsource nl "va" "a" "0" (W.dc 3.0);
  N.vsource nl "vb" "b" "0" (W.dc 4.0);
  N.multiplier nl "m" ~out_plus:"0" ~out_minus:"o" ~a_plus:"a" ~a_minus:"0" ~b_plus:"b"
    ~b_minus:"0" 1e-3;
  N.resistor nl "ro" "o" "0" 1e3;
  let m = Circuit.Mna.build nl in
  let x = Circuit.Dcop.solve_exn m in
  Alcotest.(check (float 1e-5)) "product" 12.0 (Circuit.Mna.voltage m x "o")

let test_mna_differential_voltage () =
  let m = divider () in
  let x = Circuit.Dcop.solve_exn m in
  Alcotest.(check (float 1e-6)) "diff" 5.0 (Circuit.Mna.differential_voltage m x "in" "mid")

let test_mna_source_with_phase () =
  let nl = N.create () in
  N.vsource nl "v1" "a" "0" (W.sine ~amplitude:1.0 ~freq:100.0 ());
  N.resistor nl "r1" "a" "0" 1.0;
  let m = Circuit.Mna.build nl in
  let b = Circuit.Mna.source_with m ~phase_of:(fun _ -> 0.25) in
  Alcotest.(check (float 1e-12)) "warped source" 1.0 b.(Circuit.Mna.branch_index m "v1")

let test_mna_source_frequencies () =
  let nl = N.create () in
  N.vsource nl "v1" "a" "0" (W.sine ~amplitude:1.0 ~freq:100.0 ());
  N.isource nl "i1" "a" "0" (W.cosine ~amplitude:1.0 ~freq:250.0 ());
  N.resistor nl "r1" "a" "0" 1.0;
  let m = Circuit.Mna.build nl in
  let fs = List.sort compare (Circuit.Mna.source_frequencies m) in
  Alcotest.(check (list (float 1e-12))) "freqs" [ 100.0; 250.0 ] fs

let test_mna_jacobian_matches_fd () =
  (* Numerical check of ∂f/∂x against the stamped G on a nonlinear
     circuit containing a diode, a MOSFET and a multiplier. *)
  let nl = N.create () in
  N.vsource nl "vd" "vdd" "0" (W.dc 3.0);
  N.resistor nl "r1" "vdd" "d" 2e3;
  N.mosfet nl "m1" ~drain:"d" ~gate:"g" ~source:"0" Circuit.Mosfet.default_nmos;
  N.resistor nl "rg" "vdd" "g" 1e4;
  N.diode nl "d1" "d" "a" Circuit.Diode.default;
  N.resistor nl "ra" "a" "0" 5e3;
  N.multiplier nl "mx" ~out_plus:"a" ~out_minus:"0" ~a_plus:"d" ~a_minus:"0" ~b_plus:"g"
    ~b_minus:"0" 1e-4;
  let m = Circuit.Mna.build nl in
  let dae = Circuit.Mna.dae m in
  let n = Circuit.Mna.size m in
  let x = Array.init n (fun i -> 0.3 +. (0.17 *. float_of_int i)) in
  let g, _ = dae.Numeric.Dae.jacobians x in
  let f0 = dae.Numeric.Dae.eval_f x in
  let h = 1e-7 in
  for j = 0 to n - 1 do
    let xj = Array.copy x in
    xj.(j) <- xj.(j) +. h;
    let fj = dae.Numeric.Dae.eval_f xj in
    for i = 0 to n - 1 do
      let numeric = (fj.(i) -. f0.(i)) /. h in
      let stamped = Sparse.Csr.get g i j in
      if Float.abs (numeric -. stamped) > 1e-4 *. Float.max 1.0 (Float.abs stamped) then
        Alcotest.failf "G mismatch at (%d,%d): fd=%.6g stamped=%.6g" i j numeric stamped
    done
  done

let test_mna_charge_jacobian_matches_fd () =
  let nl = N.create () in
  N.vsource nl "v1" "in" "0" (W.dc 1.0);
  N.capacitor nl "c1" "in" "mid" 1e-9;
  N.capacitor nl "c2" "mid" "0" 2e-9;
  N.inductor nl "l1" "mid" "out" 1e-6;
  N.resistor nl "r1" "out" "0" 50.0;
  let m = Circuit.Mna.build nl in
  let dae = Circuit.Mna.dae m in
  let n = Circuit.Mna.size m in
  let x = Array.init n (fun i -> 0.1 *. float_of_int (i + 1)) in
  let _, c = dae.Numeric.Dae.jacobians x in
  let q0 = dae.Numeric.Dae.eval_q x in
  let h = 1e-7 in
  for j = 0 to n - 1 do
    let xj = Array.copy x in
    xj.(j) <- xj.(j) +. h;
    let qj = dae.Numeric.Dae.eval_q xj in
    for i = 0 to n - 1 do
      let numeric = (qj.(i) -. q0.(i)) /. h in
      let stamped = Sparse.Csr.get c i j in
      if Float.abs (numeric -. stamped) > 1e-6 *. Float.max 1e-9 (Float.abs stamped) then
        Alcotest.failf "C mismatch at (%d,%d): fd=%.6g stamped=%.6g" i j numeric stamped
    done
  done

(* ---------- Dcop ---------- *)

let test_dcop_diode_drop () =
  let nl = N.create () in
  N.vsource nl "v1" "a" "0" (W.dc 5.0);
  N.resistor nl "r1" "a" "d" 1e3;
  N.diode nl "d1" "d" "0" Circuit.Diode.default;
  let m = Circuit.Mna.build nl in
  let report = Circuit.Dcop.solve m in
  Alcotest.(check bool) "converged" true report.Circuit.Dcop.converged;
  let vd = Circuit.Mna.voltage m report.Circuit.Dcop.x "d" in
  Alcotest.(check bool) "diode drop plausible" true (vd > 0.6 && vd < 0.8);
  (* Verify KCL: i through resistor equals the diode current. *)
  let ir = (5.0 -. vd) /. 1e3 in
  let id = Circuit.Diode.current Circuit.Diode.default vd in
  Alcotest.(check bool) "KCL" true (Float.abs (ir -. id) < 1e-6)

let test_dcop_inductor_short () =
  let nl = N.create () in
  N.vsource nl "v1" "a" "0" (W.dc 1.0);
  N.inductor nl "l1" "a" "b" 1e-3;
  N.resistor nl "r1" "b" "0" 100.0;
  let m = Circuit.Mna.build nl in
  let x = Circuit.Dcop.solve_exn m in
  (* At DC the inductor is a short: vb = va, i = 10 mA. *)
  Alcotest.(check (float 1e-6)) "short" 1.0 (Circuit.Mna.voltage m x "b");
  Alcotest.(check (float 1e-8)) "current" 0.01 x.(Circuit.Mna.branch_index m "l1")

let test_dcop_floating_gate_gmin () =
  (* A capacitively-coupled node has no DC path: gmin must pin it. *)
  let nl = N.create () in
  N.vsource nl "v1" "a" "0" (W.dc 1.0);
  N.capacitor nl "c1" "a" "f" 1e-12;
  N.resistor nl "r1" "a" "0" 1e3;
  let m = Circuit.Mna.build nl in
  let report = Circuit.Dcop.solve m in
  Alcotest.(check bool) "converged" true report.Circuit.Dcop.converged;
  Alcotest.(check (float 1e-6)) "floats to 0" 0.0
    (Circuit.Mna.voltage m report.Circuit.Dcop.x "f")

let test_dcop_mosfet_inverter () =
  let nl = N.create () in
  N.vsource nl "vdd" "vdd" "0" (W.dc 3.0);
  N.vsource nl "vg" "g" "0" (W.dc 1.5);
  N.resistor nl "rl" "vdd" "d" 2e3;
  N.mosfet nl "m1" ~drain:"d" ~gate:"g" ~source:"0" Circuit.Mosfet.default_nmos;
  let m = Circuit.Mna.build nl in
  let x = Circuit.Dcop.solve_exn m in
  let vd = Circuit.Mna.voltage m x "d" in
  (* Verify against the model directly. *)
  let op = Circuit.Mosfet.evaluate Circuit.Mosfet.default_nmos ~vgs:1.5 ~vds:vd in
  let ir = (3.0 -. vd) /. 2e3 in
  Alcotest.(check bool) "KCL" true (Float.abs (ir -. op.Circuit.Mosfet.ids) < 1e-6)

(* ---------- Transient ---------- *)

let test_transient_rc_charging () =
  let nl = N.create () in
  N.vsource nl "v1" "in" "0" (W.dc 1.0);
  N.resistor nl "r1" "in" "out" 1e3;
  N.capacitor nl "c1" "out" "0" 1e-6;
  let m = Circuit.Mna.build nl in
  let x0 = Array.make (Circuit.Mna.size m) 0.0 in
  let r =
    Circuit.Transient.run ~method_:Numeric.Integrator.Trapezoidal ~x0 ~mna:m
      ~t_stop:5e-3 ~steps:500 ()
  in
  let v = Circuit.Transient.node_waveform m r "out" in
  let worst = ref 0.0 in
  Array.iteri
    (fun k t ->
      let expected = 1.0 -. exp (-.t /. 1e-3) in
      worst := Float.max !worst (Float.abs (v.(k) -. expected)))
    r.Circuit.Transient.trace.Numeric.Integrator.times;
  Alcotest.(check bool) "matches analytic" true (!worst < 1e-4)

let test_transient_lc_resonance () =
  (* Series RLC: underdamped ringing frequency ≈ 1/(2π√LC). *)
  let nl = N.create () in
  N.vsource nl "v1" "in" "0" (W.dc 1.0);
  N.resistor nl "r1" "in" "a" 10.0;
  N.inductor nl "l1" "a" "out" 1e-6;
  N.capacitor nl "c1" "out" "0" 1e-9;
  let m = Circuit.Mna.build nl in
  let x0 = Array.make (Circuit.Mna.size m) 0.0 in
  let f0 = 1.0 /. (2.0 *. pi *. sqrt (1e-6 *. 1e-9)) in
  let r =
    Circuit.Transient.run ~method_:Numeric.Integrator.Trapezoidal ~x0 ~mna:m
      ~t_stop:(4.0 /. f0) ~steps:2000 ()
  in
  let v = Circuit.Transient.node_waveform m r "out" in
  (* Find the first two maxima and compare their spacing to 1/f0. *)
  let peaks = ref [] in
  for k = 1 to Array.length v - 2 do
    if v.(k) > v.(k - 1) && v.(k) > v.(k + 1) && v.(k) > 1.0 then
      peaks := r.Circuit.Transient.trace.Numeric.Integrator.times.(k) :: !peaks
  done;
  match List.rev !peaks with
  | t1 :: t2 :: _ ->
      let measured_f = 1.0 /. (t2 -. t1) in
      Alcotest.(check bool) "ring frequency within 3%" true
        (Float.abs (measured_f -. f0) /. f0 < 0.03)
  | _ -> Alcotest.fail "expected at least two ringing peaks"

let test_transient_rectifier_charges_up () =
  let nl = N.create () in
  N.vsource nl "v1" "in" "0" (W.sine ~amplitude:5.0 ~freq:1e3 ());
  N.diode nl "d1" "in" "out" Circuit.Diode.default;
  N.resistor nl "rl" "out" "0" 100e3;
  N.capacitor nl "cl" "out" "0" 1e-6;
  let m = Circuit.Mna.build nl in
  let r = Circuit.Transient.run ~mna:m ~t_stop:10e-3 ~steps:2000 () in
  let v = Circuit.Transient.node_waveform m r "out" in
  let final = v.(Array.length v - 1) in
  Alcotest.(check bool) "peak detector" true (final > 3.5 && final < 5.0)

let test_transient_differential_waveform () =
  let m = divider () in
  let r = Circuit.Transient.run ~mna:m ~t_stop:1e-6 ~steps:10 () in
  let d = Circuit.Transient.differential_waveform m r "in" "mid" in
  Alcotest.(check (float 1e-5)) "diff" 5.0 d.(5)

(* ---------- properties ---------- *)

let prop_waveform_diag_consistency =
  (* eval_with over the trivial phase map equals plain eval. *)
  QCheck.Test.make ~count:100 ~name:"waveform: eval_with (f·t) = eval"
    QCheck.(make Gen.(pair (float_range 0.1 100.0) (float_range (-1.0) 1.0)))
    (fun (freq, t) ->
      let w = W.sum (W.sine ~amplitude:1.5 ~freq ()) (W.dc 0.3) in
      Float.abs (W.eval w t -. W.eval_with ~phase_of:(fun f -> f *. t) w) < 1e-12)

let prop_mosfet_current_continuity =
  (* No jumps at the triode/saturation boundary. *)
  QCheck.Test.make ~count:100 ~name:"mosfet: continuous at vds = vov"
    QCheck.(make Gen.(float_range 0.6 3.0))
    (fun vgs ->
      let p = Circuit.Mosfet.default_nmos in
      let vov = vgs -. p.Circuit.Mosfet.vt0 in
      let below = (Circuit.Mosfet.evaluate p ~vgs ~vds:(vov -. 1e-9)).Circuit.Mosfet.ids in
      let above = (Circuit.Mosfet.evaluate p ~vgs ~vds:(vov +. 1e-9)).Circuit.Mosfet.ids in
      Float.abs (below -. above) < 1e-8)

let prop_waveform_linearity =
  QCheck.Test.make ~count:100 ~name:"waveform: sum/scale are pointwise linear"
    QCheck.(
      make Gen.(triple (float_range (-5.0) 5.0) (float_range 0.1 50.0) (float_range (-1.0) 1.0)))
    (fun (k, freq, t) ->
      let a = W.sine ~amplitude:1.0 ~freq () in
      let b = W.cosine ~amplitude:0.5 ~freq:(2.0 *. freq) () in
      let lhs = W.eval (W.sum (W.scale k a) b) t in
      let rhs = (k *. W.eval a t) +. W.eval b t in
      Float.abs (lhs -. rhs) < 1e-9)

let prop_mosfet_monotone_in_vgs =
  QCheck.Test.make ~count:100 ~name:"mosfet: ids non-decreasing in vgs (vds > 0)"
    QCheck.(make Gen.(triple (float_range 0.0 3.0) (float_range 0.0 3.0) (float_range 0.01 2.0)))
    (fun (vgs_lo, dv, vds) ->
      let p = Circuit.Mosfet.default_nmos in
      let i1 = (Circuit.Mosfet.evaluate p ~vgs:vgs_lo ~vds).Circuit.Mosfet.ids in
      let i2 = (Circuit.Mosfet.evaluate p ~vgs:(vgs_lo +. dv) ~vds).Circuit.Mosfet.ids in
      i2 >= i1 -. 1e-15)

let prop_diode_monotone =
  QCheck.Test.make ~count:100 ~name:"diode: current strictly increasing"
    QCheck.(make Gen.(pair (float_range (-2.0) 3.0) (float_range 1e-3 1.0)))
    (fun (v, dv) ->
      let p = Circuit.Diode.default in
      Circuit.Diode.current p (v +. dv) > Circuit.Diode.current p v)

let prop_dcop_divider =
  QCheck.Test.make ~count:50 ~name:"dcop: resistive dividers"
    QCheck.(make Gen.(triple (float_range 0.1 10.0) (float_range 100.0 1e5) (float_range 100.0 1e5)))
    (fun (v, r1, r2) ->
      let nl = N.create () in
      N.vsource nl "v1" "in" "0" (W.dc v);
      N.resistor nl "r1" "in" "mid" r1;
      N.resistor nl "r2" "mid" "0" r2;
      let m = Circuit.Mna.build nl in
      let x = Circuit.Dcop.solve_exn m in
      let expected = v *. r2 /. (r1 +. r2) in
      Float.abs (Circuit.Mna.voltage m x "mid" -. expected) < 1e-6 *. Float.max 1.0 v)

let () =
  Alcotest.run "circuit"
    [
      ( "waveform",
        [
          Alcotest.test_case "dc" `Quick test_waveform_dc;
          Alcotest.test_case "sine" `Quick test_waveform_sine;
          Alcotest.test_case "cosine phase" `Quick test_waveform_cosine_phase;
          Alcotest.test_case "pulse levels" `Quick test_waveform_pulse_levels;
          Alcotest.test_case "pulse ramps" `Quick test_waveform_pulse_ramps;
          Alcotest.test_case "bit stream" `Quick test_waveform_bits;
          Alcotest.test_case "bit smoothing" `Quick test_waveform_bits_smoothing;
          Alcotest.test_case "modulated carrier" `Quick test_waveform_modulated_carrier_diag;
          Alcotest.test_case "sum/scale" `Quick test_waveform_sum_scale;
          Alcotest.test_case "frequencies" `Quick test_waveform_frequencies;
          Alcotest.test_case "custom phase" `Quick test_waveform_eval_with_custom_phase;
          Alcotest.test_case "sampled shape" `Quick test_waveform_sampled;
        ] );
      ( "diode",
        [
          Alcotest.test_case "reverse" `Quick test_diode_reverse;
          Alcotest.test_case "forward monotone" `Quick test_diode_forward_monotone;
          Alcotest.test_case "no overflow" `Quick test_diode_no_overflow;
          Alcotest.test_case "conductance consistent" `Quick test_diode_conductance_consistent;
          Alcotest.test_case "charge" `Quick test_diode_charge;
        ] );
      ( "mosfet",
        [
          Alcotest.test_case "cutoff" `Quick test_mosfet_cutoff;
          Alcotest.test_case "saturation" `Quick test_mosfet_saturation_current;
          Alcotest.test_case "triode" `Quick test_mosfet_triode;
          Alcotest.test_case "drain/source symmetry" `Quick test_mosfet_symmetry;
          Alcotest.test_case "derivatives" `Quick test_mosfet_derivative_consistency;
          Alcotest.test_case "pmos mirror" `Quick test_pmos_mirror;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "ground aliases" `Quick test_netlist_ground_aliases;
          Alcotest.test_case "interning" `Quick test_netlist_interning;
          Alcotest.test_case "duplicate device" `Quick test_netlist_duplicate_device;
          Alcotest.test_case "find_node" `Quick test_netlist_find;
        ] );
      ( "mna",
        [
          Alcotest.test_case "size" `Quick test_mna_size;
          Alcotest.test_case "unknown names" `Quick test_mna_unknown_names;
          Alcotest.test_case "divider dc" `Quick test_mna_divider_dc;
          Alcotest.test_case "current source" `Quick test_mna_current_source;
          Alcotest.test_case "vccs" `Quick test_mna_vccs;
          Alcotest.test_case "multiplier dc" `Quick test_mna_multiplier_dc;
          Alcotest.test_case "differential voltage" `Quick test_mna_differential_voltage;
          Alcotest.test_case "warped source" `Quick test_mna_source_with_phase;
          Alcotest.test_case "source frequencies" `Quick test_mna_source_frequencies;
          Alcotest.test_case "G matches finite differences" `Quick test_mna_jacobian_matches_fd;
          Alcotest.test_case "C matches finite differences" `Quick test_mna_charge_jacobian_matches_fd;
        ] );
      ( "dcop",
        [
          Alcotest.test_case "diode drop" `Quick test_dcop_diode_drop;
          Alcotest.test_case "inductor short" `Quick test_dcop_inductor_short;
          Alcotest.test_case "floating node gmin" `Quick test_dcop_floating_gate_gmin;
          Alcotest.test_case "mosfet inverter" `Quick test_dcop_mosfet_inverter;
        ] );
      ( "transient",
        [
          Alcotest.test_case "rc charging" `Quick test_transient_rc_charging;
          Alcotest.test_case "lc resonance" `Quick test_transient_lc_resonance;
          Alcotest.test_case "rectifier" `Quick test_transient_rectifier_charges_up;
          Alcotest.test_case "differential waveform" `Quick test_transient_differential_waveform;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_waveform_diag_consistency;
            prop_waveform_linearity;
            prop_mosfet_current_continuity;
            prop_mosfet_monotone_in_vgs;
            prop_diode_monotone;
            prop_dcop_divider;
          ] );
    ]
