(* Sanity tests for the shared example circuits: structure, DC
   operating points, and basic physical behaviour. *)

module W = Circuit.Waveform

let drive_1k = W.sine ~amplitude:1.0 ~freq:1e3 ()

let test_rc_lowpass_structure () =
  let { Circuits.mna; netlist } = Circuits.rc_lowpass ~drive:drive_1k () in
  Alcotest.(check int) "devices" 3 (List.length (Circuit.Netlist.devices netlist));
  Alcotest.(check int) "unknowns" 3 (Circuit.Mna.size mna)

let test_rlc_dc_short () =
  let { Circuits.mna; _ } = Circuits.rlc_series ~drive:(W.dc 2.0) () in
  let x = Circuit.Dcop.solve_exn mna in
  (* At DC, L shorts and C blocks: no current, vout = 2 V through R+L. *)
  Alcotest.(check (float 1e-4)) "vout" 2.0 (Circuit.Mna.voltage mna x "out")

let test_diode_rectifier_dc () =
  let { Circuits.mna; _ } = Circuits.diode_rectifier ~drive:(W.dc 2.0) () in
  let x = Circuit.Dcop.solve_exn mna in
  let vout = Circuit.Mna.voltage mna x "out" in
  Alcotest.(check bool) "one diode drop" true (vout > 1.2 && vout < 1.7)

let test_envelope_detector_pole_placement () =
  let f1 = 1e6 and f2 = 1.02e6 in
  let { Circuits.netlist; _ } = Circuits.envelope_detector ~f1 ~f2 ~amplitude:1.0 () in
  (* The auto-sized load capacitor must put the RC pole between fd and f1. *)
  let cap =
    List.find_map
      (fun d ->
        match d with
        | Circuit.Device.Capacitor { capacitance; _ } -> Some capacitance
        | _ -> None)
      (Circuit.Netlist.devices netlist)
  in
  match cap with
  | None -> Alcotest.fail "no load capacitor"
  | Some c ->
      let pole = 1.0 /. (2.0 *. Float.pi *. 10e3 *. c) in
      Alcotest.(check bool) "pole between fd and carrier" true
        (pole > (f2 -. f1) && pole < f1)

let test_ideal_mixer_nodes () =
  let lo = W.cosine ~amplitude:1.0 ~freq:1e6 () in
  let rf = W.cosine ~amplitude:1.0 ~freq:1.001e6 () in
  let { Circuits.mna; _ } = Circuits.ideal_mixer ~lo ~rf () in
  (* nodes lo, rf, out + two branch currents *)
  Alcotest.(check int) "unknowns" 5 (Circuit.Mna.size mna);
  ignore (Circuit.Mna.node_index mna "out")

let test_balanced_mixer_dc_op () =
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:900.015e6 () in
  (* rf_amplitude 0 keeps the t = 0 source snapshot symmetric (the RF
     cosine is 1 at t = 0, which would legitimately unbalance the DC
     operating point). *)
  let { Circuits.mna; _ } =
    Circuits.balanced_mixer ~f_lo:450e6 ~rf_amplitude:0.0 ~rf_signal ()
  in
  let report = Circuit.Dcop.solve mna in
  Alcotest.(check bool) "dc converges" true report.Circuit.Dcop.converged;
  let x = report.Circuit.Dcop.x in
  let nodes = Circuits.balanced_mixer_nodes in
  let vdp = Circuit.Mna.voltage mna x nodes.Circuits.out_plus in
  let vdm = Circuit.Mna.voltage mna x nodes.Circuits.out_minus in
  let vs = Circuit.Mna.voltage mna x nodes.Circuits.source_node in
  (* Symmetric topology → symmetric DC outputs; source node sits between
     ground and the gate bias. *)
  Alcotest.(check (float 1e-6)) "balanced outputs" vdp vdm;
  Alcotest.(check bool) "outputs below vdd" true (vdp > 0.0 && vdp < 3.0);
  Alcotest.(check bool) "tail node plausible" true (vs > 0.0 && vs < 1.8)

let test_balanced_mixer_doubler_symmetry () =
  (* The tail current seen at node s must repeat twice per LO period:
     compare the first and second half of the fast-scale column of an
     MPDE solve with a pure-tone RF. *)
  let f_lo = 450e6 and fd = 15e3 in
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:((2.0 *. 450e6) +. fd) () in
  let { Circuits.mna; _ } = Circuits.balanced_mixer ~f_lo ~rf_signal ~rf_amplitude:0.0 () in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:4 mna in
  Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
  let vs =
    Mpde.Extract.surface_of_node sol mna Circuits.balanced_mixer_nodes.Circuits.source_node
  in
  let worst = ref 0.0 in
  for i = 0 to 15 do
    worst := Float.max !worst (Float.abs (vs.(i).(0) -. vs.(i + 16).(0)))
  done;
  Alcotest.(check bool) "2·LO periodicity at the tail" true (!worst < 1e-3)

let test_unbalanced_mixer_dc () =
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:1.001e6 () in
  let { Circuits.mna; _ } = Circuits.unbalanced_mixer ~f_lo:1e6 ~rf_signal ~rf_amplitude:0.05 () in
  let x = Circuit.Dcop.solve_exn mna in
  let vout = Circuit.Mna.voltage mna x "out" in
  Alcotest.(check bool) "biased in range" true (vout > 0.2 && vout < 3.0)

let test_paper_rf_bitstream_lattice () =
  let f_lo = 450e6 and fd = 15e3 in
  let w, bits = Circuits.paper_rf_bitstream ~f_lo ~fd () in
  Alcotest.(check int) "default pattern" 6 (Array.length bits);
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  (* Every frequency in the bitstream drive must be on the shear lattice. *)
  List.iter
    (fun f -> ignore (Mpde.Shear.lattice shear f))
    (W.frequencies w);
  (* The carrier must be at 2·f_lo + fd. *)
  Alcotest.(check bool) "carrier on lattice as (2,1)" true
    (List.exists
       (fun f -> Mpde.Shear.lattice shear f = (2, 1))
       (W.frequencies w))

let test_paper_rf_bitstream_custom_bits () =
  let bits = [| true; false; true |] in
  let w, bits' = Circuits.paper_rf_bitstream ~bits ~f_lo:450e6 ~fd:15e3 () in
  Alcotest.(check bool) "bits preserved" true (bits = bits');
  (* Pattern frequency = symbol_freq / nbits = fd. *)
  Alcotest.(check bool) "pattern at fd" true (List.mem 15e3 (W.frequencies w))

let () =
  Alcotest.run "circuits"
    [
      ( "builders",
        [
          Alcotest.test_case "rc lowpass" `Quick test_rc_lowpass_structure;
          Alcotest.test_case "rlc dc" `Quick test_rlc_dc_short;
          Alcotest.test_case "rectifier dc" `Quick test_diode_rectifier_dc;
          Alcotest.test_case "detector pole" `Quick test_envelope_detector_pole_placement;
          Alcotest.test_case "ideal mixer" `Quick test_ideal_mixer_nodes;
          Alcotest.test_case "unbalanced mixer dc" `Quick test_unbalanced_mixer_dc;
        ] );
      ( "balanced mixer",
        [
          Alcotest.test_case "dc operating point" `Quick test_balanced_mixer_dc_op;
          Alcotest.test_case "LO doubling" `Slow test_balanced_mixer_doubler_symmetry;
        ] );
      ( "paper bitstream",
        [
          Alcotest.test_case "lattice consistency" `Quick test_paper_rf_bitstream_lattice;
          Alcotest.test_case "custom bits" `Quick test_paper_rf_bitstream_custom_bits;
        ] );
    ]
