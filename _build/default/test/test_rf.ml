(* Tests for PRBS generation, spectra, and link metrics. *)

let pi = 4.0 *. atan 1.0

(* ---------- Prbs ---------- *)

let test_prbs7_period () =
  let bits = Rf.Prbs.prbs7 254 in
  (* PRBS-7 repeats with period 127. *)
  let ok = ref true in
  for k = 0 to 126 do
    if bits.(k) <> bits.(k + 127) then ok := false
  done;
  Alcotest.(check bool) "period 127" true !ok

let test_prbs7_not_shorter_period () =
  let bits = Rf.Prbs.prbs7 127 in
  (* A maximal-length sequence is not 63-periodic. *)
  let differs = ref false in
  for k = 0 to 62 do
    if bits.(k) <> bits.(k + 63) then differs := true
  done;
  Alcotest.(check bool) "not 63-periodic" true !differs

let test_prbs7_balance () =
  let bits = Rf.Prbs.prbs7 127 in
  (* One full period has 64 ones and 63 zeros. *)
  let ones = Array.fold_left (fun a b -> if b then a + 1 else a) 0 bits in
  Alcotest.(check int) "ones count" 64 ones

let test_prbs15_runs () =
  let bits = Rf.Prbs.prbs15 1000 in
  let runs = Rf.Prbs.run_lengths bits in
  Alcotest.(check bool) "no absurd runs" true (List.for_all (fun r -> r <= 15) runs);
  Alcotest.(check int) "runs cover sequence" 1000 (List.fold_left ( + ) 0 runs)

let test_prbs_determinism () =
  Alcotest.(check bool) "same seed, same bits" true (Rf.Prbs.prbs7 64 = Rf.Prbs.prbs7 64);
  Alcotest.(check bool) "different seeds differ" true
    (Rf.Prbs.prbs7 ~seed:0x11 64 <> Rf.Prbs.prbs7 ~seed:0x2A 64)

let test_prbs_zero_seed () =
  Alcotest.check_raises "zero seed" (Invalid_argument "Prbs: seed must be nonzero")
    (fun () -> ignore (Rf.Prbs.prbs7 ~seed:0 8))

let test_alternating () =
  let bits = Rf.Prbs.alternating 6 in
  Alcotest.(check bool) "pattern" true (bits = [| true; false; true; false; true; false |]);
  Alcotest.(check (float 1e-12)) "balance" 0.5 (Rf.Prbs.balance bits);
  Alcotest.(check (list int)) "runs" [ 1; 1; 1; 1; 1; 1 ] (Rf.Prbs.run_lengths bits)

(* ---------- Spectrum ---------- *)

let test_periodogram_tone () =
  let fs = 1000.0 and f0 = 125.0 and a = 2.0 in
  let n = 256 in
  let x = Array.init n (fun k -> a *. sin (2.0 *. pi *. f0 *. float_of_int k /. fs)) in
  let s = Rf.Spectrum.periodogram ~sample_rate:fs x in
  let peak = Rf.Spectrum.peak_bin s ~f_near:f0 in
  Alcotest.(check (float 2.0)) "peak frequency" f0 s.Rf.Spectrum.freqs.(peak);
  (* On-bin tone with coherent-gain-corrected Hann: the peak bin reads
     the tone's squared RMS a²/2 = 2.0 exactly; the two side bins carry
     the Hann leakage (a²/8 each). *)
  Alcotest.(check (float 1e-6)) "tone power" 2.0 s.Rf.Spectrum.power.(peak);
  Alcotest.(check (float 1e-6)) "hann side lobe" 0.5 s.Rf.Spectrum.power.(peak + 1)

let test_periodogram_two_tones_resolved () =
  let fs = 1000.0 in
  let n = 512 in
  let x =
    Array.init n (fun k ->
        let t = float_of_int k /. fs in
        sin (2.0 *. pi *. 100.0 *. t) +. (0.1 *. sin (2.0 *. pi *. 200.0 *. t)))
  in
  let s = Rf.Spectrum.periodogram ~sample_rate:fs x in
  let p100 = Rf.Spectrum.band_power s ~f_lo:90.0 ~f_hi:110.0 in
  let p200 = Rf.Spectrum.band_power s ~f_lo:190.0 ~f_hi:210.0 in
  Alcotest.(check bool) "20 dB apart" true
    (Rf.Spectrum.power_db p100 -. Rf.Spectrum.power_db p200 > 18.0)

let test_power_db_floor () =
  Alcotest.(check (float 1e-9)) "floor" (-300.0) (Rf.Spectrum.power_db 0.0)

let test_periodogram_validation () =
  Alcotest.check_raises "too short"
    (Invalid_argument "Spectrum.periodogram: need at least 2 samples") (fun () ->
      ignore (Rf.Spectrum.periodogram ~sample_rate:1.0 [| 1.0 |]))

(* ---------- Metrics ---------- *)

let test_db () =
  Alcotest.(check (float 1e-9)) "unity" 0.0 (Rf.Metrics.db 1.0);
  Alcotest.(check (float 1e-9)) "20dB" 20.0 (Rf.Metrics.db 10.0);
  Alcotest.(check (float 1e-9)) "floor" (-300.0) (Rf.Metrics.db 0.0)

let test_thd_pure_sine () =
  let n = 128 in
  let x = Array.init n (fun k -> sin (2.0 *. pi *. float_of_int k /. float_of_int n)) in
  Alcotest.(check bool) "pure sine THD ≈ 0" true (Rf.Metrics.thd x () < 1e-9)

let test_thd_square_wave () =
  (* Ideal square wave THD = sqrt(π²/8 − 1) ≈ 0.483. *)
  let n = 1024 in
  let x = Array.init n (fun k -> if k < n / 2 then 1.0 else -1.0) in
  let thd = Rf.Metrics.thd x () in
  Alcotest.(check bool) "square wave THD ≈ 0.483" true (Float.abs (thd -. 0.483) < 0.01)

let test_thd_known_harmonic () =
  let n = 256 in
  let x =
    Array.init n (fun k ->
        let t = float_of_int k /. float_of_int n in
        sin (2.0 *. pi *. t) +. (0.1 *. sin (2.0 *. pi *. 3.0 *. t)))
  in
  Alcotest.(check (float 1e-6)) "10%% third harmonic" 0.1 (Rf.Metrics.thd x ())

let test_conversion_gain () =
  Alcotest.(check (float 1e-9)) "-6dB" (20.0 *. log10 0.5)
    (Rf.Metrics.conversion_gain_db ~baseband_amplitude:0.5 ~rf_amplitude:1.0)

let test_eye_clean_nrz () =
  let bits = [| true; false; true; true; false |] in
  let sps = 10 in
  let waveform =
    Array.init (sps * Array.length bits) (fun k -> if bits.(k / sps) then 1.0 else 0.0)
  in
  let eye = Rf.Metrics.eye_metrics ~samples_per_symbol:sps ~bits waveform in
  Alcotest.(check (float 1e-9)) "opening" 1.0 eye.Rf.Metrics.opening;
  Alcotest.(check (float 1e-9)) "level 1" 1.0 eye.Rf.Metrics.level_one;
  Alcotest.(check (float 1e-9)) "level 0" 0.0 eye.Rf.Metrics.level_zero;
  Alcotest.(check (float 1e-9)) "no ISI" 0.0 eye.Rf.Metrics.isi_rms

let test_eye_with_isi () =
  (* A low-pass-filtered NRZ stream: opening shrinks, ISI grows. *)
  let bits = [| true; false; true; true; false; false; true; false |] in
  let sps = 16 in
  let ideal =
    Array.init (sps * Array.length bits) (fun k -> if bits.(k / sps) then 1.0 else 0.0)
  in
  (* Single-pole IIR as the band-limited channel. *)
  let filtered = Array.copy ideal in
  let alpha = 0.25 in
  for k = 1 to Array.length filtered - 1 do
    filtered.(k) <- filtered.(k - 1) +. (alpha *. (ideal.(k) -. filtered.(k - 1)))
  done;
  let eye_ideal = Rf.Metrics.eye_metrics ~samples_per_symbol:sps ~bits ideal in
  let eye_isi = Rf.Metrics.eye_metrics ~samples_per_symbol:sps ~bits filtered in
  Alcotest.(check bool) "opening shrinks" true
    (eye_isi.Rf.Metrics.opening < eye_ideal.Rf.Metrics.opening);
  Alcotest.(check bool) "isi grows" true
    (eye_isi.Rf.Metrics.isi_rms > eye_ideal.Rf.Metrics.isi_rms);
  Alcotest.(check bool) "eye still open" true (eye_isi.Rf.Metrics.opening > 0.0)

let test_eye_validation () =
  Alcotest.check_raises "short waveform"
    (Invalid_argument "Metrics.eye_metrics: waveform shorter than the bit pattern")
    (fun () ->
      ignore
        (Rf.Metrics.eye_metrics ~samples_per_symbol:10 ~bits:[| true; false |]
           (Array.make 5 0.0)))

let test_acpr () =
  let fs = 1000.0 in
  let n = 1024 in
  let x =
    Array.init n (fun k ->
        let t = float_of_int k /. fs in
        sin (2.0 *. pi *. 100.0 *. t) +. (0.01 *. sin (2.0 *. pi *. 150.0 *. t)))
  in
  let s = Rf.Spectrum.periodogram ~sample_rate:fs x in
  let acpr =
    Rf.Metrics.adjacent_channel_power_ratio s ~f_centre:100.0 ~bandwidth:20.0 ~spacing:50.0
  in
  (* Adjacent tone is 40 dB down. *)
  Alcotest.(check bool) "ACPR ≈ -40dB" true (Float.abs (acpr +. 40.0) < 2.0)

(* ---------- properties ---------- *)

let prop_prbs_balance_near_half =
  QCheck.Test.make ~count:30 ~name:"prbs: long-run balance near 1/2"
    QCheck.(make Gen.(int_range 500 4000))
    (fun n ->
      let b = Rf.Prbs.balance (Rf.Prbs.prbs15 n) in
      b > 0.35 && b < 0.65)

let prop_thd_scale_invariant =
  QCheck.Test.make ~count:50 ~name:"thd: invariant under scaling"
    QCheck.(make Gen.(float_range 0.1 100.0))
    (fun a ->
      let n = 64 in
      let x =
        Array.init n (fun k ->
            let t = float_of_int k /. float_of_int n in
            sin (2.0 *. pi *. t) +. (0.2 *. sin (2.0 *. pi *. 2.0 *. t)))
      in
      let scaled = Array.map (fun v -> a *. v) x in
      Float.abs (Rf.Metrics.thd x () -. Rf.Metrics.thd scaled ()) < 1e-9)

let () =
  Alcotest.run "rf"
    [
      ( "prbs",
        [
          Alcotest.test_case "prbs7 period" `Quick test_prbs7_period;
          Alcotest.test_case "maximal length" `Quick test_prbs7_not_shorter_period;
          Alcotest.test_case "prbs7 balance" `Quick test_prbs7_balance;
          Alcotest.test_case "prbs15 runs" `Quick test_prbs15_runs;
          Alcotest.test_case "determinism" `Quick test_prbs_determinism;
          Alcotest.test_case "zero seed" `Quick test_prbs_zero_seed;
          Alcotest.test_case "alternating" `Quick test_alternating;
        ] );
      ( "spectrum",
        [
          Alcotest.test_case "single tone" `Quick test_periodogram_tone;
          Alcotest.test_case "two tones" `Quick test_periodogram_two_tones_resolved;
          Alcotest.test_case "db floor" `Quick test_power_db_floor;
          Alcotest.test_case "validation" `Quick test_periodogram_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "db" `Quick test_db;
          Alcotest.test_case "thd pure sine" `Quick test_thd_pure_sine;
          Alcotest.test_case "thd square wave" `Quick test_thd_square_wave;
          Alcotest.test_case "thd known harmonic" `Quick test_thd_known_harmonic;
          Alcotest.test_case "conversion gain" `Quick test_conversion_gain;
          Alcotest.test_case "clean eye" `Quick test_eye_clean_nrz;
          Alcotest.test_case "eye with ISI" `Quick test_eye_with_isi;
          Alcotest.test_case "eye validation" `Quick test_eye_validation;
          Alcotest.test_case "acpr" `Quick test_acpr;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_prbs_balance_near_half; prop_thd_scale_invariant ] );
    ]
