(* End-to-end integration tests across subsystems: the MPDE solution
   must agree with brute-force one-time simulation wherever the latter
   is affordable, and the full paper pipeline must run. *)

module W = Circuit.Waveform

let pi = 4.0 *. atan 1.0

(* MPDE vs brute-force transient on the nonlinear envelope detector at
   a small disparity (where transient is affordable). The transient is
   run for several beat periods to let start-up decay, then compared
   against the MPDE diagonal over the last beat period. *)
let test_mpde_vs_transient_nonlinear () =
  let f1 = 1e5 and fd = 1e4 in
  let f2 = f1 +. fd in
  let { Circuits.mna; _ } = Circuits.envelope_detector ~f1 ~f2 ~amplitude:1.0 () in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:64 ~n2:32 mna in
  Alcotest.(check bool) "mpde converged" true sol.Mpde.Solver.stats.converged;
  let out = Circuit.Mna.node_index mna "out" in
  (* 6 beat periods of transient, 100 steps per carrier period. *)
  let t2p = 1.0 /. fd in
  let total = 6.0 *. t2p in
  let steps = int_of_float (total *. f1 *. 100.0) in
  let tr = Circuit.Transient.run ~mna ~t_stop:total ~steps () in
  let trace = tr.Circuit.Transient.trace in
  let vout_surface = Mpde.Extract.surface_of_node sol mna "out" in
  (* Compare the low-pass output over the final beat period. *)
  let n_states = Array.length trace.Numeric.Integrator.states in
  let worst = ref 0.0 and scale = ref 0.0 in
  for k = n_states - 1 downto n_states - (steps / 6) do
    let t = trace.Numeric.Integrator.times.(k) in
    let transient_v = trace.Numeric.Integrator.states.(k).(out) in
    let mpde_v =
      Numeric.Interp.bilinear_periodic vout_surface (t *. f1) (t *. fd)
    in
    worst := Float.max !worst (Float.abs (transient_v -. mpde_v));
    scale := Float.max !scale (Float.abs transient_v)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "agree within 10%% of swing (err %.4f, scale %.4f)" !worst !scale)
    true
    (!worst < 0.10 *. !scale)

(* Same cross-check on a *linear* two-tone circuit where both methods
   should agree tightly (discretization differences only). *)
let test_mpde_vs_transient_linear () =
  let f1 = 1e5 and fd = 2e4 in
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~r:1e3 ~c:1e-9
      ~drive:(W.sum (W.sine ~amplitude:1.0 ~freq:f1 ()) (W.sine ~amplitude:0.5 ~freq:(f1 +. fd) ()))
      ()
  in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:64 ~n2:16 mna in
  let out = Circuit.Mna.node_index mna "out" in
  let surface = Mpde.Extract.surface_of_node sol mna "out" in
  (* Analytic steady state for comparison. *)
  let resp amplitude f t =
    let w = 2.0 *. pi *. f in
    let wrc = w *. 1e3 *. 1e-9 in
    amplitude /. sqrt (1.0 +. (wrc *. wrc)) *. sin ((w *. t) -. atan wrc)
  in
  ignore out;
  let worst = ref 0.0 in
  for k = 0 to 200 do
    let t = float_of_int k *. (1.0 /. fd) /. 200.0 in
    let mpde_v = Numeric.Interp.bilinear_periodic surface (t *. f1) (t *. fd) in
    let exact = resp 1.0 f1 t +. resp 0.5 (f1 +. fd) t in
    worst := Float.max !worst (Float.abs (mpde_v -. exact))
  done;
  Alcotest.(check bool) "linear agreement" true (!worst < 0.08)

(* The paper's headline pipeline: balanced mixer + bit stream, solved
   on the 40x30 grid, with all four figure extractions. *)
let test_paper_pipeline () =
  let f_lo = 450e6 and fd = 15e3 in
  let rf_signal, bits = Circuits.paper_rf_bitstream ~f_lo ~fd () in
  let { Circuits.mna; _ } = Circuits.balanced_mixer ~f_lo ~rf_signal () in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:40 ~n2:30 mna in
  Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
  Alcotest.(check bool) "newton count in paper's ballpark (≤ 26)" true
    (sol.Mpde.Solver.stats.newton_iterations <= 26);
  let nodes = Circuits.balanced_mixer_nodes in
  (* Fig 3: differential output surface exists and is bounded. *)
  let diff =
    Mpde.Extract.differential_surface sol mna nodes.Circuits.out_plus nodes.Circuits.out_minus
  in
  Array.iter
    (Array.iter (fun v ->
         Alcotest.(check bool) "bounded" true (Float.abs v < 3.0)))
    diff;
  (* Fig 4: baseband envelope nulls on the 0 bit of 110111. *)
  let env = Mpde.Extract.envelope sol ~values:diff in
  let n2 = Array.length env in
  let per_bit = n2 / Array.length bits in
  let bit_mean k =
    let s = ref 0.0 in
    for j = k * per_bit to ((k + 1) * per_bit) - 1 do
      s := !s +. Float.abs env.(j)
    done;
    !s /. float_of_int per_bit
  in
  let zero_bit_index =
    let rec find i = if bits.(i) then find (i + 1) else i in
    find 0
  in
  let on_levels =
    Array.to_list (Array.mapi (fun k b -> (k, b)) bits)
    |> List.filter_map (fun (k, b) -> if b then Some (bit_mean k) else None)
  in
  let min_on = List.fold_left Float.min infinity on_levels in
  Alcotest.(check bool) "0-bit suppressed vs 1-bits" true
    (bit_mean zero_bit_index < 0.5 *. min_on);
  (* Fig 5: the tail node carries a strong 2·LO component (doubling). *)
  let vs = Mpde.Extract.surface_of_node sol mna nodes.Circuits.source_node in
  let col = Array.init 40 (fun i -> vs.(i).(0)) in
  let h = Numeric.Fft.real_harmonics col in
  Alcotest.(check bool) "2nd harmonic dominates fundamental at the tail" true
    (fst h.(2) > 2.0 *. fst h.(1));
  (* Fig 6: diagonal reconstruction is smooth and bounded. *)
  let _, series =
    Mpde.Extract.diagonal sol ~values:vs ~t_start:2.223e-6
      ~t_stop:(2.223e-6 +. (5.0 /. f_lo))
      ~samples:100
  in
  Array.iter
    (fun v -> Alcotest.(check bool) "physical" true (v > 0.0 && v < 3.0))
    series

(* Conversion gain via MPDE must match the gain measured by brute-force
   transient demodulation on the unbalanced mixer at modest disparity. *)
let test_conversion_gain_cross_check () =
  let f_lo = 1e6 and fd = 5e4 in
  let rf_amplitude = 0.05 in
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:(f_lo +. fd) () in
  let { Circuits.mna; _ } = Circuits.unbalanced_mixer ~f_lo ~rf_signal ~rf_amplitude () in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:48 ~n2:24 mna in
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  let mpde_bb = Mpde.Extract.t2_harmonic_amplitude ~values:vout ~harmonic:1 in
  (* Transient reference: simulate 4 beat periods, FFT the last one. *)
  let steps_per_beat = int_of_float (f_lo /. fd) * 64 in
  let tr = Circuit.Transient.run ~mna ~t_stop:(4.0 /. fd) ~steps:(4 * steps_per_beat) () in
  let out = Circuit.Mna.node_index mna "out" in
  let last_beat =
    Array.init steps_per_beat (fun k ->
        tr.Circuit.Transient.trace.Numeric.Integrator.states.((3 * steps_per_beat) + k).(out))
  in
  let transient_bb = Numeric.Fft.amplitude_at last_beat 1 in
  Alcotest.(check bool)
    (Printf.sprintf "gains agree (mpde %.4f vs transient %.4f)" mpde_bb transient_bb)
    true
    (Float.abs (mpde_bb -. transient_bb) < 0.15 *. transient_bb)

(* The 1-D periodic collocation solver and the MPDE with a trivial slow
   scale must agree: solve a single-tone rectifier both ways. *)
let test_periodic_fd_is_mpde_1d () =
  let f1 = 1e6 in
  let { Circuits.mna; _ } =
    Circuits.diode_rectifier ~load_r:10e3 ~load_c:50e-12
      ~drive:(W.sine ~amplitude:2.0 ~freq:f1 ())
      ()
  in
  let points = 64 in
  let dc = Circuit.Dcop.solve_exn mna in
  let fd_result =
    Steady.Periodic_fd.solve ~x_init:dc ~dae:(Circuit.Mna.dae mna) ~period:(1.0 /. f1)
      ~points ()
  in
  Alcotest.(check bool) "1-D converged" true fd_result.Steady.Periodic_fd.converged;
  (* MPDE with the same fast grid; the single-tone source is constant
     along t2, so every t2 column must equal the 1-D solution. *)
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:1e3 in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:points ~n2:4 mna in
  Alcotest.(check bool) "mpde converged" true sol.Mpde.Solver.stats.converged;
  let out = Circuit.Mna.node_index mna "out" in
  let worst = ref 0.0 in
  for i = 0 to points - 1 do
    let v1d = fd_result.Steady.Periodic_fd.states.(i).(out) in
    for j = 0 to 3 do
      let v2d = (Mpde.Solver.state_at sol ~i ~j).(out) in
      worst := Float.max !worst (Float.abs (v1d -. v2d))
    done
  done;
  Alcotest.(check bool) "columns equal the 1-D periodic solution" true (!worst < 1e-6)

(* Shooting vs MPDE on cost scaling: at equal accuracy targets the MPDE
   system is dramatically smaller. This checks the structural claim
   (the paper's "250x larger" argument) rather than wall-clock. *)
let test_problem_size_scaling () =
  let disparity = 30000.0 in
  let n1 = 40 and n2 = 30 in
  let mpde_points = n1 * n2 in
  let shooting_steps = int_of_float (10.0 *. disparity) in
  Alcotest.(check bool) "paper's ≥250x system-size ratio" true
    (float_of_int shooting_steps /. float_of_int mpde_points >= 250.0)

let () =
  Alcotest.run "integration"
    [
      ( "cross-validation",
        [
          Alcotest.test_case "mpde vs transient (nonlinear)" `Slow
            test_mpde_vs_transient_nonlinear;
          Alcotest.test_case "mpde vs analytic (linear)" `Quick test_mpde_vs_transient_linear;
          Alcotest.test_case "conversion gain cross-check" `Slow
            test_conversion_gain_cross_check;
          Alcotest.test_case "periodic-fd = 1-D mpde" `Quick test_periodic_fd_is_mpde_1d;
        ] );
      ( "paper pipeline",
        [
          Alcotest.test_case "balanced mixer figures 3-6" `Slow test_paper_pipeline;
          Alcotest.test_case "system size ratio" `Quick test_problem_size_scaling;
        ] );
    ]
