(* Tests for the single-time steady-state baselines: shooting,
   periodic finite differences, harmonic balance. All three are
   validated against closed-form responses of linear circuits and
   against each other on nonlinear ones. *)

module W = Circuit.Waveform
module N = Circuit.Netlist

let pi = 4.0 *. atan 1.0

(* RC lowpass driven by a 1 kHz sine; analytic gain/phase. *)
let rc_freq = 1e3
let rc_r = 1e3
let rc_c = 0.2e-6

let rc_fixture () =
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~r:rc_r ~c:rc_c
      ~drive:(W.sine ~amplitude:1.0 ~freq:rc_freq ())
      ()
  in
  mna

let rc_analytic t =
  let w = 2.0 *. pi *. rc_freq in
  let wrc = w *. rc_r *. rc_c in
  let gain = 1.0 /. sqrt (1.0 +. (wrc *. wrc)) in
  gain *. sin ((w *. t) -. atan wrc)

let max_err_vs_analytic times states idx =
  let worst = ref 0.0 in
  Array.iteri
    (fun k t -> worst := Float.max !worst (Float.abs (states.(k).(idx) -. rc_analytic t)))
    times;
  !worst

(* ---------- Shooting ---------- *)

let test_shooting_rc () =
  let mna = rc_fixture () in
  let r =
    Steady.Shooting.solve ~steps_per_period:512 ~dae:(Circuit.Mna.dae mna)
      ~period:(1.0 /. rc_freq) ()
  in
  Alcotest.(check bool) "converged" true r.Steady.Shooting.converged;
  let idx = Circuit.Mna.node_index mna "out" in
  let err =
    max_err_vs_analytic r.Steady.Shooting.trace.Numeric.Integrator.times
      r.Steady.Shooting.trace.Numeric.Integrator.states idx
  in
  Alcotest.(check bool) "matches analytic (BE accuracy)" true (err < 0.01)

let test_shooting_linear_one_newton () =
  (* For a linear circuit, the periodicity map is affine: shooting must
     converge in a single Newton iteration. *)
  let mna = rc_fixture () in
  let r =
    Steady.Shooting.solve ~steps_per_period:128 ~dae:(Circuit.Mna.dae mna)
      ~period:(1.0 /. rc_freq) ()
  in
  Alcotest.(check bool) "one newton" true (r.Steady.Shooting.newton_iterations <= 1)

let test_shooting_periodicity () =
  let mna = rc_fixture () in
  let r =
    Steady.Shooting.solve ~steps_per_period:256 ~dae:(Circuit.Mna.dae mna)
      ~period:(1.0 /. rc_freq) ()
  in
  let states = r.Steady.Shooting.trace.Numeric.Integrator.states in
  let first = states.(0) and last = states.(Array.length states - 1) in
  Alcotest.(check bool) "x(T) = x(0)" true (Linalg.Vec.dist2 first last < 1e-6)

let test_shooting_rectifier () =
  let { Circuits.mna; _ } =
    Circuits.diode_rectifier ~load_r:10e3 ~load_c:0.5e-6
      ~drive:(W.sine ~amplitude:2.0 ~freq:rc_freq ())
      ()
  in
  let dc = Circuit.Dcop.solve_exn mna in
  let r =
    Steady.Shooting.solve ~steps_per_period:512 ~x0:dc ~dae:(Circuit.Mna.dae mna)
      ~period:(1.0 /. rc_freq) ()
  in
  Alcotest.(check bool) "converged" true r.Steady.Shooting.converged;
  let idx = Circuit.Mna.node_index mna "out" in
  let samples = Array.map (fun x -> x.(idx)) r.Steady.Shooting.trace.Numeric.Integrator.states in
  let mean = Linalg.Vec.mean samples in
  (* Rectified 2 V sine into a big RC: mean well above zero, below peak. *)
  Alcotest.(check bool) "rectified mean" true (mean > 0.8 && mean < 2.0)

(* ---------- Periodic FD ---------- *)

let test_periodic_fd_rc () =
  let mna = rc_fixture () in
  let r =
    Steady.Periodic_fd.solve ~dae:(Circuit.Mna.dae mna) ~period:(1.0 /. rc_freq)
      ~points:256 ()
  in
  Alcotest.(check bool) "converged" true r.Steady.Periodic_fd.converged;
  let idx = Circuit.Mna.node_index mna "out" in
  let worst = ref 0.0 in
  Array.iteri
    (fun k t ->
      worst :=
        Float.max !worst
          (Float.abs (r.Steady.Periodic_fd.states.(k).(idx) -. rc_analytic t)))
    r.Steady.Periodic_fd.times;
  Alcotest.(check bool) "matches analytic" true (!worst < 0.02)

let test_periodic_fd_matches_shooting () =
  let { Circuits.mna; _ } =
    Circuits.diode_rectifier ~drive:(W.sine ~amplitude:2.0 ~freq:rc_freq ()) ()
  in
  let dc = Circuit.Dcop.solve_exn mna in
  let period = 1.0 /. rc_freq in
  let points = 256 in
  let fd = Steady.Periodic_fd.solve ~x_init:dc ~dae:(Circuit.Mna.dae mna) ~period ~points () in
  let sh =
    Steady.Shooting.solve ~steps_per_period:points ~x0:dc ~dae:(Circuit.Mna.dae mna)
      ~period ()
  in
  Alcotest.(check bool) "both converged" true
    (fd.Steady.Periodic_fd.converged && sh.Steady.Shooting.converged);
  let idx = Circuit.Mna.node_index mna "out" in
  (* Same BE discretization, same grid → nearly identical waveforms. *)
  let worst = ref 0.0 in
  for k = 0 to points - 1 do
    worst :=
      Float.max !worst
        (Float.abs
           (fd.Steady.Periodic_fd.states.(k).(idx)
           -. sh.Steady.Shooting.trace.Numeric.Integrator.states.(k).(idx)))
  done;
  Alcotest.(check bool) "fd = shooting on same grid" true (!worst < 1e-4)

let test_periodic_fd_rejects_bad_input () =
  let mna = rc_fixture () in
  Alcotest.check_raises "points < 2"
    (Invalid_argument "Periodic_fd.solve: need at least 2 points") (fun () ->
      ignore (Steady.Periodic_fd.solve ~dae:(Circuit.Mna.dae mna) ~period:1.0 ~points:1 ()))

(* ---------- Harmonic balance ---------- *)

let test_spectral_diff_exact () =
  (* The spectral differentiation matrix must differentiate
     sin(2πt/T) exactly at the collocation points. *)
  let n = 9 and period = 2.0 in
  let d = Steady.Hb.spectral_diff_matrix n period in
  let w = 2.0 *. pi /. period in
  let t k = float_of_int k *. period /. float_of_int n in
  let samples = Array.init n (fun k -> sin (w *. t k)) in
  let deriv = Linalg.Mat.mul_vec d samples in
  Array.iteri
    (fun k v ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "derivative at %d" k)
        (w *. cos (w *. t k))
        v)
    deriv

let test_spectral_diff_odd_only () =
  Alcotest.check_raises "even n" (Invalid_argument "Hb.spectral_diff_matrix: n must be odd")
    (fun () -> ignore (Steady.Hb.spectral_diff_matrix 8 1.0))

let test_hb_linear_exact () =
  (* HB is exact for linear circuits with sinusoidal drive even with
     one harmonic. *)
  let mna = rc_fixture () in
  let r = Steady.Hb.solve ~dae:(Circuit.Mna.dae mna) ~period:(1.0 /. rc_freq) ~harmonics:2 () in
  Alcotest.(check bool) "converged" true r.Steady.Hb.converged;
  let idx = Circuit.Mna.node_index mna "out" in
  let w = 2.0 *. pi *. rc_freq in
  let expected = 1.0 /. sqrt (1.0 +. ((w *. rc_r *. rc_c) ** 2.0)) in
  Alcotest.(check (float 1e-9)) "amplitude exact" expected
    (Steady.Hb.harmonic_amplitude r ~unknown:idx ~harmonic:1)

let test_hb_rectifier_needs_harmonics () =
  (* HB self-convergence on the rectifier: the waveform with few
     harmonics differs visibly from a high-order reference, and the
     error shrinks as harmonics are added — quantifying the paper's
     point that sharp nonlinear waveforms are expensive for HB. *)
  let { Circuits.mna; _ } =
    Circuits.diode_rectifier ~drive:(W.sine ~amplitude:2.0 ~freq:rc_freq ()) ()
  in
  let dc = Circuit.Dcop.solve_exn mna in
  let idx = Circuit.Mna.node_index mna "out" in
  let hb_waveform harmonics =
    let r =
      Steady.Hb.solve ~x_init:dc ~dae:(Circuit.Mna.dae mna) ~period:(1.0 /. rc_freq)
        ~harmonics ()
    in
    Alcotest.(check bool) (Printf.sprintf "hb%d converged" harmonics) true r.Steady.Hb.converged;
    Array.map (fun x -> x.(idx)) r.Steady.Hb.states
  in
  let reference = hb_waveform 30 in
  let err harmonics =
    let w = hb_waveform harmonics in
    let worst = ref 0.0 in
    for k = 0 to 99 do
      let u = float_of_int k /. 100.0 in
      let v = Numeric.Interp.linear_periodic w u in
      let r = Numeric.Interp.linear_periodic reference u in
      worst := Float.max !worst (Float.abs (v -. r))
    done;
    !worst
  in
  let err_few = err 2 and err_many = err 12 in
  Alcotest.(check bool)
    (Printf.sprintf "more harmonics help (err2 %.4f vs err12 %.4f)" err_few err_many)
    true
    (err_many < err_few /. 2.0)

let test_hb_rejects_zero_harmonics () =
  let mna = rc_fixture () in
  Alcotest.check_raises "harmonics < 1"
    (Invalid_argument "Hb.solve: need at least 1 harmonic") (fun () ->
      ignore (Steady.Hb.solve ~dae:(Circuit.Mna.dae mna) ~period:1.0 ~harmonics:0 ()))

(* ---------- cross-method ---------- *)

let test_three_methods_agree_on_rlc () =
  let { Circuits.mna; _ } =
    Circuits.rlc_series ~r:200.0 ~l:1e-3 ~c:1e-6
      ~drive:(W.sine ~amplitude:1.0 ~freq:2e3 ())
      ()
  in
  let dae = Circuit.Mna.dae mna in
  let period = 1.0 /. 2e3 in
  let idx = Circuit.Mna.node_index mna "out" in
  let amp_of samples =
    (Array.fold_left Float.max neg_infinity samples
    -. Array.fold_left Float.min infinity samples)
    /. 2.0
  in
  let sh = Steady.Shooting.solve ~steps_per_period:1024 ~dae ~period () in
  let hb = Steady.Hb.solve ~dae ~period ~harmonics:4 () in
  let fd = Steady.Periodic_fd.solve ~dae ~period ~points:1024 () in
  let a_sh =
    amp_of (Array.map (fun x -> x.(idx)) sh.Steady.Shooting.trace.Numeric.Integrator.states)
  in
  let a_hb = Steady.Hb.harmonic_amplitude hb ~unknown:idx ~harmonic:1 in
  let a_fd = amp_of (Array.map (fun x -> x.(idx)) fd.Steady.Periodic_fd.states) in
  Alcotest.(check bool) "shooting vs hb" true (Float.abs (a_sh -. a_hb) /. a_hb < 0.02);
  Alcotest.(check bool) "fd vs hb" true (Float.abs (a_fd -. a_hb) /. a_hb < 0.02)

let () =
  Alcotest.run "steady"
    [
      ( "shooting",
        [
          Alcotest.test_case "rc analytic" `Quick test_shooting_rc;
          Alcotest.test_case "linear = 1 newton" `Quick test_shooting_linear_one_newton;
          Alcotest.test_case "periodicity" `Quick test_shooting_periodicity;
          Alcotest.test_case "rectifier" `Quick test_shooting_rectifier;
        ] );
      ( "periodic_fd",
        [
          Alcotest.test_case "rc analytic" `Quick test_periodic_fd_rc;
          Alcotest.test_case "matches shooting" `Quick test_periodic_fd_matches_shooting;
          Alcotest.test_case "input validation" `Quick test_periodic_fd_rejects_bad_input;
        ] );
      ( "harmonic_balance",
        [
          Alcotest.test_case "spectral diff exact" `Quick test_spectral_diff_exact;
          Alcotest.test_case "odd points only" `Quick test_spectral_diff_odd_only;
          Alcotest.test_case "linear exact" `Quick test_hb_linear_exact;
          Alcotest.test_case "harmonics vs sharpness" `Slow test_hb_rectifier_needs_harmonics;
          Alcotest.test_case "input validation" `Quick test_hb_rejects_zero_harmonics;
        ] );
      ( "cross-method",
        [ Alcotest.test_case "rlc agreement" `Slow test_three_methods_agree_on_rlc ] );
    ]
