(* Tests for the extension subsystems: AC small-signal analysis, the
   BJT model, the SPICE deck parser, and the spectral (mixed
   frequency-time) t1 scheme of the MPDE. *)

module W = Circuit.Waveform
module N = Circuit.Netlist

let pi = 4.0 *. atan 1.0

(* ---------- Ac ---------- *)

let rc_fixture () =
  Circuits.rc_lowpass ~r:1e3 ~c:1e-9 ~drive:(W.sine ~amplitude:1.0 ~freq:1e5 ()) ()

let test_ac_rc_pole () =
  let { Circuits.mna; _ } = rc_fixture () in
  let pole = 1.0 /. (2.0 *. pi *. 1e3 *. 1e-9) in
  let r = Circuit.Ac.analyze mna (Circuit.Ac.Linear { f_start = pole; f_stop = pole; points = 2 }) in
  let resp = Circuit.Ac.node_response mna r "out" in
  Alcotest.(check (float 1e-6)) "-3 dB at the pole" (-10.0 *. log10 2.0)
    (Circuit.Ac.magnitude_db resp).(0);
  Alcotest.(check (float 1e-6)) "-45 degrees" (-45.0) (Circuit.Ac.phase_deg resp).(0)

let test_ac_dc_limit () =
  let { Circuits.mna; _ } = rc_fixture () in
  let r = Circuit.Ac.analyze mna (Circuit.Ac.Linear { f_start = 1.0; f_stop = 1.0; points = 2 }) in
  let resp = Circuit.Ac.node_response mna r "out" in
  Alcotest.(check bool) "unity at DC" true
    (Float.abs (Complex.norm resp.(0) -. 1.0) < 1e-6)

let test_ac_rolloff_20db_per_decade () =
  let { Circuits.mna; _ } = rc_fixture () in
  let pole = 1.0 /. (2.0 *. pi *. 1e3 *. 1e-9) in
  let r =
    Circuit.Ac.analyze mna
      (Circuit.Ac.Linear { f_start = 100.0 *. pole; f_stop = 1000.0 *. pole; points = 2 })
  in
  let mags = Circuit.Ac.magnitude_db (Circuit.Ac.node_response mna r "out") in
  Alcotest.(check (float 0.1)) "20 dB/decade" 20.0 (mags.(0) -. mags.(1))

let test_ac_rlc_resonance () =
  let { Circuits.mna; _ } =
    Circuits.rlc_series ~r:10.0 ~l:1e-6 ~c:1e-9 ~drive:(W.dc 0.0) ()
  in
  let f0 = 1.0 /. (2.0 *. pi *. sqrt (1e-6 *. 1e-9)) in
  let sweep = Circuit.Ac.Decade { f_start = f0 /. 10.0; f_stop = f0 *. 10.0; points_per_decade = 40 } in
  let r = Circuit.Ac.analyze mna sweep in
  let mags = Circuit.Ac.magnitude_db (Circuit.Ac.node_response mna r "out") in
  (* Peak should sit near f0 with Q = (1/R)·sqrt(L/C) ≈ 3.16 → ~10 dB. *)
  let peak_idx = ref 0 in
  Array.iteri (fun k m -> if m > mags.(!peak_idx) then peak_idx := k) mags;
  let f_peak = r.Circuit.Ac.freqs.(!peak_idx) in
  Alcotest.(check bool) "peak near resonance" true (Float.abs (f_peak -. f0) /. f0 < 0.1);
  Alcotest.(check bool) "peaking magnitude" true (mags.(!peak_idx) > 8.0)

let test_ac_decade_sweep_geometry () =
  let freqs =
    Circuit.Ac.frequencies
      (Circuit.Ac.Decade { f_start = 10.0; f_stop = 1000.0; points_per_decade = 10 })
  in
  Alcotest.(check int) "count" 21 (Array.length freqs);
  Alcotest.(check (float 1e-6)) "start" 10.0 freqs.(0);
  Alcotest.(check (float 1e-3)) "stop" 1000.0 freqs.(20);
  (* log-uniform: constant ratio *)
  let ratio = freqs.(1) /. freqs.(0) in
  Alcotest.(check (float 1e-9)) "log spacing" ratio (freqs.(11) /. freqs.(10))

let test_ac_selected_sources () =
  (* Two sources; selecting one must halve the superposed response. *)
  let nl = N.create () in
  N.vsource nl "v1" "a" "0" (W.dc 0.0);
  N.resistor nl "r1" "a" "out" 1e3;
  N.vsource nl "v2" "b" "0" (W.dc 0.0);
  N.resistor nl "r2" "b" "out" 1e3;
  N.resistor nl "r3" "out" "0" 1e6;
  let mna = Circuit.Mna.build nl in
  let sweep = Circuit.Ac.Linear { f_start = 1.0; f_stop = 1.0; points = 2 } in
  let both = Circuit.Ac.analyze mna sweep in
  let one = Circuit.Ac.analyze ~ac_sources:[ "v1" ] mna sweep in
  let m_both = Complex.norm (Circuit.Ac.node_response mna both "out").(0) in
  let m_one = Complex.norm (Circuit.Ac.node_response mna one "out").(0) in
  Alcotest.(check bool) "superposition" true (Float.abs (m_both -. (2.0 *. m_one)) < 1e-9)

(* ---------- Bjt ---------- *)

let test_bjt_cutoff () =
  let op = Circuit.Bjt.evaluate Circuit.Bjt.default_npn ~vbe:0.0 ~vbc:(-5.0) in
  Alcotest.(check bool) "ic tiny" true (Float.abs op.Circuit.Bjt.ic < 1e-9);
  Alcotest.(check bool) "ib tiny" true (Float.abs op.Circuit.Bjt.ib < 1e-9)

let test_bjt_active_beta () =
  let p = { Circuit.Bjt.default_npn with gmin = 0.0 } in
  let op = Circuit.Bjt.evaluate p ~vbe:0.65 ~vbc:(-2.0) in
  Alcotest.(check bool) "forward active" true (op.Circuit.Bjt.ic > 0.0);
  Alcotest.(check (float 1e-6)) "ic/ib = beta_f" p.Circuit.Bjt.beta_forward
    (op.Circuit.Bjt.ic /. op.Circuit.Bjt.ib)

let test_bjt_kcl () =
  let op = Circuit.Bjt.evaluate Circuit.Bjt.default_npn ~vbe:0.7 ~vbc:0.1 in
  Alcotest.(check (float 1e-15)) "ic + ib + ie = 0" 0.0
    (op.Circuit.Bjt.ic +. op.Circuit.Bjt.ib +. op.Circuit.Bjt.ie)

let test_bjt_derivatives_fd () =
  let p = Circuit.Bjt.default_npn in
  List.iter
    (fun (vbe, vbc) ->
      let h = 1e-8 in
      let op = Circuit.Bjt.evaluate p ~vbe ~vbc in
      let ic v_be v_bc = (Circuit.Bjt.evaluate p ~vbe:v_be ~vbc:v_bc).Circuit.Bjt.ic in
      let ib v_be v_bc = (Circuit.Bjt.evaluate p ~vbe:v_be ~vbc:v_bc).Circuit.Bjt.ib in
      let check name analytic numeric =
        (* absolute floor covers derivatives that are essentially zero,
           where central differences only return cancellation noise *)
        let tol = (1e-3 *. Float.abs analytic) +. 1e-9 in
        Alcotest.(check bool)
          (Printf.sprintf "%s at (%.2f, %.2f)" name vbe vbc)
          true
          (Float.abs (analytic -. numeric) < tol)
      in
      check "dic/dvbe" op.Circuit.Bjt.d_ic_d_vbe ((ic (vbe +. h) vbc -. ic (vbe -. h) vbc) /. (2. *. h));
      check "dic/dvbc" op.Circuit.Bjt.d_ic_d_vbc ((ic vbe (vbc +. h) -. ic vbe (vbc -. h)) /. (2. *. h));
      check "dib/dvbe" op.Circuit.Bjt.d_ib_d_vbe ((ib (vbe +. h) vbc -. ib (vbe -. h) vbc) /. (2. *. h));
      check "dib/dvbc" op.Circuit.Bjt.d_ib_d_vbc ((ib vbe (vbc +. h) -. ib vbe (vbc -. h)) /. (2. *. h)))
    [ (0.65, -2.0); (0.7, 0.3); (0.2, 0.6); (0.75, 0.75) ]

let test_bjt_pnp_mirror () =
  let n = { Circuit.Bjt.default_npn with gmin = 0.0 } in
  let p = { n with polarity = Circuit.Bjt.Pnp } in
  let opn = Circuit.Bjt.evaluate n ~vbe:0.68 ~vbc:(-1.0) in
  let opp = Circuit.Bjt.evaluate p ~vbe:(-0.68) ~vbc:1.0 in
  Alcotest.(check (float 1e-15)) "pnp mirrors npn" (-.opn.Circuit.Bjt.ic) opp.Circuit.Bjt.ic

let test_bjt_no_overflow () =
  let op = Circuit.Bjt.evaluate Circuit.Bjt.default_npn ~vbe:50.0 ~vbc:50.0 in
  Alcotest.(check bool) "finite" true
    (Float.is_finite op.Circuit.Bjt.ic && Float.is_finite op.Circuit.Bjt.ib)

let test_bjt_common_emitter_dc () =
  let nl = N.create () in
  N.vsource nl "vcc" "vcc" "0" (W.dc 5.0);
  N.resistor nl "rb" "vcc" "b" 2e6;
  N.resistor nl "rc" "vcc" "c" 5e3;
  N.bjt nl "q1" ~collector:"c" ~base:"b" ~emitter:"0" Circuit.Bjt.default_npn;
  let m = Circuit.Mna.build nl in
  let x = Circuit.Dcop.solve_exn m in
  let vb = Circuit.Mna.voltage m x "b" and vc = Circuit.Mna.voltage m x "c" in
  Alcotest.(check bool) "vbe one junction drop" true (vb > 0.55 && vb < 0.85);
  (* Ib ≈ (5−0.7)/2M ≈ 2.15 µA, Ic ≈ 215 µA, drop ≈ 1.07 V. *)
  Alcotest.(check bool) "collector in active region" true (vc > 2.5 && vc < 4.8);
  let ib = (5.0 -. vb) /. 2e6 and ic = (5.0 -. vc) /. 5e3 in
  Alcotest.(check bool) "beta consistent" true
    (Float.abs ((ic /. ib) -. 100.0) < 10.0)

let test_bjt_differential_pair_transient () =
  (* Emitter-coupled pair driven differentially must steer the tail
     current between the two collectors. *)
  let nl = N.create () in
  N.vsource nl "vcc" "vcc" "0" (W.dc 5.0);
  N.vsource nl "vinp" "bp" "0" (W.sine ~offset:1.5 ~amplitude:0.2 ~freq:1e3 ());
  N.vsource nl "vinm" "bm" "0" (W.sine ~offset:1.5 ~amplitude:(-0.2) ~freq:1e3 ());
  N.resistor nl "rcp" "vcc" "cp" 5e3;
  N.resistor nl "rcm" "vcc" "cm" 5e3;
  N.bjt nl "q1" ~collector:"cp" ~base:"bp" ~emitter:"e" Circuit.Bjt.default_npn;
  N.bjt nl "q2" ~collector:"cm" ~base:"bm" ~emitter:"e" Circuit.Bjt.default_npn;
  N.resistor nl "re" "e" "0" 5e3;
  let m = Circuit.Mna.build nl in
  let r = Circuit.Transient.run ~mna:m ~t_stop:2e-3 ~steps:400 () in
  let d = Circuit.Transient.differential_waveform m r "cp" "cm" in
  let swing =
    Array.fold_left Float.max neg_infinity d -. Array.fold_left Float.min infinity d
  in
  Alcotest.(check bool) "differential output swings" true (swing > 1.0);
  (* Antisymmetric drive → output symmetric around 0. *)
  Alcotest.(check bool) "balanced around zero" true
    (Float.abs (Linalg.Vec.mean d) < 0.2 *. swing)

(* ---------- Spice_parser ---------- *)

let test_parse_value_suffixes () =
  let check s expected =
    match Circuit.Spice_parser.parse_value s with
    | Some v -> Alcotest.(check (float 1e-9)) s expected v
    | None -> Alcotest.failf "failed to parse %S" s
  in
  check "1k" 1e3;
  check "2.2u" 2.2e-6;
  check "100meg" 1e8;
  check "5" 5.0;
  check "1e3" 1e3;
  check "1.5e-2" 0.015;
  check "10p" 1e-11;
  check "3n" 3e-9;
  check "0.5m" 5e-4;
  check "2G" 2e9;
  check "4f" 4e-15;
  Alcotest.(check bool) "garbage rejected" true
    (Circuit.Spice_parser.parse_value "abc" = None)

let test_parse_simple_deck () =
  let deck =
    Circuit.Spice_parser.parse_string
      "voltage divider\nV1 in 0 DC 10\nR1 in mid 1k\nR2 mid 0 1k\n.end\n"
  in
  Alcotest.(check string) "title" "voltage divider" deck.Circuit.Spice_parser.title;
  Alcotest.(check int) "devices" 3
    (List.length (Circuit.Netlist.devices deck.Circuit.Spice_parser.netlist));
  let m = Circuit.Mna.build deck.Circuit.Spice_parser.netlist in
  let x = Circuit.Dcop.solve_exn m in
  Alcotest.(check (float 1e-6)) "divider" 5.0 (Circuit.Mna.voltage m x "mid")

let test_parse_sources () =
  let deck =
    Circuit.Spice_parser.parse_string
      "sources\n\
       V1 a 0 SIN(0.5 2 1k)\n\
       V2 b 0 PULSE(0 5 0 1u 1u 498u 1m)\n\
       R1 a 0 1k\n\
       R2 b 0 1k\n"
  in
  let devices = Circuit.Netlist.devices deck.Circuit.Spice_parser.netlist in
  let wave name =
    List.find_map
      (fun d ->
        match d with
        | Circuit.Device.Voltage_source { name = n; waveform; _ } when n = name ->
            Some waveform
        | _ -> None)
      devices
    |> Option.get
  in
  (* SIN: offset 0.5, amplitude 2 at 1 kHz. *)
  Alcotest.(check (float 1e-9)) "sin at t=0" 0.5 (W.eval (wave "V1") 0.0);
  Alcotest.(check (float 1e-9)) "sin quarter period" 2.5 (W.eval (wave "V1") 0.25e-3);
  (* PULSE: high during the flat top. *)
  Alcotest.(check (float 1e-6)) "pulse top" 5.0 (W.eval (wave "V2") 0.25e-3);
  Alcotest.(check (float 1e-6)) "pulse low" 0.0 (W.eval (wave "V2") 0.75e-3)

let test_parse_models_and_continuation () =
  let deck =
    Circuit.Spice_parser.parse_string
      "models\n\
       D1 a 0 dd\n\
       Ra in a 1k\n\
       Vin in 0 DC 5\n\
       .model dd D(is=1e-12\n\
       + n=1.5)\n"
  in
  let devices = Circuit.Netlist.devices deck.Circuit.Spice_parser.netlist in
  let diode_params =
    List.find_map
      (fun d ->
        match d with Circuit.Device.Diode { params; _ } -> Some params | _ -> None)
      devices
    |> Option.get
  in
  Alcotest.(check (float 1e-20)) "is" 1e-12 diode_params.Circuit.Diode.saturation_current;
  Alcotest.(check (float 1e-9)) "n" 1.5 diode_params.Circuit.Diode.ideality

let test_parse_mosfet_and_bjt () =
  let deck =
    Circuit.Spice_parser.parse_string
      "actives\n\
       M1 d g 0 0 nmod\n\
       Q1 c b 0 qmod\n\
       Vd d 0 DC 2\nVg g 0 DC 1\nVc c 0 DC 2\nVb b 0 DC 0.7\n\
       .model nmod NMOS(vto=0.6 kp=3m lambda=0.01)\n\
       .model qmod NPN(is=2e-15 bf=80)\n"
  in
  let devices = Circuit.Netlist.devices deck.Circuit.Spice_parser.netlist in
  let has_mosfet =
    List.exists
      (fun d ->
        match d with
        | Circuit.Device.Mosfet { params; _ } -> params.Circuit.Mosfet.vt0 = 0.6
        | _ -> false)
      devices
  in
  let has_bjt =
    List.exists
      (fun d ->
        match d with
        | Circuit.Device.Bjt { params; _ } -> params.Circuit.Bjt.beta_forward = 80.0
        | _ -> false)
      devices
  in
  Alcotest.(check bool) "mosfet parsed with model" true has_mosfet;
  Alcotest.(check bool) "bjt parsed with model" true has_bjt

let test_parse_errors () =
  (match Circuit.Spice_parser.parse_string "t\nR1 a 0\n" with
  | exception Circuit.Spice_parser.Parse_error { line = 2; _ } -> ()
  | exception Circuit.Spice_parser.Parse_error { line; _ } ->
      Alcotest.failf "wrong line: %d" line
  | _ -> Alcotest.fail "expected parse error");
  (match Circuit.Spice_parser.parse_string "t\nD1 a 0 nomodel\nR1 a 0 1\n" with
  | exception Circuit.Spice_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown model must fail");
  match Circuit.Spice_parser.parse_string "t\nX1 a b sub\n" with
  | exception Circuit.Spice_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "unsupported element must fail"

let test_parse_warnings () =
  let deck = Circuit.Spice_parser.parse_string "t\nR1 a 0 1k\n.tran 1u 1m\n.op\n" in
  Alcotest.(check int) "two warnings" 2 (List.length deck.Circuit.Spice_parser.warnings)

let test_parse_deck_runs_mpde () =
  (* End-to-end: parse a two-tone detector deck and solve its MPDE. *)
  let deck =
    Circuit.Spice_parser.parse_string
      "two-tone detector\n\
       V1 in 0 SIN(0 1 1meg) SIN(0 1 1.02meg)\n\
       D1 in out dd\n\
       Rl out 0 10k\n\
       Cl out 0 120p\n\
       .model dd D(is=1e-14)\n"
  in
  let mna = Circuit.Mna.build deck.Circuit.Spice_parser.netlist in
  let shear = Mpde.Shear.make ~fast_freq:1e6 ~slow_freq:20e3 in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:16 mna in
  Alcotest.(check bool) "mpde on parsed deck" true sol.Mpde.Solver.stats.converged;
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  Alcotest.(check bool) "beat detected" true
    (Mpde.Extract.t2_harmonic_amplitude ~values:vout ~harmonic:1 > 0.05)

(* ---------- Spectral_t1 MPDE scheme ---------- *)

let two_tone_rc () =
  Circuits.rc_lowpass ~r:1e3 ~c:100e-12
    ~drive:
      (W.sum (W.sine ~amplitude:1.0 ~freq:1e6 ()) (W.sine ~amplitude:1.0 ~freq:1.001e6 ()))
    ()

let test_spectral_scheme_accuracy () =
  let { Circuits.mna; _ } = two_tone_rc () in
  let shear = Mpde.Shear.make ~fast_freq:1e6 ~slow_freq:1e3 in
  let analytic f t =
    let w = 2.0 *. pi *. f in
    let wrc = w *. 1e3 *. 100e-12 in
    1.0 /. sqrt (1.0 +. (wrc *. wrc)) *. sin ((w *. t) -. atan wrc)
  in
  let err scheme =
    let options =
      { Mpde.Solver.default_options with scheme; linear_solver = Mpde.Solver.Direct }
    in
    let sol = Mpde.Solver.solve_mna ~options ~shear ~n1:17 ~n2:9 mna in
    Alcotest.(check bool) "converged" true sol.Mpde.Solver.stats.converged;
    (* Evaluate on the grid itself (no interpolation error): compare the
       i-th fast sample at j = 0 against the analytic quasi-periodic
       response at (t1_i, t2 = 0) — for this linear circuit the exact
       x̂(t1,t2) = resp_f1(t1) + resp_f2 sheared, so instead check along
       the diagonal with dense sampling. *)
    let vout = Mpde.Extract.surface_of_node sol mna "out" in
    let _, series =
      Mpde.Extract.diagonal sol ~values:vout ~t_start:0.0 ~t_stop:1e-6 ~samples:80
    in
    let worst = ref 0.0 in
    Array.iteri
      (fun k s ->
        let t = 1e-6 *. float_of_int k /. 79.0 in
        worst := Float.max !worst (Float.abs (s -. analytic 1e6 t -. analytic 1.001e6 t)))
      series;
    !worst
  in
  let e_backward = err Mpde.Assemble.Backward in
  let e_spectral = err Mpde.Assemble.Spectral_t1 in
  Alcotest.(check bool)
    (Printf.sprintf "spectral beats backward (%.4f vs %.4f)" e_spectral e_backward)
    true
    (e_spectral < e_backward /. 2.0)

let test_spectral_requires_odd_n1 () =
  let { Circuits.mna; _ } = two_tone_rc () in
  let shear = Mpde.Shear.make ~fast_freq:1e6 ~slow_freq:1e3 in
  let options =
    { Mpde.Solver.default_options with scheme = Mpde.Assemble.Spectral_t1 }
  in
  match Mpde.Solver.solve_mna ~options ~shear ~n1:16 ~n2:8 mna with
  | exception Invalid_argument _ -> ()
  | sol ->
      (* Newton may capture the Invalid_argument as a solver failure. *)
      Alcotest.(check bool) "must not converge silently" true
        (not sol.Mpde.Solver.stats.converged)

let test_spectral_gmres_converges () =
  let { Circuits.mna; _ } = two_tone_rc () in
  let shear = Mpde.Shear.make ~fast_freq:1e6 ~slow_freq:1e3 in
  let options = { Mpde.Solver.default_options with scheme = Mpde.Assemble.Spectral_t1 } in
  let sol = Mpde.Solver.solve_mna ~options ~shear ~n1:17 ~n2:9 mna in
  Alcotest.(check bool) "gmres path converges" true sol.Mpde.Solver.stats.converged;
  Alcotest.(check bool) "residual small" true
    (Mpde.Solver.residual_norm_check ~scheme:Mpde.Assemble.Spectral_t1 sol < 1e-7)

let test_spectral_ok_predicate () =
  let shear = Mpde.Shear.make ~fast_freq:1e6 ~slow_freq:1e3 in
  Alcotest.(check bool) "odd ok" true
    (Mpde.Assemble.spectral_ok (Mpde.Grid.make ~shear ~n1:17 ~n2:4));
  Alcotest.(check bool) "even rejected" false
    (Mpde.Assemble.spectral_ok (Mpde.Grid.make ~shear ~n1:16 ~n2:4))

(* ---------- Numeric.Spectral ---------- *)

let test_spectral_diff_matrix_shared () =
  let d = Numeric.Spectral.diff_matrix 7 1.0 in
  let w = 2.0 *. pi in
  let samples = Array.init 7 (fun k -> cos (w *. float_of_int k /. 7.0)) in
  let deriv = Linalg.Mat.mul_vec d samples in
  Array.iteri
    (fun k v ->
      Alcotest.(check (float 1e-9)) "derivative" (-.w *. sin (w *. float_of_int k /. 7.0)) v)
    deriv

let test_spectral_diff_validation () =
  Alcotest.check_raises "even"
    (Invalid_argument "Spectral.diff_matrix: n must be odd and at least 3") (fun () ->
      ignore (Numeric.Spectral.diff_matrix 4 1.0))

let () =
  Alcotest.run "extensions"
    [
      ( "ac",
        [
          Alcotest.test_case "rc pole" `Quick test_ac_rc_pole;
          Alcotest.test_case "dc limit" `Quick test_ac_dc_limit;
          Alcotest.test_case "rolloff" `Quick test_ac_rolloff_20db_per_decade;
          Alcotest.test_case "rlc resonance" `Quick test_ac_rlc_resonance;
          Alcotest.test_case "decade sweep" `Quick test_ac_decade_sweep_geometry;
          Alcotest.test_case "source selection" `Quick test_ac_selected_sources;
        ] );
      ( "bjt",
        [
          Alcotest.test_case "cutoff" `Quick test_bjt_cutoff;
          Alcotest.test_case "active beta" `Quick test_bjt_active_beta;
          Alcotest.test_case "kcl" `Quick test_bjt_kcl;
          Alcotest.test_case "derivatives" `Quick test_bjt_derivatives_fd;
          Alcotest.test_case "pnp mirror" `Quick test_bjt_pnp_mirror;
          Alcotest.test_case "no overflow" `Quick test_bjt_no_overflow;
          Alcotest.test_case "common emitter dc" `Quick test_bjt_common_emitter_dc;
          Alcotest.test_case "diff pair transient" `Quick test_bjt_differential_pair_transient;
        ] );
      ( "spice parser",
        [
          Alcotest.test_case "value suffixes" `Quick test_parse_value_suffixes;
          Alcotest.test_case "simple deck" `Quick test_parse_simple_deck;
          Alcotest.test_case "sources" `Quick test_parse_sources;
          Alcotest.test_case "models + continuation" `Quick test_parse_models_and_continuation;
          Alcotest.test_case "mosfet and bjt" `Quick test_parse_mosfet_and_bjt;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "warnings" `Quick test_parse_warnings;
          Alcotest.test_case "deck to mpde" `Quick test_parse_deck_runs_mpde;
        ] );
      ( "spectral t1",
        [
          Alcotest.test_case "accuracy" `Quick test_spectral_scheme_accuracy;
          Alcotest.test_case "odd n1 required" `Quick test_spectral_requires_odd_n1;
          Alcotest.test_case "gmres path" `Quick test_spectral_gmres_converges;
          Alcotest.test_case "spectral_ok" `Quick test_spectral_ok_predicate;
          Alcotest.test_case "shared diff matrix" `Quick test_spectral_diff_matrix_shared;
          Alcotest.test_case "diff matrix validation" `Quick test_spectral_diff_validation;
        ] );
    ]
