(* Down-conversion gain and distortion from pure-tone driving
   excitations (paper §1/§3: "Using pure-tone driving excitations, we
   are also able to obtain down-conversion gain and distortion
   figures"). Sweeps the RF drive amplitude on the balanced mixer and
   reports gain compression and baseband THD.

     dune exec examples/conversion_gain.exe *)

let () =
  let f_lo = 450e6 and fd = 15e3 in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  (* Pure RF tone at 2·f_lo + fd: the baseband output is a clean fd
     sinusoid whose amplitude against the drive gives the gain. *)
  let rf_signal =
    Circuit.Waveform.cosine ~amplitude:1.0 ~freq:((2.0 *. f_lo) +. fd) ()
  in
  Printf.printf "%-12s %-14s %-12s %-10s\n" "RF ampl (V)" "baseband (V)" "gain (dB)" "THD (%)";
  let amplitudes = [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.4; 0.6 ] in
  List.iter
    (fun rf_amplitude ->
      let { Circuits.mna; _ } =
        Circuits.balanced_mixer ~f_lo ~rf_amplitude ~rf_signal ()
      in
      let sol = Mpde.Solver.solve_mna ~shear ~n1:40 ~n2:30 mna in
      if not sol.Mpde.Solver.stats.converged then
        Printf.printf "%-12.3f (did not converge)\n" rf_amplitude
      else begin
        let nodes = Circuits.balanced_mixer_nodes in
        let diff =
          Mpde.Extract.differential_surface sol mna nodes.Circuits.out_plus
            nodes.Circuits.out_minus
        in
        let amp = Mpde.Extract.t2_harmonic_amplitude ~values:diff ~harmonic:1 in
        let gain =
          Mpde.Extract.conversion_gain_db ~values:diff ~rf_amplitude ~harmonic:1
        in
        let thd = Mpde.Extract.thd ~values:diff () in
        Printf.printf "%-12.3f %-14.5f %-12.2f %-10.2f\n" rf_amplitude amp gain
          (100.0 *. thd)
      end)
    amplitudes;
  Printf.printf
    "\nExpected shape: flat small-signal gain, then compression and rising THD\n\
     as the RF drive leaves the differential pair's linear range.\n"
