(* ISI and adjacent-channel interference (paper conclusion: "The new
   method is well-suited for estimating effects such as ISI and ACI in
   communication symbol streams").

   An OOK (on-off-keyed) carrier at 10 MHz carries an 8-bit pattern
   whose symbol rate ties to the difference-frequency scale; a diode
   envelope detector recovers the bits. We then:

   1. sweep the detector bandwidth and watch the eye close (ISI);
   2. add an adjacent-channel interferer and measure the eye penalty
      together with the drive spectrum's adjacent-channel power ratio.

     dune exec examples/isi_aci.exe *)

let f_c = 10e6

let bits = Rf.Prbs.prbs7 8

let nbits = Array.length bits

let fd = 25e3 (* pattern repetition frequency = slow fundamental *)

let symbol_freq = float_of_int nbits *. fd

let ook_drive ~amplitude =
  Circuit.Waveform.modulated_carrier ~amplitude ~carrier_freq:f_c ~bits ~symbol_freq ()

let detector_with ~load_c ~extra =
  let nl = Circuit.Netlist.create () in
  let drive = match extra with
    | None -> ook_drive ~amplitude:1.0
    | Some w -> Circuit.Waveform.sum (ook_drive ~amplitude:1.0) w
  in
  Circuit.Netlist.vsource nl "vin" "in" "0" drive;
  Circuit.Netlist.diode nl "d1" "in" "out" Circuit.Diode.default;
  Circuit.Netlist.resistor nl "rl" "out" "0" 2e3;
  Circuit.Netlist.capacitor nl "cl" "out" "0" load_c;
  Circuit.Mna.build nl

let eye_of mna =
  let shear = Mpde.Shear.make ~fast_freq:f_c ~slow_freq:fd in
  let n2 = 8 * nbits in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2 mna in
  assert sol.Mpde.Solver.stats.converged;
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  let env = Mpde.Extract.envelope sol ~values:vout in
  Rf.Metrics.eye_metrics ~samples_per_symbol:(n2 / nbits) ~bits env

let () =
  Printf.printf "OOK detector, carrier %.0f MHz, %d bits %s at %.0f kbit/s\n\n"
    (f_c /. 1e6) nbits
    (String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") bits)))
    (symbol_freq /. 1e3);

  Printf.printf "ISI vs detector bandwidth (larger load capacitor = slower detector):\n";
  Printf.printf "%-12s %-12s %-12s %-12s\n" "load C (nF)" "eye opening" "ISI rms" "levels";
  List.iter
    (fun load_c ->
      let eye = eye_of (detector_with ~load_c ~extra:None) in
      Printf.printf "%-12.1f %-12.4f %-12.4f %.3f/%.3f\n" (1e9 *. load_c)
        eye.Rf.Metrics.opening eye.Rf.Metrics.isi_rms eye.Rf.Metrics.level_one
        eye.Rf.Metrics.level_zero)
    [ 0.2e-9; 1e-9; 3e-9; 6e-9 ];

  (* Adjacent-channel interference: a second OOK channel 8 symbol rates
     away (still on the difference-frequency lattice). *)
  Printf.printf "\nACI: adjacent OOK channel at carrier + %.0f kHz, 8 dB below the wanted signal:\n"
    (symbol_freq /. 1e3);
  let interferer =
    Circuit.Waveform.modulated_carrier ~amplitude:0.4
      ~carrier_freq:(f_c +. (float_of_int nbits *. fd))
      ~bits:(Rf.Prbs.prbs7 ~seed:0x2B 8) ~symbol_freq ()
  in
  let clean = eye_of (detector_with ~load_c:1e-9 ~extra:None) in
  let jammed = eye_of (detector_with ~load_c:1e-9 ~extra:(Some interferer)) in
  Printf.printf "  eye opening clean   : %.4f V\n" clean.Rf.Metrics.opening;
  Printf.printf "  eye opening with ACI: %.4f V  (penalty %.1f%%)\n"
    jammed.Rf.Metrics.opening
    (100.0 *. (1.0 -. (jammed.Rf.Metrics.opening /. Float.max clean.Rf.Metrics.opening 1e-12)));

  (* Spectrum-level ACPR of the composite drive, for reference. *)
  let fs = 16.0 *. f_c in
  let n = 1 lsl 15 in
  let drive =
    Circuit.Waveform.sum (ook_drive ~amplitude:1.0) interferer
  in
  let samples =
    Array.init n (fun k -> Circuit.Waveform.eval drive (float_of_int k /. fs))
  in
  let spectrum = Rf.Spectrum.periodogram ~sample_rate:fs samples in
  let acpr =
    Rf.Metrics.adjacent_channel_power_ratio spectrum ~f_centre:f_c
      ~bandwidth:(2.0 *. symbol_freq)
      ~spacing:(float_of_int nbits *. fd)
  in
  Printf.printf
    "  drive-spectrum ACPR (adjacent/main): %.1f dB\n\
    \  (the unfiltered OOK main lobe is 2x the symbol rate wide, so at one\n\
    \   channel spacing the two spectra overlap — which is exactly why the\n\
    \   eye penalty above is so large)\n"
    acpr
