(* The paper's computational-speedup experiment (§3): the MPDE on a
   fixed multi-time grid versus single-time shooting across one
   difference period with enough steps to resolve the LO (≥ 10 per LO
   cycle). Shooting cost grows linearly with the frequency disparity
   f_fast/fd; the MPDE cost is disparity-independent, giving a
   crossover around disparity O(100) and two-plus orders of magnitude
   at disparity 30 000 (450 MHz vs 15 kHz).

     dune exec examples/speedup.exe [-- --full]

   The default sweep keeps shooting runs short; --full extends the
   sweep (minutes). *)

let full = Array.exists (( = ) "--full") Sys.argv

let time f =
  let t0 = Sys.time () in
  let y = f () in
  (y, Sys.time () -. t0)

let () =
  let f_lo = 1e6 in
  Printf.printf
    "Unbalanced switching mixer, LO %.0f kHz, RF tone at LO + fd; sweeping the \
     disparity f_lo/fd.\n\n" (f_lo /. 1e3);
  Printf.printf "%-10s %-12s %-12s %-12s %-10s\n" "disparity" "mpde (s)" "shoot (s)"
    "ratio" "steps";
  let disparities = if full then [ 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000. ]
    else [ 10.; 20.; 50.; 100.; 200.; 400. ] in
  List.iter
    (fun disparity ->
      let fd = f_lo /. disparity in
      let rf_signal = Circuit.Waveform.cosine ~amplitude:1.0 ~freq:(f_lo +. fd) () in
      let { Circuits.mna; _ } =
        Circuits.unbalanced_mixer ~f_lo ~rf_signal ~rf_amplitude:0.05 ()
      in
      let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
      let (sol, mpde_time) =
        time (fun () -> Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:16 mna)
      in
      assert sol.Mpde.Solver.stats.converged;
      (* Shooting across one difference period with 10 steps per LO cycle. *)
      let steps = int_of_float (10.0 *. disparity) in
      let dc = Circuit.Dcop.solve_exn mna in
      let (shoot, shoot_time) =
        time (fun () ->
            Steady.Shooting.solve ~steps_per_period:steps ~x0:dc
              ~dae:(Circuit.Mna.dae mna) ~period:(1.0 /. fd) ())
      in
      Printf.printf "%-10.0f %-12.3f %-12.3f %-12.1f %-10d%s\n" disparity mpde_time
        shoot_time (shoot_time /. mpde_time) steps
        (if shoot.Steady.Shooting.converged then "" else "  (shooting did not converge)"))
    disparities;
  Printf.printf
    "\nThe shooting column grows ~linearly with disparity while the MPDE column is\n\
     flat: the paper's break-even (~200) and the >100x regime both emerge.\n"
