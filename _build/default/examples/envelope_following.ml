(* Envelope-following (initial-value) mode of the MPDE: instead of the
   bi-periodic steady state, march along the difference-frequency time
   scale from a quasi-static start. This recovers slow-scale
   *transients* — e.g. the settling of an envelope detector when a
   two-tone drive is applied — which a bi-periodic solve cannot
   represent. We cross-check the final envelope against the bi-periodic
   MPDE solution of the same circuit.

     dune exec examples/envelope_following.exe *)

let () =
  let f1 = 1e6 and fd = 20e3 in
  let f2 = f1 +. fd in
  let { Circuits.mna; _ } = Circuits.envelope_detector ~f1 ~f2 ~amplitude:1.0 () in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let seed = Circuit.Dcop.solve_exn mna in
  let out = Circuit.Mna.node_index mna "out" in

  (* March two difference periods at 24 slow steps per period. *)
  let t2p = Mpde.Shear.t2_period shear in
  let result =
    Mpde.Envelope_follow.run ~seed ~system:sys ~shear ~n1:32 ~t2_stop:(2.0 *. t2p)
      ~steps:48 ()
  in
  Printf.printf "envelope following: converged=%b, %d Newton iterations over 48 steps\n"
    result.Mpde.Envelope_follow.converged result.Mpde.Envelope_follow.newton_iterations;
  let env =
    Mpde.Envelope_follow.envelope_of result ~unknown:out ~mode:Mpde.Extract.Mean_t1
  in
  Printf.printf "\ndetector output along t2 (beat envelope at %g kHz):\n" (fd /. 1e3);
  Array.iteri
    (fun s v ->
      if s mod 4 = 0 then
        Printf.printf "  t2 = %6.2f us  v = %.4f V\n"
          (1e6 *. result.Mpde.Envelope_follow.t2_values.(s))
          v)
    env;

  (* Cross-check the second marched period against the bi-periodic
     steady state. *)
  let sol = Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:24 mna in
  let vout = Mpde.Extract.surface_of_node sol mna "out" in
  let steady_env = Mpde.Extract.envelope sol ~values:vout in
  let worst = ref 0.0 in
  for j = 0 to 23 do
    let marched = env.(24 + j) in
    let diff = Float.abs (marched -. steady_env.(j)) in
    if diff > !worst then worst := diff
  done;
  Printf.printf
    "\nmax |envelope-following - bi-periodic| over the second period: %.4f V\n" !worst;
  Printf.printf "(backward-Euler envelope marching: agreement within O(h2) is expected)\n"
