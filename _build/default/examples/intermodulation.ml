(* Two-tone intermodulation on the balanced mixer: beyond the paper's
   single-tone gain figure, drive the RF port with TWO tones offset by
   3·fd and 4·fd from 2·f_LO. Both down-convert onto the same
   difference time scale, so a single MPDE solve yields the wanted
   tones (at t2-harmonics 3 and 4) and the third-order intermodulation
   products (at harmonics 2 and 5: 2·3−4 and 2·4−3) — the classic IM3
   measurement, obtained without any frequency-domain solver.

     dune exec examples/intermodulation.exe *)

let () =
  let f_lo = 450e6 and fd = 15e3 in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let tone k amplitude =
    Circuit.Waveform.cosine ~amplitude ~freq:((2.0 *. f_lo) +. (float_of_int k *. fd)) ()
  in
  Printf.printf
    "Balanced mixer two-tone test: RF tones at 2·f_LO + 3·fd and 2·f_LO + 4·fd\n";
  Printf.printf "(wanted baseband tones at harmonics 3,4 of fd; IM3 at harmonics 2,5)\n\n";
  Printf.printf "%-12s %-12s %-12s %-12s %-14s\n" "RF ampl (V)" "H3 (V)" "H4 (V)"
    "IM3 (V)" "IM3 rel (dBc)";
  let results =
    List.map
      (fun a ->
        let rf_signal = Circuit.Waveform.sum (tone 3 1.0) (tone 4 1.0) in
        let { Circuits.mna; _ } =
          Circuits.balanced_mixer ~f_lo ~rf_amplitude:a ~rf_signal ()
        in
        let sol = Mpde.Solver.solve_mna ~shear ~n1:40 ~n2:32 mna in
        assert sol.Mpde.Solver.stats.converged;
        let nodes = Circuits.balanced_mixer_nodes in
        let diff =
          Mpde.Extract.differential_surface sol mna nodes.Circuits.out_plus
            nodes.Circuits.out_minus
        in
        let h k = Mpde.Extract.t2_harmonic_amplitude ~values:diff ~harmonic:k in
        let wanted = h 3 and im3 = Float.max (h 2) (h 5) in
        Printf.printf "%-12.3f %-12.5f %-12.5f %-12.6f %-14.1f\n" a (h 3) (h 4) im3
          (20.0 *. log10 (im3 /. Float.max wanted 1e-30));
        (a, wanted, im3))
      [ 0.02; 0.04; 0.08; 0.16; 0.32 ]
  in
  (* IM3 grows ~3 dB per dB of drive (cube law); verify the slope over
     the small-signal region and extrapolate an input intercept. *)
  match results with
  | (a1, w1, i1) :: _ ->
      let a2, w2, i2 = List.nth results 2 in
      let slope_wanted = log10 (w2 /. w1) /. log10 (a2 /. a1) in
      let slope_im3 = log10 (i2 /. i1) /. log10 (a2 /. a1) in
      Printf.printf
        "\nsmall-signal slopes (decades/decade): wanted %.2f (expect ~1), IM3 %.2f (expect ~3)\n"
        slope_wanted slope_im3;
      (* Input-referred IP3: drive where extrapolated lines meet. *)
      let iip3 =
        a1 *. (10.0 ** (log10 (w1 /. i1) /. (slope_im3 -. slope_wanted)))
      in
      Printf.printf "extrapolated input IP3 ≈ %.3f V of RF drive\n" iip3
  | [] -> ()
