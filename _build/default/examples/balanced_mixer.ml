(* Reproduces paper §3 (Figures 3-6): the balanced LO-doubling
   down-conversion mixer driven by a 450 MHz LO and a bit-stream-
   modulated RF tone near 900 MHz, solved directly on the sheared
   difference-frequency time scales.

     dune exec examples/balanced_mixer.exe [-- --csv-dir DIR]

   With --csv-dir, the four figure data sets are written as CSV files;
   otherwise compact summaries are printed. *)

let csv_dir =
  let rec find = function
    | "--csv-dir" :: dir :: _ -> Some dir
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let write_csv name header rows =
  match csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc (header ^ "\n");
      List.iter (fun row -> output_string oc (row ^ "\n")) rows;
      close_out oc;
      Printf.printf "wrote %s\n" path

let surface_rows grid values =
  let n1 = Array.length values and n2 = Array.length values.(0) in
  let rows = ref [] in
  for i = n1 - 1 downto 0 do
    for j = n2 - 1 downto 0 do
      rows :=
        Printf.sprintf "%.6e,%.6e,%.6e"
          (Mpde.Grid.t1_of grid i)
          (Mpde.Grid.t2_of grid j)
          values.(i).(j)
        :: !rows
    done
  done;
  !rows

let () =
  let f_lo = 450e6 and fd = 15e3 in
  let rf_signal, bits = Circuits.paper_rf_bitstream ~f_lo ~fd () in
  Printf.printf "LO %.0f MHz, RF carrier %.6f MHz, difference %.0f kHz, bits %s\n"
    (f_lo /. 1e6)
    (((2.0 *. f_lo) +. fd) /. 1e6)
    (fd /. 1e3)
    (String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") bits)));
  let { Circuits.mna; _ } = Circuits.balanced_mixer ~f_lo ~rf_signal () in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:40 ~n2:30 mna in
  let stats = sol.Mpde.Solver.stats in
  Printf.printf
    "MPDE solve on the paper's 40x30 grid: converged=%b, %d Newton iterations, \
     %d GMRES iterations, residual %.2e, %.2f s\n"
    stats.converged stats.newton_iterations stats.linear_iterations stats.residual_norm
    stats.wall_seconds;
  let nodes = Circuits.balanced_mixer_nodes in

  (* Figure 3: multi-time differential output surface. *)
  let diff =
    Mpde.Extract.differential_surface sol mna nodes.Circuits.out_plus nodes.Circuits.out_minus
  in
  write_csv "fig3_diff_output_surface.csv" "t1_s,t2_s,v_diff" (surface_rows sol.grid diff);

  (* Figure 4: baseband envelope along the difference time scale. *)
  let env = Mpde.Extract.envelope sol ~values:diff in
  let times = Mpde.Extract.envelope_times sol in
  Printf.printf "\nFig.4 baseband differential output along t2 (bit structure visible):\n";
  Array.iteri
    (fun j v ->
      if j mod 2 = 0 then Printf.printf "  t2 = %6.2f us   v = %+.4f V\n" (1e6 *. times.(j)) v)
    env;
  write_csv "fig4_baseband_envelope.csv" "t2_s,v_diff"
    (Array.to_list (Array.mapi (fun j v -> Printf.sprintf "%.6e,%.6e" times.(j) v) env));

  (* Figure 5: multi-time voltage at the differential pair's sources. *)
  let vs = Mpde.Extract.surface_of_node sol mna nodes.Circuits.source_node in
  write_csv "fig5_source_surface.csv" "t1_s,t2_s,v_source" (surface_rows sol.grid vs);
  let col0 = Array.init sol.grid.Mpde.Grid.n1 (fun i -> vs.(i).(0)) in
  Printf.printf
    "\nFig.5 source-node waveform over one LO period (doubler action, two maxima):\n";
  Array.iteri
    (fun i v -> if i mod 4 = 0 then Printf.printf "  t1 = %5.3f ns  v = %.4f V\n"
        (1e9 *. Mpde.Grid.t1_of sol.grid i) v)
    col0;

  (* Figure 6: one-time source voltage over 5 LO periods via diagonal
     resampling of the multi-time solution. *)
  let t_start = 2.223e-6 in
  let t_stop = t_start +. (5.0 /. f_lo) in
  let times6, series6 =
    Mpde.Extract.diagonal sol ~values:vs ~t_start ~t_stop ~samples:200
  in
  write_csv "fig6_source_onetime.csv" "t_s,v_source"
    (Array.to_list (Array.mapi (fun k v -> Printf.sprintf "%.9e,%.6e" times6.(k) v) series6));
  Printf.printf "\nFig.6 one-time source voltage (5 LO periods starting at %.3f us):\n"
    (1e6 *. t_start);
  Array.iteri
    (fun k v ->
      if k mod 20 = 0 then Printf.printf "  t = %.5f us  v = %.4f V\n" (1e6 *. times6.(k)) v)
    series6;

  (* Bit recovery sanity check: the baseband magnitude envelope should
     null on the 0 bit. *)
  let magnitude =
    let n2 = Array.length env in
    let resampled = Numeric.Interp.resample_periodic (Array.map Float.abs env) n2 in
    resampled
  in
  let per_bit = Array.length magnitude / Array.length bits in
  Printf.printf "\nper-bit mean |baseband|: ";
  Array.iteri
    (fun k b ->
      let s = ref 0.0 in
      for j = k * per_bit to ((k + 1) * per_bit) - 1 do
        s := !s +. magnitude.(j)
      done;
      Printf.printf "%c=%.3f " (if b then '1' else '0') (!s /. float_of_int per_bit))
    bits;
  print_newline ()
