(* Power conversion with closely spaced tones (paper conclusion:
   "the proposed method can be applied generally to other systems
   featuring closely-spaced tones, such as power conversion
   circuits"). A full-wave diode bridge is fed by the superposition of
   two generators at 50 kHz and 50 kHz + 500 Hz — e.g. two imperfectly
   synchronized inverters. The DC-link voltage then carries a beat
   ripple at the 500 Hz difference, which the MPDE resolves directly
   on the difference time scale while the fast axis holds the
   rectification waveform.

     dune exec examples/power_converter.exe *)

let () =
  let f1 = 50e3 and fd = 500.0 in
  let drive =
    Circuit.Waveform.sum
      (Circuit.Waveform.sine ~amplitude:10.0 ~freq:f1 ())
      (Circuit.Waveform.sine ~amplitude:2.0 ~freq:(f1 +. fd) ())
  in
  let { Circuits.mna; _ } = Circuits.bridge_rectifier ~load_r:1e3 ~load_c:2e-7 ~drive () in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:48 ~n2:24 mna in
  let stats = sol.Mpde.Solver.stats in
  Printf.printf "bridge MPDE: converged=%b newton=%d continuation=%d wall=%.2fs\n"
    stats.Mpde.Solver.converged stats.Mpde.Solver.newton_iterations
    stats.Mpde.Solver.continuation_steps stats.Mpde.Solver.wall_seconds;
  let load = Mpde.Extract.differential_surface sol mna "p" "n" in
  let env = Mpde.Extract.envelope sol ~values:load in
  let times = Mpde.Extract.envelope_times sol in
  Printf.printf "\nDC-link voltage along the 2 ms difference period (beat ripple):\n";
  Array.iteri
    (fun j v -> if j mod 2 = 0 then Printf.printf "  t2 = %6.3f ms  v = %.4f V\n" (1e3 *. times.(j)) v)
    env;
  let mean = Linalg.Vec.mean env in
  let ripple =
    Array.fold_left Float.max neg_infinity env -. Array.fold_left Float.min infinity env
  in
  Printf.printf
    "\nmean DC-link voltage: %.3f V (peak-detecting bridge: below the |v| peak\n\
    \ %.1f V - 2 diode drops, discharging between beat maxima)\n"
    mean 12.0;
  Printf.printf "beat ripple (peak-to-peak): %.3f V at %g Hz\n" ripple fd;
  let beat = Mpde.Extract.t2_harmonic_amplitude ~values:load ~harmonic:1 in
  Printf.printf "difference-tone component: %.4f V\n" beat;
  (* Cross-check against brute-force transient over two beat periods. *)
  let steps = int_of_float (2.0 /. fd *. f1 *. 40.0) in
  let tr = Circuit.Transient.run ~mna ~t_stop:(2.0 /. fd) ~steps () in
  let w = Circuit.Transient.differential_waveform mna tr "p" "n" in
  let last_beat = Array.sub w (steps / 2) (steps / 2) in
  let tmean = Linalg.Vec.mean last_beat in
  Printf.printf "\ntransient cross-check (%d steps): mean %.3f V (MPDE %.3f V)\n"
    steps tmean mean
