examples/balanced_mixer.ml: Array Circuits Filename Float List Mpde Numeric Printf String Sys
