examples/isi_aci.ml: Array Circuit Float List Mpde Printf Rf String
