examples/isi_aci.mli:
