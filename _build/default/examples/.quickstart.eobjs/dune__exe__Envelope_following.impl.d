examples/envelope_following.ml: Array Circuit Circuits Float Mpde Printf
