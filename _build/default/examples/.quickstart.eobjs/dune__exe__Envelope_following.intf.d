examples/envelope_following.mli:
