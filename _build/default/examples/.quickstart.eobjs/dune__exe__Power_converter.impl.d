examples/power_converter.ml: Array Circuit Circuits Float Linalg Mpde Printf
