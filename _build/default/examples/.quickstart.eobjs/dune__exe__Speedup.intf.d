examples/speedup.mli:
