examples/intermodulation.ml: Circuit Circuits Float List Mpde Printf
