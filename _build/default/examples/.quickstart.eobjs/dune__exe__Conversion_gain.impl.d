examples/conversion_gain.ml: Circuit Circuits List Mpde Printf
