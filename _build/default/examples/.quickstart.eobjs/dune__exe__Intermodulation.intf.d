examples/intermodulation.mli:
