examples/conversion_gain.mli:
