examples/quickstart.mli:
