examples/balanced_mixer.mli:
