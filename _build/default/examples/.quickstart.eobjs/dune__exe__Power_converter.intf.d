examples/power_converter.mli:
