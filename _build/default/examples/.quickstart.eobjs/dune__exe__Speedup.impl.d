examples/speedup.ml: Array Circuit Circuits List Mpde Printf Steady Sys
