examples/quickstart.ml: Array Circuit Circuits Mpde Printf
