(* The rfss.jobs/1 wire protocol: one JSON request in a POST body, a
   close-delimited JSONL stream back.

     client                              rfssd
       |  POST /jobs  {"v":"rfss.jobs/1",...}
       |----------------------------------->|
       |   {"event":"accepted","cache":...} |  immediately
       |<-----------------------------------|
       |   {"event":"result",...}           |  when solved (or cached)
       |<-----------------------------------|
       |   {"event":"done"}                 |  then the server closes
       |<-----------------------------------|

   The "accepted" line carries everything that varies between a cache
   hit and a miss (the flag, the job id); the "result" line carries
   only the solve's outcome, so a hit replays the stored result line
   byte for byte — which is the identity the cache tests and the CI
   smoke assert. *)

module J = Diagnostics.Json_min

let version = "rfss.jobs/1"

type job = {
  fixture : Catalog.t;
  engine : Engine.kind;
  f_fast : float;
  fd : float;
  options : Engine.Options.t;
  wall_seconds : float option;
  max_newton_budget : int option;
  warm : bool;
}

let key_of_job job =
  Engine.Key.hash ~label:job.fixture.Catalog.name
    ~engine:(Engine.kind_name job.engine) ~f_fast:job.f_fast ~fd:job.fd
    ~options:job.options

(* ---------- request parsing ---------- *)

let known_option_keys =
  [
    "tol";
    "max_newton";
    "warm_start";
    "steps_per_period";
    "segments";
    "steps_per_segment";
    "harmonics";
    "points";
    "n1";
    "n2";
  ]

exception Bad of string

let parse_options j (o : Engine.Options.t) =
  match j with
  | J.Obj fields -> (
      try
        (match
           List.find_opt
             (fun (k, _) -> not (List.mem k known_option_keys))
             fields
         with
        | Some (k, _) ->
            raise
              (Bad
                 (Printf.sprintf "unknown option %S; known: %s" k
                    (String.concat ", " known_option_keys)))
        | None -> ());
        let num name default =
          match J.member name j with
          | None -> default
          | Some v -> (
              match J.num v with
              | Some x -> x
              | None ->
                  raise (Bad (Printf.sprintf "option %S is not a number" name)))
        in
        let int_field name default =
          int_of_float (num name (float_of_int default))
        in
        let bool_field name default =
          match J.member name j with
          | None -> default
          | Some v -> (
              match J.bool v with
              | Some b -> b
              | None ->
                  raise (Bad (Printf.sprintf "option %S is not a bool" name)))
        in
        let tol = num "tol" o.Engine.Options.tol in
        let max_newton = int_field "max_newton" o.Engine.Options.max_newton in
        let warm_start = bool_field "warm_start" o.Engine.Options.warm_start in
        let steps_per_period =
          int_field "steps_per_period" o.Engine.Options.steps_per_period
        in
        let segments = int_field "segments" o.Engine.Options.segments in
        let steps_per_segment =
          int_field "steps_per_segment" o.Engine.Options.steps_per_segment
        in
        let harmonics = int_field "harmonics" o.Engine.Options.harmonics in
        let points = int_field "points" o.Engine.Options.points in
        let n1 = int_field "n1" o.Engine.Options.n1 in
        let n2 = int_field "n2" o.Engine.Options.n2 in
        if tol <= 0.0 then raise (Bad "option \"tol\" must be > 0");
        List.iter
          (fun (name, v) ->
            if v < 1 then
              raise (Bad (Printf.sprintf "option %S must be >= 1" name)))
          [
            ("max_newton", max_newton);
            ("steps_per_period", steps_per_period);
            ("segments", segments);
            ("steps_per_segment", steps_per_segment);
            ("harmonics", harmonics);
            ("points", points);
            ("n1", n1);
            ("n2", n2);
          ];
        Ok
          {
            o with
            Engine.Options.tol;
            max_newton;
            warm_start;
            steps_per_period;
            segments;
            steps_per_segment;
            harmonics;
            points;
            n1;
            n2;
          }
      with Bad m -> Error m)
  | _ -> Error "\"options\" must be an object"

let parse_job body =
  match J.parse body with
  | exception J.Parse_error e -> Error ("invalid JSON: " ^ e)
  | j -> (
      let ( let* ) = Result.bind in
      let* () =
        match Option.bind (J.member "v" j) J.str with
        | Some v when v = version -> Ok ()
        | Some v ->
            Error
              (Printf.sprintf "unsupported protocol version %S (this server \
                               speaks %s)" v version)
        | None -> Error (Printf.sprintf "missing \"v\" (expected %S)" version)
      in
      let* fixture =
        match Option.bind (J.member "circuit" j) J.str with
        | Some name -> Catalog.find name
        | None -> Error "missing \"circuit\""
      in
      let* engine =
        match Option.bind (J.member "engine" j) J.str with
        | Some name -> Engine.kind_of_name name
        | None -> Ok Engine.Mpde
      in
      let float_field name default =
        match J.member name j with
        | Some v -> (
            match J.num v with
            | Some x -> Ok x
            | None -> Error (Printf.sprintf "%S is not a number" name))
        | None -> Ok default
      in
      let* f_fast = float_field "f_fast" fixture.Catalog.default_fast in
      let* fd = float_field "fd" fixture.Catalog.default_fd in
      let* () =
        if f_fast > 0.0 && fd > 0.0 then Ok ()
        else Error "\"f_fast\" and \"fd\" must be > 0"
      in
      let* options =
        match J.member "options" j with
        | Some o -> parse_options o Engine.Options.default
        | None -> Ok Engine.Options.default
      in
      let* wall_seconds, max_newton_budget =
        match J.member "budget" j with
        | None -> Ok (None, None)
        | Some (J.Obj _ as b) ->
            let wall = Option.bind (J.member "wall_seconds" b) J.num in
            let mn =
              Option.map int_of_float
                (Option.bind (J.member "max_newton" b) J.num)
            in
            if (match wall with Some v -> v <= 0.0 | None -> false) then
              Error "budget wall_seconds must be > 0"
            else if (match mn with Some v -> v < 1 | None -> false) then
              Error "budget max_newton must be >= 1"
            else Ok (wall, mn)
        | Some _ -> Error "\"budget\" must be an object"
      in
      let* warm =
        match J.member "warm" j with
        | None -> Ok true
        | Some v -> (
            match J.bool v with
            | Some b -> Ok b
            | None -> Error "\"warm\" is not a bool")
      in
      Ok
        {
          fixture;
          engine;
          f_fast;
          fd;
          options;
          wall_seconds;
          max_newton_budget;
          warm;
        })

(* ---------- response lines ---------- *)

(* Same non-finite-float convention as Checkpoint: residuals on failed
   solves are legitimately nan/inf, which bare %.17g would emit as
   invalid JSON. *)
let json_float v =
  if Float.is_nan v then "\"nan\""
  else if v = Float.infinity then "\"inf\""
  else if v = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" v

let esc = J.escape_string

let accepted_line ~id ~key ~cache_hit =
  Printf.sprintf "{\"v\":%s,\"event\":\"accepted\",\"id\":%d,\"key\":%s,\"cache\":%s}"
    (esc version) id (esc key)
    (esc (if cache_hit then "hit" else "miss"))

let error_line msg =
  Printf.sprintf "{\"v\":%s,\"event\":\"error\",\"message\":%s}" (esc version)
    (esc msg)

let done_line ~id =
  Printf.sprintf "{\"v\":%s,\"event\":\"done\",\"id\":%d}" (esc version) id

(* The exact CSV the CLI prints for a single solve, so "served" and
   "direct" outputs can be compared byte for byte. *)
let waveform_csv ~output_node (w : Engine.Result.waveform) =
  let b = Buffer.create (Array.length w.Engine.Result.times * 24 + 32) in
  Buffer.add_string b (Printf.sprintf "t,v(%s)\n" output_node);
  Array.iteri
    (fun k t ->
      Buffer.add_string b
        (Printf.sprintf "%.9e,%.6e\n" t w.Engine.Result.values.(k)))
    w.Engine.Result.times;
  Buffer.contents b

let result_line ~key ~warm_started job (r : Engine.Result.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"v\":";
  Buffer.add_string b (esc version);
  let field name value =
    Buffer.add_string b ",\"";
    Buffer.add_string b name;
    Buffer.add_string b "\":";
    Buffer.add_string b value
  in
  field "event" "\"result\"";
  field "key" (esc key);
  field "label" (esc r.Engine.Result.label);
  field "engine" (esc (Engine.kind_name r.Engine.Result.kind));
  field "converged" (string_of_bool r.Engine.Result.converged);
  field "newton" (string_of_int r.Engine.Result.newton_iterations);
  field "residual" (json_float r.Engine.Result.residual_norm);
  field "wall_seconds" (json_float r.Engine.Result.wall_seconds);
  field "warm_started" (string_of_bool warm_started);
  field "metrics"
    ("{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s:%s" (esc k) (json_float v))
           r.Engine.Result.metrics)
    ^ "}");
  field "waveform_csv"
    (esc
       (waveform_csv ~output_node:job.fixture.Catalog.output_node
          r.Engine.Result.waveform));
  Buffer.add_char b '}';
  Buffer.contents b
