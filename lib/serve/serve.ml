(* Library entry point: the persistent solve service. [Catalog] is the
   shared circuit registry; [Protocol] speaks rfss.jobs/1; [Cache] and
   [Warm] are the cross-request stores; [Jobs] executes; [Service]
   mounts it all on the Observe HTTP stack. *)

module Catalog = Catalog
module Protocol = Protocol
module Cache = Cache
module Warm = Warm
module Jobs = Jobs
module Service = Service
