(* Bounded LRU over canonical job keys. Values are the exact bytes of
   the stored "result" line — replaying bytes rather than re-rendering
   a record is what makes cache hits verifiably identical to the first
   response. Mutex-guarded: the server domain probes on submit, worker
   domains fill on completion. *)

type t = {
  capacity : int;
  mutex : Mutex.t;
  table : (string, string) Hashtbl.t;
  mutable order : string list;  (* MRU first; length = table size *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    order = [];
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f = Mutex.protect t.mutex f

let promote t key = t.order <- key :: List.filter (fun k -> k <> key) t.order

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some payload ->
      t.hits <- t.hits + 1;
      promote t key;
      Some payload
  | None ->
      t.misses <- t.misses + 1;
      None

let add t key payload =
  locked t @@ fun () ->
  Hashtbl.replace t.table key payload;
  promote t key;
  let rec trim = function
    | [] -> []
    | kept when List.length kept <= t.capacity -> kept
    | kept -> (
        (* Drop the tail (LRU) entry. *)
        match List.rev kept with
        | victim :: rest ->
            Hashtbl.remove t.table victim;
            t.evictions <- t.evictions + 1;
            trim (List.rev rest)
        | [] -> [])
  in
  t.order <- trim t.order

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
  }

let keys t = locked t @@ fun () -> t.order

let mem t key = locked t @@ fun () -> Hashtbl.mem t.table key
