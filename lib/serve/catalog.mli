(** The built-in circuit fixtures, shared by the CLI subcommands and
    the solve service's request validation. Each fixture knows how to
    build its circuit for a given (f_fast, fd) tone pair, its default
    tones, and which node (or node pair) is the reported output. *)

type t = {
  name : string;
  description : string;
  build : f_fast:float -> fd:float -> Circuits.built;
  default_fast : float;
  default_fd : float;
  output_node : string;
  output_node_b : string option;  (** second node of a differential output *)
}

val all : t list

val find : string -> (t, string) result
(** Fixture by name, or an error message listing the valid names. *)

val output_value : t -> Circuit.Mna.t -> Linalg.Vec.t -> float
(** The fixture's output voltage (differential when [output_node_b] is
    set) extracted from one circuit state. *)

val problem_of :
  ?period:Engine.Problem.period_choice ->
  ?label:string ->
  t ->
  f_fast:float ->
  fd:float ->
  Engine.Problem.t
(** Bridge to the unified engine API; [label] defaults to the fixture
    name (which is what {!Engine.Key} hashes). *)
