(* The built-in circuit fixtures, moved out of bin/rfss.ml so the CLI
   and the solve service validate requests against the same catalog:
   a job names a circuit, the catalog knows how to build it for a
   given tone pair and which node is its output. *)

module W = Circuit.Waveform

type t = {
  name : string;
  description : string;
  build : f_fast:float -> fd:float -> Circuits.built;
  default_fast : float;
  default_fd : float;
  output_node : string;
  output_node_b : string option;  (** for differential outputs *)
}

let all =
  [
    {
      name = "rc";
      description = "RC lowpass driven by two closely spaced tones";
      build =
        (fun ~f_fast ~fd ->
          Circuits.rc_lowpass
            ~drive:
              (W.sum
                 (W.sine ~amplitude:1.0 ~freq:f_fast ())
                 (W.sine ~amplitude:1.0 ~freq:(f_fast +. fd) ()))
            ());
      default_fast = 1e6;
      default_fd = 1e3;
      output_node = "out";
      output_node_b = None;
    };
    {
      name = "rectifier";
      description = "half-wave diode rectifier, single tone";
      build =
        (fun ~f_fast ~fd:_ ->
          Circuits.diode_rectifier ~drive:(W.sine ~amplitude:2.0 ~freq:f_fast ()) ());
      default_fast = 1e6;
      default_fd = 1e4;
      output_node = "out";
      output_node_b = None;
    };
    {
      name = "detector";
      description = "diode envelope detector on a two-tone beat";
      build =
        (fun ~f_fast ~fd ->
          Circuits.envelope_detector ~f1:f_fast ~f2:(f_fast +. fd) ~amplitude:1.0 ());
      default_fast = 1e6;
      default_fd = 2e4;
      output_node = "out";
      output_node_b = None;
    };
    {
      name = "ideal-mixer";
      description = "behavioural multiplying mixer (paper §2 ideal mixing)";
      build =
        (fun ~f_fast ~fd ->
          Circuits.ideal_mixer
            ~lo:(W.cosine ~amplitude:1.0 ~freq:f_fast ())
            ~rf:(W.cosine ~amplitude:1.0 ~freq:(f_fast -. fd) ())
            ());
      default_fast = 1e9;
      default_fd = 10e3;
      output_node = "out";
      output_node_b = None;
    };
    {
      name = "unbalanced-mixer";
      description = "single-MOSFET switching mixer";
      build =
        (fun ~f_fast ~fd ->
          Circuits.unbalanced_mixer ~f_lo:f_fast
            ~rf_signal:(W.cosine ~amplitude:1.0 ~freq:(f_fast +. fd) ())
            ~rf_amplitude:0.05 ());
      default_fast = 1e6;
      default_fd = 1e4;
      output_node = "out";
      output_node_b = None;
    };
    {
      name = "balanced-mixer";
      description = "paper §3 balanced LO-doubling mixer, bit-modulated RF";
      build =
        (fun ~f_fast ~fd ->
          let rf_signal, _ = Circuits.paper_rf_bitstream ~f_lo:f_fast ~fd () in
          Circuits.balanced_mixer ~f_lo:f_fast ~rf_signal ());
      default_fast = 450e6;
      default_fd = 15e3;
      output_node = Circuits.balanced_mixer_nodes.Circuits.out_plus;
      output_node_b = Some Circuits.balanced_mixer_nodes.Circuits.out_minus;
    };
  ]

let find name =
  match List.find_opt (fun f -> f.name = name) all with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown circuit %S; try: %s" name
           (String.concat ", " (List.map (fun f -> f.name) all)))

let output_value fixture mna x =
  match fixture.output_node_b with
  | None -> Circuit.Mna.voltage mna x fixture.output_node
  | Some b -> Circuit.Mna.differential_voltage mna x fixture.output_node b

(* Bridge a fixture to the unified engine API. *)
let problem_of ?(period = Engine.Problem.Fast_tone) ?label fixture ~f_fast ~fd =
  Engine.Problem.make
    ~label:(Option.value label ~default:fixture.name)
    ~period ~output:fixture.output_node ?output_b:fixture.output_node_b ~f_fast
    ~fd
    (fun () -> fixture.build ~f_fast ~fd)
