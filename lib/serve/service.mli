(** rfssd — the persistent solve service: the {!Jobs} executor mounted
    on the {!Observe.Server} HTTP stack.

    Endpoints on the bound address:
    - [POST /jobs] — an [rfss.jobs/1] request body; the response is a
      close-delimited JSONL stream (accepted → result → done);
    - [GET /jobs] — one-line JSON status (queue depth, cache and
      warm-start counters);
    - the built-in [GET /metrics] (including the [serve.*] family),
      [/healthz] and [/events] endpoints keep working. *)

type t

val routes : Jobs.t -> Observe.Server.route
(** The route function [start] mounts; exposed so tests can drive the
    protocol without a socket. *)

val start :
  ?workers:int ->
  ?cache_capacity:int ->
  ?warm_capacity:int ->
  Observe.Addr.t ->
  (t, string) result
(** Spawn the executor and bind the server (failing with a message,
    not an exception, when the address cannot be bound). *)

val addr : t -> Observe.Addr.t
(** Actual bound address (kernel-assigned port filled in). *)

val jobs : t -> Jobs.t

val stop : t -> unit
(** Stop the HTTP server, then the executor. *)
