(** The service's async job executor: accept → cache probe → queue →
    solve on persistent worker domains → stream response lines.

    [submit] and [poll] are called from the Observe serving domain and
    never block beyond brief mutex holds; solves run on this module's
    own worker domains (GC-tuned like {!Engine.Pool} workers). A
    submission whose canonical key is cached completes immediately,
    replaying the stored result line; a miss is queued and its handle
    yields lines as the solve progresses. *)

type t

type handle
(** One submission's response stream. *)

val create : ?workers:int -> ?cache_capacity:int -> ?warm_capacity:int -> unit -> t
(** Spawn the worker domains ([workers], default 2) and the bounded
    stores (result cache capacity default 64 entries, warm-start store
    default 16 surfaces). @raise Invalid_argument on non-positive
    sizes. *)

val submit : t -> Protocol.job -> handle
(** Accept a validated job. Cache hit: the handle already holds
    accepted/result/done. Miss: holds the accepted line; result and
    done appear when a worker finishes. Each [submit] counts exactly
    one cache hit or miss. *)

val poll : handle -> unit -> [ `Data of string | `Wait | `Eof ]
(** Next response chunk (a full ["...\n"] line), [`Wait] when nothing
    is ready yet, [`Eof] after the done line has been taken — the
    shape {!Observe.Server.Stream} expects. Never blocks. *)

val stop : t -> unit
(** Stop accepting queue work, join the workers, and error-finish any
    jobs that were still queued so connected clients see a terminated
    protocol rather than a hang. *)

val cache : t -> Cache.t

val warm : t -> Warm.t

val warm_starts : t -> int
(** Solves that started from a shared nearby surface. *)

val registry : t -> Diagnostics.Registry.t
(** Fresh [serve.*] metric samples (job counters, cache hit/miss/
    eviction, warm-start counters, queue depth). *)

val publish_metrics : t -> unit
(** Push {!registry} into {!Observe.Publish.set_metrics} so /metrics
    scrapes include the serve counters. Called internally after every
    state change; callers only need it for an initial zero-valued
    exposition. *)

val status_json : t -> string
(** One-line JSON status document (the [GET /jobs] body). *)
