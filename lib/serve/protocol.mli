(** The [rfss.jobs/1] wire protocol: a JSON job request in a POST
    body, a close-delimited JSONL response stream.

    Response stream, in order:
    + an ["accepted"] line — job id, canonical {!Engine.Key} and the
      cache disposition (["hit"]/["miss"]);
    + a ["result"] line (or an ["error"] line when the request could
      not be solved) — outcome, iteration counts, RF metrics and the
      waveform CSV;
    + a ["done"] line, after which the server closes the connection.

    The cache flag lives on the ["accepted"] line and {e only} there:
    a cache hit replays the stored ["result"] line byte for byte, so
    identical requests are verifiable by comparing result lines. *)

val version : string
(** ["rfss.jobs/1"] — the value of the ["v"] field in every request
    and every response line. *)

type job = {
  fixture : Catalog.t;
  engine : Engine.kind;
  f_fast : float;
  fd : float;
  options : Engine.Options.t;
  wall_seconds : float option;  (** per-request budget slice *)
  max_newton_budget : int option;
  warm : bool;  (** may seed from / contribute to the warm-start store *)
}

val key_of_job : job -> string
(** The job's canonical {!Engine.Key.hash}. *)

val parse_job : string -> (job, string) result
(** Parse and validate a request body:
    [{"v":"rfss.jobs/1","circuit":NAME,"engine":NAME?,"f_fast":HZ?,
    "fd":HZ?,"options":{...}?,"budget":{"wall_seconds":S?,
    "max_newton":N?}?,"warm":BOOL?}]. Unknown option keys, unknown
    circuits/engines, non-positive tones and malformed budgets are
    rejected with a message suitable for the 400 body. *)

val accepted_line : id:int -> key:string -> cache_hit:bool -> string

val error_line : string -> string

val done_line : id:int -> string

val result_line :
  key:string -> warm_started:bool -> job -> Engine.Result.t -> string
(** The solve outcome as one JSON line, embedding {!waveform_csv} as
    an escaped string. Deterministic given the result record. *)

val waveform_csv :
  output_node:string -> Engine.Result.waveform -> string
(** Exactly the CSV the CLI prints for a single solve ([t,v(node)]
    header, [%.9e,%.6e] rows) so served and direct outputs compare
    byte for byte. *)

val json_float : float -> string
(** [%.17g], with nan/±inf as quoted strings (the {!Checkpoint}
    convention). *)
