(* The async job executor behind the service: accept → cache probe →
   queue → solve on a persistent worker domain → stream result lines.

   Threading contract: [submit], [poll] and [status_json] run on the
   Observe server domain (they must never block beyond a mutex held
   for O(queue) work); the solves run on this module's worker domains,
   tuned like Engine.Pool workers. Results cross domains through each
   job's handle (a mutex-guarded line queue) and the shared
   cache/warm-start stores; the server loop polls handles every tick,
   so no wake plumbing is needed beyond its existing 50 ms cadence. *)

type handle = {
  hm : Mutex.t;
  lines : string Queue.t;
  mutable finished : bool;
}

type pending = {
  id : int;
  job : Protocol.job;
  key : string;
  handle : handle;
}

type t = {
  cache : Cache.t;
  warm : Warm.t;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : pending Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  workers : int;
  next_id : int Atomic.t;
  submitted : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  warm_solves : int Atomic.t;
}

(* ---------- handles ---------- *)

let handle_make () =
  { hm = Mutex.create (); lines = Queue.create (); finished = false }

let push h line =
  Mutex.protect h.hm (fun () -> Queue.push line h.lines)

let finish h = Mutex.protect h.hm (fun () -> h.finished <- true)

let poll h () =
  Mutex.protect h.hm (fun () ->
      match Queue.take_opt h.lines with
      | Some line -> `Data (line ^ "\n")
      | None -> if h.finished then `Eof else `Wait)

(* ---------- metrics ---------- *)

let queue_depth t = Mutex.protect t.mutex (fun () -> Queue.length t.queue)

let registry t =
  let r = Diagnostics.Registry.create () in
  let cs = Cache.stats t.cache in
  let c name v help =
    Diagnostics.Registry.counter ~help r name (float_of_int v)
  in
  let g name v help =
    Diagnostics.Registry.gauge ~help r name (float_of_int v)
  in
  c "serve.jobs_submitted" (Atomic.get t.submitted) "Jobs accepted by rfssd";
  c "serve.jobs_completed" (Atomic.get t.completed)
    "Jobs answered (cache hits included)";
  c "serve.jobs_failed" (Atomic.get t.failed)
    "Jobs whose solve raised instead of returning a result";
  c "serve.cache_hits" cs.Cache.hits "Result-cache hits";
  c "serve.cache_misses" cs.Cache.misses "Result-cache misses";
  c "serve.cache_evictions" cs.Cache.evictions "Result-cache LRU evictions";
  g "serve.cache_entries" cs.Cache.entries "Result-cache current size";
  c "serve.warm_starts" (Atomic.get t.warm_solves)
    "Solves seeded from a cached nearby surface";
  g "serve.warm_entries" (Warm.size t.warm) "Warm-start surfaces retained";
  g "serve.queue_depth" (queue_depth t) "Jobs accepted but not yet solving";
  g "serve.workers" t.workers "Solver worker domains";
  r

let publish_metrics t = Observe.Publish.set_metrics (registry t)

(* ---------- execution ---------- *)

let execute t (p : pending) =
  let job = p.job in
  let o = job.Protocol.options in
  let label = job.Protocol.fixture.Catalog.name in
  let budget =
    match (job.Protocol.wall_seconds, job.Protocol.max_newton_budget) with
    | None, None -> None
    | wall_seconds, max_newton ->
        Some (Resilience.Budget.make ?wall_seconds ?max_newton ())
  in
  let warm_surface =
    if job.Protocol.warm && job.Protocol.engine = Engine.Mpde then
      Warm.nearest t.warm ~label ~n1:o.Engine.Options.n1
        ~n2:o.Engine.Options.n2 ~f_fast:job.Protocol.f_fast
        ~fd:job.Protocol.fd
    else None
  in
  let warm_started = warm_surface <> None in
  if warm_started then Atomic.incr t.warm_solves;
  let options =
    { o with Engine.Options.budget; initial_surface = warm_surface }
  in
  let problem =
    Catalog.problem_of job.Protocol.fixture ~f_fast:job.Protocol.f_fast
      ~fd:job.Protocol.fd
  in
  (match Engine.run problem (Engine.make ~options job.Protocol.engine) with
  | r ->
      let line = Protocol.result_line ~key:p.key ~warm_started job r in
      Cache.add t.cache p.key line;
      (if r.Engine.Result.converged && job.Protocol.warm then
         match r.Engine.Result.mpde_solution with
         | Some sol ->
             Warm.offer t.warm ~label ~n1:o.Engine.Options.n1
               ~n2:o.Engine.Options.n2 ~f_fast:job.Protocol.f_fast
               ~fd:job.Protocol.fd sol.Mpde.Solver.big_x
         | None -> ());
      push p.handle line;
      Atomic.incr t.completed
  | exception e ->
      push p.handle (Protocol.error_line (Printexc.to_string e));
      Atomic.incr t.failed);
  push p.handle (Protocol.done_line ~id:p.id);
  finish p.handle;
  publish_metrics t

let rec worker_loop t w =
  let next =
    Mutex.protect t.mutex (fun () ->
        let rec wait () =
          if t.stopping then None
          else
            match Queue.take_opt t.queue with
            | Some p -> Some p
            | None ->
                Condition.wait t.cond t.mutex;
                wait ()
        in
        wait ())
  in
  match next with
  | None -> ()
  | Some p ->
      Observe.Publish.job_started ~job:p.key ~worker:w;
      let wall0 = Telemetry.Clock.wall () in
      execute t p;
      Observe.Publish.job_finished ~job:p.key ~worker:w ~status:"ok"
        ~health:None
        ~wall_seconds:(Telemetry.Clock.wall () -. wall0)
        ~attempts:1;
      worker_loop t w

(* ---------- lifecycle ---------- *)

let create ?(workers = 2) ?(cache_capacity = 64) ?(warm_capacity = 16) () =
  if workers < 1 then invalid_arg "Jobs.create: workers must be >= 1";
  let t =
    {
      cache = Cache.create ~capacity:cache_capacity;
      warm = Warm.create ~capacity:warm_capacity;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
      workers;
      next_id = Atomic.make 1;
      submitted = Atomic.make 0;
      completed = Atomic.make 0;
      failed = Atomic.make 0;
      warm_solves = Atomic.make 0;
    }
  in
  t.domains <-
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            Engine.Pool.tune_worker_gc ();
            Observe.Publish.worker_started ~worker:w;
            Fun.protect
              ~finally:(fun () -> Observe.Publish.worker_stopped ~worker:w)
              (fun () -> worker_loop t w)));
  t

let submit t job =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let key = Protocol.key_of_job job in
  Atomic.incr t.submitted;
  let h = handle_make () in
  (match Cache.find t.cache key with
  | Some payload ->
      push h (Protocol.accepted_line ~id ~key ~cache_hit:true);
      push h payload;
      push h (Protocol.done_line ~id);
      finish h;
      Atomic.incr t.completed
  | None ->
      push h (Protocol.accepted_line ~id ~key ~cache_hit:false);
      Mutex.protect t.mutex (fun () ->
          Queue.push { id; job; key; handle = h } t.queue;
          Condition.signal t.cond));
  publish_metrics t;
  h

let stop t =
  Mutex.protect t.mutex (fun () ->
      t.stopping <- true;
      Condition.broadcast t.cond);
  List.iter Domain.join t.domains;
  t.domains <- [];
  (* Anything still queued will never be solved; error-finish its
     stream so a connected client sees a terminated protocol rather
     than a hang. *)
  let abandoned =
    Mutex.protect t.mutex (fun () ->
        let l = List.of_seq (Queue.to_seq t.queue) in
        Queue.clear t.queue;
        l)
  in
  List.iter
    (fun p ->
      push p.handle (Protocol.error_line "service stopping");
      push p.handle (Protocol.done_line ~id:p.id);
      finish p.handle;
      Atomic.incr t.failed)
    abandoned;
  publish_metrics t

let cache t = t.cache

let warm t = t.warm

let warm_starts t = Atomic.get t.warm_solves

let status_json t =
  let cs = Cache.stats t.cache in
  Printf.sprintf
    "{\"v\":%s,\"workers\":%d,\"queue_depth\":%d,\"submitted\":%d,\"completed\":%d,\"failed\":%d,\"cache\":{\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"entries\":%d},\"warm\":{\"starts\":%d,\"entries\":%d}}"
    (Diagnostics.Json_min.escape_string Protocol.version)
    t.workers (queue_depth t) (Atomic.get t.submitted) (Atomic.get t.completed)
    (Atomic.get t.failed) cs.Cache.hits cs.Cache.misses cs.Cache.evictions
    cs.Cache.entries (Atomic.get t.warm_solves) (Warm.size t.warm)
