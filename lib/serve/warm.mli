(** Warm-start store: converged MPDE surfaces shared across requests.

    A converged flattened grid state ([big_x]) from one parameter
    point is offered back as the Newton initial guess for later
    requests on the same circuit and grid shape; the nearest stored
    point in log-frequency distance wins. Bounded (newest retained),
    thread-safe. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val offer : t -> label:string -> n1:int -> n2:int -> f_fast:float -> fd:float -> Linalg.Vec.t -> unit
(** Retain a converged surface (deduplicating an identical parameter
    point, evicting the oldest beyond capacity). *)

val nearest :
  t -> label:string -> n1:int -> n2:int -> f_fast:float -> fd:float ->
  Linalg.Vec.t option
(** Best matching surface for a request: exact (label, n1, n2) match,
    minimal [|ln Δf_fast| + |ln Δfd|]. Counts toward {!served} when
    one is found. *)

val served : t -> int
(** How many warm starts have been handed out. *)

val size : t -> int
