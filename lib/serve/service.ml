(* rfssd: mount the rfss.jobs/1 endpoints onto the Observe server.

   The observe layer stays protocol-agnostic — it hands every parsed
   request (with framed body) to this route function first. We own
   /jobs; everything else falls through to the built-in introspection
   endpoints, which keep working for the service process (its worker
   lifecycle events flow through Publish like a sweep's). *)

let routes jobs (req : Observe.Http.request) body =
  match req.Observe.Http.path with
  | "/jobs" -> (
      match req.Observe.Http.meth with
      | "POST" -> (
          match Protocol.parse_job body with
          | Error e ->
              Some
                (Observe.Server.Response
                   (Observe.Http.response ~status:400
                      ~content_type:"application/jsonl"
                      (Protocol.error_line e ^ "\n")))
          | Ok job ->
              let handle = Jobs.submit jobs job in
              Some
                (Observe.Server.Stream
                   {
                     header = Observe.Http.stream_header ();
                     poll = Jobs.poll handle;
                   }))
      | "GET" ->
          Some
            (Observe.Server.Response
               (Observe.Http.response ~content_type:"application/json"
                  (Jobs.status_json jobs ^ "\n")))
      | _ ->
          Some
            (Observe.Server.Response
               (Observe.Http.method_not_allowed ~allow:[ "GET"; "POST" ])))
  | _ -> None

type t = { server : Observe.Server.t; jobs : Jobs.t }

let start ?workers ?cache_capacity ?warm_capacity addr =
  let jobs = Jobs.create ?workers ?cache_capacity ?warm_capacity () in
  match Observe.Server.start ~routes:(routes jobs) addr with
  | Error e ->
      Jobs.stop jobs;
      Error e
  | Ok server ->
      (* Expose zeroed serve.* counters before the first job arrives —
         scrapers should see the family, not an absence. *)
      Jobs.publish_metrics jobs;
      Ok { server; jobs }

let addr t = Observe.Server.addr t.server

let jobs t = t.jobs

let stop t =
  Observe.Server.stop t.server;
  Jobs.stop t.jobs
