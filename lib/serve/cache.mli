(** Bounded LRU result cache, keyed by canonical {!Engine.Key} hashes.

    Values are the exact bytes of the ["result"] response line: hits
    replay those bytes verbatim, which is what makes an identical
    resubmission byte-for-byte comparable to its first response.
    Thread-safe — probed from the serving domain, filled from worker
    domains. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val find : t -> string -> string option
(** Lookup; a hit promotes the entry to most-recently-used. Every call
    counts toward {!stats} hits or misses. *)

val add : t -> string -> string -> unit
(** [add t key payload] inserts (or refreshes) the entry as MRU and
    evicts least-recently-used entries beyond the capacity. *)

val mem : t -> string -> bool
(** Presence probe; does not touch recency or the hit/miss counters. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats

val keys : t -> string list
(** Current keys, most-recently-used first (for tests and status). *)
