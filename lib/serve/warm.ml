(* Warm-start store: converged MPDE surfaces (the flattened big_x grid
   state) retained per circuit and grid shape, handed out as Newton
   initial guesses for cache-near parameter points. Bittner &
   Brachtendorf's frequency-sweep observation — nearby tone pairs
   share solution structure — is exactly why a converged surface at
   (f_fast, fd) is a better start than the DC point for
   (f_fast, fd·(1+ε)).

   Only surfaces whose (label, n1, n2, length) match the request
   exactly are candidates: a surface from another grid would not even
   have the right dimension (solve_mna additionally guards this).
   Among candidates the nearest in log-frequency distance wins. *)

type entry = {
  label : string;
  n1 : int;
  n2 : int;
  f_fast : float;
  fd : float;
  surface : Linalg.Vec.t;
}

type t = {
  capacity : int;
  mutex : Mutex.t;
  mutable entries : entry list;  (* newest first *)
  mutable served : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Warm.create: capacity must be >= 1";
  { capacity; mutex = Mutex.create (); entries = []; served = 0 }

let locked t f = Mutex.protect t.mutex f

let take n l = List.filteri (fun i _ -> i < n) l

let offer t ~label ~n1 ~n2 ~f_fast ~fd surface =
  locked t @@ fun () ->
  let same e =
    e.label = label && e.n1 = n1 && e.n2 = n2 && e.f_fast = f_fast
    && e.fd = fd
  in
  t.entries <-
    take t.capacity
      ({ label; n1; n2; f_fast; fd; surface }
      :: List.filter (fun e -> not (same e)) t.entries)

let log_distance e ~f_fast ~fd =
  Float.abs (Float.log (f_fast /. e.f_fast))
  +. Float.abs (Float.log (fd /. e.fd))

let nearest t ~label ~n1 ~n2 ~f_fast ~fd =
  locked t @@ fun () ->
  let candidates =
    List.filter (fun e -> e.label = label && e.n1 = n1 && e.n2 = n2) t.entries
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left
          (fun best e ->
            if log_distance e ~f_fast ~fd < log_distance best ~f_fast ~fd then e
            else best)
          first rest
      in
      t.served <- t.served + 1;
      Some best.surface

let served t = locked t @@ fun () -> t.served

let size t = locked t @@ fun () -> List.length t.entries
