(** Blocking client for the introspection endpoints — used by
    [rfss top], [rfss scrape], the CI smoke test, and the test suite.

    Two shapes: {!get} for the fixed-length endpoints ([/metrics],
    [/healthz]) reads to EOF and parses the response; {!open_stream} /
    {!poll_lines} for [/events] hands back complete JSONL lines as
    they arrive without ever blocking the caller's render loop. *)

val get :
  ?timeout:float ->
  Addr.t ->
  string ->
  (int * (string * string) list * string, string) result
(** [get addr "/healthz"] → (status, headers, body). [timeout]
    (default 5 s) is an inactivity cap on connect and each read, so a
    wedged server yields an [Error] rather than a hang. Works on
    [/events] too: the stream is read until the server closes or the
    first [timeout] with no new bytes, and whatever arrived is the
    body. *)

val post :
  ?timeout:float ->
  Addr.t ->
  string ->
  string ->
  (int * (string * string) list * string, string) result
(** [post addr "/jobs" body] — same read-to-EOF shape as {!get} with a
    JSON request body ([Content-Type: application/json],
    [Content-Length] framing). The solve service answers with a
    close-delimited JSONL stream, which arrives here as the response
    body. *)

type stream

val open_stream :
  ?timeout:float -> ?since:int -> Addr.t -> (stream, string) result
(** Subscribe to [/events?since=N] (default 0 — everything retained).
    Blocks up to [timeout] (default 5 s) for the response header, then
    switches the socket to non-blocking for {!poll_lines}. *)

val poll_lines : stream -> string list
(** Complete lines received since the last call (the window-header
    line included), never blocking. Empty list when nothing new; check
    {!closed} to distinguish idle from gone. *)

val closed : stream -> bool
(** The server closed the stream (or the connection failed). Buffered
    complete lines are still returned by {!poll_lines}. *)

val close_stream : stream -> unit
