(* Library entry point: the introspection plane. [Publish] is the
   engine-facing hub; [Server]/[Client] speak the [Http] subset over an
   [Addr]. *)

module Addr = Addr
module Http = Http
module Publish = Publish
module Server = Server
module Client = Client
