let connect ?(timeout = 5.0) addr =
  match Addr.sockaddr addr with
  | Error e -> Error e
  | Ok sa -> (
      let fd =
        Unix.socket ~cloexec:true (Addr.socket_domain addr) SOCK_STREAM 0
      in
      (try Unix.setsockopt_float fd SO_RCVTIMEO timeout;
           Unix.setsockopt_float fd SO_SNDTIMEO timeout
       with _ -> ());
      match Unix.connect fd sa with
      | () -> Ok fd
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with _ -> ());
          Error
            (Printf.sprintf "cannot connect to %s: %s" (Addr.to_string addr)
               (Unix.error_message err)))

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring fd s !off (n - !off) with
    | 0 -> off := n
    | w -> off := !off + w
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let send_request ?(meth = "GET") ?body fd path =
  let req =
    match body with
    | None -> Printf.sprintf "%s %s HTTP/1.0\r\n\r\n" meth path
    | Some b ->
        Printf.sprintf
          "%s %s HTTP/1.0\r\nContent-Type: application/json\r\nContent-Length: \
           %d\r\n\r\n%s"
          meth path (String.length b) b
  in
  write_all fd req

let request ?timeout ?meth ?body addr path =
  match connect ?timeout addr with
  | Error e -> Error e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          match send_request ?meth ?body fd path with
          | exception Unix.Unix_error (err, _, _) ->
              Error ("send failed: " ^ Unix.error_message err)
          | () -> (
              let buf = Bytes.create 8192 in
              let acc = Buffer.create 8192 in
              let rec read_all () =
                match Unix.read fd buf 0 8192 with
                | 0 -> ()
                | n ->
                    Buffer.add_subbytes acc buf 0 n;
                    read_all ()
                | exception Unix.Unix_error (EINTR, _, _) -> read_all ()
                | exception
                    Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                    (* SO_RCVTIMEO expired: treat what we have as the
                       whole response (close-delimited streams). *)
                    ()
                | exception Unix.Unix_error (_, _, _) ->
                    (* Reset mid-read (server shut down while we were
                       draining /events): keep what arrived. *)
                    ()
              in
              read_all ();
              match Http.parse_response (Buffer.contents acc) with
              | Ok r -> Ok r
              | Error e -> Error e))

let get ?timeout addr path = request ?timeout addr path

let post ?timeout addr path body = request ?timeout ~meth:"POST" ~body addr path

type stream = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read, not yet split into lines *)
  mutable is_closed : bool;
}

let open_stream ?timeout ?(since = 0) addr =
  match connect ?timeout addr with
  | Error e -> Error e
  | Ok fd -> (
      match send_request fd (Printf.sprintf "/events?since=%d" since) with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with _ -> ());
          Error ("send failed: " ^ Unix.error_message err)
      | () -> (
          (* Blocking (timeout-capped) read until the header block is
             complete, then go non-blocking for poll_lines. *)
          let buf = Bytes.create 4096 in
          let acc = Buffer.create 4096 in
          let rec read_header () =
            match Http.header_end (Buffer.contents acc) with
            | Some stop -> Ok stop
            | None -> (
                match Unix.read fd buf 0 4096 with
                | 0 -> Error "server closed before sending headers"
                | n ->
                    Buffer.add_subbytes acc buf 0 n;
                    read_header ()
                | exception Unix.Unix_error (EINTR, _, _) -> read_header ()
                | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _)
                  ->
                    Error "timed out waiting for stream headers")
          in
          match read_header () with
          | Error e ->
              (try Unix.close fd with _ -> ());
              Error e
          | Ok stop -> (
              let raw = Buffer.contents acc in
              match Http.parse_response raw with
              | Error e ->
                  (try Unix.close fd with _ -> ());
                  Error e
              | Ok (status, _, _) when status <> 200 ->
                  (try Unix.close fd with _ -> ());
                  Error (Printf.sprintf "stream refused: HTTP %d" status)
              | Ok _ ->
                  Unix.set_nonblock fd;
                  let body = Buffer.create 4096 in
                  Buffer.add_string body
                    (String.sub raw stop (String.length raw - stop));
                  Ok { fd; buf = body; is_closed = false })))

let poll_lines s =
  let buf = Bytes.create 4096 in
  let rec pump () =
    if not s.is_closed then
      match Unix.read s.fd buf 0 4096 with
      | 0 -> s.is_closed <- true
      | n ->
          Buffer.add_subbytes s.buf buf 0 n;
          pump ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> pump ()
      | exception _ -> s.is_closed <- true
  in
  pump ();
  let data = Buffer.contents s.buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear s.buf;
      Buffer.add_string s.buf
        (String.sub data (last + 1) (String.length data - last - 1));
      String.sub data 0 last |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "")

let closed s = s.is_closed

let close_stream s =
  s.is_closed <- true;
  try Unix.close s.fd with _ -> ()
