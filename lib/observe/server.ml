(* Single-domain select() loop. Every fd is non-blocking; per-connection
   state is a pair of buffers. Streaming connections additionally carry
   the next event seq they owe the subscriber, or — for routes that
   stream — the poll thunk that produces their lines. *)

type reply =
  | Response of string
  | Stream of {
      header : string;
      poll : unit -> [ `Data of string | `Wait | `Eof ];
    }

type route = Http.request -> string -> reply option

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  out : Buffer.t;
  mutable out_off : int;  (* bytes of [out] already written *)
  mutable streaming : bool;
  mutable next_seq : int;  (* first event seq not yet queued *)
  mutable custom : (unit -> [ `Data of string | `Wait | `Eof ]) option;
  mutable close_after_flush : bool;
  mutable dead : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  bound : Addr.t;
  routes : route;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop_flag : bool Atomic.t;
  mutable dom : unit Domain.t option;
  mutable stopped : bool;
}

let max_out_buffer = 4 * 1024 * 1024

let wake fd = try ignore (Unix.write_substring fd "x" 0 1) with _ -> ()

let drain fd =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read fd buf 0 256 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception _ -> ()
  in
  go ()

let respond c body_or_status =
  Buffer.add_string c.out body_or_status;
  c.close_after_flush <- true

(* Queue every retained event from [c.next_seq] on; advance the cursor. *)
let feed_stream c =
  let slice = Publish.events_since (c.next_seq - 1) in
  List.iter
    (fun (e : Publish.event) ->
      Buffer.add_string c.out (Publish.event_to_json e);
      Buffer.add_char c.out '\n')
    slice.events;
  (match List.rev slice.events with
  | last :: _ -> c.next_seq <- last.Publish.seq + 1
  | [] -> if slice.oldest_seq > c.next_seq then c.next_seq <- slice.oldest_seq);
  if Buffer.length c.out - c.out_off > max_out_buffer then c.dead <- true

(* Pump a route's stream into the connection's output buffer until it
   yields [`Wait] (poll again next loop iteration) or [`Eof] (flush
   what is queued, then close — the HTTP/1.0 end-of-stream signal). *)
let feed_custom c =
  match c.custom with
  | None -> ()
  | Some poll ->
      let rec go () =
        if Buffer.length c.out - c.out_off > max_out_buffer then c.dead <- true
        else
          match poll () with
          | `Data s ->
              Buffer.add_string c.out s;
              go ()
          | `Wait -> ()
          | `Eof ->
              c.custom <- None;
              c.close_after_flush <- true
      in
      go ()

let builtin_paths = [ "/metrics"; "/healthz"; "/events" ]

let handle_request routes c (req : Http.request) body =
  match routes req body with
  | Some (Response raw) -> respond c raw
  | Some (Stream { header; poll }) ->
      Buffer.add_string c.out header;
      c.custom <- Some poll;
      feed_custom c
  | None -> (
      match (req.Http.meth, req.Http.path) with
      | "GET", "/metrics" ->
          let body =
            Diagnostics.Registry.to_prometheus (Publish.registry_snapshot ())
          in
          respond c
            (Http.response ~content_type:"text/plain; version=0.0.4" body)
      | "GET", "/healthz" ->
          respond c
            (Http.response ~content_type:"application/json"
               (Publish.healthz_json () ^ "\n"))
      | "GET", "/events" ->
          let since = Option.value (Http.query_int req "since") ~default:0 in
          Buffer.add_string c.out (Http.stream_header ());
          Buffer.add_string c.out (Publish.events_header ~since);
          Buffer.add_char c.out '\n';
          c.streaming <- true;
          c.next_seq <- since + 1;
          feed_stream c
      | _, p when List.mem p builtin_paths ->
          respond c (Http.method_not_allowed ~allow:[ "GET" ])
      | _, p -> respond c (Http.response ~status:404 ("no such endpoint: " ^ p)))

let read_conn routes c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | 0 ->
      (* EOF: the peer is gone (half-close is not worth supporting —
         leaving the fd selectable at EOF would spin the loop). *)
      c.dead <- true
  | n -> (
      Buffer.add_subbytes c.inbuf buf 0 n;
      match Http.parse_framed (Buffer.contents c.inbuf) with
      | Http.Incomplete ->
          (* Belt and braces: the framer caps declared sizes, this caps
             a peer that never finishes a request at all. *)
          if Buffer.length c.inbuf > Http.max_header_bytes + Http.max_body_bytes
          then c.dead <- true
      | Http.Too_large ->
          Buffer.clear c.inbuf;
          respond c (Http.response ~status:413 "request too large\n")
      | Http.Malformed e ->
          Buffer.clear c.inbuf;
          respond c (Http.response ~status:400 (e ^ "\n"))
      | Http.Complete (req, body) ->
          Buffer.clear c.inbuf;
          handle_request routes c req body)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception _ -> c.dead <- true

let write_conn c =
  let pending = Buffer.length c.out - c.out_off in
  if pending > 0 then begin
    match
      Unix.write_substring c.fd (Buffer.contents c.out) c.out_off pending
    with
    | n ->
        c.out_off <- c.out_off + n;
        if c.out_off = Buffer.length c.out then begin
          Buffer.clear c.out;
          c.out_off <- 0;
          if c.close_after_flush then c.dead <- true
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception _ -> c.dead <- true
  end
  else if c.close_after_flush && not c.streaming then c.dead <- true

let close_quietly fd = try Unix.close fd with _ -> ()

let serve t ~flush_interval =
  let conns = ref [] in
  let last_flush = ref (Telemetry.Clock.wall ()) in
  let accept_all () =
    let rec go () =
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          conns :=
            { fd; inbuf = Buffer.create 256; out = Buffer.create 1024;
              out_off = 0; streaming = false; next_seq = 1; custom = None;
              close_after_flush = false; dead = false }
            :: !conns;
          go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception _ -> ()
    in
    go ()
  in
  while not (Atomic.get t.stop_flag) do
    (* Feed live events to streaming subscribers before sleeping. *)
    List.iter (fun c -> if c.streaming && not c.dead then feed_stream c) !conns;
    (* Poll route-owned streams (job result feeds) the same way. *)
    List.iter (fun c -> if not c.dead then feed_custom c) !conns;
    let now = Telemetry.Clock.wall () in
    if now -. !last_flush >= flush_interval then begin
      Publish.flush ();
      last_flush := now
    end;
    let readers =
      t.listen_fd :: t.wake_r
      :: List.filter_map (fun c -> if c.dead then None else Some c.fd) !conns
    in
    let writers =
      List.filter_map
        (fun c ->
          if (not c.dead) && Buffer.length c.out - c.out_off > 0 then Some c.fd
          else None)
        !conns
    in
    (match Unix.select readers writers [] 0.05 with
    | rs, ws, _ ->
        if List.mem t.wake_r rs then drain t.wake_r;
        if List.mem t.listen_fd rs then accept_all ();
        List.iter
          (fun c ->
            if (not c.dead) && List.mem c.fd rs then read_conn t.routes c;
            if (not c.dead) && List.mem c.fd ws then write_conn c)
          !conns
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (EBADF, _, _) -> ());
    let dead, alive = List.partition (fun c -> c.dead) !conns in
    List.iter (fun c -> close_quietly c.fd) dead;
    conns := alive
  done;
  (* Graceful shutdown: the publisher may have pushed final events
     (run_finished, the last checkpoint) between our last feed and the
     stop signal. Feed streams once more and give every connection a
     short, bounded best-effort flush so close-delimited subscribers
     receive the complete stream rather than a truncated one. *)
  List.iter (fun c -> if c.streaming && not c.dead then feed_stream c) !conns;
  List.iter (fun c -> if not c.dead then feed_custom c) !conns;
  let pending c = (not c.dead) && Buffer.length c.out - c.out_off > 0 in
  let deadline = Unix.gettimeofday () +. 0.5 in
  while List.exists pending !conns && Unix.gettimeofday () < deadline do
    let writers =
      List.filter_map (fun c -> if pending c then Some c.fd else None) !conns
    in
    match Unix.select [] writers [] 0.05 with
    | _, ws, _ ->
        List.iter
          (fun c -> if pending c && List.mem c.fd ws then write_conn c)
          !conns
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (EBADF, _, _) -> ()
  done;
  List.iter (fun c -> close_quietly c.fd) !conns

let start ?(flush_interval = 1.0) ?(routes = fun _ _ -> None) addr =
  match Addr.sockaddr addr with
  | Error e -> Error e
  | Ok sa -> (
      (match addr with
      | Addr.Unix_socket p -> ( try Unix.unlink p with _ -> ())
      | Addr.Tcp _ -> ());
      let fd = Unix.socket ~cloexec:true (Addr.socket_domain addr) SOCK_STREAM 0 in
      match
        (match addr with
        | Addr.Tcp _ -> Unix.setsockopt fd SO_REUSEADDR true
        | Addr.Unix_socket _ -> ());
        Unix.bind fd sa;
        Unix.listen fd 16;
        Unix.set_nonblock fd
      with
      | exception Unix.Unix_error (err, _, _) ->
          close_quietly fd;
          Error
            (Printf.sprintf "cannot listen on %s: %s" (Addr.to_string addr)
               (Unix.error_message err))
      | () ->
          let bound =
            match addr with
            | Addr.Tcp (host, 0) -> (
                match Unix.getsockname fd with
                | Unix.ADDR_INET (_, port) -> Addr.Tcp (host, port)
                | _ -> addr)
            | _ -> addr
          in
          let wake_r, wake_w = Unix.pipe ~cloexec:true () in
          Unix.set_nonblock wake_r;
          Unix.set_nonblock wake_w;
          let t =
            { listen_fd = fd; bound; routes; wake_r; wake_w;
              stop_flag = Atomic.make false; dom = None; stopped = false }
          in
          Publish.set_wake (Some (fun () -> wake wake_w));
          Publish.arm ();
          t.dom <- Some (Domain.spawn (fun () -> serve t ~flush_interval));
          Ok t)

let addr t = t.bound

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Publish.disarm ();
    Publish.set_wake None;
    Atomic.set t.stop_flag true;
    wake t.wake_w;
    (match t.dom with Some d -> Domain.join d | None -> ());
    close_quietly t.listen_fd;
    close_quietly t.wake_r;
    close_quietly t.wake_w;
    match t.bound with
    | Addr.Unix_socket p -> ( try Unix.unlink p with _ -> ())
    | Addr.Tcp _ -> ()
  end
