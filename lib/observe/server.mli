(** The introspection server: one dedicated domain running a
    [Unix.select] loop over non-blocking sockets.

    Serves the {!Http} subset on a {!Addr.t}. Built-in endpoints:

    - [GET /metrics] — Prometheus text exposition from
      {!Publish.registry_snapshot};
    - [GET /healthz] — the {!Publish.healthz_json} document;
    - [GET /events?since=N] — close-delimited JSONL stream: a header
      line describing the window, then every retained event with
      [seq > N], then live events as they are published.

    A [routes] handler passed to {!start} is consulted first, with the
    parsed request and its [Content-Length]-framed body, and may answer
    with a complete raw response or a polled stream — this is how the
    solve service mounts [POST /jobs] without the observe layer knowing
    about jobs. A non-GET on a built-in path is answered [405] with an
    [Allow] header; an over-cap body gets [413] before the route runs.

    [start] arms {!Publish} and installs its wake pipe as the publish
    waker; [stop] tears all of that down, joins the domain, and (for
    Unix sockets) unlinks the path. The loop itself never runs user
    code from worker domains — publication crosses over only through
    {!Publish}'s atomics, the event ring, and the self-pipe byte.
    Route handlers and stream polls DO run on the serving domain, so
    they must be quick and non-blocking; hand real work to worker
    domains and let [poll] report [`Wait] until it finishes. *)

type reply =
  | Response of string
      (** complete raw HTTP bytes, typically from {!Http.response} *)
  | Stream of {
      header : string;  (** typically {!Http.stream_header} *)
      poll : unit -> [ `Data of string | `Wait | `Eof ];
          (** called on the serving domain every loop tick (≤ 50 ms
              apart) until [`Eof]; must never block *)
    }

type route = Http.request -> string -> reply option
(** [route req body] answers [None] to fall through to the built-in
    endpoints (and 404/405 handling). *)

type t

val start :
  ?flush_interval:float -> ?routes:route -> Addr.t -> (t, string) result
(** Bind, listen, arm {!Publish}, and spawn the serving domain.
    [flush_interval] (default 1 s of {!Telemetry.Clock.wall}) is how
    often the loop calls {!Publish.flush}. [routes] (default none)
    mounts service endpoints ahead of the built-ins. Fails with a
    message (not an exception) when the address cannot be bound. *)

val addr : t -> Addr.t
(** The actual bound address: for [Tcp (host, 0)] the kernel-assigned
    port is filled in. *)

val stop : t -> unit
(** Disarm {!Publish}, wake and join the serving domain, close every
    connection, and remove a Unix socket path. Idempotent. *)
