(** The introspection server: one dedicated domain running a
    [Unix.select] loop over non-blocking sockets.

    Serves the {!Http} subset on a {!Addr.t}:

    - [GET /metrics] — Prometheus text exposition from
      {!Publish.registry_snapshot};
    - [GET /healthz] — the {!Publish.healthz_json} document;
    - [GET /events?since=N] — close-delimited JSONL stream: a header
      line describing the window, then every retained event with
      [seq > N], then live events as they are published.

    [start] arms {!Publish} and installs its wake pipe as the publish
    waker; [stop] tears all of that down, joins the domain, and (for
    Unix sockets) unlinks the path. The loop itself never runs user
    code from worker domains — publication crosses over only through
    {!Publish}'s atomics, the event ring, and the self-pipe byte. *)

type t

val start : ?flush_interval:float -> Addr.t -> (t, string) result
(** Bind, listen, arm {!Publish}, and spawn the serving domain.
    [flush_interval] (default 1 s of {!Telemetry.Clock.wall}) is how
    often the loop calls {!Publish.flush}. Fails with a message (not
    an exception) when the address cannot be bound. *)

val addr : t -> Addr.t
(** The actual bound address: for [Tcp (host, 0)] the kernel-assigned
    port is filled in. *)

val stop : t -> unit
(** Disarm {!Publish}, wake and join the serving domain, close every
    connection, and remove a Unix socket path. Idempotent. *)
