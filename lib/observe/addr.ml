type t = Unix_socket of string | Tcp of string * int

let parse spec =
  let spec = String.trim spec in
  if spec = "" then Error "empty listen address"
  else if String.length spec > 5 && String.sub spec 0 5 = "unix:" then
    Ok (Unix_socket (String.sub spec 5 (String.length spec - 5)))
  else if String.contains spec '/' then Ok (Unix_socket spec)
  else
    match String.rindex_opt spec ':' with
    | None ->
        Error
          (Printf.sprintf
             "bad address %S: expected HOST:PORT or a Unix socket path \
              (containing '/')"
             spec)
    | Some i -> (
        let host = String.sub spec 0 i in
        let port = String.sub spec (i + 1) (String.length spec - i - 1) in
        let host = if host = "" then "127.0.0.1" else host in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 65535 -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "bad port %S in address %S" port spec))

let to_string = function
  | Unix_socket p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let sockaddr = function
  | Unix_socket p -> Ok (Unix.ADDR_UNIX p)
  | Tcp (host, port) -> (
      let inet =
        if host = "localhost" then Some Unix.inet_addr_loopback
        else
          match Unix.inet_addr_of_string host with
          | a -> Some a
          | exception Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } -> None
              | h -> Some h.Unix.h_addr_list.(0)
              | exception Not_found -> None)
      in
      match inet with
      | Some a -> Ok (Unix.ADDR_INET (a, port))
      | None -> Error (Printf.sprintf "cannot resolve host %S" host))

let socket_domain = function
  | Unix_socket _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET
