(** Listen/connect addresses for the introspection plane.

    One string spec covers both transports: a spec containing a [/]
    (or prefixed [unix:]) is a Unix-domain socket path; anything else
    must be [HOST:PORT]. A TCP port of [0] asks the kernel for an
    ephemeral port — {!Server.start} reports the actual one back. *)

type t =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of string * int  (** host, port *)

val parse : string -> (t, string) result
(** [parse "unix:/tmp/rfss.sock"], [parse "/tmp/rfss.sock"],
    [parse "127.0.0.1:9100"], [parse "localhost:0"]. *)

val to_string : t -> string
(** Round-trips through {!parse} (the [unix:] prefix is dropped). *)

val sockaddr : t -> (Unix.sockaddr, string) result
(** Resolve to a connectable/bindable address. [localhost] and
    dotted-quad hosts resolve without DNS; other names go through
    [gethostbyname]. *)

val socket_domain : t -> Unix.socket_domain
