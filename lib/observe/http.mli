(** Minimal HTTP/1.0 subset shared by the introspection server, the
    solve service, their clients, and the tests.

    Deliberately tiny: GET/POST request lines, header fields,
    [Content-Length]-framed request bodies with a hard size cap,
    fixed-length responses with [Content-Length], and header-only
    responses for streams that are delimited by connection close (the
    HTTP/1.0 way — no chunked transfer coding, no keep-alive). Query
    strings are split on [&]/[=] without percent-decoding; the
    endpoints only take integer parameters. *)

type request = {
  meth : string;  (** uppercased, e.g. ["GET"] *)
  target : string;  (** raw request-target, query included *)
  path : string;  (** target up to the first [?] *)
  query : (string * string) list;  (** in target order, not decoded *)
  headers : (string * string) list;  (** names lowercased *)
}

val header_end : string -> int option
(** Offset just past the blank line terminating the header block
    ([\r\n\r\n] or [\n\n]), or [None] while the request is still
    incomplete. *)

val parse_request : string -> (request, string) result
(** Parse a complete header block (body bytes after it are not
    consumed here — use {!parse_framed} for body framing). *)

val query_int : request -> string -> int option
(** First integer-valued occurrence of the query parameter. *)

val header : request -> string -> string option
(** Header value by case-insensitive name. *)

val content_length : request -> int option
(** Parsed [Content-Length], or [None] when absent or non-numeric. *)

val max_header_bytes : int
(** Hard cap on the header block: 16 KiB. *)

val max_body_bytes : int
(** Default hard cap on a request body: 1 MiB. *)

type framed =
  | Incomplete  (** keep reading — the request is not fully buffered *)
  | Too_large
      (** header block over {!max_header_bytes} or declared body over
          the cap; answer 413 and close *)
  | Malformed of string  (** unparseable; answer 400 and close *)
  | Complete of request * string  (** parsed request and its body *)

val parse_framed : ?max_body:int -> string -> framed
(** Incremental request framing over the bytes read so far: headers
    first, then [Content-Length] body bytes (absent length means an
    empty body, the GET case). [max_body] defaults to
    {!max_body_bytes}. *)

val status_reason : int -> string

val response :
  ?status:int ->
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  string ->
  string
(** Full HTTP/1.0 response (status line, [Content-Type],
    [Content-Length], [extra_headers], [Connection: close], blank
    line, body). [status] defaults to [200], [content_type] to
    [text/plain]. *)

val method_not_allowed : allow:string list -> string
(** 405 response carrying an [Allow] header listing the methods the
    path does serve. *)

val stream_header : ?content_type:string -> unit -> string
(** Status line and headers for a close-delimited stream: no
    [Content-Length]; the body is whatever follows until the server
    closes the connection. *)

val parse_response :
  string -> (int * (string * string) list * string, string) result
(** Split a raw response into (status code, lowercased headers, body). *)
