(** Minimal HTTP/1.0 subset shared by the introspection server, its
    client, and the tests.

    Deliberately tiny: GET request lines, header fields, fixed-length
    responses with [Content-Length], and header-only responses for
    streams that are delimited by connection close (the HTTP/1.0 way —
    no chunked transfer coding, no keep-alive). Query strings are
    split on [&]/[=] without percent-decoding; the endpoints only take
    integer parameters. *)

type request = {
  meth : string;  (** uppercased, e.g. ["GET"] *)
  target : string;  (** raw request-target, query included *)
  path : string;  (** target up to the first [?] *)
  query : (string * string) list;  (** in target order, not decoded *)
  headers : (string * string) list;  (** names lowercased *)
}

val header_end : string -> int option
(** Offset just past the blank line terminating the header block
    ([\r\n\r\n] or [\n\n]), or [None] while the request is still
    incomplete. *)

val parse_request : string -> (request, string) result
(** Parse a complete header block (body bytes after it are ignored —
    GET requests have none). *)

val query_int : request -> string -> int option
(** First integer-valued occurrence of the query parameter. *)

val status_reason : int -> string

val response :
  ?status:int -> ?content_type:string -> string -> string
(** Full HTTP/1.0 response (status line, [Content-Type],
    [Content-Length], [Connection: close], blank line, body).
    [status] defaults to [200], [content_type] to [text/plain]. *)

val stream_header : ?content_type:string -> unit -> string
(** Status line and headers for a close-delimited stream: no
    [Content-Length]; the body is whatever follows until the server
    closes the connection. *)

val parse_response :
  string -> (int * (string * string) list * string, string) result
(** Split a raw response into (status code, lowercased headers, body). *)
