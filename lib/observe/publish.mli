(** Lock-free publication point between the sweep engine and the
    introspection server.

    The engine side ({!Engine.Sweep}, {!Engine.Pool}) calls the
    lifecycle hooks below from worker domains; the server side reads
    {!read_stats}/{!events_since} from its own domain and renders
    them. The contract that keeps the hot path honest:

    - When no listener is armed, every hook is a single [Atomic.get]
      on the armed flag and an immediate return — no allocation, no
      lock, no syscall.
    - When armed, aggregate stats live in one [Atomic.t] holding an
      immutable {!stats} record, updated by a CAS retry loop; readers
      always observe a complete, internally consistent snapshot.
    - Events go into a fixed-capacity ring under a mutex (only touched
      when armed). Monotonic sequence numbers let late or slow
      subscribers detect exactly what they missed. *)

type worker = {
  w_busy : bool;
  w_job : string option;  (** label of the job in flight *)
  w_jobs_done : int;
  w_busy_seconds : float;  (** summed wall time of finished jobs *)
  w_retries : int;
}

type counts = {
  total : int;
  started : int;
  finished : int;  (** all completions, whatever the status *)
  failed : int;
  degraded_jobs : int;
  retries : int;
  checkpoints : int;
}

type stats = {
  phase : string;  (** ["idle"], ["running"] or ["done"] *)
  counts : counts;
  domains : int;
  deadline : float option;  (** absolute {!Telemetry.Clock.wall} time *)
  t0 : float;  (** wall time of [run_started] *)
  updated : float;  (** wall time of the last update or {!flush} *)
  worst : string;  (** worst health class seen, ["none"] initially *)
  worst_rank : int;
  workers : worker array;
  job_wall : Telemetry.histogram;  (** wall seconds of finished jobs *)
}

type event = {
  seq : int;  (** monotonic from 1, no gaps at the source *)
  time : float;  (** wall-clock seconds relative to [run_started] *)
  kind : string;
  job : string;
  worker : int;
  fields : (string * Diagnostics.Json_min.t) list;
}

type slice = {
  next_seq : int;  (** seq the next published event will get *)
  oldest_seq : int;  (** oldest seq still retained in the ring *)
  events : event list;  (** ascending seq order *)
}

(** {1 Arming} *)

val armed : unit -> bool

val arm : unit -> unit

val disarm : unit -> unit

val reset : unit -> unit
(** Clear stats and the event ring back to the initial state
    (sequence numbers restart at 1). For tests. *)

val set_wake : (unit -> unit) option -> unit
(** Callback invoked (outside any lock) after each event is pushed,
    so the server's select loop can wake and feed subscribers. *)

val set_ring_capacity : int -> unit
(** Resize the event ring (drops retained events; capacity is clamped
    to at least 16). Default 4096. *)

(** {1 Engine-side hooks} — all no-ops unless {!armed}. *)

val run_started :
  ?deadline:float -> ?domains:int -> phase:string -> total:int -> unit -> unit

val run_finished : unit -> unit

val job_started : job:string -> worker:int -> unit

val job_finished :
  job:string ->
  worker:int ->
  status:string ->
  health:string option ->
  wall_seconds:float ->
  attempts:int ->
  unit
(** [status] follows checkpoint-record semantics (["ok"], ["degraded"],
    ["failed"], ["error"]); [health] is the convergence class name. *)

val retry : job:string -> worker:int -> attempt:int -> delay:float -> unit

val degraded : job:string -> worker:int -> unit

val checkpoint_written : job:string -> unit

val worker_started : worker:int -> unit

val worker_stopped : worker:int -> unit

val set_metrics : Diagnostics.Registry.t -> unit
(** Stash extra samples (e.g. a merged telemetry snapshot) to be
    included verbatim in every subsequent [/metrics] scrape. The
    registry's samples are copied out at call time. *)

val flush : unit -> unit
(** Bump [stats.updated] to the current {!Telemetry.Clock.wall}. The
    server calls this periodically so scrapes can tell a quiet sweep
    from a dead one. *)

(** {1 Server-side reads and rendering} *)

val read_stats : unit -> stats

val events_since : int -> slice
(** Events with [seq > since], ascending. Compare [since + 1] against
    [slice.oldest_seq] to detect a gap. *)

val rank_of_health : string -> int
(** Severity order used for [worst]: quadratic < linear < unknown <
    rescued < stagnating < diverging < failed. *)

val event_to_json : event -> string
(** One JSONL line (no trailing newline). *)

val events_header : since:int -> string
(** The stream's first line:
    [{"schema":"rfss.sweep_events/1","since":…,"oldest_seq":…,
      "next_seq":…,"gap":…}]. *)

val registry_snapshot : unit -> Diagnostics.Registry.t
(** Fresh registry rendering the current stats (sweep counters,
    per-worker gauges, the job-wall histogram) plus anything given to
    {!set_metrics}. Feed to {!Diagnostics.Registry.to_prometheus}. *)

val healthz_json : unit -> string
(** The [/healthz] body, schema ["rfss.healthz/1"]. *)
