module J = Diagnostics.Json_min
module Registry = Diagnostics.Registry

type worker = {
  w_busy : bool;
  w_job : string option;
  w_jobs_done : int;
  w_busy_seconds : float;
  w_retries : int;
}

type counts = {
  total : int;
  started : int;
  finished : int;
  failed : int;
  degraded_jobs : int;
  retries : int;
  checkpoints : int;
}

type stats = {
  phase : string;
  counts : counts;
  domains : int;
  deadline : float option;
  t0 : float;
  updated : float;
  worst : string;
  worst_rank : int;
  workers : worker array;
  job_wall : Telemetry.histogram;
}

type event = {
  seq : int;
  time : float;
  kind : string;
  job : string;
  worker : int;
  fields : (string * J.t) list;
}

type slice = { next_seq : int; oldest_seq : int; events : event list }

let empty_worker =
  { w_busy = false; w_job = None; w_jobs_done = 0; w_busy_seconds = 0.0;
    w_retries = 0 }

let empty_counts =
  { total = 0; started = 0; finished = 0; failed = 0; degraded_jobs = 0;
    retries = 0; checkpoints = 0 }

let empty_hist : Telemetry.histogram =
  { count = 0; sum = 0.0; min = 0.0; max = 0.0;
    buckets = Array.make Telemetry.bucket_count 0 }

let initial_stats () =
  { phase = "idle"; counts = empty_counts; domains = 1; deadline = None;
    t0 = 0.0; updated = 0.0; worst = "none"; worst_rank = -1;
    workers = [||]; job_wall = empty_hist }

(* ------------------------------------------------------------------ *)
(* Arming and the aggregate-stats cell.                               *)

let armed_flag = Atomic.make false

let armed () = Atomic.get armed_flag

let state = Atomic.make (initial_stats ())

let rec update f =
  let old = Atomic.get state in
  if not (Atomic.compare_and_set state old (f old)) then update f

let read_stats () = Atomic.get state

(* Copy-on-write access to the worker array: every transition builds a
   fresh array so the published record stays immutable. *)
let with_worker workers i f =
  let i = if i < 0 then 0 else i in
  let n = Stdlib.max (Array.length workers) (i + 1) in
  let next = Array.make n empty_worker in
  Array.blit workers 0 next 0 (Array.length workers);
  next.(i) <- f next.(i);
  next

let hist_observe (h : Telemetry.histogram) v : Telemetry.histogram =
  let buckets = Array.copy h.buckets in
  let i = Telemetry.bucket_index v in
  buckets.(i) <- buckets.(i) + 1;
  {
    count = h.count + 1;
    sum = h.sum +. v;
    min = (if h.count = 0 then v else Float.min h.min v);
    max = (if h.count = 0 then v else Float.max h.max v);
    buckets;
  }

(* ------------------------------------------------------------------ *)
(* Event ring.                                                        *)

let ring_mutex = Mutex.create ()

let ring = ref (Array.make 4096 None)

let ring_next = ref 1 (* seq of the next event *)

let ring_oldest = ref 1 (* oldest seq still retained *)

let waker : (unit -> unit) option Atomic.t = Atomic.make None

let set_wake w = Atomic.set waker w

let set_ring_capacity n =
  let n = Stdlib.max 16 n in
  Mutex.protect ring_mutex (fun () ->
      ring := Array.make n None;
      ring_oldest := !ring_next)

let push_event kind ~job ~worker fields =
  let s = Atomic.get state in
  let time = Telemetry.Clock.wall () -. s.t0 in
  Mutex.protect ring_mutex (fun () ->
      let cap = Array.length !ring in
      let seq = !ring_next in
      !ring.((seq - 1) mod cap) <- Some { seq; time; kind; job; worker; fields };
      ring_next := seq + 1;
      if seq - !ring_oldest + 1 > cap then ring_oldest := seq - cap + 1);
  match Atomic.get waker with Some w -> w () | None -> ()

let events_since since =
  Mutex.protect ring_mutex (fun () ->
      let cap = Array.length !ring in
      let from = Stdlib.max (since + 1) !ring_oldest in
      let acc = ref [] in
      for seq = !ring_next - 1 downto from do
        match !ring.((seq - 1) mod cap) with
        | Some e when e.seq = seq -> acc := e :: !acc
        | _ -> ()
      done;
      { next_seq = !ring_next; oldest_seq = !ring_oldest; events = !acc })

(* ------------------------------------------------------------------ *)
(* Extra metric samples (merged telemetry etc).                       *)

let extra_metrics :
    (Registry.sample list
    * (string * (string * string) list * Telemetry.histogram) list)
    Atomic.t =
  Atomic.make ([], [])

let set_metrics reg =
  Atomic.set extra_metrics (Registry.samples reg, Registry.histograms reg)

let reset () =
  Atomic.set state (initial_stats ());
  Atomic.set extra_metrics ([], []);
  Mutex.protect ring_mutex (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      ring_next := 1;
      ring_oldest := 1)

let arm () = Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false

(* ------------------------------------------------------------------ *)
(* Engine-side hooks. Each starts with the one-atomic-load guard.     *)

let rank_of_health h =
  match h with
  | "quadratic" -> 0
  | "linear" -> 1
  | "rescued" -> 3
  | "stagnating" -> 4
  | "diverging" -> 5
  | "failed" -> 6
  | _ -> 2

let run_started ?deadline ?(domains = 1) ~phase:_ ~total () =
  if armed () then begin
    let now = Telemetry.Clock.wall () in
    update (fun _ ->
        { phase = "running";
          counts = { empty_counts with total };
          domains;
          deadline;
          t0 = now;
          updated = now;
          worst = "none";
          worst_rank = -1;
          workers = [||];
          job_wall = empty_hist });
    push_event "run_started" ~job:"" ~worker:(-1)
      [ ("total", J.Num (float_of_int total));
        ("domains", J.Num (float_of_int domains)) ]
  end

let run_finished () =
  if armed () then begin
    update (fun s ->
        { s with phase = "done"; updated = Telemetry.Clock.wall () });
    push_event "run_finished" ~job:"" ~worker:(-1) []
  end

let job_started ~job ~worker =
  if armed () then begin
    update (fun s ->
        { s with
          counts = { s.counts with started = s.counts.started + 1 };
          updated = Telemetry.Clock.wall ();
          workers =
            with_worker s.workers worker (fun w ->
                { w with w_busy = true; w_job = Some job }) });
    push_event "job_started" ~job ~worker []
  end

let job_finished ~job ~worker ~status ~health ~wall_seconds ~attempts =
  if armed () then begin
    let hname = Option.value health ~default:"unknown" in
    let hrank = rank_of_health hname in
    update (fun s ->
        let failed_inc =
          if status = "error" || status = "failed" then 1 else 0
        in
        { s with
          counts =
            { s.counts with
              finished = s.counts.finished + 1;
              failed = s.counts.failed + failed_inc };
          updated = Telemetry.Clock.wall ();
          worst = (if hrank > s.worst_rank then hname else s.worst);
          worst_rank = Stdlib.max hrank s.worst_rank;
          workers =
            with_worker s.workers worker (fun w ->
                { w with
                  w_busy = false;
                  w_job = None;
                  w_jobs_done = w.w_jobs_done + 1;
                  w_busy_seconds = w.w_busy_seconds +. wall_seconds });
          job_wall = hist_observe s.job_wall wall_seconds });
    push_event "job_finished" ~job ~worker
      [ ("status", J.Str status);
        ("health", (match health with Some h -> J.Str h | None -> J.Null));
        ("wall_seconds", J.Num wall_seconds);
        ("attempts", J.Num (float_of_int attempts)) ]
  end

let retry ~job ~worker ~attempt ~delay =
  if armed () then begin
    update (fun s ->
        { s with
          counts = { s.counts with retries = s.counts.retries + 1 };
          updated = Telemetry.Clock.wall ();
          workers =
            with_worker s.workers worker (fun w ->
                { w with w_retries = w.w_retries + 1 }) });
    push_event "retry" ~job ~worker
      [ ("attempt", J.Num (float_of_int attempt));
        ("delay_seconds", J.Num delay) ]
  end

let degraded ~job ~worker =
  if armed () then begin
    update (fun s ->
        { s with
          counts = { s.counts with degraded_jobs = s.counts.degraded_jobs + 1 };
          updated = Telemetry.Clock.wall () });
    push_event "degraded" ~job ~worker []
  end

let checkpoint_written ~job =
  if armed () then begin
    update (fun s ->
        { s with
          counts = { s.counts with checkpoints = s.counts.checkpoints + 1 };
          updated = Telemetry.Clock.wall () });
    push_event "checkpoint_written" ~job ~worker:(-1) []
  end

let worker_started ~worker =
  if armed () then
    update (fun s ->
        { s with workers = with_worker s.workers worker (fun w -> w) })

let worker_stopped ~worker =
  if armed () then
    update (fun s ->
        { s with
          workers =
            with_worker s.workers worker (fun w ->
                { w with w_busy = false; w_job = None }) })

let flush () =
  if armed () then
    update (fun s -> { s with updated = Telemetry.Clock.wall () })

(* ------------------------------------------------------------------ *)
(* Rendering.                                                         *)

let event_to_json e =
  J.to_string
    (J.Obj
       ([ ("seq", J.Num (float_of_int e.seq));
          ("time", J.Num e.time);
          ("event", J.Str e.kind);
          ("job", J.Str e.job);
          ("worker", J.Num (float_of_int e.worker)) ]
       @ e.fields))

let events_header ~since =
  let s = events_since since in
  let gap = since + 1 < s.oldest_seq && since + 1 < s.next_seq in
  J.to_string
    (J.Obj
       [ ("schema", J.Str "rfss.sweep_events/1");
         ("since", J.Num (float_of_int since));
         ("oldest_seq", J.Num (float_of_int s.oldest_seq));
         ("next_seq", J.Num (float_of_int s.next_seq));
         ("gap", J.Bool gap) ])

let rate_and_eta s now =
  let elapsed = now -. s.t0 in
  if s.counts.finished > 0 && elapsed > 0.0 then begin
    let rate = float_of_int s.counts.finished /. elapsed in
    let remaining = s.counts.total - s.counts.finished in
    let eta =
      if remaining > 0 && rate > 0.0 then Some (float_of_int remaining /. rate)
      else None
    in
    (Some rate, eta)
  end
  else (None, None)

let registry_snapshot () =
  let s = read_stats () in
  let now = Telemetry.Clock.wall () in
  let r = Registry.create () in
  let c name v help = Registry.counter ~help r name (float_of_int v) in
  let g name v help = Registry.gauge ~help r name v in
  c "sweep.jobs_started" s.counts.started "Jobs handed to a worker";
  c "sweep.jobs_finished" s.counts.finished
    "Jobs completed, whatever the status";
  c "sweep.jobs_failed" s.counts.failed "Jobs that ended in error";
  c "sweep.retries" s.counts.retries "Retry attempts across all jobs";
  c "sweep.degraded_jobs" s.counts.degraded_jobs
    "Jobs rerun with degraded settings after a watchdog trip";
  c "sweep.checkpoints" s.counts.checkpoints "Checkpoint records written";
  g "sweep.jobs_total" (float_of_int s.counts.total) "Jobs in the sweep";
  g "sweep.jobs_in_flight"
    (float_of_int (s.counts.started - s.counts.finished))
    "Jobs started but not yet finished";
  Registry.gauge ~help:"Run phase (one series set to 1)"
    ~labels:[ ("phase", s.phase) ]
    r "sweep.phase" 1.0;
  g "sweep.domains" (float_of_int s.domains) "Worker domains";
  g "sweep.elapsed_seconds"
    (if s.phase = "idle" then 0.0 else now -. s.t0)
    "Wall seconds since run start";
  (match s.deadline with
  | Some d ->
      g "sweep.budget_remaining_seconds" (d -. now)
        "Wall seconds until the sweep budget expires"
  | None -> ());
  g "sweep.worst_health_rank"
    (float_of_int s.worst_rank)
    "Worst convergence class seen (0=quadratic .. 6=failed)";
  Array.iteri
    (fun i w ->
      let labels = [ ("worker", string_of_int i) ] in
      Registry.gauge ~help:"1 while the worker has a job in flight" ~labels r
        "sweep.worker_busy"
        (if w.w_busy then 1.0 else 0.0);
      Registry.gauge ~help:"Summed wall seconds of the worker's finished jobs"
        ~labels r "sweep.worker_busy_seconds" w.w_busy_seconds;
      Registry.counter ~help:"Jobs finished by the worker" ~labels r
        "sweep.worker_jobs"
        (float_of_int w.w_jobs_done);
      Registry.counter ~help:"Retry attempts on the worker" ~labels r
        "sweep.worker_retries"
        (float_of_int w.w_retries))
    s.workers;
  Registry.histogram ~help:"Wall seconds per finished job" r
    "sweep.job_wall_seconds" s.job_wall;
  let samples, hists = Atomic.get extra_metrics in
  List.iter
    (fun (smp : Registry.sample) ->
      match smp.kind with
      | Registry.Counter ->
          Registry.counter ?help:smp.help ~labels:smp.labels r smp.name
            smp.value
      | Registry.Gauge ->
          Registry.gauge ?help:smp.help ~labels:smp.labels r smp.name smp.value)
    samples;
  List.iter (fun (name, labels, h) -> Registry.histogram ~labels r name h) hists;
  r

let healthz_json () =
  let s = read_stats () in
  let now = Telemetry.Clock.wall () in
  let rate, eta = rate_and_eta s now in
  let opt_num = function Some v -> J.Num v | None -> J.Null in
  let workers =
    Array.to_list s.workers
    |> List.mapi (fun i w ->
           J.Obj
             [ ("worker", J.Num (float_of_int i));
               ("busy", J.Bool w.w_busy);
               ("job", (match w.w_job with Some j -> J.Str j | None -> J.Null));
               ("jobs_done", J.Num (float_of_int w.w_jobs_done));
               ("busy_seconds", J.Num w.w_busy_seconds);
               ("retries", J.Num (float_of_int w.w_retries)) ])
  in
  let slice = events_since max_int in
  J.to_string
    (J.Obj
       [ ("schema", J.Str "rfss.healthz/1");
         ("phase", J.Str s.phase);
         ( "elapsed_seconds",
           J.Num (if s.phase = "idle" then 0.0 else now -. s.t0) );
         ("updated_seconds_ago", J.Num (now -. s.updated));
         ( "jobs",
           J.Obj
             [ ("total", J.Num (float_of_int s.counts.total));
               ("started", J.Num (float_of_int s.counts.started));
               ("finished", J.Num (float_of_int s.counts.finished));
               ("failed", J.Num (float_of_int s.counts.failed));
               ("degraded", J.Num (float_of_int s.counts.degraded_jobs));
               ("retries", J.Num (float_of_int s.counts.retries));
               ("checkpoints", J.Num (float_of_int s.counts.checkpoints));
               ( "in_flight",
                 J.Num (float_of_int (s.counts.started - s.counts.finished)) )
             ] );
         ("domains", J.Num (float_of_int s.domains));
         ( "budget_remaining_seconds",
           opt_num (Option.map (fun d -> d -. now) s.deadline) );
         ("worst_health", J.Str s.worst);
         ("jobs_per_second", opt_num rate);
         ("eta_seconds", opt_num eta);
         ("workers", J.Arr workers);
         ("next_event_seq", J.Num (float_of_int slice.next_seq)) ])
