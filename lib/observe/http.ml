type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
}

(* Find the end of the header block, accepting both CRLF and bare LF
   line endings (curl and printf-built test requests differ here). *)
let header_end raw =
  let n = String.length raw in
  let rec go i =
    if i + 1 >= n then None
    else if raw.[i] = '\n' && raw.[i + 1] = '\n' then Some (i + 2)
    else if
      i + 3 < n
      && raw.[i] = '\r'
      && raw.[i + 1] = '\n'
      && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let split_query target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
      let path = String.sub target 0 q in
      let qs = String.sub target (q + 1) (String.length target - q - 1) in
      let pairs =
        String.split_on_char '&' qs
        |> List.filter_map (fun kv ->
               if kv = "" then None
               else
                 match String.index_opt kv '=' with
                 | None -> Some (kv, "")
                 | Some e ->
                     Some
                       ( String.sub kv 0 e,
                         String.sub kv (e + 1) (String.length kv - e - 1) ))
      in
      (path, pairs)

let parse_headers lines =
  List.filter_map
    (fun line ->
      let line = strip_cr line in
      if line = "" then None
      else
        match String.index_opt line ':' with
        | None -> None (* tolerate junk header lines *)
        | Some c ->
            Some
              ( String.lowercase_ascii (String.trim (String.sub line 0 c)),
                String.trim
                  (String.sub line (c + 1) (String.length line - c - 1)) ))
    lines

let parse_request raw =
  match header_end raw with
  | None -> Error "incomplete request (no blank line)"
  | Some stop -> (
      let head = String.sub raw 0 stop in
      match String.split_on_char '\n' head with
      | [] -> Error "empty request"
      | request_line :: rest -> (
          let request_line = strip_cr request_line in
          match
            String.split_on_char ' ' request_line
            |> List.filter (fun s -> s <> "")
          with
          | [ meth; target; version ]
            when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
            ->
              let path, query = split_query target in
              Ok
                {
                  meth = String.uppercase_ascii meth;
                  target;
                  path;
                  query;
                  headers = parse_headers rest;
                }
          | _ -> Error ("bad request line: " ^ request_line)))

let query_int req name =
  List.find_map
    (fun (k, v) -> if k = name then int_of_string_opt v else None)
    req.query

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

let content_length req =
  match header req "content-length" with
  | None -> None
  | Some v -> int_of_string_opt (String.trim v)

(* Hard framing caps. The header cap matches the server's historical
   per-connection input bound; the body cap bounds what a single job
   submission may carry — far above any legitimate rfss.jobs request,
   far below anything that could pressure the server's memory. *)
let max_header_bytes = 16 * 1024
let max_body_bytes = 1024 * 1024

type framed =
  | Incomplete
  | Too_large
  | Malformed of string
  | Complete of request * string

let parse_framed ?(max_body = max_body_bytes) raw =
  match header_end raw with
  | None -> if String.length raw > max_header_bytes then Too_large else Incomplete
  | Some stop -> (
      match parse_request raw with
      | Error e -> Malformed e
      | Ok req -> (
          match Option.value (content_length req) ~default:0 with
          | len when len < 0 -> Malformed "negative content-length"
          | len when len > max_body -> Too_large
          | len ->
              if String.length raw - stop < len then Incomplete
              else Complete (req, String.sub raw stop len)))

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    ?(extra_headers = []) body =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: \
     close\r\n\r\n%s"
    status (status_reason status) content_type (String.length body)
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) extra_headers))
    body

let method_not_allowed ~allow =
  response ~status:405
    ~extra_headers:[ ("Allow", String.concat ", " allow) ]
    (Printf.sprintf "method not allowed; allowed: %s\n"
       (String.concat ", " allow))

let stream_header ?(content_type = "application/jsonl") () =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\nContent-Type: %s\r\nConnection: close\r\n\r\n"
    content_type

let parse_response raw =
  match header_end raw with
  | None -> Error "incomplete response (no blank line)"
  | Some stop -> (
      let head = String.sub raw 0 stop in
      let body = String.sub raw stop (String.length raw - stop) in
      match String.split_on_char '\n' head with
      | [] -> Error "empty response"
      | status_line :: rest -> (
          let status_line = strip_cr status_line in
          match
            String.split_on_char ' ' status_line
            |> List.filter (fun s -> s <> "")
          with
          | version :: code :: _
            when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
            -> (
              match int_of_string_opt code with
              | Some c -> Ok (c, parse_headers rest, body)
              | None -> Error ("bad status code: " ^ status_line))
          | _ -> Error ("bad status line: " ^ status_line)))
