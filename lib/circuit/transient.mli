(** SPICE-style transient analysis: DC operating point followed by
    implicit time stepping. The one-time baseline the paper compares
    against.

    An optional {!Resilience.Budget.t} bounds the whole analysis (DC
    solve plus every time-step Newton); on exhaustion the trace is
    truncated at the last completed step instead of hanging. *)

type result = {
  trace : Numeric.Integrator.trace;
  dc_iterations : int;
}

val run :
  ?method_:Numeric.Integrator.method_ ->
  ?newton_options:Numeric.Newton.options ->
  ?budget:Resilience.Budget.t ->
  ?x0:Linalg.Vec.t ->
  mna:Mna.t ->
  t_stop:float ->
  steps:int ->
  unit ->
  result
(** Fixed-step transient from [t = 0] to [t_stop]. When [x0] is absent
    the DC operating point is computed first. *)

val run_adaptive :
  ?method_:Numeric.Integrator.method_ ->
  ?newton_options:Numeric.Newton.options ->
  ?budget:Resilience.Budget.t ->
  ?rel_tol:float ->
  ?x0:Linalg.Vec.t ->
  mna:Mna.t ->
  t_stop:float ->
  unit ->
  result

val node_waveform : Mna.t -> result -> string -> float array
(** Time series of a node voltage. *)

val differential_waveform : Mna.t -> result -> string -> string -> float array
