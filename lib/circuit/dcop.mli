(** DC operating point: solves [f(x) = b(0)] (charge terms quiescent)
    with Newton, falling back to gmin stepping and then source stepping
    — the standard SPICE convergence ladder, and the circuit-level
    incarnation of the paper's homotopy/continuation remark.

    The ladder is expressed through {!Resilience.Ladder}, so DC solves
    share budget enforcement and structured reporting with the MPDE and
    steady-state engines. *)

type report = {
  x : Linalg.Vec.t;
  converged : bool;
  strategy : [ `Newton | `Gmin_stepping | `Source_stepping ];
  newton_iterations : int;
  resilience : Resilience.Report.t;  (** structured per-stage outcome *)
}

val solve :
  ?newton_options:Numeric.Newton.options ->
  ?budget:Resilience.Budget.t ->
  ?x0:Linalg.Vec.t ->
  Mna.t ->
  report
(** [budget] bounds the whole ladder climb (all strategies combined);
    on exhaustion the best iterate so far is returned with
    [resilience.outcome = Exhausted _]. *)

val solve_exn :
  ?newton_options:Numeric.Newton.options ->
  ?budget:Resilience.Budget.t ->
  ?x0:Linalg.Vec.t ->
  Mna.t ->
  Linalg.Vec.t
(** @raise Failure when no strategy converges. *)
