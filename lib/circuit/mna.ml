type t = {
  netlist : Netlist.t;
  size : int;
  nodes : int;
  branches : (string * int) list;  (* device name -> unknown index *)
  gmin : float;
}

let build ?(gmin = 1e-12) netlist =
  let nodes = Netlist.num_nodes netlist in
  let next = ref nodes in
  let branches =
    List.filter_map
      (fun d ->
        if Device.needs_branch_current d then begin
          let k = !next in
          incr next;
          Some (Device.name d, k)
        end
        else None)
      (Netlist.devices netlist)
  in
  { netlist; size = !next; nodes; branches; gmin }

let size m = m.size
let num_nodes m = m.nodes
let netlist m = m.netlist

let branch_index m name = List.assoc name m.branches

let node_index m s =
  match Netlist.find_node m.netlist s with
  | Some 0 | None -> raise Not_found
  | Some k -> k - 1

let unknown_names m =
  Array.init m.size (fun i ->
      if i < m.nodes then Netlist.node_name m.netlist (i + 1)
      else begin
        let name, _ =
          List.find (fun (_, k) -> k = i) m.branches
        in
        Printf.sprintf "i(%s)" name
      end)

let voltage m x s =
  match Netlist.find_node m.netlist s with
  | Some 0 -> 0.0
  | Some k -> x.(k - 1)
  | None -> invalid_arg (Printf.sprintf "Mna.voltage: unknown node %S" s)

let differential_voltage m x a b = voltage m x a -. voltage m x b

(* Node k's voltage lives at index k-1; ground contributes 0 and absorbs
   stamps silently. *)
let v_of x n = if n = 0 then 0.0 else x.(n - 1)
let add_node vec n value = if n > 0 then vec.(n - 1) <- vec.(n - 1) +. value

let add_jac coo r c value =
  if r > 0 && c > 0 then Sparse.Coo.add coo (r - 1) (c - 1) value

(* Stamp helpers for branch rows (already 0-based absolute indices). *)
let add_row vec r value = vec.(r) <- vec.(r) +. value

let eval_f_into m x f =
  Array.fill f 0 m.size 0.0;
  (* gmin loading on node rows *)
  if m.gmin > 0.0 then
    for k = 0 to m.nodes - 1 do
      f.(k) <- f.(k) +. (m.gmin *. x.(k))
    done;
  List.iter
    (fun d ->
      match d with
      | Device.Resistor { n_plus; n_minus; resistance; _ } ->
          let i = (v_of x n_plus -. v_of x n_minus) /. resistance in
          add_node f n_plus i;
          add_node f n_minus (-.i)
      | Device.Capacitor _ -> ()
      | Device.Inductor { name; n_plus; n_minus; _ } ->
          let k = branch_index m name in
          let il = x.(k) in
          add_node f n_plus il;
          add_node f n_minus (-.il);
          add_row f k (v_of x n_plus -. v_of x n_minus)
      | Device.Voltage_source { name; n_plus; n_minus; _ } ->
          let k = branch_index m name in
          let i = x.(k) in
          add_node f n_plus i;
          add_node f n_minus (-.i);
          add_row f k (v_of x n_plus -. v_of x n_minus)
      | Device.Current_source _ -> ()
      | Device.Diode { anode; cathode; params; _ } ->
          let v = v_of x anode -. v_of x cathode in
          let i = Diode.current params v in
          add_node f anode i;
          add_node f cathode (-.i)
      | Device.Mosfet { drain; gate; source; params; _ } ->
          let vgs = v_of x gate -. v_of x source in
          let vds = v_of x drain -. v_of x source in
          let op = Mosfet.evaluate params ~vgs ~vds in
          add_node f drain op.Mosfet.ids;
          add_node f source (-.op.Mosfet.ids)
      | Device.Bjt { collector; base; emitter; params; _ } ->
          let vbe = v_of x base -. v_of x emitter in
          let vbc = v_of x base -. v_of x collector in
          let op = Bjt.evaluate params ~vbe ~vbc in
          add_node f collector op.Bjt.ic;
          add_node f base op.Bjt.ib;
          add_node f emitter op.Bjt.ie
      | Device.Vccs { out_plus; out_minus; in_plus; in_minus; gm; _ } ->
          let i = gm *. (v_of x in_plus -. v_of x in_minus) in
          add_node f out_plus i;
          add_node f out_minus (-.i)
      | Device.Multiplier { out_plus; out_minus; a_plus; a_minus; b_plus; b_minus; gain; _ }
        ->
          let va = v_of x a_plus -. v_of x a_minus in
          let vb = v_of x b_plus -. v_of x b_minus in
          let i = gain *. va *. vb in
          add_node f out_plus i;
          add_node f out_minus (-.i))
    (Netlist.devices m.netlist)

let eval_f m x =
  let f = Array.make m.size 0.0 in
  eval_f_into m x f;
  f

let eval_q_into m x q =
  Array.fill q 0 m.size 0.0;
  List.iter
    (fun d ->
      match d with
      | Device.Capacitor { n_plus; n_minus; capacitance; _ } ->
          let charge = capacitance *. (v_of x n_plus -. v_of x n_minus) in
          add_node q n_plus charge;
          add_node q n_minus (-.charge)
      | Device.Inductor { name; inductance; _ } ->
          let k = branch_index m name in
          add_row q k (-.(inductance *. x.(k)))
      | Device.Diode { anode; cathode; params; _ } ->
          let v = v_of x anode -. v_of x cathode in
          let charge = Diode.charge params v in
          add_node q anode charge;
          add_node q cathode (-.charge)
      | Device.Mosfet { drain; gate; source; params; _ } ->
          let qgs = params.Mosfet.cgs *. (v_of x gate -. v_of x source) in
          let qgd = params.Mosfet.cgd *. (v_of x gate -. v_of x drain) in
          add_node q gate (qgs +. qgd);
          add_node q source (-.qgs);
          add_node q drain (-.qgd)
      | Device.Bjt { collector; base; emitter; params; _ } ->
          let qbe = params.Bjt.cbe *. (v_of x base -. v_of x emitter) in
          let qbc = params.Bjt.cbc *. (v_of x base -. v_of x collector) in
          add_node q base (qbe +. qbc);
          add_node q emitter (-.qbe);
          add_node q collector (-.qbc)
      | Device.Resistor _ | Device.Voltage_source _ | Device.Current_source _
      | Device.Vccs _ | Device.Multiplier _ ->
          ())
    (Netlist.devices m.netlist)

let eval_q m x =
  let q = Array.make m.size 0.0 in
  eval_q_into m x q;
  q

(* Stamp a two-terminal conductance/capacitance between nodes p and n. *)
let stamp_pair coo p n value =
  add_jac coo p p value;
  add_jac coo p n (-.value);
  add_jac coo n p (-.value);
  add_jac coo n n value

let stamp_jacobians m x g_coo c_coo =
  if m.gmin > 0.0 then
    for k = 0 to m.nodes - 1 do
      Sparse.Coo.add g_coo k k m.gmin
    done;
  List.iter
    (fun d ->
      match d with
      | Device.Resistor { n_plus; n_minus; resistance; _ } ->
          stamp_pair g_coo n_plus n_minus (1.0 /. resistance)
      | Device.Capacitor { n_plus; n_minus; capacitance; _ } ->
          stamp_pair c_coo n_plus n_minus capacitance
      | Device.Inductor { name; n_plus; n_minus; inductance; _ } ->
          let k = branch_index m name in
          (* KCL rows get ±i_l; branch row is v+ − v− with flux −L·i. *)
          if n_plus > 0 then Sparse.Coo.add g_coo (n_plus - 1) k 1.0;
          if n_minus > 0 then Sparse.Coo.add g_coo (n_minus - 1) k (-1.0);
          if n_plus > 0 then Sparse.Coo.add g_coo k (n_plus - 1) 1.0;
          if n_minus > 0 then Sparse.Coo.add g_coo k (n_minus - 1) (-1.0);
          Sparse.Coo.add c_coo k k (-.inductance)
      | Device.Voltage_source { name; n_plus; n_minus; _ } ->
          let k = branch_index m name in
          if n_plus > 0 then Sparse.Coo.add g_coo (n_plus - 1) k 1.0;
          if n_minus > 0 then Sparse.Coo.add g_coo (n_minus - 1) k (-1.0);
          if n_plus > 0 then Sparse.Coo.add g_coo k (n_plus - 1) 1.0;
          if n_minus > 0 then Sparse.Coo.add g_coo k (n_minus - 1) (-1.0)
      | Device.Current_source _ -> ()
      | Device.Diode { anode; cathode; params; _ } ->
          let v = v_of x anode -. v_of x cathode in
          stamp_pair g_coo anode cathode (Diode.conductance params v);
          if params.Diode.junction_cap > 0.0 then
            stamp_pair c_coo anode cathode params.Diode.junction_cap
      | Device.Mosfet { drain; gate; source; params; _ } ->
          let vgs = v_of x gate -. v_of x source in
          let vds = v_of x drain -. v_of x source in
          let op = Mosfet.evaluate params ~vgs ~vds in
          let gm = op.Mosfet.gm and gds = op.Mosfet.gds in
          (* ids rows: +drain, −source; columns d, g, s. *)
          add_jac g_coo drain drain gds;
          add_jac g_coo drain gate gm;
          add_jac g_coo drain source (-.(gm +. gds));
          add_jac g_coo source drain (-.gds);
          add_jac g_coo source gate (-.gm);
          add_jac g_coo source source (gm +. gds);
          stamp_pair c_coo gate source params.Mosfet.cgs;
          stamp_pair c_coo gate drain params.Mosfet.cgd
      | Device.Bjt { collector; base; emitter; params; _ } ->
          let vbe = v_of x base -. v_of x emitter in
          let vbc = v_of x base -. v_of x collector in
          let op = Bjt.evaluate params ~vbe ~vbc in
          (* Row-wise chain rule with vbe = vb − ve, vbc = vb − vc. *)
          let stamp_row row d_vbe d_vbc =
            add_jac g_coo row base (d_vbe +. d_vbc);
            add_jac g_coo row emitter (-.d_vbe);
            add_jac g_coo row collector (-.d_vbc)
          in
          stamp_row collector op.Bjt.d_ic_d_vbe op.Bjt.d_ic_d_vbc;
          stamp_row base op.Bjt.d_ib_d_vbe op.Bjt.d_ib_d_vbc;
          stamp_row emitter
            (-.(op.Bjt.d_ic_d_vbe +. op.Bjt.d_ib_d_vbe))
            (-.(op.Bjt.d_ic_d_vbc +. op.Bjt.d_ib_d_vbc));
          stamp_pair c_coo base emitter params.Bjt.cbe;
          stamp_pair c_coo base collector params.Bjt.cbc
      | Device.Vccs { out_plus; out_minus; in_plus; in_minus; gm; _ } ->
          add_jac g_coo out_plus in_plus gm;
          add_jac g_coo out_plus in_minus (-.gm);
          add_jac g_coo out_minus in_plus (-.gm);
          add_jac g_coo out_minus in_minus gm
      | Device.Multiplier { out_plus; out_minus; a_plus; a_minus; b_plus; b_minus; gain; _ }
        ->
          let va = v_of x a_plus -. v_of x a_minus in
          let vb = v_of x b_plus -. v_of x b_minus in
          let stamp_row sign row =
            add_jac g_coo row a_plus (sign *. gain *. vb);
            add_jac g_coo row a_minus (-.(sign *. gain *. vb));
            add_jac g_coo row b_plus (sign *. gain *. va);
            add_jac g_coo row b_minus (-.(sign *. gain *. va))
          in
          stamp_row 1.0 out_plus;
          stamp_row (-1.0) out_minus)
    (Netlist.devices m.netlist)

let jacobians m x =
  let g_coo = Sparse.Coo.create ~capacity:(8 * m.size) m.size m.size in
  let c_coo = Sparse.Coo.create ~capacity:(4 * m.size) m.size m.size in
  stamp_jacobians m x g_coo c_coo;
  (Sparse.Csr.of_coo g_coo, Sparse.Csr.of_coo c_coo)

(* Numeric-refresh path for the symbolic/numeric assembly split: one
   pair of COO builders is kept per refresher and re-stamped into the
   frozen CSR patterns. The stamp stream order is identical to
   [jacobians]'s, so refreshed values are bitwise equal to a rebuild.
   Pattern drift (a device stamp that is exactly 0.0 at one iterate is
   skipped by [Coo.add]) is reported as [false] for the caller to
   rebuild from scratch. *)
let jacobian_refresher m () =
  let g_coo = Sparse.Coo.create ~capacity:(8 * m.size) m.size m.size in
  let c_coo = Sparse.Coo.create ~capacity:(4 * m.size) m.size m.size in
  fun x ~g ~c ->
    Sparse.Coo.clear g_coo;
    Sparse.Coo.clear c_coo;
    stamp_jacobians m x g_coo c_coo;
    let ok_g = Sparse.Csr.refresh_from_coo g g_coo in
    let ok_c = Sparse.Csr.refresh_from_coo c c_coo in
    ok_g && ok_c

let source_with m ~phase_of =
  let b = Array.make m.size 0.0 in
  List.iter
    (fun d ->
      match d with
      | Device.Voltage_source { name; waveform; _ } ->
          let k = branch_index m name in
          add_row b k (Waveform.eval_with ~phase_of waveform)
      | Device.Current_source { n_plus; n_minus; waveform; _ } ->
          (* Current flows n_plus → n_minus through the source, so it
             leaves the circuit at n_plus: b(n+) = −I, b(n−) = +I. *)
          let i = Waveform.eval_with ~phase_of waveform in
          add_node b n_plus (-.i);
          add_node b n_minus i
      | Device.Resistor _ | Device.Capacitor _ | Device.Inductor _ | Device.Diode _
      | Device.Mosfet _ | Device.Bjt _ | Device.Vccs _ | Device.Multiplier _ ->
          ())
    (Netlist.devices m.netlist);
  b

let source_frequencies m =
  let add acc f = if List.mem f acc then acc else f :: acc in
  List.fold_left
    (fun acc d ->
      match d with
      | Device.Voltage_source { waveform; _ } | Device.Current_source { waveform; _ } ->
          List.fold_left add acc (Waveform.frequencies waveform)
      | Device.Resistor _ | Device.Capacitor _ | Device.Inductor _ | Device.Diode _
      | Device.Mosfet _ | Device.Bjt _ | Device.Vccs _ | Device.Multiplier _ ->
          acc)
    [] (Netlist.devices m.netlist)

let dae m =
  {
    Numeric.Dae.size = m.size;
    eval_f = eval_f m;
    eval_q = eval_q m;
    jacobians = jacobians m;
    source = (fun t -> source_with m ~phase_of:(fun freq -> freq *. t));
    fast =
      Some
        {
          Numeric.Dae.eval_f_into = eval_f_into m;
          eval_q_into = eval_q_into m;
          jacobian_refresher = jacobian_refresher m;
        };
  }
