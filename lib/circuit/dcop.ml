module Newton = Numeric.Newton
module Budget = Resilience.Budget
module Ladder = Resilience.Ladder
module Report = Resilience.Report

type report = {
  x : Linalg.Vec.t;
  converged : bool;
  strategy : [ `Newton | `Gmin_stepping | `Source_stepping ];
  newton_iterations : int;
  resilience : Report.t;
}

(* DC problem at source scaling [source_scale] with extra gmin loading
   [extra_gmin] on the node rows. *)
let dc_problem mna ~source_scale ~extra_gmin =
  let nodes = Mna.num_nodes mna in
  let b0 = Mna.source_with mna ~phase_of:(fun _ -> 0.0) in
  let residual x =
    let f = (Mna.dae mna).Numeric.Dae.eval_f x in
    Array.init (Mna.size mna) (fun i ->
        let load = if i < nodes then extra_gmin *. x.(i) else 0.0 in
        f.(i) +. load -. (source_scale *. b0.(i)))
  in
  let solve_linearized x r =
    let g, _ = (Mna.dae mna).Numeric.Dae.jacobians x in
    let n = Mna.size mna in
    let coo = Sparse.Coo.create ~capacity:(Sparse.Csr.nnz g + n) n n in
    for i = 0 to n - 1 do
      Sparse.Csr.iter_row g i (fun j v -> Sparse.Coo.add coo i j v);
      if i < nodes then Sparse.Coo.add coo i i extra_gmin
    done;
    Sparse.Splu.solve (Sparse.Splu.factor (Sparse.Csr.of_coo coo)) r
  in
  { Newton.residual; solve_linearized }

(* The classic SPICE convergence ladder — plain Newton, then gmin
   stepping, then source stepping — expressed as Resilience.Ladder
   stages so it shares machinery (budgets, structured reports, skip
   logic) with the MPDE/steady engines. *)
let solve ?(newton_options = Newton.default_options) ?budget ?x0 mna =
  let t_start = Telemetry.Clock.wall () in
  let tele_mark = Telemetry.mark () in
  let x0 = match x0 with Some x -> x | None -> Array.make (Mna.size mna) 0.0 in
  let newton_options =
    match (newton_options.Newton.budget, budget) with
    | None, Some _ -> { newton_options with Newton.budget }
    | _ -> newton_options
  in
  let total_iters = ref 0 in
  let trajectory = ref [] in
  let stage_iters = ref [] in
  let last_x = ref x0 in
  let last_rnorm = ref infinity in
  let on_iteration _ _ rnorm = trajectory := rnorm :: !trajectory in
  let record_stage name before = stage_iters := (name, !total_iters - before) :: !stage_iters in
  let attempt ~source_scale ~extra_gmin guess =
    let x, stats =
      Newton.solve ~options:newton_options ~on_iteration
        (dc_problem mna ~source_scale ~extra_gmin)
        guess
    in
    total_iters := !total_iters + stats.Newton.iterations;
    last_x := x;
    last_rnorm := stats.Newton.residual_norm;
    (match stats.Newton.outcome with
    | Newton.Exhausted e -> raise (Budget.Exhausted e)
    | _ -> ());
    if Newton.converged stats then Some x else None
  in
  let stage name applies body =
    {
      Ladder.name;
      applies;
      attempt =
        (fun () ->
          let before = !total_iters in
          let r = Fun.protect ~finally:(fun () -> record_stage name before) body in
          match r with
          | Some x -> Ok x
          | None -> Error (Ladder.Nonlinear, name ^ " did not converge"));
    }
  in
  let stages =
    [
      stage "newton" Ladder.always (fun () ->
          attempt ~source_scale:1.0 ~extra_gmin:0.0 x0);
      stage "gmin-stepping" Ladder.on_nonlinear (fun () ->
          (* Decade ladder from strong loading down to none. *)
          let rec gmin_ladder gmin guess =
            if gmin < 1e-13 then attempt ~source_scale:1.0 ~extra_gmin:0.0 guess
            else
              match attempt ~source_scale:1.0 ~extra_gmin:gmin guess with
              | Some x -> gmin_ladder (gmin /. 10.0) x
              | None -> None
          in
          gmin_ladder 1e-2 x0);
      stage "source-stepping" Ladder.on_nonlinear (fun () ->
          let problem_at lambda = dc_problem mna ~source_scale:lambda ~extra_gmin:0.0 in
          let x, stats =
            Numeric.Continuation.trace ~newton_options ?budget ~problem_at ~x0 ()
          in
          total_iters := !total_iters + stats.Numeric.Continuation.newton_iterations;
          last_x := x;
          if stats.Numeric.Continuation.converged then Some x else None);
    ]
  in
  let run = Telemetry.span "dcop.solve" (fun () -> Ladder.run ?budget stages) in
  let strategy =
    match run.Ladder.strategy with
    | Some "newton" -> `Newton
    | Some "gmin-stepping" -> `Gmin_stepping
    | _ -> `Source_stepping
  in
  let x = match run.Ladder.value with Some x -> x | None -> !last_x in
  let iterations_of name =
    match List.assoc_opt name !stage_iters with Some n -> n | None -> 0
  in
  let telemetry =
    Option.map Telemetry.Summary.of_snapshot (Telemetry.snapshot ~since:tele_mark ())
  in
  let resilience =
    Report.of_ladder ~iterations_of ?telemetry
      ~residual_trajectory:(Array.of_list (List.rev !trajectory))
      ~residual_norm:!last_rnorm ~newton_iterations:!total_iters ~linear_iterations:0
      ~wall_seconds:(Telemetry.Clock.wall () -. t_start)
      run
  in
  {
    x;
    converged = run.Ladder.value <> None;
    strategy;
    newton_iterations = !total_iters;
    resilience;
  }

let solve_exn ?newton_options ?budget ?x0 mna =
  let r = solve ?newton_options ?budget ?x0 mna in
  if r.converged then r.x else failwith "Dcop.solve_exn: no DC operating point found"
