type result = {
  trace : Numeric.Integrator.trace;
  dc_iterations : int;
}

(* Fold a wall-clock/iteration budget into the Newton options that
   every implicit step uses; an explicit budget in [newton_options]
   wins. *)
let merge_budget newton_options budget =
  match (newton_options, budget) with
  | _, None -> newton_options
  | Some o, Some _ when o.Numeric.Newton.budget <> None -> newton_options
  | Some o, Some _ -> Some { o with Numeric.Newton.budget }
  | None, Some _ -> Some { Numeric.Newton.default_options with budget }

let initial_state ?x0 ?newton_options ?budget mna =
  match x0 with
  | Some x -> (x, 0)
  | None ->
      let r = Dcop.solve ?newton_options ?budget mna in
      if not r.Dcop.converged then failwith "Transient: DC operating point failed";
      (r.Dcop.x, r.Dcop.newton_iterations)

let run ?method_ ?newton_options ?budget ?x0 ~mna ~t_stop ~steps () =
  let x0, dc_iterations = initial_state ?x0 ?newton_options ?budget mna in
  let newton_options = merge_budget newton_options budget in
  let trace =
    Telemetry.span "transient.run" @@ fun () ->
    Numeric.Integrator.transient ?newton_options ?method_ ~dae:(Mna.dae mna) ~x0 ~t0:0.0
      ~t1:t_stop ~steps ()
  in
  { trace; dc_iterations }

let run_adaptive ?method_ ?newton_options ?budget ?rel_tol ?x0 ~mna ~t_stop () =
  let x0, dc_iterations = initial_state ?x0 ?newton_options ?budget mna in
  let newton_options = merge_budget newton_options budget in
  let trace =
    Telemetry.span "transient.run" @@ fun () ->
    Numeric.Integrator.transient_adaptive ?newton_options ?method_ ?rel_tol
      ~dae:(Mna.dae mna) ~x0 ~t0:0.0 ~t1:t_stop ()
  in
  { trace; dc_iterations }

let node_waveform mna result node =
  Array.map (fun x -> Mna.voltage mna x node) result.trace.Numeric.Integrator.states

let differential_waveform mna result node_a node_b =
  Array.map
    (fun x -> Mna.differential_voltage mna x node_a node_b)
    result.trace.Numeric.Integrator.states
