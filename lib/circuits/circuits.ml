module N = Circuit.Netlist
module W = Circuit.Waveform

type built = { netlist : Circuit.Netlist.t; mna : Circuit.Mna.t }

let finish netlist =
  Telemetry.span "circuits.build" @@ fun () ->
  { netlist; mna = Circuit.Mna.build netlist }

let rc_lowpass ?(r = 1e3) ?(c = 100e-12) ~drive () =
  let nl = N.create () in
  N.vsource nl "vin" "in" "0" drive;
  N.resistor nl "r1" "in" "out" r;
  N.capacitor nl "c1" "out" "0" c;
  finish nl

let rlc_series ?(r = 50.0) ?(l = 1e-6) ?(c = 1e-9) ~drive () =
  let nl = N.create () in
  N.vsource nl "vin" "in" "0" drive;
  N.resistor nl "r1" "in" "mid" r;
  N.inductor nl "l1" "mid" "out" l;
  N.capacitor nl "c1" "out" "0" c;
  finish nl

let diode_rectifier ?(load_r = 10e3) ?(load_c = 1e-6) ~drive () =
  let nl = N.create () in
  N.vsource nl "vin" "in" "0" drive;
  N.diode nl "d1" "in" "out" Circuit.Diode.default;
  N.resistor nl "rl" "out" "0" load_r;
  N.capacitor nl "cl" "out" "0" load_c;
  finish nl

let bridge_rectifier ?(load_r = 1e3) ?(load_c = 10e-9) ~drive () =
  let nl = N.create () in
  N.vsource nl "vin" "in" "0" drive;
  N.diode nl "d1" "in" "p" Circuit.Diode.default;
  N.diode nl "d2" "n" "in" Circuit.Diode.default;
  N.diode nl "d3" "0" "p" Circuit.Diode.default;
  N.diode nl "d4" "n" "0" Circuit.Diode.default;
  N.resistor nl "rl" "p" "n" load_r;
  N.capacitor nl "cl" "p" "n" load_c;
  finish nl

let envelope_detector ?(load_r = 10e3) ?load_c ~f1 ~f2 ~amplitude () =
  let fd = Float.abs (f2 -. f1) in
  (* RC between the carrier and the beat: pass fd, reject f1. *)
  let load_c =
    match load_c with
    | Some c -> c
    | None -> 1.0 /. (2.0 *. Float.pi *. load_r *. sqrt (f1 *. fd))
  in
  let drive =
    W.sum
      (W.sine ~amplitude ~freq:f1 ())
      (W.sine ~amplitude ~freq:f2 ())
  in
  diode_rectifier ~load_r ~load_c ~drive ()

let ideal_mixer ?(gain = 1e-3) ?(load_r = 1e3) ?load_c ~lo ~rf () =
  let nl = N.create () in
  N.vsource nl "vlo" "lo" "0" lo;
  N.vsource nl "vrf" "rf" "0" rf;
  (* i(out → gnd) = gain · v_lo · v_rf, so v_out = gain·R · v_lo·v_rf. *)
  N.multiplier nl "mix" ~out_plus:"0" ~out_minus:"out" ~a_plus:"lo" ~a_minus:"0"
    ~b_plus:"rf" ~b_minus:"0" gain;
  N.resistor nl "rl" "out" "0" load_r;
  let load_c =
    match load_c with
    | Some c -> c
    | None ->
        (* Cut off a decade below the lowest LO frequency. *)
        let f_min =
          List.fold_left Float.min infinity (W.frequencies lo @ W.frequencies rf)
        in
        1.0 /. (2.0 *. Float.pi *. load_r *. (f_min /. 10.0))
  in
  N.capacitor nl "cl" "out" "0" load_c;
  finish nl

type mixer_nodes = {
  out_plus : string;
  out_minus : string;
  source_node : string;
  lo_plus : string;
  lo_minus : string;
}

let balanced_mixer_nodes =
  { out_plus = "dp"; out_minus = "dm"; source_node = "s"; lo_plus = "lop"; lo_minus = "lom" }

(* Paper §3 / [11]: M1-M2 (gates driven by antiphase LO halves, sources
   grounded, drains tied at node s) double the LO; M3-M4 (differential
   pair with source node s, gates carrying the RF) mix against 2·f_lo;
   resistive loads to VDD develop the differential output. *)
let balanced_mixer ?(vdd = 3.0) ?(load_r = 2e3) ?(load_c = 8e-12) ?(lo_bias = 0.9)
    ?(lo_amplitude = 0.45) ?(rf_bias = 1.8) ?(rf_amplitude = 0.1) ~f_lo ~rf_signal () =
  let nl = N.create () in
  N.vsource nl "vdd" "vdd" "0" (W.dc vdd);
  N.vsource nl "vlop" "lop" "0" (W.sine ~offset:lo_bias ~amplitude:lo_amplitude ~freq:f_lo ());
  N.vsource nl "vlom" "lom" "0"
    (W.sine ~offset:lo_bias ~amplitude:(-.lo_amplitude) ~freq:f_lo ());
  N.vsource nl "vrfp" "rfp" "0"
    (W.sum (W.dc rf_bias) (W.scale rf_amplitude rf_signal));
  N.vsource nl "vrfm" "rfm" "0"
    (W.sum (W.dc rf_bias) (W.scale (-.rf_amplitude) rf_signal));
  let doubler_params = { Circuit.Mosfet.default_nmos with kp = 4e-3; cgs = 15e-15; cgd = 4e-15 } in
  let pair_params = { Circuit.Mosfet.default_nmos with kp = 4e-3; cgs = 15e-15; cgd = 4e-15 } in
  N.mosfet nl "m1" ~drain:"s" ~gate:"lop" ~source:"0" doubler_params;
  N.mosfet nl "m2" ~drain:"s" ~gate:"lom" ~source:"0" doubler_params;
  N.mosfet nl "m3" ~drain:"dp" ~gate:"rfp" ~source:"s" pair_params;
  N.mosfet nl "m4" ~drain:"dm" ~gate:"rfm" ~source:"s" pair_params;
  N.resistor nl "rlp" "vdd" "dp" load_r;
  N.resistor nl "rlm" "vdd" "dm" load_r;
  N.capacitor nl "clp" "dp" "0" load_c;
  N.capacitor nl "clm" "dm" "0" load_c;
  finish nl

let unbalanced_mixer ?(vdd = 3.0) ?(load_r = 2e3) ?(load_c = 8e-12) ?(lo_bias = 0.7)
    ?(lo_amplitude = 0.4) ~f_lo ~rf_signal ~rf_amplitude () =
  let nl = N.create () in
  N.vsource nl "vdd" "vdd" "0" (W.dc vdd);
  let gate_drive =
    W.sum
      (W.sine ~offset:lo_bias ~amplitude:lo_amplitude ~freq:f_lo ())
      (W.scale rf_amplitude rf_signal)
  in
  N.vsource nl "vg" "g" "0" gate_drive;
  N.mosfet nl "m1" ~drain:"out" ~gate:"g" ~source:"0"
    { Circuit.Mosfet.default_nmos with kp = 4e-3 };
  N.resistor nl "rl" "vdd" "out" load_r;
  N.capacitor nl "cl" "out" "0" load_c;
  finish nl

let gilbert_mixer_nodes =
  { out_plus = "op"; out_minus = "om"; source_node = "e"; lo_plus = "lop"; lo_minus = "lom" }

let gilbert_mixer ?(vcc = 5.0) ?(load_r = 3e3) ?(load_c = 10e-12) ?(lo_bias = 2.8)
    ?(lo_amplitude = 0.15) ?(rf_bias = 1.4) ?(tail_r = 2e3) ~f_lo ~rf_signal
    ~rf_amplitude () =
  let nl = N.create () in
  N.vsource nl "vcc" "vcc" "0" (W.dc vcc);
  N.vsource nl "vlop" "lop" "0" (W.sine ~offset:lo_bias ~amplitude:lo_amplitude ~freq:f_lo ());
  N.vsource nl "vlom" "lom" "0"
    (W.sine ~offset:lo_bias ~amplitude:(-.lo_amplitude) ~freq:f_lo ());
  N.vsource nl "vrfp" "rfp" "0" (W.sum (W.dc rf_bias) (W.scale rf_amplitude rf_signal));
  N.vsource nl "vrfm" "rfm" "0"
    (W.sum (W.dc rf_bias) (W.scale (-.rf_amplitude) rf_signal));
  let q = Circuit.Bjt.default_npn in
  (* lower RF pair with a resistive tail *)
  N.bjt nl "q1" ~collector:"cp" ~base:"rfp" ~emitter:"e" q;
  N.bjt nl "q2" ~collector:"cm" ~base:"rfm" ~emitter:"e" q;
  N.resistor nl "re" "e" "0" tail_r;
  (* upper commutating quad, cross-coupled *)
  N.bjt nl "q3" ~collector:"op" ~base:"lop" ~emitter:"cp" q;
  N.bjt nl "q4" ~collector:"om" ~base:"lom" ~emitter:"cp" q;
  N.bjt nl "q5" ~collector:"om" ~base:"lop" ~emitter:"cm" q;
  N.bjt nl "q6" ~collector:"op" ~base:"lom" ~emitter:"cm" q;
  N.resistor nl "rlp" "vcc" "op" load_r;
  N.resistor nl "rlm" "vcc" "om" load_r;
  N.capacitor nl "clp" "op" "0" load_c;
  N.capacitor nl "clm" "om" "0" load_c;
  finish nl

let paper_rf_bitstream ?bits ~f_lo ~fd () =
  let bits = match bits with Some b -> b | None -> Rf.Prbs.prbs7 6 in
  let nbits = Array.length bits in
  let carrier_freq = (2.0 *. f_lo) +. fd in
  let symbol_freq = float_of_int nbits *. fd in
  ( W.modulated_carrier ~amplitude:1.0 ~carrier_freq ~bits ~symbol_freq (),
    bits )
