(** Canonical, versioned job identity — the cache key of the solve
    service and the resume key of {!Checkpoint}.

    Two requests share a key exactly when they compute the same fixed
    point: same circuit label, engine, tone frequencies and
    discretization/convergence options. Fields that change *how fast*
    a solve converges but not *what* it converges to — the
    {!Options.t.budget} slice and the {!Options.t.initial_surface}
    warm-start seed — are deliberately excluded, so a warm-started
    resubmission still hits the cache entry its cold twin populated.

    The encoding is tagged ["rfss.key/1"]; the tag is mixed into the
    hash first, so any change to the field set or encoding must bump
    the version, invalidating all stored keys at once rather than
    silently aliasing old entries. A regression test pins a literal
    key value to catch accidental drift. *)

val version : string
(** ["rfss.key/1"] *)

val canonical :
  label:string ->
  engine:string ->
  f_fast:float ->
  fd:float ->
  options:Options.t ->
  string
(** Human-readable one-line serialization of the identity fields
    (floats as [%.17g], round-trip exact). For logs and debugging; the
    hash is computed over the typed fields, not over this string. *)

val hash :
  label:string ->
  engine:string ->
  f_fast:float ->
  fd:float ->
  options:Options.t ->
  string
(** 16-hex-digit FNV-1a 64 key of the identity fields. *)

val of_problem : Problem.t -> engine:string -> options:Options.t -> string
(** {!hash} with label and tones taken from the problem; [engine] is
    the {!Backend.kind_name} string. *)

val scheme_name : Mpde.Assemble.scheme -> string

(** {1 Hashing primitives}

    FNV-1a 64 over bytes, shared with {!Checkpoint}'s record digest and
    waveform fingerprint so one implementation serves all three. *)

val fnv_basis : int64

val mix_byte : int64 -> int -> int64

val mix_string : int64 -> string -> int64
(** Mixes every byte, then a [0xFF] terminator so [("ab","c")] and
    [("a","bc")] hash differently. *)

val mix_float : int64 -> float -> int64
(** Mixes the full 8-byte IEEE-754 image, little-endian byte order. *)

val mix_int : int64 -> int -> int64

val hex : int64 -> string
(** [%016Lx] rendering of the accumulated hash. *)
