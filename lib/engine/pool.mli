(** Hand-rolled work-queue executor over OCaml 5 domains — no
    dependencies beyond the stdlib.

    Chunks of jobs are pulled from a shared {!Atomic} index (dynamic
    scheduling: a slow chunk never blocks the queue behind it) and each
    result is written to its own slot of a pre-sized array, so the
    output order is always the input order regardless of which domain
    finished when. [Domain.join] on every worker establishes the
    happens-before edge that makes those slot writes visible to the
    caller.

    Spawned workers enlarge their minor heap before starting (the
    per-domain default is small enough that allocation-heavy solves
    minor-collect constantly, inverting the parallel speedup); the
    calling domain's GC settings are left untouched.

    With [domains = 1] — the serial fallback the sweep uses when
    [Domain.recommended_domain_count () = 1] — no domain is spawned at
    all and the pool degenerates to [Array.map]. *)

val map :
  ?chunk:int ->
  ?assign:[ `Dynamic | `Static ] ->
  domains:int ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map ~domains f items] applies [f] to every item on at most
    [domains] concurrent domains (the calling domain participates as a
    worker, so [domains - 1] are spawned; the count is clamped to
    [1 .. Array.length items]).

    [chunk] is the number of consecutive items claimed per atomic
    fetch; the default [max 1 (n / (domains * 4))] balances claim
    traffic against load-balancing slack. Values [<= 0] select the
    default.

    [assign] picks the scheduling policy. [`Dynamic] (the default) is
    the chunked shared-queue claiming described above. [`Static] gives
    worker [k] exactly the items with index ≡ k (mod domains): no load
    balancing, but the job → worker placement is a pure function of
    the index — the property cross-domain trace merging needs to be
    run-to-run deterministic.

    [f] must not raise: an escaping exception tears down the whole
    pool ([Domain.join] re-raises it). Wrap fallible work in a
    [result] before mapping — {!Sweep} does exactly that. *)

val tune_worker_gc : unit -> unit
(** Enlarge the current domain's minor heap to the pool's worker
    setting (4M words) if it is smaller. [map] applies this to every
    domain it spawns; long-lived worker domains created elsewhere (the
    solve service's job executors) call it once at startup so a solve
    behaves the same wherever it runs. *)

val worker_index : unit -> int
(** Index of the pool worker running on the current domain: [0] for
    the calling domain, [1 .. domains - 1] for spawned workers.
    Meaningful only inside [f] during a {!map}; outside one it reads
    the last value set on this domain (the caller's is [0]). *)
