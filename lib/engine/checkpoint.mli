(** Sweep checkpoint log: one self-describing JSONL record per
    completed job, written atomically, so a killed sweep resumes where
    it died and reproduces the uninterrupted run bitwise.

    Format: each line is one JSON object carrying the job identity
    ([key] — a hash of label, engine, frequencies and discretization
    options), every field the sweep renderers print (so a cached job
    re-renders byte-for-byte, including the waveform fingerprint), the
    resilience report of a successful solve, and a [digest] hash of the
    record itself. Non-finite floats are emitted as the quoted strings
    ["nan"]/["inf"]/["-inf"] to stay inside JSON.

    Durability: {!append} rewrites the whole log to a temp file in the
    same directory and [Sys.rename]s it over the old one — on POSIX an
    atomic replacement, so the log on disk is always a prefix-complete,
    parseable set of records; a crash mid-write loses at most the
    record being added. {!load} drops lines that fail to parse or whose
    digest does not match, so even a torn write (non-POSIX rename, NFS)
    degrades to re-running one job rather than poisoning the resume. *)

type record = {
  key : string;  (** 16-hex job identity *)
  label : string;
  engine : string;  (** {!Backend.kind_name} *)
  f_fast : float;
  fd : float;
  status : string;  (** ["ok"], ["degraded"] or ["error"] *)
  converged : bool;
  newton : int;
  residual : float;
  h1 : float;
  thd : float;
  waveform_hash : string;
  attempts : int;
  wall_seconds : float;
  message : string;  (** failure message; [""] on success *)
  stage : string option;  (** ladder stage of an escaped exception *)
  backtrace : string option;  (** raw exception backtrace, when recorded *)
  report : string option;  (** resilience report, raw JSON *)
}

val of_outcome : Sweep.outcome -> record
(** Project a completed sweep job onto its checkpoint record — the
    single source both the live renderers and a resumed run print from,
    which is what makes resume output bitwise identical. [h1]/[thd]
    come from the result metrics ([h1_amplitude]/[baseband_h1] and
    [thd]); error outcomes carry NaN metrics and an empty waveform
    hash. *)

val job_key :
  label:string ->
  engine:string ->
  f_fast:float ->
  fd:float ->
  options:Options.t ->
  string
(** Identity hash of a sweep job: FNV-1a over the label, engine name,
    the raw bits of both frequencies, and the discretization options
    that change the numerics (grid sizes, steps, points, harmonics,
    tolerance). Two jobs with the same key produce bitwise-identical
    results. *)

val waveform_hash : Backend.Result.waveform -> string
(** FNV-1a over the raw float bits of times and values — the same
    fingerprint the sweep CSV prints. *)

val digest : record -> string
(** Hash of the record's serialized content (excluding any previous
    digest), stored on write and checked on load. *)

type t
(** An open checkpoint log (in-memory records + path). Internally
    mutexed: {!append} may be called concurrently from sweep worker
    domains. *)

val create : string -> t
(** Open [path], loading any valid records already present (resume). *)

val records : t -> record list
(** Current records, in file order. *)

val find : t -> key:string -> record option

val append : t -> record -> unit
(** Add one record and atomically rewrite the log. A record whose key
    is already present replaces the old one. *)

val load : string -> record list
(** Parse a log without opening it for writing. Unreadable files are
    an empty list; unparseable or digest-mismatched lines are
    skipped. *)
