type t = {
  tol : float;
  max_newton : int;
  warm_start : bool;
  budget : Resilience.Budget.t option;
  steps_per_period : int;
  segments : int;
  steps_per_segment : int;
  harmonics : int;
  points : int;
  n1 : int;
  n2 : int;
  scheme : Mpde.Assemble.scheme;
  linear_solver : Mpde.Solver.linear_solver;
  allow_continuation : bool;
  condition_estimate : bool;
  initial_surface : Linalg.Vec.t option;
  krylov_recycle : bool;
}

let default =
  {
    tol = 1e-8;
    max_newton = 50;
    warm_start = true;
    budget = None;
    steps_per_period = 256;
    segments = 8;
    steps_per_segment = 50;
    harmonics = 8;
    points = 64;
    n1 = 32;
    n2 = 24;
    scheme = Mpde.Assemble.Backward;
    linear_solver = Mpde.Solver.default_gmres;
    allow_continuation = true;
    condition_estimate = false;
    initial_surface = None;
    krylov_recycle = true;
  }

let with_budget budget o = { o with budget }

(* Watchdog demotion for a repeatedly failing job: roughly quarter the
   work (half per axis) and loosen the target two decades, floored so a
   degraded grid still resolves the coarse shape of the waveform. *)
let degrade o =
  let halve ~floor v = max floor (v / 2) in
  {
    o with
    tol = Float.min 1e-3 (o.tol *. 100.0);
    n1 = halve ~floor:8 o.n1;
    n2 = halve ~floor:6 o.n2;
    steps_per_period = halve ~floor:64 o.steps_per_period;
    steps_per_segment = halve ~floor:16 o.steps_per_segment;
    harmonics = halve ~floor:4 o.harmonics;
    points = halve ~floor:16 o.points;
  }

let to_mpde o =
  Mpde.Solver.make_options ~max_newton:o.max_newton ~tol:o.tol ~scheme:o.scheme
    ~linear_solver:o.linear_solver ~allow_continuation:o.allow_continuation
    ?budget:o.budget ~krylov_recycle:o.krylov_recycle ()
