(* Worker domains get a roomy minor heap before touching any work: a
   steady-state solve churns short-lived floats (Krylov scratch, device
   evaluation), and the OCaml 5 default of 256k words per domain makes
   spawned workers minor-collect so often that a parallel sweep can
   run *slower* than the serial one. 4M words (32 MB) amortizes that
   churn without meaningfully raising peak RSS for a handful of
   domains. Only spawned workers are tuned — the calling domain keeps
   whatever the embedding application configured. *)
let worker_minor_heap_words = 4 * 1024 * 1024

let tune_worker_gc () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < worker_minor_heap_words then
    Gc.set { g with Gc.minor_heap_size = worker_minor_heap_words }

(* Which worker of the pool the current domain is: the caller is
   worker 0, spawned domains are 1..domains-1. Stable across nested
   reads on the same domain; meaningful only while a [map] is live. *)
let worker_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let worker_index () = !(Domain.DLS.get worker_key)

let map ?(chunk = 0) ?(assign = `Dynamic) ~domains f items =
  let n = Array.length items in
  if n = 0 then [||]
  else
    let domains = max 1 (min domains n) in
    if domains = 1 then begin
      Domain.DLS.get worker_key := 0;
      Observe.Publish.worker_started ~worker:0;
      Fun.protect
        ~finally:(fun () -> Observe.Publish.worker_stopped ~worker:0)
        (fun () -> Array.map f items)
    end
    else begin
      (* Chunked claiming: grabbing a run of items per fetch instead of
         one keeps the shared index off the coherence hot path (one
         atomic RMW per chunk, not per item) while still load-balancing
         dynamically — 4 chunks per domain leaves enough slack for
         uneven job costs. *)
      let chunk = if chunk > 0 then chunk else max 1 (n / (domains * 4)) in
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let rec dynamic () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          (* Each slot is written by exactly one domain; Domain.join
             below publishes the writes to the caller. *)
          for i = start to stop - 1 do
            results.(i) <- Some (f items.(i))
          done;
          dynamic ()
        end
      in
      (* Static round-robin: worker [k] owns items i ≡ k (mod domains).
         No shared claiming index at all, so the job → worker placement
         is a pure function of (index, domains) — what deterministic
         per-domain tracing needs — at the price of no load balancing. *)
      let static k =
        let i = ref k in
        while !i < n do
          results.(!i) <- Some (f items.(!i));
          i := !i + domains
        done
      in
      let work k =
        Domain.DLS.get worker_key := k;
        Observe.Publish.worker_started ~worker:k;
        Fun.protect
          ~finally:(fun () -> Observe.Publish.worker_stopped ~worker:k)
          (fun () ->
            match assign with `Dynamic -> dynamic () | `Static -> static k)
      in
      let spawned =
        Array.init (domains - 1) (fun j ->
            Domain.spawn (fun () ->
                tune_worker_gc ();
                work (j + 1)))
      in
      work 0;
      Array.iter Domain.join spawned;
      Array.map
        (function Some r -> r | None -> assert false (* queue drained *))
        results
    end
