let map ~domains f items =
  let n = Array.length items in
  if n = 0 then [||]
  else
    let domains = max 1 (min domains n) in
    if domains = 1 then Array.map f items
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Each slot is written by exactly one domain; Domain.join
             below publishes the writes to the caller. *)
          results.(i) <- Some (f items.(i));
          worker ()
        end
      in
      let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned;
      Array.map
        (function Some r -> r | None -> assert false (* queue drained *))
        results
    end
