(** The unified solver surface: one [run] over the five steady-state
    backends, one result shape out.

    Every backend consumes the same {!Problem.t} and {!Options.t} and
    produces a {!Result.t} carrying the output-node waveform, RF
    metrics, the structured {!Resilience.Report.t}, a
    {!Diagnostics.Health.t} assessment, and (when telemetry is
    recording on the executing domain) the per-solve span summary —
    so method-vs-method comparisons need no per-engine glue. *)

type kind = Shooting | Multiple_shooting | Hb | Periodic_fd | Mpde

val all_kinds : kind list

val kind_name : kind -> string
(** ["shooting"], ["multiple-shooting"], ["hb"], ["periodic-fd"],
    ["mpde"]. *)

val kind_of_name : string -> (kind, string) Stdlib.result
(** Case-insensitive; accepts the short aliases ["msh"] and ["pfd"].
    [Error] carries a human-readable message listing valid names. *)

module Result : sig
  type waveform = {
    times : float array;
        (** single-time engines: sample times over the solved period;
            MPDE: the [n2] envelope times along the slow scale *)
    values : float array;  (** output-node voltage at each time *)
  }

  type t = {
    kind : kind;
    label : string;  (** the problem's label *)
    converged : bool;
    newton_iterations : int;
    residual_norm : float;
    wall_seconds : float;  (** whole run: build, DC seed, solve, metrics *)
    waveform : waveform;
    metrics : (string * float) list;
        (** RF figures: [h1_amplitude]/[thd] for the single-time
            engines, [baseband_h1]/[thd] for MPDE *)
    report : Resilience.Report.t;
    health : Diagnostics.Health.t;
    telemetry : Telemetry.Summary.t option;
        (** per-solve span summary when the executing domain's
            recorder was enabled *)
    mpde_solution : Mpde.Solver.solution option;
        (** full bi-periodic solution for surface/diagonal extraction;
            [None] for the single-time engines *)
  }
end

type t = { kind : kind; options : Options.t }
(** An engine choice: backend plus the unified options. *)

val make : ?options:Options.t -> kind -> t
(** Defaults to {!Options.default}. *)

val options : t -> Options.t

val reset_workspace_slot : unit -> unit
(** Clear the calling domain's retained MPDE solver workspace. The
    backend keeps one workspace per domain (DLS) so repeated solves
    reuse the large numeric buffers; sweeps call this at the start of a
    run so worker 0 — the calling domain, whose slot outlives previous
    runs — starts as cold as the freshly spawned workers, keeping
    traced runs byte-identical. Reuse never changes solver results,
    only allocation behaviour. *)

val run : Problem.t -> t -> Result.t
(** Build the problem's circuit, seed from the DC operating point
    (when [options.warm_start]), dispatch to the chosen backend, and
    assemble the unified result. Never raises on solver
    non-convergence — inspect [converged] / [report]; it does let
    construction errors escape (e.g. {!Mpde.Shear.Off_lattice} or a
    raising [Problem.build] thunk), which {!Sweep} isolates per job. *)
