type record = {
  key : string;
  label : string;
  engine : string;
  f_fast : float;
  fd : float;
  status : string;
  converged : bool;
  newton : int;
  residual : float;
  h1 : float;
  thd : float;
  waveform_hash : string;
  attempts : int;
  wall_seconds : float;
  message : string;
  stage : string option;
  backtrace : string option;
  report : string option;
}

(* ---------- hashing ----------

   The job key is the versioned canonical identity from [Key]
   (rfss.key/1); the waveform fingerprint and the per-record digest
   reuse its FNV-1a primitives. *)

let fnv_basis = Key.fnv_basis
let mix_string = Key.mix_string
let mix_float = Key.mix_float
let mix_int = Key.mix_int
let hex = Key.hex

let job_key ~label ~engine ~f_fast ~fd ~options =
  Key.hash ~label ~engine ~f_fast ~fd ~options

let waveform_hash (w : Backend.Result.waveform) =
  let h = ref fnv_basis in
  Array.iter (fun v -> h := mix_float !h v) w.Backend.Result.times;
  Array.iter (fun v -> h := mix_float !h v) w.Backend.Result.values;
  hex !h

let digest r =
  let h = fnv_basis in
  let h = mix_string h r.key in
  let h = mix_string h r.label in
  let h = mix_string h r.engine in
  let h = mix_float h r.f_fast in
  let h = mix_float h r.fd in
  let h = mix_string h r.status in
  let h = mix_int h (if r.converged then 1 else 0) in
  let h = mix_int h r.newton in
  let h = mix_float h r.residual in
  let h = mix_float h r.h1 in
  let h = mix_float h r.thd in
  let h = mix_string h r.waveform_hash in
  let h = mix_int h r.attempts in
  let h = mix_string h r.message in
  let h = mix_string h (Option.value r.stage ~default:"") in
  let h = mix_string h (Option.value r.backtrace ~default:"") in
  let h = mix_string h (Option.value r.report ~default:"") in
  hex h

(* ---------- serialization ----------

   Hand-emitted: Json_min prints floats with a bare %.17g, which is not
   valid JSON for nan/inf, and sweep metrics (h1, thd) are legitimately
   NaN on error rows. Same convention as Resilience.Report: non-finite
   floats become quoted strings. *)

let json_float v =
  if Float.is_nan v then "\"nan\""
  else if v = Float.infinity then "\"inf\""
  else if v = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" v

let esc = Diagnostics.Json_min.escape_string

let to_line r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"v\":1";
  let field name value =
    Buffer.add_string b ",\"";
    Buffer.add_string b name;
    Buffer.add_string b "\":";
    Buffer.add_string b value
  in
  field "key" (esc r.key);
  field "label" (esc r.label);
  field "engine" (esc r.engine);
  field "f_fast" (json_float r.f_fast);
  field "fd" (json_float r.fd);
  field "status" (esc r.status);
  field "converged" (string_of_bool r.converged);
  field "newton" (string_of_int r.newton);
  field "residual" (json_float r.residual);
  field "h1" (json_float r.h1);
  field "thd" (json_float r.thd);
  field "waveform_hash" (esc r.waveform_hash);
  field "attempts" (string_of_int r.attempts);
  field "wall_seconds" (json_float r.wall_seconds);
  field "message" (esc r.message);
  (match r.stage with Some s -> field "stage" (esc s) | None -> ());
  (match r.backtrace with Some s -> field "backtrace" (esc s) | None -> ());
  (* The report is itself JSON, but it is stored as an escaped string:
     embedding it as a sub-object would re-emit through Json_min on
     load, which does not round-trip float formatting byte-for-byte —
     and the digest must. *)
  (match r.report with Some j -> field "report" (esc j) | None -> ());
  field "digest" (esc (digest r));
  Buffer.add_char b '}';
  Buffer.contents b

let float_of_json = function
  | Diagnostics.Json_min.Num v -> Some v
  | Diagnostics.Json_min.Str "nan" -> Some Float.nan
  | Diagnostics.Json_min.Str "inf" -> Some Float.infinity
  | Diagnostics.Json_min.Str "-inf" -> Some Float.neg_infinity
  | _ -> None

let of_line line =
  match Diagnostics.Json_min.parse line with
  | exception Diagnostics.Json_min.Parse_error _ -> None
  | j ->
      let open Diagnostics.Json_min in
      let str_f name = Option.bind (member name j) str in
      let num_f name = Option.bind (member name j) float_of_json in
      let int_f name =
        Option.map int_of_float (Option.bind (member name j) num)
      in
      let bool_f name = Option.bind (member name j) bool in
      (match
         ( str_f "key",
           str_f "label",
           str_f "engine",
           num_f "f_fast",
           num_f "fd",
           str_f "status",
           bool_f "converged",
           int_f "newton",
           num_f "residual",
           num_f "h1",
           num_f "thd",
           str_f "waveform_hash",
           int_f "attempts",
           num_f "wall_seconds",
           str_f "message",
           str_f "digest" )
       with
      | ( Some key,
          Some label,
          Some engine,
          Some f_fast,
          Some fd,
          Some status,
          Some converged,
          Some newton,
          Some residual,
          Some h1,
          Some thd,
          Some waveform_hash,
          Some attempts,
          Some wall_seconds,
          Some message,
          Some stored_digest ) ->
          let r =
            {
              key;
              label;
              engine;
              f_fast;
              fd;
              status;
              converged;
              newton;
              residual;
              h1;
              thd;
              waveform_hash;
              attempts;
              wall_seconds;
              message;
              stage = str_f "stage";
              backtrace = str_f "backtrace";
              report = str_f "report";
            }
          in
          if digest r = stored_digest then Some r else None
      | _ -> None)

let of_outcome (o : Sweep.outcome) =
  let j = o.Sweep.job in
  let p = j.Sweep.problem in
  let engine = Backend.kind_name j.Sweep.engine.Backend.kind in
  let key =
    job_key ~label:j.Sweep.label ~engine ~f_fast:p.Problem.f_fast
      ~fd:p.Problem.fd ~options:j.Sweep.engine.Backend.options
  in
  match o.Sweep.result with
  | Ok r ->
      let metric names =
        Option.value ~default:Float.nan
          (List.find_map
             (fun n -> List.assoc_opt n r.Backend.Result.metrics)
             names)
      in
      {
        key;
        label = j.Sweep.label;
        engine;
        f_fast = p.Problem.f_fast;
        fd = p.Problem.fd;
        status = (if o.Sweep.degraded then "degraded" else "ok");
        converged = r.Backend.Result.converged;
        newton = r.Backend.Result.newton_iterations;
        residual = r.Backend.Result.residual_norm;
        h1 = metric [ "h1_amplitude"; "baseband_h1" ];
        thd = metric [ "thd" ];
        waveform_hash = waveform_hash r.Backend.Result.waveform;
        attempts = o.Sweep.attempts;
        wall_seconds = o.Sweep.wall_seconds;
        message = "";
        stage = None;
        backtrace = None;
        report = Some (Resilience.Report.to_json_string r.Backend.Result.report);
      }
  | Error f ->
      {
        key;
        label = j.Sweep.label;
        engine;
        f_fast = p.Problem.f_fast;
        fd = p.Problem.fd;
        status = "error";
        converged = false;
        newton = 0;
        residual = Float.nan;
        h1 = Float.nan;
        thd = Float.nan;
        waveform_hash = "";
        attempts = o.Sweep.attempts;
        wall_seconds = o.Sweep.wall_seconds;
        message = f.Sweep.message;
        stage = f.Sweep.stage;
        backtrace = f.Sweep.backtrace;
        report = None;
      }

let load path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            match of_line line with
            | Some r -> go (r :: acc)
            | None -> go acc (* torn or corrupt line: skip, re-run job *))
      in
      go []

(* ---------- writer ---------- *)

type t = {
  path : string;
  mutex : Mutex.t;
  mutable recs : record list;  (* newest first *)
}

let create path = { path; mutex = Mutex.create (); recs = List.rev (load path) }

let records t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  List.rev t.recs

let find t ~key = List.find_opt (fun r -> r.key = key) (records t)

(* Rewrite the whole log via temp + rename. Appending in place would be
   cheaper, but a crash mid-append leaves a torn last line; the rename
   makes every on-disk state a complete, parseable log — which is the
   invariant the kill-and-resume chaos test checks. *)
let flush_locked t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     List.iter
       (fun r ->
         output_string oc (to_line r);
         output_char oc '\n')
       (List.rev t.recs);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp t.path

let append t r =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  t.recs <- r :: List.filter (fun x -> x.key <> r.key) t.recs;
  flush_locked t
