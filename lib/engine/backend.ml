type kind = Shooting | Multiple_shooting | Hb | Periodic_fd | Mpde

let all_kinds = [ Shooting; Multiple_shooting; Hb; Periodic_fd; Mpde ]

let kind_name = function
  | Shooting -> "shooting"
  | Multiple_shooting -> "multiple-shooting"
  | Hb -> "hb"
  | Periodic_fd -> "periodic-fd"
  | Mpde -> "mpde"

let kind_of_name s =
  match String.lowercase_ascii s with
  | "shooting" -> Ok Shooting
  | "multiple-shooting" | "msh" -> Ok Multiple_shooting
  | "hb" | "harmonic-balance" -> Ok Hb
  | "periodic-fd" | "pfd" -> Ok Periodic_fd
  | "mpde" -> Ok Mpde
  | other ->
      Error
        (Printf.sprintf
           "unknown engine %S (expected shooting, multiple-shooting, hb, \
            periodic-fd or mpde)"
           other)

module Result = struct
  type waveform = { times : float array; values : float array }

  type t = {
    kind : kind;
    label : string;
    converged : bool;
    newton_iterations : int;
    residual_norm : float;
    wall_seconds : float;
    waveform : waveform;
    metrics : (string * float) list;
    report : Resilience.Report.t;
    health : Diagnostics.Health.t;
    telemetry : Telemetry.Summary.t option;
    mpde_solution : Mpde.Solver.solution option;
  }
end

type t = { kind : kind; options : Options.t }

let make ?(options = Options.default) kind = { kind; options }
let options e = e.options

(* One retained MPDE solver workspace per domain: sweep pools run many
   same-shaped jobs per domain, and the workspace's multi-megabyte
   numeric buffers (dense block staging, Krylov basis, Bigarray
   vectors) dominate each job's allocation profile. The solver rebinds
   or rejects the retained workspace per job, so reuse never changes
   results. *)
let mpde_workspace_slot :
    Mpde.Solver.workspace option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let reset_workspace_slot () = Domain.DLS.get mpde_workspace_slot := None

let output_values mna (p : Problem.t) states =
  match p.Problem.output_b with
  | None -> Array.map (fun x -> Circuit.Mna.voltage mna x p.Problem.output) states
  | Some b ->
      Array.map
        (fun x -> Circuit.Mna.differential_voltage mna x p.Problem.output b)
        states

(* Integrator traces cover [0, T] inclusive, so the last sample
   duplicates the first; drop it before harmonic analysis, which
   assumes exactly one period of samples. *)
let one_period ~period times values =
  let n = Array.length values in
  if
    n >= 2
    && Float.abs (times.(n - 1) -. times.(0) -. period) <= 1e-6 *. period
  then Array.sub values 0 (n - 1)
  else values

let finite_or_zero x = if Float.is_finite x then x else 0.0

let periodic_metrics samples =
  if Array.length samples < 4 then []
  else
    let h = Numeric.Fft.real_harmonics samples in
    let h1 = if Array.length h > 1 then fst h.(1) else 0.0 in
    [
      ("h1_amplitude", h1);
      ("thd", finite_or_zero (Rf.Metrics.thd samples ()));
    ]

let run (problem : Problem.t) (engine : t) : Result.t =
  let o = engine.options in
  Telemetry.span "engine.run" @@ fun () ->
  let wall0 = Telemetry.Clock.wall () in
  (* No allocation attribution in deterministic-replay mode: GC deltas
     are not replayable, and recording them would make fake-clock
     traces differ run to run. *)
  let alloc0 =
    if Telemetry.enabled () && not (Telemetry.Clock.overridden ()) then
      Some (Gc.quick_stat ())
    else None
  in
  let tele_mark = Telemetry.mark () in
  let { Circuits.mna; _ } = problem.Problem.build () in
  let dae = Circuit.Mna.dae mna in
  let period = Problem.engine_period problem in
  let x0 =
    if o.Options.warm_start then
      (* A failed DC solve is not fatal — the engines fall back to the
         zero seed exactly as they would without warm start. *)
      try Some (Circuit.Dcop.solve_exn ?budget:o.Options.budget mna)
      with _ -> None
    else None
  in
  let finalize ~converged ~newton_iterations ~residual_norm ~times ~values
      ~metrics ~report ~health ~mpde_solution =
    (* Allocation attribution for the whole run (build, DC seed,
       solve), recorded before the snapshot so the gauges appear in
       this job's own summary. *)
    (match alloc0 with
    | Some s0 ->
        let s1 = Gc.quick_stat () in
        Telemetry.gauge "alloc.job.minor_words"
          (s1.Gc.minor_words -. s0.Gc.minor_words);
        Telemetry.gauge "alloc.job.major_words"
          (s1.Gc.major_words -. s0.Gc.major_words);
        Telemetry.gauge "alloc.job.promoted_words"
          (s1.Gc.promoted_words -. s0.Gc.promoted_words)
    | None -> ());
    let telemetry =
      Option.map Telemetry.Summary.of_snapshot
        (Telemetry.snapshot ~since:tele_mark ())
    in
    {
      Result.kind = engine.kind;
      label = problem.Problem.label;
      converged;
      newton_iterations;
      residual_norm;
      wall_seconds = Telemetry.Clock.wall () -. wall0;
      waveform = { Result.times; values };
      metrics;
      report;
      health;
      telemetry;
      mpde_solution;
    }
  in
  let finalize_single_time ~converged ~newton_iterations ~residual_norm ~times
      ~values ~report =
    finalize ~converged ~newton_iterations ~residual_norm ~times ~values
      ~metrics:(periodic_metrics (one_period ~period times values))
      ~report
      ~health:(Diagnostics.Health.of_report report)
      ~mpde_solution:None
  in
  match engine.kind with
  | Shooting ->
      let r =
        Steady.Shooting.solve ~max_newton:o.Options.max_newton
          ~tol:o.Options.tol ~steps_per_period:o.Options.steps_per_period
          ?budget:o.Options.budget ?x0 ~dae ~period ()
      in
      let wall = Telemetry.Clock.wall () -. wall0 in
      let report = Steady.Shooting.to_report ~wall_seconds:wall r in
      finalize_single_time ~converged:r.Steady.Shooting.converged
        ~newton_iterations:r.Steady.Shooting.newton_iterations
        ~residual_norm:r.Steady.Shooting.residual_norm
        ~times:r.Steady.Shooting.trace.Numeric.Integrator.times
        ~values:
          (output_values mna problem
             r.Steady.Shooting.trace.Numeric.Integrator.states)
        ~report
  | Multiple_shooting ->
      let r =
        Steady.Multiple_shooting.solve ~max_newton:o.Options.max_newton
          ~tol:o.Options.tol ~steps_per_segment:o.Options.steps_per_segment
          ?budget:o.Options.budget ?x0 ~dae ~period
          ~segments:o.Options.segments ()
      in
      let wall = Telemetry.Clock.wall () -. wall0 in
      let report = Steady.Multiple_shooting.to_report ~wall_seconds:wall r in
      finalize_single_time ~converged:r.Steady.Multiple_shooting.converged
        ~newton_iterations:r.Steady.Multiple_shooting.newton_iterations
        ~residual_norm:r.Steady.Multiple_shooting.residual_norm
        ~times:r.Steady.Multiple_shooting.trace.Numeric.Integrator.times
        ~values:
          (output_values mna problem
             r.Steady.Multiple_shooting.trace.Numeric.Integrator.states)
        ~report
  | Hb ->
      let r =
        Steady.Hb.solve ~max_newton:o.Options.max_newton ~tol:o.Options.tol
          ?budget:o.Options.budget ?x_init:x0 ~dae ~period
          ~harmonics:o.Options.harmonics ()
      in
      let wall = Telemetry.Clock.wall () -. wall0 in
      let report = Steady.Hb.to_report ~wall_seconds:wall r in
      finalize_single_time ~converged:r.Steady.Hb.converged
        ~newton_iterations:r.Steady.Hb.newton_iterations
        ~residual_norm:r.Steady.Hb.residual_norm ~times:r.Steady.Hb.times
        ~values:(output_values mna problem r.Steady.Hb.states)
        ~report
  | Periodic_fd ->
      let r =
        Steady.Periodic_fd.solve ~max_newton:o.Options.max_newton
          ~tol:o.Options.tol ?budget:o.Options.budget ?x_init:x0 ~dae ~period
          ~points:o.Options.points ()
      in
      let wall = Telemetry.Clock.wall () -. wall0 in
      let report = Steady.Periodic_fd.to_report ~wall_seconds:wall r in
      finalize_single_time ~converged:r.Steady.Periodic_fd.converged
        ~newton_iterations:r.Steady.Periodic_fd.newton_iterations
        ~residual_norm:r.Steady.Periodic_fd.residual_norm
        ~times:r.Steady.Periodic_fd.times
        ~values:(output_values mna problem r.Steady.Periodic_fd.states)
        ~report
  | Mpde ->
      let shear =
        Mpde.Shear.make ~fast_freq:problem.Problem.f_fast
          ~slow_freq:problem.Problem.fd
      in
      let sol =
        Mpde.Solver.solve_mna ~options:(Options.to_mpde o)
          ?seed:o.Options.initial_surface
          ~workspace_slot:(Domain.DLS.get mpde_workspace_slot) ~shear
          ~n1:o.Options.n1 ~n2:o.Options.n2 mna
      in
      let values_2d =
        match problem.Problem.output_b with
        | None -> Mpde.Extract.surface_of_node sol mna problem.Problem.output
        | Some b ->
            Mpde.Extract.differential_surface sol mna problem.Problem.output b
      in
      let times = Mpde.Extract.envelope_times sol in
      let values = Mpde.Extract.envelope sol ~values:values_2d in
      let metrics =
        [
          ( "baseband_h1",
            Mpde.Extract.t2_harmonic_amplitude ~values:values_2d ~harmonic:1 );
          ("thd", finite_or_zero (Mpde.Extract.thd ~values:values_2d ()));
        ]
      in
      let health =
        Diagnostics.Health.of_solution ~scheme:o.Options.scheme
          ~condition:o.Options.condition_estimate sol
      in
      finalize ~converged:sol.Mpde.Solver.stats.Mpde.Solver.converged
        ~newton_iterations:
          sol.Mpde.Solver.stats.Mpde.Solver.newton_iterations
        ~residual_norm:sol.Mpde.Solver.stats.Mpde.Solver.residual_norm ~times
        ~values ~metrics ~report:sol.Mpde.Solver.report ~health
        ~mpde_solution:(Some sol)
