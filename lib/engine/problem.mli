(** What to solve, independent of how: a circuit, its two-tone
    excitation frequencies, and which fundamental the single-time
    engines should lock onto. One [Problem.t] can be handed to any of
    the five steady-state backends via [Engine.run], which is what
    makes the paper's method-vs-method comparisons (MPDE vs one-tone
    shooting across the frequency disparity) a data-driven sweep
    instead of hand-written glue. *)

type period_choice =
  | Fast_tone
      (** the single-time engines solve one fast (LO) period [1/f_fast] *)
  | Difference_tone
      (** the single-time engines integrate the whole difference period
          [1/fd] — the paper's §3 cost comparison, where shooting cost
          grows linearly with the disparity [f_fast/fd] *)

type t = {
  label : string;  (** job identifier in sweep outputs *)
  build : unit -> Circuits.built;
      (** fresh circuit per solve. The thunk must be pure/reentrant: a
          sweep invokes it concurrently from several domains, each
          worker building its own MNA system so no mutable state is
          shared across jobs. *)
  f_fast : float;  (** fast (LO) fundamental, Hz *)
  fd : float;  (** difference (slow) fundamental, Hz *)
  period : period_choice;
  output : string;  (** node whose waveform the result reports *)
  output_b : string option;  (** second node for differential outputs *)
}

val make :
  ?label:string ->
  ?period:period_choice ->
  ?output:string ->
  ?output_b:string ->
  f_fast:float ->
  fd:float ->
  (unit -> Circuits.built) ->
  t
(** Defaults: [label = "problem"], [period = Fast_tone],
    [output = "out"], no differential pair. *)

val disparity : t -> float
(** [f_fast /. fd] — the paper's frequency-separation parameter. *)

val engine_period : t -> float
(** The period a single-time engine solves: [1/f_fast] or [1/fd]
    according to [period]. *)
