(** One options record for all five steady-state backends, under one
    normalized vocabulary.

    Historically every engine spelled the same concepts differently —
    the Newton cap was [max_newton] in the solvers but [max_iterations]
    in {!Numeric.Newton} and [max_iter] in the GMRES records, and the
    convergence target was variously [tol], [abs_tol] or a
    linear-solver-relative [tol]. Here there is exactly one [tol] (the
    nonlinear residual infinity-norm target) and one [max_newton] (the
    outer Newton cap); the per-backend discretization knobs keep their
    own names because they genuinely differ. DESIGN.md §11 tabulates
    the mapping onto each backend's native record. *)

type t = {
  (* shared Newton controls (every backend) *)
  tol : float;  (** residual infinity-norm target; default [1e-8] *)
  max_newton : int;  (** outer Newton iteration cap; default [50] *)
  warm_start : bool;
      (** seed from the DC operating point (falling back to the zero
          state when the DC solve fails); default [true] *)
  budget : Resilience.Budget.t option;
      (** work/deadline bound threaded into the backend; default
          unbounded *)
  (* single-time discretization *)
  steps_per_period : int;  (** shooting; default [256] *)
  segments : int;  (** multiple shooting windows; default [8] *)
  steps_per_segment : int;  (** multiple shooting; default [50] *)
  harmonics : int;  (** harmonic balance; default [8] *)
  points : int;  (** periodic-FD collocation points; default [64] *)
  (* MPDE grid and linear layer *)
  n1 : int;  (** fast-scale grid points; default [32] *)
  n2 : int;  (** slow-scale grid points; default [24] *)
  scheme : Mpde.Assemble.scheme;  (** default [Backward] *)
  linear_solver : Mpde.Solver.linear_solver;
      (** default {!Mpde.Solver.default_gmres} *)
  allow_continuation : bool;
      (** enable the MPDE nonlinear escalation rungs; default [true] *)
  (* result enrichment *)
  condition_estimate : bool;
      (** compute the Jacobian κ estimate in the health assessment
          (MPDE only; costs an extra factorization); default [false] *)
  initial_surface : Linalg.Vec.t option;
      (** full flattened MPDE grid state used as the Newton initial
          guess instead of the replicated DC point (MPDE only) —
          typically a converged surface from a nearby parameter point,
          shared by the solve service's warm-start store. Excluded
          from {!Key}: it changes iteration counts, not the fixed
          point being solved for. Default [None]. *)
  krylov_recycle : bool;
      (** seed each MPDE GMRES solve from a projection of the previous
          Newton iteration's Krylov subspace (with cold-start fallback
          on operator drift). Excluded from {!Key} like
          [linear_solver]: it steers the iteration, not the fixed point
          being solved for. Default [true]. *)
}

val default : t

val with_budget : Resilience.Budget.t option -> t -> t

val degrade : t -> t
(** Watchdog demotion: halve every discretization axis (floored at
    [n1 >= 8], [n2 >= 6], [steps_per_period >= 64],
    [steps_per_segment >= 16], [harmonics >= 4], [points >= 16]) and
    loosen [tol] by two decades (capped at [1e-3]). Idempotent at the
    floors. *)

val to_mpde : t -> Mpde.Solver.options
(** Project onto the MPDE backend's native record. *)
