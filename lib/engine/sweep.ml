type job = { label : string; problem : Problem.t; engine : Backend.t }

let job ?label ?(options = Options.default) ~kind problem =
  let label =
    match label with
    | Some l -> l
    | None -> problem.Problem.label ^ ":" ^ Backend.kind_name kind
  in
  { label; problem; engine = Backend.make ~options kind }

type outcome = {
  index : int;
  job : job;
  result : (Backend.Result.t, string) Stdlib.result;
  wall_seconds : float;
}

let default_domains () = Domain.recommended_domain_count ()

(* Enable a throwaway recorder on the executing domain for the span of
   one job, unless one is already live there (serial sweeps under
   [rfss --trace] keep the caller's recorder; Backend.run's
   [mark]/[snapshot ~since] isolation still scopes the summary to the
   job). *)
let with_job_telemetry want f =
  if (not want) || Telemetry.enabled () then f ()
  else begin
    Telemetry.enable ();
    Fun.protect ~finally:Telemetry.disable f
  end

let run ?domains ?wall_seconds ?max_newton_per_job
    ?(per_job_telemetry = false) jobs =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let deadline =
    Option.map (fun s -> Telemetry.Clock.wall () +. s) wall_seconds
  in
  let run_one (index, j) =
    let t0 = Telemetry.Clock.wall () in
    let engine =
      if deadline = None && max_newton_per_job = None then j.engine
      else
        (* Fresh per-job budget: standalone counters (cross-domain
           sharing would race), wall headroom measured against the
           sweep deadline at job start, chained onto the job's own
           pre-existing budget which lives on this same domain. *)
        let wall_left =
          Option.map (fun d -> Float.max 0.0 (d -. t0)) deadline
        in
        let budget =
          Resilience.Budget.make ?wall_seconds:wall_left
            ?max_newton:max_newton_per_job
            ?parent:j.engine.Backend.options.Options.budget ()
        in
        {
          j.engine with
          Backend.options =
            Options.with_budget (Some budget) j.engine.Backend.options;
        }
    in
    let result =
      try
        with_job_telemetry per_job_telemetry (fun () ->
            Ok (Backend.run j.problem engine))
      with e -> Error (Printexc.to_string e)
    in
    { index; job = j; result; wall_seconds = Telemetry.Clock.wall () -. t0 }
  in
  Pool.map ~domains run_one (Array.mapi (fun i j -> (i, j)) jobs)
