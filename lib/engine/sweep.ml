type job = { label : string; problem : Problem.t; engine : Backend.t }

let job ?label ?(options = Options.default) ~kind problem =
  let label =
    match label with
    | Some l -> l
    | None -> problem.Problem.label ^ ":" ^ Backend.kind_name kind
  in
  { label; problem; engine = Backend.make ~options kind }

type failure = {
  message : string;
  backtrace : string option;
  stage : string option;
}

let failure_to_string f =
  match f.stage with
  | None -> f.message
  | Some s -> Printf.sprintf "%s [stage %s]" f.message s

type outcome = {
  index : int;
  job : job;
  result : (Backend.Result.t, failure) Stdlib.result;
  wall_seconds : float;
  attempts : int;
  degraded : bool;
  worker : int;
  trace : (float * Telemetry.snapshot) option;
}

let retries o = o.attempts - 1

let default_domains () = Domain.recommended_domain_count ()

(* Enable a throwaway recorder on the executing domain for the span of
   one job, unless one is already live there (serial sweeps under
   [rfss --trace] keep the caller's recorder; Backend.run's
   [mark]/[snapshot ~since] isolation still scopes the summary to the
   job). *)
let with_job_telemetry want f =
  if (not want) || Telemetry.enabled () then f ()
  else begin
    Telemetry.enable ();
    Fun.protect ~finally:Telemetry.disable f
  end

(* Plain class name for the introspection plane (Convergence.to_string
   embeds the linear rate / rescue stage, which event consumers would
   have to re-parse). *)
let health_class = function
  | Diagnostics.Convergence.Quadratic -> "quadratic"
  | Diagnostics.Convergence.Linear _ -> "linear"
  | Diagnostics.Convergence.Stagnating -> "stagnating"
  | Diagnostics.Convergence.Diverging -> "diverging"
  | Diagnostics.Convergence.Rescued _ -> "rescued"
  | Diagnostics.Convergence.Insufficient_data -> "insufficient-data"

(* Status/health of one outcome as published on the event stream.
   Status follows checkpoint-record semantics, except that an
   unconverged Ok is reported as "failed" (the checkpoint encodes that
   in a separate [converged] column). *)
let published_verdict (result : (Backend.Result.t, failure) Stdlib.result)
    ~degraded =
  match result with
  | Error _ -> ("error", Some "failed")
  | Ok r ->
      let health =
        health_class
          (Diagnostics.Health.of_report r.Backend.Result.report)
            .Diagnostics.Health.convergence
      in
      if not r.Backend.Result.converged then ("failed", Some health)
      else if degraded then ("degraded", Some health)
      else ("ok", Some health)

let run ?domains ?wall_seconds ?max_newton_per_job
    ?(per_job_telemetry = false) ?(per_job_trace = false)
    ?(retry = Resilience.Retry.none) ?on_outcome jobs =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let deadline =
    Option.map (fun s -> Telemetry.Clock.wall () +. s) wall_seconds
  in
  Observe.Publish.run_started ?deadline ~domains ~phase:"sweep"
    ~total:(Array.length jobs) ();
  let deadline_open () =
    match deadline with None -> true | Some d -> Telemetry.Clock.wall () < d
  in
  let engine_for (j : job) =
    if deadline = None && max_newton_per_job = None then j.engine
    else
      (* Fresh per-attempt budget: standalone counters (cross-domain
         sharing would race), wall headroom measured against the sweep
         deadline at attempt start — so a retry gets only what is left,
         not a fresh slice — chained onto the job's own pre-existing
         budget which lives on this same domain. *)
      let wall_left =
        Option.map
          (fun d -> Float.max 0.0 (d -. Telemetry.Clock.wall ()))
          deadline
      in
      let budget =
        Resilience.Budget.make ?wall_seconds:wall_left
          ?max_newton:max_newton_per_job
          ?parent:j.engine.Backend.options.Options.budget ()
      in
      {
        j.engine with
        Backend.options =
          Options.with_budget (Some budget) j.engine.Backend.options;
      }
  in
  let run_one (index, j) =
    let t0 = Telemetry.Clock.wall () in
    let worker = Pool.worker_index () in
    Observe.Publish.job_started ~job:j.label ~worker;
    (* One fault-injection scope per attempt: occurrence counters reset
       on retry (a [crash@job:1] fault is transient — it hits attempt 1
       and spares attempt 2), and the scope key lets a plan target one
       job ("fd=8000"), one attempt ("#1"), or the degraded pass
       ("#d"). *)
    let one_attempt ~scope_key (j : job) =
      Resilience.Faultinject.with_scope ~key:scope_key (fun () ->
          try
            Resilience.Faultinject.fire_point Resilience.Faultinject.Job;
            with_job_telemetry per_job_telemetry (fun () ->
                Ok (Backend.run j.problem (engine_for j)))
          with e ->
            (* Capture the trace in the handler, before any other code
               runs and overwrites it. *)
            let backtrace =
              if Printexc.backtrace_status () then
                match Printexc.get_backtrace () with
                | "" -> None
                | bt -> Some bt
              else None
            in
            Error
              {
                message = Printexc.to_string e;
                backtrace;
                stage = Resilience.Faultinject.last_stage ();
              })
    in
    (* Transient: worth retrying unchanged — a crash (injected or real)
       or a budget slice that ran out. Deterministic non-convergence
       (stall, divergence) is not transient; retrying the identical
       computation reproduces it bitwise. *)
    let transient = function
      | Error _ -> true
      | Ok r -> (
          (not r.Backend.Result.converged)
          &&
          match r.Backend.Result.report.Resilience.Report.outcome with
          | Resilience.Report.Exhausted _ -> true
          | _ -> false)
    in
    let failed = function
      | Error _ -> true
      | Ok r -> not r.Backend.Result.converged
    in
    let rec attempt_loop n prev_delay =
      let result = one_attempt ~scope_key:(j.label ^ "#" ^ string_of_int n) j in
      if transient result && n < retry.Resilience.Retry.max_attempts
         && deadline_open ()
      then begin
        let delay =
          Resilience.Retry.backoff retry ~salt:j.label ~attempt:n
            ~prev:prev_delay
        in
        Observe.Publish.retry ~job:j.label ~worker ~attempt:n ~delay;
        Resilience.Retry.sleep delay;
        attempt_loop (n + 1) delay
      end
      else (result, n)
    in
    let compute () =
      let result, attempts = attempt_loop 1 0.0 in
      (* Watchdog: a job that failed every regular attempt gets one
         final try at degraded options instead of poisoning the sweep.
         The demotion is only kept if it actually rescued the job. *)
      let result, degraded =
        if
          retry.Resilience.Retry.degrade && failed result && deadline_open ()
        then begin
          Observe.Publish.degraded ~job:j.label ~worker;
          let dj =
            {
              j with
              engine =
                {
                  j.engine with
                  Backend.options = Options.degrade j.engine.Backend.options;
                };
            }
          in
          let d_result = one_attempt ~scope_key:(j.label ^ "#d") dj in
          if failed d_result then (result, false) else (d_result, true)
        end
        else (result, false)
      in
      (result, attempts, degraded)
    in
    (* Trace capture spans the whole job — every attempt, backoff and
       the degraded pass — on the executing domain. When a recorder is
       already live there (serial sweep under [rfss --trace]) the job's
       slice is windowed out of it with [mark]/[snapshot ~since];
       otherwise a throwaway recorder wraps the job. Either way span
       timestamps stay relative to that recorder's enable instant,
       which [Telemetry.enabled_at] reports as the base for merging. *)
    let (result, attempts, degraded), trace =
      if not per_job_trace then (compute (), None)
      else if Telemetry.enabled () then begin
        let since = Telemetry.mark () in
        let r = compute () in
        let base = Option.value ~default:t0 (Telemetry.enabled_at ()) in
        (r, Option.map (fun s -> (base, s)) (Telemetry.snapshot ~since ()))
      end
      else begin
        Telemetry.enable ();
        Fun.protect ~finally:Telemetry.disable (fun () ->
            let r = compute () in
            let base = Option.value ~default:t0 (Telemetry.enabled_at ()) in
            (r, Option.map (fun s -> (base, s)) (Telemetry.snapshot ())))
      end
    in
    let outcome =
      {
        index;
        job = j;
        result;
        wall_seconds = Telemetry.Clock.wall () -. t0;
        attempts;
        degraded;
        worker;
        trace;
      }
    in
    (* The armed check here (one atomic load when idle) also gates the
       health classification, which is only worth computing when a
       listener is watching. *)
    if Observe.Publish.armed () then begin
      let status, health = published_verdict result ~degraded in
      Observe.Publish.job_finished ~job:j.label ~worker ~status ~health
        ~wall_seconds:outcome.wall_seconds ~attempts
    end;
    (* Runs on the executing domain, concurrently across jobs: the
       checkpoint writer (the intended consumer) serializes internally. *)
    (match on_outcome with Some f -> f outcome | None -> ());
    outcome
  in
  (* Static placement under tracing: job → worker must be a pure
     function of the index for two traced runs to merge identically. *)
  let assign = if per_job_trace then `Static else `Dynamic in
  (* Spawned workers always start with an empty per-domain solver
     workspace slot, but worker 0 is the calling domain, whose slot
     survives from whatever ran before. Clearing it makes every worker
     start the sweep cold — two identical sweeps produce identical
     reuse counters (and therefore identical traces) regardless of what
     the caller solved earlier. *)
  Backend.reset_workspace_slot ();
  let outcomes =
    Pool.map ~assign ~domains run_one (Array.mapi (fun i j -> (i, j)) jobs)
  in
  Observe.Publish.run_finished ();
  outcomes
