(** Unified steady-state solver API.

    One problem description ({!Problem}), one options record
    ({!Options}), one entry point ({!run}) over the five backends, one
    result shape ({!Result}) out — plus {!Sweep}, a parallel parameter
    sweep executor on OCaml 5 domains. DESIGN.md §11 documents the
    architecture and the mapping from the unified option vocabulary
    onto each backend's native records.

    {[
      let problem =
        Engine.Problem.make ~label:"mixer" ~f_fast:1e6 ~fd:1e4
          ~output:"out" (fun () -> Circuits.ideal_mixer ())
      in
      let r = Engine.run problem (Engine.make Engine.Mpde) in
      Printf.printf "%s converged=%b\n" r.label r.converged
    ]} *)

module Problem = Problem
module Options = Options
module Key = Key
module Pool = Pool
module Sweep = Sweep
module Checkpoint = Checkpoint
include Backend
