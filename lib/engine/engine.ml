(** Unified steady-state solver API.

    One problem description ({!Problem}), one options record
    ({!Options}), one entry point ({!run}) over the five backends, one
    result shape ({!Result}) out — plus {!Sweep}, a parallel parameter
    sweep executor on OCaml 5 domains. DESIGN.md §11 documents the
    architecture and the mapping from the unified option vocabulary
    onto each backend's native records.

    {[
      let problem =
        Engine.Problem.make ~label:"mixer" ~f_fast:1e6 ~fd:1e4
          ~output:"out" (fun () -> Circuits.ideal_mixer ())
      in
      let r = Engine.run problem (Engine.make Engine.Mpde) in
      Printf.printf "%s converged=%b\n" r.label r.converged
    ]} *)

module Problem = Problem
module Options = Options
module Pool = Pool
module Sweep = Sweep
module Checkpoint = Checkpoint
include Backend

(* Per-engine entry points predating the unified API, kept as thin
   wrappers for one deprecation cycle. *)

let run_shooting ?options problem = run problem (make ?options Shooting)
[@@deprecated "use Engine.run with Engine.make Engine.Shooting"]

let run_multiple_shooting ?options problem =
  run problem (make ?options Multiple_shooting)
[@@deprecated "use Engine.run with Engine.make Engine.Multiple_shooting"]

let run_hb ?options problem = run problem (make ?options Hb)
[@@deprecated "use Engine.run with Engine.make Engine.Hb"]

let run_periodic_fd ?options problem = run problem (make ?options Periodic_fd)
[@@deprecated "use Engine.run with Engine.make Engine.Periodic_fd"]

let run_mpde ?options problem = run problem (make ?options Mpde)
[@@deprecated "use Engine.run with Engine.make Engine.Mpde"]
