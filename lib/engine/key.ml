(* Canonical, versioned job identity. The hash is FNV-1a 64 over the
   typed fields (not over the printable form): strings are terminated,
   floats contribute their full 8-byte IEEE image, so distinct field
   tuples cannot collide by concatenation. The version tag is mixed
   first — any change to the field set or encoding must bump it, which
   invalidates every stored key at once instead of silently aliasing
   old entries. *)

let version = "rfss.key/1"

(* ---------- FNV-1a primitives (shared with Checkpoint's digests) --- *)

let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_byte h byte = Int64.mul (Int64.logxor h (Int64.of_int byte)) fnv_prime

let mix_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  (* Terminator so ("ab","c") and ("a","bc") hash differently. *)
  mix_byte !h 0xFF

let mix_float h v =
  let bits = Int64.bits_of_float v in
  let h = ref h in
  for k = 0 to 7 do
    h :=
      mix_byte !h
        (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * k)) 0xFFL))
  done;
  !h

let mix_int h i = mix_float h (float_of_int i)

let hex h = Printf.sprintf "%016Lx" h

(* ---------- the job key ---------- *)

(* The identity fields: what the solve computes, not how long it may
   run. [budget] and [initial_surface] are deliberately excluded — a
   warm start or a tighter deadline changes iteration counts and wall
   time but not the fixed point being solved for, and including them
   would make every warm-started request a cache miss. *)

let scheme_name = function
  | Mpde.Assemble.Backward -> "backward"
  | Mpde.Assemble.Central_t1 -> "central-t1"
  | Mpde.Assemble.Spectral_t1 -> "spectral-t1"
  | Mpde.Assemble.Spectral_both -> "spectral-both"

let scheme_tag = function
  | Mpde.Assemble.Backward -> 0
  | Mpde.Assemble.Central_t1 -> 1
  | Mpde.Assemble.Spectral_t1 -> 2
  | Mpde.Assemble.Spectral_both -> 3

let canonical ~label ~engine ~f_fast ~fd ~options =
  let o = (options : Options.t) in
  Printf.sprintf
    "%s|label=%s|engine=%s|f_fast=%.17g|fd=%.17g|n1=%d|n2=%d|steps_per_period=%d|segments=%d|steps_per_segment=%d|harmonics=%d|points=%d|max_newton=%d|tol=%.17g|warm_start=%b|scheme=%s|continuation=%b"
    version label engine f_fast fd o.Options.n1 o.Options.n2
    o.Options.steps_per_period o.Options.segments o.Options.steps_per_segment
    o.Options.harmonics o.Options.points o.Options.max_newton o.Options.tol
    o.Options.warm_start
    (scheme_name o.Options.scheme)
    o.Options.allow_continuation

let hash ~label ~engine ~f_fast ~fd ~options =
  let o = (options : Options.t) in
  let h = fnv_basis in
  let h = mix_string h version in
  let h = mix_string h label in
  let h = mix_string h engine in
  let h = mix_float h f_fast in
  let h = mix_float h fd in
  let h = mix_int h o.Options.n1 in
  let h = mix_int h o.Options.n2 in
  let h = mix_int h o.Options.steps_per_period in
  let h = mix_int h o.Options.segments in
  let h = mix_int h o.Options.steps_per_segment in
  let h = mix_int h o.Options.harmonics in
  let h = mix_int h o.Options.points in
  let h = mix_int h o.Options.max_newton in
  let h = mix_float h o.Options.tol in
  let h = mix_int h (if o.Options.warm_start then 1 else 0) in
  let h = mix_int h (scheme_tag o.Options.scheme) in
  let h = mix_int h (if o.Options.allow_continuation then 1 else 0) in
  hex h

let of_problem (p : Problem.t) ~engine ~options =
  hash ~label:p.Problem.label ~engine ~f_fast:p.Problem.f_fast ~fd:p.Problem.fd
    ~options
