type period_choice = Fast_tone | Difference_tone

type t = {
  label : string;
  build : unit -> Circuits.built;
  f_fast : float;
  fd : float;
  period : period_choice;
  output : string;
  output_b : string option;
}

let make ?(label = "problem") ?(period = Fast_tone) ?(output = "out") ?output_b
    ~f_fast ~fd build =
  if not (f_fast > 0.0) then invalid_arg "Problem.make: f_fast must be > 0";
  if not (fd > 0.0) then invalid_arg "Problem.make: fd must be > 0";
  { label; build; f_fast; fd; period; output; output_b }

let disparity p = p.f_fast /. p.fd

let engine_period p =
  match p.period with
  | Fast_tone -> 1.0 /. p.f_fast
  | Difference_tone -> 1.0 /. p.fd
