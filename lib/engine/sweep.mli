(** Parameter sweeps over {!Backend.run}, executed in parallel on
    OCaml 5 domains.

    A sweep is an array of jobs — each a (problem, engine) pair — run
    through {!Pool.map}. Results come back in job order regardless of
    scheduling, so a parallel sweep is sample-for-sample comparable
    with a serial one; with deterministic backends the waveforms are
    bitwise equal. A job that raises (a mis-built circuit, an
    off-lattice MPDE frequency, a NaN escaping a build thunk) is
    captured as [Error] in its own outcome and never poisons sibling
    jobs or the pool.

    Budgets: [wall_seconds] is a deadline for the whole sweep. Budget
    counters are mutable and deliberately *not* shared across domains
    (ticks would race), so instead each job derives a fresh standalone
    {!Resilience.Budget.t} from the time left to the sweep deadline at
    the moment it starts — chained (via [~parent]) onto any budget the
    job's own options already carried, which lives on the same domain.
    Late jobs therefore get small budgets and exhaust cleanly instead
    of overshooting the deadline.

    Telemetry: recorders are domain-local ({!Telemetry}), so worker
    domains record nothing unless [per_job_telemetry] is set, which
    enables a recorder around each job and attaches the per-solve
    summary to its result. Solver workspaces follow the same ownership
    rule — every job builds its own on its executing domain; nothing
    mutable is shared across domains but the job queue's atomic index
    and the disjoint result slots. When a job records, its summary
    carries the [alloc.job.*] gauges {!Backend.run} emits: the words
    the whole run allocated on that domain ([Gc.quick_stat] deltas). *)

type job = { label : string; problem : Problem.t; engine : Backend.t }

val job : ?label:string -> ?options:Options.t -> kind:Backend.kind -> Problem.t -> job
(** Convenience constructor; the default label is
    ["<problem.label>:<engine name>"]. *)

type outcome = {
  index : int;  (** position in the input array *)
  job : job;
  result : (Backend.Result.t, string) Stdlib.result;
      (** [Error] carries [Printexc.to_string] of whatever escaped *)
  wall_seconds : float;  (** this job alone, on its executing domain *)
}

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — 1 on a single-core host,
    which makes {!run} fall back to fully serial execution. *)

val run :
  ?domains:int ->
  ?wall_seconds:float ->
  ?max_newton_per_job:int ->
  ?per_job_telemetry:bool ->
  job array ->
  outcome array
(** Execute the jobs on at most [domains] domains (default
    {!default_domains}; clamped to the job count; [1] means no domain
    is spawned at all). The result array is index-aligned with the
    input. Never raises on job failure. *)
