(** Parameter sweeps over {!Backend.run}, executed in parallel on
    OCaml 5 domains, with per-job retry and watchdog degradation.

    A sweep is an array of jobs — each a (problem, engine) pair — run
    through {!Pool.map}. Results come back in job order regardless of
    scheduling, so a parallel sweep is sample-for-sample comparable
    with a serial one; with deterministic backends the waveforms are
    bitwise equal. A job that raises (a mis-built circuit, an
    off-lattice MPDE frequency, an injected crash) is captured as
    [Error] — with exception message, backtrace when
    [Printexc.backtrace_status], and the active escalation-ladder stage
    — and never poisons sibling jobs or the pool.

    Retry: under a {!Resilience.Retry.policy}, {e transient} failures
    (an escaped exception, or a budget-slice exhaustion) are retried up
    to [max_attempts] times with decorrelated-jitter backoff slept on
    the injectable {!Telemetry.Clock}. Deterministic non-convergence
    (stall, divergence) is not retried — re-running the identical
    computation reproduces it bitwise. When every regular attempt has
    failed and the policy allows it, a watchdog grants one final
    attempt at {!Options.degrade}d options (coarser grid, looser
    tolerance); the demotion is kept only if it rescues the job and is
    flagged in the outcome. The default policy is
    {!Resilience.Retry.none}: single attempt, exactly the historical
    behavior.

    Budgets: [wall_seconds] is a deadline for the whole sweep. Budget
    counters are mutable and deliberately *not* shared across domains
    (ticks would race), so instead each {e attempt} derives a fresh
    standalone {!Resilience.Budget.t} from the time left to the sweep
    deadline when it starts — chained (via [~parent]) onto any budget
    the job's own options already carried, which lives on the same
    domain. Late jobs and late retries therefore get small budgets and
    exhaust cleanly instead of overshooting the deadline; once the
    deadline has passed, no further retries or degraded attempts run.

    Fault injection: every attempt runs inside a
    {!Resilience.Faultinject.with_scope} keyed
    ["<label>#<attempt>"] (degraded attempt: ["<label>#d"]), so
    occurrence counters reset per attempt and plan filters can target a
    specific job, attempt, or the degraded pass.

    Telemetry: recorders are domain-local ({!Telemetry}), so worker
    domains record nothing unless [per_job_telemetry] is set, which
    enables a recorder around each job and attaches the per-solve
    summary to its result. Solver workspaces follow the same ownership
    rule — every job builds its own on its executing domain; nothing
    mutable is shared across domains but the job queue's atomic index
    and the disjoint result slots. *)

type job = { label : string; problem : Problem.t; engine : Backend.t }

val job : ?label:string -> ?options:Options.t -> kind:Backend.kind -> Problem.t -> job
(** Convenience constructor; the default label is
    ["<problem.label>:<engine name>"]. *)

type failure = {
  message : string;  (** [Printexc.to_string] of whatever escaped *)
  backtrace : string option;
      (** raw backtrace, when backtrace recording was on *)
  stage : string option;
      (** the escalation-ladder stage active when the exception
          escaped, when the ladder was running *)
}

val failure_to_string : failure -> string
(** Message plus the stage suffix, without the backtrace. *)

type outcome = {
  index : int;  (** position in the input array *)
  job : job;
  result : (Backend.Result.t, failure) Stdlib.result;
  wall_seconds : float;
      (** this job alone, on its executing domain, across all its
          attempts including backoff sleeps *)
  attempts : int;  (** regular attempts run (1 = no retry) *)
  degraded : bool;
      (** the result came from the watchdog's degraded attempt *)
  worker : int;
      (** {!Pool.worker_index} of the domain that ran the job (0 = the
          calling domain) *)
  trace : (float * Telemetry.snapshot) option;
      (** with [per_job_trace]: [(base, snapshot)] where [base] is the
          absolute {!Telemetry.Clock.wall} instant the snapshot's span
          timestamps are relative to — ready for
          {!Telemetry.Merge.write_chrome} *)
}

val retries : outcome -> int
(** [attempts - 1]. *)

val health_class : Diagnostics.Convergence.cls -> string
(** Plain class name for the introspection plane ("quadratic",
    "linear", …) — {!Diagnostics.Convergence.to_string} embeds rate or
    rescue-stage detail that event consumers would have to re-parse. *)

val published_verdict :
  (Backend.Result.t, failure) Stdlib.result ->
  degraded:bool ->
  string * string option
(** (status, health) of one outcome as published on the
    {!Observe.Publish} event stream. Status follows checkpoint-record
    semantics except that an unconverged [Ok] is ["failed"]. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — 1 on a single-core host,
    which makes {!run} fall back to fully serial execution. *)

val run :
  ?domains:int ->
  ?wall_seconds:float ->
  ?max_newton_per_job:int ->
  ?per_job_telemetry:bool ->
  ?per_job_trace:bool ->
  ?retry:Resilience.Retry.policy ->
  ?on_outcome:(outcome -> unit) ->
  job array ->
  outcome array
(** Execute the jobs on at most [domains] domains (default
    {!default_domains}; clamped to the job count; [1] means no domain
    is spawned at all). The result array is index-aligned with the
    input. Never raises on job failure.

    [per_job_trace] captures a full telemetry snapshot per job — all
    attempts, on the executing domain — into [outcome.trace] for
    cross-domain merging ({!Telemetry.Merge}). It also switches
    {!Pool.map} to [`Static] assignment so the job → worker placement
    (and hence the merged trace) is run-to-run deterministic. An
    already-live recorder on the executing domain is windowed, not
    replaced, so serial sweeps under [rfss --trace] compose.

    [on_outcome] fires once per job as it completes, {e on the
    executing domain} and concurrently across domains — consumers that
    aggregate (the checkpoint writer) must serialize internally. *)
