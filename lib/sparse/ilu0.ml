(* IKJ-variant ILU(0): in-place elimination restricted to the original
   pattern. Stored as a modified copy of the CSR values plus the position
   of each row's diagonal. *)

type t = { m : Csr.t; diag_pos : int array; pos : int array }

exception Zero_pivot of int

(* The elimination kernel, shared by [factor] and [refactor]: runs on
   [values] in place over the frozen pattern, using [pos] as the scatter
   workspace (all -1 on entry and exit). *)
let eliminate ~row_ptr ~col_idx ~values ~diag_pos ~pos =
  let n = Array.length diag_pos in
  for i = 0 to n - 1 do
    for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      pos.(col_idx.(p)) <- p
    done;
    let p = ref row_ptr.(i) in
    while !p < row_ptr.(i + 1) && col_idx.(!p) < i do
      let k = col_idx.(!p) in
      let pivot = values.(diag_pos.(k)) in
      if pivot = 0.0 then raise (Zero_pivot k);
      let factor = values.(!p) /. pivot in
      values.(!p) <- factor;
      (* Update the rest of row i over the pattern intersection. *)
      for q = diag_pos.(k) + 1 to row_ptr.(k + 1) - 1 do
        let j = col_idx.(q) in
        let dest = pos.(j) in
        if dest >= 0 then values.(dest) <- values.(dest) -. (factor *. values.(q))
      done;
      incr p
    done;
    if values.(diag_pos.(i)) = 0.0 then raise (Zero_pivot i);
    for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      pos.(col_idx.(p)) <- -1
    done
  done

let factor (a : Csr.t) =
  let n = a.Csr.rows in
  if a.Csr.cols <> n then invalid_arg "Ilu0.factor: matrix not square";
  Telemetry.span "ilu0.factor" @@ fun () ->
  Telemetry.count "ilu0.factors";
  Telemetry.gauge "ilu0.n" (float_of_int n);
  (* ILU(0) keeps the original pattern, so nnz doubles as the fill
     figure — fill ratio is 1.0 by construction. *)
  Telemetry.gauge "ilu0.nnz" (float_of_int (Csr.nnz a));
  let values = Array.copy a.Csr.values in
  let row_ptr = a.Csr.row_ptr and col_idx = a.Csr.col_idx in
  let diag_pos = Array.make n (-1) in
  for i = 0 to n - 1 do
    for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      if col_idx.(p) = i then diag_pos.(i) <- p
    done;
    if diag_pos.(i) < 0 then raise (Zero_pivot i)
  done;
  (* Scatter workspace: position of column j in current row, or -1. *)
  let pos = Array.make n (-1) in
  eliminate ~row_ptr ~col_idx ~values ~diag_pos ~pos;
  { m = { a with Csr.values }; diag_pos; pos }

let refactorable t (a : Csr.t) = t.m.Csr.col_idx == a.Csr.col_idx

let refactor t (a : Csr.t) =
  if not (refactorable t a) then
    invalid_arg "Ilu0.refactor: pattern changed since factor";
  Telemetry.count "ilu0.refactors";
  let values = t.m.Csr.values in
  Array.blit a.Csr.values 0 values 0 (Array.length values);
  eliminate ~row_ptr:t.m.Csr.row_ptr ~col_idx:t.m.Csr.col_idx ~values
    ~diag_pos:t.diag_pos ~pos:t.pos

let apply_into t r out =
  let n = t.m.Csr.rows in
  if Array.length r <> n || Array.length out <> n then
    invalid_arg "Ilu0.apply_into: dimension mismatch";
  Telemetry.count "ilu0.applies";
  let row_ptr = t.m.Csr.row_ptr and col_idx = t.m.Csr.col_idx in
  let values = t.m.Csr.values in
  if out != r then Array.blit r 0 out 0 n;
  (* Forward solve with unit-diagonal L (strictly-lower entries). *)
  for i = 0 to n - 1 do
    let s = ref out.(i) in
    let p = ref row_ptr.(i) in
    while !p < row_ptr.(i + 1) && col_idx.(!p) < i do
      s := !s -. (values.(!p) *. out.(col_idx.(!p)));
      incr p
    done;
    out.(i) <- !s
  done;
  (* Backward solve with U (diagonal and above). *)
  for i = n - 1 downto 0 do
    let s = ref out.(i) in
    for p = t.diag_pos.(i) + 1 to row_ptr.(i + 1) - 1 do
      s := !s -. (values.(p) *. out.(col_idx.(p)))
    done;
    out.(i) <- !s /. values.(t.diag_pos.(i))
  done

let apply t r =
  let y = Array.make (t.m.Csr.rows) 0.0 in
  apply_into t r y;
  y
