(** Zero-fill incomplete LU preconditioner on the CSR pattern.

    Produces factors with exactly the sparsity pattern of the input
    matrix; used as a general-purpose preconditioner for {!Gmres} and
    {!Bicgstab}. *)

type t

exception Zero_pivot of int

val factor : Csr.t -> t
(** @raise Zero_pivot when a diagonal entry is absent or vanishes. *)

val refactorable : t -> Csr.t -> bool
(** Whether [a] shares its pattern arrays (physically) with the matrix
    this preconditioner was factored from. *)

val refactor : t -> Csr.t -> unit
(** Numeric-only re-elimination in place on the frozen pattern: copies
    [a]'s values into the stored factors and re-runs the ILU(0)
    elimination without allocating. Equivalent to [factor a] when
    [refactorable t a].
    @raise Invalid_argument when the pattern differs.
    @raise Zero_pivot as {!factor}. *)

val apply : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [apply p r] approximates [a⁻¹ r] by [U⁻¹ (L⁻¹ r)]. *)

val apply_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit
(** [apply_into p r out] writes the preconditioned vector into [out]
    (every entry overwritten; [out == r] is allowed). *)
