(** Immutable compressed-sparse-row matrices.

    Column indices within a row are sorted and unique. Built from a
    {!Coo.t} builder (duplicates summed) or from dense matrices. *)

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length [rows + 1] *)
  col_idx : int array;  (** length [nnz], sorted within each row *)
  values : float array;  (** length [nnz] *)
}

val of_coo : Coo.t -> t
(** Sums duplicate triplets; drops entries that cancel to exactly [0.]
    only if they were never inserted (explicit zeros from summation are
    kept so patterns remain stable across Newton iterations). *)

val refresh_from_coo : t -> Coo.t -> bool
(** Numeric phase of the symbolic/numeric assembly split:
    [refresh_from_coo m coo] rewrites [m.values] in place from the
    triplet stream without touching the frozen pattern
    ([row_ptr]/[col_idx]). Duplicates are summed in stream order —
    exactly the order {!of_coo} uses — so a refresh from the stream
    that built [m] is bitwise identical to rebuilding from scratch.
    Pattern slots the stream never touches are left at [0.].

    Returns [false] (leaving [m.values] unspecified) when a triplet
    falls outside the pattern or the dimensions disagree; the caller
    must then rebuild with {!of_coo}. *)

val of_dense : ?drop_tol:float -> Linalg.Mat.t -> t
(** Entries with magnitude [<= drop_tol] (default [0.]) are dropped. *)

val to_dense : t -> Linalg.Mat.t

val nnz : t -> int

val get : t -> int -> int -> float
(** [get m i j] is the stored entry or [0.]; binary search within row. *)

val mul_vec : t -> Linalg.Vec.t -> Linalg.Vec.t

val mul_vec_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit

val mul_vec_ba_into : t -> Linalg.Kernel.vec -> Linalg.Kernel.vec -> unit
(** [mul_vec_ba_into m x y] computes [y <- m x] on Bigarray vectors via
    the unchecked {!Linalg.Kernel.spmv} hot loop; accumulation order
    (and hence every bit of the result) matches {!mul_vec_into}. *)

val tmul_vec : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Transposed product [mᵀ x]. *)

val transpose : t -> t

val diag : t -> Linalg.Vec.t
(** Main diagonal (zeros where absent). *)

val map_values : (float -> float) -> t -> t

val scale : float -> t -> t

val add : t -> t -> t
(** Entry-wise sum; patterns are merged. *)

val identity : int -> t

val iter_row : t -> int -> (int -> float -> unit) -> unit

val residual_norm : t -> Linalg.Vec.t -> Linalg.Vec.t -> float
(** [residual_norm a x b] is [‖b − a·x‖₂]. *)
