(** General sparse LU factorization (left-looking Gilbert–Peierls with
    threshold partial pivoting), suitable for MNA and small-to-medium
    MPDE Jacobians.

    Factors square [a] as [P a = L U] with unit-diagonal [L]. Pivoting
    is threshold-based: within each column a candidate pivot is accepted
    if its magnitude is at least [pivot_threshold] times the largest
    candidate, preferring the diagonal entry for sparsity. *)

type t

exception Singular of int
(** Raised with the offending column when no acceptable pivot exists. *)

val factor : ?pivot_threshold:float -> Csr.t -> t
(** [factor a] factors square [a]. [pivot_threshold] in (0, 1], default
    [0.1]. @raise Singular when structurally or numerically singular. *)

val refactorable : t -> Csr.t -> bool
(** Whether {!refactor} may replay this factorization for [a]: the
    matrix must share its pattern arrays (physically) with the matrix
    originally factored, and the stored structure must be complete
    ([factor] drops L entries whose value is exactly [0.], losing the
    symbolic information a replay needs). *)

val refactor : t -> Csr.t -> unit
(** Numeric-only refactorization on the frozen symbolic structure:
    reuses the reach sets, fill pattern, and pivot order from
    {!factor} and recomputes [L]/[U] values in place — no DFS, no
    allocation growth. Refactoring the originally factored values is
    bitwise identical to {!factor}. With changed values the fixed
    pivot order no longer tracks the threshold-pivoting choice, so
    accuracy can degrade for strongly changed matrices (the standard
    KLU-style refactor trade-off).

    @raise Invalid_argument when [not (refactorable t a)].
    @raise Singular on a zero or non-finite pivot. *)

val solve : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [solve lu b] returns [x] with [a x = b]. *)

val solve_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit

val lu_nnz : t -> int * int
(** [(nnz L, nnz U)] — fill-in diagnostic for the ablation benches. *)

val size : t -> int
