module Vec = Linalg.Vec
module Kernel = Linalg.Kernel

type operator = Vec.t -> Vec.t
type ba_operator = Kernel.vec -> Kernel.vec

type stop_reason =
  | Tolerance
  | Happy_breakdown
  | Poisoned
  | Budget_exhausted
  | Max_iterations
  | Scalar_breakdown

let stop_reason_to_string = function
  | Tolerance -> "tolerance"
  | Happy_breakdown -> "happy-breakdown"
  | Poisoned -> "poisoned"
  | Budget_exhausted -> "budget-exhausted"
  | Max_iterations -> "max-iterations"
  | Scalar_breakdown -> "scalar-breakdown"

type result = {
  x : Vec.t;
  converged : bool;
  iterations : int;
  residual_norm : float;
  restarts : int;
  stop : stop_reason;
}

let identity v = Array.copy v

(* Preallocated GMRES scratch: the Krylov basis, the column-wise
   Hessenberg, the Givens rotation coefficients, and the residual /
   update vectors. Sized for a (restart, n) pair and reused across
   restart cycles, Newton iterations, and whole solves — nothing is
   allocated inside the restart loop when one is supplied.

   The O(n) vectors are Float64 Bigarrays driven by the {!Kernel}
   hot loops; the O(restart) rotation machinery stays in plain float
   arrays. After a clean solve the workspace additionally retains the
   final Krylov cycle ([rec_k] basis columns, their rotated Hessenberg
   R and the Givens coefficients) so the next call on this workspace
   can seed itself from a projection of the previous subspace. *)
type workspace = {
  ws_n : int;
  ws_restart : int;
  basis : Kernel.vec array;  (* restart+1 vectors of length n *)
  hcols : Vec.t array;  (* Hessenberg columns; hcols.(j) has length j+2 *)
  cs : Vec.t;
  sn : Vec.t;
  g : Vec.t;  (* restart+1 *)
  y : Vec.t;
  r : Kernel.vec;
  update : Kernel.vec;
  xv : Kernel.vec;  (* the iterate *)
  bv : Kernel.vec;  (* right-hand side staged once per call *)
  rec_g : Vec.t;  (* recycle projection scratch, restart+1 *)
  conv_arr : float array;  (* float-array operator boundary staging *)
  conv_vec : Kernel.vec;
  mutable rec_k : int;  (* retained basis columns from the last clean cycle *)
}

let workspace ~restart ~n =
  let restart = max restart 1 in
  {
    ws_n = n;
    ws_restart = restart;
    basis = Array.init (restart + 1) (fun _ -> Kernel.create n);
    hcols = Array.init restart (fun j -> Array.make (j + 2) 0.0);
    cs = Array.make restart 0.0;
    sn = Array.make restart 0.0;
    g = Array.make (restart + 1) 0.0;
    y = Array.make restart 0.0;
    r = Kernel.create n;
    update = Kernel.create n;
    xv = Kernel.create n;
    bv = Kernel.create n;
    rec_g = Array.make (restart + 1) 0.0;
    conv_arr = Array.make n 0.0;
    conv_vec = Kernel.create n;
    rec_k = 0;
  }

let forget_recycle ws = ws.rec_k <- 0

(* A recycled seed must shrink the initial residual by at least this
   factor, or the cycle falls back to a cold start — the retained
   subspace has drifted too far from the current operator to help. *)
let recycle_accept = 0.9

(* Seed the iterate from the retained Krylov cycle: project the new
   right-hand side onto the stored orthonormal basis, reuse the stored
   Givens rotations and triangular R to solve the least-squares
   problem in O(k²), and map through the (current) preconditioner.
   Leaves [ws.xv] holding [precond (V y)]; the caller validates the
   seed by the first true residual. *)
let recycle_seed ws ~precond =
  let k = ws.rec_k in
  let gb = ws.rec_g in
  for i = 0 to k do
    gb.(i) <- Kernel.dot ws.basis.(i) ws.bv
  done;
  for i = 0 to k - 1 do
    let t = (ws.cs.(i) *. gb.(i)) +. (ws.sn.(i) *. gb.(i + 1)) in
    gb.(i + 1) <- (-.ws.sn.(i) *. gb.(i)) +. (ws.cs.(i) *. gb.(i + 1));
    gb.(i) <- t
  done;
  let y = ws.y in
  for i = k - 1 downto 0 do
    let s = ref gb.(i) in
    for j = i + 1 to k - 1 do
      s := !s -. (ws.hcols.(j).(i) *. y.(j))
    done;
    y.(i) <- (if Float.abs ws.hcols.(i).(i) > 0.0 then !s /. ws.hcols.(i).(i) else 0.0)
  done;
  Kernel.fill ws.update 0.0;
  for j = 0 to k - 1 do
    Kernel.axpy y.(j) ws.basis.(j) ws.update
  done;
  Kernel.blit (precond ws.update) ws.xv

(* Restarted GMRES with right preconditioning and Givens-rotation QR of
   the Hessenberg matrix, on Bigarray vectors.

   Breakdown handling: a vanishing Hessenberg subdiagonal ("happy
   breakdown" — the Krylov space became invariant) finishes the inner
   loop with the current, now exact, iterate. A non-finite candidate
   basis vector (an operator or preconditioner that produced NaN/Inf)
   terminates the inner loop *before* the poisoned column enters the
   Givens QR; if no finite progress was made at all the whole solve
   aborts rather than looping on an unchanged iterate.

   Buffer contract: [op] and [precond] may return a shared internal
   buffer — every value GMRES keeps across calls is copied into its own
   (workspace) storage before the next operator application.

   [recycle] (off by default, ignored when [x0] is given) seeds the
   first cycle from the workspace's retained previous Krylov subspace;
   the seed is discarded — a plain cold start, at the cost of one extra
   operator and preconditioner application — unless it shrinks the
   initial residual below [recycle_accept]·‖b‖. *)
let gmres_ba ?(restart = 50) ?(max_iter = 500) ?(tol = 1e-10) ?precond ?budget
    ?x0 ?workspace:ws ?(recycle = false) op b =
  Telemetry.span "gmres" @@ fun () ->
  let n = Array.length b in
  if Resilience.Faultinject.gmres_stall () then begin
    (* Injected stagnation: report a zero-progress stall so callers
       escalate through exactly the path a real one would take. *)
    Telemetry.count "gmres.stalls";
    let x =
      match x0 with Some x0 -> Array.copy x0 | None -> Array.make n 0.0
    in
    {
      x;
      converged = false;
      iterations = 0;
      residual_norm = infinity;
      restarts = 0;
      stop = Max_iterations;
    }
  end
  else
  let ws =
    match ws with
    | Some w when w.ws_n = n && w.ws_restart >= restart -> w
    | _ -> workspace ~restart ~n
  in
  let precond =
    match precond with
    | Some p -> p
    | None ->
        (* Identity through the staging buffer: the caller may mutate
           the returned vector, so never hand back the argument. *)
        fun v ->
          Kernel.blit v ws.conv_vec;
          ws.conv_vec
  in
  let x = ws.xv in
  Kernel.blit_from_array b ws.bv;
  let bv = ws.bv in
  (match x0 with
  | Some x0 -> Kernel.blit_from_array x0 x
  | None -> Kernel.fill x 0.0);
  let bnorm = Kernel.nrm2 bv in
  let target = if bnorm > 0.0 then tol *. bnorm else tol in
  (* Recycled seed: tentative until the first residual validates it. *)
  let seed_pending = ref false in
  if recycle && x0 = None && ws.rec_k > 0 && bnorm > 0.0 then begin
    recycle_seed ws ~precond;
    seed_pending := true
  end;
  let cold_head () = x0 = None && not !seed_pending in
  let total_iters = ref 0 in
  let final_res = ref infinity in
  let converged = ref false in
  let restarts = ref 0 in
  let stop = ref Max_iterations in
  let last_k = ref 0 in
  let poisoned_solve = ref false in
  (try
     while (not !converged) && !total_iters < max_iter do
       (match budget with
       | Some bu when Resilience.Budget.exhausted bu <> None ->
           stop := Budget_exhausted;
           raise Exit
       | _ -> ());
       incr restarts;
       Telemetry.count "gmres.restarts";
       let r = ws.r in
       if !total_iters = 0 && cold_head () then Kernel.blit bv r
       else begin
         let ax = op x in
         Kernel.sub_into bv ax r
       end;
       let beta = ref (Kernel.nrm2 r) in
       if !seed_pending then begin
         (* Validate the recycled seed by its true residual: keep it
            only when the projection genuinely shrank the residual. *)
         if Float.is_finite !beta && !beta < recycle_accept *. bnorm then
           Telemetry.count "gmres.recycle_seeded"
         else begin
           Telemetry.count "gmres.recycle_rejected";
           Kernel.fill x 0.0;
           Kernel.blit bv r;
           beta := bnorm
         end;
         seed_pending := false
       end;
       let beta = !beta in
       final_res := beta;
       (* Per-restart residual curve: the true (unpreconditioned-side)
          residual at the head of each restart cycle. *)
       Telemetry.observe "gmres.restart_residual" beta;
       if not (Float.is_finite beta) then begin
         stop := Poisoned;
         raise Exit
       end;
       if beta <= target then begin
         converged := true;
         raise Exit
       end;
       let m = min restart (max_iter - !total_iters) in
       let basis = ws.basis in
       let inv_beta = 1.0 /. beta in
       Kernel.scale_into inv_beta r basis.(0);
       (* Hessenberg stored column-wise: h.(j) has length j+2. *)
       let h = ws.hcols in
       let cs = ws.cs and sn = ws.sn in
       let g = ws.g in
       g.(0) <- beta;
       let k = ref 0 in
       let inner_done = ref false in
       let poisoned = ref false in
       while (not !inner_done) && !k < m do
         let j = !k in
         let w = op (precond basis.(j)) in
         let hj = h.(j) in
         (* Modified Gram-Schmidt ([w] may be the operator's shared
            buffer — mutating it in place is fine, the normalized copy
            below is what survives the next operator call). *)
         for i = 0 to j do
           hj.(i) <- Kernel.dot basis.(i) w;
           Kernel.axpy (-.hj.(i)) basis.(i) w
         done;
         hj.(j + 1) <- Kernel.nrm2 w;
         if not (Float.is_finite hj.(j + 1)) then begin
           (* Poisoned column: solve with the j columns accepted so far. *)
           poisoned := true;
           stop := Poisoned;
           inner_done := true
         end
         else begin
           let happy = hj.(j + 1) <= 1e-300 in
           let bj1 = basis.(j + 1) in
           if happy then Kernel.fill bj1 0.0
           else begin
             let inv = 1.0 /. hj.(j + 1) in
             Kernel.scale_into inv w bj1
           end;
           (* Apply previous Givens rotations to the new column. *)
           for i = 0 to j - 1 do
             let t = (cs.(i) *. hj.(i)) +. (sn.(i) *. hj.(i + 1)) in
             hj.(i + 1) <- (-.sn.(i) *. hj.(i)) +. (cs.(i) *. hj.(i + 1));
             hj.(i) <- t
           done;
           (* New rotation to annihilate hj.(j+1). *)
           let denom = Float.hypot hj.(j) hj.(j + 1) in
           if denom > 0.0 then begin
             cs.(j) <- hj.(j) /. denom;
             sn.(j) <- hj.(j + 1) /. denom
           end
           else begin
             cs.(j) <- 1.0;
             sn.(j) <- 0.0
           end;
           hj.(j) <- denom;
           hj.(j + 1) <- 0.0;
           g.(j + 1) <- -.sn.(j) *. g.(j);
           g.(j) <- cs.(j) *. g.(j);
           incr total_iters;
           (match budget with
           | Some bu -> (
               try Resilience.Budget.tick_linear bu
               with Resilience.Budget.Exhausted _ ->
                 stop := Budget_exhausted;
                 inner_done := true)
           | None -> ());
           incr k;
           final_res := Float.abs g.(!k);
           if !final_res <= target then inner_done := true;
           if happy then begin
             (* Invariant Krylov subspace: the least-squares solution is
                exact; continuing would divide by the zero subdiagonal. *)
             converged := Float.abs g.(!k) <= Float.max target (1e-12 *. beta);
             stop := Happy_breakdown;
             inner_done := true
           end
         end
       done;
       if !poisoned then poisoned_solve := true;
       if !poisoned && !k = 0 then
         (* No finite direction at all: updating x is impossible and the
            next restart would recompute the identical poisoned column —
            an infinite loop in the old code. *)
         raise Exit;
       (* Solve the triangular system for the Krylov coefficients. *)
       let k = !k in
       last_k := k;
       let y = ws.y in
       for i = k - 1 downto 0 do
         let s = ref g.(i) in
         for j = i + 1 to k - 1 do
           s := !s -. (h.(j).(i) *. y.(j))
         done;
         (* A zero pivot only arises on exact breakdown; dropping the
            direction is safer than dividing by zero. *)
         y.(i) <- (if Float.abs h.(i).(i) > 0.0 then !s /. h.(i).(i) else 0.0)
       done;
       let update = ws.update in
       Kernel.fill update 0.0;
       for j = 0 to k - 1 do
         Kernel.axpy y.(j) basis.(j) update
       done;
       Kernel.add_ip x (precond update);
       if !final_res <= target then converged := true;
       if !poisoned then raise Exit;
       (match budget with
       | Some bu when Resilience.Budget.exhausted bu <> None ->
           stop := Budget_exhausted;
           raise Exit
       | _ -> ())
     done
   with Exit -> ());
  (* Retain the final cycle for the next call's recycled seed — unless
     it was poisoned, or this call never built one (keep whatever the
     workspace already holds). *)
  if !poisoned_solve || !stop = Poisoned then ws.rec_k <- 0
  else if !last_k > 0 then ws.rec_k <- !last_k;
  let stop = if !converged && !stop <> Happy_breakdown then Tolerance else !stop in
  Telemetry.count ~by:!total_iters "gmres.iterations";
  if not !converged then Telemetry.count "gmres.stalls";
  Telemetry.gauge "gmres.final_relres"
    (if bnorm > 0.0 then !final_res /. bnorm else !final_res);
  Telemetry.gauge "gmres.last_restarts" (float_of_int !restarts);
  (match stop with
  | Happy_breakdown -> Telemetry.count "gmres.happy_breakdowns"
  | Poisoned -> Telemetry.count "gmres.poisoned_columns"
  | Budget_exhausted -> Telemetry.count "gmres.budget_stops"
  | Max_iterations when not !converged -> Telemetry.count "gmres.max_iter_stops"
  | _ -> ());
  {
    x = Kernel.to_array x;
    converged = !converged;
    iterations = !total_iters;
    residual_norm = !final_res;
    restarts = !restarts;
    stop;
  }

(* Float-array front end: stages the operator and preconditioner across
   the Bigarray core through the workspace's boundary buffers. The
   accumulation order of every float operation is preserved, so the
   results are bitwise identical to running the kernels on
   [float array] directly. *)
let gmres ?(restart = 50) ?(max_iter = 500) ?(tol = 1e-10) ?(precond = identity)
    ?budget ?x0 ?workspace:ws ?recycle op b =
  let n = Array.length b in
  let ws =
    match ws with
    | Some w when w.ws_n = n && w.ws_restart >= restart -> w
    | _ -> workspace ~restart ~n
  in
  let stage f v =
    Kernel.blit_to_array v ws.conv_arr;
    let out = f ws.conv_arr in
    Kernel.blit_from_array out ws.conv_vec;
    ws.conv_vec
  in
  gmres_ba ~restart ~max_iter ~tol ~precond:(stage precond) ?budget ?x0
    ~workspace:ws ?recycle (stage op) b

let bicgstab ?(max_iter = 500) ?(tol = 1e-10) ?(precond = identity) ?x0 op b =
  let n = Array.length b in
  let x = match x0 with Some x0 -> Array.copy x0 | None -> Array.make n 0.0 in
  let r = if x0 = None then Array.copy b else Vec.sub b (op x) in
  let r0 = Array.copy r in
  let bnorm = Vec.norm2 b in
  let target = if bnorm > 0.0 then tol *. bnorm else tol in
  let rho = ref 1.0 and alpha = ref 1.0 and omega = ref 1.0 in
  let v = Array.make n 0.0 and p = Array.make n 0.0 in
  let iters = ref 0 in
  let res = ref (Vec.norm2 r) in
  let broke_down = ref false in
  while !res > target && !iters < max_iter && not !broke_down do
    let rho_new = Vec.dot r0 r in
    if Float.abs rho_new < 1e-300 then broke_down := true
    else begin
      let beta = rho_new /. !rho *. (!alpha /. !omega) in
      rho := rho_new;
      (* p = r + beta (p - omega v) *)
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. (p.(i) -. (!omega *. v.(i))))
      done;
      let phat = precond p in
      let v' = op phat in
      Array.blit v' 0 v 0 n;
      let denom = Vec.dot r0 v in
      if Float.abs denom < 1e-300 then broke_down := true
      else begin
        alpha := rho_new /. denom;
        let s = Array.copy r in
        Vec.axpy (-. !alpha) v s;
        if Vec.norm2 s <= target then begin
          Vec.axpy 1.0 (Vec.scale !alpha phat) x;
          Array.blit s 0 r 0 n;
          res := Vec.norm2 r
        end
        else begin
          let shat = precond s in
          let t = op shat in
          let tt = Vec.dot t t in
          if tt < 1e-300 then broke_down := true
          else begin
            omega := Vec.dot t s /. tt;
            for i = 0 to n - 1 do
              x.(i) <- x.(i) +. (!alpha *. phat.(i)) +. (!omega *. shat.(i));
              r.(i) <- s.(i) -. (!omega *. t.(i))
            done;
            res := Vec.norm2 r;
            if Float.abs !omega < 1e-300 then broke_down := true
          end
        end
      end
    end;
    incr iters
  done;
  let converged = !res <= target in
  {
    x;
    converged;
    iterations = !iters;
    residual_norm = !res;
    restarts = 0;
    stop =
      (if converged then Tolerance
       else if !broke_down then Scalar_breakdown
       else Max_iterations);
  }

let csr_operator m v = Csr.mul_vec m v
