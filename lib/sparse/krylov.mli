(** Matrix-free Krylov solvers: restarted GMRES and BiCGSTAB.

    Both accept the operator and the (right) preconditioner as closures
    so they can be used with explicit CSR matrices, with the
    structure-exploiting MPDE block sweep, or fully matrix-free. *)

type operator = Linalg.Vec.t -> Linalg.Vec.t

type stop_reason =
  | Tolerance  (** residual met the convergence target *)
  | Happy_breakdown  (** Krylov subspace became invariant (exact solve) *)
  | Poisoned  (** operator/preconditioner produced a non-finite vector *)
  | Budget_exhausted
  | Max_iterations
  | Scalar_breakdown  (** BiCGSTAB scalar recurrence collapsed *)

val stop_reason_to_string : stop_reason -> string

type result = {
  x : Linalg.Vec.t;
  converged : bool;
  iterations : int;  (** total inner iterations performed *)
  residual_norm : float;  (** final preconditioned-system residual norm *)
  restarts : int;  (** GMRES restart cycles entered (0 for BiCGSTAB) *)
  stop : stop_reason;  (** why the iteration ended *)
}

type workspace
(** Preallocated GMRES scratch (Krylov basis, Hessenberg columns,
    rotation coefficients, residual/update vectors) for a fixed
    [(restart, n)] shape. Reusing one across calls removes every
    allocation inside the restart loop. A workspace belongs to one
    solve stream on one domain — it must not be shared concurrently. *)

val workspace : restart:int -> n:int -> workspace
(** Allocate scratch for systems of size [n] solved with up to
    [restart] inner iterations per cycle. *)

val gmres :
  ?restart:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?precond:operator ->
  ?budget:Resilience.Budget.t ->
  ?x0:Linalg.Vec.t ->
  ?workspace:workspace ->
  operator ->
  Linalg.Vec.t ->
  result
(** [gmres op b] solves [op x = b] with right preconditioning:
    the Krylov space is built for [op ∘ precond] and the returned [x]
    is [precond y]. Defaults: [restart = 50], [max_iter = 500],
    [tol = 1e-10] (relative to [‖b‖], absolute when [b = 0]).

    Robustness: happy breakdown (zero Hessenberg subdiagonal) returns
    the exact iterate instead of dividing by zero; a non-finite basis
    vector terminates the sweep with the last finite iterate instead of
    polluting the Givens QR with NaNs; [budget], when given, is ticked
    per inner iteration and checked at restarts, terminating with
    [converged = false] (never raising) when it runs out.

    [workspace] supplies preallocated scratch (ignored and rebuilt
    locally if its shape does not cover [(restart, n)]). Buffer
    contract: [op] and [precond] may return a shared internal buffer —
    GMRES copies anything it keeps before the next call, and may mutate
    the returned vector in place. *)

val bicgstab :
  ?max_iter:int ->
  ?tol:float ->
  ?precond:operator ->
  ?x0:Linalg.Vec.t ->
  operator ->
  Linalg.Vec.t ->
  result

val csr_operator : Csr.t -> operator
