(** Matrix-free Krylov solvers: restarted GMRES and BiCGSTAB.

    Both accept the operator and the (right) preconditioner as closures
    so they can be used with explicit CSR matrices, with the
    structure-exploiting MPDE block sweep, or fully matrix-free. *)

type operator = Linalg.Vec.t -> Linalg.Vec.t

type ba_operator = Linalg.Kernel.vec -> Linalg.Kernel.vec
(** Operator over the unboxed Float64 {!Linalg.Kernel.vec}s the GMRES
    core runs on. The {!gmres_ba} hot path avoids the
    [float array] staging copies of {!gmres}. *)

type stop_reason =
  | Tolerance  (** residual met the convergence target *)
  | Happy_breakdown  (** Krylov subspace became invariant (exact solve) *)
  | Poisoned  (** operator/preconditioner produced a non-finite vector *)
  | Budget_exhausted
  | Max_iterations
  | Scalar_breakdown  (** BiCGSTAB scalar recurrence collapsed *)

val stop_reason_to_string : stop_reason -> string

type result = {
  x : Linalg.Vec.t;
  converged : bool;
  iterations : int;  (** total inner iterations performed *)
  residual_norm : float;  (** final preconditioned-system residual norm *)
  restarts : int;  (** GMRES restart cycles entered (0 for BiCGSTAB) *)
  stop : stop_reason;  (** why the iteration ended *)
}

type workspace
(** Preallocated GMRES scratch (Krylov basis, Hessenberg columns,
    rotation coefficients, residual/update vectors) for a fixed
    [(restart, n)] shape. Reusing one across calls removes every
    allocation inside the restart loop. A workspace belongs to one
    solve stream on one domain — it must not be shared concurrently.

    After a clean solve the workspace also retains the final Krylov
    cycle (basis columns plus the rotated Hessenberg), which
    {!gmres_ba} with [~recycle:true] uses to seed the next solve on a
    nearby operator. *)

val workspace : restart:int -> n:int -> workspace
(** Allocate scratch for systems of size [n] solved with up to
    [restart] inner iterations per cycle. *)

val forget_recycle : workspace -> unit
(** Drop the retained Krylov cycle so the next recycled call starts
    cold. Call when the workspace is handed to an unrelated operator
    sequence (a new solve job). *)

val gmres :
  ?restart:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?precond:operator ->
  ?budget:Resilience.Budget.t ->
  ?x0:Linalg.Vec.t ->
  ?workspace:workspace ->
  ?recycle:bool ->
  operator ->
  Linalg.Vec.t ->
  result
(** [gmres op b] solves [op x = b] with right preconditioning:
    the Krylov space is built for [op ∘ precond] and the returned [x]
    is [precond y]. Defaults: [restart = 50], [max_iter = 500],
    [tol = 1e-10] (relative to [‖b‖], absolute when [b = 0]).

    Robustness: happy breakdown (zero Hessenberg subdiagonal) returns
    the exact iterate instead of dividing by zero; a non-finite basis
    vector terminates the sweep with the last finite iterate instead of
    polluting the Givens QR with NaNs; [budget], when given, is ticked
    per inner iteration and checked at restarts, terminating with
    [converged = false] (never raising) when it runs out.

    [workspace] supplies preallocated scratch (ignored and rebuilt
    locally if its shape does not cover [(restart, n)]). Buffer
    contract: [op] and [precond] may return a shared internal buffer —
    GMRES copies anything it keeps before the next call, and may mutate
    the returned vector in place.

    This entry point stages the [float array] closures across the
    Bigarray core of {!gmres_ba} with the accumulation order of every
    float operation preserved — results are bitwise identical to the
    historical [float array] implementation. *)

val gmres_ba :
  ?restart:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?precond:ba_operator ->
  ?budget:Resilience.Budget.t ->
  ?x0:Linalg.Vec.t ->
  ?workspace:workspace ->
  ?recycle:bool ->
  ba_operator ->
  Linalg.Vec.t ->
  result
(** {!gmres} with the operator and preconditioner over
    {!Linalg.Kernel.vec} — the allocation- and staging-free hot path.
    Same semantics and defaults as {!gmres}.

    [recycle] (default [false], ignored when [x0] is given) seeds the
    first cycle from the workspace's retained previous Krylov subspace:
    the new right-hand side is projected onto the stored orthonormal
    basis and solved against the stored triangular factor in O(k²) plus
    k+1 dot products. The seed is validated against the true residual
    and discarded — falling back to a cold start at the cost of one
    extra operator and preconditioner application — unless it shrinks
    the initial residual below 0.9·‖b‖ (counted as
    [gmres.recycle_seeded] / [gmres.recycle_rejected]). With
    [recycle = false] the iteration is bitwise identical to a fresh
    workspace. *)

val bicgstab :
  ?max_iter:int ->
  ?tol:float ->
  ?precond:operator ->
  ?x0:Linalg.Vec.t ->
  operator ->
  Linalg.Vec.t ->
  result

val csr_operator : Csr.t -> operator
