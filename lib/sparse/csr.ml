type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let nnz m = m.row_ptr.(m.rows)

(* Count-sort triplets by row, then sort each row segment by column and
   sum duplicates. *)
let of_coo coo =
  let rows = Coo.rows coo and cols = Coo.cols coo in
  let counts = Array.make (rows + 1) 0 in
  Coo.iter (fun i _ _ -> counts.(i + 1) <- counts.(i + 1) + 1) coo;
  for i = 1 to rows do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  let n = counts.(rows) in
  let tmp_col = Array.make n 0 and tmp_val = Array.make n 0.0 in
  let cursor = Array.copy counts in
  Coo.iter
    (fun i j v ->
      let k = cursor.(i) in
      tmp_col.(k) <- j;
      tmp_val.(k) <- v;
      cursor.(i) <- k + 1)
    coo;
  (* Sort each row segment by column index (insertion sort: rows are short). *)
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 and values = Array.make n 0.0 in
  let out = ref 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i) <- !out;
    let lo = counts.(i) and hi = cursor.(i) in
    for k = lo + 1 to hi - 1 do
      let cj = tmp_col.(k) and cv = tmp_val.(k) in
      let p = ref (k - 1) in
      while !p >= lo && tmp_col.(!p) > cj do
        tmp_col.(!p + 1) <- tmp_col.(!p);
        tmp_val.(!p + 1) <- tmp_val.(!p);
        decr p
      done;
      tmp_col.(!p + 1) <- cj;
      tmp_val.(!p + 1) <- cv
    done;
    (* Merge duplicates. *)
    let k = ref lo in
    while !k < hi do
      let j = tmp_col.(!k) in
      let s = ref 0.0 in
      while !k < hi && tmp_col.(!k) = j do
        s := !s +. tmp_val.(!k);
        incr k
      done;
      col_idx.(!out) <- j;
      values.(!out) <- !s;
      incr out
    done
  done;
  row_ptr.(rows) <- !out;
  if !out = n then { rows; cols; row_ptr; col_idx; values }
  else
    {
      rows;
      cols;
      row_ptr;
      col_idx = Array.sub col_idx 0 !out;
      values = Array.sub values 0 !out;
    }

(* Numeric phase of the symbolic/numeric split: re-stamp a frozen
   pattern from a fresh triplet stream. Each triplet is scatter-added
   via binary search on the row's sorted column indices, so entries
   that [of_coo] merged in insertion order are summed in the same
   order here — the float results are bitwise identical. *)
let refresh_from_coo m coo =
  if Coo.rows coo <> m.rows || Coo.cols coo <> m.cols then false
  else begin
    Array.fill m.values 0 (Array.length m.values) 0.0;
    let ok = ref true in
    (try
       Coo.iter
         (fun i j v ->
           let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
           let found = ref false in
           while !lo <= !hi do
             let mid = (!lo + !hi) / 2 in
             let c = m.col_idx.(mid) in
             if c = j then begin
               m.values.(mid) <- m.values.(mid) +. v;
               found := true;
               lo := !hi + 1
             end
             else if c < j then lo := mid + 1
             else hi := mid - 1
           done;
           if not !found then begin
             (* Out-of-pattern triplet: the sparsity changed since the
                symbolic phase. The caller must rebuild with [of_coo];
                [m.values] is left in an unspecified state. *)
             ok := false;
             raise Exit
           end)
         coo
     with Exit -> ());
    !ok
  end

let of_dense ?(drop_tol = 0.0) m =
  let rows, cols = Linalg.Mat.dims m in
  let coo = Coo.create ~capacity:(rows * 4) rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = Linalg.Mat.get m i j in
      if Float.abs v > drop_tol then Coo.add coo i j v
    done
  done;
  of_coo coo

let to_dense m =
  let d = Linalg.Mat.create m.rows m.cols in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Linalg.Mat.set d i m.col_idx.(k) m.values.(k)
    done
  done;
  d

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Csr.get: index out of range";
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mul_vec_into m x y =
  if Array.length x <> m.cols || Array.length y <> m.rows then
    invalid_arg "Csr.mul_vec_into: dimension mismatch";
  for i = 0 to m.rows - 1 do
    let s = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      s := !s +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(i) <- !s
  done

let mul_vec m x =
  let y = Array.make m.rows 0.0 in
  mul_vec_into m x y;
  y

let mul_vec_ba_into m x y =
  if Linalg.Kernel.dim x <> m.cols || Linalg.Kernel.dim y <> m.rows then
    invalid_arg "Csr.mul_vec_ba_into: dimension mismatch";
  Linalg.Kernel.spmv ~rows:m.rows ~row_ptr:m.row_ptr ~col_idx:m.col_idx
    ~values:m.values x y

let tmul_vec m x =
  if Array.length x <> m.rows then invalid_arg "Csr.tmul_vec: dimension mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        let j = m.col_idx.(k) in
        y.(j) <- y.(j) +. (m.values.(k) *. xi)
      done
  done;
  y

let transpose m =
  let n = nnz m in
  let row_ptr = Array.make (m.cols + 1) 0 in
  for k = 0 to n - 1 do
    row_ptr.(m.col_idx.(k) + 1) <- row_ptr.(m.col_idx.(k) + 1) + 1
  done;
  for j = 1 to m.cols do
    row_ptr.(j) <- row_ptr.(j) + row_ptr.(j - 1)
  done;
  let col_idx = Array.make n 0 and values = Array.make n 0.0 in
  let cursor = Array.copy row_ptr in
  for i = 0 to m.rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j = m.col_idx.(k) in
      let p = cursor.(j) in
      col_idx.(p) <- i;
      values.(p) <- m.values.(k);
      cursor.(j) <- p + 1
    done
  done;
  { rows = m.cols; cols = m.rows; row_ptr; col_idx; values }

let diag m =
  let d = Array.make (min m.rows m.cols) 0.0 in
  for i = 0 to Array.length d - 1 do
    d.(i) <- get m i i
  done;
  d

let map_values f m = { m with values = Array.map f m.values }
let scale s m = map_values (fun v -> s *. v) m

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Csr.add: dimension mismatch";
  let coo = Coo.create ~capacity:(nnz a + nnz b) a.rows a.cols in
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      Coo.add coo i a.col_idx.(k) a.values.(k)
    done;
    for k = b.row_ptr.(i) to b.row_ptr.(i + 1) - 1 do
      Coo.add coo i b.col_idx.(k) b.values.(k)
    done
  done;
  of_coo coo

let identity n =
  {
    rows = n;
    cols = n;
    row_ptr = Array.init (n + 1) (fun i -> i);
    col_idx = Array.init n (fun i -> i);
    values = Array.make n 1.0;
  }

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let residual_norm a x b =
  let r = mul_vec a x in
  Linalg.Vec.dist2 b r
