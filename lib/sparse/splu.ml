(* Left-looking (Gilbert-Peierls) sparse LU closely following CSparse's
   cs_lu: for each column k, the sparse triangular solve x = L \ A(:,k)
   is computed over the topologically-ordered reachable set found by DFS
   on the graph of already-computed L columns; a pivot row is then chosen
   among the not-yet-pivotal entries of x. *)

type dyn = { mutable len : int; mutable idx : int array; mutable value : float array }

let dyn_create capacity =
  { len = 0; idx = Array.make (max capacity 4) 0; value = Array.make (max capacity 4) 0.0 }

let dyn_push d i v =
  if d.len = Array.length d.idx then begin
    let capacity = 2 * d.len in
    let idx = Array.make capacity 0 and value = Array.make capacity 0.0 in
    Array.blit d.idx 0 idx 0 d.len;
    Array.blit d.value 0 value 0 d.len;
    d.idx <- idx;
    d.value <- value
  end;
  d.idx.(d.len) <- i;
  d.value.(d.len) <- v;
  d.len <- d.len + 1

type t = {
  n : int;
  (* L in column-compressed form, unit diagonal stored explicitly first in
     each column; row indices are in final (pivotal) order. *)
  l_ptr : int array;
  l_idx : int array;
  l_val : float array;
  (* U in column-compressed form, diagonal stored last in each column. *)
  u_ptr : int array;
  u_idx : int array;
  u_val : float array;
  pinv : int array; (* pinv.(original_row) = pivotal position *)
  (* Numeric-refactorization support: the col_idx array of the factored
     matrix (compared physically, to detect pattern changes) and whether
     the stored L structure is complete. [factor] drops L entries whose
     value is exactly 0.0; a column with such a drop has an incomplete
     structure that [refactor] cannot replay. *)
  pattern : int array;
  complete : bool;
}

exception Singular of int

(* Depth-first search from node [j] over the graph whose node [r]'s
   out-edges are the row indices of L's column [pinv.(r)] (when row [r]
   is already pivotal). Pushes the postorder onto [stack] from position
   [top-1] downwards and returns the new top. *)
let dfs j ~l_ptr ~l_idx ~pinv ~marked ~mark_gen ~stack ~top ~work_stack ~pos_stack =
  let top = ref top in
  let head = ref 0 in
  work_stack.(0) <- j;
  while !head >= 0 do
    let j = work_stack.(!head) in
    let jnew = pinv.(j) in
    if marked.(j) <> mark_gen then begin
      marked.(j) <- mark_gen;
      pos_stack.(!head) <- (if jnew < 0 then 0 else l_ptr.(jnew))
    end;
    let p_end = if jnew < 0 then 0 else l_ptr.(jnew + 1) in
    let advanced = ref false in
    let p = ref pos_stack.(!head) in
    while (not !advanced) && !p < p_end do
      let i = l_idx.(!p) in
      if marked.(i) <> mark_gen then begin
        pos_stack.(!head) <- !p + 1;
        incr head;
        work_stack.(!head) <- i;
        advanced := true
      end
      else incr p
    done;
    if not !advanced then begin
      decr head;
      decr top;
      stack.(!top) <- j
    end
  done;
  !top

let factor ?(pivot_threshold = 0.1) (a : Csr.t) =
  let n = a.Csr.rows in
  if a.Csr.cols <> n then invalid_arg "Splu.factor: matrix not square";
  Telemetry.span "splu.factor" @@ fun () ->
  (* Column access: work on the CSC of A, i.e. CSR of Aᵀ. *)
  let at = Csr.transpose a in
  let acol_ptr = at.Csr.row_ptr and acol_idx = at.Csr.col_idx in
  let acol_val = at.Csr.values in
  let l = dyn_create (4 * Csr.nnz a) and u = dyn_create (4 * Csr.nnz a) in
  let l_ptr = Array.make (n + 1) 0 and u_ptr = Array.make (n + 1) 0 in
  let pinv = Array.make n (-1) in
  let x = Array.make n 0.0 in
  let stack = Array.make n 0 in
  let work_stack = Array.make n 0 and pos_stack = Array.make n 0 in
  let marked = Array.make n (-1) in
  let complete = ref true in
  (* [l.idx] holds *original* row indices during factorization; remapped to
     pivotal order at the end (as in cs_lu). But DFS needs L columns keyed
     by pivotal position with original-row out-edges, which is exactly what
     we store. *)
  for k = 0 to n - 1 do
    l_ptr.(k) <- l.len;
    u_ptr.(k) <- u.len;
    (* Reach: union of DFS from each structural entry of A(:,k). *)
    let mark_gen = k in
    let top = ref n in
    for p = acol_ptr.(k) to acol_ptr.(k + 1) - 1 do
      let i = acol_idx.(p) in
      if marked.(i) <> mark_gen then
        top :=
          dfs i ~l_ptr ~l_idx:l.idx ~pinv ~marked ~mark_gen ~stack ~top:!top
            ~work_stack ~pos_stack
    done;
    (* Clear x over the reach, scatter A(:,k). *)
    for p = !top to n - 1 do
      x.(stack.(p)) <- 0.0
    done;
    for p = acol_ptr.(k) to acol_ptr.(k + 1) - 1 do
      x.(acol_idx.(p)) <- acol_val.(p)
    done;
    (* Sparse lower-triangular solve in topological order. *)
    for p = !top to n - 1 do
      let j = stack.(p) in
      let jnew = pinv.(j) in
      if jnew >= 0 then begin
        let xj = x.(j) in
        if xj <> 0.0 then
          (* Skip the unit diagonal stored first in column jnew. *)
          for q = l_ptr.(jnew) + 1 to l_ptr.(jnew + 1) - 1 do
            x.(l.idx.(q)) <- x.(l.idx.(q)) -. (l.value.(q) *. xj)
          done
      end
    done;
    (* Pivot choice among non-pivotal rows; push pivotal rows into U. *)
    let ipiv = ref (-1) and best = ref 0.0 in
    for p = !top to n - 1 do
      let i = stack.(p) in
      if pinv.(i) < 0 then begin
        let t = Float.abs x.(i) in
        if t > !best then begin
          best := t;
          ipiv := i
        end
      end
      else dyn_push u pinv.(i) x.(i)
    done;
    if !ipiv < 0 || !best <= 0.0 then raise (Singular k);
    (* Prefer the diagonal when acceptable under the threshold. *)
    if pinv.(k) < 0 && Float.abs x.(k) >= pivot_threshold *. !best then ipiv := k;
    let pivot = x.(!ipiv) in
    dyn_push u k pivot;
    pinv.(!ipiv) <- k;
    dyn_push l !ipiv 1.0;
    for p = !top to n - 1 do
      let i = stack.(p) in
      if pinv.(i) < 0 then
        if x.(i) <> 0.0 then dyn_push l i (x.(i) /. pivot)
        else complete := false;
      x.(i) <- 0.0
    done
  done;
  l_ptr.(n) <- l.len;
  u_ptr.(n) <- u.len;
  (* Remap L's row indices from original to pivotal order. *)
  for p = 0 to l.len - 1 do
    l.idx.(p) <- pinv.(l.idx.(p))
  done;
  Telemetry.count "splu.factors";
  Telemetry.gauge "splu.n" (float_of_int n);
  Telemetry.gauge "splu.lu_nnz" (float_of_int (l.len + u.len));
  Telemetry.gauge "splu.fill_ratio"
    (float_of_int (l.len + u.len) /. float_of_int (max 1 (Csr.nnz a)));
  {
    n;
    l_ptr;
    l_idx = Array.sub l.idx 0 l.len;
    l_val = Array.sub l.value 0 l.len;
    u_ptr;
    u_idx = Array.sub u.idx 0 u.len;
    u_val = Array.sub u.value 0 u.len;
    pinv;
    pattern = a.Csr.col_idx;
    complete = !complete;
  }

let refactorable f (a : Csr.t) = f.complete && f.pattern == a.Csr.col_idx

(* Numeric-only refactorization: keep the symbolic structure (reach sets,
   fill pattern, pivot order) from [factor] and recompute only the
   values. The stored U entries of each column are exactly the pivotal
   reach nodes in the topological order the original triangular solve
   processed them, so replaying them sequentially reproduces the same
   float operations in the same order — a refactor of unchanged values
   is bitwise identical to the original factorization. With changed
   values the fixed pivot order is no longer threshold-optimal (same
   trade as any KLU-style refactor); callers using the result as an
   exact solver should watch {!Csr.residual_norm} or the pivot
   magnitudes. *)
let refactor f (a : Csr.t) =
  if not (refactorable f a) then
    invalid_arg "Splu.refactor: pattern changed or structure incomplete";
  Telemetry.span "splu.refactor" @@ fun () ->
  Telemetry.count "splu.refactors";
  let n = f.n in
  let at = Csr.transpose a in
  let acol_ptr = at.Csr.row_ptr and acol_idx = at.Csr.col_idx in
  let acol_val = at.Csr.values in
  (* Scratch in pivotal coordinates; every position written below is
     covered by the column's stored U/L entries, so the end-of-column
     clear loop restores all-zeros. *)
  let x = Array.make n 0.0 in
  for k = 0 to n - 1 do
    for p = acol_ptr.(k) to acol_ptr.(k + 1) - 1 do
      x.(f.pinv.(acol_idx.(p))) <- acol_val.(p)
    done;
    (* Replay the sparse triangular solve over the stored U rows
       (topological order; diagonal excluded — it is stored last). *)
    let dpos = f.u_ptr.(k + 1) - 1 in
    for p = f.u_ptr.(k) to dpos - 1 do
      let j = f.u_idx.(p) in
      let xj = x.(j) in
      f.u_val.(p) <- xj;
      if xj <> 0.0 then
        for q = f.l_ptr.(j) + 1 to f.l_ptr.(j + 1) - 1 do
          x.(f.l_idx.(q)) <- x.(f.l_idx.(q)) -. (f.l_val.(q) *. xj)
        done
    done;
    let pivot = x.(k) in
    if pivot = 0.0 || not (Float.is_finite pivot) then raise (Singular k);
    f.u_val.(dpos) <- pivot;
    for q = f.l_ptr.(k) + 1 to f.l_ptr.(k + 1) - 1 do
      f.l_val.(q) <- x.(f.l_idx.(q)) /. pivot
    done;
    for p = f.u_ptr.(k) to dpos do
      x.(f.u_idx.(p)) <- 0.0
    done;
    x.(k) <- 0.0;
    for q = f.l_ptr.(k) to f.l_ptr.(k + 1) - 1 do
      x.(f.l_idx.(q)) <- 0.0
    done
  done

let size f = f.n

let solve_into f b out =
  let n = f.n in
  if Array.length b <> n || Array.length out <> n then
    invalid_arg "Splu.solve_into: dimension mismatch";
  Telemetry.count "splu.solves";
  (* y = P b *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    y.(f.pinv.(i)) <- b.(i)
  done;
  (* Forward: L y' = y, columns of L (unit diagonal first). *)
  for j = 0 to n - 1 do
    let yj = y.(j) in
    if yj <> 0.0 then
      for p = f.l_ptr.(j) + 1 to f.l_ptr.(j + 1) - 1 do
        y.(f.l_idx.(p)) <- y.(f.l_idx.(p)) -. (f.l_val.(p) *. yj)
      done
  done;
  (* Backward: U x = y', diagonal stored last in each column. *)
  for j = n - 1 downto 0 do
    let dpos = f.u_ptr.(j + 1) - 1 in
    let xj = y.(j) /. f.u_val.(dpos) in
    y.(j) <- xj;
    if xj <> 0.0 then
      for p = f.u_ptr.(j) to dpos - 1 do
        y.(f.u_idx.(p)) <- y.(f.u_idx.(p)) -. (f.u_val.(p) *. xj)
      done
  done;
  Array.blit y 0 out 0 n

let solve f b =
  let x = Array.make f.n 0.0 in
  solve_into f b x;
  x

let lu_nnz f = (f.l_ptr.(f.n), f.u_ptr.(f.n))
