type t = { freqs : float array; power : float array }

let pi = 4.0 *. atan 1.0

let periodogram ?(window = `Hann) ~sample_rate samples =
  let n = Array.length samples in
  if n < 2 then invalid_arg "Spectrum.periodogram: need at least 2 samples";
  Telemetry.span "rf.periodogram" @@ fun () ->
  let w =
    match window with
    | `Rect -> Array.make n 1.0
    | `Hann ->
        Array.init n (fun k ->
            0.5 *. (1.0 -. cos (2.0 *. pi *. float_of_int k /. float_of_int n)))
  in
  let coherent_gain = Array.fold_left ( +. ) 0.0 w /. float_of_int n in
  let windowed =
    Array.init n (fun k -> samples.(k) *. w.(k) /. coherent_gain)
  in
  let spectrum = Numeric.Fft.rfft windowed in
  let half = n / 2 in
  let freqs = Array.init (half + 1) (fun k -> float_of_int k *. sample_rate /. float_of_int n) in
  let power =
    Array.init (half + 1) (fun k ->
        let z = spectrum.(k) in
        let mag2 = (z.Complex.re *. z.Complex.re) +. (z.Complex.im *. z.Complex.im) in
        let scale = if k = 0 || (k = half && n mod 2 = 0) then 1.0 else 2.0 in
        (* 2·|X|²/n² is the squared RMS of the tone in that bin *)
        scale *. mag2 /. (float_of_int n *. float_of_int n) /. 2.0 *. 2.0)
  in
  { freqs; power }

let power_db p = if p <= 0.0 then -300.0 else 10.0 *. log10 p

let band_power t ~f_lo ~f_hi =
  let s = ref 0.0 in
  Array.iteri (fun k f -> if f >= f_lo && f <= f_hi then s := !s +. t.power.(k)) t.freqs;
  !s

let peak_bin t ~f_near =
  let n = Array.length t.freqs in
  if n = 0 then invalid_arg "Spectrum.peak_bin: empty spectrum";
  let df = if n > 1 then t.freqs.(1) -. t.freqs.(0) else 1.0 in
  let centre =
    let k = int_of_float (Float.round (f_near /. df)) in
    max 0 (min (n - 1) k)
  in
  let best = ref (max 0 (centre - 2)) in
  for k = max 0 (centre - 2) to min (n - 1) (centre + 2) do
    if t.power.(k) > t.power.(!best) then best := k
  done;
  !best
