type t = {
  convergence : Convergence.cls;
  newton_iterations : int;
  linear_iterations : int;
  residual_norm : float;
  strategy : string;
  converged : bool;
  condition_estimate : float option;
  diagonal_residual : float option;
  stage_iterations : (string * int) list;
}

let condition_of_solution scheme (sol : Mpde.Solver.solution) =
  try
    let sys = sol.Mpde.Solver.system in
    let jacs =
      Mpde.Assemble.point_jacobians sys sol.Mpde.Solver.grid
        sol.Mpde.Solver.big_x
    in
    let j =
      Mpde.Assemble.jacobian_csr scheme sol.Mpde.Solver.grid
        ~size:sys.Mpde.Assemble.size ~jacs
    in
    let lu = Sparse.Splu.factor j in
    let kappa = Condest.condest_csr j lu in
    if Float.is_finite kappa && kappa > 0.0 then Some kappa else None
  with _ -> None

let of_solution ?(scheme = Mpde.Assemble.Backward) ?(condition = true)
    ?diagonal_unknown (sol : Mpde.Solver.solution) =
  Telemetry.span "diagnostics.health" @@ fun () ->
  let stats = sol.Mpde.Solver.stats in
  let report = sol.Mpde.Solver.report in
  let convergence =
    Convergence.classify ~strategy:stats.Mpde.Solver.strategy
      report.Resilience.Report.residual_trajectory
  in
  let condition_estimate =
    if condition then
      Telemetry.span "diagnostics.condest" @@ fun () ->
      condition_of_solution scheme sol
    else None
  in
  let diagonal_residual =
    match diagonal_unknown with
    | Some unknown ->
        Telemetry.span "diagnostics.diagonal" @@ fun () ->
        Some (Mpde.Extract.diagonal_residual sol ~unknown)
    | None -> None
  in
  let stage_iterations =
    List.map
      (fun s ->
        (s.Resilience.Report.name, s.Resilience.Report.iterations))
      report.Resilience.Report.stages
  in
  {
    convergence;
    newton_iterations = stats.Mpde.Solver.newton_iterations;
    linear_iterations = stats.Mpde.Solver.linear_iterations;
    residual_norm = stats.Mpde.Solver.residual_norm;
    strategy = stats.Mpde.Solver.strategy;
    converged = stats.Mpde.Solver.converged;
    condition_estimate;
    diagonal_residual;
    stage_iterations;
  }

let of_report (r : Resilience.Report.t) =
  let strategy =
    match r.Resilience.Report.strategy with Some s -> s | None -> "newton"
  in
  {
    convergence =
      Convergence.classify ~strategy r.Resilience.Report.residual_trajectory;
    newton_iterations = r.Resilience.Report.newton_iterations;
    linear_iterations = r.Resilience.Report.linear_iterations;
    residual_norm = r.Resilience.Report.residual_norm;
    strategy;
    converged =
      (match r.Resilience.Report.outcome with
      | Resilience.Report.Converged -> true
      | Resilience.Report.Failed _ | Resilience.Report.Exhausted _ -> false);
    condition_estimate = None;
    diagonal_residual = None;
    stage_iterations =
      List.map
        (fun s -> (s.Resilience.Report.name, s.Resilience.Report.iterations))
        r.Resilience.Report.stages;
  }

let summary_line h =
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "health: %s | newton=%d | residual=%.1e"
       (Convergence.to_string h.convergence)
       h.newton_iterations h.residual_norm);
  (match h.condition_estimate with
  | Some k -> Buffer.add_string buf (Printf.sprintf " | kappa~%.1e" k)
  | None -> ());
  (match h.diagonal_residual with
  | Some d -> Buffer.add_string buf (Printf.sprintf " | diag=%.1e" d)
  | None -> ());
  if not h.converged then Buffer.add_string buf " | NOT CONVERGED";
  Buffer.contents buf

let to_json h =
  let opt = function
    | Some v -> Json_min.Num v
    | None -> Json_min.Null
  in
  Json_min.to_string
    (Json_min.Obj
       [
         ("convergence", Json_min.Str (Convergence.to_string h.convergence));
         ("converged", Json_min.Bool h.converged);
         ("newton_iterations", Json_min.Num (float_of_int h.newton_iterations));
         ("linear_iterations", Json_min.Num (float_of_int h.linear_iterations));
         ("residual_norm", Json_min.Num h.residual_norm);
         ("strategy", Json_min.Str h.strategy);
         ("condition_estimate", opt h.condition_estimate);
         ("diagonal_residual", opt h.diagonal_residual);
         ( "stage_iterations",
           Json_min.Obj
             (List.map
                (fun (name, it) -> (name, Json_min.Num (float_of_int it)))
                h.stage_iterations) );
       ])

let attach h report = Resilience.Report.add_section report "diagnostics" (to_json h)

let to_registry ?registry h =
  let r = match registry with Some r -> r | None -> Registry.create () in
  Registry.gauge ~help:"Newton iterations of the assessed solve" r
    "health.newton_iterations"
    (float_of_int h.newton_iterations);
  Registry.gauge ~help:"GMRES inner iterations of the assessed solve" r
    "health.linear_iterations"
    (float_of_int h.linear_iterations);
  Registry.gauge ~help:"final residual infinity norm" r "health.residual_norm"
    h.residual_norm;
  Registry.gauge ~help:"1 when the solve converged" r "health.converged"
    (if h.converged then 1.0 else 0.0);
  Registry.gauge
    ~help:"marker gauge; the class label carries the assessment"
    ~labels:[ ("class", Convergence.to_string h.convergence) ]
    r "health.convergence" 1.0;
  (match h.condition_estimate with
  | Some k ->
      Registry.gauge ~help:"Jacobian condition estimate (power iteration)" r
        "health.condition_estimate" k
  | None -> ());
  (match h.diagonal_residual with
  | Some d ->
      Registry.gauge ~help:"relative diagonal-consistency residual" r
        "health.diagonal_residual" d
  | None -> ());
  List.iter
    (fun (stage, it) ->
      Registry.gauge
        ~labels:[ ("stage", stage) ]
        r "health.stage_iterations" (float_of_int it))
    h.stage_iterations;
  r
