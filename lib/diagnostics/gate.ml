type direction = Lower_better | Higher_better

type check = {
  metric : string;
  path : string list;
  direction : direction;
  tolerance : float;
  absolute : float;
}

type verdict = {
  check : check;
  baseline : float;
  current : float;
  change : float;
  ok : bool;
}

type result = {
  verdicts : verdict list;
  errors : string list;
  passed : bool;
}

let default_tolerance = 0.15

let default_checks ?(overrides = []) tolerance =
  let tol ?default metric =
    match List.assoc_opt metric overrides with
    | Some t -> t
    | None -> Option.value default ~default:tolerance
  in
  [
    {
      metric = "mixer.wall_seconds";
      path = [ "mixer"; "wall_seconds" ];
      direction = Lower_better;
      tolerance = tol "mixer.wall_seconds";
      absolute = 0.0;
    };
    {
      metric = "mixer.newton_iterations";
      path = [ "mixer"; "newton_iterations" ];
      direction = Lower_better;
      tolerance = tol "mixer.newton_iterations";
      absolute = 0.0;
    };
    {
      metric = "mixer.gmres_iterations";
      path = [ "mixer"; "gmres_iterations" ];
      direction = Lower_better;
      tolerance = tol "mixer.gmres_iterations";
      absolute = 0.0;
    };
    {
      (* Dense diagonal-block factorizations per mixer solve — the
         preconditioner-lagging win; creeping back up means the lag
         policy quietly stopped keeping factors. *)
      metric = "mixer.lu_dense_factors";
      path = [ "mixer"; "telemetry"; "counters"; "lu.dense_factors" ];
      direction = Lower_better;
      tolerance = tol "mixer.lu_dense_factors";
      absolute = 0.0;
    };
    {
      (* Dense triangular-solve calls per mixer solve (one per blocked
         panel call) — the multi-RHS clustering win; creeping back up
         means the sweep fell back to point-at-a-time solves. *)
      metric = "mixer.lu_dense_solves";
      path = [ "mixer"; "telemetry"; "counters"; "lu.dense_solves" ];
      direction = Lower_better;
      tolerance = tol "mixer.lu_dense_solves";
      absolute = 0.0;
    };
    {
      metric = "speedup.ratio";
      path = [ "speedup"; "ratio" ];
      direction = Higher_better;
      tolerance = tol "speedup.ratio";
      absolute = 0.0;
    };
    (* Kernel micro-benchmarks are isolated hot loops: noisier than
       end-to-end walls on shared runners, hence the wider default
       tolerance (still overridable by name). *)
    {
      metric = "kernel.spmv_mflops";
      path = [ "kernel"; "spmv_mflops" ];
      direction = Higher_better;
      tolerance = tol ~default:0.5 "kernel.spmv_mflops";
      absolute = 0.0;
    };
    {
      metric = "kernel.block_solve_cols_per_s";
      path = [ "kernel"; "block_solve_cols_per_s" ];
      direction = Higher_better;
      tolerance = tol ~default:0.5 "kernel.block_solve_cols_per_s";
      absolute = 0.0;
    };
    {
      metric = "sweep.wall_1";
      path = [ "sweep"; "wall_1" ];
      direction = Lower_better;
      tolerance = tol "sweep.wall_1";
      absolute = 0.0;
    };
    {
      metric = "sweep.speedup_2";
      path = [ "sweep"; "speedup_2" ];
      direction = Higher_better;
      tolerance = tol "sweep.speedup_2";
      absolute = 0.0;
    };
    {
      metric = "sweep.speedup_4";
      path = [ "sweep"; "speedup_4" ];
      direction = Higher_better;
      tolerance = tol "sweep.speedup_4";
      absolute = 0.0;
    };
    (* Utilization and GC pauses live near 0 and 1 respectively, where
       relative drift is meaningless noise (a p99 pause moving from
       0.2ms to 0.5ms is a 150% "regression" nobody cares about); the
       [absolute] slack passes any change within a fixed band, so these
       only trip on real, sustained shifts. *)
    {
      metric = "sweep.domain_utilization_2";
      path = [ "sweep"; "domain_utilization_2" ];
      direction = Higher_better;
      tolerance = tol "sweep.domain_utilization_2";
      absolute = 0.2;
    };
    {
      metric = "sweep.domain_utilization_4";
      path = [ "sweep"; "domain_utilization_4" ];
      direction = Higher_better;
      tolerance = tol "sweep.domain_utilization_4";
      absolute = 0.2;
    };
    {
      metric = "gc.major_pause_p99";
      path = [ "gc"; "major_pause_p99" ];
      direction = Lower_better;
      tolerance = tol "gc.major_pause_p99";
      absolute = 0.05;
    };
  ]

let lookup_num doc path =
  match Json_min.path path doc with
  | Some j -> Json_min.num j
  | None -> None

let evaluate ?checks ~baseline ~current () =
  let checks =
    match checks with Some c -> c | None -> default_checks default_tolerance
  in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match Json_min.path [ "mixer"; "converged" ] current with
  | Some (Json_min.Bool true) -> ()
  | Some (Json_min.Bool false) ->
      err "current benchmark did not converge (mixer.converged = false)"
  | _ -> err "current benchmark is missing mixer.converged");
  (* Absolute floor for the parallel sweep, independent of whatever the
     baseline recorded: on a multi-core runner extra domains must beat
     serial outright (both the 2- and 4-domain configurations — a
     4-domain slowdown with a healthy 2-domain one means contention,
     not lack of cores). A single-core runner skips the floor (there is
     no parallelism to win) but still reports the relative checks
     below. *)
  (match lookup_num current [ "sweep"; "cores" ] with
  | Some cores when cores >= 2.0 ->
      List.iter
        (fun name ->
          match lookup_num current [ "sweep"; name ] with
          | Some sp when sp < 1.0 ->
              err
                "parallel sweep slower than serial: sweep.%s = %.2f < 1.0 on \
                 a %.0f-core runner"
                name sp cores
          | Some _ -> ()
          | None -> err "current benchmark is missing sweep.%s" name)
        [ "speedup_2"; "speedup_4" ]
  | Some _ -> ()
  | None -> err "current benchmark is missing sweep.cores");
  (* Clean-path resilience floor: the bench sweeps with retry armed, so
     a nonzero retry or degraded-job count means the runtime tripped its
     own fault handling on healthy inputs — a hard failure regardless of
     what the baseline recorded. *)
  List.iter
    (fun name ->
      match lookup_num current [ "sweep"; name ] with
      | Some v when v > 0.0 ->
          err "clean sweep fired the retry path: sweep.%s = %.0f (expected 0)"
            name v
      | Some _ -> ()
      | None -> err "current benchmark is missing sweep.%s" name)
    [ "retries"; "degraded_jobs" ];
  let verdicts =
    List.filter_map
      (fun check ->
        match
          (lookup_num baseline check.path, lookup_num current check.path)
        with
        | None, _ ->
            err "baseline is missing metric %s" check.metric;
            None
        | _, None ->
            err "current benchmark is missing metric %s" check.metric;
            None
        | Some b, Some c ->
            let denom = Float.max (Float.abs b) 1e-30 in
            let change = (c -. b) /. denom in
            let rel_ok =
              match check.direction with
              | Lower_better -> change <= check.tolerance
              | Higher_better -> change >= -.check.tolerance
            in
            (* Absolute slack: a drift inside a fixed band passes even
               when the relative change is huge — for metrics whose
               baseline sits near zero. *)
            let abs_ok =
              check.absolute > 0.0 && Float.abs (c -. b) <= check.absolute
            in
            Some { check; baseline = b; current = c; change; ok = rel_ok || abs_ok })
      checks
  in
  let passed = !errors = [] && List.for_all (fun v -> v.ok) verdicts in
  { verdicts; errors = List.rev !errors; passed }

let render result =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-26s %12s %12s %9s %7s  %s\n" "metric" "baseline"
       "current" "change" "tol" "status");
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%-26s %12.4g %12.4g %+8.1f%% %6.0f%%  %s\n"
           v.check.metric v.baseline v.current (100.0 *. v.change)
           (100.0 *. v.check.tolerance)
           (if v.ok then "ok"
            else
              match v.check.direction with
              | Lower_better -> "REGRESSION"
              | Higher_better -> "REGRESSION")))
    result.verdicts;
  List.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "error: %s\n" e))
    result.errors;
  Buffer.add_string buf
    (if result.passed then "gate: PASS\n" else "gate: FAIL\n");
  Buffer.contents buf
