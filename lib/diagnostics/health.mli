(** Solver-health assessment of an MPDE solution.

    Folds the observable evidence of one solve — the Newton residual
    trajectory, the winning ladder strategy, a condition estimate of the
    final Jacobian, and the diagonal-consistency residual — into one
    record that the CLI ([rfss health]), the quickstart example, and the
    metrics exposition all share. *)

type t = {
  convergence : Convergence.cls;
  newton_iterations : int;
  linear_iterations : int;
  residual_norm : float;
  strategy : string;  (** winning ladder stage, or ["none"] *)
  converged : bool;
  condition_estimate : float option;
      (** κ estimate of the final MPDE Jacobian; [None] when skipped or
          when the factorization failed *)
  diagonal_residual : float option;
      (** relative diagonal-consistency residual; [None] when skipped,
          [Some nan] when the reference transient failed *)
  stage_iterations : (string * int) list;
      (** Newton iterations per ladder stage, from the report *)
}

val of_solution :
  ?scheme:Mpde.Assemble.scheme ->
  ?condition:bool ->
  ?diagonal_unknown:int ->
  Mpde.Solver.solution ->
  t
(** Assess a solution. [scheme] (default [Backward]) must match the
    discretization the solution was computed with — it is used to
    re-assemble the Jacobian for the condition estimate. [condition]
    (default [true]) controls the κ estimate; [diagonal_unknown], when
    given, enables the diagonal-consistency check on that unknown. *)

val of_report : Resilience.Report.t -> t
(** Engine-agnostic assessment built from a structured solve report
    alone — the path the unified engine API uses for the single-time
    backends (shooting, multiple shooting, HB, periodic FD), whose
    results carry no MPDE solution to probe. Convergence is classified
    from the report's residual trajectory; [condition_estimate] and
    [diagonal_residual] are [None] (both need the MPDE Jacobian and
    grid — use {!of_solution} for those). *)

val summary_line : t -> string
(** One-line rendering for CLI output, e.g.
    ["health: quadratic | newton=9 | residual=3.1e-10 | kappa~2.4e+03 | diag=1.2e-02"]. *)

val to_json : t -> string
(** JSON object; embeddable as a {!Resilience.Report} section. *)

val attach : t -> Resilience.Report.t -> Resilience.Report.t
(** Append this assessment as the report's ["diagnostics"] section. *)

val to_registry : ?registry:Registry.t -> t -> Registry.t
(** Export as metrics: [health.newton_iterations],
    [health.residual_norm], [health.condition_estimate],
    [health.diagonal_residual] gauges and a
    [health.convergence{class="…"}] marker gauge. *)
