(** Classification of Newton residual trajectories.

    Given the per-iteration residual-norm history of a solve (and
    optionally the ladder strategy that produced it), decide whether
    convergence was quadratic (healthy Newton in its basin), linear with
    an estimated contraction rate (inexact Jacobian, strong damping, or
    a barely-attracting fixed point), stagnating, or diverging — or
    whether the solve only succeeded because the escalation ladder
    rescued it.

    Thresholds (documented in DESIGN.md §10):
    - divergence: median step ratio [>= 1.5], or the final residual
      exceeds 10x the initial one;
    - stagnation: median step ratio [>= 0.97] (less than 3% reduction
      per iteration);
    - quadratic: median observed convergence order
      [q_i = log(r_{i+1}/r_i) / log(r_i/r_{i-1})] over the decreasing
      tail is [>= 1.6];
    - otherwise linear, with rate = geometric mean of the decreasing
      step ratios. *)

type cls =
  | Quadratic
  | Linear of float  (** estimated contraction rate per iteration, in (0, 1) *)
  | Stagnating
  | Diverging
  | Rescued of string  (** a non-primary ladder stage produced the solution *)
  | Insufficient_data  (** fewer than 3 usable residual samples *)

val classify : ?strategy:string -> float array -> cls
(** [classify history] with [history] the chronological residual norms
    (initial residual first). [strategy], when given and different from
    ["newton"], short-circuits to [Rescued strategy] — the trajectory
    then spans several distinct subproblems and a rate estimate would
    be meaningless. Non-finite and non-positive samples are dropped
    before analysis. *)

val rate_estimate : float array -> float option
(** Geometric mean of the decreasing step ratios, when at least one
    exists. *)

val observed_order : float array -> float option
(** Median observed convergence order over the strictly decreasing
    tail; [None] with fewer than 3 strictly decreasing samples. *)

val to_string : cls -> string
(** Compact rendering, e.g. ["quadratic"], ["linear(rate=0.31)"]. *)

val pp : Format.formatter -> cls -> unit
