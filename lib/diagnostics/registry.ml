type kind = Counter | Gauge

type sample = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  value : float;
  help : string option;
}

type hsample = {
  h_name : string;
  h_labels : (string * string) list;
  h_help : string option;
  h_hist : Telemetry.histogram;
}

type t = {
  table : (string, sample) Hashtbl.t;
  hist_table : (string, hsample) Hashtbl.t;
}

let create () = { table = Hashtbl.create 64; hist_table = Hashtbl.create 8 }

let key name labels =
  name ^ "\x00"
  ^ String.concat "\x00" (List.map (fun (k, v) -> k ^ "\x01" ^ v) labels)

let add ?help ?(labels = []) registry kind name value =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  Hashtbl.replace registry.table (key name labels)
    { name; labels; kind; value; help }

let counter ?help ?labels registry name value =
  add ?help ?labels registry Counter name value

let gauge ?help ?labels registry name value =
  add ?help ?labels registry Gauge name value

let histogram ?help ?(labels = []) registry name hist =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  Hashtbl.replace registry.hist_table (key name labels)
    { h_name = name; h_labels = labels; h_help = help; h_hist = hist }

let samples registry =
  Hashtbl.fold (fun _ s acc -> s :: acc) registry.table []
  |> List.sort (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let histograms registry =
  Hashtbl.fold
    (fun _ h acc -> (h.h_name, h.h_labels, h.h_hist) :: acc)
    registry.hist_table []
  |> List.sort compare

let sorted_hsamples registry =
  Hashtbl.fold (fun _ h acc -> h :: acc) registry.hist_table []
  |> List.sort (fun a b ->
         match compare a.h_name b.h_name with
         | 0 -> compare a.h_labels b.h_labels
         | c -> c)

let of_telemetry ?registry snapshot =
  let r = match registry with Some r -> r | None -> create () in
  List.iter
    (fun (name, v) -> counter r name (float_of_int v))
    snapshot.Telemetry.counters;
  List.iter (fun (name, v) -> gauge r name v) snapshot.Telemetry.gauges;
  (* Real histogram families (bucket counts survive into Prometheus
     exposition). min/max have no place in the Prometheus histogram
     shape, so they ride along as sibling gauges under distinct family
     names — a stat-labelled gauge under the histogram's own name would
     collide with the [_bucket]/[_sum]/[_count] series. *)
  List.iter
    (fun (name, h) ->
      histogram r name h;
      gauge r (name ^ ".min") h.Telemetry.min;
      gauge r (name ^ ".max") h.Telemetry.max)
    snapshot.Telemetry.histograms;
  (* Aggregate the span tree by span name: total wall/cpu and call
     counts, regardless of where in the hierarchy a span ran. *)
  let summary = Telemetry.Summary.of_snapshot snapshot in
  let acc : (string, float * float * int) Hashtbl.t = Hashtbl.create 16 in
  let rec walk (node : Telemetry.Summary.node) =
    let w, c, n =
      match Hashtbl.find_opt acc node.name with
      | Some x -> x
      | None -> (0.0, 0.0, 0)
    in
    Hashtbl.replace acc node.name
      (w +. node.wall, c +. node.cpu, n + node.calls);
    List.iter walk node.children
  in
  List.iter walk summary.roots;
  Hashtbl.iter
    (fun span (wall, cpu, calls) ->
      let labels = [ ("span", span) ] in
      gauge ~labels r "span.wall_seconds" wall;
      gauge ~labels r "span.cpu_seconds" cpu;
      counter ~labels r "span.calls" (float_of_int calls))
    acc;
  r

(* ---------- name and value rendering ---------- *)

let sanitize_name ?kind name =
  let buf = Buffer.create (String.length name + 8) in
  if not (String.length name >= 5 && String.sub name 0 5 = "rfss_") then
    Buffer.add_string buf "rfss_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let base = Buffer.contents buf in
  match kind with
  | Some Counter
    when not
           (String.length base >= 6
           && String.sub base (String.length base - 6) 6 = "_total") ->
      base ^ "_total"
  | _ -> base

let render_value f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let sanitize_label_key k =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    k

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_label_key k)
                 (escape_label_value v))
             labels)
      ^ "}"

(* Prometheus's own convention for the +Inf bucket bound. *)
let render_le v = if v = infinity then "+Inf" else render_value v

let to_prometheus registry =
  let buf = Buffer.create 1024 in
  let seen_family : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let header family ~help ~fallback type_str =
    if not (Hashtbl.mem seen_family family) then begin
      Hashtbl.add seen_family family ();
      let help = Option.value ~default:fallback help in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" family
           (String.map (fun c -> if c = '\n' then ' ' else c) help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family type_str)
    end
  in
  List.iter
    (fun s ->
      let family = sanitize_name ~kind:s.kind s.name in
      let kind_str =
        match s.kind with Counter -> "counter" | Gauge -> "gauge"
      in
      header family ~help:s.help
        ~fallback:(Printf.sprintf "rfss %s %s" kind_str s.name)
        kind_str;
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" family (render_labels s.labels)
           (render_value s.value)))
    (samples registry);
  List.iter
    (fun h ->
      let family = sanitize_name h.h_name in
      header family ~help:h.h_help
        ~fallback:(Printf.sprintf "rfss histogram %s" h.h_name)
        "histogram";
      let cumulative = ref 0 in
      Array.iteri
        (fun i n ->
          cumulative := !cumulative + n;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" family
               (render_labels
                  (h.h_labels @ [ ("le", render_le (Telemetry.bucket_le i)) ]))
               !cumulative))
        h.h_hist.Telemetry.buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" family (render_labels h.h_labels)
           (render_value h.h_hist.Telemetry.sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" family (render_labels h.h_labels)
           h.h_hist.Telemetry.count))
    (sorted_hsamples registry);
  Buffer.contents buf

(* ---------- CSV ---------- *)

let csv_quote field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

(* Flatten a histogram into summary stats — the CSV and JSON formats
   have no native bucket shape, and the quantiles are what a reader of
   those formats actually wants. *)
let hist_stats (h : Telemetry.histogram) =
  [
    ("count", float_of_int h.Telemetry.count);
    ("sum", h.Telemetry.sum);
    ("min", h.Telemetry.min);
    ("max", h.Telemetry.max);
    ("p50", Telemetry.quantile h 0.50);
    ("p90", Telemetry.quantile h 0.90);
    ("p99", Telemetry.quantile h 0.99);
  ]

let to_csv registry =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,labels,kind,value\n";
  let row name labels kind value =
    let labels =
      String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    in
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s\n"
         (csv_quote (sanitize_name name))
         (csv_quote labels) kind (render_value value))
  in
  List.iter
    (fun s ->
      row s.name s.labels
        (match s.kind with Counter -> "counter" | Gauge -> "gauge")
        s.value)
    (samples registry);
  List.iter
    (fun h ->
      List.iter
        (fun (stat, v) -> row h.h_name (h.h_labels @ [ ("stat", stat) ]) "gauge" v)
        (hist_stats h.h_hist))
    (sorted_hsamples registry);
  Buffer.contents buf

(* ---------- parsers (round-trip validation) ---------- *)

let parse_float_special s =
  match s with
  | "+Inf" | "Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some nan
  | _ -> float_of_string_opt s

(* Escaped label values can contain any character — including [,], [}]
   and escaped quotes — so the label set needs a real scanner, not a
   split on separators. *)
let parse_label_set line start =
  let n = String.length line in
  let pairs = ref [] in
  let i = ref (start + 1) in
  let skip c = if !i < n && line.[!i] = c then incr i in
  let rec go () =
    if !i >= n then failwith ("unterminated label set: " ^ line)
    else if line.[!i] = '}' then incr i
    else begin
      let eq =
        match String.index_from_opt line !i '=' with
        | Some e -> e
        | None -> failwith ("bad label pair: " ^ line)
      in
      let k = String.sub line !i (eq - !i) in
      i := eq + 1;
      if !i >= n || line.[!i] <> '"' then
        failwith ("unquoted label value: " ^ line);
      incr i;
      let buf = Buffer.create 16 in
      let rec value () =
        if !i >= n then failwith ("unterminated label value: " ^ line)
        else
          match line.[!i] with
          | '"' -> incr i
          | '\\' ->
              (if !i + 1 >= n then
                 failwith ("dangling escape in label value: " ^ line)
               else
                 match line.[!i + 1] with
                 | 'n' -> Buffer.add_char buf '\n'
                 | '\\' -> Buffer.add_char buf '\\'
                 | '"' -> Buffer.add_char buf '"'
                 | c -> Buffer.add_char buf c);
              i := !i + 2;
              value ()
          | c ->
              Buffer.add_char buf c;
              incr i;
              value ()
      in
      value ();
      pairs := (k, Buffer.contents buf) :: !pairs;
      skip ',';
      go ()
    end
  in
  go ();
  (List.rev !pairs, !i)

let parse_prometheus text =
  (* Escaped newlines keep every sample on one physical line, so a
     per-line split is safe here (unlike CSV below). *)
  let lines = String.split_on_char '\n' text in
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else begin
        let name_end =
          match String.index_opt line '{' with
          | Some i -> i
          | None -> (
              match String.index_opt line ' ' with
              | Some i -> i
              | None -> failwith ("metric line without value: " ^ line))
        in
        let name = String.sub line 0 name_end in
        let labels, rest_start =
          if line.[name_end] = '{' then parse_label_set line name_end
          else ([], name_end)
        in
        let value_str =
          String.trim
            (String.sub line rest_start (String.length line - rest_start))
        in
        match parse_float_special value_str with
        | Some v -> Some (name, labels, v)
        | None -> failwith ("bad metric value: " ^ line)
      end)
    lines

let split_csv_line line =
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let in_quotes = ref false in
  let i = ref 0 in
  let n = String.length line in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else if c = '"' then in_quotes := true
    else if c = ',' then begin
      fields := Buffer.contents buf :: !fields;
      Buffer.clear buf
    end
    else Buffer.add_char buf c;
    incr i
  done;
  fields := Buffer.contents buf :: !fields;
  List.rev !fields

(* Quoted fields may span newlines, so records cannot be found with a
   plain line split: walk the text once, treating a newline as a record
   break only outside quotes. *)
let split_csv_records text =
  let records = ref [] in
  let buf = Buffer.create 64 in
  let in_quotes = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_quotes := not !in_quotes;
        Buffer.add_char buf c
      end
      else if c = '\n' && not !in_quotes then begin
        records := Buffer.contents buf :: !records;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    text;
  if Buffer.length buf > 0 then records := Buffer.contents buf :: !records;
  List.rev !records

let parse_csv text =
  match split_csv_records text with
  | [] -> []
  | header :: rows ->
      if String.trim header <> "name,labels,kind,value" then
        failwith ("bad CSV header: " ^ header);
      List.filter_map
        (fun row ->
          if String.trim row = "" then None
          else
            match split_csv_line row with
            | [ name; labels; kind; value ] ->
                let labels =
                  if labels = "" then []
                  else
                    String.split_on_char ';' labels
                    |> List.map (fun pair ->
                           match String.index_opt pair '=' with
                           | Some eq ->
                               ( String.sub pair 0 eq,
                                 String.sub pair (eq + 1)
                                   (String.length pair - eq - 1) )
                           | None -> failwith ("bad CSV label: " ^ row))
                in
                let kind =
                  match kind with
                  | "counter" -> Counter
                  | "gauge" -> Gauge
                  | k -> failwith ("bad CSV kind: " ^ k)
                in
                let value =
                  match parse_float_special value with
                  | Some v -> v
                  | None -> failwith ("bad CSV value: " ^ row)
                in
                Some { name; labels; kind; value; help = None }
            | _ -> failwith ("bad CSV row: " ^ row))
        rows

(* Json_min prints floats with %.17g; a NaN quantile (empty histogram)
   would break the document, so quote non-finite values. *)
let json_num v =
  if Float.is_finite v then Json_min.Num v
  else Json_min.Str (if Float.is_nan v then "nan" else if v > 0.0 then "inf" else "-inf")

let to_json_fragment registry =
  let scalar s =
    Json_min.Obj
      [
        ("name", Json_min.Str (sanitize_name s.name));
        ( "labels",
          Json_min.Obj (List.map (fun (k, v) -> (k, Json_min.Str v)) s.labels)
        );
        ( "kind",
          Json_min.Str
            (match s.kind with Counter -> "counter" | Gauge -> "gauge") );
        ("value", json_num s.value);
      ]
  in
  let hist h =
    Json_min.Obj
      ([
         ("name", Json_min.Str (sanitize_name h.h_name));
         ( "labels",
           Json_min.Obj
             (List.map (fun (k, v) -> (k, Json_min.Str v)) h.h_labels) );
         ("kind", Json_min.Str "histogram");
       ]
      @ List.map (fun (stat, v) -> (stat, json_num v)) (hist_stats h.h_hist))
  in
  Json_min.to_string
    (Json_min.Arr
       (List.map scalar (samples registry)
       @ List.map hist (sorted_hsamples registry)))
