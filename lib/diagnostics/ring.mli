(** Bounded ring buffer of floats for per-iteration residual histories.

    Pushes are O(1); once [capacity] samples have been recorded the
    oldest are overwritten, so a pathological million-iteration solve
    can never grow the history without bound. [to_array] returns the
    retained window in chronological order. *)

type t

val create : int -> t
(** [create capacity]. @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int

val push : t -> float -> unit

val length : t -> int
(** Samples currently retained ([<= capacity]). *)

val total : t -> int
(** Samples ever pushed (may exceed [capacity]). *)

val to_array : t -> float array
(** Retained window, oldest first. *)

val last : t -> float option
