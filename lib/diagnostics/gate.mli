(** Perf-regression gate over the benchmark JSON.

    Compares a freshly produced [BENCH_mpde.json] against the committed
    [bench/baseline.json] and fails when a watched metric drifted past
    its tolerance in the bad direction. Relative change is
    [(current - baseline) / baseline]; a [Lower_better] metric fails
    when the change exceeds [+tolerance], a [Higher_better] one when it
    drops below [-tolerance]. Improvements never fail the gate.

    Beyond the numeric checks, the gate hard-fails when the current run
    reports [mixer.converged = false] — a benchmark that silently
    stopped converging is worse than a slow one — and when a watched
    metric is missing from either file (schema drift would otherwise
    turn the gate into a no-op). *)

type direction = Lower_better | Higher_better

type check = {
  metric : string;  (** display name, e.g. ["mixer.wall_seconds"] *)
  path : string list;  (** JSON path into the bench document *)
  direction : direction;
  tolerance : float;  (** allowed relative drift, e.g. [0.15] *)
  absolute : float;
      (** extra absolute slack: when [> 0], any change with
          [|current - baseline| <= absolute] passes regardless of the
          relative check — for metrics whose baseline sits near zero
          (GC pause percentiles, utilization fractions), where relative
          drift is numerically meaningless. [0.0] disables it. *)
}

type verdict = {
  check : check;
  baseline : float;
  current : float;
  change : float;  (** relative, signed *)
  ok : bool;
}

type result = {
  verdicts : verdict list;
  errors : string list;  (** missing metrics, non-convergence, … *)
  passed : bool;
}

val default_tolerance : float
(** [0.15]. *)

val default_checks : ?overrides:(string * float) list -> float -> check list
(** The watched metrics — [mixer.wall_seconds], [mixer.newton_iterations],
    [mixer.gmres_iterations], [mixer.lu_dense_factors] and
    [mixer.lu_dense_solves] (dense preconditioner factorizations and
    blocked triangular-solve calls per solve, read from the embedded
    telemetry counters), [sweep.wall_1] (lower is better),
    [speedup.ratio], [sweep.speedup_2] and [sweep.speedup_4] (higher is
    better), the kernel micro-benchmarks [kernel.spmv_mflops] and
    [kernel.block_solve_cols_per_s] (higher is better, 50% default
    tolerance — isolated hot loops are noisier than end-to-end walls),
    plus the observability trio [sweep.domain_utilization_2] /
    [sweep.domain_utilization_4] (higher is better, 0.2 absolute slack)
    and [gc.major_pause_p99] (lower is better, 50ms absolute slack) —
    at the given default tolerance, with optional per-metric overrides
    keyed by display name. The [sweep.*] group watches the parallel
    sweep executor: serial wall time for the 8-job MPDE sweep, the
    2- and 4-domain speedups over it, and how evenly the domains stay
    busy.

    Independent of these relative checks, {!evaluate} enforces an
    absolute floor: when the current run reports [sweep.cores >= 2],
    [sweep.speedup_2] and [sweep.speedup_4] must be [>= 1.0] — a
    multi-core runner whose parallel sweep loses to serial fails the
    gate no matter how bad the blessed baseline was (a 4-domain
    slowdown alongside a healthy 2-domain run means contention, not a
    missing core). Single-core runners skip the floor. *)

val lookup_num : Json_min.t -> string list -> float option
(** Fetch a numeric leaf from a bench document — exposed so callers
    (e.g. [compare.exe]) can inspect the same fields the gate reads,
    such as [sweep.cores] when reporting why the speedup floor was
    waived. *)

val evaluate :
  ?checks:check list -> baseline:Json_min.t -> current:Json_min.t -> unit -> result

val render : result -> string
(** Human-readable table plus PASS/FAIL line, one metric per row. *)
