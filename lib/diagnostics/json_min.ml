type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if
      !pos + String.length word <= len
      && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ();
              go ()
          | Some ('b' | 'f') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char buf '?';
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      match peek () with Some c when is_num_char c -> true | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let path keys j =
  List.fold_left
    (fun acc key -> match acc with Some v -> member key v | None -> None)
    (Some j) keys

let num = function Num f -> Some f | _ -> None

let str = function Str s -> Some s | _ -> None

let bool = function Bool b -> Some b | _ -> None

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else if Float.is_nan f then Buffer.add_string buf "null"
  else if f > 0.0 then Buffer.add_string buf "1e999"
  else Buffer.add_string buf "-1e999"

let to_string j =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num f -> add_float buf f
    | Str s -> Buffer.add_string buf (escape_string s)
    | Arr l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            emit v)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (escape_string k);
            Buffer.add_char buf ':';
            emit v)
          fields;
        Buffer.add_char buf '}'
  in
  emit j;
  Buffer.contents buf
