type cls =
  | Quadratic
  | Linear of float
  | Stagnating
  | Diverging
  | Rescued of string
  | Insufficient_data

let divergence_ratio = 1.5

let stagnation_ratio = 0.97

let quadratic_order_min = 1.6

let clean history =
  Array.to_list history
  |> List.filter (fun r -> Float.is_finite r && r > 0.0)
  |> Array.of_list

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  if n = 0 then nan
  else if n mod 2 = 1 then s.(n / 2)
  else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))

(* Successive step ratios r_{i+1}/r_i. *)
let ratios r =
  Array.init (Array.length r - 1) (fun i -> r.(i + 1) /. r.(i))

let rate_estimate history =
  let r = clean history in
  if Array.length r < 2 then None
  else begin
    let decreasing =
      ratios r |> Array.to_list |> List.filter (fun q -> q < 1.0 && q > 0.0)
    in
    match decreasing with
    | [] -> None
    | l ->
        let log_sum = List.fold_left (fun a q -> a +. log q) 0.0 l in
        Some (exp (log_sum /. float_of_int (List.length l)))
  end

(* Observed order over strictly decreasing triples; flat samples (e.g.
   a residual parked at the round-off floor) contribute nothing. *)
let observed_order history =
  let r = clean history in
  let n = Array.length r in
  if n < 3 then None
  else begin
    let orders = ref [] in
    for i = 1 to n - 2 do
      if r.(i) < r.(i - 1) && r.(i + 1) < r.(i) then begin
        let denom = log (r.(i) /. r.(i - 1)) in
        if denom < -1e-9 then
          orders := (log (r.(i + 1) /. r.(i)) /. denom) :: !orders
      end
    done;
    match !orders with [] -> None | l -> Some (median (Array.of_list l))
  end

let classify ?strategy history =
  match strategy with
  | Some s when s <> "newton" && s <> "" && s <> "none" -> Rescued s
  | _ ->
      let r = clean history in
      let n = Array.length r in
      if n < 3 then Insufficient_data
      else begin
        let rho = ratios r in
        let med = median rho in
        if med >= divergence_ratio || r.(n - 1) > 10.0 *. r.(0) then Diverging
        else if med >= stagnation_ratio then Stagnating
        else
          match observed_order history with
          | Some q when q >= quadratic_order_min -> Quadratic
          | _ -> (
              match rate_estimate history with
              | Some rate -> Linear rate
              | None -> Stagnating)
      end

let to_string = function
  | Quadratic -> "quadratic"
  | Linear rate -> Printf.sprintf "linear(rate=%.2f)" rate
  | Stagnating -> "stagnating"
  | Diverging -> "diverging"
  | Rescued s -> Printf.sprintf "rescued(%s)" s
  | Insufficient_data -> "insufficient-data"

let pp ppf c = Format.pp_print_string ppf (to_string c)
