(** Minimal JSON tree, parser, and emitter.

    The repo deliberately carries no external JSON dependency; the
    telemetry sinks and {!Resilience.Report} hand-emit their output.
    Diagnostics additionally needs to {e read} JSON — the perf gate
    parses [BENCH_mpde.json] and [bench/baseline.json] — so this module
    provides the small recursive-descent parser those consumers share.

    Supports the JSON actually produced by this repo: objects, arrays,
    strings with the common escapes, numbers (including [NaN]-free
    floats printed by [%.17g]), booleans, and [null]. Unicode escapes
    are accepted but decoded as ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** First binding of the key in an object; [None] otherwise. *)

val path : string list -> t -> t option
(** [path ["a"; "b"] j] is [member "b"] of [member "a"] of [j]. *)

val num : t -> float option

val str : t -> string option

val bool : t -> bool option

val to_string : t -> string
(** Compact emission; floats via [%.17g], strings escaped. *)

val escape_string : string -> string
(** The quoted, escaped form of a string (including the quotes). *)
