(** Typed metric registry with three exposition formats.

    The registry is the bridge between the solver-side instrumentation
    ({!Telemetry} counters/gauges/histograms, plus diagnostics-computed
    quantities such as condition estimates) and the outside world:

    - Prometheus text exposition (what [--metrics foo.prom] writes),
    - CSV ([--metrics foo.csv]),
    - a JSON fragment embedded as the ["diagnostics"] section of
      {!Resilience.Report}.

    Metric names are free-form dotted strings on the way in
    (["newton.iterations"]) and sanitized on the way out: a [rfss_]
    prefix, dots and other invalid characters mapped to underscores,
    and a [_total] suffix for counters in Prometheus exposition.
    Parsers for both text formats are provided so tests can round-trip
    what the CLI writes. *)

type kind = Counter | Gauge

type sample = {
  name : string;  (** raw dotted name, pre-sanitization *)
  labels : (string * string) list;  (** sorted by key *)
  kind : kind;
  value : float;
  help : string option;
}

type t

val create : unit -> t

val counter :
  ?help:string -> ?labels:(string * string) list -> t -> string -> float -> unit
(** Register (or overwrite) a counter sample. Counters are cumulative
    totals; the registry stores one scrape's worth, it does not sum. *)

val gauge :
  ?help:string -> ?labels:(string * string) list -> t -> string -> float -> unit

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  t ->
  string ->
  Telemetry.histogram ->
  unit
(** Register (or overwrite) a bucketed histogram family. In Prometheus
    exposition it renders as cumulative [_bucket{le="..."}] series on
    the fixed {!Telemetry.bucket_le} layout plus [_sum] and [_count];
    in CSV and JSON it flattens to count/sum/min/max/p50/p90/p99. *)

val samples : t -> sample list
(** Scalar samples only, sorted by (name, labels) for deterministic
    output. Histograms are listed by {!histograms}. *)

val histograms : t -> (string * (string * string) list * Telemetry.histogram) list
(** Registered histogram families, sorted. *)

val of_telemetry : ?registry:t -> Telemetry.snapshot -> t
(** Fold a telemetry snapshot into a registry ([registry] when given,
    a fresh one otherwise): counters map to counters; gauges to gauges;
    each histogram becomes a real {!histogram} family plus sibling
    [<name>.min] / [<name>.max] gauges (the Prometheus histogram shape
    has no min/max); the span tree is aggregated by span name into
    [span.wall_seconds] / [span.cpu_seconds] gauges and a [span.calls]
    counter, labelled [span="<name>"]. *)

val sanitize_name : ?kind:kind -> string -> string
(** Prometheus-legal name: [rfss_] prefix, invalid chars to [_],
    [_total] appended for counters (unless already present). *)

val to_prometheus : t -> string
(** Text exposition format: [# HELP] and [# TYPE] lines for {e every}
    metric family (a generated fallback when no help text was given),
    then one sample line each. Histogram families emit the cumulative
    [_bucket] series (ending in [le="+Inf"]), [_sum] and [_count]. *)

val to_csv : t -> string
(** Header [name,labels,kind,value]; labels rendered [k=v;k2=v2];
    fields quoted when needed. The [name] column carries the sanitized
    name without the counter [_total] suffix (the [kind] column already
    says so). *)

val parse_prometheus : string -> (string * (string * string) list * float) list
(** Sample lines of a Prometheus text page (comments skipped), in file
    order. @raise Failure on lines that are neither. *)

val parse_csv : string -> sample list
(** Inverse of {!to_csv} up to [help] (not serialized) and name
    sanitization (already applied). @raise Failure on malformed rows. *)

val to_json_fragment : t -> string
(** JSON array of [{"name":…,"labels":{…},"kind":…,"value":…}] objects,
    for embedding in a {!Resilience.Report} section. *)
