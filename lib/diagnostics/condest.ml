open Linalg

(* Deterministic LCG (Numerical Recipes constants) so estimates are
   reproducible run-to-run without touching the global RNG. *)
let lcg_vector ~seed n =
  let state = ref (Int64.of_int (0x9e3779b9 lxor seed)) in
  let next () =
    state :=
      Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    (* Map the top 53 bits to (-1, 1). *)
    let bits = Int64.to_float (Int64.shift_right_logical !state 11) in
    (bits /. 4503599627370496.0 *. 2.0) -. 1.0
  in
  Array.init n (fun _ -> next ())

let normalize v =
  let nrm = Vec.norm2 v in
  if nrm > 0.0 && Float.is_finite nrm then Vec.scale (1.0 /. nrm) v
  else (
    let u = Array.make (Array.length v) 0.0 in
    if Array.length u > 0 then u.(0) <- 1.0;
    u)

let two_norm_est ?(iters = 30) ?(seed = 1) ~n ~apply ~apply_t () =
  if n = 0 then 0.0
  else begin
    let v = ref (normalize (lcg_vector ~seed n)) in
    let sigma = ref 0.0 in
    (try
       for _ = 1 to iters do
         let w = apply !v in
         let s = Vec.norm2 w in
         if not (Float.is_finite s) then begin
           sigma := infinity;
           raise Exit
         end;
         if s = 0.0 then begin
           sigma := 0.0;
           raise Exit
         end;
         sigma := s;
         v := normalize (apply_t w)
       done
     with Exit -> ());
    !sigma
  end

let spectral_radius_est ?(iters = 30) ?(restarts = 2) ?(seed = 1) ~n ~apply ()
    =
  if n = 0 then 0.0
  else begin
    let best = ref 0.0 in
    for r = 0 to restarts - 1 do
      let v = ref (normalize (lcg_vector ~seed:(seed + (r * 7919)) n)) in
      (try
         for _ = 1 to iters do
           let w = apply !v in
           let s = Vec.norm2 w in
           if not (Float.is_finite s) then begin
             best := infinity;
             raise Exit
           end;
           if s = 0.0 then raise Exit;
           if s > !best then best := s;
           v := Vec.scale (1.0 /. s) w
         done
       with Exit -> ())
    done;
    !best
  end

let condest_dense a lu =
  let n = a.Mat.rows in
  let sigma_a =
    two_norm_est ~n ~apply:(Mat.mul_vec a) ~apply_t:(Mat.tmul_vec a) ()
  in
  let sigma_inv =
    two_norm_est ~n ~apply:(Lu.solve lu) ~apply_t:(Lu.solve_transposed lu) ()
  in
  sigma_a *. sigma_inv

let condest_csr a splu =
  let n = a.Sparse.Csr.rows in
  let sigma_a =
    two_norm_est ~n
      ~apply:(Sparse.Csr.mul_vec a)
      ~apply_t:(Sparse.Csr.tmul_vec a)
      ()
  in
  let rho_inv = spectral_radius_est ~n ~apply:(Sparse.Splu.solve splu) () in
  sigma_a *. rho_inv
