(** Condition-number estimation by power iteration on existing
    factorizations.

    The estimators reuse the LU solve the engines already paid for, so a
    κ estimate costs a handful of matvecs and triangular solves — no new
    factorization, no SVD.

    Dense: [sigma_max(A)] via power iteration on [AᵀA] (matvec +
    transposed matvec), and [sigma_max(A⁻¹)] the same way using
    [Lu.solve] / [Lu.solve_transposed]. The product is a genuine 2-norm
    condition estimate.

    Sparse CSR: [sigma_max(A)] as above via [Csr.mul_vec] /
    [Csr.tmul_vec]; {!Splu} has no transposed solve, so [A⁻¹] is probed
    by plain power iteration (spectral radius), giving a {e lower bound}
    on [sigma_max(A⁻¹)] — and thus on κ. That is the useful direction
    for health reporting: a large estimate is trustworthy.

    All starting vectors come from a deterministic LCG so repeated runs
    agree to the last bit. *)

val two_norm_est :
  ?iters:int ->
  ?seed:int ->
  n:int ->
  apply:(float array -> float array) ->
  apply_t:(float array -> float array) ->
  unit ->
  float
(** Largest singular value of the operator [apply] (with transpose
    [apply_t]) on vectors of length [n], by power iteration on [AᵀA].
    [iters] defaults to 30. Returns [0.] for [n = 0]. *)

val spectral_radius_est :
  ?iters:int ->
  ?restarts:int ->
  ?seed:int ->
  n:int ->
  apply:(float array -> float array) ->
  unit ->
  float
(** Largest eigenvalue magnitude of [apply], by power iteration with
    [restarts] (default 2) independent deterministic starts; the largest
    estimate wins. *)

val condest_dense : Linalg.Mat.t -> Linalg.Lu.t -> float
(** 2-norm condition estimate [sigma_max(A) * sigma_max(A⁻¹)] for a
    square matrix with its factorization. [infinity] when the inverse
    probe overflows. *)

val condest_csr : Sparse.Csr.t -> Sparse.Splu.t -> float
(** Condition estimate (lower bound, see above) for a sparse matrix with
    its factorization. *)
