type t = {
  data : float array;
  mutable next : int;  (** index of the next write *)
  mutable total : int;  (** pushes ever *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Diagnostics.Ring.create: capacity must be positive";
  { data = Array.make capacity 0.0; next = 0; total = 0 }

let capacity r = Array.length r.data

let push r v =
  r.data.(r.next) <- v;
  r.next <- (r.next + 1) mod Array.length r.data;
  r.total <- r.total + 1

let length r = min r.total (Array.length r.data)

let total r = r.total

let to_array r =
  let n = length r in
  let cap = Array.length r.data in
  (* Oldest retained sample sits at [next] once the buffer has wrapped,
     at 0 before that. *)
  let start = if r.total <= cap then 0 else r.next in
  Array.init n (fun k -> r.data.((start + k) mod cap))

let last r =
  if r.total = 0 then None
  else Some r.data.((r.next + Array.length r.data - 1) mod Array.length r.data)
