(** Dense LU factorization with partial pivoting.

    Factors a square matrix [a] as [P a = L U] where [P] is a row
    permutation, [L] unit lower triangular and [U] upper triangular, both
    stored packed in a single matrix. *)

type t
(** A computed factorization. *)

exception Singular of int
(** Raised with the offending pivot column when the matrix is numerically
    singular (pivot magnitude below the singularity threshold). *)

val factor : ?pivot_tol:float -> Mat.t -> t
(** [factor a] computes the factorization of square [a]. [a] is not
    modified. @raise Singular if a pivot underflows [pivot_tol]
    (default [1e-300]). @raise Invalid_argument on non-square input. *)

val factor_in_place : ?pivot_tol:float -> Mat.t -> t
(** Like {!factor} but overwrites [a] with the packed factors instead
    of copying — the returned factorization owns [a]'s storage. For
    workspace-style callers that restamp and refactor the same staging
    matrix every rebuild. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] returns [x] with [a x = b]. *)

val solve_into : t -> Vec.t -> Vec.t -> unit
(** [solve_into lu b x] stores the solution in [x]; [b] is left intact.
    [b] and [x] may be the same array. *)

val solve_many_into : t -> ?off:int -> cols:int -> Vec.t -> Vec.t -> unit
(** [solve_many_into lu ~off ~cols b x] applies one factor to a
    contiguous panel of right-hand-side columns: column [c] of the
    panel lives at offset [(off + c) * n] of [b] and the solutions land
    at the same offsets of [x] ([off] defaults to 0). The permutation
    is applied once over the whole panel, then the forward/backward
    substitutions run fused and cache-blocked over the columns. Each
    column's arithmetic is performed in exactly the order of
    {!solve_into}, so the results are bitwise identical to [cols]
    single-column solves. [b] and [x] must not alias. Counts one
    [lu.dense_solves] telemetry tick per call and [cols] ticks of
    [lu.dense_solve_columns]. *)

val solve_transposed : t -> Vec.t -> Vec.t
(** [solve_transposed lu b] returns [x] with [aᵀ x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Column-wise solve: [solve_mat lu b] returns [x] with [a x = b]. *)

val det : t -> float
(** Determinant of the factored matrix (sign includes permutation). *)

val inverse : t -> Mat.t

val solve_dense : Mat.t -> Vec.t -> Vec.t
(** One-shot convenience: factor then solve. *)

val rcond_estimate : t -> float
(** Cheap reciprocal-condition estimate: [min |u_ii| / max |u_ii|].
    Zero means singular-to-working-precision. *)
