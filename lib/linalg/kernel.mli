(** Unboxed Float64 kernels on Bigarray vectors.

    The allocation-free inner loops of the Krylov layer and the MPDE
    matrix-free operator run on these: bounds checks are hoisted to one
    dimension test per call and the element loops use unchecked
    accesses. [dot], [nrm2], [axpy] and [spmv] accumulate in the same
    sequential order as their {!Vec} / {!Sparse.Csr} [float array]
    counterparts, so results are bitwise identical. *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> vec
(** Zero-filled vector of the given length. *)

val dim : vec -> int
val get : vec -> int -> float
val set : vec -> int -> float -> unit
val fill : vec -> float -> unit

val blit : vec -> vec -> unit
(** [blit src dst] copies [src] into [dst] (same length). *)

val of_array : float array -> vec
val to_array : vec -> float array

val blit_from_array : float array -> vec -> unit
val blit_to_array : vec -> float array -> unit

val dot : vec -> vec -> float
val nrm2 : vec -> float

val axpy : float -> vec -> vec -> unit
(** [axpy a x y] computes [y <- y + a*x]. *)

val scale_ip : float -> vec -> unit
val scale_into : float -> vec -> vec -> unit
(** [scale_into a x y] computes [y <- a*x]. *)

val sub_into : vec -> vec -> vec -> unit
(** [sub_into a b y] computes [y <- a - b]. *)

val add_ip : vec -> vec -> unit
(** [add_ip x y] computes [x <- x + y]. *)

val is_finite : vec -> bool
(** No element is NaN or infinite. *)

val spmv :
  rows:int ->
  row_ptr:int array ->
  col_idx:int array ->
  values:float array ->
  vec ->
  vec ->
  unit
(** CSR sparse matrix-vector product [y <- A x] from raw index/value
    arrays; column indices are validated once, then the row loops run
    unchecked. Accumulation order per row matches
    [Sparse.Csr.mul_vec_into]. *)
