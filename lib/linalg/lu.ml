type t = { lu : Mat.t; perm : int array; sign : float }

exception Singular of int

(* Doolittle LU with partial pivoting, overwriting [lu]. [factor] hands
   in a copy; [factor_in_place] consumes a caller-owned staging matrix
   so the per-grid-point preconditioner rebuild allocates nothing big. *)
let factor_into ?(pivot_tol = 1e-300) lu =
  let n, m = Mat.dims lu in
  if n <> m then invalid_arg "Lu.factor: matrix not square";
  Telemetry.count "lu.dense_factors";
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !piv k) then piv := i
    done;
    if !piv <> k then begin
      Mat.swap_rows lu k !piv;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    if Float.abs pivot < pivot_tol then raise (Singular k);
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let factor ?pivot_tol a = factor_into ?pivot_tol (Mat.copy a)
let factor_in_place ?pivot_tol a = factor_into ?pivot_tol a

let size f = f.lu.Mat.rows

let solve_into f b x =
  let n = size f in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve_into: dimension mismatch";
  Telemetry.count "lu.dense_solves";
  (* Apply the permutation straight into [x] when it does not alias
     [b]; the scratch allocation only survives for the aliased case.
     This is the sweep preconditioner's innermost call (np dense solves
     per GMRES iteration), so it must not allocate. *)
  let y =
    if x == b then Array.init n (fun i -> b.(f.perm.(i)))
    else begin
      for i = 0 to n - 1 do
        x.(i) <- b.(f.perm.(i))
      done;
      x
    end
  in
  (* Forward substitution with unit L. *)
  for i = 1 to n - 1 do
    let s = ref y.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get f.lu i j *. y.(j))
    done;
    y.(i) <- !s
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get f.lu i j *. y.(j))
    done;
    y.(i) <- !s /. Mat.get f.lu i i
  done;
  if y != x then Array.blit y 0 x 0 n

let solve f b =
  let x = Array.make (size f) 0.0 in
  solve_into f b x;
  x

let solve_transposed f b =
  let n = size f in
  if Array.length b <> n then invalid_arg "Lu.solve_transposed: dimension mismatch";
  let y = Array.copy b in
  (* Solve Uᵀ z = b (forward). *)
  for i = 0 to n - 1 do
    let s = ref y.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get f.lu j i *. y.(j))
    done;
    y.(i) <- !s /. Mat.get f.lu i i
  done;
  (* Solve Lᵀ w = z (backward, unit diagonal). *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get f.lu j i *. y.(j))
    done;
    y.(i) <- !s
  done;
  (* Undo permutation: x.(perm i) = w i. *)
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    x.(f.perm.(i)) <- y.(i)
  done;
  x

let solve_mat f b =
  let n = size f in
  if b.Mat.rows <> n then invalid_arg "Lu.solve_mat: dimension mismatch";
  let x = Mat.create n b.Mat.cols in
  let column = Array.make n 0.0 in
  for j = 0 to b.Mat.cols - 1 do
    for i = 0 to n - 1 do
      column.(i) <- Mat.get b i j
    done;
    solve_into f column column;
    for i = 0 to n - 1 do
      Mat.set x i j column.(i)
    done
  done;
  x

let det f =
  let n = size f in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get f.lu i i
  done;
  !d

let inverse f = solve_mat f (Mat.identity (size f))

let solve_dense a b = solve (factor a) b

let rcond_estimate f =
  let n = size f in
  if n = 0 then 1.0
  else begin
    let mn = ref infinity and mx = ref 0.0 in
    for i = 0 to n - 1 do
      let d = Float.abs (Mat.get f.lu i i) in
      if d < !mn then mn := d;
      if d > !mx then mx := d
    done;
    if !mx = 0.0 then 0.0 else !mn /. !mx
  end
