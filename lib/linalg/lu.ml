type t = { lu : Mat.t; perm : int array; sign : float }

exception Singular of int

(* Doolittle LU with partial pivoting, overwriting [lu]. [factor] hands
   in a copy; [factor_in_place] consumes a caller-owned staging matrix
   so the per-grid-point preconditioner rebuild allocates nothing big. *)
let factor_into ?(pivot_tol = 1e-300) lu =
  let n, m = Mat.dims lu in
  if n <> m then invalid_arg "Lu.factor: matrix not square";
  Telemetry.count "lu.dense_factors";
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !piv k) then piv := i
    done;
    if !piv <> k then begin
      Mat.swap_rows lu k !piv;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    if Float.abs pivot < pivot_tol then raise (Singular k);
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let factor ?pivot_tol a = factor_into ?pivot_tol (Mat.copy a)
let factor_in_place ?pivot_tol a = factor_into ?pivot_tol a

let size f = f.lu.Mat.rows

(* Fused forward/backward substitution over one column stored at
   offset [xb] of [y]. The factor data is accessed unchecked — the
   caller validated the panel dimensions — and the arithmetic order per
   column is the canonical one every solve entry point shares, so
   single-column and panel solves are bitwise identical. *)
let substitute_column (data : float array) n (y : float array) xb =
  (* Forward substitution with unit L. *)
  for i = 1 to n - 1 do
    let ib = i * n in
    let s = ref (Array.unsafe_get y (xb + i)) in
    for j = 0 to i - 1 do
      s :=
        !s
        -. (Array.unsafe_get data (ib + j) *. Array.unsafe_get y (xb + j))
    done;
    Array.unsafe_set y (xb + i) !s
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let ib = i * n in
    let s = ref (Array.unsafe_get y (xb + i)) in
    for j = i + 1 to n - 1 do
      s :=
        !s
        -. (Array.unsafe_get data (ib + j) *. Array.unsafe_get y (xb + j))
    done;
    Array.unsafe_set y (xb + i) (!s /. Array.unsafe_get data (ib + i))
  done

let solve_into f b x =
  let n = size f in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve_into: dimension mismatch";
  Telemetry.count "lu.dense_solves";
  Telemetry.count "lu.dense_solve_columns";
  (* Apply the permutation straight into [x] when it does not alias
     [b]; the scratch allocation only survives for the aliased case.
     This is the sweep preconditioner's innermost call (np dense solves
     per GMRES iteration), so it must not allocate. *)
  let y =
    if x == b then Array.init n (fun i -> b.(f.perm.(i)))
    else begin
      for i = 0 to n - 1 do
        x.(i) <- b.(f.perm.(i))
      done;
      x
    end
  in
  substitute_column f.lu.Mat.data n y 0;
  if y != x then Array.blit y 0 x 0 n

(* Panel width processed per blocked pass: small enough that the block
   of columns and the factor both stay cache-resident during the fused
   sweeps. *)
let panel_block = 16

let solve_many_into f ?(off = 0) ~cols b x =
  let n = size f in
  if
    off < 0 || cols < 0
    || Array.length b < (off + cols) * n
    || Array.length x < (off + cols) * n
  then invalid_arg "Lu.solve_many_into: panel dimension mismatch";
  if x == b then invalid_arg "Lu.solve_many_into: aliased panels";
  Telemetry.count "lu.dense_solves";
  Telemetry.count ~by:cols "lu.dense_solve_columns";
  let data = f.lu.Mat.data and perm = f.perm in
  (* Permutation applied once over the whole panel... *)
  for c = off to off + cols - 1 do
    let xb = c * n in
    for i = 0 to n - 1 do
      Array.unsafe_set x (xb + i)
        (Array.unsafe_get b (xb + Array.unsafe_get perm i))
    done
  done;
  (* ...then fused forward/backward sweeps, blocked over columns. *)
  let c0 = ref off in
  while !c0 < off + cols do
    let c1 = min (off + cols) (!c0 + panel_block) in
    for c = !c0 to c1 - 1 do
      substitute_column data n x (c * n)
    done;
    c0 := c1
  done

let solve f b =
  let x = Array.make (size f) 0.0 in
  solve_into f b x;
  x

let solve_transposed f b =
  let n = size f in
  if Array.length b <> n then invalid_arg "Lu.solve_transposed: dimension mismatch";
  let y = Array.copy b in
  (* Solve Uᵀ z = b (forward). *)
  for i = 0 to n - 1 do
    let s = ref y.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get f.lu j i *. y.(j))
    done;
    y.(i) <- !s /. Mat.get f.lu i i
  done;
  (* Solve Lᵀ w = z (backward, unit diagonal). *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get f.lu j i *. y.(j))
    done;
    y.(i) <- !s
  done;
  (* Undo permutation: x.(perm i) = w i. *)
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    x.(f.perm.(i)) <- y.(i)
  done;
  x

let solve_mat f b =
  let n = size f in
  if b.Mat.rows <> n then invalid_arg "Lu.solve_mat: dimension mismatch";
  let x = Mat.create n b.Mat.cols in
  let column = Array.make n 0.0 in
  for j = 0 to b.Mat.cols - 1 do
    for i = 0 to n - 1 do
      column.(i) <- Mat.get b i j
    done;
    solve_into f column column;
    for i = 0 to n - 1 do
      Mat.set x i j column.(i)
    done
  done;
  x

let det f =
  let n = size f in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get f.lu i i
  done;
  !d

let inverse f = solve_mat f (Mat.identity (size f))

let solve_dense a b = solve (factor a) b

let rcond_estimate f =
  let n = size f in
  if n = 0 then 1.0
  else begin
    let mn = ref infinity and mx = ref 0.0 in
    for i = 0 to n - 1 do
      let d = Float.abs (Mat.get f.lu i i) in
      if d < !mn then mn := d;
      if d > !mx then mx := d
    done;
    if !mx = 0.0 then 0.0 else !mn /. !mx
  end
