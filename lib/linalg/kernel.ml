(* Unboxed Float64 Bigarray kernels for the solver hot paths.

   Every loop hoists its bounds checks into one dimension test up
   front and then runs on [unsafe_get]/[unsafe_set]; the accumulation
   order of [dot]/[nrm2]/[axpy] is the plain sequential order of
   {!Vec}, so results are bitwise identical to the [float array]
   reference implementations. *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : vec =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill v 0.0;
  v

let dim (v : vec) = Bigarray.Array1.dim v
let get (v : vec) i = Bigarray.Array1.get v i
let set (v : vec) i x = Bigarray.Array1.set v i x
let fill (v : vec) x = Bigarray.Array1.fill v x

let check_same_dim (x : vec) (y : vec) =
  if Bigarray.Array1.dim x <> Bigarray.Array1.dim y then
    invalid_arg "Kernel: dimension mismatch"

let blit (x : vec) (y : vec) =
  check_same_dim x y;
  Bigarray.Array1.blit x y

let of_array (a : float array) : vec =
  let n = Array.length a in
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set v i (Array.unsafe_get a i)
  done;
  v

let to_array (v : vec) =
  let n = Bigarray.Array1.dim v in
  Array.init n (fun i -> Bigarray.Array1.unsafe_get v i)

let blit_from_array (a : float array) (v : vec) =
  let n = Array.length a in
  if Bigarray.Array1.dim v <> n then
    invalid_arg "Kernel.blit_from_array: dimension mismatch";
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set v i (Array.unsafe_get a i)
  done

let blit_to_array (v : vec) (a : float array) =
  let n = Array.length a in
  if Bigarray.Array1.dim v <> n then
    invalid_arg "Kernel.blit_to_array: dimension mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set a i (Bigarray.Array1.unsafe_get v i)
  done

let dot (x : vec) (y : vec) =
  check_same_dim x y;
  let n = Bigarray.Array1.dim x in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (Bigarray.Array1.unsafe_get x i *. Bigarray.Array1.unsafe_get y i)
  done;
  !s

let nrm2 x = sqrt (dot x x)

let axpy a (x : vec) (y : vec) =
  check_same_dim x y;
  let n = Bigarray.Array1.dim x in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set y i
      (Bigarray.Array1.unsafe_get y i +. (a *. Bigarray.Array1.unsafe_get x i))
  done

let scale_ip a (x : vec) =
  let n = Bigarray.Array1.dim x in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set x i (a *. Bigarray.Array1.unsafe_get x i)
  done

let scale_into a (x : vec) (y : vec) =
  check_same_dim x y;
  let n = Bigarray.Array1.dim x in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set y i (a *. Bigarray.Array1.unsafe_get x i)
  done

(* y = a − b, elementwise (the GMRES residual update). *)
let sub_into (a : vec) (b : vec) (y : vec) =
  check_same_dim a y;
  check_same_dim b y;
  let n = Bigarray.Array1.dim y in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set y i
      (Bigarray.Array1.unsafe_get a i -. Bigarray.Array1.unsafe_get b i)
  done

let add_ip (x : vec) (y : vec) =
  check_same_dim x y;
  let n = Bigarray.Array1.dim x in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set x i
      (Bigarray.Array1.unsafe_get x i +. Bigarray.Array1.unsafe_get y i)
  done

let is_finite (x : vec) =
  let n = Bigarray.Array1.dim x in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (Float.is_finite (Bigarray.Array1.unsafe_get x i)) then ok := false
  done;
  !ok

(* CSR sparse matrix-vector product y = A x with the index arrays
   handed in raw. One validation pass over [row_ptr]'s extremes and the
   vector dimensions replaces the per-element bounds checks. *)
let spmv ~rows ~(row_ptr : int array) ~(col_idx : int array)
    ~(values : float array) (x : vec) (y : vec) =
  if
    Array.length row_ptr < rows + 1
    || Bigarray.Array1.dim y < rows
    || Array.length col_idx < row_ptr.(rows)
    || Array.length values < row_ptr.(rows)
  then invalid_arg "Kernel.spmv: shape mismatch";
  let cols = Bigarray.Array1.dim x in
  (* Column indices are validated once so the inner loop can use
     unchecked loads of [x]. *)
  for k = 0 to row_ptr.(rows) - 1 do
    let j = Array.unsafe_get col_idx k in
    if j < 0 || j >= cols then invalid_arg "Kernel.spmv: column out of range"
  done;
  for i = 0 to rows - 1 do
    let s = ref 0.0 in
    let stop = Array.unsafe_get row_ptr (i + 1) in
    for k = Array.unsafe_get row_ptr i to stop - 1 do
      s :=
        !s
        +. Array.unsafe_get values k
           *. Bigarray.Array1.unsafe_get x (Array.unsafe_get col_idx k)
    done;
    Bigarray.Array1.unsafe_set y i !s
  done
