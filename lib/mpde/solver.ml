module Vec = Linalg.Vec
module Budget = Resilience.Budget
module Guard = Resilience.Guard
module Ladder = Resilience.Ladder
module Report = Resilience.Report

let log_src = Logs.Src.create "rfss.mpde" ~doc:"MPDE solver resilience"

module Log = (val Logs.src_log log_src : Logs.LOG)

type linear_solver =
  | Direct
  | Gmres_sweep of { restart : int; max_iter : int; tol : float }
  | Gmres_ilu0 of { restart : int; max_iter : int; tol : float }

let default_gmres = Gmres_sweep { restart = 60; max_iter = 600; tol = 1e-9 }

exception Linear_stall of string

type options = {
  max_newton : int;
  tol : float;
  scheme : Assemble.scheme;
  linear_solver : linear_solver;
  allow_continuation : bool;
  budget : Budget.t option;
}

let default_options =
  {
    max_newton = 50;
    tol = 1e-8;
    scheme = Assemble.Backward;
    linear_solver = default_gmres;
    allow_continuation = true;
    budget = None;
  }

let make_options ?(max_newton = default_options.max_newton)
    ?(tol = default_options.tol) ?(scheme = default_options.scheme)
    ?(linear_solver = default_options.linear_solver)
    ?(allow_continuation = default_options.allow_continuation) ?budget () =
  { max_newton; tol; scheme; linear_solver; allow_continuation; budget }

type stats = {
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  linear_iterations : int;
  continuation_steps : int;
  continuation_rejected : int;
  strategy : string;
  wall_seconds : float;
}

type solution = {
  grid : Grid.t;
  system : Assemble.system;
  big_x : Vec.t;
  stats : stats;
  report : Report.t;
}

(* Block forward-substitution sweep: apply M⁻¹ where M keeps the
   diagonal blocks D_p = (1/h1 + 1/h2)·C_p + G_p and the two
   backward-difference neighbour blocks, *dropping the periodic wraps*
   (i = 0 and j = 0 rows lose their wrapped neighbour). Lexicographic
   order then makes M block lower-triangular, solvable in one pass with
   dense per-point LU factors. [extra_diag] adds the pseudo-transient
   loading so the preconditioner tracks the loaded Jacobian. *)
let make_sweep_preconditioner scheme (g : Grid.t) ~size ~jacs ~extra_diag =
  let n = size in
  let np = Grid.points g in
  (* The sweep is exact (up to periodic wraps) for the backward scheme;
     for central/spectral t1 schemes it degrades to a block Gauss-Seidel
     over the t2 columns (the t1 coupling is left to GMRES). *)
  let t1_in_diag =
    match scheme with
    | Assemble.Backward -> true
    | Assemble.Central_t1 | Assemble.Spectral_t1 | Assemble.Spectral_both -> false
  in
  let diag_factors =
    Telemetry.span "mpde.precond.build" @@ fun () ->
    Array.init np (fun p ->
        let gp, cp = jacs.(p) in
        let d = Linalg.Mat.create n n in
        let scale_c =
          (if t1_in_diag then 1.0 /. g.Grid.h1 else 0.0) +. (1.0 /. g.Grid.h2)
        in
        for i = 0 to n - 1 do
          Sparse.Csr.iter_row cp i (fun j v -> Linalg.Mat.add_entry d i j (scale_c *. v));
          Sparse.Csr.iter_row gp i (fun j v -> Linalg.Mat.add_entry d i j v);
          if extra_diag <> 0.0 then Linalg.Mat.add_entry d i i extra_diag
        done;
        Linalg.Lu.factor d)
  in
  fun (r : Vec.t) ->
    Telemetry.count "mpde.precond.sweeps";
    let x = Array.make (np * n) 0.0 in
    let rhs = Array.make n 0.0 in
    let xp = Array.make n 0.0 in
    for p = 0 to np - 1 do
      let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
      Array.blit r (p * n) rhs 0 n;
      (* Move the lower-neighbour couplings (−C/h) to the right side. *)
      if t1_in_diag && i > 0 then begin
        let p_im1 = p - 1 in
        let _, c = jacs.(p_im1) in
        for row = 0 to n - 1 do
          Sparse.Csr.iter_row c row (fun col v ->
              rhs.(row) <- rhs.(row) +. (v /. g.Grid.h1 *. x.((p_im1 * n) + col)))
        done
      end;
      if j > 0 then begin
        let p_jm1 = p - g.Grid.n1 in
        let _, c = jacs.(p_jm1) in
        for row = 0 to n - 1 do
          Sparse.Csr.iter_row c row (fun col v ->
              rhs.(row) <- rhs.(row) +. (v /. g.Grid.h2 *. x.((p_jm1 * n) + col)))
        done
      end;
      Linalg.Lu.solve_into diag_factors.(p) rhs xp;
      Array.blit xp 0 x (p * n) n
    done;
    x

let with_extra_diag jac extra_diag =
  if extra_diag = 0.0 then jac
  else Sparse.Csr.add jac (Sparse.Csr.scale extra_diag (Sparse.Csr.identity jac.Sparse.Csr.rows))

let solve_linear ~linear_solver ~scheme ~budget (g : Grid.t) ~size ~jacs ~extra_diag
    ~rhs ~linear_iters =
  let jac () =
    with_extra_diag (Assemble.jacobian_csr scheme g ~size ~jacs) extra_diag
  in
  let run_gmres ~restart ~max_iter ~tol ~precond op =
    let result = Sparse.Krylov.gmres ~restart ~max_iter ~tol ~precond ?budget op rhs in
    linear_iters := !linear_iters + result.Sparse.Krylov.iterations;
    if not result.Sparse.Krylov.converged then begin
      (match budget with
      | Some b -> ( match Budget.exhausted b with Some e -> raise (Budget.Exhausted e) | None -> ())
      | None -> ());
      raise
        (Linear_stall
           (Printf.sprintf "GMRES stalled (residual %.3e after %d iterations)"
              result.Sparse.Krylov.residual_norm result.Sparse.Krylov.iterations))
    end;
    result.Sparse.Krylov.x
  in
  match linear_solver with
  | Direct ->
      Telemetry.span "mpde.linear.direct" @@ fun () ->
      Sparse.Splu.solve (Sparse.Splu.factor (jac ())) rhs
  | Gmres_sweep { restart; max_iter; tol } ->
      Telemetry.span "mpde.linear.gmres-sweep" @@ fun () ->
      let precond = make_sweep_preconditioner scheme g ~size ~jacs ~extra_diag in
      let op =
        let m = jac () in
        fun v -> Sparse.Csr.mul_vec m v
      in
      run_gmres ~restart ~max_iter ~tol ~precond op
  | Gmres_ilu0 { restart; max_iter; tol } ->
      Telemetry.span "mpde.linear.gmres-ilu0" @@ fun () ->
      let m = jac () in
      let factors = Sparse.Ilu0.factor m in
      run_gmres ~restart ~max_iter ~tol
        ~precond:(fun r -> Sparse.Ilu0.apply factors r)
        (fun v -> Sparse.Csr.mul_vec m v)

(* Scan per-point Jacobian blocks before they reach the linear solver:
   a NaN entry in G or C would otherwise poison GMRES silently. *)
let check_jacobians_finite ~n jacs =
  Array.iteri
    (fun p (gp, cp) ->
      let check_csr which (m : Sparse.Csr.t) =
        for i = 0 to n - 1 do
          Sparse.Csr.iter_row m i (fun j v ->
              if not (Float.is_finite v) then
                raise
                  (Guard.Non_finite
                     {
                       Guard.index = (p * n) + i;
                       value = v;
                       block = Some p;
                       offset = Some i;
                       context =
                         Printf.sprintf "MPDE %s-Jacobian entry (%d,%d)" which i j;
                     }))
        done
      in
      check_csr "G" gp;
      check_csr "C" cp)
    jacs

(* Pseudo-transient loading: residual gains [alpha·(x − anchor)] and the
   Jacobian [alpha·I], pulling the iterate toward the anchor while
   regularizing near-singular Jacobians; [alpha] is then relaxed to zero
   — the same decade-ladder idea as Dcop's gmin stepping, generalized to
   the full MPDE grid vector. *)
type ptc = { alpha : float; anchor : Vec.t }

let newton_problem ~options ~linear_solver ?ptc ~sys ~g ~sources ~linear_iters
    ~source_scale ~on_residual_violation () =
  let n = sys.Assemble.size in
  let scaled_sources =
    if source_scale = 1.0 then sources
    else Array.map (Vec.scale source_scale) sources
  in
  let base_residual big_x =
    let r = Assemble.residual options.scheme sys g ~sources:scaled_sources big_x in
    (match ptc with
    | Some { alpha; anchor } ->
        for i = 0 to Array.length r - 1 do
          r.(i) <- r.(i) +. (alpha *. (big_x.(i) -. anchor.(i)))
        done
    | None -> ());
    r
  in
  let extra_diag = match ptc with Some { alpha; _ } -> alpha | None -> 0.0 in
  {
    Numeric.Newton.residual =
      Guard.guarded ~context:"MPDE residual" ~block_size:n
        ~on_violation:on_residual_violation base_residual;
    solve_linearized =
      (fun big_x r ->
        let jacs = Assemble.point_jacobians sys g big_x in
        (try check_jacobians_finite ~n jacs
         with Guard.Non_finite v as e ->
           on_residual_violation v;
           raise e);
        solve_linear ~linear_solver ~scheme:options.scheme ~budget:options.budget g
          ~size:n ~jacs ~extra_diag ~rhs:r ~linear_iters);
  }

let is_direct = function Direct -> true | _ -> false

let is_ilu0 = function Gmres_ilu0 _ -> true | _ -> false

let solve ?(options = default_options) ?seed (sys : Assemble.system) (g : Grid.t) =
  let t_start = Telemetry.Clock.wall () in
  let tele_mark = Telemetry.mark () in
  Telemetry.span "mpde.solve" @@ fun () ->
  let n = sys.Assemble.size in
  let np = Grid.points g in
  let big = np * n in
  let big_x0 =
    let x = Array.make big 0.0 in
    (match seed with
    | Some s when Array.length s = n ->
        for p = 0 to np - 1 do
          Array.blit s 0 x (p * n) n
        done
    | Some s when Array.length s = big -> Array.blit s 0 x 0 big
    | Some _ -> invalid_arg "Mpde.Solver.solve: bad seed size"
    | None -> ());
    x
  in
  let sources = Assemble.sources_on_grid sys g in
  let linear_iters = ref 0 in
  let newton_total = ref 0 in
  let continuation_steps = ref 0 and continuation_rejected = ref 0 in
  let trajectory = ref [] in
  let stage_iters : (string * int) list ref = ref [] in
  let last_x = ref big_x0 in
  (* Attribution for non-finite residuals: remember the first violation
     per stage so a Diverged Newton outcome can be classified and
     reported with its grid point. *)
  let residual_violation = ref None in
  let on_residual_violation v =
    if !residual_violation = None then begin
      residual_violation := Some v;
      let p = Option.value v.Guard.block ~default:(v.Guard.index / n) in
      Log.warn (fun m ->
          m "non-finite residual at grid point (%d,%d), unknown %d: %h"
            (p mod g.Grid.n1) (p / g.Grid.n1)
            (Option.value v.Guard.offset ~default:(v.Guard.index mod n))
            v.Guard.value)
    end
  in
  let newton_options =
    {
      Numeric.Newton.default_options with
      max_iterations = options.max_newton;
      abs_tol = options.tol;
      budget = options.budget;
    }
  in
  let record_stage name iters =
    stage_iters :=
      (name, iters + (List.assoc_opt name !stage_iters |> Option.value ~default:0))
      :: List.remove_assoc name !stage_iters
  in
  let on_iteration _k _x rnorm =
    trajectory := rnorm :: !trajectory;
    Telemetry.observe "mpde.newton_residual" rnorm
  in
  (* Classify a failed Newton outcome into a ladder failure. *)
  let classify (stats : Numeric.Newton.stats) =
    match stats.Numeric.Newton.outcome with
    | Numeric.Newton.Converged -> assert false
    | Numeric.Newton.Exhausted e ->
        (Ladder.Exhausted e, Budget.exhaustion_to_string e)
    | Numeric.Newton.Diverged -> (
        match !residual_violation with
        | Some v -> (Ladder.Non_finite v, Guard.violation_to_string v)
        | None -> (Ladder.Nonlinear, "residual diverged"))
    | Numeric.Newton.Solver_failure msg -> (
        (* solve_linearized failures: a recorded violation means the
           Jacobian itself went non-finite (device overflow — escalate
           the nonlinear strategy); otherwise the linear solver broke. *)
        match !residual_violation with
        | Some v -> (Ladder.Non_finite v, Guard.violation_to_string v)
        | None -> (Ladder.Linear_stall, msg))
    | Numeric.Newton.Stalled -> (Ladder.Nonlinear, "Newton stalled")
    | Numeric.Newton.Max_iterations -> (Ladder.Nonlinear, "Newton hit max iterations")
  in
  let run_newton ~name ~linear_solver ?ptc ~source_scale x_init =
    residual_violation := None;
    let problem =
      newton_problem ~options ~linear_solver ?ptc ~sys ~g ~sources ~linear_iters
        ~source_scale ~on_residual_violation ()
    in
    let x, stats = Numeric.Newton.solve ~options:newton_options ~on_iteration problem x_init in
    newton_total := !newton_total + stats.Numeric.Newton.iterations;
    record_stage name stats.Numeric.Newton.iterations;
    last_x := x;
    (x, stats)
  in
  let plain_stage name linear_solver =
    fun () ->
      match run_newton ~name ~linear_solver ~source_scale:1.0 big_x0 with
      | x, stats when Numeric.Newton.converged stats -> Ok x
      | _, stats -> Error (classify stats)
  in
  let source_ramp_stage () =
    residual_violation := None;
    let problem_at lambda =
      newton_problem ~options ~linear_solver:options.linear_solver ~sys ~g ~sources
        ~linear_iters ~source_scale:lambda ~on_residual_violation ()
    in
    let x, cstats =
      Numeric.Continuation.trace ?budget:options.budget ~newton_options ~problem_at
        ~x0:big_x0 ()
    in
    newton_total := !newton_total + cstats.Numeric.Continuation.newton_iterations;
    record_stage "source-ramp" cstats.Numeric.Continuation.newton_iterations;
    continuation_steps := !continuation_steps + cstats.Numeric.Continuation.steps_taken;
    continuation_rejected :=
      !continuation_rejected + cstats.Numeric.Continuation.steps_rejected;
    last_x := x;
    if cstats.Numeric.Continuation.converged then Ok x
    else
      match cstats.Numeric.Continuation.exhausted with
      | Some e -> Error (Ladder.Exhausted e, Budget.exhaustion_to_string e)
      | None ->
          Error
            ( Ladder.Nonlinear,
              Printf.sprintf "source ramp stalled after %d steps (%d rejected)"
                cstats.Numeric.Continuation.steps_taken
                cstats.Numeric.Continuation.steps_rejected )
  in
  let ptc_ramp_stage () =
    (* Scale the initial loading to the Jacobian's diagonal so it is
       neither negligible nor dominant across wildly different h1/h2. *)
    let alpha0 =
      try
        let jacs = Assemble.point_jacobians sys g big_x0 in
        let jac = Assemble.jacobian_csr options.scheme g ~size:n ~jacs in
        let d = Sparse.Csr.diag jac in
        let dmax =
          Array.fold_left
            (fun acc v -> if Float.is_finite v then Float.max acc (Float.abs v) else acc)
            0.0 d
        in
        1e-2 *. Float.max 1.0 dmax
      with _ -> 1.0
    in
    let rec relax alpha x =
      (match options.budget with Some b -> Budget.check b | None -> ());
      if alpha < alpha0 *. 1e-9 then
        (* loading is now negligible: finish with the plain problem *)
        match run_newton ~name:"ptc-ramp" ~linear_solver:options.linear_solver
                ~source_scale:1.0 x
        with
        | x', stats when Numeric.Newton.converged stats -> Ok x'
        | _, stats -> Error (classify stats)
      else
        let ptc = { alpha; anchor = Array.copy x } in
        (match options.budget with
        | Some b -> ( try Budget.tick_continuation b with Budget.Exhausted _ -> ())
        | None -> ());
        match run_newton ~name:"ptc-ramp" ~linear_solver:options.linear_solver ~ptc
                ~source_scale:1.0 x
        with
        | x', stats when Numeric.Newton.converged stats ->
            continuation_steps := !continuation_steps + 1;
            relax (alpha /. 10.0) x'
        | _, stats -> Error (classify stats)
    in
    relax alpha0 big_x0
  in
  let applies_escalated_linear prev =
    Ladder.on_linear_stall prev && not (is_direct options.linear_solver)
  in
  let stages =
    [
      {
        Ladder.name = "newton";
        applies = Ladder.always;
        attempt = plain_stage "newton" options.linear_solver;
      };
      {
        Ladder.name = "gmres-ilu0";
        applies =
          (fun prev -> applies_escalated_linear prev && not (is_ilu0 options.linear_solver));
        attempt =
          plain_stage "gmres-ilu0" (Gmres_ilu0 { restart = 90; max_iter = 900; tol = options.tol });
      };
      {
        Ladder.name = "direct-lu";
        applies = applies_escalated_linear;
        attempt = plain_stage "direct-lu" Direct;
      };
      {
        Ladder.name = "source-ramp";
        applies = (fun prev -> options.allow_continuation && prev <> None);
        attempt = source_ramp_stage;
      };
      {
        Ladder.name = "ptc-ramp";
        applies = (fun prev -> options.allow_continuation && prev <> None);
        attempt = ptc_ramp_stage;
      };
    ]
  in
  let run = Ladder.run ?budget:options.budget stages in
  (match run.Ladder.strategy with
  | Some s when s <> "newton" -> Log.info (fun m -> m "escalation recovered via %s" s)
  | _ -> ());
  let big_x = match run.Ladder.value with Some x -> x | None -> !last_x in
  let residual_norm =
    let r = Assemble.residual options.scheme sys g ~sources big_x in
    Vec.norm_inf r
  in
  let converged = run.Ladder.value <> None in
  let wall_seconds = Telemetry.Clock.wall () -. t_start in
  let telemetry =
    Option.map Telemetry.Summary.of_snapshot (Telemetry.snapshot ~since:tele_mark ())
  in
  let report =
    Report.of_ladder ?telemetry
      ~iterations_of:(fun name ->
        List.assoc_opt name !stage_iters |> Option.value ~default:0)
      ~residual_trajectory:(Array.of_list (List.rev !trajectory))
      ~residual_norm ~newton_iterations:!newton_total ~linear_iterations:!linear_iters
      ~wall_seconds run
  in
  {
    grid = g;
    system = sys;
    big_x;
    stats =
      {
        newton_iterations = !newton_total;
        converged;
        residual_norm;
        linear_iterations = !linear_iters;
        continuation_steps = !continuation_steps;
        continuation_rejected = !continuation_rejected;
        strategy = Option.value run.Ladder.strategy ~default:"none";
        wall_seconds;
      };
    report;
  }

let solve_mna ?options ~shear ~n1 ~n2 mna =
  (match Shear.validate_sources shear mna with
  | Ok () -> ()
  | Error f -> raise (Shear.Off_lattice f));
  let grid = Grid.make ~shear ~n1 ~n2 in
  let sys = Assemble.of_mna ~shear mna in
  let seed =
    let r = Circuit.Dcop.solve mna in
    if r.Circuit.Dcop.converged then Some r.Circuit.Dcop.x else None
  in
  solve ?options ?seed sys grid

let state_at sol ~i ~j =
  let p = Grid.point_index sol.grid i j in
  Assemble.state_of ~size:sol.system.Assemble.size sol.big_x p

let quasi_static_start ?seed (sys : Assemble.system) (g : Grid.t) =
  let n = sys.Assemble.size in
  let n1 = g.Grid.n1 in
  let big = Array.make (Grid.points g * n) 0.0 in
  for j = 0 to g.Grid.n2 - 1 do
    let column =
      Fast_column.frozen_column ?seed sys ~n1 ~shear:g.Grid.shear ~t2:(Grid.t2_of g j)
    in
    Array.iteri
      (fun i x -> Array.blit x 0 big (Grid.point_index g i j * n) n)
      column
  done;
  big

let residual_norm_check ?(scheme = Assemble.Backward) sol =
  let sources = Assemble.sources_on_grid sol.system sol.grid in
  Vec.norm_inf (Assemble.residual scheme sol.system sol.grid ~sources sol.big_x)
