module Vec = Linalg.Vec
module Budget = Resilience.Budget
module Guard = Resilience.Guard
module Ladder = Resilience.Ladder
module Report = Resilience.Report

let log_src = Logs.Src.create "rfss.mpde" ~doc:"MPDE solver resilience"

module Log = (val Logs.src_log log_src : Logs.LOG)

type linear_solver =
  | Direct
  | Gmres_sweep of { restart : int; max_iter : int; tol : float }
  | Gmres_ilu0 of { restart : int; max_iter : int; tol : float }

let default_gmres = Gmres_sweep { restart = 60; max_iter = 600; tol = 1e-9 }

exception Linear_stall of string

type options = {
  max_newton : int;
  tol : float;
  scheme : Assemble.scheme;
  linear_solver : linear_solver;
  allow_continuation : bool;
  budget : Budget.t option;
  precond_lag : bool;
  precond_cluster : bool;
  krylov_recycle : bool;
}

let default_options =
  {
    max_newton = 50;
    tol = 1e-8;
    scheme = Assemble.Backward;
    linear_solver = default_gmres;
    allow_continuation = true;
    budget = None;
    precond_lag = true;
    precond_cluster = true;
    krylov_recycle = true;
  }

let make_options ?(max_newton = default_options.max_newton)
    ?(tol = default_options.tol) ?(scheme = default_options.scheme)
    ?(linear_solver = default_options.linear_solver)
    ?(allow_continuation = default_options.allow_continuation) ?budget
    ?(precond_lag = default_options.precond_lag)
    ?(precond_cluster = default_options.precond_cluster)
    ?(krylov_recycle = default_options.krylov_recycle) () =
  {
    max_newton;
    tol;
    scheme;
    linear_solver;
    allow_continuation;
    budget;
    precond_lag;
    precond_cluster;
    krylov_recycle;
  }

type stats = {
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  linear_iterations : int;
  continuation_steps : int;
  continuation_rejected : int;
  strategy : string;
  wall_seconds : float;
}

type solution = {
  grid : Grid.t;
  system : Assemble.system;
  big_x : Vec.t;
  stats : stats;
  report : Report.t;
}

(* The sweep preconditioner is exact (up to periodic wraps) for the
   backward scheme; for central/spectral t1 schemes it degrades to a
   block Gauss-Seidel over the t2 columns (the t1 coupling is left to
   GMRES). *)
let t1_in_diag = function
  | Assemble.Backward -> true
  | Assemble.Central_t1 | Assemble.Spectral_t1 | Assemble.Spectral_both -> false

(* Reusable state for the block forward-substitution sweep: the dense
   per-point diagonal factors and the apply buffers. The staging
   matrices are owned by their factorizations after a build
   ([Lu.factor_in_place]); a rebuild restamps and refactors them in
   place, so the np dense blocks are allocated exactly once per solve.

   The apply runs over precomputed wavefront [levels] of the sweep's
   dependency DAG — for the backward scheme the anti-diagonals i+j = l
   (every point's lower neighbours live on level l−1), otherwise whole
   t2-rows. Points inside a level are independent, so their right-hand
   sides are gathered into a contiguous column panel and each distinct
   dense factor is applied to its run of columns in one blocked
   multi-RHS call. [factor_id.(p)] names the point whose factorization
   block [p] uses ([p] itself when unshared); [exact] records whether
   every factor was built from its own point's Jacobian (as opposed to
   a drift-clustered representative's). *)
type sweep_cache = {
  sc_n : int;
  sc_np : int;
  sc_n1 : int;
  sc_t1d : bool;  (* t1 coupling inside the diagonal (backward scheme) *)
  mats : Linalg.Mat.t array;
  mutable factors : Linalg.Lu.t array;  (* [||] until first build *)
  factor_id : int array;  (* np: representative point of block p's factor *)
  mutable exact : bool;
  levels : int array array;  (* wavefront levels of point indices *)
  level_order : int array array;
  (* the same levels with each level's points stably reordered so
     points sharing a factor sit adjacent — the panel grouping order;
     recomputed at every factor (re)build. Points inside a level are
     mutually independent, so any order is bitwise equivalent. *)
  sx : Linalg.Kernel.vec;  (* np*n sweep result, returned to GMRES *)
  panel_b : Vec.t;  (* max-width*n gathered right-hand-side columns *)
  panel_x : Vec.t;  (* max-width*n panel solutions *)
  cw : Linalg.Kernel.vec;  (* np*n scratch: C_p v_p for the matrix-free op *)
  mutable built_gvals : float array array;  (* G values at last (re)factor *)
  mutable built_cvals : float array array;  (* C values at last (re)factor *)
  row_scale : float array;  (* np*n: max |D_p row| at last (re)factor *)
  mutable built_extra_diag : float;  (* nan until first build *)
  mutable stale : bool;  (* some factors lag the current Jacobian *)
}

(* Wavefront levels: for the backward scheme point (i,j) depends on
   (i−1,j) and (i,j−1) (periodic wraps dropped), so the anti-diagonals
   i+j = l are mutually independent and level l only reads level l−1;
   the other schemes couple only through (i,j−1) and the levels are
   whole t2-rows. Points inside a level are listed in increasing i,
   i.e. in increasing lexicographic point index. *)
let sweep_levels (g : Grid.t) ~t1d =
  let n1 = g.Grid.n1 and n2 = g.Grid.n2 in
  if t1d then
    Array.init (n1 + n2 - 1) (fun l ->
        let i_lo = max 0 (l - n2 + 1) and i_hi = min (n1 - 1) l in
        Array.init (i_hi - i_lo + 1) (fun k ->
            let i = i_lo + k in
            ((l - i) * n1) + i))
  else Array.init n2 (fun j -> Array.init n1 (fun i -> (j * n1) + i))

let csr_values_equal (a : Sparse.Csr.t) (b : Sparse.Csr.t) =
  let va = a.Sparse.Csr.values and vb = b.Sparse.Csr.values in
  let len = Array.length va in
  len = Array.length vb
  && a.Sparse.Csr.col_idx = b.Sparse.Csr.col_idx
  &&
  let ok = ref true and i = ref 0 in
  while !ok && !i < len do
    (* [<>] makes a NaN entry read as "not uniform" — fails safe. *)
    if va.(!i) <> vb.(!i) then ok := false;
    incr i
  done;
  !ok

(* The MPDE Jacobian's per-point blocks are functions of the per-point
   state only, so at a replicated seed (DC operating point, zero state
   — how every Newton stage starts) all np blocks are equal and one
   dense factorization serves the whole sweep. Early-exits at the first
   differing block, so the check is O(one block) once the LO swing has
   been absorbed into the iterate. *)
let blocks_uniform (jacs : (Sparse.Csr.t * Sparse.Csr.t) array) =
  let g0, c0 = jacs.(0) in
  let ok = ref true and p = ref 1 in
  while !ok && !p < Array.length jacs do
    let gp, cp = jacs.(!p) in
    if not (csr_values_equal gp g0 && csr_values_equal cp c0) then ok := false;
    incr p
  done;
  !ok

(* A lagged block is refactored when any Jacobian entry moved by more
   than this fraction of its dense row's magnitude at build time;
   quieter blocks keep their dense factors. Row-scaled entry-wise
   comparison is deliberate: a device conductance swinging by 20% of
   its row visibly weakens the preconditioner, yet is invisible in any
   whole-block norm dominated by large constant stamp entries. *)
let refresh_tol = 0.5

(* Per-solve workspace: assembly scratch plus the linear-solver caches
   (GMRES Krylov basis, sweep factors, ILU0/sparse-LU factorizations
   refreshed numerically on their frozen patterns). Owned by exactly
   one solve on one domain. *)
type workspace = {
  mutable asm : Assemble.workspace;
  mutable gmres_ws : Sparse.Krylov.workspace option;
  mutable gmres_restart : int;
  op_buf : Vec.t;  (* shared operator output (GMRES buffer contract) *)
  op_ba : Linalg.Kernel.vec;  (* same, for the Bigarray GMRES hot path *)
  ilu_buf : Vec.t;  (* shared preconditioner output *)
  sweep : sweep_cache;
  mutable ilu : Sparse.Ilu0.t option;
  mutable splu : Sparse.Splu.t option;
}

let make_workspace scheme sys (g : Grid.t) =
  let n = sys.Assemble.size in
  let np = Grid.points g in
  let big = np * n in
  let t1d = t1_in_diag scheme in
  let levels = sweep_levels g ~t1d in
  let max_width =
    Array.fold_left (fun acc l -> max acc (Array.length l)) 1 levels
  in
  {
    asm = Assemble.workspace scheme sys g;
    gmres_ws = None;
    gmres_restart = 0;
    op_buf = Array.make big 0.0;
    op_ba = Linalg.Kernel.create big;
    ilu_buf = Array.make big 0.0;
    sweep =
      {
        sc_n = n;
        sc_np = np;
        sc_n1 = g.Grid.n1;
        sc_t1d = t1d;
        mats = Array.init np (fun _ -> Linalg.Mat.create n n);
        factors = [||];
        factor_id = Array.make np 0;
        exact = false;
        levels;
        level_order = Array.map Array.copy levels;
        sx = Linalg.Kernel.create big;
        panel_b = Array.make (max_width * n) 0.0;
        panel_x = Array.make (max_width * n) 0.0;
        cw = Linalg.Kernel.create big;
        built_gvals = [||];  (* sized at the first build (nnz unknown here) *)
        built_cvals = [||];
        row_scale = Array.make big 0.0;
        built_extra_diag = nan;
        stale = false;
      };
    ilu = None;
    splu = None;
  }

(* Can a retained workspace serve a new solve of this shape? The big
   buffers, dense staging matrices and wavefront levels all depend only
   on (n, np, n1, scheme-diagonal-structure). *)
let workspace_fits ws scheme sys (g : Grid.t) =
  let c = ws.sweep in
  c.sc_n = sys.Assemble.size
  && c.sc_np = Grid.points g
  && c.sc_n1 = g.Grid.n1
  && c.sc_t1d = t1_in_diag scheme

(* Rebind a retained workspace to a new solve job: fresh assembly
   workspace (it is bound to the system/grid and cheap — the big COO is
   lazy), dropped numeric caches, kept big allocations. Forgetting the
   GMRES recycle state matters for determinism: a recycled seed from an
   unrelated job would change iteration counts depending on which jobs
   previously ran on this domain. *)
let rebind_workspace ws scheme sys (g : Grid.t) =
  ws.asm <- Assemble.workspace scheme sys g;
  ws.sweep.factors <- [||];
  ws.sweep.exact <- false;
  ws.sweep.built_extra_diag <- nan;
  ws.sweep.stale <- false;
  ws.ilu <- None;
  ws.splu <- None;
  (match ws.gmres_ws with
  | Some k -> Sparse.Krylov.forget_recycle k
  | None -> ());
  ws

let gmres_workspace ws ~restart ~n =
  match ws.gmres_ws with
  | Some k when ws.gmres_restart >= restart -> k
  | _ ->
      let k = Sparse.Krylov.workspace ~restart ~n in
      ws.gmres_ws <- Some k;
      ws.gmres_restart <- restart;
      k

let sweep_scale_c scheme (g : Grid.t) =
  (if t1_in_diag scheme then 1.0 /. g.Grid.h1 else 0.0) +. (1.0 /. g.Grid.h2)

(* Stamp and factor the dense diagonal block of one grid point,
   D_p = (1/h1 + 1/h2)·C_p + G_p (+ extra_diag·I), recording the
   Jacobian values and dense row scales the factor was built from (the
   reference state for {!block_drifted}). [extra_diag] adds the
   pseudo-transient loading so the preconditioner tracks the loaded
   Jacobian. *)
let factor_sweep_point cache scheme (g : Grid.t) ~jacs ~extra_diag p =
  let n = cache.sc_n in
  let scale_c = sweep_scale_c scheme g in
  let gp, cp = jacs.(p) in
  let d = cache.mats.(p) in
  Array.fill d.Linalg.Mat.data 0 (n * n) 0.0;
  for i = 0 to n - 1 do
    Sparse.Csr.iter_row cp i (fun j v -> Linalg.Mat.add_entry d i j (scale_c *. v));
    Sparse.Csr.iter_row gp i (fun j v -> Linalg.Mat.add_entry d i j v);
    if extra_diag <> 0.0 then Linalg.Mat.add_entry d i i extra_diag
  done;
  cache.built_gvals.(p) <- Array.copy gp.Sparse.Csr.values;
  cache.built_cvals.(p) <- Array.copy cp.Sparse.Csr.values;
  for i = 0 to n - 1 do
    let m = ref 0.0 in
    for j = 0 to n - 1 do
      m := Float.max !m (Float.abs (Linalg.Mat.get d i j))
    done;
    cache.row_scale.((p * n) + i) <- Float.max !m 1e-300
  done;
  Linalg.Lu.factor_in_place d

(* Is point [p]'s Jacobian within the refresh tolerance of the build
   snapshot stored at index [snap]? Entry-wise against the snapshot
   values, scaled by the magnitude of the stamped dense row the entry
   lands in. Phrased as "keep only when provably close" so a NaN entry
   reads as drifted, and a pattern change (the per-point rebuild
   fallback swapped the CSR) reads as drifted too. With [snap = p] this
   is the classic lagged-factor drift test; with [snap] a cluster
   representative it is the clustering criterion. *)
let drifted_vs ?(tol = refresh_tol) cache scheme (g : Grid.t) ~jacs ~snap p =
  let gp, cp = jacs.(p) in
  let bg = cache.built_gvals.(snap) and bc = cache.built_cvals.(snap) in
  let gv = gp.Sparse.Csr.values and cv = cp.Sparse.Csr.values in
  if Array.length bg <> Array.length gv || Array.length bc <> Array.length cv
  then true
  else begin
    let n = cache.sc_n in
    let scale_c = sweep_scale_c scheme g in
    let base = snap * n in
    let close = ref true in
    let scan (m : Sparse.Csr.t) built coeff =
      let row_ptr = m.Sparse.Csr.row_ptr and v = m.Sparse.Csr.values in
      let i = ref 0 in
      while !close && !i < n do
        let lim = tol *. cache.row_scale.(base + !i) in
        let k = ref row_ptr.(!i) and stop = row_ptr.(!i + 1) in
        while !close && !k < stop do
          if not (Float.abs (coeff *. (v.(!k) -. built.(!k))) <= lim) then
            close := false;
          incr k
        done;
        incr i
      done
    in
    scan gp bg 1.0;
    if !close then scan cp bc scale_c;
    not !close
  end

(* Has block [p]'s Jacobian moved, relative to what its dense factor
   was built from? Under clustering, [p]'s snapshot *is* its
   representative's build state (the snapshot arrays are shared and the
   row scales copied), so the same test covers both lag drift and
   cluster-membership drift. *)
let block_drifted cache scheme (g : Grid.t) ~jacs p =
  drifted_vs cache scheme g ~jacs ~snap:p p

(* How many recent cluster representatives each point is compared
   against before it is declared a new representative. The converged
   mixer grid clusters into a handful of factors, so a small window
   keeps the scan linear while still catching spatially coherent
   clusters that interleave along the scan order. *)
let cluster_window = 64

(* Cluster-membership tolerance — deliberately much tighter than
   [refresh_tol]. Lagging keeps a point's *own* factor, exact at build
   time and drifting gradually; clustering hands a point a *different*
   point's factor, so the full tolerance is an immediate, spatially
   correlated perturbation of the whole sweep. At 0.5 the clustered
   preconditioner visibly costs GMRES iterations and Newton
   backtracks; at a few percent it is indistinguishable from exact
   while the mixer grid still collapses to a handful of
   representatives. *)
let cluster_tol = 0.05

(* Full (re)build of the sweep's dense factors from the current
   per-point Jacobian values.

   [cluster = false] builds one factor per point (bitwise the classic
   preconditioner). [cluster = true] additionally shares factors
   between points whose Jacobians agree within the drift tolerance: the
   grid is scanned in point order, each point compared against the most
   recent representatives, and matching points adopt the
   representative's factor, snapshot and row scales. The sweep then
   applies each distinct factor to a whole panel of columns per
   wavefront level instead of one dense solve per point. Clustered
   factors are a (slightly) weaker preconditioner, so the cache is
   marked non-exact and stale — the stall path rebuilds exact. The
   uniform replicated-seed fast path is unchanged and exact. *)
let build_sweep_factors cache scheme (g : Grid.t) ~jacs ~extra_diag ~cluster =
  if Array.length cache.built_gvals = 0 then begin
    cache.built_gvals <- Array.make cache.sc_np [||];
    cache.built_cvals <- Array.make cache.sc_np [||]
  end;
  let factor_point = factor_sweep_point cache scheme g ~jacs ~extra_diag in
  let np = cache.sc_np in
  (if blocks_uniform jacs then begin
     (* Replicated iterate: one dense factorization shared by all np
        points ([Lu.solve_into] never mutates the factors). The built
        value snapshots and row scales are replicated too; sharing the
        snapshot arrays is sound because a later refactor replaces them
        with fresh copies instead of mutating. *)
     Telemetry.count "mpde.precond.shared_builds";
     let f0 = factor_point 0 in
     cache.factors <- Array.make np f0;
     Array.fill cache.factor_id 0 np 0;
     for p = 1 to np - 1 do
       cache.built_gvals.(p) <- cache.built_gvals.(0);
       cache.built_cvals.(p) <- cache.built_cvals.(0)
     done;
     let n = cache.sc_n in
     for p = 1 to np - 1 do
       Array.blit cache.row_scale 0 cache.row_scale (p * n) n
     done;
     cache.exact <- true;
     cache.stale <- false
   end
   else if not cluster then begin
     cache.factors <- Array.init np factor_point;
     for p = 0 to np - 1 do
       cache.factor_id.(p) <- p
     done;
     cache.exact <- true;
     cache.stale <- false
   end
   else begin
     let n = cache.sc_n in
     let recent = Array.make cluster_window 0 in
     let head = ref 0 and count = ref 0 in
     let push r =
       recent.(!head) <- r;
       head := (!head + 1) mod cluster_window;
       if !count < cluster_window then incr count
     in
     let find_rep p =
       let found = ref (-1) and k = ref 0 in
       while !found < 0 && !k < !count do
         let idx = (!head - 1 - !k + (2 * cluster_window)) mod cluster_window in
         let r = recent.(idx) in
         if not (drifted_vs ~tol:cluster_tol cache scheme g ~jacs ~snap:r p)
         then found := r;
         incr k
       done;
       !found
     in
     let reps = ref 1 in
     let f0 = factor_point 0 in
     cache.factors <- Array.make np f0;
     cache.factor_id.(0) <- 0;
     push 0;
     for p = 1 to np - 1 do
       let r = find_rep p in
       if r >= 0 then begin
         cache.factors.(p) <- cache.factors.(r);
         cache.built_gvals.(p) <- cache.built_gvals.(r);
         cache.built_cvals.(p) <- cache.built_cvals.(r);
         Array.blit cache.row_scale (r * n) cache.row_scale (p * n) n;
         cache.factor_id.(p) <- cache.factor_id.(r)
       end
       else begin
         cache.factors.(p) <- factor_point p;
         cache.factor_id.(p) <- p;
         push p;
         incr reps
       end
     done;
     Telemetry.gauge "mpde.precond.cluster_reps" (float_of_int !reps);
     cache.exact <- false;
     cache.stale <- true
   end);
  (* Regroup each wavefront level so columns sharing a factor are
     adjacent: one blocked panel call per distinct factor per level.
     The sort is stable, so unshared builds (factor_id.(p) = p,
     already increasing within a level) keep the lexicographic order
     and uniform builds (all ids 0) are untouched. *)
  let fid = cache.factor_id in
  Array.iteri
    (fun l level ->
      let order = cache.level_order.(l) in
      Array.blit level 0 order 0 (Array.length level);
      Array.stable_sort (fun a b -> compare fid.(a) fid.(b)) order)
    cache.levels;
  cache.built_extra_diag <- extra_diag

(* Selective refresh under [precond_lag]: refactor only the blocks
   that drifted since they were last factored; quiet blocks keep their
   (slightly stale) dense factors. *)
let refresh_sweep_factors cache scheme (g : Grid.t) ~jacs ~extra_diag ~cluster =
  Telemetry.span "mpde.precond.refresh" @@ fun () ->
  if not cache.exact then begin
    (* Clustered factors: each point's snapshot is its representative's
       build state, so drifting against it means the point left its
       cluster. Refactoring a member in place would corrupt the factor
       the rest of its cluster still shares, so the first drift
       anywhere forces a full re-clustered rebuild. *)
    let drifted = ref false and p = ref 0 in
    while (not !drifted) && !p < cache.sc_np do
      if block_drifted cache scheme g ~jacs !p then drifted := true;
      incr p
    done;
    if !drifted then build_sweep_factors cache scheme g ~jacs ~extra_diag ~cluster
    (* otherwise the cache stays stale by construction (clustered) *)
  end
  else if cache.sc_np > 1 && cache.factors.(1) == cache.factors.(0) then begin
    (* The last build shared one factorization (replicated iterate)
       backed by [mats.(0)]; refactoring any single block in place
       would corrupt the factor the others still reference, so the
       first drift anywhere forces a full unshared rebuild. *)
    let drifted = ref false and p = ref 0 in
    while (not !drifted) && !p < cache.sc_np do
      if block_drifted cache scheme g ~jacs !p then drifted := true;
      incr p
    done;
    if !drifted then build_sweep_factors cache scheme g ~jacs ~extra_diag ~cluster
    else cache.stale <- true
  end
  else begin
    let refreshed = ref 0 in
    for p = 0 to cache.sc_np - 1 do
      if block_drifted cache scheme g ~jacs p then begin
        cache.factors.(p) <- factor_sweep_point cache scheme g ~jacs ~extra_diag p;
        incr refreshed
      end
    done;
    if !refreshed > 0 then
      Telemetry.count ~by:!refreshed "mpde.precond.block_refreshes";
    cache.stale <- !refreshed < cache.sc_np
  end

(* Block forward-substitution sweep: apply M⁻¹ where M keeps the
   diagonal blocks and the two backward-difference neighbour blocks,
   *dropping the periodic wraps* (i = 0 and j = 0 rows lose their
   wrapped neighbour). Lexicographic order then makes M block
   lower-triangular, solvable in one pass with the cached dense
   factors. Returns the cache's shared output buffer (GMRES copies what
   it keeps). *)
let sweep_apply cache scheme (g : Grid.t) ~jacs (r : Linalg.Kernel.vec) =
  Telemetry.count "mpde.precond.sweeps";
  let n = cache.sc_n in
  let t1_in_diag = t1_in_diag scheme in
  let n1 = g.Grid.n1 in
  let inv_h1 = 1.0 /. g.Grid.h1 and inv_h2 = 1.0 /. g.Grid.h2 in
  let x = cache.sx in
  let pb = cache.panel_b and px = cache.panel_x in
  let fid = cache.factor_id in
  (* Accumulate one lower-neighbour coupling into panel column [dst],
     pb += inv_h · C_q x_q, reading the CSR arrays directly — this runs
     n·nnz(C) times per sweep, too hot for the iter_row closure (and
     the reciprocal is hoisted to a multiply). The neighbour state
     lives on an earlier wavefront level, already scattered into [x]. *)
  let couple (c : Sparse.Csr.t) inv_h q dst =
    let rp = c.Sparse.Csr.row_ptr
    and ci = c.Sparse.Csr.col_idx
    and cv = c.Sparse.Csr.values in
    let xb = q * n in
    for row = 0 to n - 1 do
      let s = ref 0.0 in
      for k = rp.(row) to rp.(row + 1) - 1 do
        s :=
          !s
          +. (Array.unsafe_get cv k
              *. Bigarray.Array1.unsafe_get x (xb + Array.unsafe_get ci k))
      done;
      pb.(dst + row) <- pb.(dst + row) +. (inv_h *. !s)
    done
  in
  (* Wavefront sweep: gather every level's right-hand sides into a
     contiguous column panel, then apply each distinct dense factor to
     its whole run of columns in one blocked multi-RHS solve. Per
     column the arithmetic (gather order, coupling order, substitution)
     is exactly the lexicographic single-point sweep's, so the result
     is bitwise identical — only the solve granularity changes. *)
  let nlev = Array.length cache.level_order in
  for l = 0 to nlev - 1 do
    let level = cache.level_order.(l) in
    let w = Array.length level in
    for c = 0 to w - 1 do
      let p = level.(c) in
      let dst = c * n in
      let src = p * n in
      for row = 0 to n - 1 do
        Array.unsafe_set pb (dst + row) (Bigarray.Array1.unsafe_get r (src + row))
      done;
      let i = p mod n1 and j = p / n1 in
      (* Move the lower-neighbour couplings (−C/h) to the right side. *)
      if t1_in_diag && i > 0 then couple (snd jacs.(p - 1)) inv_h1 (p - 1) dst;
      if j > 0 then couple (snd jacs.(p - n1)) inv_h2 (p - n1) dst
    done;
    let c = ref 0 in
    while !c < w do
      let f = fid.(level.(!c)) in
      let c2 = ref (!c + 1) in
      while !c2 < w && fid.(level.(!c2)) = f do
        incr c2
      done;
      Linalg.Lu.solve_many_into cache.factors.(level.(!c)) ~off:!c
        ~cols:(!c2 - !c) pb px;
      c := !c2
    done;
    for c = 0 to w - 1 do
      let p = level.(c) in
      let src = c * n in
      let dst = p * n in
      for row = 0 to n - 1 do
        Bigarray.Array1.unsafe_set x (dst + row) (Array.unsafe_get px (src + row))
      done
    done
  done;
  x

(* Matrix-free application of the backward-scheme MPDE Jacobian:
   out_p = (1/h1 + 1/h2)·C_p·v_p + G_p·v_p (+ extra_diag·v_p)
           − (C_{i−1,j}·v_{i−1,j})/h1 − (C_{i,j−1}·v_{i,j−1})/h2
   with periodic wraps, mirroring {!Assemble.stamp_big}'s Backward
   stamping. The per-point products C_p·v_p are computed once into
   [cache.cw] and reused for both neighbour couplings, so one apply
   costs nnz(C) + nnz(G) multiplies per point — cheaper than the SpMV
   on the assembled big CSR, and it removes the big-Jacobian assembly
   from the GMRES hot path entirely. *)
let sweep_op_apply cache (g : Grid.t) ~jacs ~extra_diag
    (v : Linalg.Kernel.vec) (out : Linalg.Kernel.vec) =
  let n = cache.sc_n in
  let inv_h1 = 1.0 /. g.Grid.h1 and inv_h2 = 1.0 /. g.Grid.h2 in
  let scale_c = inv_h1 +. inv_h2 in
  let w = cache.cw in
  for p = 0 to cache.sc_np - 1 do
    let gp, cp = jacs.(p) in
    let base = p * n in
    let crp = cp.Sparse.Csr.row_ptr
    and cci = cp.Sparse.Csr.col_idx
    and cv = cp.Sparse.Csr.values in
    let grp = gp.Sparse.Csr.row_ptr
    and gci = gp.Sparse.Csr.col_idx
    and gv = gp.Sparse.Csr.values in
    for i = 0 to n - 1 do
      let s = ref 0.0 in
      for k = crp.(i) to crp.(i + 1) - 1 do
        s :=
          !s
          +. (Array.unsafe_get cv k
              *. Bigarray.Array1.unsafe_get v (base + Array.unsafe_get cci k))
      done;
      Bigarray.Array1.unsafe_set w (base + i) !s;
      let t = ref (scale_c *. !s) in
      for k = grp.(i) to grp.(i + 1) - 1 do
        t :=
          !t
          +. (Array.unsafe_get gv k
              *. Bigarray.Array1.unsafe_get v (base + Array.unsafe_get gci k))
      done;
      Bigarray.Array1.unsafe_set out (base + i)
        (!t +. (extra_diag *. Bigarray.Array1.unsafe_get v (base + i)))
    done
  done;
  for p = 0 to cache.sc_np - 1 do
    let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
    let bi = Grid.point_index g (i - 1) j * n in
    let bj = Grid.point_index g i (j - 1) * n in
    let base = p * n in
    for r = 0 to n - 1 do
      Bigarray.Array1.unsafe_set out (base + r)
        (Bigarray.Array1.unsafe_get out (base + r)
        -. (inv_h1 *. Bigarray.Array1.unsafe_get w (bi + r))
        -. (inv_h2 *. Bigarray.Array1.unsafe_get w (bj + r)))
    done
  done

let with_extra_diag jac extra_diag =
  if extra_diag = 0.0 then jac
  else Sparse.Csr.add jac (Sparse.Csr.scale extra_diag (Sparse.Csr.identity jac.Sparse.Csr.rows))

let solve_linear ~ws ~linear_solver ~scheme ~precond_lag ~precond_cluster
    ~krylov_recycle ~budget (g : Grid.t) ~jacs ~extra_diag ~rhs ~linear_iters =
  (* Numeric-refresh path: with [extra_diag = 0] this returns the same
     CSR instance every Newton iteration, which keeps the ILU0/sparse-LU
     pattern caches below valid. *)
  let jac () = with_extra_diag (Assemble.jacobian_ws ws.asm) extra_diag in
  let run_gmres ~restart ~max_iter ~tol ~precond op =
    let workspace = gmres_workspace ws ~restart ~n:(Array.length rhs) in
    let result =
      Sparse.Krylov.gmres ~restart ~max_iter ~tol ~precond ?budget ~workspace op rhs
    in
    linear_iters := !linear_iters + result.Sparse.Krylov.iterations;
    result
  in
  let run_gmres_ba ~restart ~max_iter ~tol ~precond op =
    let workspace = gmres_workspace ws ~restart ~n:(Array.length rhs) in
    let result =
      Sparse.Krylov.gmres_ba ~restart ~max_iter ~tol ~precond ?budget ~workspace
        ~recycle:krylov_recycle op rhs
    in
    linear_iters := !linear_iters + result.Sparse.Krylov.iterations;
    result
  in
  let stalled (result : Sparse.Krylov.result) =
    (match budget with
    | Some b -> ( match Budget.exhausted b with Some e -> raise (Budget.Exhausted e) | None -> ())
    | None -> ());
    raise
      (Linear_stall
         (Printf.sprintf "GMRES stalled (residual %.3e after %d iterations)"
            result.Sparse.Krylov.residual_norm result.Sparse.Krylov.iterations))
  in
  let op_of m v =
    Sparse.Csr.mul_vec_into m v ws.op_buf;
    ws.op_buf
  in
  match linear_solver with
  | Direct -> (
      Telemetry.span "mpde.linear.direct" @@ fun () ->
      let m = jac () in
      let f =
        match ws.splu with
        | Some f when Sparse.Splu.refactorable f m -> (
            try
              Sparse.Splu.refactor f m;
              f
            with Sparse.Splu.Singular _ ->
              (* The frozen pivot order hit a zero pivot; a fresh factor
                 is free to pivot differently. *)
              let f = Sparse.Splu.factor m in
              ws.splu <- Some f;
              f)
        | _ ->
            let f = Sparse.Splu.factor m in
            ws.splu <- Some f;
            f
      in
      Sparse.Splu.solve f rhs)
  | Gmres_sweep { restart; max_iter; tol } -> (
      Telemetry.span "mpde.linear.gmres-sweep" @@ fun () ->
      let cache = ws.sweep in
      (* For the backward scheme the operator is applied matrix-free
         from the per-point blocks, so the big Jacobian is never
         assembled on this path; the other schemes have long-range t1
         couplings and keep the assembled SpMV. Both run on the
         Bigarray kernels through the staging-free GMRES core. *)
      let op =
        match scheme with
        | Assemble.Backward ->
            fun v ->
              sweep_op_apply cache g ~jacs ~extra_diag v ws.op_ba;
              ws.op_ba
        | Assemble.Central_t1 | Assemble.Spectral_t1 | Assemble.Spectral_both
          ->
            let m = jac () in
            fun v ->
              Sparse.Csr.mul_vec_ba_into m v ws.op_ba;
              ws.op_ba
      in
      let build () =
        Telemetry.span "mpde.precond.build" @@ fun () ->
        build_sweep_factors cache scheme g ~jacs ~extra_diag
          ~cluster:precond_cluster
      in
      (* Preconditioner lagging: keep the dense diagonal factors across
         Newton iterations and selectively refactor only the blocks
         whose Jacobian drifted (the values move slowly near the
         solution and M⁻¹ only steers GMRES); full rebuild when the
         loading changed, when lagging is off, or on a stall below. *)
      if
        Array.length cache.factors = 0
        || (not precond_lag)
        || cache.built_extra_diag <> extra_diag
      then build ()
      else
        refresh_sweep_factors cache scheme g ~jacs ~extra_diag
          ~cluster:precond_cluster;
      let precond = sweep_apply cache scheme g ~jacs in
      let result = run_gmres_ba ~restart ~max_iter ~tol ~precond op in
      if result.Sparse.Krylov.converged then result.Sparse.Krylov.x
      else if cache.stale then begin
        (* The lagged (or clustered) factors may have fallen too far
           behind the iterate: rebuild exact — one factor per point at
           the current Jacobian — and retry once before declaring a
           stall. *)
        Telemetry.count "mpde.precond.lag_rebuilds";
        (Telemetry.span "mpde.precond.build" @@ fun () ->
         build_sweep_factors cache scheme g ~jacs ~extra_diag ~cluster:false);
        let result = run_gmres_ba ~restart ~max_iter ~tol ~precond op in
        if result.Sparse.Krylov.converged then result.Sparse.Krylov.x
        else stalled result
      end
      else stalled result)
  | Gmres_ilu0 { restart; max_iter; tol } ->
      Telemetry.span "mpde.linear.gmres-ilu0" @@ fun () ->
      let m = jac () in
      let f =
        match ws.ilu with
        | Some f when Sparse.Ilu0.refactorable f m ->
            Sparse.Ilu0.refactor f m;
            f
        | _ ->
            let f = Sparse.Ilu0.factor m in
            ws.ilu <- Some f;
            f
      in
      let result =
        run_gmres ~restart ~max_iter ~tol
          ~precond:(fun r ->
            Sparse.Ilu0.apply_into f r ws.ilu_buf;
            ws.ilu_buf)
          (op_of m)
      in
      if result.Sparse.Krylov.converged then result.Sparse.Krylov.x
      else stalled result

(* Scan per-point Jacobian blocks before they reach the linear solver:
   a NaN entry in G or C would otherwise poison GMRES silently. *)
let check_jacobians_finite ~n jacs =
  Array.iteri
    (fun p (gp, cp) ->
      let check_csr which (m : Sparse.Csr.t) =
        for i = 0 to n - 1 do
          Sparse.Csr.iter_row m i (fun j v ->
              if not (Float.is_finite v) then
                raise
                  (Guard.Non_finite
                     {
                       Guard.index = (p * n) + i;
                       value = v;
                       block = Some p;
                       offset = Some i;
                       context =
                         Printf.sprintf "MPDE %s-Jacobian entry (%d,%d)" which i j;
                     }))
        done
      in
      check_csr "G" gp;
      check_csr "C" cp)
    jacs

(* Pseudo-transient loading: residual gains [alpha·(x − anchor)] and the
   Jacobian [alpha·I], pulling the iterate toward the anchor while
   regularizing near-singular Jacobians; [alpha] is then relaxed to zero
   — the same decade-ladder idea as Dcop's gmin stepping, generalized to
   the full MPDE grid vector. *)
type ptc = { alpha : float; anchor : Vec.t }

let newton_problem ~options ~linear_solver ~ws ?ptc ~sys ~g ~sources ~linear_iters
    ~source_scale ~on_residual_violation () =
  let n = sys.Assemble.size in
  let scaled_sources =
    if source_scale = 1.0 then sources
    else Array.map (Vec.scale source_scale) sources
  in
  let base_residual big_x =
    let r = Assemble.residual_ws ws.asm ~sources:scaled_sources big_x in
    (match ptc with
    | Some { alpha; anchor } ->
        for i = 0 to Array.length r - 1 do
          r.(i) <- r.(i) +. (alpha *. (big_x.(i) -. anchor.(i)))
        done
    | None -> ());
    r
  in
  let extra_diag = match ptc with Some { alpha; _ } -> alpha | None -> 0.0 in
  {
    Numeric.Newton.residual =
      Guard.guarded ~context:"MPDE residual" ~block_size:n
        ~on_violation:on_residual_violation base_residual;
    solve_linearized =
      (fun big_x r ->
        let jacs = Assemble.point_jacobians_ws ws.asm big_x in
        (* Fault-injection hook: corrupt row 0 of the first point-block.
           The workspace CSRs are restamped from the circuit on every
           evaluation, so the damage is transient — the next linearize
           sees clean Jacobians, exactly like a data-dependent glitch. *)
        (match Resilience.Faultinject.jacobian_fault () with
        | None -> ()
        | Some action ->
            let corrupt (m : Sparse.Csr.t) f =
              let lo = m.Sparse.Csr.row_ptr.(0)
              and hi = m.Sparse.Csr.row_ptr.(1) in
              for k = lo to hi - 1 do
                m.Sparse.Csr.values.(k) <- f m.Sparse.Csr.values.(k)
              done
            in
            let gp, cp = jacs.(0) in
            let f =
              match action with
              | `Singular -> fun _ -> 0.0
              | `Scale s -> fun v -> v *. s
            in
            corrupt gp f;
            corrupt cp f);
        (try check_jacobians_finite ~n jacs
         with Guard.Non_finite v as e ->
           on_residual_violation v;
           raise e);
        solve_linear ~ws ~linear_solver ~scheme:options.scheme
          ~precond_lag:options.precond_lag
          ~precond_cluster:options.precond_cluster
          ~krylov_recycle:options.krylov_recycle ~budget:options.budget g ~jacs
          ~extra_diag ~rhs:r ~linear_iters);
  }

let is_direct = function Direct -> true | _ -> false

let is_ilu0 = function Gmres_ilu0 _ -> true | _ -> false

let solve ?(options = default_options) ?seed ?workspace_slot
    (sys : Assemble.system) (g : Grid.t) =
  let t_start = Telemetry.Clock.wall () in
  let tele_mark = Telemetry.mark () in
  Telemetry.span "mpde.solve" @@ fun () ->
  Telemetry.with_alloc_gauges "alloc" @@ fun () ->
  let n = sys.Assemble.size in
  let np = Grid.points g in
  let big = np * n in
  let big_x0 =
    let x = Array.make big 0.0 in
    (match seed with
    | Some s when Array.length s = n ->
        for p = 0 to np - 1 do
          Array.blit s 0 x (p * n) n
        done
    | Some s when Array.length s = big -> Array.blit s 0 x 0 big
    | Some _ -> invalid_arg "Mpde.Solver.solve: bad seed size"
    | None -> ());
    x
  in
  let sources = Assemble.sources_on_grid sys g in
  (* Sweep-scale solves reuse one workspace per domain through the
     caller-held slot: the multi-megabyte numeric buffers (dense
     staging matrices, Krylov basis, Bigarray vectors) survive from job
     to job, while everything bound to the previous system is rebound
     or dropped. A shape mismatch falls back to a fresh workspace. *)
  let ws =
    match workspace_slot with
    | Some slot -> (
        match !slot with
        | Some w when workspace_fits w options.scheme sys g ->
            Telemetry.count "mpde.workspace.reuses";
            rebind_workspace w options.scheme sys g
        | _ ->
            let w = make_workspace options.scheme sys g in
            slot := Some w;
            w)
    | None -> make_workspace options.scheme sys g
  in
  let linear_iters = ref 0 in
  let newton_total = ref 0 in
  let continuation_steps = ref 0 and continuation_rejected = ref 0 in
  let trajectory = ref [] in
  let stage_iters : (string * int) list ref = ref [] in
  let last_x = ref big_x0 in
  (* Attribution for non-finite residuals: remember the first violation
     per stage so a Diverged Newton outcome can be classified and
     reported with its grid point. *)
  let residual_violation = ref None in
  let on_residual_violation v =
    if !residual_violation = None then begin
      residual_violation := Some v;
      let p = Option.value v.Guard.block ~default:(v.Guard.index / n) in
      Log.warn (fun m ->
          m "non-finite residual at grid point (%d,%d), unknown %d: %h"
            (p mod g.Grid.n1) (p / g.Grid.n1)
            (Option.value v.Guard.offset ~default:(v.Guard.index mod n))
            v.Guard.value)
    end
  in
  let newton_options =
    {
      Numeric.Newton.default_options with
      max_iterations = options.max_newton;
      abs_tol = options.tol;
      budget = options.budget;
    }
  in
  let record_stage name iters =
    stage_iters :=
      (name, iters + (List.assoc_opt name !stage_iters |> Option.value ~default:0))
      :: List.remove_assoc name !stage_iters
  in
  let on_iteration _k _x rnorm =
    trajectory := rnorm :: !trajectory;
    Telemetry.observe "mpde.newton_residual" rnorm
  in
  (* Classify a failed Newton outcome into a ladder failure. *)
  let classify (stats : Numeric.Newton.stats) =
    match stats.Numeric.Newton.outcome with
    | Numeric.Newton.Converged -> assert false
    | Numeric.Newton.Exhausted e ->
        (Ladder.Exhausted e, Budget.exhaustion_to_string e)
    | Numeric.Newton.Diverged -> (
        match !residual_violation with
        | Some v -> (Ladder.Non_finite v, Guard.violation_to_string v)
        | None -> (Ladder.Nonlinear, "residual diverged"))
    | Numeric.Newton.Solver_failure msg -> (
        (* solve_linearized failures: a recorded violation means the
           Jacobian itself went non-finite (device overflow — escalate
           the nonlinear strategy); otherwise the linear solver broke. *)
        match !residual_violation with
        | Some v -> (Ladder.Non_finite v, Guard.violation_to_string v)
        | None -> (Ladder.Linear_stall, msg))
    | Numeric.Newton.Stalled -> (Ladder.Nonlinear, "Newton stalled")
    | Numeric.Newton.Max_iterations -> (Ladder.Nonlinear, "Newton hit max iterations")
  in
  let run_newton ~name ~linear_solver ?ptc ~source_scale x_init =
    residual_violation := None;
    let problem =
      newton_problem ~options ~linear_solver ~ws ?ptc ~sys ~g ~sources ~linear_iters
        ~source_scale ~on_residual_violation ()
    in
    let x, stats = Numeric.Newton.solve ~options:newton_options ~on_iteration problem x_init in
    newton_total := !newton_total + stats.Numeric.Newton.iterations;
    record_stage name stats.Numeric.Newton.iterations;
    last_x := x;
    (x, stats)
  in
  let plain_stage name linear_solver =
    fun () ->
      match run_newton ~name ~linear_solver ~source_scale:1.0 big_x0 with
      | x, stats when Numeric.Newton.converged stats -> Ok x
      | _, stats -> Error (classify stats)
  in
  let source_ramp_stage () =
    residual_violation := None;
    let problem_at lambda =
      newton_problem ~options ~linear_solver:options.linear_solver ~ws ~sys ~g ~sources
        ~linear_iters ~source_scale:lambda ~on_residual_violation ()
    in
    let x, cstats =
      Numeric.Continuation.trace ?budget:options.budget ~newton_options ~problem_at
        ~x0:big_x0 ()
    in
    newton_total := !newton_total + cstats.Numeric.Continuation.newton_iterations;
    record_stage "source-ramp" cstats.Numeric.Continuation.newton_iterations;
    continuation_steps := !continuation_steps + cstats.Numeric.Continuation.steps_taken;
    continuation_rejected :=
      !continuation_rejected + cstats.Numeric.Continuation.steps_rejected;
    last_x := x;
    if cstats.Numeric.Continuation.converged then Ok x
    else
      match cstats.Numeric.Continuation.exhausted with
      | Some e -> Error (Ladder.Exhausted e, Budget.exhaustion_to_string e)
      | None ->
          Error
            ( Ladder.Nonlinear,
              Printf.sprintf "source ramp stalled after %d steps (%d rejected)"
                cstats.Numeric.Continuation.steps_taken
                cstats.Numeric.Continuation.steps_rejected )
  in
  let ptc_ramp_stage () =
    (* Scale the initial loading to the Jacobian's diagonal so it is
       neither negligible nor dominant across wildly different h1/h2. *)
    let alpha0 =
      try
        ignore (Assemble.point_jacobians_ws ws.asm big_x0);
        let jac = Assemble.jacobian_ws ws.asm in
        let d = Sparse.Csr.diag jac in
        let dmax =
          Array.fold_left
            (fun acc v -> if Float.is_finite v then Float.max acc (Float.abs v) else acc)
            0.0 d
        in
        1e-2 *. Float.max 1.0 dmax
      with _ -> 1.0
    in
    let rec relax alpha x =
      (match options.budget with Some b -> Budget.check b | None -> ());
      if alpha < alpha0 *. 1e-9 then
        (* loading is now negligible: finish with the plain problem *)
        match run_newton ~name:"ptc-ramp" ~linear_solver:options.linear_solver
                ~source_scale:1.0 x
        with
        | x', stats when Numeric.Newton.converged stats -> Ok x'
        | _, stats -> Error (classify stats)
      else
        let ptc = { alpha; anchor = Array.copy x } in
        (match options.budget with
        | Some b -> ( try Budget.tick_continuation b with Budget.Exhausted _ -> ())
        | None -> ());
        match run_newton ~name:"ptc-ramp" ~linear_solver:options.linear_solver ~ptc
                ~source_scale:1.0 x
        with
        | x', stats when Numeric.Newton.converged stats ->
            continuation_steps := !continuation_steps + 1;
            relax (alpha /. 10.0) x'
        | _, stats -> Error (classify stats)
    in
    relax alpha0 big_x0
  in
  let applies_escalated_linear prev =
    Ladder.on_linear_stall prev && not (is_direct options.linear_solver)
  in
  let stages =
    [
      {
        Ladder.name = "newton";
        applies = Ladder.always;
        attempt = plain_stage "newton" options.linear_solver;
      };
      {
        Ladder.name = "gmres-ilu0";
        applies =
          (fun prev -> applies_escalated_linear prev && not (is_ilu0 options.linear_solver));
        attempt =
          plain_stage "gmres-ilu0" (Gmres_ilu0 { restart = 90; max_iter = 900; tol = options.tol });
      };
      {
        Ladder.name = "direct-lu";
        applies = applies_escalated_linear;
        attempt = plain_stage "direct-lu" Direct;
      };
      {
        Ladder.name = "source-ramp";
        applies = (fun prev -> options.allow_continuation && prev <> None);
        attempt = source_ramp_stage;
      };
      {
        Ladder.name = "ptc-ramp";
        applies = (fun prev -> options.allow_continuation && prev <> None);
        attempt = ptc_ramp_stage;
      };
    ]
  in
  let run = Ladder.run ?budget:options.budget stages in
  (match run.Ladder.strategy with
  | Some s when s <> "newton" -> Log.info (fun m -> m "escalation recovered via %s" s)
  | _ -> ());
  let big_x = match run.Ladder.value with Some x -> x | None -> !last_x in
  let residual_norm =
    let r = Assemble.residual_ws ws.asm ~sources big_x in
    Vec.norm_inf r
  in
  let converged = run.Ladder.value <> None in
  let wall_seconds = Telemetry.Clock.wall () -. t_start in
  let telemetry =
    Option.map Telemetry.Summary.of_snapshot (Telemetry.snapshot ~since:tele_mark ())
  in
  let report =
    Report.of_ladder ?telemetry
      ~iterations_of:(fun name ->
        List.assoc_opt name !stage_iters |> Option.value ~default:0)
      ~residual_trajectory:(Array.of_list (List.rev !trajectory))
      ~residual_norm ~newton_iterations:!newton_total ~linear_iterations:!linear_iters
      ~wall_seconds run
  in
  {
    grid = g;
    system = sys;
    big_x;
    stats =
      {
        newton_iterations = !newton_total;
        converged;
        residual_norm;
        linear_iterations = !linear_iters;
        continuation_steps = !continuation_steps;
        continuation_rejected = !continuation_rejected;
        strategy = Option.value run.Ladder.strategy ~default:"none";
        wall_seconds;
      };
    report;
  }

let solve_mna ?options ?seed ?workspace_slot ~shear ~n1 ~n2 mna =
  (match Shear.validate_sources shear mna with
  | Ok () -> ()
  | Error f -> raise (Shear.Off_lattice f));
  let grid = Grid.make ~shear ~n1 ~n2 in
  let sys = Assemble.of_mna ~shear mna in
  let seed =
    (* A caller-supplied seed (single state or full grid surface from a
       warm-start cache) wins over the DC point, but only when its
       length actually fits this grid — a surface from different (n1,
       n2) would silently corrupt the Newton start. *)
    let fits v =
      let n = Linalg.Vec.dim v in
      n = sys.Assemble.size || n = Grid.points grid * sys.Assemble.size
    in
    match seed with
    | Some v when fits v -> Some v
    | _ ->
        let r = Circuit.Dcop.solve mna in
        if r.Circuit.Dcop.converged then Some r.Circuit.Dcop.x else None
  in
  solve ?options ?seed ?workspace_slot sys grid

let state_at sol ~i ~j =
  let p = Grid.point_index sol.grid i j in
  Assemble.state_of ~size:sol.system.Assemble.size sol.big_x p

let quasi_static_start ?seed (sys : Assemble.system) (g : Grid.t) =
  let n = sys.Assemble.size in
  let n1 = g.Grid.n1 in
  let big = Array.make (Grid.points g * n) 0.0 in
  for j = 0 to g.Grid.n2 - 1 do
    let column =
      Fast_column.frozen_column ?seed sys ~n1 ~shear:g.Grid.shear ~t2:(Grid.t2_of g j)
    in
    Array.iteri
      (fun i x -> Array.blit x 0 big (Grid.point_index g i j * n) n)
      column
  done;
  big

let residual_norm_check ?(scheme = Assemble.Backward) sol =
  let sources = Assemble.sources_on_grid sol.system sol.grid in
  Vec.norm_inf (Assemble.residual scheme sol.system sol.grid ~sources sol.big_x)
