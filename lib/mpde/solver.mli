(** Newton solution of the discretized MPDE.

    Three linear solvers are provided:

    - [Direct]: general sparse LU on the global Jacobian — robust,
      reasonable for grids up to a few thousand points;
    - [Gmres_sweep]: GMRES right-preconditioned by a block
      forward-substitution sweep. With lexicographic ordering the
      backward-difference Jacobian is block lower-triangular except for
      the two periodic wrap couplings, so one sweep (factoring only the
      [n] x [n] diagonal blocks) is a very strong preconditioner — the
      multi-time analogue of the matrix-free Krylov shooting of the
      paper's ref. [10];
    - [Gmres_ilu0]: GMRES preconditioned by a zero-fill ILU of the
      global Jacobian — slower to set up than the sweep but stronger
      when the sweep's dropped couplings matter; the first escalation
      rung after a linear stall.

    {2 Escalation ladder}

    When plain Newton fails, {!solve} climbs a declarative
    {!Resilience.Ladder}: on a *linear-solver stall* it strengthens the
    preconditioner (ILU0) and finally falls back to direct sparse LU;
    on *nonlinear* failure (divergence, stall, non-finite device
    evaluations) it runs source-stepping continuation (paper §3: “using
    continuation reliably obtained solutions in 10-20m”) and then a
    pseudo-transient (Ptc) relaxation ramp. Residual and Jacobian
    evaluations are guarded: a NaN/Inf is attributed to its MPDE grid
    point and unknown instead of silently poisoning GMRES. The whole
    climb honours [options.budget]; exhaustion produces a clean
    [Exhausted] report rather than a hang. The outcome, winning
    strategy, per-stage records, and residual trajectory are returned
    as a structured {!Resilience.Report.t}. *)

type linear_solver =
  | Direct
  | Gmres_sweep of { restart : int; max_iter : int; tol : float }
  | Gmres_ilu0 of { restart : int; max_iter : int; tol : float }

val default_gmres : linear_solver

exception Linear_stall of string
(** Raised internally by the linear layer on a GMRES stall; captured by
    Newton and classified by the ladder. Exposed for tests. *)

type options = {
  max_newton : int;  (** default 50 (per ladder stage) *)
  tol : float;  (** residual infinity norm, default 1e-8 *)
  scheme : Assemble.scheme;
  linear_solver : linear_solver;
  allow_continuation : bool;
      (** enable the nonlinear escalation rungs (source ramp, Ptc ramp);
          default true *)
  budget : Resilience.Budget.t option;
      (** overall deadline/iteration budget for the whole ladder climb;
          default [None] (unbounded) *)
  precond_lag : bool;
      (** keep the sweep preconditioner's dense per-point LU factors
          across Newton iterations instead of rebuilding them for every
          linear solve; on a GMRES stall with lagged factors the solver
          rebuilds once and retries before escalating. Affects only
          preconditioning (GMRES iteration counts), never the converged
          answer. Default true. *)
  precond_cluster : bool;
      (** share one dense factor between grid points whose Jacobians
          agree within the lag drift tolerance (drift-clustered build).
          The sweep then applies each distinct factor to whole panels
          of right-hand-side columns per wavefront level — on the mixer
          the converged grid clusters to a handful of factors, cutting
          both factorizations and dense-solve calls by orders of
          magnitude. On a GMRES stall the solver rebuilds exact
          (unclustered) and retries before escalating. Affects only
          preconditioning, never the converged answer. Default true. *)
  krylov_recycle : bool;
      (** seed each GMRES solve from a projection of the previous
          Newton iteration's converged Krylov subspace; a drift test on
          the true residual falls back to a cold start when the
          operator moved too far. Affects only iteration counts, never
          the converged answer. Default true. *)
}

val default_options : options

val make_options :
  ?max_newton:int ->
  ?tol:float ->
  ?scheme:Assemble.scheme ->
  ?linear_solver:linear_solver ->
  ?allow_continuation:bool ->
  ?budget:Resilience.Budget.t ->
  ?precond_lag:bool ->
  ?precond_cluster:bool ->
  ?krylov_recycle:bool ->
  unit ->
  options
(** Smart constructor under the *normalized* option vocabulary shared
    with the unified engine API ([Engine.Options]): [max_newton] is the
    per-stage Newton cap (other engines historically said [max_iter]),
    [tol] the residual infinity-norm target (elsewhere [rtol]); see
    DESIGN.md §11 for the full name mapping. Omitted fields default to
    {!default_options}. *)

type stats = {
  newton_iterations : int;  (** cumulated across all ladder stages *)
  converged : bool;
  residual_norm : float;
  linear_iterations : int;  (** cumulated GMRES inner iterations (0 for Direct) *)
  continuation_steps : int;  (** accepted source-ramp/Ptc steps; 0 when plain Newton succeeded *)
  continuation_rejected : int;  (** rejected (halved) continuation steps *)
  strategy : string;  (** winning ladder stage, or ["none"] *)
  wall_seconds : float;
}

type solution = {
  grid : Grid.t;
  system : Assemble.system;
  big_x : Linalg.Vec.t;
  stats : stats;
  report : Resilience.Report.t;  (** structured machine-readable outcome *)
}

type workspace
(** Per-solve numeric state: assembly scratch, the sweep
    preconditioner's dense staging matrices and factors, the GMRES
    Krylov basis, and the Bigarray operator buffers. Owned by exactly
    one solve on one domain at a time. *)

val solve :
  ?options:options ->
  ?seed:Linalg.Vec.t ->
  ?workspace_slot:workspace option ref ->
  Assemble.system ->
  Grid.t ->
  solution
(** [seed] is either a single circuit state, replicated to every grid
    point (typically the DC operating point), or a full flattened grid
    state (e.g. from {!quasi_static_start}); default is the zero
    state. Never raises on solver failure: inspect
    [solution.stats.converged] / [solution.report].

    [workspace_slot] is an in-out slot for cross-job workspace reuse
    (one slot per domain in sweep pools): when the retained workspace
    fits this solve's shape (same unknown count, grid points, and
    scheme diagonal structure) its large numeric buffers are reused and
    every cache bound to the previous job — factors, recycled Krylov
    state, pattern caches — is dropped, so results are identical to a
    fresh workspace; otherwise a fresh workspace is stored into the
    slot. *)

val solve_mna :
  ?options:options ->
  ?seed:Linalg.Vec.t ->
  ?workspace_slot:workspace option ref ->
  shear:Shear.t ->
  n1:int ->
  n2:int ->
  Circuit.Mna.t ->
  solution
(** Convenience: validates source frequencies against the shear
    lattice, computes the DC operating point as seed, and solves.
    An explicit [seed] (single circuit state or full flattened grid
    surface, e.g. a converged [big_x] from a nearby parameter point)
    overrides the DC point when its length fits the grid; otherwise it
    is ignored and the DC seed is used.
    @raise Shear.Off_lattice on inconsistent source frequencies. *)

val state_at : solution -> i:int -> j:int -> Linalg.Vec.t
(** Circuit state at grid point [(i, j)] (indices wrapped). *)

val quasi_static_start :
  ?seed:Linalg.Vec.t -> Assemble.system -> Grid.t -> Linalg.Vec.t
(** Flattened initial guess built by solving, independently for every
    slow grid line [t2_j], the fast-scale periodic problem with the
    slow scale frozen (no [∂/∂t2] term). Much closer to the MPDE
    solution than a replicated DC point when the slow variation is
    strong; pass the result as [solve]'s full-length [seed].
    @raise Failure if any column's Newton fails. *)

val residual_norm_check : ?scheme:Assemble.scheme -> solution -> float
(** Recompute ‖residual‖∞ of the stored solution under the given
    discretization (default [Backward]) — a defensive check for tests;
    pass the scheme the solution was computed with. *)
