(** Post-processing of MPDE solutions: multi-time surfaces (Figs. 3, 5),
    baseband envelopes along the difference-frequency scale (Fig. 4),
    one-time waveform reconstruction along the diagonal (Fig. 6), and
    conversion gain / distortion figures. *)

val surface : Solver.solution -> unknown:int -> float array array
(** [surface sol ~unknown] is the [n1] x [n2] array of the unknown's
    values: result.(i).(j) = x̂ at [(t1_i, t2_j)]. *)

val surface_of_node : Solver.solution -> Circuit.Mna.t -> string -> float array array

val differential_surface :
  Solver.solution -> Circuit.Mna.t -> string -> string -> float array array

type envelope_mode =
  | At_t1 of float  (** sample at fixed fast-scale fraction [∈ [0,1)] *)
  | Mean_t1  (** average over the fast scale (baseband component) *)
  | Peak_t1  (** max over the fast scale (envelope detector view) *)

val envelope : ?mode:envelope_mode -> Solver.solution -> values:float array array -> float array
(** Length-[n2] baseband waveform along [t2] (default [Mean_t1]). *)

val envelope_times : Solver.solution -> float array
(** The [t2] sample instants matching {!envelope}. *)

val diagonal :
  Solver.solution ->
  values:float array array ->
  t_start:float ->
  t_stop:float ->
  samples:int ->
  float array * float array
(** One-time reconstruction [x(t) = x̂(t mod T1, t mod Td)] by periodic
    bilinear interpolation (paper Fig. 6); returns [(times, values)]. *)

val diagonal_residual :
  ?periods:int -> ?steps_per_period:int -> Solver.solution -> unknown:int -> float
(** Diagonal-consistency check: integrate a reference one-time transient
    from the surface's corner state [x̂(0,0)] over [periods] fast periods
    (default 2) with [steps_per_period] trapezoidal steps (default 128),
    and return the maximum deviation of the interpolated diagonal
    [x̂(t,t)] from it, relative to the reference swing. Values at the
    discretization-error level (≲ a few percent on the default grids)
    indicate a consistent surface. [nan] when the reference integration
    fails to converge. *)

val t2_harmonic_amplitude : values:float array array -> harmonic:int -> float
(** Amplitude of the given harmonic of the difference frequency in the
    [Mean_t1] baseband waveform. *)

val conversion_gain_db :
  values:float array array -> rf_amplitude:float -> harmonic:int -> float
(** [20·log10 (baseband harmonic amplitude / RF drive amplitude)] —
    the paper's down-conversion gain figure. *)

val thd : values:float array array -> ?max_harmonic:int -> unit -> float
(** Total harmonic distortion of the baseband waveform:
    [sqrt(Σ_{k≥2} A_k²) / A_1] (default [max_harmonic] = [n2/2]). *)

type mixing_product = {
  k1 : int;  (** harmonic of the fast fundamental, [0 .. n1/2] *)
  k2 : int;  (** harmonic of the difference frequency, [−n2/2 .. n2/2] *)
  amplitude : float;
  frequency : float;  (** the one-time frequency [k1·f1 + k2·fd] *)
}

val mixing_spectrum :
  Solver.solution -> values:float array array -> ?top:int -> unit -> mixing_product list
(** 2-D Fourier analysis of a multi-time surface: every mixing product
    [k1·f1 + k2·fd] present in the solution, sorted by amplitude
    (largest first, at most [top] entries, default 12; the DC term is
    included as [(0, 0)]). This is the map of sum/difference tones the
    paper's §1 describes HB as expanding in — recovered here from the
    purely time-domain solution. *)
